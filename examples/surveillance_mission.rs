//! A surveillance mission: years of operation, satellite failures, spare
//! deployments, and a stream of RF signals — the composed QoS measure
//! P(Y >= y) estimated from mission history and compared to Eq. 3.
//!
//! Run with: `cargo run --release --example surveillance_mission`

use oaq::analytic::compose::{EvaluationConfig, Scheme as AScheme};
use oaq::core::config::{ProtocolConfig, Scheme};
use oaq::core::experiment::{estimate_conditional_qos, MonteCarloOptions};
use oaq::san::plane::PlaneModelConfig;
use oaq::san::sim::SteadyStateOptions;

fn main() {
    let lambda = 5e-5; // per-satellite failure rate, per hour
    let phi = 30_000.0;
    let eta = 10;

    println!("Mission profile: lambda = {lambda}/h, scheduled restore every {phi} h,");
    println!("threshold-triggered replenishment at k = {eta}.");
    println!();

    // Phase 1: long-run plane history from the SAN model -> time at each k.
    let plane = PlaneModelConfig::reference(lambda, phi, eta).build_sim();
    let pk = plane.capacity_distribution_sim(&SteadyStateOptions {
        warmup: 5.0 * phi,
        horizon: 400.0 * phi,
        seed: 99,
    });
    println!("Observed plane-capacity distribution over the mission:");
    for k in (eta as usize..=14).rev() {
        println!("  P(K = {k:>2}) = {:>6.4}", pk[k]);
    }

    // Phase 2: per-capacity QoS from the protocol simulator, composed with
    // the observed P(k) (the mission-level version of the paper's Eq. 3).
    let mut mission = [0.0f64; 4];
    let mut mission_baq = [0.0f64; 4];
    for (k, &p_k) in pk.iter().enumerate().take(15).skip(eta as usize) {
        if p_k == 0.0 {
            continue;
        }
        let opts = MonteCarloOptions {
            episodes: 4000,
            mu: 0.2,
            seed: 1000 + k as u64,
        };
        let oaq = estimate_conditional_qos(&ProtocolConfig::reference(k, Scheme::Oaq), &opts);
        let baq = estimate_conditional_qos(&ProtocolConfig::reference(k, Scheme::Baq), &opts);
        for y in 0..4 {
            mission[y] += p_k * oaq.p[y];
            mission_baq[y] += p_k * baq.p[y];
        }
    }

    let ccdf = |p: &[f64; 4], y: usize| -> f64 { p[y..].iter().sum() };
    println!();
    println!("Mission-composed QoS measure (protocol simulation x mission P(k)):");
    println!("             P(Y>=1)   P(Y>=2)   P(Y>=3)");
    println!(
        "  OAQ      : {:>7.4}   {:>7.4}   {:>7.4}",
        ccdf(&mission, 1),
        ccdf(&mission, 2),
        ccdf(&mission, 3)
    );
    println!(
        "  BAQ      : {:>7.4}   {:>7.4}   {:>7.4}",
        ccdf(&mission_baq, 1),
        ccdf(&mission_baq, 2),
        ccdf(&mission_baq, 3)
    );

    // Phase 3: the paper's closed-form answer for the same mission.
    let cfg = EvaluationConfig::paper_defaults(lambda);
    let a_oaq = cfg.qos_ccdf(AScheme::Oaq).unwrap();
    let a_baq = cfg.qos_ccdf(AScheme::Baq).unwrap();
    println!(
        "  OAQ (Eq.3): {:>6.4}   {:>7.4}   {:>7.4}",
        a_oaq.p_at_least(1),
        a_oaq.p_at_least(2),
        a_oaq.p_at_least(3)
    );
    println!(
        "  BAQ (Eq.3): {:>6.4}   {:>7.4}   {:>7.4}",
        a_baq.p_at_least(1),
        a_baq.p_at_least(2),
        a_baq.p_at_least(3)
    );
}
