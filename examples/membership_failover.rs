//! Membership-assisted failover: the extension the paper's concluding
//! remarks propose. A heartbeat/gossip membership service runs over the
//! crosslinks; when a satellite dies, the survivors learn it and OAQ
//! recruits around the hole.
//!
//! Run with: `cargo run --release --example membership_failover`

use oaq::core::config::{MembershipHints, ProtocolConfig, Scheme};
use oaq::core::protocol::Episode;
use oaq::membership::{MembershipConfig, MembershipSim};

fn main() {
    // Phase 1: the membership service itself, on a 9-satellite plane.
    let cfg = MembershipConfig::plane(9);
    let mut service = MembershipSim::new(&cfg, 7);
    println!("Membership service on a 9-satellite plane:");
    println!(
        "  heartbeat every {} min, suspicion after {} min",
        cfg.interval,
        cfg.suspicion_timeout()
    );
    service.fail_node(1, 40.0);
    service.run_until(40.0 + cfg.detection_bound());
    println!("  satellite 1 failed at t = 40.0 min");
    println!(
        "  group-wide detection within the analytic bound of {:.1} min: {}",
        cfg.detection_bound(),
        service.all_alive_suspect(1)
    );
    println!(
        "  false suspicions of live satellites: {}",
        service.false_suspicions()
    );

    // Phase 2: what the view buys the OAQ protocol.
    let mut plain = ProtocolConfig::reference(9, Scheme::Oaq);
    plain.tau = 25.0;
    let mut assisted = plain;
    assisted.membership = Some(MembershipHints::default());

    println!("\nSignal at t = 94 min (satellite 1 long dead), tau = 25:");
    for (label, cfg) in [("plain OAQ", &plain), ("with membership", &assisted)] {
        let out = Episode::new(cfg, 31).with_failure(1, 0.0).run(94.0, 60.0);
        println!(
            "  {label:>16}: {} (chain {}, delivered {})",
            out.level,
            out.chain_length,
            out.delivered_at
                .map_or("never".to_string(), |t| format!("at t = {t:.1}")),
        );
    }
    println!("\nPlain OAQ wastes its window on the dead peer and falls back to");
    println!("the preliminary result; the membership view lets it recruit the");
    println!("next live satellite over a crosslink chord and still reach");
    println!("sequential dual coverage.");
}
