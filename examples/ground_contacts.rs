//! Ground-station contact prediction: when can a satellite of the reference
//! constellation downlink its alert?
//!
//! Run with: `cargo run --release --example ground_contacts`

use oaq::geoloc::satstate::altitude_for_period;
use oaq::orbit::orbit::CircularOrbit;
use oaq::orbit::units::{Degrees, Minutes, Radians};
use oaq::orbit::visibility::{predict_contacts, visibility_radius};
use oaq::orbit::GroundPoint;

fn main() {
    // One satellite of the reference design: 90-minute orbit, 85 deg
    // inclination; its Keplerian altitude follows from the period.
    let orbit = CircularOrbit::new(Degrees(85.0).to_radians(), Radians(0.0), Minutes(90.0))
        .with_earth_rotation(false);
    let altitude = altitude_for_period(Minutes(90.0));
    let mask = Degrees(10.0).to_radians();

    println!(
        "Satellite: 90-min orbit at {:.0} km altitude, 85 deg inclination",
        altitude.value()
    );
    println!(
        "Visibility cone radius at a 10 deg elevation mask: {:.1} deg\n",
        visibility_radius(altitude, mask).to_degrees().value()
    );

    for (name, lat, lon) in [
        ("Svalbard (78N)", 78.0, 15.0),
        ("Mid-latitude (45N)", 45.0, 0.0),
        ("Equatorial (0N)", 0.0, 0.0),
    ] {
        let site = GroundPoint::from_degrees(Degrees(lat), Degrees(lon));
        let contacts = predict_contacts(
            &orbit,
            Radians(0.0),
            &site,
            altitude,
            mask,
            Minutes(360.0), // four orbits
            Minutes(0.25),
        );
        println!("{name}: {} contact(s) in 6 hours", contacts.len());
        for c in &contacts {
            println!(
                "  rise {:>6.1} min  set {:>6.1} min  dur {:>4.1} min  max elev {:>4.1} deg",
                c.rise.value(),
                c.set.value(),
                c.duration().value(),
                c.max_elevation.to_degrees().value(),
            );
        }
        println!();
    }
    println!("High-latitude stations see a near-polar LEO every orbit, which");
    println!("is why surveillance constellations downlink through them.");
}
