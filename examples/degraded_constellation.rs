//! Degradation study: how QoS falls as an orbital plane loses satellites,
//! and how much of it OAQ recovers.
//!
//! Walks the reference plane from full capacity (k = 14) down to k = 9,
//! reporting the geometric regime, the analytic conditional QoS and a
//! Monte-Carlo protocol estimate side by side.
//!
//! Run with: `cargo run --release --example degraded_constellation`

use oaq::analytic::geometry::PlaneGeometry;
use oaq::analytic::qos::{conditional_qos, QosParams, Scheme as AScheme};
use oaq::core::config::{ProtocolConfig, Scheme};
use oaq::core::experiment::{estimate_conditional_qos, MonteCarloOptions};
use oaq::orbit::revisit::{classify, Regime};
use oaq::orbit::Constellation;

fn main() {
    let mut constellation = Constellation::reference();
    let q = QosParams::paper_defaults(0.2);
    println!("Degrading plane 0 of the reference constellation (tau=5, mu=0.2, nu=30)");
    println!();
    println!(
        "{:>3} {:>6} {:>12} | {:>22} | {:>22}",
        "k", "Tr", "regime", "analytic P(Y>=2|k) O/B", "protocol P(Y>=2|k) O/B"
    );

    loop {
        let plane = constellation.plane(0);
        let k = plane.active_count();
        if k < 9 {
            break;
        }
        let regime = classify(plane.revisit_time(), constellation.coverage_time());
        let geom = PlaneGeometry::reference(k as u32);
        let a_oaq = conditional_qos(AScheme::Oaq, &geom, &q).p_at_least(2);
        let a_baq = conditional_qos(AScheme::Baq, &geom, &q).p_at_least(2);
        let opts = MonteCarloOptions {
            episodes: 4000,
            mu: 0.2,
            seed: 7 + k as u64,
        };
        let s_oaq = estimate_conditional_qos(&ProtocolConfig::reference(k, Scheme::Oaq), &opts)
            .p_at_least(2);
        let s_baq = estimate_conditional_qos(&ProtocolConfig::reference(k, Scheme::Baq), &opts)
            .p_at_least(2);
        println!(
            "{:>3} {:>6.2} {:>12} |        {:.3} / {:.3}    |        {:.3} / {:.3}",
            k,
            plane.revisit_time().value(),
            match regime {
                Regime::Overlapping => "overlapping",
                Regime::Underlapping => "underlapping",
            },
            a_oaq,
            a_baq,
            s_oaq,
            s_baq,
        );
        // Fail one more satellite (spares soak up the first two failures).
        let before = constellation.plane(0).active_count();
        while constellation.plane(0).active_count() == before {
            if constellation.plane(0).active_count() == 0 {
                return;
            }
            constellation.plane_mut(0).fail_one();
        }
    }
    println!();
    println!("OAQ's gain concentrates exactly where the paper claims: the high");
    println!("end of the QoS spectrum, surviving deep into the degradation.");
}
