//! Sequential localization with the real estimator: successive satellite
//! passes over an RF emitter, each one an iterative weighted-least-squares
//! refinement (the mechanism of refs [4,5] that OAQ exploits).
//!
//! Run with: `cargo run --release --example sequential_localization`

use oaq::geoloc::emitter::Emitter;
use oaq::geoloc::scenario::PassScenario;
use oaq::geoloc::sequential::SequentialLocalizer;
use oaq::orbit::units::Degrees;
use oaq::orbit::GroundPoint;
use oaq::sim::SimRng;

fn main() {
    let emitter = Emitter::new(
        GroundPoint::from_degrees(Degrees(30.0), Degrees(12.0)),
        400.0e6, // 400 MHz carrier
    );
    println!(
        "Emitter at (30.000 N, 12.000 E), carrier {:.0} MHz",
        emitter.frequency_hz() / 1e6
    );
    println!("Satellites revisit every 9 minutes (k = 10 plane); Doppler noise 1 Hz.");
    println!();
    println!(
        "{:>4} {:>10} {:>18} {:>18}",
        "pass", "obs", "reported 1-sigma", "actual error"
    );

    let scenario = PassScenario::reference(&emitter);
    let mut rng = SimRng::seed_from(2003);
    let mut localizer = SequentialLocalizer::new(emitter.initial_guess_nearby(1.0));
    for pass in 0..4 {
        localizer.add_pass(scenario.synthesize_pass(pass, &mut rng));
        let est = localizer.estimate().expect("geometry is solvable");
        println!(
            "{:>4} {:>10} {:>15.2} km {:>15.3} km",
            pass + 1,
            localizer.num_observations(),
            est.error_radius_km(),
            est.position_error_km(&emitter.position()),
        );
    }
    println!();
    println!("Pass 1 is honest about the classic single-satellite Doppler");
    println!("ambiguity (huge reported error); the second, cross-track-offset");
    println!("pass collapses it -- the accuracy gain OAQ turns into QoS level 2.");
}
