//! OAQ over the *real* constellation geometry: derive a ground target's
//! actual coverage pattern from the 98-satellite reference design (no
//! center-line idealization) and run the protocol on it — intact and
//! degraded.
//!
//! Run with: `cargo run --release --example real_constellation`

use oaq::core::bridge::DerivedScenario;
use oaq::core::config::{ProtocolConfig, Scheme};
use oaq::core::protocol::Episode;
use oaq::orbit::units::{Degrees, Minutes, Radians};
use oaq::orbit::{Constellation, GroundPoint};

fn on_track_target() -> GroundPoint {
    // 30°N on plane 0's ascending track — the paper's worst-case location.
    let i = Degrees(85.0).to_radians().value();
    let u = (Degrees(30.0).to_radians().value().sin() / i.sin()).asin();
    let lon = (i.cos() * u.sin()).atan2(u.cos());
    GroundPoint::new(Degrees(30.0).to_radians(), Radians(lon))
}

fn between_tracks_target() -> GroundPoint {
    // Halfway between plane 0's and plane 1's tracks at 30°N (the planes'
    // RAANs are 180/7 ≈ 25.7° apart).
    let base = on_track_target();
    GroundPoint::new(
        base.lat(),
        Radians(base.lon().value() + Degrees(180.0 / 7.0 / 2.0).to_radians().value()),
    )
}

fn describe(constellation: &Constellation, target: &GroundPoint, label: &str) {
    let scenario = DerivedScenario::from_constellation(constellation, target, Minutes(0.05))
        .expect("the reference design covers 30N");
    let windows = scenario.geometry.windows();
    let long = windows.iter().filter(|&&(_, d)| d > 8.5).count();
    let short = windows.len() - long;
    println!("{label}:");
    println!(
        "  {} satellites sweep the target: {} near-center passes (>8.5 min), {} offset passes",
        scenario.k(),
        long,
        short
    );

    let mut cfg = ProtocolConfig::reference(scenario.k(), Scheme::Oaq);
    cfg.theta = 90.0;
    let mut counts = [0u32; 4];
    let episodes: u32 = 400;
    for seed in 0..episodes {
        let birth = 90.0 + (f64::from(seed) * 0.618_033_9) % 90.0;
        let out = Episode::new(&cfg, u64::from(seed))
            .with_geometry(scenario.geometry.clone())
            .run(birth, 8.0);
        counts[out.level.as_y()] += 1;
    }
    println!(
        "  OAQ over {episodes} signals: Y=3 {:>4.1}%, Y=2 {:>4.1}%, Y=1 {:>4.1}%, missed {:>4.1}%\n",
        100.0 * f64::from(counts[3]) / f64::from(episodes),
        100.0 * f64::from(counts[2]) / f64::from(episodes),
        100.0 * f64::from(counts[1]) / f64::from(episodes),
        100.0 * f64::from(counts[0]) / f64::from(episodes),
    );
}

fn main() {
    println!("== Target A: 30.000 N, ON plane 0's track (paper's worst case) ==\n");
    let mut c = Constellation::reference();
    describe(&c, &on_track_target(), "Intact constellation (98 active)");
    for _ in 0..6 {
        c.plane_mut(0).fail_one();
    }
    describe(
        &c,
        &on_track_target(),
        "Plane 0 degraded to k = 10 (spares exhausted, 4 lost)",
    );

    println!("== Target B: 30.000 N, BETWEEN planes 0 and 1 ==\n");
    describe(&c, &between_tracks_target(), "Same degraded constellation");

    println!("Target A sees only its own plane — exactly the paper's argument");
    println!("for taking the on-track point at ~30 deg latitude as the worst");
    println!("case. Target B additionally collects side-lobe passes from the");
    println!("adjacent plane, so its QoS degrades far more gracefully: the");
    println!("analytic model's numbers are the conservative floor.");
}
