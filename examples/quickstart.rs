//! Quickstart: one signal, one degraded plane, the OAQ protocol end to end.
//!
//! Run with: `cargo run --example quickstart`

use oaq::core::config::{ProtocolConfig, Scheme};
use oaq::core::protocol::Episode;

fn main() {
    println!("== OAQ quickstart =========================================");
    println!("Reference plane degraded to k = 10 satellites:");
    println!("  revisit time Tr = 90/10 = 9 min = Tc -> footprints underlap\n");

    for (label, scheme) in [("OAQ", Scheme::Oaq), ("BAQ", Scheme::Baq)] {
        let cfg = ProtocolConfig::reference(10, scheme);
        // A signal born 6 minutes into satellite 0's coverage window,
        // emitting for 12 minutes.
        let outcome = Episode::new(&cfg, 42).run(6.0, 12.0);
        println!("{label}:");
        println!(
            "  QoS level         : {} (Y = {})",
            outcome.level,
            outcome.level.as_y()
        );
        println!(
            "  delivered at      : {}",
            outcome
                .delivered_at
                .map_or("never".to_string(), |t| format!("t = {t:.2} min")),
        );
        println!("  deadline met      : {}", outcome.deadline_met);
        println!("  satellites used   : {}", outcome.chain_length);
        println!("  crosslink messages: {}", outcome.messages_sent);
        if let Some(err) = outcome.reported_error_km {
            println!("  reported error    : {err:.1} km");
        }
        println!();
    }

    println!("OAQ recruits the next satellite that revisits the target and");
    println!("delivers a sequential-dual (level-2) result; BAQ ships the");
    println!("single-coverage preliminary and leaves the opportunity unused.");

    println!("\nOAQ episode trace:");
    let cfg = ProtocolConfig::reference(10, Scheme::Oaq);
    let (_, trace) = Episode::new(&cfg, 42).run_traced(6.0, 12.0);
    for entry in trace {
        println!("  {entry}");
    }
}
