//! The geometry bridge must close the loop: the coverage pattern derived
//! from the real constellation for an on-track 30°N target has to coincide
//! with the idealized center-line pattern the paper's model assumes — and
//! running the protocol over it must reproduce the analytic QoS numbers.

use oaq_analytic::geometry::PlaneGeometry;
use oaq_analytic::qos::{conditional_qos, QosParams, Scheme as AScheme};
use oaq_core::bridge::DerivedScenario;
use oaq_core::config::{ProtocolConfig, Scheme};
use oaq_core::protocol::Episode;
use oaq_orbit::units::{Degrees, Minutes, Radians};
use oaq_orbit::{Constellation, GroundPoint};
use oaq_sim::SimRng;

fn on_track_target() -> GroundPoint {
    let i = Degrees(85.0).to_radians().value();
    let u = (Degrees(30.0).to_radians().value().sin() / i.sin()).asin();
    let lon = (i.cos() * u.sin()).atan2(u.cos());
    GroundPoint::new(Degrees(30.0).to_radians(), Radians(lon))
}

#[test]
fn derived_on_track_pattern_is_the_idealized_pattern() {
    let c = Constellation::reference();
    let scenario = DerivedScenario::from_constellation(&c, &on_track_target(), Minutes(0.05))
        .expect("covered");
    assert_eq!(scenario.k(), 14);
    let mut windows: Vec<(f64, f64)> = scenario.geometry.windows().to_vec();
    windows.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    let tr = 90.0 / 14.0;
    for (i, &(offset, dur)) in windows.iter().enumerate() {
        assert!((dur - 9.0).abs() < 0.05, "window {i} duration {dur}");
        if i > 0 {
            let gap = offset - windows[i - 1].0;
            assert!((gap - tr).abs() < 0.05, "window {i} spacing {gap}");
        }
    }
}

#[test]
fn protocol_over_derived_geometry_matches_analytic_k10() {
    // Degrade plane 0 to k = 10; the derived target-A pattern is then the
    // paper's tangent underlap case, so the Monte-Carlo QoS over the REAL
    // geometry must reproduce the analytic P(Y = y | 10).
    let mut c = Constellation::reference();
    for _ in 0..6 {
        c.plane_mut(0).fail_one();
    }
    let scenario = DerivedScenario::from_constellation(&c, &on_track_target(), Minutes(0.05))
        .expect("covered");
    assert_eq!(scenario.k(), 10);

    let mu = 0.2;
    let mut cfg = ProtocolConfig::reference(10, Scheme::Oaq);
    cfg.theta = 90.0;
    let episodes = 6000u64;
    let mut rng = SimRng::seed_from(99);
    let mut counts = [0usize; 4];
    for seed in 0..episodes {
        let birth = 90.0 + rng.uniform(0.0, 90.0);
        let duration = rng.exp(mu);
        let out = Episode::new(&cfg, seed)
            .with_geometry(scenario.geometry.clone())
            .run(birth, duration);
        counts[out.level.as_y()] += 1;
    }
    let exact = conditional_qos(
        AScheme::Oaq,
        &PlaneGeometry::reference(10),
        &QosParams::paper_defaults(mu),
    );
    for (y, &count) in counts.iter().enumerate() {
        let sim = count as f64 / episodes as f64;
        assert!(
            (sim - exact.p(y)).abs() < 0.03,
            "y={y}: derived-geometry MC {sim:.4} vs analytic {:.4}",
            exact.p(y)
        );
    }
}
