//! The membership extension end to end: the real heartbeat/gossip service
//! justifies the detection latency the protocol hints assume, and the
//! hints buy measurable QoS under failures.

use oaq_core::config::{MembershipHints, ProtocolConfig, Scheme};
use oaq_core::experiment::{estimate_conditional_qos, MonteCarloOptions};
use oaq_core::protocol::Episode;
use oaq_core::qos_level::QosLevel;
use oaq_membership::{MembershipConfig, MembershipSim};

#[test]
fn real_service_detects_within_the_assumed_latency() {
    // The protocol's default hints assume group-wide detection within 12
    // minutes; the actual service on a 14-satellite plane must deliver it.
    let cfg = MembershipConfig::plane(14);
    let assumed = MembershipHints::default().detection_latency;
    assert!(
        cfg.detection_bound() <= assumed,
        "bound {} exceeds assumed latency {assumed}",
        cfg.detection_bound()
    );
    for seed in 0..5 {
        let mut sim = MembershipSim::new(&cfg, seed);
        sim.fail_node(6, 40.0);
        sim.run_until(40.0 + assumed);
        assert!(
            sim.all_alive_suspect(6),
            "seed {seed}: detection exceeded the assumed latency"
        );
        assert_eq!(sim.false_suspicions(), 0);
    }
}

#[test]
fn hints_recover_sequential_coverage_past_a_dead_peer() {
    // Deterministic single scenario: k = 9, τ = 25, sat 1 long dead,
    // signal born mid-window of sat 0.
    let mut plain = ProtocolConfig::reference(9, Scheme::Oaq);
    plain.tau = 25.0;
    let mut assisted = plain;
    assisted.membership = Some(MembershipHints::default());

    // Born at 94 (sat 0's second window [90, 99)): sat 1's failure at t=0
    // is 94 minutes old — far beyond the 12-minute detection latency, so
    // the whole group knows.
    let plain_out = Episode::new(&plain, 31)
        .with_failure(1, 0.0)
        .run(94.0, 60.0);
    let assisted_out = Episode::new(&assisted, 31)
        .with_failure(1, 0.0)
        .run(94.0, 60.0);
    // Plain: request to the dead sat 1 vanishes; S1 times out -> single.
    assert_eq!(plain_out.level, QosLevel::Single);
    // Assisted: recruit sat 2 directly (arrives at t = 110 < deadline 119).
    assert_eq!(assisted_out.level, QosLevel::SequentialDual);
    assert!(assisted_out.deadline_met);
    assert!(
        assisted_out.s1_released,
        "done must route to the real requester"
    );
}

#[test]
fn hints_improve_monte_carlo_qos_under_failures() {
    let mut plain = ProtocolConfig::reference(9, Scheme::Oaq);
    plain.tau = 25.0;
    let mut assisted = plain;
    assisted.membership = Some(MembershipHints::default());

    // Estimate P(Y >= 2 | k, sat 1 dead) for both variants by reusing the
    // episode machinery directly (the experiment helper has no
    // fault-injection path on purpose — faults are scenario-specific).
    let episodes: u64 = 1500;
    let run = |cfg: &ProtocolConfig| -> f64 {
        let mut hits = 0u64;
        for seed in 0..episodes {
            let birth = 90.0 + (seed as f64 * 0.618_033_9) % 10.0;
            let out = Episode::new(cfg, seed)
                .with_failure(1, 0.0)
                .run(birth, 15.0);
            if out.level >= QosLevel::SequentialDual {
                hits += 1;
            }
        }
        hits as f64 / episodes as f64
    };
    let p_plain = run(&plain);
    let p_assisted = run(&assisted);
    assert!(
        p_assisted > p_plain + 0.05,
        "assisted {p_assisted:.3} vs plain {p_plain:.3}"
    );
}

#[test]
fn hints_never_hurt_in_fault_free_operation() {
    let plain = ProtocolConfig::reference(10, Scheme::Oaq);
    let mut assisted = plain;
    assisted.membership = Some(MembershipHints::default());
    let opts = MonteCarloOptions {
        episodes: 3000,
        mu: 0.2,
        seed: 77,
    };
    let p = estimate_conditional_qos(&plain, &opts);
    let a = estimate_conditional_qos(&assisted, &opts);
    for y in 0..4 {
        assert!(
            (p.p[y] - a.p[y]).abs() < 0.02,
            "y={y}: plain {} vs assisted {}",
            p.p[y],
            a.p[y]
        );
    }
}
