//! End-to-end pipeline tests across the substrate crates: constellation
//! geometry → degradation → protocol regime → real geolocation accuracy.

use oaq_core::config::{ProtocolConfig, Scheme};
use oaq_core::fullstack::run_fullstack_chain;
use oaq_core::protocol::Episode;
use oaq_core::qos_level::QosLevel;
use oaq_orbit::revisit::{classify, Regime};
use oaq_orbit::Constellation;

#[test]
fn degradation_drives_the_regime_the_protocol_sees() {
    let mut c = Constellation::reference();
    // Full plane: overlapping.
    assert_eq!(
        classify(c.plane(0).revisit_time(), c.coverage_time()),
        Regime::Overlapping
    );
    // Lose 6 satellites in plane 0 (2 soak into spares): k = 10.
    for _ in 0..6 {
        c.plane_mut(0).fail_one();
    }
    let k = c.plane(0).active_count();
    assert_eq!(k, 10);
    assert_eq!(
        classify(c.plane(0).revisit_time(), c.coverage_time()),
        Regime::Underlapping
    );
    // The protocol configured from the degraded plane exploits sequential
    // coverage where the intact plane would use simultaneous coverage.
    let degraded = ProtocolConfig::reference(k, Scheme::Oaq);
    let out = Episode::new(&degraded, 3).run(6.0, 30.0);
    assert_eq!(out.level, QosLevel::SequentialDual);
    let intact = ProtocolConfig::reference(14, Scheme::Oaq);
    let out = Episode::new(&intact, 3).run(96.0, 30.0);
    assert_eq!(out.level, QosLevel::SimultaneousDual);
}

#[test]
fn fullstack_chain_error_tracks_the_accuracy_story() {
    // The sequential-localization claim, end to end with the real
    // estimator: each satellite that joins the chain shrinks the reported
    // error, and the first pass alone is honest about its ambiguity.
    let mut cfg = ProtocolConfig::reference(10, Scheme::Oaq);
    cfg.tau = 30.0;
    let report = run_fullstack_chain(&cfg, 3, 21);
    let errs: Vec<f64> = report
        .iterations
        .iter()
        .map(|i| i.reported_error_km)
        .collect();
    assert!(errs[0] > 50.0, "single pass is ambiguous: {errs:?}");
    assert!(errs[1] < errs[0] / 5.0, "second pass collapses: {errs:?}");
    assert!(errs[2] <= errs[1] * 1.001, "third pass refines: {errs:?}");
    assert!(
        report.final_error_km() < 20.0,
        "final actual error {} km",
        report.final_error_km()
    );
}

#[test]
fn protocol_timeliness_guarantee_under_fault_injection() {
    // Inject a fail-silent recruit in every episode; the done-chain variant
    // must still deliver something by the deadline whenever a detection
    // happened and the detector survives.
    let cfg = ProtocolConfig::reference(10, Scheme::Oaq);
    let mut met = 0;
    let mut detected = 0;
    for seed in 0..200 {
        let out = Episode::new(&cfg, seed)
            .with_failure(1, 0.5)
            .with_failure(3, 0.5)
            .run(6.0, 20.0);
        if out.level > QosLevel::Missed {
            detected += 1;
            if out.deadline_met {
                met += 1;
            }
        }
    }
    assert!(detected > 150);
    assert_eq!(met, detected, "done-chain guarantee must hold");
}

#[test]
fn backward_variant_trades_guarantee_for_messages() {
    let mut fwd_cfg = ProtocolConfig::reference(10, Scheme::Oaq);
    let mut bwd_cfg = fwd_cfg;
    bwd_cfg.backward_messaging = true;
    fwd_cfg.error_threshold_km = None;

    // Under fault injection: the done-chain keeps the guarantee, backward
    // messaging loses alerts when the responsible recruit dies.
    let mut bwd_lost = 0;
    for seed in 0..200 {
        let fwd = Episode::new(&fwd_cfg, seed)
            .with_failure(1, 8.0)
            .run(6.0, 20.0);
        let bwd = Episode::new(&bwd_cfg, seed)
            .with_failure(1, 8.0)
            .run(6.0, 20.0);
        assert!(fwd.deadline_met, "done-chain always delivers (seed {seed})");
        if bwd.level == QosLevel::Missed {
            bwd_lost += 1;
        }
    }
    assert!(
        bwd_lost > 0,
        "a fail-silent recruit must cost backward messaging some alerts"
    );
    // Fault-free: backward messaging saves the done-chain traffic on every
    // successful coordination (request+done vs request only).
    let mut fwd_msgs = 0u64;
    let mut bwd_msgs = 0u64;
    for seed in 0..200 {
        fwd_msgs += Episode::new(&fwd_cfg, seed).run(6.0, 20.0).messages_sent;
        bwd_msgs += Episode::new(&bwd_cfg, seed).run(6.0, 20.0).messages_sent;
    }
    assert!(
        bwd_msgs < fwd_msgs,
        "backward messaging saves the done chain: {bwd_msgs} vs {fwd_msgs}"
    );
}

#[test]
fn constellation_scale_episode_sweep() {
    // Sweep every capacity the evaluation considers; the QoS level
    // reachable must match the regime (Table 1) in every run.
    for k in 9..=14 {
        let overlapping = ProtocolConfig::reference(k, Scheme::Oaq).is_overlapping();
        for seed in 0..50 {
            let out = Episode::new(&ProtocolConfig::reference(k, Scheme::Oaq), seed)
                .run(1.0 + (seed as f64) * 0.13, 15.0);
            match out.level {
                QosLevel::SimultaneousDual => {
                    assert!(overlapping, "k={k} seed={seed}: Y=3 requires overlap")
                }
                QosLevel::SequentialDual => {
                    assert!(!overlapping, "k={k} seed={seed}: Y=2 requires underlap")
                }
                _ => {}
            }
        }
    }
}
