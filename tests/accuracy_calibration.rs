//! Calibration: the abstract per-iteration accuracy model the Monte-Carlo
//! experiments use must agree in *shape* with the real iterative-WLS
//! estimator — single-pass ambiguity far above the threshold scales,
//! strong collapse on the second pass, simultaneous dual best of all.

use oaq_core::config::{AccuracyModel, ProtocolConfig, Scheme};
use oaq_core::fullstack::run_fullstack_chain;
use oaq_geoloc::emitter::Emitter;
use oaq_geoloc::scenario::PassScenario;
use oaq_geoloc::sequential::SequentialLocalizer;
use oaq_orbit::units::{Degrees, Minutes};
use oaq_orbit::GroundPoint;
use oaq_sim::SimRng;

#[test]
fn abstract_model_shape_matches_real_estimator() {
    let abstract_model = AccuracyModel::default();
    // Shape facts the Monte-Carlo abstraction encodes:
    let single = abstract_model.error_km(1, false);
    let dual_seq = abstract_model.error_km(2, false);
    let dual_sim = abstract_model.error_km(2, true);
    assert!(single / dual_seq > 2.0, "second pass collapses");
    assert!(dual_sim <= dual_seq, "simultaneous at least as good");

    // The real estimator, averaged over seeds.
    let mut cfg = ProtocolConfig::reference(10, Scheme::Oaq);
    cfg.tau = 25.0;
    let mut real_single = 0.0;
    let mut real_dual = 0.0;
    let n = 6;
    for seed in 0..n {
        let r = run_fullstack_chain(&cfg, 2, 100 + seed);
        real_single += r.iterations[0].reported_error_km / n as f64;
        real_dual += r.iterations[1].reported_error_km / n as f64;
    }
    assert!(
        real_single / real_dual > 2.0,
        "real second pass must collapse too: {real_single} -> {real_dual}"
    );
}

#[test]
fn simultaneous_dual_is_the_best_real_quality() {
    // Directly compare the three QoS-relevant measurement configurations
    // with the real estimator: single < sequential-dual < simultaneous-dual
    // in reported accuracy (decreasing error).
    let emitter = Emitter::new(
        GroundPoint::from_degrees(Degrees(30.0), Degrees(40.0)),
        400.0e6,
    );
    let scenario = PassScenario::reference(&emitter);
    let mut errs = [0.0f64; 3];
    let n = 8;
    for seed in 0..n {
        let mut rng = SimRng::seed_from(500 + seed);

        let mut single = SequentialLocalizer::new(emitter.initial_guess_nearby(0.8));
        single.add_pass(scenario.synthesize_pass(0, &mut rng));
        errs[0] += single.estimate().unwrap().error_radius_km() / n as f64;

        let mut seq = SequentialLocalizer::new(emitter.initial_guess_nearby(0.8));
        seq.add_pass(scenario.synthesize_pass(0, &mut rng));
        seq.add_pass(scenario.synthesize_pass(1, &mut rng));
        errs[1] += seq.estimate().unwrap().error_radius_km() / n as f64;

        let mut sim = SequentialLocalizer::new(emitter.initial_guess_nearby(0.8));
        sim.add_pass(scenario.synthesize_simultaneous_pair(
            0,
            Degrees(3.0).to_radians(),
            Minutes(0.5),
            &mut rng,
        ));
        errs[2] += sim.estimate().unwrap().error_radius_km() / n as f64;
    }
    assert!(errs[0] > errs[1], "sequential dual beats single: {errs:?}");
    assert!(
        errs[2] < errs[0] / 10.0,
        "simultaneous dual crushes single: {errs:?}"
    );
    // The QoS-level ordering Y3 >= Y2 > Y1 is physically grounded.
    assert!(
        errs[2] <= errs[1] * 2.0,
        "simultaneous competitive with sequential: {errs:?}"
    );
}
