//! E14 cross-validation: the closed-form chain-length distribution
//! (`oaq_analytic::chain`) vs the protocol simulation in the idealized
//! regime the derivation assumes (near-instant computation, negligible
//! messaging overheads).

use oaq_analytic::chain::chain_ccdf;
use oaq_analytic::geometry::PlaneGeometry;
use oaq_core::config::{ProtocolConfig, Scheme};
use oaq_core::protocol::Episode;
use oaq_sim::SimRng;

fn idealized(k: usize, tau: f64) -> ProtocolConfig {
    let mut cfg = ProtocolConfig::reference(k, Scheme::Oaq);
    cfg.tau = tau;
    cfg.nu = 3000.0; // mean computation 0.02 min
    cfg.delta = 0.001;
    cfg.tg = 0.01;
    cfg
}

fn empirical_ccdf(cfg: &ProtocolConfig, mu: f64, episodes: u64, max_n: usize) -> Vec<f64> {
    let mut rng = SimRng::seed_from(4242);
    let mut at_least = vec![0u64; max_n + 1]; // index 0 unused
    for seed in 0..episodes {
        let birth = cfg.theta + rng.uniform(0.0, cfg.tr());
        let duration = rng.exp(mu);
        let out = Episode::new(cfg, seed).run(birth, duration);
        for (n, slot) in at_least.iter_mut().enumerate().skip(1) {
            if out.chain_length >= n {
                *slot += 1;
            }
        }
    }
    at_least
        .iter()
        .map(|&c| c as f64 / episodes as f64)
        .collect()
}

#[test]
fn chain_distribution_matches_protocol_short_deadline() {
    for k in [9usize, 10] {
        let cfg = idealized(k, 5.0);
        let mu = 0.2;
        let emp = empirical_ccdf(&cfg, mu, 8000, 3);
        let geom = PlaneGeometry::reference(k as u32);
        for (n, &e) in emp.iter().enumerate().take(4).skip(1) {
            let exact = chain_ccdf(&geom, 5.0, mu, n).unwrap();
            assert!(
                (e - exact).abs() < 0.02,
                "k={k} n={n}: empirical {e} vs exact {exact}"
            );
        }
    }
}

#[test]
fn chain_distribution_matches_protocol_deep_chains() {
    // τ = 25 allows chains up to M[9] = 2 + floor(24/10) = 4.
    let cfg = idealized(9, 25.0);
    let mu = 0.15;
    let emp = empirical_ccdf(&cfg, mu, 8000, 5);
    let geom = PlaneGeometry::reference(9);
    for (n, &e) in emp.iter().enumerate().skip(1) {
        let exact = chain_ccdf(&geom, 25.0, mu, n).unwrap();
        assert!(
            (e - exact).abs() < 0.02,
            "n={n}: empirical {e} vs exact {exact}"
        );
    }
    assert_eq!(chain_ccdf(&geom, 25.0, mu, 5).unwrap(), 0.0, "beyond M[k]");
    assert!(emp[5] < 0.001, "protocol also respects M[k]: {}", emp[5]);
}
