//! Cross-validation of the three P(k) solution paths (experiment E2
//! support): closed-form regeneration-cycle integral (`oaq-analytic`),
//! exact CTMC steady state of the Erlangized SAN, and long-run simulation
//! of the SAN with the true deterministic clock.

use oaq_analytic::capacity::CapacityParams;
use oaq_san::plane::{PlaneModelConfig, SparePolicy};
use oaq_san::sim::SteadyStateOptions;

const PHI: f64 = 30_000.0;

#[test]
fn three_solvers_agree_on_pk() {
    for &lambda in &[2e-5, 6e-5, 1e-4] {
        let exact = CapacityParams::reference(lambda, PHI, 10)
            .distribution()
            .unwrap();
        let cfg = PlaneModelConfig::reference(lambda, PHI, 10);
        let sim = cfg
            .build_sim()
            .capacity_distribution_sim(&SteadyStateOptions {
                warmup: 5.0 * PHI,
                horizon: 500.0 * PHI,
                seed: 71,
            });
        let markov = cfg
            .build_markov(30)
            .capacity_distribution_markov(100_000)
            .unwrap();
        for k in 10..=14 {
            assert!(
                (exact[k] - sim[k]).abs() < 0.025,
                "λ={lambda} k={k}: closed-form {} vs sim {}",
                exact[k],
                sim[k]
            );
            assert!(
                (exact[k] - markov[k]).abs() < 0.03,
                "λ={lambda} k={k}: closed-form {} vs markov {}",
                exact[k],
                markov[k]
            );
        }
    }
}

#[test]
fn erlang_order_converges_to_deterministic_clock() {
    // The Erlang(m) phase-type approximation of the deterministic φ clock
    // must approach the exact regeneration-cycle answer as m grows.
    let lambda = 5e-5;
    let exact = CapacityParams::reference(lambda, PHI, 10)
        .distribution()
        .unwrap();
    let cfg = PlaneModelConfig::reference(lambda, PHI, 10);
    let err_for = |shape: u32| -> f64 {
        let d = cfg
            .build_markov(shape)
            .capacity_distribution_markov(100_000)
            .unwrap();
        (10..=14)
            .map(|k| (d[k] - exact[k]).abs())
            .fold(0.0, f64::max)
    };
    let coarse = err_for(1);
    let medium = err_for(8);
    let fine = err_for(40);
    assert!(
        fine < medium && medium < coarse,
        "Erlang error must decrease: {coarse} > {medium} > {fine}"
    );
    assert!(fine < 0.01, "Erlang(40) should be near-exact, err {fine}");
}

#[test]
fn full_restore_policy_differs_from_pinning() {
    // Ablation sanity: the alternative reading of the threshold policy
    // produces a visibly different distribution (mass below η).
    let lambda = 1e-4;
    let pin = PlaneModelConfig::reference(lambda, PHI, 10);
    let launch = PlaneModelConfig {
        policy: SparePolicy::FullRestoreAfterDelay {
            mean_delay_hours: 5_000.0,
            erlang_shape: 2,
        },
        ..pin
    };
    let opts = SteadyStateOptions {
        warmup: 5.0 * PHI,
        horizon: 400.0 * PHI,
        seed: 5,
    };
    let d_pin = pin.build_sim().capacity_distribution_sim(&opts);
    let d_launch = launch.build_sim().capacity_distribution_sim(&opts);
    let below_pin: f64 = d_pin[..10].iter().sum();
    let below_launch: f64 = d_launch[..10].iter().sum();
    assert_eq!(below_pin, 0.0);
    assert!(below_launch > 0.05, "launch delay exposes k < η");
}
