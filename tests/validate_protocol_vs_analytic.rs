//! Experiment E9: the distributed protocol simulation and the paper's
//! closed-form model are two independent derivations of `P(Y = y | k)`.
//! They must agree — this is the strongest correctness check in the
//! repository, and one the paper itself (analytic-only) could not perform.

use oaq_analytic::geometry::PlaneGeometry;
use oaq_analytic::qos::{conditional_qos, QosParams, Scheme as AScheme};
use oaq_core::config::{ProtocolConfig, Scheme};
use oaq_core::experiment::{estimate_conditional_qos, MonteCarloOptions};

const EPISODES: usize = 6000;

fn compare(k: usize, mu: f64, scheme: Scheme, seed: u64) {
    let cfg = ProtocolConfig::reference(k, scheme);
    let est = estimate_conditional_qos(
        &cfg,
        &MonteCarloOptions {
            episodes: EPISODES,
            mu,
            seed,
        },
    );
    let ascheme = match scheme {
        Scheme::Oaq => AScheme::Oaq,
        Scheme::Baq => AScheme::Baq,
    };
    let analytic = conditional_qos(
        ascheme,
        &PlaneGeometry::reference(k as u32),
        &QosParams::paper_defaults(mu),
    );
    for y in 0..=3 {
        let sim = est.p[y];
        let exact = analytic.p(y);
        // Monte-Carlo noise plus the protocol's real messaging overheads
        // (δ, Tg) which the analytic model idealizes away.
        let tol = 0.02 + est.ci95(exact.clamp(0.05, 0.95));
        assert!(
            (sim - exact).abs() < tol,
            "{scheme:?} k={k} mu={mu} y={y}: simulated {sim:.4} vs analytic {exact:.4} (tol {tol:.4})"
        );
    }
}

#[test]
fn oaq_overlap_k14() {
    compare(14, 0.2, Scheme::Oaq, 101);
}

#[test]
fn oaq_overlap_k12_both_mus() {
    compare(12, 0.2, Scheme::Oaq, 102);
    compare(12, 0.5, Scheme::Oaq, 103);
}

#[test]
fn oaq_overlap_k11() {
    compare(11, 0.2, Scheme::Oaq, 104);
}

#[test]
fn oaq_underlap_tangent_k10() {
    compare(10, 0.2, Scheme::Oaq, 105);
    compare(10, 0.5, Scheme::Oaq, 106);
}

#[test]
fn oaq_underlap_gap_k9() {
    compare(9, 0.2, Scheme::Oaq, 107);
    compare(9, 0.5, Scheme::Oaq, 108);
}

#[test]
fn baq_overlap_k12() {
    compare(12, 0.2, Scheme::Baq, 109);
    compare(12, 0.5, Scheme::Baq, 110);
}

#[test]
fn baq_underlap_k9_and_k10() {
    compare(9, 0.2, Scheme::Baq, 111);
    compare(10, 0.2, Scheme::Baq, 112);
}

/// The paper's headline conditional number, reproduced by the *protocol*
/// rather than the formula: P(Y = 3 | k = 12) ≈ 0.44 under OAQ and 0.20
/// under BAQ (τ = 5, µ = 0.5, ν = 30).
#[test]
fn paper_k12_headline_numbers_from_simulation() {
    let opts = |seed| MonteCarloOptions {
        episodes: 12_000,
        mu: 0.5,
        seed,
    };
    let oaq = estimate_conditional_qos(&ProtocolConfig::reference(12, Scheme::Oaq), &opts(201));
    let baq = estimate_conditional_qos(&ProtocolConfig::reference(12, Scheme::Baq), &opts(202));
    assert!(
        (oaq.p[3] - 0.44).abs() < 0.02,
        "OAQ P(Y=3|12) = {:.3}",
        oaq.p[3]
    );
    assert!(
        (baq.p[3] - 0.20).abs() < 0.02,
        "BAQ P(Y=3|12) = {:.3}",
        baq.p[3]
    );
}
