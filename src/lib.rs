//! # oaq — opportunity-adaptive QoS enhancement in satellite constellations
//!
//! Umbrella crate re-exporting the full reproduction stack of Tai, Tso,
//! Alkalai, Chau & Sanders, *"Opportunity-Adaptive QoS Enhancement in
//! Satellite Constellations: A Case Study"* (DSN 2003).
//!
//! | Layer | Crate | What it provides |
//! |---|---|---|
//! | protocol | [`oaq_core`] | the OAQ coordination protocol, BAQ baseline, episode simulator |
//! | model | [`oaq_analytic`] | the paper's closed-form QoS evaluation (Eq. 1–4, Theorems 1–2) |
//! | substrate | [`oaq_san`] | stochastic activity networks + CTMC solvers (UltraSAN substitute) |
//! | substrate | [`oaq_geoloc`] | Doppler/TOA sequential localization (iterative WLS) |
//! | substrate | [`oaq_orbit`] | constellation geometry, footprints, revisit/coverage times |
//! | substrate | [`oaq_net`] | crosslink network simulation (delays, loss, fail-silence) |
//! | extension | [`oaq_membership`] | heartbeat/gossip group membership (the paper's stated follow-on) |
//! | serving | [`oaq_engine`] | batched, cached, multi-worker QoS query-serving engine |
//! | substrate | [`oaq_exec`] | deterministic fork-join executor (bit-identical at any worker count) |
//! | substrate | [`oaq_sim`] | deterministic discrete-event kernel + statistics |
//! | substrate | [`oaq_linalg`] | dense linear algebra for the estimators and solvers |
//!
//! See `README.md` for a guided tour, `DESIGN.md` for the system inventory
//! and `EXPERIMENTS.md` for the paper-vs-measured record.
//!
//! ## Quickstart
//!
//! ```
//! use oaq::core::config::{ProtocolConfig, Scheme};
//! use oaq::core::protocol::Episode;
//!
//! // A degraded plane (k = 10: underlapping footprints).
//! let cfg = ProtocolConfig::reference(10, Scheme::Oaq);
//! let outcome = Episode::new(&cfg, 7).run(6.0, 12.0);
//! println!("delivered a {} result", outcome.level);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod tutorial;

pub use oaq_analytic as analytic;
pub use oaq_core as core;
pub use oaq_engine as engine;
pub use oaq_exec as exec;
pub use oaq_geoloc as geoloc;
pub use oaq_linalg as linalg;
pub use oaq_membership as membership;
pub use oaq_net as net;
pub use oaq_orbit as orbit;
pub use oaq_san as san;
pub use oaq_sim as sim;
