//! A guided tour of the OAQ stack, bottom-up. Every snippet compiles and
//! runs as a doctest.
//!
//! # 1. Geometry: when does a plane stop overlapping?
//!
//! The QoS spectrum is driven by one geometric comparison — revisit time
//! `Tr[k] = θ/k` against coverage time `Tc`:
//!
//! ```
//! use oaq::analytic::PlaneGeometry;
//!
//! for k in (9..=14).rev() {
//!     let g = PlaneGeometry::reference(k);
//!     println!("k={k}: Tr={:.2}  {}", g.tr(),
//!              if g.is_overlapping() { "overlap" } else { "underlap" });
//! }
//! // Underlap begins below k = 11 (paper Section 4.2.1).
//! assert!(PlaneGeometry::reference(11).is_overlapping());
//! assert!(!PlaneGeometry::reference(10).is_overlapping());
//! ```
//!
//! # 2. The conditional QoS model (Eq. 4 and friends)
//!
//! ```
//! use oaq::analytic::{PlaneGeometry, QosParams};
//! use oaq::analytic::qos::{conditional_qos, Scheme};
//!
//! let g = PlaneGeometry::reference(12);
//! let q = QosParams::paper_defaults(0.5);
//! let oaq = conditional_qos(Scheme::Oaq, &g, &q);
//! let baq = conditional_qos(Scheme::Baq, &g, &q);
//! // The paper's quoted pair: 0.44 vs 0.20.
//! assert!((oaq.p(3) - 0.44).abs() < 0.01);
//! assert!((baq.p(3) - 0.20).abs() < 0.005);
//! ```
//!
//! # 3. The plane availability model (Figure 7)
//!
//! ```
//! use oaq::analytic::capacity::CapacityParams;
//!
//! let pk = CapacityParams::reference(5e-5, 30_000.0, 10)
//!     .distribution()
//!     .expect("small CTMC always solves");
//! assert!((pk.iter().sum::<f64>() - 1.0).abs() < 1e-9);
//! assert_eq!(pk[9], 0.0, "threshold replenishment pins the plane at 10");
//! ```
//!
//! # 4. Composing the QoS measure (Eq. 3)
//!
//! ```
//! use oaq::analytic::compose::{EvaluationConfig, Scheme};
//!
//! let cfg = EvaluationConfig::paper_defaults(1e-5);
//! let d = cfg.qos_ccdf(Scheme::Oaq).expect("solves");
//! assert!((d.p_at_least(2) - 0.75).abs() < 0.03); // the Figure 9 anchor
//! ```
//!
//! # 5. Running the protocol itself
//!
//! The analytic model idealizes; the protocol simulator doesn't. Satellites
//! are state machines over a crosslink network with real delays:
//!
//! ```
//! use oaq::core::config::{ProtocolConfig, Scheme};
//! use oaq::core::protocol::Episode;
//! use oaq::core::qos_level::QosLevel;
//!
//! let cfg = ProtocolConfig::reference(10, Scheme::Oaq);
//! // A 30-minute signal born mid-window of satellite 0.
//! let out = Episode::new(&cfg, 6).run(6.0, 30.0);
//! assert_eq!(out.level, QosLevel::SequentialDual);
//! assert!(out.deadline_met);
//!
//! // Kill the recruit: the wait-timeout guarantee still delivers.
//! let out = Episode::new(&cfg, 6).with_failure(1, 1.0).run(6.0, 30.0);
//! assert_eq!(out.level, QosLevel::Single);
//! assert!(out.deadline_met);
//! ```
//!
//! # 6. Monte-Carlo estimation and the cross-validation
//!
//! ```
//! use oaq::core::config::{ProtocolConfig, Scheme};
//! use oaq::core::experiment::{estimate_conditional_qos, MonteCarloOptions};
//! use oaq::analytic::{PlaneGeometry, QosParams};
//! use oaq::analytic::qos::{conditional_qos, Scheme as AScheme};
//!
//! let est = estimate_conditional_qos(
//!     &ProtocolConfig::reference(10, Scheme::Oaq),
//!     &MonteCarloOptions { episodes: 2000, mu: 0.2, seed: 1 },
//! );
//! let exact = conditional_qos(
//!     AScheme::Oaq,
//!     &PlaneGeometry::reference(10),
//!     &QosParams::paper_defaults(0.2),
//! );
//! assert!((est.p_at_least(2) - exact.p_at_least(2)).abs() < 0.03);
//! ```
//!
//! # 7. Real geolocation under the hood
//!
//! The abstract accuracy model can be swapped for the actual iterative
//! weighted-least-squares estimator:
//!
//! ```
//! use oaq::core::config::{ProtocolConfig, Scheme};
//! use oaq::core::fullstack::run_fullstack_chain;
//!
//! let mut cfg = ProtocolConfig::reference(10, Scheme::Oaq);
//! cfg.tau = 25.0;
//! let report = run_fullstack_chain(&cfg, 2, 3);
//! // The second pass collapses the single-satellite Doppler ambiguity.
//! assert!(report.iterations[1].reported_error_km
//!         < report.iterations[0].reported_error_km);
//! ```
//!
//! # 8. The membership extension
//!
//! ```
//! use oaq::membership::{MembershipConfig, MembershipSim};
//!
//! let cfg = MembershipConfig::plane(10);
//! let mut sim = MembershipSim::new(&cfg, 5);
//! sim.fail_node(4, 25.0);
//! sim.run_until(25.0 + cfg.detection_bound());
//! assert!(sim.all_alive_suspect(4));
//! assert_eq!(sim.false_suspicions(), 0);
//! ```
//!
//! From here: `EXPERIMENTS.md` maps every paper artifact to a runnable
//! binary, and the crate docs of each layer go deeper.
