//! Property-based tests of protocol-level invariants, across randomized
//! capacities, timings, signals and fault injections.

use oaq_core::config::{ProtocolConfig, Scheme};
use oaq_core::protocol::Episode;
use oaq_core::qos_level::QosLevel;
use oaq_core::signal::CoverageGeometry;
use proptest::prelude::*;

fn any_cfg() -> impl Strategy<Value = ProtocolConfig> {
    (2usize..16, 1.0f64..8.0, any::<bool>(), any::<bool>()).prop_map(|(k, tau, oaq, backward)| {
        let mut cfg = ProtocolConfig::reference(k, if oaq { Scheme::Oaq } else { Scheme::Baq });
        cfg.tau = tau;
        cfg.backward_messaging = backward;
        cfg
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn level_respects_regime_table(
        cfg in any_cfg(),
        birth in 0.0f64..90.0,
        duration in 0.0f64..30.0,
        seed in any::<u64>(),
    ) {
        let out = Episode::new(&cfg, seed).run(birth, duration);
        match out.level {
            QosLevel::SimultaneousDual => prop_assert!(cfg.is_overlapping()),
            QosLevel::SequentialDual => prop_assert!(!cfg.is_overlapping()),
            QosLevel::Missed => prop_assert!(
                !cfg.is_overlapping() || out.delivered_at.is_none()
            ),
            QosLevel::Single => {}
        }
    }

    #[test]
    fn fault_free_alerts_meet_the_deadline(
        cfg in any_cfg(),
        birth in 0.0f64..90.0,
        duration in 0.0f64..30.0,
        seed in any::<u64>(),
    ) {
        let out = Episode::new(&cfg, seed).run(birth, duration);
        // Without injected faults, any detected signal yields a delivery
        // within τ of detection — the protocol's core guarantee, for both
        // schemes and both messaging variants.
        if out.level > QosLevel::Missed {
            prop_assert!(out.deadline_met, "late alert: {out:?}");
            prop_assert!(out.delivered_at.is_some());
        }
        prop_assert!(out.s1_released || out.level == QosLevel::Missed);
    }

    #[test]
    fn overlap_never_misses(
        k in 11usize..15,
        birth in 0.0f64..90.0,
        duration in 0.0f64..30.0,
        seed in any::<u64>(),
    ) {
        let cfg = ProtocolConfig::reference(k, Scheme::Oaq);
        let out = Episode::new(&cfg, seed).run(birth, duration);
        prop_assert!(
            out.level >= QosLevel::Single,
            "overlapping geometry always covers: {out:?}"
        );
    }

    #[test]
    fn chain_length_bounded_by_eq2(
        k in 9usize..11,
        tau in 1.0f64..30.0,
        birth in 0.0f64..90.0,
        seed in any::<u64>(),
    ) {
        let mut cfg = ProtocolConfig::reference(k, Scheme::Oaq);
        cfg.tau = tau;
        let out = Episode::new(&cfg, seed).run(birth, 60.0);
        let l1 = cfg.tr();
        let l2 = (cfg.tc - l1).abs();
        let m_bound = if tau > l2 { 2 + ((tau - l2) / l1).floor() as usize } else { 1 };
        prop_assert!(
            out.chain_length <= m_bound.min(k),
            "chain {} exceeds M[k] = {} (k={k}, tau={tau})",
            out.chain_length,
            m_bound
        );
    }

    #[test]
    fn oaq_level_weakly_dominates_baq_per_episode(
        k in 9usize..15,
        birth in 0.0f64..90.0,
        duration in 0.5f64..30.0,
        seed in any::<u64>(),
    ) {
        let oaq = Episode::new(&ProtocolConfig::reference(k, Scheme::Oaq), seed)
            .run(birth, duration);
        let baq = Episode::new(&ProtocolConfig::reference(k, Scheme::Baq), seed)
            .run(birth, duration);
        // Identical world (same seed => same detection and computation
        // draws for S1): OAQ's delivered level is never worse.
        prop_assert!(
            oaq.level >= baq.level,
            "OAQ {:?} < BAQ {:?}",
            oaq.level,
            baq.level
        );
    }

    #[test]
    fn arbitrary_window_patterns_respect_protocol_invariants(
        offsets in prop::collection::vec(0.0f64..90.0, 2..8),
        durations in prop::collection::vec(1.0f64..12.0, 2..8),
        birth in 0.0f64..180.0,
        duration in 0.5f64..30.0,
        seed in any::<u64>(),
    ) {
        // A fully irregular multi-plane sweep: random window starts and
        // lengths. The protocol's guarantees must hold regardless.
        let k = offsets.len().min(durations.len());
        prop_assume!(k >= 2);
        let windows: Vec<(f64, f64)> = offsets[..k]
            .iter()
            .zip(&durations[..k])
            .map(|(&o, &d)| (o, d))
            .collect();
        let geom = CoverageGeometry::with_windows(windows.clone(), 90.0);
        let cfg = ProtocolConfig::reference(k, Scheme::Oaq);
        let out = Episode::new(&cfg, seed)
            .with_geometry(geom)
            .run(birth, duration);
        // Timeliness: any detection yields an on-time alert (fault-free).
        if out.level > QosLevel::Missed {
            prop_assert!(out.deadline_met, "{out:?}");
        }
        // Simultaneous dual requires two windows that actually intersect
        // somewhere in the periodic pattern.
        if out.level == QosLevel::SimultaneousDual {
            let intersects = |a: (f64, f64), b: (f64, f64)| -> bool {
                // Compare on the circle of circumference 90.
                let gap = (b.0 - a.0).rem_euclid(90.0);
                gap < a.1 || (90.0 - gap) < b.1
            };
            let some_overlap = (0..k).any(|i| {
                (0..k).any(|j| i != j && intersects(windows[i], windows[j]))
            });
            prop_assert!(some_overlap, "Y=3 without overlapping windows: {windows:?}");
        }
    }

    #[test]
    fn deliveries_never_precede_detection_plus_computation(
        cfg in any_cfg(),
        birth in 0.0f64..90.0,
        duration in 0.1f64..30.0,
        seed in any::<u64>(),
    ) {
        let out = Episode::new(&cfg, seed).run(birth, duration);
        if let Some(at) = out.delivered_at {
            prop_assert!(at >= birth, "delivered before the signal existed");
        }
    }
}
