//! Property-based tests of the mission simulator.

use oaq_core::config::Scheme;
use oaq_core::mission::{run_mission, MissionConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn missions_conserve_probability_and_time(
        lambda_e in 1u32..20,
        scheme_oaq in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let scheme = if scheme_oaq { Scheme::Oaq } else { Scheme::Baq };
        let cfg = MissionConfig::reference(scheme, f64::from(lambda_e) * 1e-5, 60_000.0);
        let r = run_mission(&cfg, seed);
        prop_assert_eq!(r.level_counts.iter().sum::<usize>(), r.signals);
        let mass: f64 = r.capacity_fractions.iter().sum();
        prop_assert!((mass - 1.0).abs() < 1e-9);
        // Pinning: no time below eta.
        for k in 0..cfg.eta as usize {
            prop_assert_eq!(r.capacity_fractions[k], 0.0);
        }
        // Fault-free protocol: every detected alert on time.
        prop_assert!(r.timeliness > 0.999);
        if r.signals > 0 {
            prop_assert!((r.p_at_least(0) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn higher_lambda_means_more_threshold_time(
        seed in any::<u64>(),
    ) {
        let low = run_mission(
            &MissionConfig::reference(Scheme::Oaq, 1e-5, 120_000.0), seed);
        let high = run_mission(
            &MissionConfig::reference(Scheme::Oaq, 1e-4, 120_000.0), seed);
        prop_assert!(high.capacity_fractions[10] > low.capacity_fractions[10]);
        prop_assert!(high.failures > low.failures);
    }
}
