//! Long-horizon mission simulation.
//!
//! The per-episode simulator ([`crate::protocol`]) answers `P(Y = y | k)`;
//! a *mission* couples it with the plane's availability process: satellites
//! fail over months (rate λ per hour), in-orbit spares deploy, the ground
//! replenishes at the threshold η and restores the full complement every φ
//! hours, while signals keep arriving as a Poisson stream. The mission
//! report is the operational analogue of the paper's Eq. 3 composition —
//! the two are compared in this module's tests and in the
//! `surveillance_mission` example.

use oaq_sim::SimRng;

use crate::config::{ProtocolConfig, Scheme};
use crate::protocol::Episode;
use crate::qos_level::QosLevel;

/// Mission-level configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MissionConfig {
    /// Protocol parameters (the per-plane geometry and timing); the `k`
    /// field is ignored — capacity evolves with the availability process.
    pub protocol: ProtocolConfig,
    /// Full plane capacity (14 in the reference design).
    pub capacity: u32,
    /// In-orbit spares (2 in the reference design).
    pub spares: u32,
    /// Per-satellite failure rate λ, per **hour**.
    pub lambda_per_hour: f64,
    /// Scheduled full-restore period φ, hours.
    pub phi_hours: f64,
    /// Replenishment threshold η.
    pub eta: u32,
    /// Signal arrival rate, per **hour** (Poisson stream).
    pub signal_rate_per_hour: f64,
    /// Signal termination rate µ, per **minute**.
    pub mu: f64,
    /// Mission length, hours.
    pub mission_hours: f64,
}

impl MissionConfig {
    /// The reference mission: paper plane (14 + 2, η = 10, φ = 30000 h),
    /// τ = 5, µ = 0.2, one signal every 10 hours, for `mission_hours`.
    ///
    /// # Panics
    ///
    /// Panics on invalid parameters.
    #[must_use]
    pub fn reference(scheme: Scheme, lambda_per_hour: f64, mission_hours: f64) -> Self {
        let mut protocol = ProtocolConfig::reference(14, scheme);
        protocol.tau = 5.0;
        let cfg = MissionConfig {
            protocol,
            capacity: 14,
            spares: 2,
            lambda_per_hour,
            phi_hours: 30_000.0,
            eta: 10,
            signal_rate_per_hour: 0.1,
            mu: 0.2,
            mission_hours,
        };
        cfg.validate();
        cfg
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on non-positive rates/horizons or `eta >= capacity`.
    pub fn validate(&self) {
        self.protocol.validate();
        assert!(self.capacity > 0, "capacity must be positive");
        assert!(self.eta < self.capacity, "eta must be below capacity");
        assert!(
            self.lambda_per_hour > 0.0 && self.lambda_per_hour.is_finite(),
            "bad lambda"
        );
        assert!(
            self.phi_hours > 0.0 && self.phi_hours.is_finite(),
            "bad phi"
        );
        assert!(
            self.signal_rate_per_hour > 0.0 && self.signal_rate_per_hour.is_finite(),
            "bad signal rate"
        );
        assert!(self.mu > 0.0 && self.mu.is_finite(), "bad mu");
        assert!(
            self.mission_hours > 0.0 && self.mission_hours.is_finite(),
            "bad mission length"
        );
    }
}

/// What a mission run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct MissionReport {
    /// Signals handled.
    pub signals: usize,
    /// Count of episodes per QoS level `y = 0..=3`.
    pub level_counts: [usize; 4],
    /// Fraction of mission time spent at each capacity `k = 0..=capacity`.
    pub capacity_fractions: Vec<f64>,
    /// Satellite failures over the mission (including spare-absorbed ones).
    pub failures: u64,
    /// Scheduled full restores performed.
    pub scheduled_restores: u64,
    /// Threshold replenishments performed.
    pub replenishments: u64,
    /// Fraction of detected signals whose alert met the deadline.
    pub timeliness: f64,
}

impl MissionReport {
    /// Empirical `P(Y = y)` over the mission's signals.
    ///
    /// # Panics
    ///
    /// Panics if the mission saw no signals.
    #[must_use]
    pub fn qos_distribution(&self) -> [f64; 4] {
        assert!(self.signals > 0, "no signals in mission");
        let n = self.signals as f64;
        [
            self.level_counts[0] as f64 / n,
            self.level_counts[1] as f64 / n,
            self.level_counts[2] as f64 / n,
            self.level_counts[3] as f64 / n,
        ]
    }

    /// Empirical `P(Y ≥ y)`.
    ///
    /// # Panics
    ///
    /// Panics if `y > 3` or the mission saw no signals.
    #[must_use]
    pub fn p_at_least(&self, y: usize) -> f64 {
        assert!(y <= 3, "QoS levels are 0..=3");
        let d = self.qos_distribution();
        d[y..].iter().sum()
    }
}

/// Runs a mission.
///
/// The availability process advances in continuous (hour-scale) time; each
/// Poisson signal arrival freezes the current capacity `k` and plays a
/// (minute-scale) protocol episode at that capacity — the time-scale
/// separation the paper's decomposition (Eq. 3) relies on, made explicit.
///
/// # Panics
///
/// Panics on an invalid configuration.
#[must_use]
pub fn run_mission(cfg: &MissionConfig, seed: u64) -> MissionReport {
    cfg.validate();
    let mut rng = SimRng::seed_from(seed);
    let mut episode_rng = rng.fork();

    let mut k = cfg.capacity;
    let mut spares = cfg.spares;
    let mut now_h = 0.0_f64;
    let mut next_restore = cfg.phi_hours;
    let mut failures = 0u64;
    let mut scheduled_restores = 0u64;
    let mut replenishments = 0u64;
    let mut capacity_time = vec![0.0f64; cfg.capacity as usize + 1];

    let mut level_counts = [0usize; 4];
    let mut signals = 0usize;
    let mut timely = 0usize;
    let mut detected = 0usize;

    while now_h < cfg.mission_hours {
        // Competing exponentials: next failure vs next signal; the restore
        // clock is deterministic.
        let fail_rate = cfg.lambda_per_hour * f64::from(k);
        let t_fail = now_h + rng.exp(fail_rate);
        let t_signal = now_h + rng.exp(cfg.signal_rate_per_hour);
        let t_next = t_fail
            .min(t_signal)
            .min(next_restore)
            .min(cfg.mission_hours);
        capacity_time[k as usize] += t_next - now_h;
        now_h = t_next;
        if now_h >= cfg.mission_hours {
            break;
        }
        if now_h == next_restore {
            k = cfg.capacity;
            spares = cfg.spares;
            scheduled_restores += 1;
            next_restore += cfg.phi_hours;
        } else if now_h == t_fail {
            failures += 1;
            if spares > 0 {
                spares -= 1;
            } else if k > cfg.eta {
                k -= 1;
            } else {
                // Threshold policy: ground replaces one-for-one.
                replenishments += 1;
            }
        } else {
            // A signal arrives: play one episode at the frozen capacity.
            signals += 1;
            let mut pcfg = cfg.protocol;
            pcfg.k = k as usize;
            let birth = pcfg.theta + episode_rng.uniform(0.0, pcfg.tr());
            let duration = episode_rng.exp(cfg.mu);
            let out =
                Episode::new(&pcfg, seed.wrapping_add(signals as u64 * 6151)).run(birth, duration);
            level_counts[out.level.as_y()] += 1;
            if out.level > QosLevel::Missed {
                detected += 1;
                if out.deadline_met {
                    timely += 1;
                }
            }
        }
    }

    let total: f64 = capacity_time.iter().sum();
    MissionReport {
        signals,
        level_counts,
        capacity_fractions: capacity_time.iter().map(|t| t / total).collect(),
        failures,
        scheduled_restores,
        replenishments,
        timeliness: if detected == 0 {
            1.0
        } else {
            timely as f64 / detected as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mission_conserves_signals_and_time() {
        let cfg = MissionConfig::reference(Scheme::Oaq, 5e-5, 200_000.0);
        let r = run_mission(&cfg, 1);
        assert_eq!(r.level_counts.iter().sum::<usize>(), r.signals);
        assert!(r.signals > 10_000, "~0.1/h over 200k h: {}", r.signals);
        let frac_total: f64 = r.capacity_fractions.iter().sum();
        assert!((frac_total - 1.0).abs() < 1e-9);
        assert!(r.timeliness > 0.999);
    }

    #[test]
    fn restores_follow_the_schedule() {
        let cfg = MissionConfig::reference(Scheme::Oaq, 5e-5, 95_000.0);
        let r = run_mission(&cfg, 2);
        assert_eq!(r.scheduled_restores, 3, "phi = 30000 in 95000 h");
    }

    #[test]
    fn capacity_never_leaves_the_pinned_band() {
        let cfg = MissionConfig::reference(Scheme::Oaq, 2e-4, 150_000.0);
        let r = run_mission(&cfg, 3);
        for k in 0..cfg.eta as usize {
            assert_eq!(r.capacity_fractions[k], 0.0, "k = {k} must be pinned out");
        }
        assert!(r.replenishments > 0, "high lambda must hit the threshold");
    }

    #[test]
    fn mission_matches_analytic_composition() {
        // The mission-level empirical P(Y>=2) should agree with Eq. 3
        // (capacity distribution x conditional QoS) within noise.
        let lambda = 5e-5;
        let cfg = MissionConfig::reference(Scheme::Oaq, lambda, 1_500_000.0);
        let r = run_mission(&cfg, 4);
        let analytic = oaq_analytic::compose::EvaluationConfig::paper_defaults(lambda)
            .qos_ccdf(oaq_analytic::compose::Scheme::Oaq)
            .unwrap()
            .p_at_least(2);
        let mission = r.p_at_least(2);
        assert!(
            (mission - analytic).abs() < 0.03,
            "mission {mission:.4} vs Eq.3 {analytic:.4}"
        );
    }

    #[test]
    fn oaq_mission_beats_baq_mission() {
        let oaq = run_mission(&MissionConfig::reference(Scheme::Oaq, 8e-5, 400_000.0), 5);
        let baq = run_mission(&MissionConfig::reference(Scheme::Baq, 8e-5, 400_000.0), 5);
        assert!(oaq.p_at_least(2) > baq.p_at_least(2) + 0.1);
        assert!((oaq.p_at_least(1) - baq.p_at_least(1)).abs() < 0.02);
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = MissionConfig::reference(Scheme::Oaq, 5e-5, 50_000.0);
        assert_eq!(run_mission(&cfg, 9), run_mission(&cfg, 9));
    }

    #[test]
    #[should_panic(expected = "eta must be below capacity")]
    fn invalid_mission_rejected() {
        let mut cfg = MissionConfig::reference(Scheme::Oaq, 5e-5, 1000.0);
        cfg.eta = 14;
        cfg.validate();
    }
}
