//! Bridge from real constellation geometry to protocol coverage windows.
//!
//! The analytic model and the Monte-Carlo experiments use the idealized
//! center-line pattern (`CoverageGeometry::new`); this module derives the
//! *actual* coverage windows of a ground target from an `oaq-orbit`
//! constellation — every satellite of every plane whose footprint sweeps
//! the target contributes a window with its true start and duration — so
//! the OAQ protocol can be exercised against the real multi-plane geometry
//! at any latitude.

use oaq_orbit::plane::SatelliteId;
use oaq_orbit::units::{Minutes, Radians};
use oaq_orbit::{Constellation, GroundPoint};

use crate::signal::CoverageGeometry;

/// A derived scenario: the coverage geometry over one target plus the
/// identity of each participating satellite.
#[derive(Debug, Clone)]
pub struct DerivedScenario {
    /// The protocol-facing coverage geometry (index `i` is satellite
    /// `participants[i]`).
    pub geometry: CoverageGeometry,
    /// Which physical satellite each geometry index corresponds to.
    pub participants: Vec<SatelliteId>,
}

impl DerivedScenario {
    /// Derives the coverage pattern of `target` from the constellation's
    /// actual geometry over one orbital period.
    ///
    /// For each active satellite the footprint coverage of the target is
    /// scanned over `[0, θ)` at `step` resolution and refined by bisection;
    /// satellites that never cover the target are excluded. Satellites
    /// whose single pass wraps the period boundary are handled. Returns
    /// `None` if no satellite ever covers the target (out of constellation
    /// reach).
    ///
    /// # Panics
    ///
    /// Panics if `step` is not in `(0, θ)`.
    #[must_use]
    pub fn from_constellation(
        constellation: &Constellation,
        target: &GroundPoint,
        step: Minutes,
    ) -> Option<Self> {
        let theta = constellation.period().value();
        assert!(
            step.value() > 0.0 && step.value() < theta,
            "step must be in (0, θ)"
        );
        let fp = constellation.footprint();
        let mut windows = Vec::new();
        let mut participants = Vec::new();
        for plane in constellation.planes() {
            for pos in 0..plane.active_count() {
                let id = plane.satellites()[pos];
                let phase = plane.satellite_phase(pos);
                let covered = |t: f64| -> bool {
                    let center = plane
                        .orbit()
                        .subsatellite_point(phase, Minutes(t.rem_euclid(theta)));
                    fp.covers(&center, target)
                };
                if let Some((start, dur)) = single_window(&covered, theta, step.value()) {
                    windows.push((start, dur));
                    participants.push(id);
                }
            }
        }
        if windows.is_empty() {
            return None;
        }
        Some(DerivedScenario {
            geometry: CoverageGeometry::with_windows(windows, theta),
            participants,
        })
    }

    /// Number of satellites participating in the pattern.
    #[must_use]
    pub fn k(&self) -> usize {
        self.participants.len()
    }

    /// The participating satellite for geometry index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn satellite(&self, i: usize) -> SatelliteId {
        self.participants[i]
    }
}

/// Finds the (assumed single, possibly period-wrapping) coverage window of
/// a periodic indicator over `[0, theta)`: returns `(start, duration)`.
fn single_window(covered: &dyn Fn(f64) -> bool, theta: f64, step: f64) -> Option<(f64, f64)> {
    // Locate an uncovered anchor so a wrapping window is seen contiguously.
    let mut anchor = None;
    let mut t = 0.0;
    while t < theta {
        if !covered(t) {
            anchor = Some(t);
            break;
        }
        t += step;
    }
    let anchor = anchor?; // covered at every sample: degenerate, exclude
                          // Scan one full period from the anchor for the rise and fall.
    let mut rise: Option<f64> = None;
    let mut fall: Option<f64> = None;
    let mut prev = anchor;
    let mut prev_cov = false;
    let mut s = step;
    while s <= theta + step {
        let now = anchor + s;
        let cov = covered(now);
        if cov != prev_cov {
            let crossing = refine(covered, prev, now);
            if cov {
                rise = Some(crossing);
            } else {
                fall = Some(crossing);
                break; // single-window assumption: first fall ends it
            }
        }
        prev = now;
        prev_cov = cov;
        s += step;
    }
    let rise = rise?;
    let fall = fall.unwrap_or(anchor + theta); // still covered at wrap end
    let dur = fall - rise;
    if dur <= 0.0 {
        return None;
    }
    Some((rise.rem_euclid(theta), dur.min(theta * 0.999)))
}

fn refine(covered: &dyn Fn(f64) -> bool, mut lo: f64, mut hi: f64) -> f64 {
    let lo_cov = covered(lo);
    for _ in 0..40 {
        let mid = 0.5 * (lo + hi);
        if covered(mid) == lo_cov {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Derives the scenario and also returns a [`Radians`] diagnostic: the
/// cross-track offset of the target from each participant's ground track
/// at closest approach (useful to see who is a center-line pass and who is
/// a side lobe).
///
/// # Panics
///
/// Panics if `step` is invalid (see
/// [`DerivedScenario::from_constellation`]).
#[must_use]
pub fn closest_approaches(
    constellation: &Constellation,
    target: &GroundPoint,
    step: Minutes,
) -> Vec<(SatelliteId, Radians)> {
    let theta = constellation.period().value();
    assert!(step.value() > 0.0 && step.value() < theta, "bad step");
    let mut out = Vec::new();
    for plane in constellation.planes() {
        for pos in 0..plane.active_count() {
            let id = plane.satellites()[pos];
            let phase = plane.satellite_phase(pos);
            let mut best = f64::MAX;
            let mut t = 0.0;
            while t < theta {
                let center = plane.orbit().subsatellite_point(phase, Minutes(t));
                best = best.min(center.central_angle(target).value());
                t += step.value();
            }
            out.push((id, Radians(best)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ProtocolConfig, Scheme};
    use crate::protocol::Episode;
    use crate::qos_level::QosLevel;
    use oaq_orbit::units::Degrees;

    fn target_on_plane0() -> GroundPoint {
        // The ascending ground track of plane 0 (RAAN 0, non-rotating
        // earth) crosses 30°N at lon = atan2(cos i · sin u, cos u) with
        // u = asin(sin 30 / sin 85).
        let i = Degrees(85.0).to_radians().value();
        let u = (Degrees(30.0).to_radians().value().sin() / i.sin()).asin();
        let lon = (i.cos() * u.sin()).atan2(u.cos());
        GroundPoint::new(Degrees(30.0).to_radians(), Radians(lon))
    }

    #[test]
    fn reference_constellation_derives_a_rich_pattern() {
        let c = Constellation::reference();
        let scenario = DerivedScenario::from_constellation(&c, &target_on_plane0(), Minutes(0.05))
            .expect("full constellation covers everything");
        // At least plane 0's 14 satellites participate; adjacent planes may
        // add side-lobe windows.
        assert!(scenario.k() >= 14, "only {} participants", scenario.k());
        // Center-line passes last ~Tc = 9 min.
        let max_dur = scenario
            .geometry
            .windows()
            .iter()
            .map(|&(_, d)| d)
            .fold(0.0f64, f64::max);
        assert!((max_dur - 9.0).abs() < 0.2, "longest window {max_dur}");
        // Plane 0 contributes exactly 14 of the participants.
        let plane0 = scenario
            .participants
            .iter()
            .filter(|id| id.plane == 0)
            .count();
        assert_eq!(plane0, 14);
    }

    #[test]
    fn derived_geometry_runs_the_protocol_end_to_end() {
        let c = Constellation::reference();
        let scenario = DerivedScenario::from_constellation(&c, &target_on_plane0(), Minutes(0.05))
            .expect("covered");
        let mut cfg = ProtocolConfig::reference(scenario.k(), Scheme::Oaq);
        cfg.theta = 90.0;
        // A long signal in the real full-constellation pattern must reach
        // simultaneous dual coverage (the pattern is overlap-rich).
        let out = Episode::new(&cfg, 5)
            .with_geometry(scenario.geometry.clone())
            .run(10.0, 60.0);
        assert_eq!(out.level, QosLevel::SimultaneousDual);
        assert!(out.deadline_met);
    }

    #[test]
    fn degraded_plane_weakens_the_derived_pattern() {
        let mut c = Constellation::reference();
        for _ in 0..6 {
            c.plane_mut(0).fail_one();
        }
        let scenario = DerivedScenario::from_constellation(&c, &target_on_plane0(), Minutes(0.05))
            .expect("still covered");
        let plane0 = scenario
            .participants
            .iter()
            .filter(|id| id.plane == 0)
            .count();
        assert_eq!(plane0, 10, "degraded plane contributes its k = 10");
    }

    #[test]
    fn unreachable_target_returns_none() {
        // A single tiny plane with a small footprint cannot cover the far
        // side of the globe... use a 1-plane constellation and a target
        // well off its track.
        let c = oaq_orbit::constellation::ConstellationBuilder::new()
            .planes(1)
            .satellites_per_plane(4)
            .coverage_time(Minutes(2.0))
            .inclination(Degrees(10.0))
            .build();
        let target = GroundPoint::from_degrees(Degrees(80.0), Degrees(0.0));
        assert!(DerivedScenario::from_constellation(&c, &target, Minutes(0.05)).is_none());
    }

    #[test]
    fn closest_approaches_identify_center_line_passes() {
        let c = Constellation::reference();
        let approaches = closest_approaches(&c, &target_on_plane0(), Minutes(0.05));
        let best = approaches
            .iter()
            .map(|&(_, a)| a.value())
            .fold(f64::MAX, f64::min);
        assert!(
            best < Degrees(1.0).to_radians().value(),
            "someone passes nearly overhead: {best}"
        );
    }
}
