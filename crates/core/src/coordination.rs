//! The coordination message vocabulary (paper Figure 3).

/// A peer-to-peer coordination message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CoordMessage {
    /// `Sn → Sn+1`: join the coordinated iterative geolocation. Carries the
    /// accumulated measurements and the preliminary result (abstracted here
    /// to the bookkeeping the protocol needs).
    Request {
        /// Time of the initial detection `t0`.
        t0: f64,
        /// The requester's ordinal position `n` in the chain (the receiver
        /// becomes `n + 1`).
        requester_pos: usize,
        /// Number of measurement passes accumulated so far.
        passes: usize,
        /// The requester's reported error, km.
        reported_error_km: f64,
    },
    /// `Sn+1 → Sn`: coordination has terminated; release and propagate
    /// downstream.
    ///
    /// Under the backward-messaging variant this message is never sent:
    /// the `Request` itself transfers responsibility for the requester's
    /// result to the receiver (paper Section 3.2, last paragraph).
    Done,
}

impl CoordMessage {
    /// A short wire tag for the message kind (diagnostics, wire encoding).
    #[must_use]
    pub fn tag(&self) -> u8 {
        match self {
            CoordMessage::Request { .. } => 1,
            CoordMessage::Done => 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_fields_roundtrip() {
        let r = CoordMessage::Request {
            t0: 4.5,
            requester_pos: 2,
            passes: 2,
            reported_error_km: 7.5,
        };
        if let CoordMessage::Request {
            t0,
            requester_pos,
            passes,
            reported_error_km,
        } = r
        {
            assert_eq!(t0, 4.5);
            assert_eq!(requester_pos, 2);
            assert_eq!(passes, 2);
            assert_eq!(reported_error_km, 7.5);
        } else {
            panic!("variant mismatch");
        }
    }

    #[test]
    fn tags_are_distinct() {
        let r = CoordMessage::Request {
            t0: 0.0,
            requester_pos: 1,
            passes: 1,
            reported_error_km: 50.0,
        };
        assert_eq!([r.tag(), CoordMessage::Done.tag()], [1, 2]);
    }
}
