//! Monte-Carlo estimation of the conditional QoS distribution.
//!
//! Experiment E9: the empirical `P(Y = y | k)` produced by the *protocol
//! simulation* is compared against the closed-form `oaq-analytic` model —
//! two fully independent derivations of the same quantity (the paper only
//! has the analytic one).

use oaq_sim::par::{Merge, Replicator};
use oaq_sim::rng::substream_seed;

use crate::config::ProtocolConfig;
use crate::protocol::{Episode, EpisodeScratch};
use crate::qos_level::QosLevel;

/// Monte-Carlo options.
#[derive(Debug, Clone, Copy)]
pub struct MonteCarloOptions {
    /// Number of signal episodes.
    pub episodes: usize,
    /// Signal termination rate µ (durations are Exp(µ), minutes).
    pub mu: f64,
    /// Base RNG seed.
    pub seed: u64,
}

/// The empirical conditional QoS distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QosEstimate {
    /// `P(Y = y | k)` for `y = 0..=3`.
    pub p: [f64; 4],
    /// Episodes simulated.
    pub episodes: usize,
    /// Fraction of episodes whose alert met the deadline (conditioned on
    /// detection).
    pub timeliness: f64,
    /// Mean crosslink messages per episode.
    pub mean_messages: f64,
    /// Mean alert latency (delivery time − detection-window start) over
    /// detected episodes, minutes. OAQ trades latency for quality — the
    /// imprecise-computation flavor the paper notes in Section 3.3.
    pub mean_alert_latency: f64,
}

impl QosEstimate {
    /// `P(Y ≥ y | k)`.
    ///
    /// # Panics
    ///
    /// Panics if `y > 3`.
    #[must_use]
    pub fn p_at_least(&self, y: usize) -> f64 {
        assert!(y <= 3, "QoS levels are 0..=3");
        self.p[y..].iter().sum()
    }

    /// The 95% Monte-Carlo half-width for a probability estimate `p̂`.
    #[must_use]
    pub fn ci95(&self, p_hat: f64) -> f64 {
        1.96 * (p_hat * (1.0 - p_hat) / self.episodes as f64).sqrt()
    }
}

/// Per-chunk partial sums for the QoS estimator. Integer fields merge
/// exactly; alert latencies are kept per episode (chunks concatenate in
/// ascending replication order under the ordered merge) and summed once,
/// sequentially, at the end — so the float reduction order is independent
/// of both the worker count *and* the chunk size.
#[derive(Debug, Clone, Default)]
struct QosSink {
    counts: [u64; 4],
    timely: u64,
    detected: u64,
    messages: u64,
    latencies: Vec<f64>,
}

impl Merge for QosSink {
    fn merge(&mut self, other: &Self) {
        self.counts.merge(&other.counts);
        self.timely.merge(&other.timely);
        self.detected.merge(&other.detected);
        self.messages.merge(&other.messages);
        self.latencies.merge(&other.latencies);
    }
}

/// Estimates `P(Y = y | k)` by simulating `episodes` independent signals.
///
/// Signal births are uniform over one revisit period (PASTA) and durations
/// exponential with rate `mu`, matching the analytic model's assumptions.
/// Equivalent to [`estimate_conditional_qos_par`] with one worker.
///
/// # Panics
///
/// Panics if `episodes == 0` or `mu <= 0`, or on invalid `cfg`.
#[must_use]
pub fn estimate_conditional_qos(cfg: &ProtocolConfig, opts: &MonteCarloOptions) -> QosEstimate {
    estimate_conditional_qos_par(cfg, opts, 1)
}

/// Estimates `P(Y = y | k)`, fanning episodes across `workers` threads
/// (`0` = one per core).
///
/// Episode `i` draws its birth time and duration from the counter-based
/// substream `(opts.seed, i)` and seeds its protocol run from the same
/// substream value (offset by one so the episode's internal stream is
/// decorrelated from the arrival draws). The estimate is a pure function
/// of `(cfg, opts)`: any worker count returns the identical value.
///
/// # Panics
///
/// Panics if `episodes == 0` or `mu <= 0`, or on invalid `cfg`.
#[must_use]
pub fn estimate_conditional_qos_par(
    cfg: &ProtocolConfig,
    opts: &MonteCarloOptions,
    workers: usize,
) -> QosEstimate {
    estimate_conditional_qos_fanout(cfg, opts, workers, None)
}

/// [`estimate_conditional_qos_par`] with an explicit chunk-size override
/// (`None` = adaptive chunking). Chunking only changes episode batching,
/// never the estimate.
///
/// # Panics
///
/// Panics if `episodes == 0`, `mu <= 0`, `chunk == Some(0)`, or on
/// invalid `cfg`.
#[must_use]
pub fn estimate_conditional_qos_fanout(
    cfg: &ProtocolConfig,
    opts: &MonteCarloOptions,
    workers: usize,
    chunk: Option<u64>,
) -> QosEstimate {
    estimate_conditional_qos_stressed(cfg, opts, workers, chunk, false)
}

/// [`estimate_conditional_qos_fanout`] with the scheduler's forced-steal
/// stressor switched on. Stealing moves episodes between workers but each
/// episode still runs under its own substream and per-worker
/// [`EpisodeScratch`], so the estimate is unchanged by construction — this
/// entry exists so invariance tests and benches can prove that.
///
/// # Panics
///
/// Panics if `episodes == 0`, `mu <= 0`, `chunk == Some(0)`, or on
/// invalid `cfg`.
#[must_use]
pub fn estimate_conditional_qos_stressed(
    cfg: &ProtocolConfig,
    opts: &MonteCarloOptions,
    workers: usize,
    chunk: Option<u64>,
    forced_steals: bool,
) -> QosEstimate {
    assert!(opts.episodes > 0, "need at least one episode");
    assert!(opts.mu.is_finite() && opts.mu > 0.0, "mu must be positive");
    cfg.validate();
    let sink = Replicator::new(workers)
        .with_chunk_override(chunk)
        .with_forced_steals(forced_steals)
        .run_scratch(
            opts.episodes as u64,
            opts.seed,
            QosSink::default,
            EpisodeScratch::new,
            |i, rng, scratch, sink| {
                // Offset births away from t = 0 so pre-birth coverage history
                // is well-defined for every satellite.
                let birth = cfg.theta + rng.uniform(0.0, cfg.tr());
                let duration = rng.exp(opts.mu);
                let episode_seed = substream_seed(opts.seed, i).wrapping_add(1);
                let out = Episode::new(cfg, episode_seed).run_scratch(birth, duration, scratch);
                sink.counts[out.level.as_y()] += 1;
                sink.messages += out.messages_sent;
                if out.level > QosLevel::Missed {
                    sink.detected += 1;
                    if out.deadline_met {
                        sink.timely += 1;
                    }
                    if let Some(at) = out.delivered_at {
                        sink.latencies.push(at - birth);
                    }
                }
            },
        );
    let n = opts.episodes as f64;
    QosEstimate {
        p: [
            sink.counts[0] as f64 / n,
            sink.counts[1] as f64 / n,
            sink.counts[2] as f64 / n,
            sink.counts[3] as f64 / n,
        ],
        episodes: opts.episodes,
        timeliness: if sink.detected == 0 {
            1.0
        } else {
            sink.timely as f64 / sink.detected as f64
        },
        mean_messages: sink.messages as f64 / n,
        mean_alert_latency: if sink.detected == 0 {
            0.0
        } else {
            // Sequential fold in episode order: chunk- and worker-invariant.
            sink.latencies.iter().sum::<f64>() / sink.detected as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scheme;

    fn opts(mu: f64, episodes: usize) -> MonteCarloOptions {
        MonteCarloOptions {
            episodes,
            mu,
            seed: 1234,
        }
    }

    #[test]
    fn distribution_is_proper_and_timely() {
        let cfg = ProtocolConfig::reference(10, Scheme::Oaq);
        let est = estimate_conditional_qos(&cfg, &opts(0.2, 2000));
        let total: f64 = est.p.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!(
            est.timeliness > 0.999,
            "fault-free runs must always meet the deadline, got {}",
            est.timeliness
        );
    }

    #[test]
    fn oaq_beats_baq_in_underlap() {
        let oaq = estimate_conditional_qos(
            &ProtocolConfig::reference(10, Scheme::Oaq),
            &opts(0.2, 3000),
        );
        let baq = estimate_conditional_qos(
            &ProtocolConfig::reference(10, Scheme::Baq),
            &opts(0.2, 3000),
        );
        assert!(
            oaq.p_at_least(2) > 0.25,
            "OAQ P(Y>=2) = {}",
            oaq.p_at_least(2)
        );
        assert_eq!(baq.p[2], 0.0, "BAQ cannot reach sequential dual");
        assert!(oaq.mean_messages > baq.mean_messages);
        assert!(
            oaq.mean_alert_latency > baq.mean_alert_latency,
            "OAQ trades latency for quality: {} vs {}",
            oaq.mean_alert_latency,
            baq.mean_alert_latency
        );
    }

    #[test]
    fn tangent_case_has_no_misses() {
        // k = 10: L2 = 0, no coverage gap.
        let est = estimate_conditional_qos(
            &ProtocolConfig::reference(10, Scheme::Oaq),
            &opts(0.5, 1500),
        );
        assert_eq!(est.p[0], 0.0);
    }

    #[test]
    fn gap_case_misses_some_targets() {
        // k = 9: 1-minute gaps; with µ = 2.0 (30-second signals) some die
        // inside the gap.
        let est =
            estimate_conditional_qos(&ProtocolConfig::reference(9, Scheme::Oaq), &opts(2.0, 1500));
        assert!(est.p[0] > 0.01, "expected misses, got {}", est.p[0]);
    }

    #[test]
    fn estimates_are_reproducible() {
        let cfg = ProtocolConfig::reference(12, Scheme::Oaq);
        let a = estimate_conditional_qos(&cfg, &opts(0.5, 500));
        let b = estimate_conditional_qos(&cfg, &opts(0.5, 500));
        assert_eq!(a, b);
    }

    #[test]
    fn worker_count_never_changes_the_estimate() {
        let cfg = ProtocolConfig::reference(9, Scheme::Oaq);
        let serial = estimate_conditional_qos(&cfg, &opts(0.5, 400));
        for workers in [2, 4] {
            let par = estimate_conditional_qos_par(&cfg, &opts(0.5, 400), workers);
            assert_eq!(par, serial, "{workers} workers");
        }
    }

    #[test]
    fn chunk_override_never_changes_the_estimate() {
        let cfg = ProtocolConfig::reference(9, Scheme::Oaq);
        let serial = estimate_conditional_qos(&cfg, &opts(0.5, 400));
        for chunk in [1u64, 13, 400, 10_000] {
            let par = estimate_conditional_qos_fanout(&cfg, &opts(0.5, 400), 2, Some(chunk));
            assert_eq!(par, serial, "chunk {chunk}");
        }
    }

    #[test]
    fn forced_steals_never_change_the_estimate() {
        let cfg = ProtocolConfig::reference(9, Scheme::Oaq);
        let serial = estimate_conditional_qos(&cfg, &opts(0.5, 400));
        for workers in [2, 4] {
            for chunk in [None, Some(16u64), Some(7)] {
                let stressed =
                    estimate_conditional_qos_stressed(&cfg, &opts(0.5, 400), workers, chunk, true);
                assert_eq!(stressed, serial, "{workers} workers, chunk {chunk:?}");
            }
        }
    }

    #[test]
    fn ci_shrinks_with_episodes() {
        let cfg = ProtocolConfig::reference(12, Scheme::Oaq);
        let small = estimate_conditional_qos(&cfg, &opts(0.5, 200));
        let large = estimate_conditional_qos(&cfg, &opts(0.5, 2000));
        assert!(large.ci95(0.5) < small.ci95(0.5));
    }
}
