//! Full-stack episodes: the protocol driving the *real* geolocation
//! estimator.
//!
//! The Monte-Carlo experiments use an abstract accuracy model for speed;
//! this module wires a coordination chain to `oaq-geoloc`'s sequential
//! localizer so an episode produces an actual iterative weighted
//! least-squares track of the error — the end-to-end demonstration the
//! examples and experiment E10 use.

use oaq_geoloc::batch::BatchSolver;
use oaq_geoloc::doppler::DopplerMeasurement;
use oaq_geoloc::emitter::Emitter;
use oaq_geoloc::scenario::PassScenario;
use oaq_geoloc::sequential::SequentialLocalizer;
use oaq_geoloc::wls::{Estimate, SolveError, WlsSolver, STATE_DIM};
use oaq_orbit::units::{Degrees, Minutes};
use oaq_orbit::GroundPoint;
use oaq_sim::SimRng;

use crate::config::ProtocolConfig;

/// One accuracy-improvement iteration of a full-stack episode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationReport {
    /// Chain position (1 = detecting satellite).
    pub chain_pos: usize,
    /// When the pass's computation completed, minutes from detection.
    pub completed_at: f64,
    /// True great-circle error of the estimate, km.
    pub actual_error_km: f64,
    /// The estimator's own 1-σ error radius, km (what TC-1 thresholds).
    pub reported_error_km: f64,
}

/// The result of a full-stack coordinated localization.
#[derive(Debug, Clone, PartialEq)]
pub struct FullStackReport {
    /// Per-iteration error track, in chain order.
    pub iterations: Vec<IterationReport>,
    /// Where the emitter actually was.
    pub emitter_position: (f64, f64),
}

impl FullStackReport {
    /// The error track improved monotonically in its reported uncertainty.
    #[must_use]
    pub fn reported_errors_decrease(&self) -> bool {
        self.iterations
            .windows(2)
            .all(|w| w[1].reported_error_km <= w[0].reported_error_km * 1.001)
    }

    /// The final actual error, km.
    ///
    /// # Panics
    ///
    /// Panics if the report is empty.
    #[must_use]
    pub fn final_error_km(&self) -> f64 {
        self.iterations
            .last()
            .expect("report has at least one iteration")
            .actual_error_km
    }
}

/// Runs a coordinated sequential localization over a real emitter with
/// `chain_length` satellites revisiting every `Tr[k]` minutes, under the
/// timing of `cfg`.
///
/// # Panics
///
/// Panics if `chain_length == 0` or the configuration is invalid.
///
/// # Examples
///
/// ```
/// use oaq_core::config::{ProtocolConfig, Scheme};
/// use oaq_core::fullstack::run_fullstack_chain;
///
/// let mut cfg = ProtocolConfig::reference(10, Scheme::Oaq);
/// cfg.tau = 25.0; // allow a 3-deep chain
/// let report = run_fullstack_chain(&cfg, 3, 7);
/// assert_eq!(report.iterations.len(), 3);
/// assert!(report.final_error_km() < report.iterations[0].actual_error_km);
/// ```
#[must_use]
pub fn run_fullstack_chain(
    cfg: &ProtocolConfig,
    chain_length: usize,
    seed: u64,
) -> FullStackReport {
    assert!(chain_length >= 1, "need at least one satellite");
    cfg.validate();
    let mut rng = SimRng::seed_from(seed);
    let emitter = Emitter::new(
        GroundPoint::from_degrees(Degrees(30.0), Degrees(rng.uniform(-60.0, 60.0))),
        400.0e6,
    );
    let scenario = PassScenario::new(
        &emitter,
        Degrees(85.0).to_radians(),
        Minutes(cfg.theta),
        Minutes(cfg.tc / 2.0),
        Minutes(cfg.tr()),
    );
    let mut localizer = SequentialLocalizer::new(emitter.initial_guess_nearby(1.0));
    let mut iterations = Vec::with_capacity(chain_length);
    let t0 = scenario.overflight_time(0).value();
    for pos in 0..chain_length {
        localizer.add_pass(scenario.synthesize_pass(pos, &mut rng));
        let est = localizer
            .estimate()
            .expect("reference scenario geometry is solvable");
        let compute = rng.exp(cfg.nu);
        iterations.push(IterationReport {
            chain_pos: pos + 1,
            completed_at: scenario.overflight_time(pos).value() - t0 + compute,
            actual_error_km: est.position_error_km(&emitter.position()),
            reported_error_km: est.error_radius_km(),
        });
    }
    FullStackReport {
        iterations,
        emitter_position: (
            emitter.position().lat().to_degrees().value(),
            emitter.position().lon().to_degrees().value(),
        ),
    }
}

/// One emitter's synthesized observation set in the many-emitter tracking
/// workload: everything needed to solve its track and judge the estimate.
#[derive(Debug, Clone)]
pub struct EmitterTrack {
    /// Initial state handed to the solver.
    pub x0: [f64; STATE_DIM],
    /// All Doppler measurements across the track's passes.
    pub observations: Vec<DopplerMeasurement>,
    /// Where the emitter actually is.
    pub truth: GroundPoint,
}

/// Summary of one many-emitter tracking step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmitterBatchReport {
    /// Tracks attempted.
    pub emitters: u32,
    /// Tracks whose solve converged.
    pub solved: u32,
    /// Mean 1-σ reported error radius over solved tracks, km (the TC-1
    /// quantity; what the engine's `EmitterTracking` measure serves).
    pub mean_reported_error_km: f64,
    /// Mean true great-circle error over solved tracks, km.
    pub mean_actual_error_km: f64,
}

/// Synthesizes `emitters` independent tracks: each emitter gets its own
/// counter-derived RNG substream (`SimRng::substream(seed, e)`), a random
/// longitude in ±60° at latitude 30°, and `passes` successive revisits of
/// the `(θ, Tc, revisit)` scenario — the same per-emitter construction as
/// [`run_fullstack_chain`], minus the coordination-timing layer.
///
/// # Panics
///
/// Panics if `emitters == 0`, `passes == 0`, or the scenario geometry is
/// invalid (non-positive revisit).
#[must_use]
pub fn synthesize_emitter_tracks(
    theta: f64,
    tc: f64,
    revisit: f64,
    emitters: u32,
    passes: u32,
    seed: u64,
) -> Vec<EmitterTrack> {
    assert!(emitters >= 1, "need at least one emitter");
    assert!(passes >= 1, "need at least one pass");
    (0..emitters)
        .map(|e| {
            let mut rng = SimRng::substream(seed, u64::from(e));
            let emitter = Emitter::new(
                GroundPoint::from_degrees(Degrees(30.0), Degrees(rng.uniform(-60.0, 60.0))),
                400.0e6,
            );
            let scenario = PassScenario::new(
                &emitter,
                Degrees(85.0).to_radians(),
                Minutes(theta),
                Minutes(tc / 2.0),
                Minutes(revisit),
            );
            let mut observations = Vec::new();
            for pass in 0..passes as usize {
                observations.extend(scenario.synthesize_pass(pass, &mut rng));
            }
            EmitterTrack {
                x0: emitter.initial_guess_nearby(1.0),
                observations,
                truth: emitter.position(),
            }
        })
        .collect()
}

/// Solves every track through the structure-of-arrays [`BatchSolver`]
/// (clearing and refilling it, so one solver instance amortizes scratch
/// across steps). Bit-identical to [`solve_tracks_looped`].
pub fn solve_tracks_batched(
    tracks: &[EmitterTrack],
    batch: &mut BatchSolver<DopplerMeasurement>,
) -> Vec<Result<Estimate, SolveError>> {
    batch.clear();
    for t in tracks {
        batch.push_track(t.x0, t.observations.iter().copied());
    }
    batch.solve_all()
}

/// The looped reference: one [`WlsSolver::solve_obs`] call per track — the
/// pre-batch per-emitter path the batch solver is bench-compared and
/// bit-identity-checked against.
#[must_use]
pub fn solve_tracks_looped(tracks: &[EmitterTrack]) -> Vec<Result<Estimate, SolveError>> {
    let solver = WlsSolver::new();
    tracks
        .iter()
        .map(|t| solver.solve_obs(&t.observations, t.x0))
        .collect()
}

/// Summarizes solve results against their tracks (means over the solved
/// subset).
///
/// # Panics
///
/// Panics if no track solved (the reference geometry always solves; an
/// all-failure batch indicates parameter misuse).
#[must_use]
pub fn summarize_tracks(
    tracks: &[EmitterTrack],
    results: &[Result<Estimate, SolveError>],
) -> EmitterBatchReport {
    let mut solved = 0u32;
    let mut reported = 0.0;
    let mut actual = 0.0;
    for (t, r) in tracks.iter().zip(results) {
        if let Ok(est) = r {
            solved += 1;
            reported += est.error_radius_km();
            actual += est.position_error_km(&t.truth);
        }
    }
    assert!(solved > 0, "no track solved — unsolvable scenario geometry");
    #[allow(clippy::cast_possible_truncation)]
    EmitterBatchReport {
        emitters: tracks.len() as u32,
        solved,
        mean_reported_error_km: reported / f64::from(solved),
        mean_actual_error_km: actual / f64::from(solved),
    }
}

/// The many-emitter tracking workload end to end: synthesize
/// [`synthesize_emitter_tracks`], solve through the batched SoA path, and
/// summarize. This is what the engine's `EmitterTracking` measure
/// evaluates.
///
/// # Panics
///
/// As [`synthesize_emitter_tracks`] and [`summarize_tracks`].
#[must_use]
pub fn run_emitter_batch(
    theta: f64,
    tc: f64,
    revisit: f64,
    emitters: u32,
    passes: u32,
    seed: u64,
) -> EmitterBatchReport {
    let tracks = synthesize_emitter_tracks(theta, tc, revisit, emitters, passes, seed);
    let mut batch = BatchSolver::new(WlsSolver::new());
    let results = solve_tracks_batched(&tracks, &mut batch);
    summarize_tracks(&tracks, &results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scheme;
    use oaq_geoloc::Observation;

    fn deep_cfg() -> ProtocolConfig {
        let mut cfg = ProtocolConfig::reference(10, Scheme::Oaq);
        cfg.tau = 30.0;
        cfg
    }

    #[test]
    fn chain_iterations_reduce_reported_error() {
        let report = run_fullstack_chain(&deep_cfg(), 3, 11);
        assert_eq!(report.iterations.len(), 3);
        assert!(
            report.reported_errors_decrease(),
            "reported error track: {:?}",
            report
                .iterations
                .iter()
                .map(|i| i.reported_error_km)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn second_pass_collapses_single_pass_ambiguity() {
        let report = run_fullstack_chain(&deep_cfg(), 2, 12);
        let first = report.iterations[0].reported_error_km;
        let second = report.iterations[1].reported_error_km;
        assert!(
            second < first / 5.0,
            "expected large collapse: {first} -> {second}"
        );
    }

    #[test]
    fn timestamps_are_spaced_by_revisit() {
        let cfg = deep_cfg();
        let report = run_fullstack_chain(&cfg, 3, 13);
        let dt = report.iterations[1].completed_at - report.iterations[0].completed_at;
        // Within computation jitter of Tr.
        assert!((dt - cfg.tr()).abs() < 1.0, "spacing {dt}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run_fullstack_chain(&deep_cfg(), 2, 5);
        let b = run_fullstack_chain(&deep_cfg(), 2, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn batched_tracking_is_bit_identical_to_looped() {
        // The batch solver's contract at workload level: the SoA path and
        // the per-emitter looped path produce bit-identical estimates and
        // summary means for the same synthesized tracks.
        for seed in [3u64, 17, 99] {
            let tracks = synthesize_emitter_tracks(90.0, 9.0, 9.0, 12, 3, seed);
            let mut batch = BatchSolver::new(WlsSolver::new());
            let batched = solve_tracks_batched(&tracks, &mut batch);
            let looped = solve_tracks_looped(&tracks);
            assert_eq!(batched.len(), looped.len());
            for (b, l) in batched.iter().zip(&looped) {
                match (b, l) {
                    (Ok(b), Ok(l)) => {
                        for (bs, ls) in b.state.iter().zip(&l.state) {
                            assert_eq!(bs.to_bits(), ls.to_bits());
                        }
                        assert_eq!(b.error_radius_km().to_bits(), l.error_radius_km().to_bits());
                    }
                    (b, l) => panic!("outcome mismatch: {b:?} vs {l:?}"),
                }
            }
            let br = summarize_tracks(&tracks, &batched);
            let lr = summarize_tracks(&tracks, &looped);
            assert_eq!(
                br.mean_reported_error_km.to_bits(),
                lr.mean_reported_error_km.to_bits()
            );
            assert_eq!(
                br.mean_actual_error_km.to_bits(),
                lr.mean_actual_error_km.to_bits()
            );
        }
    }

    #[test]
    fn emitter_batch_is_deterministic_and_substreamed() {
        let a = run_emitter_batch(90.0, 9.0, 9.0, 8, 2, 42);
        let b = run_emitter_batch(90.0, 9.0, 9.0, 8, 2, 42);
        assert_eq!(a, b, "same seed, same report");
        assert_eq!(a.emitters, 8);
        assert_eq!(a.solved, 8, "reference geometry solves every track");
        assert!(a.mean_reported_error_km.is_finite() && a.mean_reported_error_km > 0.0);
        // Per-emitter substreams: a batch prefix equals the smaller batch
        // (emitter e's track depends only on (seed, e), not on the batch
        // size), so growing the fleet never perturbs existing tracks.
        let small = synthesize_emitter_tracks(90.0, 9.0, 9.0, 4, 2, 42);
        let large = synthesize_emitter_tracks(90.0, 9.0, 9.0, 8, 2, 42);
        for (s, l) in small.iter().zip(&large) {
            assert_eq!(s.x0, l.x0);
            assert_eq!(s.observations.len(), l.observations.len());
            for (so, lo) in s.observations.iter().zip(&l.observations) {
                assert_eq!(so.observed().to_bits(), lo.observed().to_bits());
            }
        }
    }

    #[test]
    fn episode_outcomes_unchanged_under_fast_path() {
        // Regression guard for the stack-kernel fast path: replay the
        // episode with the identical RNG stream through the pre-PR
        // heap/dyn estimator and demand the exact same per-iteration
        // report (the fast path's bit-identity contract, end to end).
        let cfg = deep_cfg();
        for seed in [5, 11, 12] {
            let fast = run_fullstack_chain(&cfg, 3, seed);

            let mut rng = SimRng::seed_from(seed);
            let emitter = Emitter::new(
                GroundPoint::from_degrees(Degrees(30.0), Degrees(rng.uniform(-60.0, 60.0))),
                400.0e6,
            );
            let scenario = PassScenario::new(
                &emitter,
                Degrees(85.0).to_radians(),
                Minutes(cfg.theta),
                Minutes(cfg.tc / 2.0),
                Minutes(cfg.tr()),
            );
            let mut localizer = SequentialLocalizer::new(emitter.initial_guess_nearby(1.0));
            for (pos, report) in fast.iterations.iter().enumerate() {
                localizer.add_pass(scenario.synthesize_pass(pos, &mut rng));
                let est = localizer.estimate_heap_dyn().expect("solvable geometry");
                let _ = rng.exp(cfg.nu);
                assert_eq!(
                    est.position_error_km(&emitter.position()).to_bits(),
                    report.actual_error_km.to_bits(),
                    "seed {seed} pass {pos}: actual error diverged"
                );
                assert_eq!(
                    est.error_radius_km().to_bits(),
                    report.reported_error_km.to_bits(),
                    "seed {seed} pass {pos}: reported error diverged"
                );
            }
        }
    }
}
