//! Full-stack episodes: the protocol driving the *real* geolocation
//! estimator.
//!
//! The Monte-Carlo experiments use an abstract accuracy model for speed;
//! this module wires a coordination chain to `oaq-geoloc`'s sequential
//! localizer so an episode produces an actual iterative weighted
//! least-squares track of the error — the end-to-end demonstration the
//! examples and experiment E10 use.

use oaq_geoloc::emitter::Emitter;
use oaq_geoloc::scenario::PassScenario;
use oaq_geoloc::sequential::SequentialLocalizer;
use oaq_orbit::units::{Degrees, Minutes};
use oaq_orbit::GroundPoint;
use oaq_sim::SimRng;

use crate::config::ProtocolConfig;

/// One accuracy-improvement iteration of a full-stack episode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationReport {
    /// Chain position (1 = detecting satellite).
    pub chain_pos: usize,
    /// When the pass's computation completed, minutes from detection.
    pub completed_at: f64,
    /// True great-circle error of the estimate, km.
    pub actual_error_km: f64,
    /// The estimator's own 1-σ error radius, km (what TC-1 thresholds).
    pub reported_error_km: f64,
}

/// The result of a full-stack coordinated localization.
#[derive(Debug, Clone, PartialEq)]
pub struct FullStackReport {
    /// Per-iteration error track, in chain order.
    pub iterations: Vec<IterationReport>,
    /// Where the emitter actually was.
    pub emitter_position: (f64, f64),
}

impl FullStackReport {
    /// The error track improved monotonically in its reported uncertainty.
    #[must_use]
    pub fn reported_errors_decrease(&self) -> bool {
        self.iterations
            .windows(2)
            .all(|w| w[1].reported_error_km <= w[0].reported_error_km * 1.001)
    }

    /// The final actual error, km.
    ///
    /// # Panics
    ///
    /// Panics if the report is empty.
    #[must_use]
    pub fn final_error_km(&self) -> f64 {
        self.iterations
            .last()
            .expect("report has at least one iteration")
            .actual_error_km
    }
}

/// Runs a coordinated sequential localization over a real emitter with
/// `chain_length` satellites revisiting every `Tr[k]` minutes, under the
/// timing of `cfg`.
///
/// # Panics
///
/// Panics if `chain_length == 0` or the configuration is invalid.
///
/// # Examples
///
/// ```
/// use oaq_core::config::{ProtocolConfig, Scheme};
/// use oaq_core::fullstack::run_fullstack_chain;
///
/// let mut cfg = ProtocolConfig::reference(10, Scheme::Oaq);
/// cfg.tau = 25.0; // allow a 3-deep chain
/// let report = run_fullstack_chain(&cfg, 3, 7);
/// assert_eq!(report.iterations.len(), 3);
/// assert!(report.final_error_km() < report.iterations[0].actual_error_km);
/// ```
#[must_use]
pub fn run_fullstack_chain(
    cfg: &ProtocolConfig,
    chain_length: usize,
    seed: u64,
) -> FullStackReport {
    assert!(chain_length >= 1, "need at least one satellite");
    cfg.validate();
    let mut rng = SimRng::seed_from(seed);
    let emitter = Emitter::new(
        GroundPoint::from_degrees(Degrees(30.0), Degrees(rng.uniform(-60.0, 60.0))),
        400.0e6,
    );
    let scenario = PassScenario::new(
        &emitter,
        Degrees(85.0).to_radians(),
        Minutes(cfg.theta),
        Minutes(cfg.tc / 2.0),
        Minutes(cfg.tr()),
    );
    let mut localizer = SequentialLocalizer::new(emitter.initial_guess_nearby(1.0));
    let mut iterations = Vec::with_capacity(chain_length);
    let t0 = scenario.overflight_time(0).value();
    for pos in 0..chain_length {
        localizer.add_pass(scenario.synthesize_pass(pos, &mut rng));
        let est = localizer
            .estimate()
            .expect("reference scenario geometry is solvable");
        let compute = rng.exp(cfg.nu);
        iterations.push(IterationReport {
            chain_pos: pos + 1,
            completed_at: scenario.overflight_time(pos).value() - t0 + compute,
            actual_error_km: est.position_error_km(&emitter.position()),
            reported_error_km: est.error_radius_km(),
        });
    }
    FullStackReport {
        iterations,
        emitter_position: (
            emitter.position().lat().to_degrees().value(),
            emitter.position().lon().to_degrees().value(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scheme;

    fn deep_cfg() -> ProtocolConfig {
        let mut cfg = ProtocolConfig::reference(10, Scheme::Oaq);
        cfg.tau = 30.0;
        cfg
    }

    #[test]
    fn chain_iterations_reduce_reported_error() {
        let report = run_fullstack_chain(&deep_cfg(), 3, 11);
        assert_eq!(report.iterations.len(), 3);
        assert!(
            report.reported_errors_decrease(),
            "reported error track: {:?}",
            report
                .iterations
                .iter()
                .map(|i| i.reported_error_km)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn second_pass_collapses_single_pass_ambiguity() {
        let report = run_fullstack_chain(&deep_cfg(), 2, 12);
        let first = report.iterations[0].reported_error_km;
        let second = report.iterations[1].reported_error_km;
        assert!(
            second < first / 5.0,
            "expected large collapse: {first} -> {second}"
        );
    }

    #[test]
    fn timestamps_are_spaced_by_revisit() {
        let cfg = deep_cfg();
        let report = run_fullstack_chain(&cfg, 3, 13);
        let dt = report.iterations[1].completed_at - report.iterations[0].completed_at;
        // Within computation jitter of Tr.
        assert!((dt - cfg.tr()).abs() < 1.0, "spacing {dt}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run_fullstack_chain(&deep_cfg(), 2, 5);
        let b = run_fullstack_chain(&deep_cfg(), 2, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn episode_outcomes_unchanged_under_fast_path() {
        // Regression guard for the stack-kernel fast path: replay the
        // episode with the identical RNG stream through the pre-PR
        // heap/dyn estimator and demand the exact same per-iteration
        // report (the fast path's bit-identity contract, end to end).
        let cfg = deep_cfg();
        for seed in [5, 11, 12] {
            let fast = run_fullstack_chain(&cfg, 3, seed);

            let mut rng = SimRng::seed_from(seed);
            let emitter = Emitter::new(
                GroundPoint::from_degrees(Degrees(30.0), Degrees(rng.uniform(-60.0, 60.0))),
                400.0e6,
            );
            let scenario = PassScenario::new(
                &emitter,
                Degrees(85.0).to_radians(),
                Minutes(cfg.theta),
                Minutes(cfg.tc / 2.0),
                Minutes(cfg.tr()),
            );
            let mut localizer = SequentialLocalizer::new(emitter.initial_guess_nearby(1.0));
            for (pos, report) in fast.iterations.iter().enumerate() {
                localizer.add_pass(scenario.synthesize_pass(pos, &mut rng));
                let est = localizer.estimate_heap_dyn().expect("solvable geometry");
                let _ = rng.exp(cfg.nu);
                assert_eq!(
                    est.position_error_km(&emitter.position()).to_bits(),
                    report.actual_error_km.to_bits(),
                    "seed {seed} pass {pos}: actual error diverged"
                );
                assert_eq!(
                    est.error_radius_km().to_bits(),
                    report.reported_error_km.to_bits(),
                    "seed {seed} pass {pos}: reported error diverged"
                );
            }
        }
    }
}
