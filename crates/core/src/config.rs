//! Protocol configuration.

use oaq_net::link::GilbertElliott;
use oaq_net::{validate_loss_probability, RetryPolicy};
use oaq_sim::SimDuration;

/// The QoS-enhancement scheme to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Scheme {
    /// Opportunity-adaptive QoS enhancement: withhold, coordinate, iterate
    /// within the window of opportunity.
    Oaq,
    /// The basic fault-adaptive baseline: deliver right after the initial
    /// computation; no coordination.
    Baq,
}

/// How the abstract protocol models geolocation accuracy.
///
/// The full estimator lives in `oaq-geoloc` (see [`crate::fullstack`]);
/// for Monte-Carlo protocol studies an abstract per-iteration error model
/// keeps episodes cheap. The defaults reflect the sequential-localization
/// literature's shape: large single-pass ambiguity, strong collapse with a
/// second (offset) pass, best with simultaneous dual coverage.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AccuracyModel {
    /// Reported 1-σ error after a single-satellite computation, km.
    pub single_pass_km: f64,
    /// Multiplicative error reduction per additional sequential pass.
    pub sequential_factor: f64,
    /// Reported error for a simultaneous dual-coverage result, km.
    pub simultaneous_km: f64,
}

impl Default for AccuracyModel {
    fn default() -> Self {
        AccuracyModel {
            single_pass_km: 50.0,
            sequential_factor: 0.15,
            simultaneous_km: 1.0,
        }
    }
}

impl AccuracyModel {
    /// The reported error for a result built from `chain_length` sequential
    /// passes (or a simultaneous pair).
    ///
    /// # Panics
    ///
    /// Panics if `chain_length == 0` for a non-simultaneous result.
    #[must_use]
    pub fn error_km(&self, chain_length: usize, simultaneous: bool) -> f64 {
        if simultaneous {
            return self.simultaneous_km;
        }
        assert!(chain_length >= 1, "need at least one pass");
        self.single_pass_km * self.sequential_factor.powi(chain_length as i32 - 1)
    }
}

/// Parameters of the membership-assisted recruitment extension (built on
/// `oaq-membership`, the paper's stated follow-on direction).
///
/// When enabled, a coordinating satellite consults its membership view
/// before recruiting: peers whose failure is older than the service's
/// `detection_latency` are known-failed group-wide and are skipped in ring
/// order (reachable thanks to crosslink chords up to `max_skip` positions).
/// The protocol simulator models the service's *converged output*; the
/// service itself — heartbeats, gossip, rehabilitation — lives in the
/// `oaq-membership` crate, whose `detection_bound()` justifies the latency
/// used here (see the umbrella integration tests).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MembershipHints {
    /// Time (minutes) after a failure by which every survivor knows it.
    pub detection_latency: f64,
    /// Crosslink chord reach: how many ring positions a request can skip.
    pub max_skip: usize,
}

impl Default for MembershipHints {
    fn default() -> Self {
        // A 1-minute heartbeat with 3x suspicion and a half-ring gossip
        // sweep detects well inside ~12 minutes for a 14-satellite plane.
        MembershipHints {
            detection_latency: 12.0,
            max_skip: 3,
        }
    }
}

/// Full parameter set for one protocol scenario (single plane, worst-case
/// center-line target — the situation the paper's analytic model
/// formulates).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ProtocolConfig {
    /// Active satellites in the plane, `k`.
    pub k: usize,
    /// Orbit period θ, minutes.
    pub theta: f64,
    /// Coverage time Tc, minutes.
    pub tc: f64,
    /// Alert-delivery deadline τ, minutes (measured from initial
    /// detection).
    pub tau: f64,
    /// Iterative-computation completion rate ν (per minute).
    pub nu: f64,
    /// Maximum inter-satellite message delay δ, minutes.
    pub delta: f64,
    /// Crosslink per-message loss probability (`[0, 1)`).
    pub message_loss: f64,
    /// Bursty (Gilbert–Elliott) crosslink loss; when set it replaces the
    /// i.i.d. `message_loss` as the link's loss process.
    pub bursty_loss: Option<GilbertElliott>,
    /// Reliable-delivery retry budget for coordination requests:
    /// retransmissions beyond the first try. `0` = the paper's plain
    /// fire-and-forget send.
    pub retry_budget: u32,
    /// Per-try acknowledgement timeout (minutes) when `retry_budget > 0`.
    /// Should exceed one round trip, i.e. 2δ.
    pub retry_timeout: f64,
    /// Budgeted maximum geolocation computation time Tg, minutes (the
    /// constant in TC-2's local threshold; the sampled Exp(ν) times are
    /// almost surely below it).
    pub tg: f64,
    /// TC-1: stop expanding once the reported error drops below this, km.
    pub error_threshold_km: Option<f64>,
    /// The scheme under evaluation.
    pub scheme: Scheme,
    /// Use the backward-messaging variant (Sn+1 responsible for Sn's
    /// result) instead of the "coordination done" chain.
    pub backward_messaging: bool,
    /// Membership-assisted recruitment (extension; `None` = the paper's
    /// plain protocol).
    pub membership: Option<MembershipHints>,
    /// The abstract accuracy model.
    pub accuracy: AccuracyModel,
}

impl ProtocolConfig {
    /// The paper's evaluation configuration for a plane with `k` active
    /// satellites: θ = 90, Tc = 9, τ = 5, ν = 30, with a crosslink budget
    /// δ = 0.1 min and Tg = 0.5 min, no TC-1 threshold (the analytic model
    /// has none), done-chain messaging.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    #[must_use]
    pub fn reference(k: usize, scheme: Scheme) -> Self {
        let cfg = ProtocolConfig {
            k,
            theta: 90.0,
            tc: 9.0,
            tau: 5.0,
            nu: 30.0,
            delta: 0.1,
            message_loss: 0.0,
            bursty_loss: None,
            retry_budget: 0,
            retry_timeout: 0.25,
            tg: 0.5,
            error_threshold_km: None,
            scheme,
            backward_messaging: false,
            membership: None,
            accuracy: AccuracyModel::default(),
        };
        cfg.validate();
        cfg
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on nonsensical parameters (zero capacity, non-positive
    /// times, Tc ≥ θ, or δ/Tg budgets that leave TC-2 no room).
    pub fn validate(&self) {
        assert!(self.k >= 1, "need at least one satellite");
        assert!(self.theta > 0.0 && self.theta.is_finite(), "bad theta");
        assert!(self.tc > 0.0 && self.tc < self.theta, "need 0 < Tc < theta");
        assert!(self.tau > 0.0 && self.tau.is_finite(), "bad tau");
        assert!(self.nu > 0.0 && self.nu.is_finite(), "bad nu");
        assert!(self.delta >= 0.0 && self.delta.is_finite(), "bad delta");
        validate_loss_probability(self.message_loss)
            .unwrap_or_else(|e| panic!("message_loss: {e}"));
        if let Some(ge) = self.bursty_loss {
            ge.validate().unwrap_or_else(|e| panic!("bursty_loss: {e}"));
        }
        if self.retry_budget > 0 {
            assert!(
                self.retry_timeout > 0.0 && self.retry_timeout.is_finite(),
                "retry_timeout must be positive when retrying"
            );
        }
        assert!(self.tg >= 0.0 && self.tg.is_finite(), "bad Tg");
        assert!(
            self.delta_eff() + self.tg < self.tau,
            "TC-2 budget nδ_eff + Tg must leave room below tau"
        );
        if let Some(e) = self.error_threshold_km {
            assert!(e > 0.0 && e.is_finite(), "bad error threshold");
        }
        if let Some(h) = self.membership {
            assert!(
                h.detection_latency >= 0.0 && h.detection_latency.is_finite(),
                "bad detection latency"
            );
            assert!(h.max_skip >= 1, "chords must reach at least one peer");
        }
    }

    /// Revisit time `Tr[k] = θ/k`.
    #[must_use]
    pub fn tr(&self) -> f64 {
        self.theta / self.k as f64
    }

    /// The reliable-delivery policy implied by `retry_budget` and
    /// `retry_timeout`.
    #[must_use]
    pub fn retry_policy(&self) -> RetryPolicy {
        if self.retry_budget == 0 {
            RetryPolicy::none()
        } else {
            RetryPolicy::new(self.retry_budget, SimDuration::new(self.retry_timeout))
        }
    }

    /// δ_eff: the effective worst-case message delay the termination
    /// conditions must budget for. Without retries this is δ itself; with a
    /// retry budget it is [`RetryPolicy::effective_delay`], and every
    /// occurrence of δ in the paper's TC arithmetic (TC-2's
    /// `τ − (nδ + T_g)`, the wait-timeout `τ − (n−1)δ`) uses this value.
    #[must_use]
    pub fn delta_eff(&self) -> f64 {
        self.retry_policy()
            .effective_delay(SimDuration::new(self.delta))
            .as_minutes()
    }

    /// `true` when adjacent footprints overlap (`Tr[k] < Tc`).
    #[must_use]
    pub fn is_overlapping(&self) -> bool {
        self.tr() < self.tc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_matches_paper_regimes() {
        assert!(ProtocolConfig::reference(14, Scheme::Oaq).is_overlapping());
        assert!(ProtocolConfig::reference(11, Scheme::Oaq).is_overlapping());
        assert!(!ProtocolConfig::reference(10, Scheme::Oaq).is_overlapping());
    }

    #[test]
    fn accuracy_model_shrinks_with_chain() {
        let a = AccuracyModel::default();
        assert!(a.error_km(2, false) < a.error_km(1, false));
        assert!(a.error_km(3, false) < a.error_km(2, false));
        assert!(a.error_km(1, true) < a.error_km(2, false));
        assert_eq!(a.error_km(9, true), a.simultaneous_km);
    }

    #[test]
    #[should_panic(expected = "at least one pass")]
    fn zero_chain_rejected() {
        let _ = AccuracyModel::default().error_km(0, false);
    }

    #[test]
    #[should_panic(expected = "at least one satellite")]
    fn zero_capacity_rejected() {
        let _ = ProtocolConfig::reference(0, Scheme::Oaq);
    }

    #[test]
    #[should_panic(expected = "leave room below tau")]
    fn hopeless_budgets_rejected() {
        let mut cfg = ProtocolConfig::reference(10, Scheme::Oaq);
        cfg.tg = 10.0;
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "message_loss")]
    fn invalid_loss_rejected_via_shared_validator() {
        let mut cfg = ProtocolConfig::reference(10, Scheme::Oaq);
        cfg.message_loss = 1.0;
        cfg.validate();
    }

    #[test]
    fn delta_eff_folds_retries_into_tc_arithmetic() {
        let mut cfg = ProtocolConfig::reference(12, Scheme::Oaq);
        assert_eq!(cfg.delta_eff(), cfg.delta, "no retries: δ_eff = δ");
        cfg.retry_budget = 3;
        cfg.retry_timeout = 0.25;
        assert!((cfg.delta_eff() - 3.0 * 0.35).abs() < 1e-12);
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "leave room below tau")]
    fn retry_budget_exceeding_tau_rejected() {
        // δ_eff = 8 × (0.5 + 0.1) = 4.8; with Tg = 0.5 that overruns τ = 5.
        let mut cfg = ProtocolConfig::reference(12, Scheme::Oaq);
        cfg.retry_budget = 8;
        cfg.retry_timeout = 0.5;
        cfg.validate();
    }
}
