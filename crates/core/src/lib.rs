//! # oaq-core — the OAQ protocol
//!
//! The paper's primary contribution: **opportunity-adaptive QoS
//! enhancement**, a leaderless peer-to-peer protocol by which the
//! satellites of a (possibly degraded) constellation coordinate to deliver
//! signal-geolocation results with the best quality a dynamically
//! determined window of opportunity allows.
//!
//! The protocol (paper Section 3.2), implemented here as an event-driven
//! distributed simulation on `oaq-sim`/`oaq-net`:
//!
//! * the first satellite `S1` that detects a signal computes a preliminary
//!   geolocation; if it sees further opportunity it sends a
//!   **coordination request** (measurements + preliminary result) to the
//!   peer expected to visit the target next;
//! * each satellite `Sn` that completes an accuracy-improvement iteration
//!   checks the termination conditions — **TC-1** (estimated error below
//!   threshold), **TC-2** (elapsed time exceeds the local threshold
//!   `τ − (nδ + Tg)`), **TC-3** (signal stopped) — and either extends the
//!   chain or finalizes: it sends the alert to the ground and a
//!   **coordination done** message downstream;
//! * a satellite that requested coordination waits for "done" only until
//!   `τ − (n−1)δ`; on timeout it assumes TC-3 (or a fail-silent peer) and
//!   delivers its own result, guaranteeing a timely alert;
//! * the **backward-messaging** variant instead makes `Sn+1` responsible
//!   for `Sn`'s result, trading the done-chain for weaker fail-silence
//!   coverage.
//!
//! Module map: [`config`] (parameters and the OAQ/BAQ scheme switch),
//! [`signal`] (target coverage geometry and signal episodes),
//! [`coordination`] (the message vocabulary), [`satellite`] (per-satellite
//! protocol state), [`protocol`] (the event-driven episode simulator),
//! [`qos_level`] (the 4-level QoS spectrum and outcome records),
//! [`experiment`] (Monte-Carlo estimation of `P(Y ≥ y | k)`, validated
//! against `oaq-analytic` by this workspace's integration tests), and
//! [`fullstack`] (an episode driver wired to the real `oaq-geoloc`
//! estimator instead of the abstract accuracy model).
//!
//! ## Example
//!
//! ```
//! use oaq_core::config::{ProtocolConfig, Scheme};
//! use oaq_core::protocol::Episode;
//! use oaq_core::qos_level::QosLevel;
//!
//! // A degraded plane (k = 10 → underlapping footprints), OAQ scheme.
//! let cfg = ProtocolConfig::reference(10, Scheme::Oaq);
//! let outcome = Episode::new(&cfg, 42).run(2.0, 6.0); // birth at 2 min, 6-min signal
//! assert!(outcome.level >= QosLevel::Single);
//! assert!(outcome.deadline_met);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bridge;
pub mod config;
pub mod coordination;
pub mod experiment;
pub mod fullstack;
pub mod mission;
pub mod protocol;
pub mod qos_level;
pub mod satellite;
pub mod signal;

pub use config::{ProtocolConfig, Scheme};
pub use protocol::{Episode, EpisodeScratch, TraceEntry, TraceEvent};
pub use qos_level::{EpisodeOutcome, QosLevel};
