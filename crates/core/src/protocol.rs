//! The event-driven OAQ episode simulator.
//!
//! One *episode* is the life of one signal: birth, detection, coordinated
//! accuracy enhancement, alert delivery. Satellites are state machines that
//! communicate only over the simulated crosslink network; no component has
//! oracle access to the signal or to other satellites' state, so the
//! termination conditions TC-1/TC-2/TC-3 operate exactly as the paper
//! specifies — TC-3 (signal stopped) in particular is only ever *inferred*
//! via the wait timeout `τ − (n−1)δ`.

use oaq_net::fault::FaultPlan;
use oaq_net::link::LinkSpec;
use oaq_net::topology::Topology;
use oaq_net::{Envelope, Network, NodeId, ReliableLink, ReliableOutcome, SendOutcome};
use oaq_sim::{Context, EventQueue, Model, SimDuration, SimTime, Simulation};

use crate::config::{ProtocolConfig, Scheme};
use crate::coordination::CoordMessage;
use crate::qos_level::{EpisodeOutcome, QosLevel};
use crate::satellite::{SatellitePhase, SatelliteState};
use crate::signal::CoverageGeometry;

/// Events of one episode.
#[derive(Debug)]
enum Ev {
    /// The signal starts emitting.
    SignalStart,
    /// Satellite `sat`'s footprint reaches the target (scheduled only when
    /// the protocol cares: pending detection or a pending recruitment).
    Arrival { sat: usize },
    /// Satellite `sat` finishes an accuracy-improvement iteration.
    ComputeDone { sat: usize },
    /// A crosslink message arrives.
    Message { env: Envelope<CoordMessage> },
    /// `sat`'s wait for "coordination done" expired (`τ − (n−1)δ_eff`).
    WaitTimeout { sat: usize },
    /// The reliable layer exhausted the retry budget for `sat`'s pending
    /// coordination request.
    RequestGaveUp { sat: usize },
}

#[derive(Debug, Clone, Copy)]
struct Delivery {
    at: f64,
    level: QosLevel,
    chain_length: usize,
    reported_error_km: f64,
}

/// One entry of an episode trace (see [`Episode::run_traced`]).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEntry {
    /// When it happened, minutes.
    pub t: f64,
    /// What happened.
    pub event: TraceEvent,
}

/// The observable protocol events of one episode.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TraceEvent {
    /// The signal was detected by `sat` (`simultaneous` when two or more
    /// footprints covered it at that instant).
    Detection {
        /// Detecting satellite.
        sat: usize,
        /// Whether coverage was simultaneous at detection.
        simultaneous: bool,
    },
    /// `sat` completed an accuracy-improvement iteration.
    ComputationDone {
        /// The satellite.
        sat: usize,
        /// Its chain position.
        chain_pos: usize,
        /// The reported error after this iteration, km.
        reported_error_km: f64,
    },
    /// `from` asked `to` to join the coordination.
    CoordinationRequest {
        /// Requester.
        from: usize,
        /// Recruit.
        to: usize,
    },
    /// A recruited satellite's footprint reached the target.
    RecruitArrival {
        /// The recruit.
        sat: usize,
        /// Whether the signal was still emitting.
        signal_alive: bool,
    },
    /// "Coordination done" sent from `from` to `to`.
    CoordinationDone {
        /// Sender (upstream satellite).
        from: usize,
        /// Receiver (downstream satellite).
        to: usize,
    },
    /// `sat`'s wait for "done" expired.
    WaitTimeout {
        /// The satellite that stopped waiting.
        sat: usize,
    },
    /// `from`'s reliable request to `to` exhausted its retry budget; the
    /// requester degrades to the next candidate (or finalizes).
    RequestGaveUp {
        /// Requester whose send failed definitively.
        from: usize,
        /// The unreachable recruit.
        to: usize,
    },
    /// An alert reached the ground.
    AlertDelivered {
        /// Delivering satellite (or the handoff carrier).
        sat: usize,
        /// The alert's QoS level.
        level: QosLevel,
    },
}

impl std::fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t={:7.3}  ", self.t)?;
        match &self.event {
            TraceEvent::Detection { sat, simultaneous } => write!(
                f,
                "S{sat} detects the signal{}",
                if *simultaneous {
                    " (simultaneous coverage)"
                } else {
                    ""
                }
            ),
            TraceEvent::ComputationDone {
                sat,
                chain_pos,
                reported_error_km,
            } => write!(
                f,
                "S{sat} (chain #{chain_pos}) completes computation, error {reported_error_km:.1} km"
            ),
            TraceEvent::CoordinationRequest { from, to } => {
                write!(f, "S{from} -> S{to}: coordination request")
            }
            TraceEvent::RecruitArrival { sat, signal_alive } => write!(
                f,
                "S{sat} footprint arrives ({})",
                if *signal_alive {
                    "signal alive"
                } else {
                    "signal gone: TC-3"
                }
            ),
            TraceEvent::CoordinationDone { from, to } => {
                write!(f, "S{from} -> S{to}: coordination done")
            }
            TraceEvent::WaitTimeout { sat } => {
                write!(f, "S{sat} wait timeout (assumes TC-3 / fail-silence)")
            }
            TraceEvent::RequestGaveUp { from, to } => {
                write!(f, "S{from} -> S{to}: request retries exhausted, giving up")
            }
            TraceEvent::AlertDelivered { sat, level } => {
                write!(f, "S{sat} delivers a {level} alert to the ground")
            }
        }
    }
}

/// Tolerance (minutes) applied to coverage queries made at event instants
/// that coincide with window boundaries: footprint-arrival events are
/// scheduled at exact window starts, and floating-point rounding may land
/// the event a hair before the half-open window. 1e-6 min = 60 µs, far
/// below any physical timescale in the model.
const COVERAGE_EPS: f64 = 1e-6;

#[derive(Debug)]
struct EpisodeModel {
    cfg: ProtocolConfig,
    geom: CoverageGeometry,
    net: Network<CoordMessage>,
    reliable: ReliableLink,
    /// δ_eff = `cfg.delta_eff()`, cached: every δ in the TC arithmetic.
    delta_eff: f64,
    sats: Vec<SatelliteState>,
    /// Recruits each satellite has already requested (never re-tried).
    tried: Vec<Vec<usize>>,
    t_start: f64,
    t_end: f64,
    detection: Option<(f64, usize)>,
    deliveries: Vec<Delivery>,
    s1_released_at: Option<f64>,
    trace: Option<Vec<TraceEntry>>,
}

impl EpisodeModel {
    fn record(&mut self, t: f64, event: TraceEvent) {
        if let Some(trace) = &mut self.trace {
            trace.push(TraceEntry { t, event });
        }
    }
}

impl EpisodeModel {
    fn signal_on(&self, t: f64) -> bool {
        t >= self.t_start && t < self.t_end
    }

    fn alive(&self, sat: usize, t: f64) -> bool {
        !self
            .net
            .faults()
            .is_failed(NodeId(sat as u32), SimTime::new(t))
    }

    fn deadline(&self) -> f64 {
        let (t0, _) = self.detection.expect("deadline queried before detection");
        t0 + self.cfg.tau
    }

    /// Count and freshest member of the set of *live* satellites covering
    /// the target at `t` — the allocation-free equivalent of filtering
    /// [`CoverageGeometry::covering_at`] by liveness and taking
    /// `(len, last)`.
    fn alive_covering_summary(&self, t: f64) -> (usize, Option<usize>) {
        self.geom.covering_summary(t, |j| self.alive(j, t))
    }

    /// Records the detection and starts `S1`'s initial computation.
    fn detect(&mut self, ctx: &mut Context<Ev>) {
        let now = ctx.now().as_minutes();
        let (covering_count, freshest) = self.alive_covering_summary(now + COVERAGE_EPS);
        let Some(s1) = freshest else {
            return;
        };
        self.detection = Some((now, s1));
        let simultaneous = covering_count >= 2;
        self.record(
            now,
            TraceEvent::Detection {
                sat: s1,
                simultaneous,
            },
        );
        let st = &mut self.sats[s1];
        st.chain_pos = Some(1);
        st.passes = if simultaneous { 2 } else { 1 };
        st.simultaneous = simultaneous;
        st.phase = SatellitePhase::Computing;
        let c = ctx.rng().exp(self.cfg.nu);
        ctx.schedule_in(SimDuration::new(c), Ev::ComputeDone { sat: s1 });
    }

    /// Delivers `sat`'s current result to the ground station.
    fn deliver_to_ground(&mut self, sat: usize, now: f64) {
        let st = &self.sats[sat];
        let level = if st.simultaneous {
            QosLevel::SimultaneousDual
        } else if st.passes >= 2 {
            QosLevel::SequentialDual
        } else {
            QosLevel::Single
        };
        let reported = st
            .reported_error_km
            .unwrap_or_else(|| self.cfg.accuracy.error_km(st.passes, st.simultaneous));
        let chain_length = st.passes;
        self.deliveries.push(Delivery {
            at: now,
            level,
            chain_length,
            reported_error_km: reported,
        });
        self.record(now, TraceEvent::AlertDelivered { sat, level });
    }

    /// Delivers a handed-off result (backward-messaging variant).
    fn deliver_handoff(&mut self, carrier: usize, passes: usize, error_km: f64, now: f64) {
        let level = if passes >= 2 {
            QosLevel::SequentialDual
        } else {
            QosLevel::Single
        };
        self.deliveries.push(Delivery {
            at: now,
            level,
            chain_length: passes,
            reported_error_km: error_km,
        });
        self.record(
            now,
            TraceEvent::AlertDelivered {
                sat: carrier,
                level,
            },
        );
    }

    /// Sends a crosslink message, scheduling the delivery event on success.
    fn send(&mut self, from: usize, to: usize, msg: CoordMessage, ctx: &mut Context<Ev>) {
        let outcome = self.net.send(
            NodeId(from as u32),
            NodeId(to as u32),
            msg,
            ctx.now(),
            ctx.rng(),
        );
        if let SendOutcome::Delivered(env) = outcome {
            let at = env.arrival;
            ctx.schedule_at(at, Ev::Message { env });
        }
    }

    /// Transmits a coordination request from `sat` to `next`: plain
    /// fire-and-forget without a retry budget (the paper's protocol),
    /// otherwise through the reliable ACK/retransmit layer — scheduling
    /// the degradation fallback at the instant the budget would exhaust.
    fn send_request(&mut self, sat: usize, next: usize, ctx: &mut Context<Ev>) {
        let now = ctx.now().as_minutes();
        let (t0, _) = self.detection.expect("request without detection");
        let n = self.sats[sat]
            .chain_pos
            .expect("request without a chain position");
        let msg = CoordMessage::Request {
            t0,
            requester_pos: n,
            passes: self.sats[sat].passes,
            reported_error_km: self.sats[sat]
                .reported_error_km
                .expect("request before the first computation"),
        };
        self.tried[sat].push(next);
        self.record(
            now,
            TraceEvent::CoordinationRequest {
                from: sat,
                to: next,
            },
        );
        if self.cfg.retry_budget == 0 {
            self.send(sat, next, msg, ctx);
            return;
        }
        let outcome = self.reliable.send(
            &mut self.net,
            NodeId(sat as u32),
            NodeId(next as u32),
            msg,
            ctx.now(),
            ctx.rng(),
        );
        match outcome {
            ReliableOutcome::Delivered { envelope, .. } => {
                let at = envelope.arrival;
                ctx.schedule_at(at, Ev::Message { env: envelope });
            }
            ReliableOutcome::GaveUp { gave_up_at, .. } => {
                ctx.schedule_at(gave_up_at, Ev::RequestGaveUp { sat });
            }
            ReliableOutcome::SenderFailed | ReliableOutcome::NotLinked => {}
        }
    }

    /// Transmits "coordination done" — reliably when a budget is
    /// configured. A give-up needs no fallback here: the requester's wait
    /// timeout already guarantees its own delivery.
    fn send_done(&mut self, from: usize, to: usize, ctx: &mut Context<Ev>) {
        if self.cfg.retry_budget == 0 {
            self.send(from, to, CoordMessage::Done, ctx);
            return;
        }
        let outcome = self.reliable.send(
            &mut self.net,
            NodeId(from as u32),
            NodeId(to as u32),
            CoordMessage::Done,
            ctx.now(),
            ctx.rng(),
        );
        if let ReliableOutcome::Delivered { envelope, .. } = outcome {
            let at = envelope.arrival;
            ctx.schedule_at(at, Ev::Message { env: envelope });
        }
    }

    /// Propagates "coordination done" downstream from `sat` and releases it.
    fn release_downstream(&mut self, sat: usize, ctx: &mut Context<Ev>) {
        let n = self.sats[sat].chain_pos.unwrap_or(1);
        let requester = self.sats[sat].requester;
        self.sats[sat].release();
        if n <= 1 {
            self.s1_released_at = Some(ctx.now().as_minutes());
        } else if !self.cfg.backward_messaging {
            // "Done" goes to whoever recruited this satellite — the
            // previous visitor unless membership hints skipped dead peers.
            let prev = requester.unwrap_or_else(|| self.geom.prev_visitor(sat));
            self.record(
                ctx.now().as_minutes(),
                TraceEvent::CoordinationDone {
                    from: sat,
                    to: prev,
                },
            );
            self.send_done(sat, prev, ctx);
        }
    }

    /// Finalization: `sat` delivers its result and terminates coordination.
    fn finalize(&mut self, sat: usize, ctx: &mut Context<Ev>) {
        let now = ctx.now().as_minutes();
        self.deliver_to_ground(sat, now);
        self.release_downstream(sat, ctx);
    }

    /// TC-2: no guarantee the next peer could complete and notify in time
    /// (δ_eff substitutes for δ when a retry budget is configured).
    fn tc2_holds(&self, n: usize, now: f64) -> bool {
        let (t0, _) = self.detection.expect("TC-2 before detection");
        now - t0 > self.cfg.tau - (n as f64 * self.delta_eff + self.cfg.tg)
    }

    /// Begins `sat`'s measurement + iterative computation at `now`.
    fn start_computing(&mut self, sat: usize, ctx: &mut Context<Ev>) {
        let now = ctx.now().as_minutes();
        let t = now + COVERAGE_EPS;
        let (mut covering_count, _) = self.alive_covering_summary(t);
        // `sat` itself counts even if its own window has not quite opened.
        if !(self.geom.is_covering(sat, t) && self.alive(sat, t)) {
            covering_count += 1;
        }
        let simultaneous = covering_count >= 2;
        let st = &mut self.sats[sat];
        st.passes += 1;
        st.simultaneous = simultaneous;
        st.phase = SatellitePhase::Computing;
        let c = ctx.rng().exp(self.cfg.nu);
        ctx.schedule_in(SimDuration::new(c), Ev::ComputeDone { sat });
    }

    fn on_compute_done(&mut self, sat: usize, ctx: &mut Context<Ev>) {
        let now = ctx.now().as_minutes();
        if !self.alive(sat, now) {
            return; // went fail-silent mid-computation
        }
        let n = self.sats[sat]
            .chain_pos
            .expect("computing without a chain position");
        let error = self
            .cfg
            .accuracy
            .error_km(self.sats[sat].passes, self.sats[sat].simultaneous);
        self.sats[sat].reported_error_km = Some(error);
        self.record(
            now,
            TraceEvent::ComputationDone {
                sat,
                chain_pos: n,
                reported_error_km: error,
            },
        );

        // BAQ: deliver right after the initial computation, no coordination.
        if self.cfg.scheme == Scheme::Baq {
            self.finalize(sat, ctx);
            return;
        }
        // Simultaneous multiple coverage marks the completion of QoS
        // optimization (paper Section 3.1).
        if self.sats[sat].simultaneous {
            self.finalize(sat, ctx);
            return;
        }
        // TC-1: the estimated error is sufficiently small.
        if let Some(threshold) = self.cfg.error_threshold_km {
            if error <= threshold {
                self.finalize(sat, ctx);
                return;
            }
        }
        // TC-2: too close to the deadline for another iteration.
        if self.tc2_holds(n, now) || self.cfg.k < 2 {
            self.finalize(sat, ctx);
            return;
        }
        // Opportunity remains: expand the coordination.
        let (t0, _) = self.detection.expect("chained without detection");
        let Some(next) = self.select_recruit(sat, now) else {
            // Every reachable peer is known-failed: no opportunity.
            self.finalize(sat, ctx);
            return;
        };
        self.send_request(sat, next, ctx);
        if self.cfg.backward_messaging {
            // Responsibility transferred with the request; Sn is released.
            self.release_downstream(sat, ctx);
        } else {
            let timeout_at = t0 + self.cfg.tau - (n as f64 - 1.0) * self.delta_eff;
            let handle =
                ctx.schedule_at(SimTime::new(timeout_at.max(now)), Ev::WaitTimeout { sat });
            self.sats[sat].phase = SatellitePhase::WaitingForDone { timeout: handle };
        }
    }

    /// Chooses the peer to recruit: the ring successor, or — with
    /// membership hints — the nearest successor not known-failed. Peers
    /// this satellite already requested (and gave up on) are skipped, so
    /// the degradation fallback reuses the same scan.
    fn select_recruit(&self, sat: usize, now: f64) -> Option<usize> {
        let tried = &self.tried[sat];
        let Some(hints) = self.cfg.membership else {
            let cand = self.geom.next_visitor(sat);
            return (!tried.contains(&cand)).then_some(cand);
        };
        let k = self.cfg.k;
        for skip in 1..=hints.max_skip.min(k - 1) {
            let cand = self.geom.visitor_at(sat, skip);
            if tried.contains(&cand) {
                continue;
            }
            let known_failed = self.net.faults().detected_failed(
                NodeId(cand as u32),
                SimTime::new(now),
                hints.detection_latency,
            );
            if !known_failed {
                return Some(cand);
            }
        }
        None
    }

    fn on_request(&mut self, env: &Envelope<CoordMessage>, ctx: &mut Context<Ev>) {
        let CoordMessage::Request {
            requester_pos,
            passes,
            reported_error_km,
            ..
        } = env.payload
        else {
            unreachable!("on_request called with a non-request");
        };
        let sat = env.dst.0 as usize;
        let now = ctx.now().as_minutes();
        if self.sats[sat].chain_pos.is_some() {
            return; // already involved (ring wrap); ignore
        }
        self.sats[sat].chain_pos = Some(requester_pos + 1);
        self.sats[sat].requester = Some(env.src.0 as usize);
        self.sats[sat].passes = passes;
        self.sats[sat].reported_error_km = Some(reported_error_km);
        if self.geom.is_covering(sat, now + COVERAGE_EPS) && self.signal_on(now) {
            // The request caught up with an already-arrived footprint.
            self.start_computing(sat, ctx);
            return;
        }
        let arrival = self.geom.next_arrival(sat, now);
        if arrival < self.deadline() {
            self.sats[sat].phase = SatellitePhase::AwaitingArrival;
            ctx.schedule_at(SimTime::new(arrival), Ev::Arrival { sat });
        } else if self.cfg.backward_messaging {
            // Cannot possibly compute in time: deliver the handed-off
            // result immediately (the receiver carries the responsibility).
            self.deliver_handoff(sat, passes, reported_error_km, now);
            self.sats[sat].release();
        } else {
            // Stay silent; the requester's timeout guarantees delivery.
            self.sats[sat].release();
        }
    }

    fn on_arrival(&mut self, sat: usize, ctx: &mut Context<Ev>) {
        let now = ctx.now().as_minutes();
        if !self.alive(sat, now) {
            return;
        }
        if self.detection.is_none() {
            // Pending initial detection.
            if self.signal_on(now) {
                self.detect(ctx);
            } else if now < self.t_end {
                // Spurious wake-up (e.g. raced a failure); rescan.
                let alive: Vec<bool> = (0..self.cfg.k).map(|j| self.alive(j, now)).collect();
                if let Some(t) = self.geom.earliest_coverage(&alive, now, self.t_end) {
                    let covering_next = self.alive_covering_summary(t).1;
                    if let Some(s) = covering_next {
                        ctx.schedule_at(SimTime::new(t), Ev::Arrival { sat: s });
                    }
                }
            }
            return;
        }
        // A recruited satellite reaching the target.
        if self.sats[sat].phase != SatellitePhase::AwaitingArrival {
            return;
        }
        self.record(
            now,
            TraceEvent::RecruitArrival {
                sat,
                signal_alive: self.signal_on(now),
            },
        );
        if self.signal_on(now) && now < self.deadline() {
            self.start_computing(sat, ctx);
        } else if self.cfg.backward_messaging {
            // TC-3 (or deadline): deliver the result received upstream.
            let passes = self.sats[sat].passes;
            let err = self.sats[sat]
                .reported_error_km
                .unwrap_or(self.cfg.accuracy.single_pass_km);
            self.deliver_handoff(sat, passes, err, now);
            self.sats[sat].release();
        } else {
            self.sats[sat].release();
        }
    }

    fn on_done(&mut self, env: &Envelope<CoordMessage>, ctx: &mut Context<Ev>) {
        let sat = env.dst.0 as usize;
        let now = ctx.now().as_minutes();
        if !self.alive(sat, now) || self.sats[sat].is_released() {
            return;
        }
        if let SatellitePhase::WaitingForDone { timeout } = self.sats[sat].phase {
            ctx.cancel(timeout);
        }
        self.release_downstream(sat, ctx);
    }

    fn on_wait_timeout(&mut self, sat: usize, ctx: &mut Context<Ev>) {
        let now = ctx.now().as_minutes();
        if self.sats[sat].is_released() || !self.alive(sat, now) {
            return;
        }
        if !matches!(self.sats[sat].phase, SatellitePhase::WaitingForDone { .. }) {
            return;
        }
        // No "done" by τ − (n−1)δ_eff: assume TC-3 or a fail-silent peer
        // and deliver this satellite's own (guaranteed) result.
        self.record(now, TraceEvent::WaitTimeout { sat });
        self.finalize(sat, ctx);
    }

    /// Graceful degradation: the reliable layer gave up on `sat`'s pending
    /// request. Instead of burning the rest of the wait on a recruit that
    /// never heard the request, fall back to the next viable candidate —
    /// or, if TC-2 closed (or nobody is left), deliver the guaranteed
    /// local result immediately.
    fn on_request_gave_up(&mut self, sat: usize, ctx: &mut Context<Ev>) {
        let now = ctx.now().as_minutes();
        if self.sats[sat].is_released() || !self.alive(sat, now) {
            return;
        }
        if !matches!(self.sats[sat].phase, SatellitePhase::WaitingForDone { .. }) {
            return;
        }
        let failed_recruit = *self.tried[sat].last().expect("gave up without a request");
        self.record(
            now,
            TraceEvent::RequestGaveUp {
                from: sat,
                to: failed_recruit,
            },
        );
        let n = self.sats[sat]
            .chain_pos
            .expect("waiting without a chain position");
        // The opportunity may have closed while the retries burned.
        if self.tc2_holds(n, now) {
            self.finalize(sat, ctx);
            return;
        }
        match self.select_recruit(sat, now) {
            Some(next) => self.send_request(sat, next, ctx),
            None => self.finalize(sat, ctx),
        }
    }
}

impl Model for EpisodeModel {
    type Event = Ev;

    fn handle(&mut self, ev: Ev, ctx: &mut Context<Ev>) {
        match ev {
            Ev::SignalStart => {
                let now = ctx.now().as_minutes();
                if self.alive_covering_summary(now).0 > 0 {
                    self.detect(ctx);
                } else {
                    let alive: Vec<bool> = (0..self.cfg.k).map(|j| self.alive(j, now)).collect();
                    if let Some(t) = self.geom.earliest_coverage(&alive, now, self.t_end) {
                        // Identify which satellite arrives at t to tag the event.
                        let sat = (0..self.cfg.k)
                            .filter(|&j| alive[j])
                            .min_by(|&a, &b| {
                                let ta = self.geom.next_arrival(a, now);
                                let tb = self.geom.next_arrival(b, now);
                                ta.partial_cmp(&tb).expect("finite")
                            })
                            .expect("earliest_coverage implies a live satellite");
                        ctx.schedule_at(SimTime::new(t), Ev::Arrival { sat });
                    }
                    // No coverage before the signal dies: the target escapes.
                }
            }
            Ev::Arrival { sat } => self.on_arrival(sat, ctx),
            Ev::ComputeDone { sat } => self.on_compute_done(sat, ctx),
            Ev::Message { env } => match env.payload {
                CoordMessage::Request { .. } => self.on_request(&env, ctx),
                CoordMessage::Done => self.on_done(&env, ctx),
            },
            Ev::WaitTimeout { sat } => self.on_wait_timeout(sat, ctx),
            Ev::RequestGaveUp { sat } => self.on_request_gave_up(sat, ctx),
        }
    }
}

/// Identity of a cached geometry + topology pair: the evenly-phased
/// reference construction is keyed by its parameters; a caller-supplied
/// geometry is compared by value on reuse.
#[derive(Debug, Clone, Copy, PartialEq)]
enum GeomKey {
    Reference { k: usize, theta: u64, tc: u64 },
    Custom,
}

#[derive(Debug)]
struct EpisodeStatics {
    key: GeomKey,
    max_skip: usize,
    geom: CoverageGeometry,
    topology: Topology,
}

/// Reusable per-worker episode buffers for [`Episode::run_scratch`].
///
/// Holds the coverage geometry and crosslink topology (immutable during a
/// run, so value-identical to a fresh build) plus the per-satellite state
/// vectors, all recycled across episodes instead of reallocated. Results
/// are bit-identical with or without scratch reuse — the buffers are
/// capacity, not state.
#[derive(Debug, Default)]
pub struct EpisodeScratch {
    statics: Option<EpisodeStatics>,
    sats: Vec<SatelliteState>,
    tried: Vec<Vec<usize>>,
    deliveries: Vec<Delivery>,
    faults: FaultPlan,
    queue: EventQueue<Ev>,
}

impl EpisodeScratch {
    /// Fresh scratch; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        EpisodeScratch::default()
    }
}

/// One signal episode, ready to run.
///
/// See the [crate-level example](crate).
#[derive(Debug)]
pub struct Episode {
    cfg: ProtocolConfig,
    seed: u64,
    failures: Vec<(usize, f64)>,
    failure_windows: Vec<(usize, f64, f64)>,
    outages: Vec<(usize, usize, f64, f64)>,
    geometry: Option<CoverageGeometry>,
}

impl Episode {
    /// Prepares an episode under `cfg` with a deterministic seed.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    #[must_use]
    pub fn new(cfg: &ProtocolConfig, seed: u64) -> Self {
        cfg.validate();
        Episode {
            cfg: *cfg,
            seed,
            failures: Vec::new(),
            failure_windows: Vec::new(),
            outages: Vec::new(),
            geometry: None,
        }
    }

    /// Overrides the coverage geometry — e.g. the merged sweep of several
    /// planes ([`CoverageGeometry::with_offsets`]); the paper's footnote 3
    /// notes the algorithm does not require a single-plane chain.
    ///
    /// # Panics
    ///
    /// Panics if the geometry's satellite count differs from `cfg.k`.
    #[must_use]
    pub fn with_geometry(mut self, geometry: CoverageGeometry) -> Self {
        assert_eq!(
            geometry.k(),
            self.cfg.k,
            "geometry must describe exactly k satellites"
        );
        self.geometry = Some(geometry);
        self
    }

    /// Re-arms the episode under a (possibly different) config and seed,
    /// forgetting every scheduled fault while keeping the geometry override
    /// and the fault buffers' capacity — the allocation-free way to reuse
    /// one `Episode` across many replications.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is invalid or disagrees with an attached geometry's
    /// satellite count.
    pub fn reset(&mut self, cfg: &ProtocolConfig, seed: u64) {
        cfg.validate();
        if let Some(g) = &self.geometry {
            assert_eq!(g.k(), cfg.k, "geometry must describe exactly k satellites");
        }
        self.cfg = *cfg;
        self.seed = seed;
        self.failures.clear();
        self.failure_windows.clear();
        self.outages.clear();
    }

    /// Schedules satellite `sat` to go fail-silent at `time` (minutes).
    ///
    /// # Panics
    ///
    /// Panics if `sat >= k`.
    #[must_use]
    pub fn with_failure(mut self, sat: usize, time: f64) -> Self {
        self.add_failure(sat, time);
        self
    }

    /// In-place [`with_failure`](Episode::with_failure).
    ///
    /// # Panics
    ///
    /// Panics if `sat >= k`.
    pub fn add_failure(&mut self, sat: usize, time: f64) {
        assert!(sat < self.cfg.k, "satellite index out of range");
        self.failures.push((sat, time));
    }

    /// Schedules a crash-recovery window: `sat` is down over `[from, until)`
    /// minutes, then recovers.
    ///
    /// # Panics
    ///
    /// Panics if `sat >= k` or `from >= until`.
    #[must_use]
    pub fn with_failure_window(mut self, sat: usize, from: f64, until: f64) -> Self {
        self.add_failure_window(sat, from, until);
        self
    }

    /// In-place [`with_failure_window`](Episode::with_failure_window).
    ///
    /// # Panics
    ///
    /// Panics if `sat >= k` or `from >= until`.
    pub fn add_failure_window(&mut self, sat: usize, from: f64, until: f64) {
        assert!(sat < self.cfg.k, "satellite index out of range");
        assert!(from < until, "need from < until");
        self.failure_windows.push((sat, from, until));
    }

    /// Schedules a transient crosslink outage between satellites `a` and
    /// `b` (undirected) over `[from, until)` minutes.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range or `from >= until`.
    #[must_use]
    pub fn with_link_outage(mut self, a: usize, b: usize, from: f64, until: f64) -> Self {
        self.add_link_outage(a, b, from, until);
        self
    }

    /// In-place [`with_link_outage`](Episode::with_link_outage).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range or `from >= until`.
    pub fn add_link_outage(&mut self, a: usize, b: usize, from: f64, until: f64) {
        assert!(
            a < self.cfg.k && b < self.cfg.k,
            "satellite index out of range"
        );
        assert!(from < until, "need from < until");
        self.outages.push((a, b, from, until));
    }

    /// Runs the episode for a signal born at `t_birth` lasting `duration`
    /// minutes.
    ///
    /// # Panics
    ///
    /// Panics on negative times.
    #[must_use]
    pub fn run(&self, t_birth: f64, duration: f64) -> EpisodeOutcome {
        self.run_inner(t_birth, duration, false, &mut EpisodeScratch::new())
            .0
    }

    /// [`run`](Episode::run) with caller-provided scratch buffers, so a
    /// worker replaying many episodes reuses the geometry, topology and
    /// state vectors instead of rebuilding them. Bit-identical to `run`.
    ///
    /// # Panics
    ///
    /// Panics on negative times.
    #[must_use]
    pub fn run_scratch(
        &self,
        t_birth: f64,
        duration: f64,
        scratch: &mut EpisodeScratch,
    ) -> EpisodeOutcome {
        self.run_inner(t_birth, duration, false, scratch).0
    }

    /// Runs the episode and also returns the full protocol trace — every
    /// detection, request, arrival, computation, timeout and delivery with
    /// its timestamp (for debugging and for the examples' narratives).
    ///
    /// # Panics
    ///
    /// Panics on negative times.
    #[must_use]
    pub fn run_traced(&self, t_birth: f64, duration: f64) -> (EpisodeOutcome, Vec<TraceEntry>) {
        let (outcome, trace) = self.run_inner(t_birth, duration, true, &mut EpisodeScratch::new());
        (outcome, trace.expect("trace requested"))
    }

    /// The geometry + topology for this episode: recycled from the scratch
    /// when its cached pair was built from identical inputs, else built
    /// fresh. Both are immutable during a run, so a cache hit is
    /// value-identical to a rebuild.
    fn statics(
        &self,
        scratch: &mut EpisodeScratch,
        max_skip: usize,
    ) -> (CoverageGeometry, Topology) {
        let key = match &self.geometry {
            Some(_) => GeomKey::Custom,
            None => GeomKey::Reference {
                k: self.cfg.k,
                theta: self.cfg.theta.to_bits(),
                tc: self.cfg.tc.to_bits(),
            },
        };
        if let Some(st) = scratch.statics.take() {
            let usable = st.max_skip == max_skip
                && match &self.geometry {
                    Some(g) => st.key == GeomKey::Custom && st.geom == *g,
                    None => st.key == key,
                };
            if usable {
                return (st.geom, st.topology);
            }
        }
        let geom = self
            .geometry
            .clone()
            .unwrap_or_else(|| CoverageGeometry::new(self.cfg.k, self.cfg.theta, self.cfg.tc));
        // Crosslinks follow *visit order* (identical to index order for the
        // evenly-phased single plane): each satellite links to the peers it
        // hands coordination to and receives it from, plus chords when
        // membership-assisted recruitment may skip dead peers.
        let topology = if self.cfg.k < 2 {
            // A degenerate single-node "ring": no links.
            Topology::new()
        } else {
            let order = geom.visit_order();
            let k = self.cfg.k;
            let mut t = Topology::new();
            for i in 0..k {
                for skip in 1..=max_skip {
                    t.link(
                        NodeId(order[i] as u32),
                        NodeId(order[(i + skip) % k] as u32),
                    );
                }
            }
            t
        };
        (geom, topology)
    }

    fn run_inner(
        &self,
        t_birth: f64,
        duration: f64,
        traced: bool,
        scratch: &mut EpisodeScratch,
    ) -> (EpisodeOutcome, Option<Vec<TraceEntry>>) {
        assert!(
            t_birth >= 0.0 && duration >= 0.0,
            "times must be non-negative"
        );
        let base =
            LinkSpec::new(0.2 * self.cfg.delta, self.cfg.delta).expect("delta validated by config");
        let link = match self.cfg.bursty_loss {
            Some(ge) => base
                .with_bursty_loss(ge)
                .expect("bursty loss validated by config"),
            None => base
                .with_loss(self.cfg.message_loss)
                .expect("loss validated by config"),
        };
        let max_skip = if self.cfg.k < 2 {
            0
        } else {
            self.cfg
                .membership
                .map_or(1, |h| h.max_skip.min(self.cfg.k - 1))
        };
        let (geom, topology) = self.statics(scratch, max_skip);
        let statics_key = match &self.geometry {
            Some(_) => GeomKey::Custom,
            None => GeomKey::Reference {
                k: self.cfg.k,
                theta: self.cfg.theta.to_bits(),
                tc: self.cfg.tc.to_bits(),
            },
        };
        // The fault plan is recycled from the scratch: cleared (keeping its
        // buffers) and repopulated from this episode's schedule.
        let mut faults = std::mem::take(&mut scratch.faults);
        faults.clear();
        for &(sat, time) in &self.failures {
            faults.fail_at(NodeId(sat as u32), SimTime::new(time));
        }
        for &(sat, from, until) in &self.failure_windows {
            faults.fail_between(NodeId(sat as u32), SimTime::new(from), SimTime::new(until));
        }
        for &(a, b, from, until) in &self.outages {
            faults.outage_between(
                NodeId(a as u32),
                NodeId(b as u32),
                SimTime::new(from),
                SimTime::new(until),
            );
        }
        let net = Network::new(topology, link).with_faults(faults);
        // Per-satellite vectors recycled from the scratch: cleared and
        // re-initialized in place, keeping their capacity.
        let mut sats = std::mem::take(&mut scratch.sats);
        sats.clear();
        sats.resize(self.cfg.k, SatelliteState::new());
        let mut tried = std::mem::take(&mut scratch.tried);
        for v in &mut tried {
            v.clear();
        }
        tried.resize_with(self.cfg.k, Vec::new);
        let mut deliveries = std::mem::take(&mut scratch.deliveries);
        deliveries.clear();

        let model = EpisodeModel {
            geom,
            net,
            reliable: ReliableLink::new(self.cfg.retry_policy()),
            delta_eff: self.cfg.delta_eff(),
            sats,
            tried,
            t_start: t_birth,
            t_end: t_birth + duration,
            detection: None,
            deliveries,
            s1_released_at: None,
            trace: if traced { Some(Vec::new()) } else { None },
            cfg: self.cfg,
        };
        let mut sim = Simulation::with_queue(model, self.seed, std::mem::take(&mut scratch.queue));
        sim.schedule_at(SimTime::new(t_birth), Ev::SignalStart);
        sim.run_to_completion();
        let (model, queue) = sim.into_parts();
        scratch.queue = queue;
        let EpisodeModel {
            geom,
            net,
            sats,
            tried,
            detection,
            mut deliveries,
            s1_released_at,
            trace,
            ..
        } = model;

        let messages = net.stats().attempts;
        // Hand the long-lived buffers back to the scratch for the next
        // episode (deliveries follow once the outcome is computed).
        scratch.sats = sats;
        scratch.tried = tried;
        let (topology, faults) = net.into_parts();
        scratch.faults = faults;
        scratch.statics = Some(EpisodeStatics {
            key: statics_key,
            max_skip,
            geom,
            topology,
        });

        let outcome = if let Some((t0, s1)) = detection {
            let deadline = t0 + self.cfg.tau;
            let in_time: Option<&Delivery> = deliveries
                .iter()
                .filter(|d| d.at <= deadline + 1e-9)
                .max_by(|a, b| a.level.cmp(&b.level));
            let chosen = in_time.or_else(|| {
                deliveries
                    .iter()
                    .min_by(|a, b| a.at.partial_cmp(&b.at).expect("finite"))
            });
            match chosen {
                Some(d) => EpisodeOutcome {
                    level: d.level,
                    delivered_at: Some(d.at),
                    deadline_met: d.at <= deadline + 1e-9,
                    chain_length: d.chain_length,
                    messages_sent: messages,
                    s1_released: s1_released_at.is_some(),
                    reported_error_km: Some(d.reported_error_km),
                    detected_at: Some(t0),
                    detector: Some(s1),
                },
                None => EpisodeOutcome {
                    // Detected but nothing ever reached the ground (e.g. the
                    // only involved satellite went fail-silent).
                    level: QosLevel::Missed,
                    delivered_at: None,
                    deadline_met: false,
                    chain_length: 0,
                    messages_sent: messages,
                    s1_released: s1_released_at.is_some(),
                    reported_error_km: None,
                    detected_at: Some(t0),
                    detector: Some(s1),
                },
            }
        } else {
            EpisodeOutcome::missed()
        };
        deliveries.clear();
        scratch.deliveries = deliveries;
        (outcome, trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oaq(k: usize) -> ProtocolConfig {
        ProtocolConfig::reference(k, Scheme::Oaq)
    }

    fn baq(k: usize) -> ProtocolConfig {
        ProtocolConfig::reference(k, Scheme::Baq)
    }

    #[test]
    fn signal_in_beta_yields_simultaneous_dual() {
        // k = 12: sat 1 arrives at 7.5, sat 0 covers until 9.0 → overlap
        // [7.5, 9.0). A long signal born at 8.0 is detected simultaneously.
        let out = Episode::new(&oaq(12), 1).run(8.0, 30.0);
        assert_eq!(out.level, QosLevel::SimultaneousDual);
        assert!(out.deadline_met);
        assert_eq!(out.chain_length, 2);
    }

    #[test]
    fn overlap_wait_promotes_single_to_simultaneous() {
        // Born at 4.0 under sat 0 only; overlap starts at 7.5 (wait 3.5 < τ).
        // A long-lived signal survives the wait → level 3 via coordination.
        let out = Episode::new(&oaq(12), 2).run(4.0, 30.0);
        assert_eq!(out.level, QosLevel::SimultaneousDual);
        assert!(out.messages_sent >= 2, "request + done expected");
        assert!(out.s1_released);
    }

    #[test]
    fn short_signal_in_alpha_stays_single() {
        // Sat 0's single-coverage interval is [1.5, 7.5) (before 1.5 the
        // wrap-around overlap with sat 11 is still active). Born at 3.0,
        // dies at 4.0, far before the next overlap at 7.5: OAQ waits,
        // times out at τ, delivers the preliminary result.
        let out = Episode::new(&oaq(12), 3).run(3.0, 1.0);
        assert_eq!(out.level, QosLevel::Single);
        assert!(out.deadline_met);
        let delivered = out.delivered_at.unwrap();
        assert!(
            (delivered - 8.0).abs() < 1e-6,
            "delivered at t0+τ, got {delivered}"
        );
    }

    #[test]
    fn wraparound_overlap_counts_as_simultaneous() {
        // t = 1.0 is inside the overlap of sat 11 ([-7.5, 1.5)) and sat 0
        // ([0, 9)): detection is simultaneous even across the ring wrap.
        let out = Episode::new(&oaq(12), 30).run(1.0, 30.0);
        assert_eq!(out.level, QosLevel::SimultaneousDual);
    }

    #[test]
    fn baq_never_waits() {
        let out = Episode::new(&baq(12), 4).run(4.0, 30.0);
        assert_eq!(out.level, QosLevel::Single, "no withholding under BAQ");
        assert!(
            out.delivered_at.unwrap() < 5.0,
            "delivered right after computing"
        );
        assert_eq!(out.messages_sent, 0);
    }

    #[test]
    fn baq_gets_level3_only_when_born_simultaneous() {
        let out = Episode::new(&baq(12), 5).run(8.0, 30.0);
        assert_eq!(out.level, QosLevel::SimultaneousDual);
    }

    #[test]
    fn underlap_sequential_dual() {
        // k = 10 (Tr = Tc = 9): sat 0 covers [0, 9), sat 1 [9, 18). Signal
        // born at 6.0 living 30 min: S2 arrives at 9.0 (wait 3 < τ = 5).
        let out = Episode::new(&oaq(10), 6).run(6.0, 30.0);
        assert_eq!(out.level, QosLevel::SequentialDual);
        assert_eq!(out.chain_length, 2);
        assert!(out.deadline_met);
        assert!(out.s1_released);
    }

    #[test]
    fn underlap_sequential_fails_if_signal_dies() {
        // Signal born at 6.0 dies at 8.0, before sat 1 arrives at 9.0:
        // TC-3 → S1 times out and delivers its single-coverage result.
        let out = Episode::new(&oaq(10), 7).run(6.0, 2.0);
        assert_eq!(out.level, QosLevel::Single);
        assert!(out.deadline_met);
        assert!(out.s1_released, "timeout releases S1");
    }

    #[test]
    fn underlap_next_too_far_stays_single() {
        // Born at 0.5 under sat 0: next arrival at 9.0 is 8.5 away > τ = 5.
        // The recruit declines (arrival past deadline); S1 delivers at τ.
        let out = Episode::new(&oaq(10), 8).run(0.5, 30.0);
        assert_eq!(out.level, QosLevel::Single);
        assert!(out.deadline_met);
    }

    #[test]
    fn gap_signal_that_dies_is_missed() {
        // k = 9: gap [9, 10). Born at 9.2, dies at 9.5 before sat 1 arrives
        // at 10.0 → the target escapes surveillance.
        let out = Episode::new(&oaq(9), 9).run(9.2, 0.3);
        assert_eq!(out.level, QosLevel::Missed);
        assert_eq!(out.delivered_at, None);
    }

    #[test]
    fn gap_signal_that_survives_is_detected() {
        let out = Episode::new(&oaq(9), 10).run(9.2, 30.0);
        assert!(out.level >= QosLevel::Single);
        assert!(out.deadline_met);
    }

    #[test]
    fn tc1_threshold_stops_expansion() {
        // With a generous error threshold the very first computation
        // satisfies TC-1 and no coordination happens.
        let mut cfg = oaq(10);
        cfg.error_threshold_km = Some(100.0);
        let out = Episode::new(&cfg, 11).run(6.0, 30.0);
        assert_eq!(out.level, QosLevel::Single);
        assert_eq!(out.messages_sent, 0, "TC-1 short-circuits coordination");
        assert!(out.delivered_at.unwrap() < 7.0);
    }

    #[test]
    fn fail_silent_recruit_is_tolerated_by_timeout() {
        // Sat 1 dies before it can serve; S1's wait timeout delivers.
        let out = Episode::new(&oaq(10), 12)
            .with_failure(1, 1.0)
            .run(6.0, 30.0);
        assert_eq!(out.level, QosLevel::Single);
        assert!(out.deadline_met, "the guarantee survives the failure");
        assert!(out.s1_released);
    }

    #[test]
    fn fail_silent_detector_loses_the_alert() {
        // The only satellite involved dies mid-computation.
        let out = Episode::new(&oaq(10), 13)
            .with_failure(0, 6.5)
            .run(6.0, 0.5);
        assert_eq!(out.level, QosLevel::Missed);
        assert!(!out.deadline_met);
    }

    #[test]
    fn backward_messaging_delivers_handoff_on_tc3() {
        let mut cfg = oaq(10);
        cfg.backward_messaging = true;
        // Signal dies before the recruit arrives: recruit delivers S1's
        // result when it discovers TC-3 at its footprint arrival (t = 9).
        let out = Episode::new(&cfg, 14).run(6.0, 2.0);
        assert_eq!(out.level, QosLevel::Single);
        assert!(out.deadline_met);
        assert!(out.delivered_at.unwrap() >= 9.0);
    }

    #[test]
    fn backward_messaging_loses_alert_when_recruit_dies() {
        let mut cfg = oaq(10);
        cfg.backward_messaging = true;
        // S1 hands off responsibility then the recruit dies: nobody
        // delivers — the trade-off the paper calls out.
        let out = Episode::new(&cfg, 15).with_failure(1, 7.0).run(6.0, 2.0);
        assert_eq!(out.level, QosLevel::Missed);
        assert!(!out.deadline_met);
    }

    #[test]
    fn membership_hints_skip_a_known_failed_recruit() {
        // k = 9, τ = 25 (room for deep chains). Sat 1 died long ago; the
        // membership-assisted protocol recruits sat 2 directly and still
        // reaches sequential dual coverage, where the plain protocol burns
        // its wait on the dead peer and delivers a single-coverage result.
        let mut plain = oaq(9);
        plain.tau = 25.0;
        let mut assisted = plain;
        assisted.membership = Some(crate::config::MembershipHints::default());

        let run = |cfg: &ProtocolConfig| {
            Episode::new(cfg, 21).with_failure(1, 0.0).run(38.0, 60.0) // born under sat 3's window? no: sat 3 covers [30,39)
        };
        let plain_out = run(&plain);
        let assisted_out = run(&assisted);
        assert!(assisted_out.level >= plain_out.level);
        assert!(assisted_out.chain_length >= 2, "{assisted_out:?}");
    }

    #[test]
    fn membership_hints_with_all_peers_dead_finalizes_cleanly() {
        let mut cfg = oaq(9);
        cfg.tau = 25.0;
        cfg.membership = Some(crate::config::MembershipHints {
            detection_latency: 0.0,
            max_skip: 3,
        });
        // Signal born under sat 0; sats 1..=3 all long dead.
        let out = Episode::new(&cfg, 5)
            .with_failure(1, 0.0)
            .with_failure(2, 0.0)
            .with_failure(3, 0.0)
            .run(3.0, 60.0);
        assert_eq!(out.level, QosLevel::Single);
        assert!(out.deadline_met);
        assert_eq!(out.messages_sent, 0, "no hopeless requests sent");
    }

    #[test]
    fn recent_failure_is_not_yet_known() {
        // Detection latency 12 min: a failure 1 minute ago is unknown, so
        // the protocol still recruits the dead peer and relies on the
        // timeout — hints cannot see faster than the membership service.
        let mut cfg = oaq(9);
        cfg.tau = 25.0;
        cfg.membership = Some(crate::config::MembershipHints::default());
        let out = Episode::new(&cfg, 6).with_failure(1, 2.0).run(3.0, 60.0);
        assert!(
            out.messages_sent >= 1,
            "request to the not-yet-suspected peer"
        );
    }

    #[test]
    fn cross_plane_coordination_over_interleaved_geometry() {
        // Two degraded 5-satellite planes (each Tr = 18: hopeless alone at
        // τ = 5) interleaved half a spacing apart. Satellites 0..5 are
        // plane A (offsets 0,18,..), 5..10 plane B (offsets 9,27,..); the
        // OAQ chain crosses planes: A's satellite hands coordination to
        // B's, exactly the generality footnote 3 claims.
        let offsets: Vec<f64> = (0..5)
            .map(|j| 18.0 * j as f64)
            .chain((0..5).map(|j| 18.0 * j as f64 + 9.0))
            .collect();
        let geom = CoverageGeometry::with_offsets(offsets, 90.0, 9.0);
        let cfg = oaq(10);
        // Born at 6.0 under plane-A satellite 0; plane-B satellite 5
        // (offset 9) arrives 3 minutes later.
        let out = Episode::new(&cfg, 44)
            .with_geometry(geom.clone())
            .run(6.0, 30.0);
        assert_eq!(out.level, QosLevel::SequentialDual);
        assert_eq!(out.chain_length, 2);
        assert!(out.deadline_met);
        // Sanity: the recruit really is the other plane's satellite.
        assert_eq!(geom.next_visitor(0), 5);
    }

    #[test]
    fn single_plane_alone_fails_where_the_merged_sweep_succeeds() {
        // The same plane A on its own (k = 5, Tr = 18): the next visitor is
        // 18 minutes away — beyond τ — so OAQ can only deliver the single-
        // coverage preliminary.
        let mut cfg = oaq(5);
        cfg.theta = 90.0;
        let out = Episode::new(&cfg, 44).run(6.0, 30.0);
        assert_eq!(out.level, QosLevel::Single);
    }

    #[test]
    fn lossy_crosslinks_degrade_quality_but_never_timeliness() {
        // 40% message loss: requests and dones vanish at random; the
        // wait-timeout discipline still delivers an alert by the deadline
        // in every detected episode.
        let mut cfg = oaq(10);
        cfg.message_loss = 0.4;
        let mut sequential = 0;
        for seed in 0..300 {
            let out = Episode::new(&cfg, seed).run(6.0, 30.0);
            assert!(out.deadline_met, "seed {seed}: {out:?}");
            assert!(out.level >= QosLevel::Single);
            if out.level == QosLevel::SequentialDual {
                sequential += 1;
            }
        }
        // Loss costs quality relative to the lossless case (which achieves
        // sequential dual in 100% of these episodes)...
        assert!(
            sequential < 290,
            "loss must cost some coordinations: {sequential}/300"
        );
        // ...but most coordinations still succeed.
        assert!(sequential > 100, "only {sequential}/300 succeeded");
    }

    #[test]
    fn trace_narrates_a_sequential_coordination() {
        let (out, trace) = Episode::new(&oaq(10), 6).run_traced(6.0, 30.0);
        assert_eq!(out.level, QosLevel::SequentialDual);
        let kinds: Vec<&str> = trace
            .iter()
            .map(|e| match e.event {
                TraceEvent::Detection { .. } => "detect",
                TraceEvent::ComputationDone { .. } => "compute",
                TraceEvent::CoordinationRequest { .. } => "request",
                TraceEvent::RecruitArrival { .. } => "arrival",
                TraceEvent::CoordinationDone { .. } => "done",
                TraceEvent::WaitTimeout { .. } => "timeout",
                TraceEvent::RequestGaveUp { .. } => "gaveup",
                TraceEvent::AlertDelivered { .. } => "deliver",
            })
            .collect();
        // The canonical story: detect, compute, request, arrival, compute,
        // ... ending with a delivery; the delivery must follow a request.
        assert_eq!(kinds[0], "detect");
        assert_eq!(kinds[1], "compute");
        assert_eq!(kinds[2], "request");
        assert!(kinds.contains(&"arrival"));
        assert!(kinds.contains(&"deliver"));
        // Times are non-decreasing.
        for w in trace.windows(2) {
            assert!(w[1].t >= w[0].t - 1e-12);
        }
        // Every entry renders.
        for e in &trace {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn untraced_run_matches_traced_outcome() {
        let cfg = oaq(12);
        let plain = Episode::new(&cfg, 9).run(4.0, 20.0);
        let (traced, trace) = Episode::new(&cfg, 9).run_traced(4.0, 20.0);
        assert_eq!(plain, traced, "tracing must not perturb the simulation");
        assert!(!trace.is_empty());
    }

    #[test]
    fn missed_target_has_a_bare_trace() {
        let (out, trace) = Episode::new(&oaq(9), 9).run_traced(9.2, 0.3);
        assert_eq!(out.level, QosLevel::Missed);
        assert!(
            !trace
                .iter()
                .any(|e| matches!(e.event, TraceEvent::Detection { .. })),
            "no detection events for an escaped target"
        );
    }

    #[test]
    fn episodes_are_deterministic() {
        let a = Episode::new(&oaq(10), 99).run(6.0, 30.0);
        let b = Episode::new(&oaq(10), 99).run(6.0, 30.0);
        assert_eq!(a, b);
    }

    #[test]
    fn single_satellite_plane_cannot_coordinate() {
        let out = Episode::new(&oaq(1), 16).run(1.0, 30.0);
        assert_eq!(out.level, QosLevel::Single);
        assert_eq!(out.messages_sent, 0);
    }

    #[test]
    fn retry_exhaustion_falls_back_to_the_next_live_recruit() {
        // Sat 1 fails one minute before detection — too recent for the
        // membership service to know — so S1 recruits it, burns the retry
        // budget, and on give-up falls back to sat 2. The coordination
        // still reaches sequential dual coverage, where the plain
        // fire-and-forget protocol would burn its whole wait on the dead
        // peer.
        let mut cfg = oaq(9);
        cfg.tau = 25.0;
        cfg.retry_budget = 2;
        cfg.retry_timeout = 0.25;
        cfg.membership = Some(crate::config::MembershipHints::default());
        let (out, trace) = Episode::new(&cfg, 6)
            .with_failure(1, 2.0)
            .run_traced(3.0, 60.0);
        assert!(
            trace
                .iter()
                .any(|e| matches!(e.event, TraceEvent::RequestGaveUp { from: 0, to: 1 })),
            "expected a give-up on the dead recruit: {trace:#?}"
        );
        assert!(
            trace
                .iter()
                .any(|e| matches!(e.event, TraceEvent::CoordinationRequest { from: 0, to: 2 })),
            "expected the fallback request to sat 2: {trace:#?}"
        );
        assert!(out.level >= QosLevel::SequentialDual, "{out:?}");
        assert!(out.deadline_met);
    }

    #[test]
    fn give_up_without_alternatives_finalizes_early() {
        // No membership chords: when the only successor's link is outaged
        // for the whole episode, a budgeted S1 gives up, finds nobody else
        // to recruit, and delivers its local result well before the τ
        // timeout would have fired.
        let mut cfg = oaq(10);
        cfg.retry_budget = 2;
        cfg.retry_timeout = 0.25;
        let (out, trace) = Episode::new(&cfg, 6)
            .with_link_outage(0, 1, 0.0, 100.0)
            .run_traced(6.0, 30.0);
        assert!(
            trace
                .iter()
                .any(|e| matches!(e.event, TraceEvent::RequestGaveUp { .. })),
            "{trace:#?}"
        );
        assert_eq!(out.level, QosLevel::Single);
        assert!(out.deadline_met);
        let t0 = 6.0;
        assert!(
            out.delivered_at.unwrap() < t0 + cfg.tau - 1.0,
            "give-up must beat the wait timeout: {out:?}"
        );
    }

    #[test]
    fn transient_outage_is_ridden_out_by_protocol_retries() {
        // A 0.4-minute outage at recruitment time kills the plain request;
        // with a retry budget the request survives and the coordination
        // completes as if the outage never happened.
        let outage = |cfg: &ProtocolConfig| {
            Episode::new(cfg, 6)
                .with_link_outage(0, 1, 6.0, 6.4)
                .run(6.0, 30.0)
        };
        let plain = oaq(10);
        let mut budgeted = plain;
        budgeted.retry_budget = 3;
        budgeted.retry_timeout = 0.25;
        let plain_out = outage(&plain);
        let budgeted_out = outage(&budgeted);
        assert_eq!(
            plain_out.level,
            QosLevel::Single,
            "request dies in the outage"
        );
        assert_eq!(
            budgeted_out.level,
            QosLevel::SequentialDual,
            "{budgeted_out:?}"
        );
        assert!(budgeted_out.deadline_met);
    }

    #[test]
    fn live_detector_always_delivers_by_tau_under_fault_mixes() {
        // Acceptance sweep: loss ∈ {0, 0.05, 0.2, bursty} × retry budget
        // ∈ {0, 1, 3}, against a fault plan mixing a crash-recovery window
        // on the recruit with a transient outage at recruitment time.
        // Whatever the mix does to *quality*, an episode whose detector
        // stays alive delivers at least a single-coverage alert by τ.
        let bursty = oaq_net::GilbertElliott::bursts(0.2, 5.0, 0.9).unwrap();
        for loss_case in 0..4 {
            for &budget in &[0u32, 1, 3] {
                let mut cfg = oaq(10);
                match loss_case {
                    0 => cfg.message_loss = 0.0,
                    1 => cfg.message_loss = 0.05,
                    2 => cfg.message_loss = 0.2,
                    _ => cfg.bursty_loss = Some(bursty),
                }
                cfg.retry_budget = budget;
                cfg.retry_timeout = 0.25;
                for seed in 0..40 {
                    let (out, trace) = Episode::new(&cfg, seed)
                        .with_failure_window(1, 7.0, 12.0)
                        .with_link_outage(0, 1, 6.0, 6.4)
                        .run_traced(6.0, 30.0);
                    let detector = trace.iter().find_map(|e| match e.event {
                        TraceEvent::Detection { sat, .. } => Some(sat),
                        _ => None,
                    });
                    // The fault plan never touches sat 0, the detector for
                    // a signal born at t = 6 under this geometry.
                    let Some(d) = detector else { continue };
                    assert_eq!(d, 0);
                    assert!(
                        out.deadline_met,
                        "loss case {loss_case}, budget {budget}, seed {seed}: {out:?}"
                    );
                    assert!(out.level >= QosLevel::Single);
                }
            }
        }
    }

    #[test]
    fn fault_plan_episodes_are_deterministic() {
        // Satellite of the robustness issue: identical seed + fault plan
        // (bursty loss, retries, crash-recovery, outages, a permanent
        // failure) must reproduce the outcome *and* the full trace.
        let mut cfg = oaq(10);
        cfg.bursty_loss = Some(oaq_net::GilbertElliott::bursts(0.15, 4.0, 0.95).unwrap());
        cfg.retry_budget = 2;
        cfg.retry_timeout = 0.25;
        let run = || {
            Episode::new(&cfg, 77)
                .with_failure(3, 12.0)
                .with_failure_window(1, 7.0, 11.0)
                .with_link_outage(0, 1, 6.0, 6.5)
                .run_traced(6.0, 30.0)
        };
        let (a, ta) = run();
        let (b, tb) = run();
        assert_eq!(a, b);
        assert_eq!(ta, tb, "traces must match event-for-event");
    }

    #[test]
    fn crash_recovery_window_restores_coordination() {
        // The recruit is down only over [0, 6.5): it recovers inside the
        // retry window (tries at ~6.04, 6.29, 6.54, 6.79), so the retried
        // request lands and the coordination completes; a *permanent*
        // failure at 0 leaves only the single-coverage alert.
        let mut cfg = oaq(10);
        cfg.retry_budget = 3;
        cfg.retry_timeout = 0.25;
        let recovered = Episode::new(&cfg, 6)
            .with_failure_window(1, 0.0, 6.5)
            .run(6.0, 30.0);
        let permanent = Episode::new(&cfg, 6).with_failure(1, 0.0).run(6.0, 30.0);
        assert_eq!(recovered.level, QosLevel::SequentialDual, "{recovered:?}");
        assert_eq!(permanent.level, QosLevel::Single);
        assert!(recovered.deadline_met && permanent.deadline_met);
    }

    #[test]
    fn longer_chains_form_with_generous_deadlines() {
        // k = 9 (Tr = 10, L2 = 1), τ = 25 ⇒ M[k] = 2 + ⌊(25−1)/10⌋ = 4.
        let mut cfg = oaq(9);
        cfg.tau = 25.0;
        let out = Episode::new(&cfg, 17).run(8.0, 60.0);
        assert!(
            out.chain_length >= 3,
            "expected a deep chain, got {}",
            out.chain_length
        );
        assert_eq!(out.level, QosLevel::SequentialDual);
        assert!(out.deadline_met);
    }
}
