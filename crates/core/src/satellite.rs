//! Per-satellite protocol state.

use oaq_sim::EventHandle;

/// Where a satellite stands in the current coordination episode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SatellitePhase {
    /// Not involved (yet).
    Idle,
    /// Received a coordination request; waiting for its footprint to reach
    /// the target.
    AwaitingArrival,
    /// Performing an accuracy-improvement iteration.
    Computing,
    /// Sent a coordination request upstream; waiting for "coordination
    /// done" until the local timeout `τ − (n−1)δ`.
    WaitingForDone {
        /// Handle of the scheduled timeout (cancelled when "done" arrives).
        timeout: EventHandle,
    },
    /// Released: received "done", timed out, or finalized itself.
    Released,
}

/// The mutable per-satellite record the protocol keeps.
#[derive(Debug, Clone)]
pub struct SatelliteState {
    /// Protocol phase.
    pub phase: SatellitePhase,
    /// Ordinal position in the coordination chain (1 = the detector),
    /// `None` while uninvolved.
    pub chain_pos: Option<usize>,
    /// Who recruited this satellite (the "coordination done" target); the
    /// ring predecessor only when no peers were skipped.
    pub requester: Option<usize>,
    /// Measurement passes accumulated in the result this satellite holds.
    pub passes: usize,
    /// Whether this satellite's own measurement was simultaneous with its
    /// predecessor's (overlapping footprints, signal alive under both).
    pub simultaneous: bool,
    /// Reported error of the result this satellite holds, km.
    pub reported_error_km: Option<f64>,
    /// `true` once the satellite has gone fail-silent.
    pub failed: bool,
}

impl SatelliteState {
    /// A healthy, uninvolved satellite.
    #[must_use]
    pub fn new() -> Self {
        SatelliteState {
            phase: SatellitePhase::Idle,
            chain_pos: None,
            requester: None,
            passes: 0,
            simultaneous: false,
            reported_error_km: None,
            failed: false,
        }
    }

    /// `true` when the satellite can sense, compute and communicate.
    #[must_use]
    pub fn is_alive(&self) -> bool {
        !self.failed
    }

    /// Marks the satellite released (episode over, from its perspective).
    pub fn release(&mut self) {
        self.phase = SatellitePhase::Released;
    }

    /// `true` once released.
    #[must_use]
    pub fn is_released(&self) -> bool {
        matches!(self.phase, SatellitePhase::Released)
    }
}

impl Default for SatelliteState {
    fn default() -> Self {
        SatelliteState::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle() {
        let mut s = SatelliteState::new();
        assert!(s.is_alive());
        assert!(!s.is_released());
        assert_eq!(s.phase, SatellitePhase::Idle);
        s.chain_pos = Some(1);
        s.release();
        assert!(s.is_released());
    }

    #[test]
    fn failure_flag() {
        let mut s = SatelliteState::new();
        s.failed = true;
        assert!(!s.is_alive());
    }

    #[test]
    fn default_matches_new() {
        let a = SatelliteState::default();
        let b = SatelliteState::new();
        assert_eq!(a.chain_pos, b.chain_pos);
        assert_eq!(a.passes, b.passes);
        assert_eq!(a.requester, b.requester);
        assert_eq!(a.phase, b.phase);
    }

    #[test]
    fn release_is_idempotent() {
        let mut s = SatelliteState::new();
        s.release();
        s.release();
        assert!(s.is_released());
    }
}
