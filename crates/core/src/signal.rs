//! Target coverage geometry and signal episodes.
//!
//! The scenario the paper's model formulates: a target on the center line
//! of one plane's footprint trajectory. Satellite `j` (of `k`, evenly
//! phased) covers the target during `[j·Tr + n·θ, j·Tr + n·θ + Tc]`. The
//! functions here answer the geometric questions the protocol asks:
//! who covers the target now, and when does a given satellite next arrive.
//!
//! The paper's footnote 3 stresses that the algorithm does **not** assume
//! the coordination chain coincides with one plane — any set of satellites
//! whose footprints sweep the target works. [`CoverageGeometry::with_offsets`]
//! models that general case (e.g. two interleaved degraded planes); the
//! `new` constructor is the evenly-phased single-plane special case the
//! analytic model evaluates.

/// Center-line coverage geometry of the satellites sweeping one target.
///
/// Satellite `j` covers the target during `[offset_j + n·θ, offset_j +
/// n·θ + dur_j]`. For the single-plane center-line scenario all durations
/// equal Tc; targets off the center line (or satellites of other planes)
/// get shorter windows — see [`CoverageGeometry::with_windows`].
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageGeometry {
    /// Per-satellite `(window start offset, window duration)`.
    windows: Vec<(f64, f64)>,
    theta: f64,
    /// Satellite indices sorted by (offset, index) — precomputed once so
    /// the per-recruit visit-order queries are allocation-free.
    order: Vec<usize>,
    /// Inverse of `order`: `pos[sat]` is `sat`'s rank in the sweep.
    pos: Vec<usize>,
}

impl CoverageGeometry {
    /// Creates the geometry for `k` evenly-phased satellites of one plane:
    /// `offset_j = j·θ/k`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `0 < tc < theta` fails.
    #[must_use]
    pub fn new(k: usize, theta: f64, tc: f64) -> Self {
        assert!(k >= 1, "need at least one satellite");
        let offsets = (0..k).map(|j| theta * j as f64 / k as f64).collect();
        CoverageGeometry::with_offsets(offsets, theta, tc)
    }

    /// Creates a general geometry from per-satellite window-start offsets
    /// (wrapped into `[0, θ)`) sharing one window duration `tc`, e.g. the
    /// merged sweep of two planes.
    ///
    /// # Panics
    ///
    /// Panics on an empty offset list, non-finite offsets, or unless
    /// `0 < tc < theta`.
    #[must_use]
    pub fn with_offsets(offsets: Vec<f64>, theta: f64, tc: f64) -> Self {
        let windows = offsets.into_iter().map(|o| (o, tc)).collect();
        CoverageGeometry::with_windows(windows, theta)
    }

    /// Creates the fully general geometry: per-satellite window starts and
    /// durations (e.g. derived from a real constellation for a target off
    /// the track center lines). Offsets are wrapped into `[0, θ)`.
    ///
    /// # Panics
    ///
    /// Panics on an empty list, non-finite values, or a duration outside
    /// `(0, θ)`.
    #[must_use]
    pub fn with_windows(windows: Vec<(f64, f64)>, theta: f64) -> Self {
        assert!(!windows.is_empty(), "need at least one satellite");
        assert!(theta.is_finite() && theta > 0.0, "theta must be positive");
        let windows: Vec<(f64, f64)> = windows
            .into_iter()
            .map(|(o, d)| {
                assert!(o.is_finite(), "offsets must be finite");
                assert!(
                    d.is_finite() && d > 0.0 && d < theta,
                    "window durations must be in (0, θ)"
                );
                let w = o % theta;
                (if w < 0.0 { w + theta } else { w }, d)
            })
            .collect();
        let mut order: Vec<usize> = (0..windows.len()).collect();
        order.sort_by(|&a, &b| {
            windows[a]
                .0
                .partial_cmp(&windows[b].0)
                .expect("offsets are finite")
                .then(a.cmp(&b))
        });
        let mut pos = vec![0usize; windows.len()];
        for (rank, &sat) in order.iter().enumerate() {
            pos[sat] = rank;
        }
        CoverageGeometry {
            windows,
            theta,
            order,
            pos,
        }
    }

    /// Number of satellites.
    #[must_use]
    pub fn k(&self) -> usize {
        self.windows.len()
    }

    /// Mean revisit spacing `θ/k` (the exact spacing for evenly-phased
    /// constructions).
    #[must_use]
    pub fn tr(&self) -> f64 {
        self.theta / self.windows.len() as f64
    }

    /// The per-satellite `(offset, duration)` windows.
    #[must_use]
    pub fn windows(&self) -> &[(f64, f64)] {
        &self.windows
    }

    /// The window-start offsets.
    #[must_use]
    pub fn offsets(&self) -> Vec<f64> {
        self.windows.iter().map(|&(o, _)| o).collect()
    }

    /// Phase of satellite `j`'s coverage pattern at time `t`:
    /// `(t − offset_j) mod θ`, in `[0, θ)`.
    fn phase(&self, sat: usize, t: f64) -> f64 {
        let raw = (t - self.windows[sat].0) % self.theta;
        if raw < 0.0 {
            raw + self.theta
        } else {
            raw
        }
    }

    /// `true` when satellite `j`'s footprint covers the target at `t`.
    ///
    /// # Panics
    ///
    /// Panics if `sat >= k`.
    #[must_use]
    pub fn is_covering(&self, sat: usize, t: f64) -> bool {
        assert!(sat < self.k(), "satellite index out of range");
        self.phase(sat, t) < self.windows[sat].1
    }

    /// Satellites covering the target at `t`, in arrival order (most
    /// recently arrived last).
    #[must_use]
    pub fn covering_at(&self, t: f64) -> Vec<usize> {
        let mut sats: Vec<(f64, usize)> = (0..self.k())
            .filter(|&j| self.is_covering(j, t))
            .map(|j| (self.phase(j, t), j))
            .collect();
        // Largest phase = arrived earliest; sort descending so the freshest
        // arrival is last.
        sats.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("phases are finite"));
        sats.into_iter().map(|(_, j)| j).collect()
    }

    /// Count and freshest member of the covering set at `t`, restricted to
    /// satellites accepted by `keep` — equivalent to filtering
    /// [`covering_at`](CoverageGeometry::covering_at)`(t)` by `keep` and
    /// taking `(len, last)`, but without allocating. "Freshest" is the most
    /// recently arrived satellite: smallest phase, ties resolved to the
    /// highest index (matching `covering_at`'s stable descending sort).
    #[must_use]
    pub fn covering_summary<F: Fn(usize) -> bool>(
        &self,
        t: f64,
        keep: F,
    ) -> (usize, Option<usize>) {
        let mut count = 0usize;
        let mut best: Option<(f64, usize)> = None;
        for j in 0..self.k() {
            // Geometry first: it is cheaper than a typical `keep` (fault
            // query), and only covering satellites pay for the filter.
            if !self.is_covering(j, t) || !keep(j) {
                continue;
            }
            count += 1;
            let p = self.phase(j, t);
            best = match best {
                Some((bp, bj)) if p > bp => Some((bp, bj)),
                _ => Some((p, j)),
            };
        }
        (count, best.map(|(_, j)| j))
    }

    /// The start of satellite `j`'s first coverage window at or after `t`.
    ///
    /// # Panics
    ///
    /// Panics if `sat >= k`.
    #[must_use]
    pub fn next_arrival(&self, sat: usize, t: f64) -> f64 {
        assert!(sat < self.k(), "satellite index out of range");
        let p = self.phase(sat, t);
        if p == 0.0 {
            t
        } else {
            t + (self.theta - p)
        }
    }

    /// End of satellite `j`'s current or next coverage window relative to
    /// `t`: if covering, when coverage ends; otherwise when the *next*
    /// window ends.
    #[must_use]
    pub fn coverage_end(&self, sat: usize, t: f64) -> f64 {
        let p = self.phase(sat, t);
        let dur = self.windows[sat].1;
        if p < dur {
            t + (dur - p)
        } else {
            self.next_arrival(sat, t) + dur
        }
    }

    /// The earliest instant in `[from, until]` at which any satellite in
    /// `alive` covers the target, or `None`.
    #[must_use]
    pub fn earliest_coverage(&self, alive: &[bool], from: f64, until: f64) -> Option<f64> {
        assert_eq!(alive.len(), self.k(), "alive mask length mismatch");
        let mut best: Option<f64> = None;
        for (j, &is_alive) in alive.iter().enumerate() {
            if !is_alive {
                continue;
            }
            let t = if self.is_covering(j, from) {
                from
            } else {
                self.next_arrival(j, from)
            };
            if t <= until {
                best = Some(best.map_or(t, |b: f64| b.min(t)));
            }
        }
        best
    }

    /// The satellite that will next bring its footprint to the target after
    /// satellite `sat`'s window — the paper's "peer expected to visit the
    /// target next". With even phasing that is the ring successor; in
    /// general it is the satellite with the smallest positive offset gap.
    #[must_use]
    pub fn next_visitor(&self, sat: usize) -> usize {
        self.visitor_at(sat, 1)
    }

    /// The `steps`-th next visitor after `sat` in visit order.
    ///
    /// # Panics
    ///
    /// Panics if `sat >= k`.
    #[must_use]
    pub fn visitor_at(&self, sat: usize, steps: usize) -> usize {
        assert!(sat < self.k(), "sat must be in the visit order");
        self.order[(self.pos[sat] + steps) % self.order.len()]
    }

    /// Satellite indices in the order their windows sweep the target
    /// (ascending offset; ties by index). Precomputed at construction, so
    /// this is a free borrow.
    #[must_use]
    pub fn visit_order(&self) -> &[usize] {
        &self.order
    }

    /// The previous visitor before `sat` in visit order.
    ///
    /// # Panics
    ///
    /// Panics if `sat >= k`.
    #[must_use]
    pub fn prev_visitor(&self, sat: usize) -> usize {
        self.visitor_at(sat, self.k() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference(k: usize) -> CoverageGeometry {
        CoverageGeometry::new(k, 90.0, 9.0)
    }

    #[test]
    fn window_boundaries() {
        let g = reference(10); // Tr = 9 = Tc: tangent
        assert!(g.is_covering(0, 0.0));
        assert!(g.is_covering(0, 8.999));
        assert!(!g.is_covering(0, 9.0), "window is half-open");
        assert!(g.is_covering(1, 9.0), "next satellite takes over exactly");
    }

    #[test]
    fn overlap_has_two_covering_in_beta() {
        let g = reference(12); // Tr = 7.5, overlap L2 = 1.5
                               // At t = 8.0: sat 0 covers [0, 9), sat 1 covers [7.5, 16.5): both.
        let c = g.covering_at(8.0);
        assert_eq!(c, vec![0, 1], "earliest arrival first");
        // At t = 5: only sat 0.
        assert_eq!(g.covering_at(5.0), vec![0]);
    }

    #[test]
    fn underlap_has_gaps() {
        let g = reference(9); // Tr = 10, gap 1 min per period
        assert!(g.covering_at(9.5).is_empty());
        assert_eq!(g.covering_at(10.0), vec![1]);
    }

    #[test]
    fn next_arrival_wraps_period() {
        let g = reference(10);
        assert_eq!(g.next_arrival(0, 0.0), 0.0);
        assert!((g.next_arrival(0, 1.0) - 90.0).abs() < 1e-9);
        assert!((g.next_arrival(3, 0.0) - 27.0).abs() < 1e-9);
        assert!((g.next_arrival(1, 89.0) - 99.0).abs() < 1e-9);
    }

    #[test]
    fn coverage_end_while_covering() {
        let g = reference(10);
        assert!((g.coverage_end(0, 4.0) - 9.0).abs() < 1e-9);
        assert!((g.coverage_end(0, 10.0) - 99.0).abs() < 1e-9);
    }

    #[test]
    fn earliest_coverage_skips_dead_satellites() {
        let g = reference(9);
        let mut alive = vec![true; 9];
        // In the gap at t = 9.5, next coverage is sat 1 at t = 10.
        assert_eq!(g.earliest_coverage(&alive, 9.5, 50.0), Some(10.0));
        alive[1] = false;
        assert_eq!(g.earliest_coverage(&alive, 9.5, 50.0), Some(20.0));
        assert_eq!(g.earliest_coverage(&[false; 9], 9.5, 50.0), None);
    }

    #[test]
    fn earliest_coverage_respects_horizon() {
        let g = reference(9);
        let alive = vec![true; 9];
        assert_eq!(g.earliest_coverage(&alive, 9.5, 9.9), None);
    }

    #[test]
    fn next_visitor_is_ring_successor() {
        let g = reference(10);
        assert_eq!(g.next_visitor(3), 4);
        assert_eq!(g.next_visitor(9), 0);
    }

    #[test]
    fn interleaved_planes_merge_their_sweeps() {
        // Two degraded planes of 5 satellites each (Tr = 18 alone:
        // deep underlap) interleaved half a spacing apart: the combined
        // sweep revisits every 9 minutes — tangent coverage recovered.
        let offsets: Vec<f64> = (0..5)
            .flat_map(|j| [18.0 * j as f64, 18.0 * j as f64 + 9.0])
            .collect();
        let g = CoverageGeometry::with_offsets(offsets, 90.0, 9.0);
        assert_eq!(g.k(), 10);
        // Continuous coverage: at any instant someone covers.
        for i in 0..90 {
            assert!(
                !g.covering_at(i as f64 + 0.5).is_empty(),
                "gap at t = {}",
                i as f64 + 0.5
            );
        }
        // Visit order follows ascending offsets (0, 9, 18, 27, ...), which
        // happens to match index order for this flat_map construction.
        assert_eq!(g.visit_order(), (0..10).collect::<Vec<usize>>());
        assert_eq!(g.next_visitor(0), 1, "cross-plane successor");
        assert_eq!(g.next_visitor(1), 2, "back to the first plane");
    }

    #[test]
    fn uneven_offsets_route_by_arrival_not_index() {
        // Offsets deliberately out of index order.
        let g = CoverageGeometry::with_offsets(vec![40.0, 0.0, 20.0], 90.0, 9.0);
        assert_eq!(g.visit_order(), vec![1, 2, 0]);
        assert_eq!(g.next_visitor(1), 2);
        assert_eq!(g.next_visitor(2), 0);
        assert_eq!(g.next_visitor(0), 1, "wraps to the earliest offset");
        assert_eq!(g.prev_visitor(1), 0);
    }

    #[test]
    fn negative_offsets_wrap() {
        let g = CoverageGeometry::with_offsets(vec![-10.0, 5.0], 90.0, 9.0);
        assert!((g.offsets()[0] - 80.0).abs() < 1e-12);
        assert_eq!(g.windows().len(), 2);
    }

    #[test]
    fn per_satellite_durations_are_respected() {
        // Sat 0: window [0, 9); sat 1: a short side-lobe pass [12, 14).
        let g = CoverageGeometry::with_windows(vec![(0.0, 9.0), (12.0, 2.0)], 90.0);
        assert!(g.is_covering(0, 5.0));
        assert!(!g.is_covering(1, 5.0));
        assert!(g.is_covering(1, 13.0));
        assert!(!g.is_covering(1, 14.5), "short window already over");
        assert!((g.coverage_end(1, 13.0) - 14.0).abs() < 1e-12);
    }

    #[test]
    fn covering_at_orders_by_arrival() {
        let g = reference(14); // heavy overlap: Tr ≈ 6.43, Tc = 9
        let c = g.covering_at(7.0); // sat 0 [0,9), sat 1 [6.43, 15.43)
        assert_eq!(c, vec![0, 1]);
    }

    #[test]
    fn covering_summary_matches_filtered_covering_at() {
        // Tie-heavy case: interleaved equal offsets force the tie-break
        // (highest index among equal phases) to matter.
        let g = CoverageGeometry::with_offsets(vec![0.0, 20.0, 0.0, 20.0, 40.0], 90.0, 25.0);
        for step in 0..180 {
            let t = step as f64 * 0.5;
            for mask in 0u32..32 {
                let keep = |j: usize| mask & (1 << j) != 0;
                let filtered: Vec<usize> =
                    g.covering_at(t).into_iter().filter(|&j| keep(j)).collect();
                let (count, freshest) = g.covering_summary(t, keep);
                assert_eq!(count, filtered.len(), "t={t} mask={mask:b}");
                assert_eq!(freshest, filtered.last().copied(), "t={t} mask={mask:b}");
            }
        }
    }
}
