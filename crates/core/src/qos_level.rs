//! The application-oriented QoS spectrum (paper Table 1).

/// The quality level of a delivered geolocation result.
///
/// Ordered: comparisons follow the paper's spectrum, so
/// `QosLevel::SequentialDual > QosLevel::Single`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum QosLevel {
    /// `Y = 0`: the target escaped surveillance entirely.
    Missed,
    /// `Y = 1`: a single-coverage (preliminary) result.
    Single,
    /// `Y = 2`: sequential multiple coverage — two or more satellites
    /// revisited the signal consecutively (OAQ's contribution in the
    /// underlapping regime).
    SequentialDual,
    /// `Y = 3`: simultaneous multiple coverage — the best quality the
    /// constellation can deliver.
    SimultaneousDual,
}

impl QosLevel {
    /// The numeric level `y ∈ {0, 1, 2, 3}`.
    #[must_use]
    pub fn as_y(self) -> usize {
        match self {
            QosLevel::Missed => 0,
            QosLevel::Single => 1,
            QosLevel::SequentialDual => 2,
            QosLevel::SimultaneousDual => 3,
        }
    }

    /// The level for a numeric `y`.
    ///
    /// # Panics
    ///
    /// Panics if `y > 3`.
    #[must_use]
    pub fn from_y(y: usize) -> Self {
        match y {
            0 => QosLevel::Missed,
            1 => QosLevel::Single,
            2 => QosLevel::SequentialDual,
            3 => QosLevel::SimultaneousDual,
            _ => panic!("QoS levels are 0..=3, got {y}"),
        }
    }
}

impl std::fmt::Display for QosLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            QosLevel::Missed => "missed",
            QosLevel::Single => "single",
            QosLevel::SequentialDual => "sequential-dual",
            QosLevel::SimultaneousDual => "simultaneous-dual",
        };
        f.write_str(s)
    }
}

/// Everything recorded about one signal episode.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EpisodeOutcome {
    /// Quality of the best result the ground received by the deadline.
    pub level: QosLevel,
    /// When the (first qualifying) alert reached the ground, minutes from
    /// episode start; `None` when the target was missed.
    pub delivered_at: Option<f64>,
    /// `true` when an alert (of any quality) reached the ground no later
    /// than `t0 + τ` — the protocol's timeliness guarantee. Vacuously true
    /// for missed targets (no detection means no obligation).
    pub deadline_met: bool,
    /// Number of satellites whose measurements contributed to the delivered
    /// result.
    pub chain_length: usize,
    /// Crosslink messages sent during the episode.
    pub messages_sent: u64,
    /// Whether the detecting satellite `S1` had been released (received
    /// "coordination done" or timed out) by the deadline.
    pub s1_released: bool,
    /// The 1-σ error radius reported with the delivered result, km
    /// (from the configured accuracy model).
    pub reported_error_km: Option<f64>,
    /// When the signal was first detected (minutes), `None` for an escaped
    /// target. The protocol's τ deadline runs from this instant.
    pub detected_at: Option<f64>,
    /// The detecting satellite `S1`, `None` for an escaped target.
    pub detector: Option<usize>,
}

impl EpisodeOutcome {
    /// An outcome for a target that escaped surveillance.
    #[must_use]
    pub fn missed() -> Self {
        EpisodeOutcome {
            level: QosLevel::Missed,
            delivered_at: None,
            deadline_met: true,
            chain_length: 0,
            messages_sent: 0,
            s1_released: true,
            reported_error_km: None,
            detected_at: None,
            detector: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_spectrum() {
        assert!(QosLevel::SimultaneousDual > QosLevel::SequentialDual);
        assert!(QosLevel::SequentialDual > QosLevel::Single);
        assert!(QosLevel::Single > QosLevel::Missed);
    }

    #[test]
    fn y_roundtrip() {
        for y in 0..=3 {
            assert_eq!(QosLevel::from_y(y).as_y(), y);
        }
    }

    #[test]
    #[should_panic(expected = "0..=3")]
    fn from_y_rejects_out_of_range() {
        let _ = QosLevel::from_y(4);
    }

    #[test]
    fn display_names() {
        assert_eq!(QosLevel::SimultaneousDual.to_string(), "simultaneous-dual");
        assert_eq!(QosLevel::Missed.to_string(), "missed");
    }

    #[test]
    fn missed_outcome_shape() {
        let o = EpisodeOutcome::missed();
        assert_eq!(o.level, QosLevel::Missed);
        assert_eq!(o.delivered_at, None);
        assert_eq!(o.chain_length, 0);
    }
}
