//! Property-based tests of the membership service across randomized group
//! sizes, failure schedules and loss rates.

use oaq_membership::{MembershipConfig, MembershipSim};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn dead_nodes_are_always_detected_within_the_bound(
        n in 4usize..16,
        victim_frac in 0.0f64..1.0,
        fail_at in 10.0f64..60.0,
        seed in any::<u64>(),
    ) {
        let cfg = MembershipConfig::plane(n);
        let victim = ((victim_frac * n as f64) as usize).min(n - 1);
        let mut sim = MembershipSim::new(&cfg, seed);
        sim.fail_node(victim, fail_at);
        sim.run_until(fail_at + cfg.detection_bound());
        prop_assert!(sim.all_alive_suspect(victim), "n={n} victim={victim}");
        prop_assert_eq!(sim.false_suspicions(), 0);
    }

    #[test]
    fn healthy_groups_never_accumulate_suspicion(
        n in 4usize..14,
        horizon in 20.0f64..200.0,
        seed in any::<u64>(),
    ) {
        let cfg = MembershipConfig::plane(n);
        let mut sim = MembershipSim::new(&cfg, seed);
        sim.run_until(horizon);
        prop_assert_eq!(sim.false_suspicions(), 0);
    }

    #[test]
    fn loss_never_permanently_poisons_views(
        n in 4usize..10,
        loss in 0.0f64..0.4,
        seed in any::<u64>(),
    ) {
        // Under loss, *transient* false suspicions are expected at any
        // snapshot; the property that matters is that evidence gossip keeps
        // healing them, so their count shows no upward trend over time.
        let mut cfg = MembershipConfig::plane(n);
        cfg.loss = loss;
        let mut sim = MembershipSim::new(&cfg, seed);
        let mut early = 0usize;
        let mut late = 0usize;
        for i in 1..=10 {
            sim.run_until(200.0 * f64::from(i));
            if i <= 5 {
                early += sim.false_suspicions();
            } else {
                late += sim.false_suspicions();
            }
        }
        prop_assert!(
            late <= early + 3 * n,
            "loss={loss}: suspicions trend up: early {early} vs late {late}"
        );
        // And a lossless group must be exactly clean.
        if loss == 0.0 {
            prop_assert_eq!(sim.false_suspicions(), 0);
        }
    }

    #[test]
    fn two_failures_both_detected(
        n in 6usize..14,
        seed in any::<u64>(),
    ) {
        let cfg = MembershipConfig::plane(n);
        let mut sim = MembershipSim::new(&cfg, seed);
        sim.fail_node(1, 20.0);
        sim.fail_node(n - 2, 35.0);
        sim.run_until(35.0 + cfg.detection_bound());
        prop_assert!(sim.all_alive_suspect(1));
        prop_assert!(sim.all_alive_suspect(n - 2));
    }
}
