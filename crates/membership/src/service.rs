//! The heartbeat/gossip membership simulation.

use oaq_net::fault::FaultPlan;
use oaq_net::link::LinkSpec;
use oaq_net::topology::Topology;
use oaq_net::{Envelope, Network, NodeId, SendOutcome};
use oaq_sim::{Context, Model, SimTime, Simulation};

/// Configuration of the membership service.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MembershipConfig {
    /// Group size.
    pub n: usize,
    /// Heartbeat period, minutes.
    pub interval: f64,
    /// A peer is suspected after `suspicion_multiplier × interval` of
    /// silence.
    pub suspicion_multiplier: f64,
    /// Crosslink message loss probability.
    pub loss: f64,
    /// Maximum crosslink delay δ, minutes.
    pub delta: f64,
}

impl MembershipConfig {
    /// Defaults for one orbital plane of `n` satellites: 1-minute
    /// heartbeats, suspicion after 3 missed periods, lossless links with
    /// the workspace's standard δ = 0.1 min.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    #[must_use]
    pub fn plane(n: usize) -> Self {
        let cfg = MembershipConfig {
            n,
            interval: 1.0,
            suspicion_multiplier: 3.0,
            loss: 0.0,
            delta: 0.1,
        };
        cfg.validate();
        cfg
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on nonsensical parameters.
    pub fn validate(&self) {
        assert!(self.n >= 2, "membership needs at least two nodes");
        assert!(
            self.interval > 0.0 && self.interval.is_finite(),
            "bad interval"
        );
        assert!(
            self.suspicion_multiplier > 1.0,
            "suspicion timeout must exceed one heartbeat period"
        );
        oaq_net::validate_loss_probability(self.loss)
            .unwrap_or_else(|e| panic!("membership loss: {e}"));
        assert!(self.delta >= 0.0 && self.delta.is_finite(), "bad delta");
        assert!(
            self.suspicion_multiplier * self.interval > self.delta,
            "suspicion timeout must exceed the link delay"
        );
    }

    /// The suspicion timeout.
    #[must_use]
    pub fn suspicion_timeout(&self) -> f64 {
        self.suspicion_multiplier * self.interval
    }

    /// Worst-case time from a failure to *every* surviving ring node
    /// suspecting it: one timeout for the neighbors, plus a gossip sweep
    /// around half the ring (one heartbeat period + delay per hop).
    #[must_use]
    pub fn detection_bound(&self) -> f64 {
        let half_ring = (self.n as f64 / 2.0).ceil();
        self.suspicion_timeout() + half_ring * (self.interval + self.delta)
    }
}

/// A heartbeat, carrying the sender's suspicion and freshest-evidence
/// records (rehabilitation must travel as far as rumor).
#[derive(Debug, Clone, PartialEq)]
struct Heartbeat {
    suspicions: Vec<(usize, f64)>,
    evidence: Vec<(usize, f64)>,
}

#[derive(Debug)]
enum Ev {
    Tick { node: usize },
    Deliver { env: Envelope<Heartbeat> },
    SuspicionSweep { node: usize },
}

struct MembershipModel {
    cfg: MembershipConfig,
    net: Network<Heartbeat>,
    views: Vec<crate::view::MembershipView>,
    horizon: f64,
    /// Reused per-tick peer list: heartbeat fan-out needs `net` mutably
    /// while iterating the borrowed neighbor slice, so the ids are staged
    /// here instead of allocating a fresh `Vec` per tick.
    neighbor_buf: Vec<NodeId>,
}

impl MembershipModel {
    fn alive(&self, node: usize, t: f64) -> bool {
        !self
            .net
            .faults()
            .is_failed(NodeId(node as u32), SimTime::new(t))
    }

    fn check_silence(&mut self, node: usize, now: f64) {
        let timeout = self.cfg.suspicion_timeout();
        let neighbors = self.net.topology().neighbors(NodeId(node as u32));
        for &nb in neighbors {
            let peer = nb.0 as usize;
            if let Some(last) = self.views[node].last_direct(peer) {
                if now - last > timeout && !self.views[node].is_suspected(peer) {
                    self.views[node].suspect(peer, now);
                }
            }
        }
    }
}

impl Model for MembershipModel {
    type Event = Ev;

    fn handle(&mut self, ev: Ev, ctx: &mut Context<Ev>) {
        let now = ctx.now().as_minutes();
        match ev {
            Ev::Tick { node } => {
                if now > self.horizon {
                    return;
                }
                if self.alive(node, now) {
                    let suspicions = self.views[node].suspicions();
                    let evidence = self.views[node].evidence();
                    let mut peers = std::mem::take(&mut self.neighbor_buf);
                    peers.clear();
                    peers.extend_from_slice(self.net.topology().neighbors(NodeId(node as u32)));
                    for &nb in &peers {
                        let outcome = self.net.send(
                            NodeId(node as u32),
                            nb,
                            Heartbeat {
                                suspicions: suspicions.clone(),
                                evidence: evidence.clone(),
                            },
                            ctx.now(),
                            ctx.rng(),
                        );
                        if let SendOutcome::Delivered(env) = outcome {
                            let at = env.arrival;
                            ctx.schedule_at(at, Ev::Deliver { env });
                        }
                    }
                    self.neighbor_buf = peers;
                    // Re-arm the heartbeat and the local silence check.
                    ctx.schedule_at(SimTime::new(now + self.cfg.interval), Ev::Tick { node });
                    ctx.schedule_at(
                        SimTime::new(now + self.cfg.interval * 0.5),
                        Ev::SuspicionSweep { node },
                    );
                }
            }
            Ev::Deliver { env } => {
                let me = env.dst.0 as usize;
                if !self.alive(me, now) {
                    return;
                }
                let from = env.src.0 as usize;
                self.views[me].record_direct(from, now);
                for &(peer, t) in &env.payload.evidence {
                    if peer != me {
                        self.views[me].record_evidence(peer, t);
                    }
                }
                for &(peer, since) in &env.payload.suspicions {
                    if peer != me {
                        self.views[me].suspect(peer, since);
                    }
                }
            }
            Ev::SuspicionSweep { node } => {
                if self.alive(node, now) {
                    self.check_silence(node, now);
                }
            }
        }
    }
}

/// A runnable membership scenario.
///
/// See the [crate-level example](crate).
pub struct MembershipSim {
    cfg: MembershipConfig,
    sim: Simulation<MembershipModel>,
    failures: Vec<(usize, f64)>,
}

impl std::fmt::Debug for MembershipSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MembershipSim")
            .field("n", &self.cfg.n)
            .field("now", &self.sim.now())
            .finish()
    }
}

impl MembershipSim {
    /// Builds the scenario on a ring of `cfg.n` satellites.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration.
    #[must_use]
    pub fn new(cfg: &MembershipConfig, seed: u64) -> Self {
        cfg.validate();
        let link = if cfg.loss > 0.0 {
            LinkSpec::new(0.2 * cfg.delta, cfg.delta.max(1e-9))
                .expect("validated")
                .with_loss(cfg.loss)
                .expect("validated")
        } else {
            LinkSpec::new(0.2 * cfg.delta, cfg.delta.max(1e-9)).expect("validated")
        };
        let net = Network::new(Topology::ring(cfg.n as u32), link).with_faults(FaultPlan::new());
        let model = MembershipModel {
            cfg: *cfg,
            net,
            views: vec![crate::view::MembershipView::new(); cfg.n],
            horizon: f64::MAX,
            neighbor_buf: Vec::new(),
        };
        let mut sim = Simulation::new(model, seed);
        // Stagger start-up across one period.
        for node in 0..cfg.n {
            let offset = cfg.interval * node as f64 / cfg.n as f64;
            sim.schedule_at(SimTime::new(offset), Ev::Tick { node });
        }
        MembershipSim {
            cfg: *cfg,
            sim,
            failures: Vec::new(),
        }
    }

    /// Schedules `node` to go fail-silent at `time` minutes.
    ///
    /// # Panics
    ///
    /// Panics if `node >= n` or the simulation already ran past `time`.
    pub fn fail_node(&mut self, node: usize, time: f64) {
        assert!(node < self.cfg.n, "node out of range");
        assert!(
            time >= self.sim.now().as_minutes(),
            "cannot fail in the past"
        );
        self.failures.push((node, time));
        self.sim
            .model_mut()
            .net
            .faults_mut()
            .fail_at(NodeId(node as u32), SimTime::new(time));
    }

    /// Advances the simulation to `t` minutes.
    pub fn run_until(&mut self, t: f64) {
        self.sim.model_mut().horizon = t;
        self.sim.run_until(SimTime::new(t));
    }

    /// Node `observer`'s view of the group.
    ///
    /// # Panics
    ///
    /// Panics if `observer >= n`.
    #[must_use]
    pub fn view(&self, observer: usize) -> &crate::view::MembershipView {
        &self.sim.model().views[observer]
    }

    /// `true` when every *surviving* node currently suspects `target`.
    #[must_use]
    pub fn all_alive_suspect(&self, target: usize) -> bool {
        let now = self.sim.now().as_minutes();
        (0..self.cfg.n)
            .filter(|&i| i != target && self.sim.model().alive(i, now))
            .all(|i| self.view(i).is_suspected(target))
    }

    /// Number of (observer, peer) pairs where a *live* peer is currently
    /// suspected — false positives.
    #[must_use]
    pub fn false_suspicions(&self) -> usize {
        let now = self.sim.now().as_minutes();
        let mut count = 0;
        for obs in 0..self.cfg.n {
            if !self.sim.model().alive(obs, now) {
                continue;
            }
            for peer in 0..self.cfg.n {
                if peer != obs
                    && self.sim.model().alive(peer, now)
                    && self.view(obs).is_suspected(peer)
                {
                    count += 1;
                }
            }
        }
        count
    }

    /// Crosslink messages sent so far.
    #[must_use]
    pub fn messages_sent(&self) -> u64 {
        self.sim.model().net.stats().attempts
    }

    /// The injected failure schedule `(node, time)`, in injection order.
    #[must_use]
    pub fn scheduled_failures(&self) -> &[(usize, f64)] {
        &self.failures
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossy_membership_runs_are_deterministic() {
        // Same seed, same fault plan, lossy heartbeats: two runs must agree
        // on every observer's evidence and suspicion state and on the exact
        // message count.
        let mut cfg = MembershipConfig::plane(8);
        cfg.loss = 0.2;
        let run = || {
            let mut sim = MembershipSim::new(&cfg, 31);
            sim.fail_node(2, 10.0);
            sim.fail_node(5, 25.0);
            sim.run_until(80.0);
            sim
        };
        let a = run();
        let b = run();
        assert_eq!(a.messages_sent(), b.messages_sent());
        for obs in 0..8 {
            assert_eq!(
                a.view(obs).suspicions(),
                b.view(obs).suspicions(),
                "observer {obs} suspicions diverged"
            );
            assert_eq!(
                a.view(obs).evidence(),
                b.view(obs).evidence(),
                "observer {obs} evidence diverged"
            );
        }
    }

    #[test]
    fn fault_free_group_raises_no_suspicion() {
        let mut sim = MembershipSim::new(&MembershipConfig::plane(8), 1);
        sim.run_until(100.0);
        assert_eq!(sim.false_suspicions(), 0);
        assert!(sim.messages_sent() > 8 * 90, "heartbeats flowed");
    }

    #[test]
    fn failure_detected_within_bound() {
        let cfg = MembershipConfig::plane(10);
        let mut sim = MembershipSim::new(&cfg, 2);
        sim.fail_node(4, 30.0);
        sim.run_until(30.0 + cfg.detection_bound());
        assert!(sim.all_alive_suspect(4), "node 4 must be group-suspected");
        assert_eq!(sim.false_suspicions(), 0);
    }

    #[test]
    fn neighbors_detect_before_the_far_side() {
        let cfg = MembershipConfig::plane(12);
        let mut sim = MembershipSim::new(&cfg, 3);
        sim.fail_node(0, 20.0);
        // Just after the neighbor timeout: neighbors suspect, antipode may not.
        sim.run_until(20.0 + cfg.suspicion_timeout() + cfg.interval);
        assert!(sim.view(1).is_suspected(0) || sim.view(11).is_suspected(0));
    }

    #[test]
    fn lossy_links_do_not_poison_the_view_permanently() {
        let mut cfg = MembershipConfig::plane(8);
        cfg.loss = 0.3;
        let mut sim = MembershipSim::new(&cfg, 4);
        sim.run_until(300.0);
        // Transient suspicions may appear under loss, but fresh heartbeats
        // must keep clearing them; a large standing count means rot.
        assert!(
            sim.false_suspicions() <= 2,
            "standing false suspicions: {}",
            sim.false_suspicions()
        );
    }

    #[test]
    fn multiple_failures_all_detected() {
        let cfg = MembershipConfig::plane(14);
        let mut sim = MembershipSim::new(&cfg, 5);
        sim.fail_node(2, 25.0);
        sim.fail_node(7, 40.0);
        sim.run_until(40.0 + cfg.detection_bound());
        assert!(sim.all_alive_suspect(2));
        assert!(sim.all_alive_suspect(7));
        assert_eq!(sim.false_suspicions(), 0);
    }

    #[test]
    fn dead_nodes_stop_heartbeating() {
        let cfg = MembershipConfig::plane(6);
        let mut a = MembershipSim::new(&cfg, 6);
        a.run_until(100.0);
        let healthy = a.messages_sent();
        let mut b = MembershipSim::new(&cfg, 6);
        b.fail_node(0, 10.0);
        b.fail_node(1, 10.0);
        b.run_until(100.0);
        assert!(b.messages_sent() < healthy, "dead nodes must fall silent");
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn tiny_group_rejected() {
        let _ = MembershipConfig::plane(1);
    }
}
