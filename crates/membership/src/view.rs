//! Per-node membership views.

use std::collections::HashMap;

/// What one node believes about one peer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PeerStatus {
    /// No evidence either way yet (start-up).
    Unknown,
    /// Believed alive (heard directly or no standing suspicion).
    Alive,
    /// Suspected failed since the contained time.
    Suspected {
        /// When the suspicion was (first) raised, minutes.
        since: f64,
    },
}

/// One node's view of the group.
#[derive(Debug, Clone)]
pub struct MembershipView {
    /// Most recent *direct* evidence (heartbeat received) per peer; only
    /// direct silence raises suspicions.
    last_direct: HashMap<usize, f64>,
    /// Most recent evidence from *any* source (direct or gossiped) per
    /// peer; used to reject stale suspicion rumors, so rehabilitation
    /// propagates as far as suspicion does.
    last_evidence: HashMap<usize, f64>,
    /// Standing suspicions: peer → suspected-since.
    suspected: HashMap<usize, f64>,
}

impl MembershipView {
    /// An empty view.
    #[must_use]
    pub fn new() -> Self {
        MembershipView {
            last_direct: HashMap::new(),
            last_evidence: HashMap::new(),
            suspected: HashMap::new(),
        }
    }

    /// Records a heartbeat received directly from `peer` at `now`; clears
    /// any suspicion older than this evidence.
    pub fn record_direct(&mut self, peer: usize, now: f64) {
        let e = self.last_direct.entry(peer).or_insert(now);
        *e = e.max(now);
        self.record_evidence(peer, now);
    }

    /// Records gossiped evidence that `peer` was alive at `t`; clears any
    /// suspicion older than the evidence.
    pub fn record_evidence(&mut self, peer: usize, t: f64) {
        let e = self.last_evidence.entry(peer).or_insert(t);
        *e = e.max(t);
        if let Some(&since) = self.suspected.get(&peer) {
            if *e > since {
                self.suspected.remove(&peer);
            }
        }
    }

    /// Raises a suspicion of `peer` as of `since`, unless fresher evidence
    /// (direct or gossiped) contradicts it. Returns `true` if the suspicion
    /// stands.
    pub fn suspect(&mut self, peer: usize, since: f64) -> bool {
        if self.last_evidence.get(&peer).is_some_and(|&d| d > since) {
            return false;
        }
        let e = self.suspected.entry(peer).or_insert(since);
        *e = e.min(since);
        true
    }

    /// The freshest evidence records (for gossip piggybacking).
    #[must_use]
    pub fn evidence(&self) -> Vec<(usize, f64)> {
        let mut v: Vec<(usize, f64)> = self.last_evidence.iter().map(|(&p, &t)| (p, t)).collect();
        v.sort_unstable_by_key(|&(p, _)| p);
        v
    }

    /// Current status of `peer`.
    #[must_use]
    pub fn status(&self, peer: usize) -> PeerStatus {
        if let Some(&since) = self.suspected.get(&peer) {
            PeerStatus::Suspected { since }
        } else if self.last_direct.contains_key(&peer) {
            PeerStatus::Alive
        } else {
            PeerStatus::Unknown
        }
    }

    /// `true` when `peer` is currently suspected.
    #[must_use]
    pub fn is_suspected(&self, peer: usize) -> bool {
        matches!(self.status(peer), PeerStatus::Suspected { .. })
    }

    /// The standing suspicion records (for gossip piggybacking).
    #[must_use]
    pub fn suspicions(&self) -> Vec<(usize, f64)> {
        let mut v: Vec<(usize, f64)> = self.suspected.iter().map(|(&p, &t)| (p, t)).collect();
        v.sort_unstable_by_key(|&(p, _)| p);
        v
    }

    /// Most recent direct-contact time with `peer`, if any.
    #[must_use]
    pub fn last_direct(&self, peer: usize) -> Option<f64> {
        self.last_direct.get(&peer).copied()
    }
}

impl Default for MembershipView {
    fn default() -> Self {
        MembershipView::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_evidence_beats_older_rumor() {
        let mut v = MembershipView::new();
        v.record_direct(3, 10.0);
        assert!(!v.suspect(3, 9.0), "stale rumor rejected");
        assert_eq!(v.status(3), PeerStatus::Alive);
        assert!(v.suspect(3, 11.0), "fresher suspicion stands");
        assert!(v.is_suspected(3));
    }

    #[test]
    fn fresh_direct_contact_clears_suspicion() {
        let mut v = MembershipView::new();
        v.suspect(5, 4.0);
        assert!(v.is_suspected(5));
        v.record_direct(5, 6.0);
        assert_eq!(v.status(5), PeerStatus::Alive);
    }

    #[test]
    fn earliest_suspicion_time_is_kept() {
        let mut v = MembershipView::new();
        v.suspect(1, 8.0);
        v.suspect(1, 5.0);
        assert_eq!(v.status(1), PeerStatus::Suspected { since: 5.0 });
        assert_eq!(v.suspicions(), vec![(1, 5.0)]);
    }

    #[test]
    fn unknown_until_first_evidence() {
        let v = MembershipView::new();
        assert_eq!(v.status(9), PeerStatus::Unknown);
        assert!(!v.is_suspected(9));
        assert_eq!(v.last_direct(9), None);
    }
}
