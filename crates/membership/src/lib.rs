//! # oaq-membership — group membership for satellite constellations
//!
//! The OAQ paper closes by pointing at its authors' next step: *"adapting
//! group membership management techniques to the applications in the
//! environments of distributed autonomous mobile computing."* This crate
//! implements that extension: a heartbeat-and-gossip membership service
//! running over the same crosslink substrate (`oaq-net`) as the OAQ
//! protocol, so a satellite can know — without any ground intervention —
//! which of its peers are still ready to serve.
//!
//! ## Protocol
//!
//! * every alive node multicasts a **heartbeat** to its crosslink
//!   neighbors every `interval` minutes (starts staggered to avoid
//!   synchronization artifacts);
//! * a node **suspects** a neighbor it has not heard from for
//!   `suspicion_multiplier × interval`;
//! * heartbeats piggyback the sender's *suspicion records* (peer,
//!   suspected-since timestamp), so suspicion of a dead satellite spreads
//!   transitively through the ring even to nodes that never link to it;
//! * **fresh direct evidence wins**: a node that has heard from `X` more
//!   recently than a gossiped suspicion of `X` rejects the rumor, which
//!   makes loss-induced false suspicions self-healing.
//!
//! The service's payoff for OAQ: with a membership view, a coordinating
//! satellite recruits the next *live* peer instead of burning its deadline
//! budget waiting for a fail-silent one (see
//! `oaq_core::config::ProtocolConfig::membership_detection_latency` and the
//! integration tests of the umbrella crate).
//!
//! ## Example
//!
//! ```
//! use oaq_membership::{MembershipConfig, MembershipSim};
//!
//! let mut sim = MembershipSim::new(&MembershipConfig::plane(10), 7);
//! sim.fail_node(3, 50.0);
//! sim.run_until(80.0);
//! // Every surviving node eventually suspects node 3...
//! assert!(sim.all_alive_suspect(3));
//! // ...and nobody falsely suspects a live node.
//! assert_eq!(sim.false_suspicions(), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod service;
mod view;

pub use service::{MembershipConfig, MembershipSim};
pub use view::{MembershipView, PeerStatus};
