//! Property-based tests of the event kernel, statistics, and the
//! deterministic parallel replication engine.

use std::collections::HashSet;

use oaq_sim::par::{Merge, Replicator};
use oaq_sim::rng::substream_seed;
use oaq_sim::stats::{BatchMeans, Histogram, Tally, TimeWeighted};
use oaq_sim::{EventQueue, SimRng, SimTime};
use proptest::prelude::*;

proptest! {
    #[test]
    fn queue_pops_in_nondecreasing_time_order(
        times in prop::collection::vec(0.0f64..1e6, 1..200)
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::new(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut count = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
            count += 1;
        }
        prop_assert_eq!(count, times.len());
    }

    #[test]
    fn queue_ties_preserve_fifo(n in 1usize..100) {
        let mut q = EventQueue::new();
        for i in 0..n {
            q.push(SimTime::new(1.0), i);
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        prop_assert_eq!(order, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn cancellation_removes_exactly_the_cancelled(
        times in prop::collection::vec(0.0f64..100.0, 2..100),
        cancel_mask in prop::collection::vec(any::<bool>(), 2..100),
    ) {
        let mut q = EventQueue::new();
        let handles: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (i, q.push(SimTime::new(t), i)))
            .collect();
        let mut expected: Vec<usize> = Vec::new();
        for (i, h) in &handles {
            if cancel_mask.get(*i).copied().unwrap_or(false) {
                q.cancel(*h);
            } else {
                expected.push(*i);
            }
        }
        let mut seen: Vec<usize> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        seen.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(seen, expected);
    }

    #[test]
    fn tally_merge_is_order_independent(
        xs in prop::collection::vec(-100.0f64..100.0, 1..50),
        ys in prop::collection::vec(-100.0f64..100.0, 1..50),
    ) {
        let tally_of = |v: &[f64]| {
            let mut t = Tally::new();
            for &x in v {
                t.record(x);
            }
            t
        };
        let mut ab = tally_of(&xs);
        ab.merge(&tally_of(&ys));
        let mut ba = tally_of(&ys);
        ba.merge(&tally_of(&xs));
        prop_assert!((ab.mean() - ba.mean()).abs() < 1e-9);
        prop_assert!((ab.variance() - ba.variance()).abs() < 1e-9);
        prop_assert_eq!(ab.count(), ba.count());
    }

    #[test]
    fn time_weighted_average_is_bounded_by_extremes(
        levels in prop::collection::vec(0.0f64..10.0, 1..50),
    ) {
        let mut w = TimeWeighted::new(levels[0], SimTime::ZERO);
        for (i, &l) in levels.iter().enumerate().skip(1) {
            w.update(l, SimTime::new(i as f64));
        }
        let end = SimTime::new(levels.len() as f64);
        let avg = w.time_average(end);
        let lo = levels.iter().copied().fold(f64::MAX, f64::min);
        let hi = levels.iter().copied().fold(f64::MIN, f64::max);
        prop_assert!(avg >= lo - 1e-12 && avg <= hi + 1e-12);
    }

    #[test]
    fn exp_samples_are_positive_and_seeded(seed in any::<u64>(), rate in 0.01f64..100.0) {
        let mut a = SimRng::seed_from(seed);
        let mut b = SimRng::seed_from(seed);
        for _ in 0..50 {
            let x = a.exp(rate);
            prop_assert!(x >= 0.0 && x.is_finite());
            prop_assert_eq!(x, b.exp(rate));
        }
    }

    #[test]
    fn histogram_merge_equals_sequential(
        xs in prop::collection::vec(-2.0f64..12.0, 0..80),
        ys in prop::collection::vec(-2.0f64..12.0, 0..80),
    ) {
        let hist_of = |v: &[f64]| {
            let mut h = Histogram::new(0.0, 10.0, 16);
            for &x in v {
                h.record(x);
            }
            h
        };
        let mut merged = hist_of(&xs);
        merged.merge(&hist_of(&ys));
        let all: Vec<f64> = xs.iter().chain(&ys).copied().collect();
        // Integer bin counts: merging partials is exactly the sequential
        // histogram, bit for bit.
        prop_assert_eq!(merged, hist_of(&all));
    }

    #[test]
    fn batch_means_merge_equals_sequential(
        xs_raw in prop::collection::vec(-50.0f64..50.0, 0..60),
        ys in prop::collection::vec(-50.0f64..50.0, 0..60),
        batch in 1u64..8,
    ) {
        // Merge is exact when the left side sits on a batch boundary (the
        // replication engine's chunk sinks usually do); align xs to one.
        let cut = xs_raw.len() - xs_raw.len() % batch as usize;
        let xs = &xs_raw[..cut];
        let bm_of = |v: &[f64]| {
            let mut b = BatchMeans::new(batch);
            for &x in v {
                b.record(x);
            }
            b
        };
        let mut merged = bm_of(xs);
        merged.merge(&bm_of(&ys));
        let all: Vec<f64> = xs.iter().chain(&ys).copied().collect();
        let seq = bm_of(&all);
        let obs = |b: &BatchMeans| b.completed_batches() * batch + b.partial_count();
        prop_assert_eq!(obs(&merged), obs(&seq));
        prop_assert_eq!(merged.completed_batches(), seq.completed_batches());
        prop_assert_eq!(merged.partial_count(), seq.partial_count());
        if seq.completed_batches() > 0 {
            prop_assert!((merged.grand_mean() - seq.grand_mean()).abs() < 1e-9);
        }
    }

    #[test]
    fn time_weighted_merge_equals_sequential(
        levels in prop::collection::vec(0.0f64..10.0, 2..40),
        split in 1usize..39,
    ) {
        prop_assume!(split < levels.len());
        let sequential = {
            let mut w = TimeWeighted::new(levels[0], SimTime::ZERO);
            for (i, &l) in levels.iter().enumerate().skip(1) {
                w.update(l, SimTime::new(i as f64));
            }
            w
        };
        let mut left = TimeWeighted::new(levels[0], SimTime::ZERO);
        for (i, &l) in levels.iter().enumerate().take(split).skip(1) {
            left.update(l, SimTime::new(i as f64));
        }
        let mut right = TimeWeighted::new(levels[split - 1], SimTime::new((split - 1) as f64));
        for (i, &l) in levels.iter().enumerate().skip(split) {
            right.update(l, SimTime::new(i as f64));
        }
        left.merge(&right);
        let end = SimTime::new(levels.len() as f64);
        prop_assert!((left.time_average(end) - sequential.time_average(end)).abs() < 1e-9);
        prop_assert_eq!(left.min_level(), sequential.min_level());
        prop_assert_eq!(left.max_level(), sequential.max_level());
    }

    #[test]
    fn replicator_is_worker_count_invariant(
        replications in 0u64..300,
        seed in any::<u64>(),
    ) {
        #[derive(Debug, Clone, PartialEq, Default)]
        struct Sink {
            count: u64,
            hist: Option<Histogram>,
            order: Vec<u64>,
        }
        impl Merge for Sink {
            fn merge(&mut self, other: &Self) {
                self.count.merge(&other.count);
                match (&mut self.hist, &other.hist) {
                    (Some(a), Some(b)) => a.merge(b),
                    (h @ None, Some(b)) => *h = Some(b.clone()),
                    _ => {}
                }
                self.order.merge(&other.order);
            }
        }
        let run = |workers: usize, chunk: Option<u64>, forced: bool| {
            Replicator::new(workers)
                .with_chunk_override(chunk)
                .with_forced_steals(forced)
                .run(replications, seed, Sink::default, |i, rng, sink| {
                    let x = rng.exp(0.4);
                    sink.count += 1;
                    sink.hist
                        .get_or_insert_with(|| Histogram::new(0.0, 20.0, 32))
                        .record(x);
                    sink.order.push(i);
                })
        };
        let serial = run(1, None, false);
        prop_assert_eq!(serial.count, replications);
        prop_assert_eq!(&serial.order, &(0..replications).collect::<Vec<_>>());
        // Every worker count x chunk override x forced-steal interleaving
        // must reproduce the serial aggregate bit-for-bit: the schedule
        // decides which worker computes a replication, never its substream
        // or the chunk-ascending merge order.
        for workers in [2usize, 4, 8] {
            for chunk in [None, Some(16u64), Some(7), Some(1)] {
                for forced in [false, true] {
                    prop_assert_eq!(&run(workers, chunk, forced), &serial);
                }
            }
        }
    }
}

#[test]
fn substreams_do_not_collide_over_10k_ids() {
    // Counter-based derivation must give every replication a distinct
    // stream: no seed collisions and no identical first draws across 10k
    // consecutive stream ids (a collision would silently correlate
    // replications).
    let base = 0xDEAD_BEEF_u64;
    let mut seeds = HashSet::new();
    let mut first_draws = HashSet::new();
    for id in 0..10_000u64 {
        assert!(
            seeds.insert(substream_seed(base, id)),
            "seed collision at stream id {id}"
        );
        let draw = SimRng::substream(base, id).unit();
        assert!(
            first_draws.insert(draw.to_bits()),
            "first-draw collision at stream id {id}"
        );
    }
}
