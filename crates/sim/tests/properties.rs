//! Property-based tests of the event kernel and statistics.

use oaq_sim::stats::{Tally, TimeWeighted};
use oaq_sim::{EventQueue, SimRng, SimTime};
use proptest::prelude::*;

proptest! {
    #[test]
    fn queue_pops_in_nondecreasing_time_order(
        times in prop::collection::vec(0.0f64..1e6, 1..200)
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::new(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut count = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
            count += 1;
        }
        prop_assert_eq!(count, times.len());
    }

    #[test]
    fn queue_ties_preserve_fifo(n in 1usize..100) {
        let mut q = EventQueue::new();
        for i in 0..n {
            q.push(SimTime::new(1.0), i);
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        prop_assert_eq!(order, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn cancellation_removes_exactly_the_cancelled(
        times in prop::collection::vec(0.0f64..100.0, 2..100),
        cancel_mask in prop::collection::vec(any::<bool>(), 2..100),
    ) {
        let mut q = EventQueue::new();
        let handles: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (i, q.push(SimTime::new(t), i)))
            .collect();
        let mut expected: Vec<usize> = Vec::new();
        for (i, h) in &handles {
            if cancel_mask.get(*i).copied().unwrap_or(false) {
                q.cancel(*h);
            } else {
                expected.push(*i);
            }
        }
        let mut seen: Vec<usize> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        seen.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(seen, expected);
    }

    #[test]
    fn tally_merge_is_order_independent(
        xs in prop::collection::vec(-100.0f64..100.0, 1..50),
        ys in prop::collection::vec(-100.0f64..100.0, 1..50),
    ) {
        let tally_of = |v: &[f64]| {
            let mut t = Tally::new();
            for &x in v {
                t.record(x);
            }
            t
        };
        let mut ab = tally_of(&xs);
        ab.merge(&tally_of(&ys));
        let mut ba = tally_of(&ys);
        ba.merge(&tally_of(&xs));
        prop_assert!((ab.mean() - ba.mean()).abs() < 1e-9);
        prop_assert!((ab.variance() - ba.variance()).abs() < 1e-9);
        prop_assert_eq!(ab.count(), ba.count());
    }

    #[test]
    fn time_weighted_average_is_bounded_by_extremes(
        levels in prop::collection::vec(0.0f64..10.0, 1..50),
    ) {
        let mut w = TimeWeighted::new(levels[0], SimTime::ZERO);
        for (i, &l) in levels.iter().enumerate().skip(1) {
            w.update(l, SimTime::new(i as f64));
        }
        let end = SimTime::new(levels.len() as f64);
        let avg = w.time_average(end);
        let lo = levels.iter().copied().fold(f64::MAX, f64::min);
        let hi = levels.iter().copied().fold(f64::MIN, f64::max);
        prop_assert!(avg >= lo - 1e-12 && avg <= hi + 1e-12);
    }

    #[test]
    fn exp_samples_are_positive_and_seeded(seed in any::<u64>(), rate in 0.01f64..100.0) {
        let mut a = SimRng::seed_from(seed);
        let mut b = SimRng::seed_from(seed);
        for _ in 0..50 {
            let x = a.exp(rate);
            prop_assert!(x >= 0.0 && x.is_finite());
            prop_assert_eq!(x, b.exp(rate));
        }
    }
}
