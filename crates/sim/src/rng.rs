//! Seeded random streams and the distributions used by the paper's models.
//!
//! The paper assumes Poisson signal arrivals, exponentially distributed
//! signal durations (rate µ) and exponentially distributed iterative
//! geolocation computation times (rate ν). All sampling goes through
//! [`SimRng`] so that every stochastic component of the workspace is
//! reproducible from a single seed, and so that independent model components
//! can be given independent sub-streams ([`SimRng::fork`]).

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Derives the seed of substream `stream_id` from `base_seed`.
///
/// The mixing is a SplitMix64-style finalizer over
/// `base_seed + stream_id · γ + γ` (γ the golden-ratio increment), so
/// nearby stream ids map to statistically unrelated seeds. This is a pure
/// function of its arguments: replication *i* receives the same stream no
/// matter which worker thread — or how many worker threads — the
/// replication engine ([`crate::par::Replicator`]) schedules it on.
#[must_use]
pub fn substream_seed(base_seed: u64, stream_id: u64) -> u64 {
    let mut z = base_seed
        .wrapping_add(stream_id.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic random stream for simulation models.
///
/// # Examples
///
/// ```
/// use oaq_sim::SimRng;
/// let mut a = SimRng::seed_from(7);
/// let mut b = SimRng::seed_from(7);
/// assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Creates a stream from a 64-bit seed.
    #[must_use]
    pub fn seed_from(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Splits off an independent child stream.
    ///
    /// The child is seeded from the parent's output, so forking advances the
    /// parent stream; two forks taken in sequence are distinct.
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from(self.inner.next_u64())
    }

    /// The counter-based substream `stream_id` of `base_seed`
    /// (see [`substream_seed`]).
    ///
    /// Unlike [`SimRng::fork`], which advances the parent and therefore
    /// depends on how many forks were taken before it, a substream is
    /// addressed purely by its id — the derivation Monte Carlo replication
    /// *i* uses under both the serial loop and the parallel
    /// [`crate::par::Replicator`].
    ///
    /// # Examples
    ///
    /// ```
    /// use oaq_sim::SimRng;
    /// let mut a = SimRng::substream(7, 42);
    /// let mut b = SimRng::substream(7, 42);
    /// assert_eq!(a.unit(), b.unit());
    /// ```
    #[must_use]
    pub fn substream(base_seed: u64, stream_id: u64) -> SimRng {
        SimRng::seed_from(substream_seed(base_seed, stream_id))
    }

    /// A uniform draw in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.random::<f64>()
    }

    /// A uniform draw in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is non-finite.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite() && lo <= hi, "bad range");
        if lo == hi {
            return lo;
        }
        self.inner.random_range(lo..hi)
    }

    /// An exponential draw with the given `rate` (mean `1/rate`), by
    /// inversion: `-ln(1-U)/rate`.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive and finite.
    pub fn exp(&mut self, rate: f64) -> f64 {
        assert!(rate.is_finite() && rate > 0.0, "rate must be > 0");
        let u: f64 = self.unit();
        -(1.0 - u).ln() / rate
    }

    /// A standard normal draw (Box–Muller, one value per call).
    pub fn standard_normal(&mut self) -> f64 {
        // Marsaglia polar method avoids trig and rejects u==0 naturally.
        loop {
            let u = 2.0 * self.unit() - 1.0;
            let v = 2.0 * self.unit() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * ((-2.0 * s.ln()) / s).sqrt();
            }
        }
    }

    /// A normal draw with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative or non-finite.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev.is_finite() && std_dev >= 0.0, "bad std_dev");
        mean + std_dev * self.standard_normal()
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p.clamp(0.0, 1.0)
    }

    /// A uniform index in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index range must be non-empty");
        self.inner.random_range(0..n)
    }

    /// An Erlang-`shape` draw with the given per-stage `rate` (sum of
    /// `shape` independent exponentials).
    ///
    /// # Panics
    ///
    /// Panics if `shape == 0` or `rate` is not strictly positive.
    pub fn erlang(&mut self, shape: u32, rate: f64) -> f64 {
        assert!(shape > 0, "Erlang shape must be >= 1");
        (0..shape).map(|_| self.exp(rate)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(1);
        for _ in 0..100 {
            assert_eq!(a.unit(), b.unit());
        }
    }

    #[test]
    fn forks_are_distinct_and_deterministic() {
        let mut parent1 = SimRng::seed_from(9);
        let mut parent2 = SimRng::seed_from(9);
        let mut c1 = parent1.fork();
        let mut d1 = parent1.fork();
        let mut c2 = parent2.fork();
        assert_eq!(c1.unit(), c2.unit(), "same fork order, same stream");
        assert_ne!(c1.unit(), d1.unit(), "sibling forks differ");
    }

    #[test]
    fn exp_mean_is_close() {
        let mut rng = SimRng::seed_from(2);
        let n = 200_000;
        let rate = 0.5;
        let mean: f64 = (0..n).map(|_| rng.exp(rate)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean} should be ~2.0");
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = SimRng::seed_from(3);
        for _ in 0..10_000 {
            let x = rng.uniform(2.0, 3.0);
            assert!((2.0..3.0).contains(&x));
        }
        assert_eq!(rng.uniform(5.0, 5.0), 5.0, "degenerate range returns lo");
    }

    #[test]
    fn normal_moments_are_close() {
        let mut rng = SimRng::seed_from(4);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.normal(1.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.05);
        assert!((var - 4.0).abs() < 0.1);
    }

    #[test]
    fn erlang_mean_is_shape_over_rate() {
        let mut rng = SimRng::seed_from(5);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.erlang(4, 2.0)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from(6);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn index_in_range() {
        let mut rng = SimRng::seed_from(7);
        for _ in 0..1000 {
            assert!(rng.index(5) < 5);
        }
    }

    #[test]
    #[should_panic(expected = "rate must be > 0")]
    fn exp_rejects_zero_rate() {
        let _ = SimRng::seed_from(0).exp(0.0);
    }

    #[test]
    fn substreams_are_pure_and_distinct() {
        assert_eq!(substream_seed(9, 4), substream_seed(9, 4));
        assert_ne!(substream_seed(9, 4), substream_seed(9, 5));
        assert_ne!(substream_seed(9, 4), substream_seed(10, 4));
        let mut a = SimRng::substream(9, 4);
        let mut b = SimRng::substream(9, 4);
        let mut c = SimRng::substream(9, 5);
        let x = a.unit();
        assert_eq!(x, b.unit());
        assert_ne!(x, c.unit());
    }

    #[test]
    fn substreams_ignore_parent_state() {
        // Forks depend on draw history; substreams must not.
        let mut parent = SimRng::seed_from(1);
        let before = SimRng::substream(33, 7).unit();
        let _ = parent.fork();
        let after = SimRng::substream(33, 7).unit();
        assert_eq!(before, after);
    }
}
