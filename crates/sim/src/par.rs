//! Deterministic parallel Monte Carlo replication.
//!
//! Monte Carlo studies in this workspace (the E15 fault-injection
//! campaign, the E9 protocol-vs-analytic validation, the membership
//! benches) are embarrassingly parallel: every replication is seeded
//! independently and touches no shared state. This module turns that
//! independence into wall-clock speedup *without giving up determinism*:
//!
//! 1. **Counter-based substreams.** Replication `i` draws from
//!    [`SimRng::substream`]`(base_seed, i)` — a pure function of the seed
//!    and the replication index, so the stream is identical no matter
//!    which worker runs the replication.
//! 2. **Fixed merge structure.** Replications are grouped into chunks
//!    whose size is a function of the replication count *only* (the
//!    adaptive default, [`oaq_exec::adaptive_chunk`]) or an explicit
//!    override — never the worker count. Each chunk accumulates into its
//!    own statistic sink, and chunk sinks are merged in ascending chunk
//!    order once all workers finish.
//!
//! Together these make the aggregate a deterministic function of
//! `(replications, base_seed, chunk)` alone: **running with 1, 2, 4 or 64
//! workers produces bit-identical results**, because the worker count only
//! decides *who* computes a chunk, never *what* a chunk contains or the
//! order chunks are merged in. The fan-out itself runs on the
//! [`oaq_exec`] deterministic executor (indexed slots, ordered merge,
//! work-stealing scheduler); this module keeps the Monte-Carlo layer —
//! substream seeding and the [`Merge`] reduction — on top of it.
//!
//! For sinks whose [`Merge`] is exact — integer counters, histograms,
//! order-preserving concatenation — the result is additionally
//! bit-identical to a plain serial `for` loop over the replications. For
//! floating-point sinks ([`crate::stats::Tally`] & co.) the chunked merge
//! regroups the additions, so the result is deterministic and
//! worker-count-independent but may differ from the unchunked loop in the
//! last few ulps; route the serial path through a one-worker
//! [`Replicator`] to get one code path with one answer.
//!
//! # Example
//!
//! ```
//! use oaq_sim::par::{Merge, Replicator};
//! use oaq_sim::stats::Tally;
//!
//! #[derive(Default)]
//! struct Sink {
//!     hits: u64,
//!     sample: Tally,
//! }
//! impl Merge for Sink {
//!     fn merge(&mut self, other: &Self) {
//!         self.hits.merge(&other.hits);
//!         self.sample.merge(&other.sample);
//!     }
//! }
//!
//! let run = |workers| {
//!     Replicator::new(workers).run(10_000, 42, Sink::default, |_, rng, sink| {
//!         let x = rng.exp(0.5);
//!         if x > 2.0 {
//!             sink.hits += 1;
//!         }
//!         sink.sample.record(x);
//!     })
//! };
//! let serial = run(1);
//! let parallel = run(4);
//! assert_eq!(serial.hits, parallel.hits);
//! assert_eq!(serial.sample.mean(), parallel.sample.mean());
//! ```

use crate::rng::SimRng;

/// A statistic that supports an order-stable parallel reduction.
///
/// `merge` folds `other` into `self`. The replication engine always merges
/// partial sinks in ascending replication order, so implementations may
/// (and the stats types do) make the result depend on operand order — what
/// matters is that `merge` is a deterministic function of its operands.
pub trait Merge {
    /// Folds `other` into `self`.
    fn merge(&mut self, other: &Self);
}

/// Counts and other exact accumulators add.
impl Merge for u64 {
    fn merge(&mut self, other: &Self) {
        *self += *other;
    }
}

/// Floating-point accumulators add (exactly order-stable, but the chunked
/// grouping differs from an unchunked serial sum — see the module docs).
impl Merge for f64 {
    fn merge(&mut self, other: &Self) {
        *self += *other;
    }
}

/// Sequences concatenate, preserving replication order.
impl<T: Clone> Merge for Vec<T> {
    fn merge(&mut self, other: &Self) {
        self.extend_from_slice(other);
    }
}

/// Fixed-size arrays merge elementwise.
impl<T: Merge, const N: usize> Merge for [T; N] {
    fn merge(&mut self, other: &Self) {
        for (a, b) in self.iter_mut().zip(other) {
            a.merge(b);
        }
    }
}

/// Every statistics collector reduces via its inherent `merge`; see each
/// type's docs for exactness (integer collectors are exact, floating-point
/// collectors are order-stable, the P² sketch is heuristic).
impl Merge for crate::stats::Counter {
    fn merge(&mut self, other: &Self) {
        crate::stats::Counter::merge(self, other);
    }
}

impl Merge for crate::stats::Tally {
    fn merge(&mut self, other: &Self) {
        crate::stats::Tally::merge(self, other);
    }
}

impl Merge for crate::stats::Histogram {
    fn merge(&mut self, other: &Self) {
        crate::stats::Histogram::merge(self, other);
    }
}

impl Merge for crate::stats::BatchMeans {
    fn merge(&mut self, other: &Self) {
        crate::stats::BatchMeans::merge(self, other);
    }
}

impl Merge for crate::stats::TimeWeighted {
    fn merge(&mut self, other: &Self) {
        crate::stats::TimeWeighted::merge(self, other);
    }
}

impl Merge for crate::stats::P2Quantile {
    fn merge(&mut self, other: &Self) {
        crate::stats::P2Quantile::merge(self, other);
    }
}

/// The historical fixed replications-per-chunk — now the *floor* of the
/// adaptive policy ([`oaq_exec::MIN_CHUNK`]), so runs of up to
/// `16 × `[`oaq_exec::TARGET_CHUNKS`]` = 1024` replications resolve to
/// exactly this value and stay bit-identical to pre-adaptive results.
pub const DEFAULT_CHUNK: u64 = oaq_exec::MIN_CHUNK;

pub use oaq_exec::effective_workers;

/// A deterministic parallel replication engine.
///
/// See the [module docs](self) for the determinism argument. Constructed
/// with a worker count (`0` = all cores) and an optional chunk size; the
/// chunk size is part of the result's "identity" (it fixes the merge
/// grouping), the worker count is not — which is why the adaptive default
/// is a function of the replication count alone.
#[derive(Debug, Clone)]
pub struct Replicator {
    workers: usize,
    chunk: Option<u64>,
    forced_steals: bool,
}

impl Replicator {
    /// An engine with `workers` worker threads (`0` = one per core) and
    /// adaptive chunking ([`oaq_exec::adaptive_chunk`]).
    #[must_use]
    pub fn new(workers: usize) -> Self {
        Replicator {
            workers,
            chunk: None,
            forced_steals: false,
        }
    }

    /// Forwards [`oaq_exec::Executor::with_forced_steals`] — a scheduling
    /// stressor that makes every worker but one steal its whole workload.
    /// Cannot change results; exists so invariance tests can prove it.
    #[must_use]
    pub fn with_forced_steals(mut self, forced: bool) -> Self {
        self.forced_steals = forced;
        self
    }

    /// Pins the replications-per-chunk granularity.
    ///
    /// # Panics
    ///
    /// Panics if `chunk == 0`.
    #[must_use]
    pub fn with_chunk(mut self, chunk: u64) -> Self {
        assert!(chunk > 0, "chunk size must be positive");
        self.chunk = Some(chunk);
        self
    }

    /// Pins the chunk granularity if `chunk` is `Some` (the benches'
    /// `--chunk` flag), else keeps the adaptive default.
    ///
    /// # Panics
    ///
    /// Panics if `chunk == Some(0)`.
    #[must_use]
    pub fn with_chunk_override(self, chunk: Option<u64>) -> Self {
        match chunk {
            Some(c) => self.with_chunk(c),
            None => self,
        }
    }

    /// The resolved worker count.
    #[must_use]
    pub fn effective_workers(&self) -> usize {
        effective_workers(self.workers)
    }

    /// The explicit chunk override, if one was pinned.
    #[must_use]
    pub fn chunk_override(&self) -> Option<u64> {
        self.chunk
    }

    /// The replications-per-chunk a run of `replications` will use: the
    /// pinned override, else the adaptive policy (a pure function of
    /// `replications`, never the worker count).
    #[must_use]
    pub fn resolved_chunk(&self, replications: u64) -> u64 {
        self.chunk
            .unwrap_or_else(|| oaq_exec::adaptive_chunk(replications))
    }

    /// Runs `replications` independent replications, fanning chunks across
    /// the [`oaq_exec`] executor, and returns the merged sink.
    ///
    /// `init` builds an empty per-chunk sink; `body(i, rng, sink)` runs
    /// replication `i` with its dedicated substream
    /// [`SimRng::substream`]`(base_seed, i)` and records into the chunk's
    /// sink. The result is bit-identical for any worker count.
    ///
    /// # Panics
    ///
    /// Propagates panics from `body` (the pool observes the first one).
    pub fn run<S, I, F>(&self, replications: u64, base_seed: u64, init: I, body: F) -> S
    where
        S: Merge + Send,
        I: Fn() -> S + Sync,
        F: Fn(u64, &mut SimRng, &mut S) + Sync,
    {
        self.run_scratch(
            replications,
            base_seed,
            init,
            || (),
            |i, rng, _scratch, sink| body(i, rng, sink),
        )
    }

    /// [`run`](Replicator::run) with a per-*worker* scratch value built
    /// once per worker thread and lent to every replication that worker
    /// executes — reusable episode buffers without per-replication
    /// allocation. Sinks stay per-*chunk* (the merge grouping is part of
    /// the result's identity); scratch is per-worker because it is, by
    /// contract, invisible in the result: `body`'s output must be a pure
    /// function of `(i, rng)`, treating the scratch as uninitialized
    /// capacity.
    ///
    /// # Panics
    ///
    /// Propagates panics from `body` (the pool observes the first one).
    pub fn run_scratch<S, C, I, M, F>(
        &self,
        replications: u64,
        base_seed: u64,
        init: I,
        make_scratch: M,
        body: F,
    ) -> S
    where
        S: Merge + Send,
        I: Fn() -> S + Sync,
        M: Fn() -> C + Sync,
        F: Fn(u64, &mut SimRng, &mut C, &mut S) + Sync,
    {
        let chunk = self.resolved_chunk(replications);
        let chunks = replications.div_ceil(chunk);
        let run_chunk = |c: u64, scratch: &mut C| -> S {
            let mut sink = init();
            let lo = c * chunk;
            let hi = (lo + chunk).min(replications);
            for i in lo..hi {
                let mut rng = SimRng::substream(base_seed, i);
                body(i, &mut rng, scratch, &mut sink);
            }
            sink
        };

        // The executor returns chunk sinks in ascending chunk index for
        // any worker count (its one-worker path is the bit-exact serial
        // reference), so the ascending merge below is the whole
        // determinism story at this layer.
        let sinks = oaq_exec::Executor::new(self.workers)
            .with_forced_steals(self.forced_steals)
            .run_indexed_scratch(chunks, make_scratch, run_chunk);
        let mut acc = init();
        for sink in &sinks {
            acc.merge(sink);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{Histogram, Tally};

    #[derive(Debug, Clone, PartialEq)]
    struct Sink {
        count: u64,
        sum: f64,
        tally: Tally,
        hist: Histogram,
        order: Vec<u64>,
    }

    impl Sink {
        fn empty() -> Self {
            Sink {
                count: 0,
                sum: 0.0,
                tally: Tally::new(),
                hist: Histogram::new(0.0, 10.0, 20),
                order: Vec::new(),
            }
        }
    }

    impl Merge for Sink {
        fn merge(&mut self, other: &Self) {
            self.count.merge(&other.count);
            self.sum.merge(&other.sum);
            self.tally.merge(&other.tally);
            self.hist.merge(&other.hist);
            self.order.merge(&other.order);
        }
    }

    fn run(workers: usize, chunk: u64) -> Sink {
        Replicator::new(workers)
            .with_chunk(chunk)
            .run(500, 99, Sink::empty, |i, rng, sink| {
                let x = rng.exp(0.3);
                sink.count += 1;
                sink.sum += x;
                sink.tally.record(x);
                sink.hist.record(x);
                sink.order.push(i);
            })
    }

    #[test]
    fn worker_count_never_changes_the_answer() {
        let reference = run(1, DEFAULT_CHUNK);
        for workers in [2, 3, 4, 8] {
            assert_eq!(run(workers, DEFAULT_CHUNK), reference, "{workers} workers");
        }
        assert_eq!(reference.count, 500);
        assert_eq!(reference.order, (0..500).collect::<Vec<_>>());
    }

    #[test]
    fn zero_replications_yield_the_empty_sink() {
        let s = Replicator::new(4).run(0, 1, Sink::empty, |_, _, _| unreachable!());
        assert_eq!(s, Sink::empty());
    }

    #[test]
    fn replication_streams_are_substreams() {
        // The rng handed to replication i must be substream i exactly.
        let collected = Replicator::new(3).run(40, 7, Vec::new, |i, rng, sink: &mut Vec<f64>| {
            let expected = SimRng::substream(7, i).unit();
            let got = rng.unit();
            assert_eq!(got, expected);
            sink.push(got);
        });
        assert_eq!(collected.len(), 40);
    }

    #[test]
    fn chunk_size_is_part_of_the_identity_for_floats() {
        // Counts are chunk-invariant; float sums may regroup.
        let a = run(2, 16);
        let b = run(2, 64);
        assert_eq!(a.count, b.count);
        assert_eq!(a.hist, b.hist);
        assert_eq!(a.order, b.order);
        assert!((a.sum - b.sum).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn zero_chunk_rejected() {
        let _ = Replicator::new(1).with_chunk(0);
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn zero_chunk_override_rejected() {
        let _ = Replicator::new(1).with_chunk_override(Some(0));
    }

    #[test]
    fn adaptive_chunk_matches_historical_default_for_small_runs() {
        // ≤ 1024 replications resolve to the old fixed chunk of 16, so
        // pre-adaptive float aggregates are reproduced bit for bit.
        let r = Replicator::new(2);
        assert_eq!(r.chunk_override(), None);
        assert_eq!(r.resolved_chunk(500), DEFAULT_CHUNK);
        assert_eq!(r.resolved_chunk(1024), DEFAULT_CHUNK);
        assert_eq!(r.resolved_chunk(64_000), 1000);
        assert_eq!(r.with_chunk(7).resolved_chunk(64_000), 7);
    }

    #[test]
    fn scratch_and_forced_steals_cannot_change_the_answer() {
        let reference = run(1, DEFAULT_CHUNK);
        for workers in [2, 4, 8] {
            for forced in [false, true] {
                let got = Replicator::new(workers)
                    .with_chunk(DEFAULT_CHUNK)
                    .with_forced_steals(forced)
                    .run_scratch(
                        500,
                        99,
                        Sink::empty,
                        Vec::<f64>::new,
                        |i, rng, scratch, sink| {
                            // Stage the draw through the worker scratch to
                            // prove leftover contents are invisible.
                            scratch.push(rng.exp(0.3));
                            let x = *scratch.last().expect("just pushed");
                            sink.count += 1;
                            sink.sum += x;
                            sink.tally.record(x);
                            sink.hist.record(x);
                            sink.order.push(i);
                        },
                    );
                assert_eq!(got, reference, "{workers} workers, forced={forced}");
            }
        }
    }

    #[test]
    fn adaptive_default_is_worker_count_invariant_above_the_floor() {
        // 5000 replications resolve to an adaptive chunk of 79 — past the
        // floor, so this exercises the policy itself being independent of
        // the worker count.
        let run = |workers: usize| {
            Replicator::new(workers).run(5000, 11, Sink::empty, |i, rng, sink| {
                let x = rng.exp(0.7);
                sink.count += 1;
                sink.sum += x;
                sink.tally.record(x);
                sink.hist.record(x);
                sink.order.push(i);
            })
        };
        let reference = run(1);
        for workers in [2, 4, 8] {
            assert_eq!(run(workers), reference, "{workers} workers");
        }
    }
}
