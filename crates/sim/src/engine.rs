//! The simulation engine: model trait, scheduling context and the run loop.

use crate::clock::{SimDuration, SimTime};
use crate::queue::{EventHandle, EventQueue};
use crate::rng::SimRng;

/// A discrete-event model.
///
/// Implementations define their own event vocabulary (`Event`) and mutate
/// their state in [`Model::handle`], scheduling follow-up events through the
/// [`Context`].
pub trait Model {
    /// The model's event vocabulary.
    type Event;

    /// Reacts to one event at the context's current virtual time.
    fn handle(&mut self, event: Self::Event, ctx: &mut Context<Self::Event>);
}

/// Scheduling and sampling facilities handed to [`Model::handle`].
#[derive(Debug)]
pub struct Context<'a, E> {
    now: SimTime,
    queue: &'a mut EventQueue<E>,
    rng: &'a mut SimRng,
    stop_requested: &'a mut bool,
}

impl<E> Context<'_, E> {
    /// Current virtual time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past (before [`Context::now`]).
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventHandle {
        assert!(at >= self.now, "cannot schedule into the past");
        self.queue.push(at, event)
    }

    /// Schedules `event` after a relative delay.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) -> EventHandle {
        self.queue.push(self.now + delay, event)
    }

    /// Cancels a pending event. Returns `true` if it was still pending.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        self.queue.cancel(handle)
    }

    /// The simulation's random stream.
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// Asks the engine to stop after this handler returns.
    pub fn request_stop(&mut self) {
        *self.stop_requested = true;
    }
}

/// Why a run loop returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained before the horizon.
    Exhausted,
    /// The time horizon was reached; later events remain pending.
    HorizonReached,
    /// The event budget was spent.
    BudgetSpent,
    /// The model called [`Context::request_stop`].
    Stopped,
}

/// A record of one dispatched event, for tracing tests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventRecord {
    /// When the event fired.
    pub time: SimTime,
    /// Dispatch ordinal (0-based).
    pub ordinal: u64,
}

/// Owns a model, a clock, an event queue and a random stream, and drives the
/// model to completion.
///
/// See the [crate-level example](crate) for usage.
#[derive(Debug)]
pub struct Simulation<M: Model> {
    model: M,
    queue: EventQueue<M::Event>,
    clock: SimTime,
    rng: SimRng,
    dispatched: u64,
}

impl<M: Model> Simulation<M> {
    /// Creates a simulation over `model` with the given RNG seed.
    #[must_use]
    pub fn new(model: M, seed: u64) -> Self {
        Simulation::with_queue(model, seed, EventQueue::new())
    }

    /// [`Simulation::new`] with a recycled event queue: `queue` is reset
    /// (keeping its allocated capacity) and reused, so a caller running many
    /// short simulations back to back skips the per-run heap allocations.
    /// Behaviorally identical to `new`.
    #[must_use]
    pub fn with_queue(model: M, seed: u64, mut queue: EventQueue<M::Event>) -> Self {
        queue.reset();
        Simulation {
            model,
            queue,
            clock: SimTime::ZERO,
            rng: SimRng::seed_from(seed),
            dispatched: 0,
        }
    }

    /// Schedules an initial event before the run starts (or between runs).
    pub fn schedule_at(&mut self, at: SimTime, event: M::Event) -> EventHandle {
        assert!(at >= self.clock, "cannot schedule into the past");
        self.queue.push(at, event)
    }

    /// Current virtual time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Number of events dispatched so far.
    #[must_use]
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Shared access to the model.
    #[must_use]
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Exclusive access to the model (e.g. to install observers between
    /// warm-up and measurement phases).
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// Consumes the simulation, returning the model.
    #[must_use]
    pub fn into_model(self) -> M {
        self.model
    }

    /// Consumes the simulation, returning the model *and* the event queue so
    /// the queue's buffers can be recycled via [`Simulation::with_queue`].
    #[must_use]
    pub fn into_parts(self) -> (M, EventQueue<M::Event>) {
        (self.model, self.queue)
    }

    /// The simulation's random stream (for seeding initial conditions).
    pub fn rng_mut(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// Runs until the queue drains or `horizon` is passed. Events scheduled
    /// exactly at the horizon still fire.
    pub fn run_until(&mut self, horizon: SimTime) -> RunOutcome {
        self.run_inner(Some(horizon), None)
    }

    /// Runs until the queue drains, at most `budget` events.
    pub fn run_events(&mut self, budget: u64) -> RunOutcome {
        self.run_inner(None, Some(budget))
    }

    /// Runs until the queue drains. Beware models with self-sustaining event
    /// streams: prefer [`Simulation::run_until`] for those.
    pub fn run_to_completion(&mut self) -> RunOutcome {
        self.run_inner(None, None)
    }

    fn run_inner(&mut self, horizon: Option<SimTime>, budget: Option<u64>) -> RunOutcome {
        let mut spent: u64 = 0;
        loop {
            if let Some(b) = budget {
                if spent >= b {
                    return RunOutcome::BudgetSpent;
                }
            }
            let Some(next_time) = self.queue.peek_time() else {
                return RunOutcome::Exhausted;
            };
            if let Some(h) = horizon {
                if next_time > h {
                    // Leave the event pending; advance the clock to the horizon
                    // so time-weighted statistics can be closed out there.
                    self.clock = h;
                    return RunOutcome::HorizonReached;
                }
            }
            let (time, event) = self.queue.pop().expect("peeked event must pop");
            self.clock = time;
            self.dispatched += 1;
            spent += 1;
            let mut stop = false;
            let mut ctx = Context {
                now: self.clock,
                queue: &mut self.queue,
                rng: &mut self.rng,
                stop_requested: &mut stop,
            };
            self.model.handle(event, &mut ctx);
            if stop {
                return RunOutcome::Stopped;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Ping {
        fired: Vec<f64>,
        stop_after: usize,
    }

    enum Ev {
        Tick,
    }

    impl Model for Ping {
        type Event = Ev;
        fn handle(&mut self, _ev: Ev, ctx: &mut Context<Ev>) {
            self.fired.push(ctx.now().as_minutes());
            if self.fired.len() >= self.stop_after {
                ctx.request_stop();
            } else {
                ctx.schedule_in(SimDuration::new(1.0), Ev::Tick);
            }
        }
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut sim = Simulation::new(
            Ping {
                fired: vec![],
                stop_after: usize::MAX,
            },
            0,
        );
        sim.schedule_at(SimTime::ZERO, Ev::Tick);
        let outcome = sim.run_until(SimTime::new(5.5));
        assert_eq!(outcome, RunOutcome::HorizonReached);
        assert_eq!(sim.model().fired.len(), 6); // t = 0..=5
        assert_eq!(sim.now(), SimTime::new(5.5), "clock closed at horizon");
    }

    #[test]
    fn request_stop_halts_loop() {
        let mut sim = Simulation::new(
            Ping {
                fired: vec![],
                stop_after: 3,
            },
            0,
        );
        sim.schedule_at(SimTime::ZERO, Ev::Tick);
        assert_eq!(sim.run_to_completion(), RunOutcome::Stopped);
        assert_eq!(sim.model().fired, vec![0.0, 1.0, 2.0]);
    }

    #[test]
    fn event_budget_is_enforced() {
        let mut sim = Simulation::new(
            Ping {
                fired: vec![],
                stop_after: usize::MAX,
            },
            0,
        );
        sim.schedule_at(SimTime::ZERO, Ev::Tick);
        assert_eq!(sim.run_events(10), RunOutcome::BudgetSpent);
        assert_eq!(sim.dispatched(), 10);
    }

    #[test]
    fn empty_queue_exhausts() {
        let mut sim = Simulation::new(
            Ping {
                fired: vec![],
                stop_after: 1,
            },
            0,
        );
        assert_eq!(sim.run_to_completion(), RunOutcome::Exhausted);
    }

    struct Canceller {
        saw_cancelled: bool,
    }
    enum CEv {
        Arm,
        ShouldNotFire,
    }
    impl Model for Canceller {
        type Event = CEv;
        fn handle(&mut self, ev: CEv, ctx: &mut Context<CEv>) {
            match ev {
                CEv::Arm => {
                    let h = ctx.schedule_in(SimDuration::new(1.0), CEv::ShouldNotFire);
                    assert!(ctx.cancel(h));
                }
                CEv::ShouldNotFire => self.saw_cancelled = true,
            }
        }
    }

    #[test]
    fn context_cancel_prevents_dispatch() {
        let mut sim = Simulation::new(
            Canceller {
                saw_cancelled: false,
            },
            0,
        );
        sim.schedule_at(SimTime::ZERO, CEv::Arm);
        sim.run_to_completion();
        assert!(!sim.model().saw_cancelled);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut sim = Simulation::new(
                Ping {
                    fired: vec![],
                    stop_after: 100,
                },
                7,
            );
            sim.schedule_at(SimTime::ZERO, Ev::Tick);
            sim.run_to_completion();
            sim.into_model().fired
        };
        assert_eq!(run(), run());
    }
}
