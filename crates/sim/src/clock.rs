//! Virtual-time types.
//!
//! Simulation time is a non-negative, finite `f64`. The newtypes below make
//! instants and durations statically distinct (C-NEWTYPE) and give them the
//! total order that `f64` lacks; constructors validate finiteness so ordering
//! never observes a NaN.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant on the virtual time axis.
///
/// Throughout the OAQ workspace instants are measured in **minutes** from the
/// start of the scenario, matching the paper's parameterization (τ, Tc, Tr
/// are all quoted in minutes); the kernel itself does not care about units.
///
/// # Examples
///
/// ```
/// use oaq_sim::{SimTime, SimDuration};
/// let t = SimTime::new(3.0) + SimDuration::new(1.5);
/// assert_eq!(t, SimTime::new(4.5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimTime(f64);

/// A span between two [`SimTime`] instants; always finite, may be zero.
///
/// Negative durations are rejected by [`SimDuration::new`]; subtraction of
/// instants via [`SimTime::duration_since`] saturates at zero.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimDuration(f64);

impl SimTime {
    /// The origin of virtual time.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates an instant `minutes` after the origin.
    ///
    /// # Panics
    ///
    /// Panics if `minutes` is negative, NaN or infinite.
    #[must_use]
    pub fn new(minutes: f64) -> Self {
        assert!(
            minutes.is_finite() && minutes >= 0.0,
            "SimTime must be finite and non-negative, got {minutes}"
        );
        SimTime(minutes)
    }

    /// Returns the instant as minutes since the origin.
    #[must_use]
    pub fn as_minutes(self) -> f64 {
        self.0
    }

    /// The duration elapsed since `earlier`, saturating at zero if `earlier`
    /// is actually later than `self`.
    #[must_use]
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration((self.0 - earlier.0).max(0.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0.0);

    /// Creates a duration of `minutes`.
    ///
    /// # Panics
    ///
    /// Panics if `minutes` is negative, NaN or infinite.
    #[must_use]
    pub fn new(minutes: f64) -> Self {
        assert!(
            minutes.is_finite() && minutes >= 0.0,
            "SimDuration must be finite and non-negative, got {minutes}"
        );
        SimDuration(minutes)
    }

    /// Returns the span in minutes.
    #[must_use]
    pub fn as_minutes(self) -> f64 {
        self.0
    }

    /// `true` when the span has zero length.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }
}

impl Eq for SimTime {}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> Ordering {
        // Finiteness is a constructor invariant, so partial_cmp cannot fail.
        self.0.partial_cmp(&other.0).expect("SimTime is never NaN")
    }
}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Eq for SimDuration {}

impl Ord for SimDuration {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("SimDuration is never NaN")
    }
}

impl PartialOrd for SimDuration {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime::new(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration::new(self.0 + rhs.0)
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration((self.0 - rhs.0).max(0.0))
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::new(self.0 * rhs)
    }
}

impl Div<f64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: f64) -> SimDuration {
        SimDuration::new(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}min", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}min", self.0)
    }
}

impl Default for SimTime {
    fn default() -> Self {
        SimTime::ZERO
    }
}

impl Default for SimDuration {
    fn default() -> Self {
        SimDuration::ZERO
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_ordering_is_total() {
        let a = SimTime::new(1.0);
        let b = SimTime::new(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn duration_since_saturates() {
        let a = SimTime::new(1.0);
        let b = SimTime::new(2.0);
        assert_eq!(a.duration_since(b), SimDuration::ZERO);
        assert_eq!(b.duration_since(a), SimDuration::new(1.0));
    }

    #[test]
    fn add_assign_advances() {
        let mut t = SimTime::ZERO;
        t += SimDuration::new(2.5);
        assert_eq!(t.as_minutes(), 2.5);
    }

    #[test]
    fn duration_arithmetic() {
        let d = SimDuration::new(4.0);
        assert_eq!((d / 2.0).as_minutes(), 2.0);
        assert_eq!((d * 0.5).as_minutes(), 2.0);
        assert_eq!((d - SimDuration::new(5.0)), SimDuration::ZERO);
        assert!(!d.is_zero());
        assert!(SimDuration::ZERO.is_zero());
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_time_rejected() {
        let _ = SimTime::new(-1.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn nan_duration_rejected() {
        let _ = SimDuration::new(f64::NAN);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimTime::new(1.5)), "t=1.500000min");
        assert_eq!(format!("{}", SimDuration::new(0.25)), "0.250000min");
    }
}
