//! # oaq-sim — deterministic discrete-event simulation kernel
//!
//! A minimal, allocation-light discrete-event simulation (DES) kernel used by
//! every stochastic component of the OAQ reproduction: the stochastic activity
//! network solvers in `oaq-san`, the crosslink network in `oaq-net`, and the
//! full protocol simulator in `oaq-core`.
//!
//! The kernel is deliberately *deterministic*: given the same model and the
//! same seed, a run replays event-for-event. Determinism is what makes the
//! cross-validation experiments of this repository (analytic model vs.
//! protocol simulation) debuggable.
//!
//! ## Architecture
//!
//! * [`SimTime`] / [`SimDuration`] — total-ordered virtual time (minutes by
//!   convention throughout the workspace; the kernel itself is unit-agnostic).
//! * [`Model`] — user models implement one `handle` method over their own
//!   event enum.
//! * [`Simulation`] — owns the model, the event queue and the clock; drives
//!   the run to a horizon or event budget.
//! * [`Context`] — handed to the model inside `handle`; allows scheduling,
//!   cancellation and random sampling.
//! * [`rng::SimRng`] — seeded random streams with the distributions used in
//!   the paper (exponential, uniform, deterministic), plus counter-based
//!   substream derivation for parallel replication.
//! * [`stats`] — counters, tallies, time-weighted averages, histograms and
//!   batch-means confidence intervals; every collector merges, so partial
//!   results from parallel workers reduce deterministically.
//! * [`par`] — the deterministic parallel Monte Carlo replication engine
//!   ([`par::Replicator`]): substream-seeded replications fanned across a
//!   scoped worker pool, bit-identical for any worker count.
//!
//! ## Example
//!
//! A one-server queue sketch:
//!
//! ```
//! use oaq_sim::{Model, Simulation, Context, SimTime, SimDuration};
//!
//! #[derive(Debug)]
//! enum Ev { Arrival, Departure }
//!
//! #[derive(Default)]
//! struct Queue { in_system: u32, served: u32 }
//!
//! impl Model for Queue {
//!     type Event = Ev;
//!     fn handle(&mut self, ev: Ev, ctx: &mut Context<Ev>) {
//!         match ev {
//!             Ev::Arrival => {
//!                 self.in_system += 1;
//!                 let dt = ctx.rng().exp(0.5);
//!                 ctx.schedule_in(SimDuration::new(dt), Ev::Arrival);
//!                 if self.in_system == 1 {
//!                     let s = ctx.rng().exp(1.0);
//!                     ctx.schedule_in(SimDuration::new(s), Ev::Departure);
//!                 }
//!             }
//!             Ev::Departure => {
//!                 self.in_system -= 1;
//!                 self.served += 1;
//!                 if self.in_system > 0 {
//!                     let s = ctx.rng().exp(1.0);
//!                     ctx.schedule_in(SimDuration::new(s), Ev::Departure);
//!                 }
//!             }
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::new(Queue::default(), 42);
//! sim.schedule_at(SimTime::ZERO, Ev::Arrival);
//! sim.run_until(SimTime::new(1000.0));
//! assert!(sim.model().served > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod engine;
pub mod par;
mod queue;
pub mod rng;
pub mod stats;

pub use clock::{SimDuration, SimTime};
pub use engine::{Context, EventRecord, Model, RunOutcome, Simulation};
pub use par::{Merge, Replicator};
pub use queue::{EventHandle, EventQueue};
pub use rng::SimRng;
