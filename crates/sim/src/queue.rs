//! The pending-event set.
//!
//! A binary heap keyed by `(time, sequence)` so that simultaneous events fire
//! in scheduling order (FIFO tie-break), which is what makes runs replayable.
//! Cancellation is supported by lazy deletion: a cancelled entry stays in the
//! heap but is skipped when popped.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::clock::SimTime;

/// Opaque handle identifying a scheduled event, usable to cancel it later.
///
/// Handles are unique for the lifetime of one [`EventQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventHandle(u64);

struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A future-event list ordered by time with FIFO tie-breaking.
///
/// # Examples
///
/// ```
/// use oaq_sim::{EventQueue, SimTime};
/// let mut q = EventQueue::new();
/// q.push(SimTime::new(2.0), "late");
/// q.push(SimTime::new(1.0), "early");
/// let (t, ev) = q.pop().unwrap();
/// assert_eq!((t, ev), (SimTime::new(1.0), "early"));
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    /// Sequence numbers of cancelled-but-not-yet-skipped entries, sorted.
    /// Every pop and peek consults this set, so it is a sorted vector — the
    /// membership probe is a binary search over a handful of entries (free
    /// when empty, the overwhelmingly common case) instead of a hash.
    cancelled: Vec<u64>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            cancelled: Vec::new(),
            next_seq: 0,
        }
    }

    /// Empties the queue and invalidates all outstanding handles, keeping
    /// the allocated capacity — a recycled queue behaves exactly like
    /// [`EventQueue::new`] without touching the allocator.
    pub fn reset(&mut self) {
        self.heap.clear();
        self.cancelled.clear();
        self.next_seq = 0;
    }

    /// Schedules `payload` at `time`, returning a cancellation handle.
    pub fn push(&mut self, time: SimTime, payload: E) -> EventHandle {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, payload });
        EventHandle(seq)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event was still pending. Cancelling an already
    /// fired or already cancelled event returns `false` and is harmless.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        if handle.0 >= self.next_seq {
            return false;
        }
        match self.cancelled.binary_search(&handle.0) {
            Ok(_) => false,
            Err(i) => {
                self.cancelled.insert(i, handle.0);
                true
            }
        }
    }

    /// Removes and returns the earliest pending event, skipping cancelled
    /// entries. Returns `None` when the queue is exhausted.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if let Ok(i) = self.cancelled.binary_search(&entry.seq) {
                self.cancelled.remove(i);
                continue;
            }
            return Some((entry.time, entry.payload));
        }
        None
    }

    /// Time of the next live event without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        loop {
            let seq = self.heap.peek()?.seq;
            if let Ok(i) = self.cancelled.binary_search(&seq) {
                self.cancelled.remove(i);
                self.heap.pop();
                continue;
            }
            return self.heap.peek().map(|e| e.time);
        }
    }

    /// Number of entries in the heap, including not-yet-skipped cancelled
    /// ones (an upper bound on live events).
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// `true` when no live events remain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("live_events", &self.len())
            .field("next_seq", &self.next_seq)
            .finish()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::new(3.0), 3);
        q.push(SimTime::new(1.0), 1);
        q.push(SimTime::new(2.0), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_tie_break_for_simultaneous_events() {
        let mut q = EventQueue::new();
        q.push(SimTime::new(1.0), "a");
        q.push(SimTime::new(1.0), "b");
        q.push(SimTime::new(1.0), "c");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn cancellation_skips_event() {
        let mut q = EventQueue::new();
        let h = q.push(SimTime::new(1.0), "dead");
        q.push(SimTime::new(2.0), "alive");
        assert!(q.cancel(h));
        assert!(!q.cancel(h), "double-cancel reports false");
        assert_eq!(q.pop().map(|(_, e)| e), Some("alive"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_unknown_handle_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventHandle(99)));
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let h = q.push(SimTime::new(1.0), 1);
        q.push(SimTime::new(5.0), 2);
        q.cancel(h);
        assert_eq!(q.peek_time(), Some(SimTime::new(5.0)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn len_accounts_for_cancellations() {
        let mut q = EventQueue::new();
        let h = q.push(SimTime::new(1.0), 1);
        q.push(SimTime::new(2.0), 2);
        assert_eq!(q.len(), 2);
        q.cancel(h);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
