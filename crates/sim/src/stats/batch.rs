//! Steady-state output analysis by the method of batch means.

use super::Tally;

/// Groups a stream of correlated observations into fixed-size batches and
/// estimates a confidence interval from the (approximately independent)
/// batch means.
///
/// Used by the SAN steady-state simulator to report P(k) with error bounds.
///
/// # Examples
///
/// ```
/// use oaq_sim::stats::BatchMeans;
/// let mut bm = BatchMeans::new(100);
/// for i in 0..1000 {
///     bm.record((i % 7) as f64);
/// }
/// assert_eq!(bm.completed_batches(), 10);
/// assert!(bm.grand_mean() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct BatchMeans {
    batch_size: u64,
    current_sum: f64,
    current_n: u64,
    batch_means: Tally,
}

impl BatchMeans {
    /// Creates an accumulator with the given observations-per-batch.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    #[must_use]
    pub fn new(batch_size: u64) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        BatchMeans {
            batch_size,
            current_sum: 0.0,
            current_n: 0,
            batch_means: Tally::new(),
        }
    }

    /// Records one observation; closes a batch when it fills.
    pub fn record(&mut self, x: f64) {
        self.current_sum += x;
        self.current_n += 1;
        if self.current_n == self.batch_size {
            self.batch_means
                .record(self.current_sum / self.batch_size as f64);
            self.current_sum = 0.0;
            self.current_n = 0;
        }
    }

    /// The configured observations-per-batch.
    #[must_use]
    pub fn batch_size(&self) -> u64 {
        self.batch_size
    }

    /// Observations sitting in the (open) partial batch.
    #[must_use]
    pub fn partial_count(&self) -> u64 {
        self.current_n
    }

    /// Merges another accumulator into this one (parallel reduction).
    ///
    /// Completed batches pool directly. The two partial batches are
    /// concatenated; when together they fill a batch, the straddling batch
    /// closes with the *pooled mean* of both partials — exact whenever the
    /// merge boundary lands on a batch boundary (in particular whenever
    /// `self` has no partial batch, the replication engine's common case),
    /// mean-preserving otherwise. Deterministic and order-stable either
    /// way.
    ///
    /// # Panics
    ///
    /// Panics unless both accumulators share the same batch size.
    pub fn merge(&mut self, other: &BatchMeans) {
        assert_eq!(
            self.batch_size, other.batch_size,
            "batch sizes must match to merge"
        );
        self.batch_means.merge(&other.batch_means);
        if other.current_n == 0 {
            return;
        }
        if self.current_n == 0 {
            self.current_sum = other.current_sum;
            self.current_n = other.current_n;
            return;
        }
        let n = self.current_n + other.current_n;
        if n < self.batch_size {
            self.current_sum += other.current_sum;
            self.current_n = n;
        } else {
            // Both partials are < batch_size, so exactly one batch closes.
            let mean = (self.current_sum + other.current_sum) / n as f64;
            self.batch_means.record(mean);
            self.current_n = n - self.batch_size;
            self.current_sum = mean * self.current_n as f64;
        }
    }

    /// Number of completed batches.
    #[must_use]
    pub fn completed_batches(&self) -> u64 {
        self.batch_means.count()
    }

    /// Mean of completed batch means (ignores the partial batch).
    #[must_use]
    pub fn grand_mean(&self) -> f64 {
        self.batch_means.mean()
    }

    /// ~95% half-width across batch means; zero with fewer than two batches.
    #[must_use]
    pub fn ci95_half_width(&self) -> f64 {
        self.batch_means.ci95_half_width()
    }

    /// `true` once the relative half-width drops below `rel` (and at least
    /// `min_batches` batches completed) — a simple stopping rule.
    #[must_use]
    pub fn converged(&self, rel: f64, min_batches: u64) -> bool {
        if self.completed_batches() < min_batches.max(2) {
            return false;
        }
        let m = self.grand_mean().abs();
        if m == 0.0 {
            return self.ci95_half_width() < rel;
        }
        self.ci95_half_width() / m < rel
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partial_batch_is_excluded() {
        let mut bm = BatchMeans::new(10);
        for _ in 0..25 {
            bm.record(1.0);
        }
        assert_eq!(bm.completed_batches(), 2);
        assert_eq!(bm.grand_mean(), 1.0);
    }

    #[test]
    fn iid_stream_converges() {
        let mut bm = BatchMeans::new(50);
        let mut x = 0.5;
        for i in 0..10_000 {
            // A deterministic low-discrepancy-ish stream in [0,1).
            x = (x + 0.618_033_988_749_895 + (i as f64 * 1e-9)) % 1.0;
            bm.record(x);
        }
        assert!((bm.grand_mean() - 0.5).abs() < 0.02);
        assert!(bm.converged(0.1, 10));
    }

    #[test]
    fn not_converged_with_one_batch() {
        let mut bm = BatchMeans::new(5);
        for _ in 0..5 {
            bm.record(3.0);
        }
        assert!(!bm.converged(0.5, 1));
    }

    #[test]
    fn zero_mean_uses_absolute_width() {
        let mut bm = BatchMeans::new(2);
        for _ in 0..10 {
            bm.record(0.0);
        }
        assert!(bm.converged(0.01, 2));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_batch_size_rejected() {
        let _ = BatchMeans::new(0);
    }

    #[test]
    fn merge_equals_sequential_on_batch_boundary() {
        let xs: Vec<f64> = (0..90).map(|i| (i as f64).cos() * 3.0).collect();
        let mut whole = BatchMeans::new(10);
        let mut a = BatchMeans::new(10);
        let mut b = BatchMeans::new(10);
        for (i, &x) in xs.iter().enumerate() {
            whole.record(x);
            if i < 40 {
                a.record(x);
            } else {
                b.record(x);
            }
        }
        a.merge(&b);
        assert_eq!(a.completed_batches(), whole.completed_batches());
        assert!((a.grand_mean() - whole.grand_mean()).abs() < 1e-12);
        assert!((a.ci95_half_width() - whole.ci95_half_width()).abs() < 1e-12);
        assert_eq!(a.partial_count(), whole.partial_count());
    }

    #[test]
    fn straddling_merge_preserves_counts_and_mass() {
        let mut a = BatchMeans::new(10);
        let mut b = BatchMeans::new(10);
        for i in 0..7 {
            a.record(i as f64);
        }
        for i in 0..8 {
            b.record(10.0 + i as f64);
        }
        let total: f64 =
            (0..7).map(|i| i as f64).sum::<f64>() + (0..8).map(|i| 10.0 + i as f64).sum::<f64>();
        a.merge(&b);
        assert_eq!(a.completed_batches(), 1);
        assert_eq!(a.partial_count(), 5);
        // Total mass (closed batch + leftover partial) is preserved.
        let recovered = a.grand_mean() * 10.0 + a.current_sum;
        assert!((recovered - total).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "batch sizes must match")]
    fn merge_rejects_mismatched_batch_size() {
        let mut a = BatchMeans::new(2);
        a.merge(&BatchMeans::new(3));
    }
}
