//! Monotone event counter.

use crate::clock::SimTime;

/// Counts occurrences and converts them to rates over elapsed virtual time.
///
/// # Examples
///
/// ```
/// use oaq_sim::stats::Counter;
/// use oaq_sim::SimTime;
/// let mut c = Counter::new();
/// c.add(3);
/// c.increment();
/// assert_eq!(c.count(), 4);
/// assert_eq!(c.rate(SimTime::new(2.0)), 2.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counter {
    count: u64,
}

impl Counter {
    /// Creates a zeroed counter.
    #[must_use]
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one occurrence.
    pub fn increment(&mut self) {
        self.count += 1;
    }

    /// Adds `n` occurrences.
    pub fn add(&mut self, n: u64) {
        self.count += n;
    }

    /// Total occurrences so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Occurrences per unit time up to `now`; zero if no time has elapsed.
    #[must_use]
    pub fn rate(&self, now: SimTime) -> f64 {
        let t = now.as_minutes();
        if t <= 0.0 {
            0.0
        } else {
            self.count as f64 / t
        }
    }

    /// Resets to zero (e.g. at the end of a warm-up period).
    pub fn reset(&mut self) {
        self.count = 0;
    }

    /// Merges another counter into this one (parallel reduction; exact).
    pub fn merge(&mut self, other: &Counter) {
        self.count += other.count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_rates() {
        let mut c = Counter::new();
        for _ in 0..10 {
            c.increment();
        }
        assert_eq!(c.count(), 10);
        assert_eq!(c.rate(SimTime::new(5.0)), 2.0);
    }

    #[test]
    fn rate_at_time_zero_is_zero() {
        let mut c = Counter::new();
        c.increment();
        assert_eq!(c.rate(SimTime::ZERO), 0.0);
    }

    #[test]
    fn reset_clears() {
        let mut c = Counter::new();
        c.add(7);
        c.reset();
        assert_eq!(c.count(), 0);
    }
}
