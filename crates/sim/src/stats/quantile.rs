//! Streaming quantile estimation (the P² algorithm).
//!
//! Jain & Chlamtac's P² algorithm estimates a single quantile of a stream
//! in O(1) space by maintaining five markers whose positions are adjusted
//! with piecewise-parabolic interpolation. Used for alert-latency
//! percentiles in the protocol experiments, where storing every episode's
//! latency would dominate memory.

/// A streaming estimator of one quantile.
///
/// # Examples
///
/// ```
/// use oaq_sim::stats::P2Quantile;
/// let mut q = P2Quantile::new(0.5);
/// // A scrambled permutation of 0..=1000 (P², like any fixed-size sketch,
/// // is least accurate on fully sorted input).
/// for i in 0..=1000u32 {
///     q.record(f64::from((i * 7919) % 1001));
/// }
/// let med = q.estimate().unwrap();
/// assert!((med - 500.0).abs() < 20.0);
/// ```
#[derive(Debug, Clone)]
pub struct P2Quantile {
    p: f64,
    /// Marker heights (estimates of the quantile positions).
    heights: [f64; 5],
    /// Actual marker positions (1-based observation counts).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired position increments per observation.
    increments: [f64; 5],
    count: usize,
    /// First five observations, used for initialization.
    initial: Vec<f64>,
}

impl P2Quantile {
    /// Creates an estimator for the `p`-quantile.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < p < 1`.
    #[must_use]
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p < 1.0, "quantile must be in (0, 1)");
        P2Quantile {
            p,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
            increments: [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
            count: 0,
            initial: Vec::with_capacity(5),
        }
    }

    /// The target quantile.
    #[must_use]
    pub fn quantile(&self) -> f64 {
        self.p
    }

    /// Number of observations so far.
    #[must_use]
    pub fn count(&self) -> usize {
        self.count
    }

    /// Records one observation.
    ///
    /// # Panics
    ///
    /// Panics on NaN.
    pub fn record(&mut self, x: f64) {
        assert!(!x.is_nan(), "cannot record NaN");
        self.count += 1;
        if self.initial.len() < 5 {
            self.initial.push(x);
            if self.initial.len() == 5 {
                self.initial
                    .sort_by(|a, b| a.partial_cmp(b).expect("no NaN recorded"));
                self.heights.copy_from_slice(&self.initial);
            }
            return;
        }
        // Find the cell containing x and update extreme markers.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            2
        } else {
            let mut cell = 0;
            for i in 0..4 {
                if x >= self.heights[i] && x < self.heights[i + 1] {
                    cell = i;
                    break;
                }
            }
            cell
        };
        for i in (k + 1)..5 {
            self.positions[i] += 1.0;
        }
        for i in 0..5 {
            self.desired[i] += self.increments[i];
        }
        // Adjust the three interior markers.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let step_up = self.positions[i + 1] - self.positions[i] > 1.0;
            let step_down = self.positions[i - 1] - self.positions[i] < -1.0;
            if (d >= 1.0 && step_up) || (d <= -1.0 && step_down) {
                let s = d.signum();
                let parabolic = self.parabolic(i, s);
                if self.heights[i - 1] < parabolic && parabolic < self.heights[i + 1] {
                    self.heights[i] = parabolic;
                } else {
                    self.heights[i] = self.linear(i, s);
                }
                self.positions[i] += s;
            }
        }
    }

    fn parabolic(&self, i: usize, s: f64) -> f64 {
        let q = &self.heights;
        let n = &self.positions;
        q[i] + s / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + s) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - s) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
    }

    fn linear(&self, i: usize, s: f64) -> f64 {
        let j = if s > 0.0 { i + 1 } else { i - 1 };
        self.heights[i]
            + s * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// Merges another estimator for the *same* quantile into this one
    /// (parallel reduction).
    ///
    /// P², like any constant-space sketch, cannot merge exactly; this uses
    /// the standard marker-pooling heuristic. When either side is still in
    /// its initialization phase (< 5 observations) its raw observations are
    /// simply replayed — exact. Otherwise the extreme markers take the
    /// min/max, the interior marker heights combine as count-weighted
    /// averages, and positions/desired positions add — deterministic and
    /// order-stable, with accuracy comparable to a single estimator fed
    /// both streams. Replication studies that need an *exact* mergeable
    /// distribution sketch should use [`super::Histogram`] instead.
    ///
    /// # Panics
    ///
    /// Panics if the two estimators target different quantiles.
    pub fn merge(&mut self, other: &P2Quantile) {
        assert!(
            (self.p - other.p).abs() < 1e-12,
            "quantile targets must match to merge"
        );
        if other.count == 0 {
            return;
        }
        if other.initial.len() < 5 {
            for &x in &other.initial {
                self.record(x);
            }
            return;
        }
        if self.initial.len() < 5 {
            let mut merged = other.clone();
            for &x in &self.initial {
                merged.record(x);
            }
            *self = merged;
            return;
        }
        let (c1, c2) = (self.count as f64, other.count as f64);
        let total = c1 + c2;
        self.heights[0] = self.heights[0].min(other.heights[0]);
        self.heights[4] = self.heights[4].max(other.heights[4]);
        for i in 1..4 {
            self.heights[i] = (self.heights[i] * c1 + other.heights[i] * c2) / total;
        }
        // Positions and desired positions both start from the same
        // 5-observation base, counted once after pooling.
        let base_pos = [1.0, 2.0, 3.0, 4.0, 5.0];
        let base_desired = [
            1.0,
            1.0 + 2.0 * self.p,
            1.0 + 4.0 * self.p,
            3.0 + 2.0 * self.p,
            5.0,
        ];
        for i in 0..5 {
            self.positions[i] += other.positions[i] - base_pos[i];
            self.desired[i] += other.desired[i] - base_desired[i];
        }
        self.count += other.count;
    }

    /// The current quantile estimate; `None` before five observations.
    #[must_use]
    pub fn estimate(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if self.initial.len() < 5 {
            // Exact small-sample quantile.
            let mut v = self.initial.clone();
            v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN recorded"));
            let idx = ((v.len() as f64 - 1.0) * self.p).round() as usize;
            return Some(v[idx]);
        }
        Some(self.heights[2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    #[test]
    fn median_of_uniform_stream() {
        let mut q = P2Quantile::new(0.5);
        let mut rng = SimRng::seed_from(1);
        for _ in 0..100_000 {
            q.record(rng.uniform(0.0, 10.0));
        }
        let m = q.estimate().unwrap();
        assert!((m - 5.0).abs() < 0.1, "median {m}");
    }

    #[test]
    fn p95_of_exponential_stream() {
        let mut q = P2Quantile::new(0.95);
        let mut rng = SimRng::seed_from(2);
        for _ in 0..200_000 {
            q.record(rng.exp(1.0));
        }
        // True p95 = ln(20) ≈ 2.996.
        let e = q.estimate().unwrap();
        assert!((e - 2.996).abs() < 0.1, "p95 {e}");
    }

    #[test]
    fn small_samples_are_exact_order_statistics() {
        let mut q = P2Quantile::new(0.5);
        assert_eq!(q.estimate(), None);
        for x in [5.0, 1.0, 3.0] {
            q.record(x);
        }
        assert_eq!(q.estimate(), Some(3.0));
        assert_eq!(q.count(), 3);
    }

    #[test]
    fn monotone_under_shifted_streams() {
        let run = |shift: f64| {
            let mut q = P2Quantile::new(0.9);
            let mut rng = SimRng::seed_from(3);
            for _ in 0..50_000 {
                q.record(rng.uniform(0.0, 1.0) + shift);
            }
            q.estimate().unwrap()
        };
        assert!(run(10.0) > run(0.0) + 9.5);
    }

    #[test]
    fn extremes_track_min_max_cells() {
        let mut q = P2Quantile::new(0.5);
        for x in [1.0, 2.0, 3.0, 4.0, 5.0, -10.0, 100.0] {
            q.record(x);
        }
        let m = q.estimate().unwrap();
        assert!(
            (1.0..=5.0).contains(&m),
            "median {m} unaffected by outliers"
        );
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn degenerate_quantile_rejected() {
        let _ = P2Quantile::new(1.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        P2Quantile::new(0.5).record(f64::NAN);
    }

    #[test]
    fn merged_sketches_track_the_pooled_quantile() {
        let mut a = P2Quantile::new(0.5);
        let mut b = P2Quantile::new(0.5);
        let mut whole = P2Quantile::new(0.5);
        let mut rng = SimRng::seed_from(11);
        for i in 0..100_000 {
            let x = rng.uniform(0.0, 10.0);
            whole.record(x);
            if i % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        let merged = a.estimate().unwrap();
        assert!((merged - 5.0).abs() < 0.2, "merged median {merged}");
    }

    #[test]
    fn merging_small_sides_replays_exactly() {
        let mut a = P2Quantile::new(0.5);
        let mut b = P2Quantile::new(0.5);
        for x in [1.0, 2.0] {
            a.record(x);
        }
        for x in [3.0, 4.0] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.estimate(), Some(3.0), "exact small-sample order stat");
        // Small-into-large is also well-defined.
        let mut big = P2Quantile::new(0.5);
        let mut rng = SimRng::seed_from(5);
        for _ in 0..1000 {
            big.record(rng.uniform(0.0, 1.0));
        }
        let mut small = P2Quantile::new(0.5);
        small.record(0.5);
        small.merge(&big);
        assert_eq!(small.count(), 1001);
    }

    #[test]
    #[should_panic(expected = "quantile targets must match")]
    fn merge_rejects_mismatched_targets() {
        let mut a = P2Quantile::new(0.5);
        a.merge(&P2Quantile::new(0.9));
    }
}
