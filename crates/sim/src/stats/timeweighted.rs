//! Time-weighted level statistics.

use crate::clock::SimTime;

/// Time-average of a piecewise-constant signal (queue length, plane capacity…).
///
/// This is the estimator behind every steady-state probability reported by
/// the SAN simulator in `oaq-san`: P(K = k) is the time-weighted average of
/// the indicator "capacity equals k".
///
/// # Examples
///
/// ```
/// use oaq_sim::stats::TimeWeighted;
/// use oaq_sim::SimTime;
/// let mut w = TimeWeighted::new(0.0, SimTime::ZERO);
/// w.update(2.0, SimTime::new(1.0)); // level 0 for [0,1)
/// w.update(0.0, SimTime::new(3.0)); // level 2 for [1,3)
/// assert_eq!(w.time_average(SimTime::new(4.0)), 1.0); // (0*1 + 2*2 + 0*1)/4
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TimeWeighted {
    level: f64,
    last_change: SimTime,
    weighted_sum: f64,
    origin: SimTime,
    max_level: f64,
    min_level: f64,
}

impl TimeWeighted {
    /// Starts tracking with an initial `level` at time `start`.
    #[must_use]
    pub fn new(level: f64, start: SimTime) -> Self {
        TimeWeighted {
            level,
            last_change: start,
            weighted_sum: 0.0,
            origin: start,
            max_level: level,
            min_level: level,
        }
    }

    /// Sets a new level at time `now`, accumulating the previous level over
    /// the elapsed interval.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the previous update.
    pub fn update(&mut self, level: f64, now: SimTime) {
        assert!(now >= self.last_change, "updates must be in time order");
        self.weighted_sum += self.level * now.duration_since(self.last_change).as_minutes();
        self.level = level;
        self.last_change = now;
        self.max_level = self.max_level.max(level);
        self.min_level = self.min_level.min(level);
    }

    /// Current level.
    #[must_use]
    pub fn level(&self) -> f64 {
        self.level
    }

    /// Time-average level over `[start, now]`.
    ///
    /// Returns the current level if no time has elapsed.
    #[must_use]
    pub fn time_average(&self, now: SimTime) -> f64 {
        let total = now.duration_since(self.origin).as_minutes();
        if total <= 0.0 {
            return self.level;
        }
        let tail = self.level * now.duration_since(self.last_change).as_minutes();
        (self.weighted_sum + tail) / total
    }

    /// Highest level seen.
    #[must_use]
    pub fn max_level(&self) -> f64 {
        self.max_level
    }

    /// Lowest level seen.
    #[must_use]
    pub fn min_level(&self) -> f64 {
        self.min_level
    }

    /// Merges a tracker covering a *later* time segment into this one
    /// (parallel reduction over a partitioned time axis).
    ///
    /// `other` must begin no earlier than this tracker's last update; the
    /// gap `[self.last_change, other.origin)`, if any, is attributed to
    /// this tracker's current level (i.e. the level is assumed to persist
    /// until the next segment takes over — exactly what `update` would have
    /// done). After the merge, this tracker reports over the union of both
    /// segments, and `time_average` agrees with a single tracker fed the
    /// concatenated update stream (up to float re-association).
    ///
    /// # Panics
    ///
    /// Panics if `other` starts before this tracker's last update.
    pub fn merge(&mut self, other: &TimeWeighted) {
        assert!(
            other.origin >= self.last_change,
            "merged segments must be in time order"
        );
        self.weighted_sum += self.level
            * other.origin.duration_since(self.last_change).as_minutes()
            + other.weighted_sum;
        self.level = other.level;
        self.last_change = other.last_change;
        self.max_level = self.max_level.max(other.max_level);
        self.min_level = self.min_level.min(other.min_level);
    }

    /// Restarts accumulation at `now`, keeping the current level
    /// (end-of-warm-up reset).
    pub fn reset(&mut self, now: SimTime) {
        self.weighted_sum = 0.0;
        self.last_change = now;
        self.origin = now;
        self.max_level = self.level;
        self.min_level = self.level;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_level_averages_to_itself() {
        let w = TimeWeighted::new(3.0, SimTime::ZERO);
        assert_eq!(w.time_average(SimTime::new(10.0)), 3.0);
    }

    #[test]
    fn step_function_average() {
        let mut w = TimeWeighted::new(1.0, SimTime::ZERO);
        w.update(5.0, SimTime::new(2.0));
        // [0,2): 1, [2,4): 5 -> (2 + 10) / 4 = 3
        assert_eq!(w.time_average(SimTime::new(4.0)), 3.0);
    }

    #[test]
    fn zero_elapsed_returns_current_level() {
        let w = TimeWeighted::new(7.0, SimTime::new(5.0));
        assert_eq!(w.time_average(SimTime::new(5.0)), 7.0);
    }

    #[test]
    fn extrema_track_updates() {
        let mut w = TimeWeighted::new(2.0, SimTime::ZERO);
        w.update(9.0, SimTime::new(1.0));
        w.update(-1.0, SimTime::new(2.0));
        assert_eq!(w.max_level(), 9.0);
        assert_eq!(w.min_level(), -1.0);
    }

    #[test]
    fn reset_discards_history() {
        let mut w = TimeWeighted::new(10.0, SimTime::ZERO);
        w.update(0.0, SimTime::new(100.0));
        w.reset(SimTime::new(100.0));
        assert_eq!(w.time_average(SimTime::new(200.0)), 0.0);
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn out_of_order_update_panics() {
        let mut w = TimeWeighted::new(0.0, SimTime::new(5.0));
        w.update(1.0, SimTime::new(4.0));
    }

    #[test]
    fn merge_equals_sequential() {
        let levels = [1.0, 5.0, 2.0, 8.0, 3.0, 0.5];
        let mut whole = TimeWeighted::new(levels[0], SimTime::ZERO);
        for (i, &l) in levels.iter().enumerate().skip(1) {
            whole.update(l, SimTime::new(i as f64));
        }
        // Split at t = 3: the right tracker starts at the left's level then.
        let mut left = TimeWeighted::new(levels[0], SimTime::ZERO);
        for (i, &l) in levels.iter().enumerate().take(3).skip(1) {
            left.update(l, SimTime::new(i as f64));
        }
        let mut right = TimeWeighted::new(levels[2], SimTime::new(3.0));
        for (i, &l) in levels.iter().enumerate().skip(3) {
            right.update(l, SimTime::new(i as f64));
        }
        left.merge(&right);
        let end = SimTime::new(10.0);
        assert!((left.time_average(end) - whole.time_average(end)).abs() < 1e-12);
        assert_eq!(left.max_level(), whole.max_level());
        assert_eq!(left.min_level(), whole.min_level());
        assert_eq!(left.level(), whole.level());
    }

    #[test]
    fn merge_fills_gaps_with_the_standing_level() {
        let mut a = TimeWeighted::new(4.0, SimTime::ZERO);
        a.update(2.0, SimTime::new(1.0)); // level 2 from t=1
        let b = TimeWeighted::new(6.0, SimTime::new(3.0)); // starts at t=3
        a.merge(&b);
        // [0,1): 4, [1,3): 2 (gap filled), [3,5): 6 -> (4 + 4 + 12)/5 = 4
        assert_eq!(a.time_average(SimTime::new(5.0)), 4.0);
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn merge_rejects_overlapping_segments() {
        let mut a = TimeWeighted::new(0.0, SimTime::ZERO);
        a.update(1.0, SimTime::new(5.0));
        a.merge(&TimeWeighted::new(0.0, SimTime::new(4.0)));
    }
}
