//! Fixed-width binned distributions.

/// A histogram with uniform bins over `[lo, hi)` plus under/overflow bins.
///
/// # Examples
///
/// ```
/// use oaq_sim::stats::Histogram;
/// let mut h = Histogram::new(0.0, 10.0, 5);
/// h.record(1.0);
/// h.record(9.5);
/// h.record(42.0); // overflow
/// assert_eq!(h.bin_count(0), 1);
/// assert_eq!(h.overflow(), 1);
/// assert_eq!(h.total(), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` uniform bins spanning `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`, either bound is non-finite, or `bins == 0`.
    #[must_use]
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "bad range");
        assert!(bins > 0, "need at least one bin");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        if x.is_nan() || x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = (((x - self.lo) / width) as usize).min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Count in bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn bin_count(&self, i: usize) -> u64 {
        self.bins[i]
    }

    /// Inclusive-lower / exclusive-upper edges of bin `i`.
    #[must_use]
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        (self.lo + width * i as f64, self.lo + width * (i + 1) as f64)
    }

    /// Observations below `lo` (NaN counts here too).
    #[must_use]
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above `hi`.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations recorded, including under/overflow.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Number of in-range bins.
    #[must_use]
    pub fn num_bins(&self) -> usize {
        self.bins.len()
    }

    /// Merges another histogram into this one (parallel reduction).
    ///
    /// Bin counts are integers, so the merged histogram is *exactly* the
    /// histogram of the concatenated streams — merge order never matters.
    ///
    /// # Panics
    ///
    /// Panics unless both histograms share the same range and bin count.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            self.lo == other.lo && self.hi == other.hi && self.bins.len() == other.bins.len(),
            "histogram layouts must match to merge"
        );
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
    }

    /// Fraction of in-range mass at or below the upper edge of bin `i`
    /// (empirical CDF on the binned support).
    #[must_use]
    pub fn cdf_at_bin(&self, i: usize) -> f64 {
        let in_range: u64 = self.bins.iter().sum();
        if in_range == 0 {
            return 0.0;
        }
        let cum: u64 = self.bins[..=i].iter().sum();
        cum as f64 / in_range as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_partition_range() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.record(i as f64 + 0.5);
        }
        for i in 0..10 {
            assert_eq!(h.bin_count(i), 1);
        }
        assert_eq!(h.total(), 10);
    }

    #[test]
    fn boundary_values_bin_correctly() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.record(0.0); // first bin
        h.record(0.5); // second bin
        h.record(1.0); // overflow (hi is exclusive)
        assert_eq!(h.bin_count(0), 1);
        assert_eq!(h.bin_count(1), 1);
        assert_eq!(h.overflow(), 1);
    }

    #[test]
    fn nan_counts_as_underflow() {
        let mut h = Histogram::new(0.0, 1.0, 1);
        h.record(f64::NAN);
        assert_eq!(h.underflow(), 1);
    }

    #[test]
    fn edges_are_uniform() {
        let h = Histogram::new(0.0, 10.0, 5);
        assert_eq!(h.bin_edges(0), (0.0, 2.0));
        assert_eq!(h.bin_edges(4), (8.0, 10.0));
    }

    #[test]
    fn cdf_reaches_one() {
        let mut h = Histogram::new(0.0, 4.0, 4);
        for x in [0.5, 1.5, 2.5, 3.5] {
            h.record(x);
        }
        assert_eq!(h.cdf_at_bin(1), 0.5);
        assert_eq!(h.cdf_at_bin(3), 1.0);
    }

    #[test]
    fn empty_cdf_is_zero() {
        let h = Histogram::new(0.0, 1.0, 3);
        assert_eq!(h.cdf_at_bin(2), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..200).map(|i| (i as f64 * 0.37) % 12.0 - 1.0).collect();
        let mut whole = Histogram::new(0.0, 10.0, 7);
        let mut a = Histogram::new(0.0, 10.0, 7);
        let mut b = Histogram::new(0.0, 10.0, 7);
        for (i, &x) in xs.iter().enumerate() {
            whole.record(x);
            if i < 83 {
                a.record(x);
            } else {
                b.record(x);
            }
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    #[should_panic(expected = "layouts must match")]
    fn merge_rejects_mismatched_layout() {
        let mut a = Histogram::new(0.0, 1.0, 2);
        a.merge(&Histogram::new(0.0, 1.0, 3));
    }
}
