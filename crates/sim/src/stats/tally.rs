//! Streaming moment estimation (Welford's algorithm).

/// Accumulates observations and reports mean, variance, extrema.
///
/// Uses Welford's numerically stable online update, so it is safe for long
/// runs with millions of observations.
///
/// # Examples
///
/// ```
/// use oaq_sim::stats::Tally;
/// let mut t = Tally::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     t.record(x);
/// }
/// assert_eq!(t.mean(), 2.5);
/// assert_eq!(t.min(), Some(1.0));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Tally {
    n: u64,
    mean: f64,
    m2: f64,
    min: Option<f64>,
    max: Option<f64>,
}

impl Tally {
    /// Creates an empty tally.
    #[must_use]
    pub fn new() -> Self {
        Tally::default()
    }

    /// Records one observation.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN.
    pub fn record(&mut self, x: f64) {
        assert!(!x.is_nan(), "cannot record NaN");
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = Some(self.min.map_or(x, |m| m.min(x)));
        self.max = Some(self.max.map_or(x, |m| m.max(x)));
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean; zero when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance; zero with fewer than two observations.
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    #[must_use]
    pub fn std_error(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.std_dev() / (self.n as f64).sqrt()
        }
    }

    /// Smallest observation, if any.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        self.min
    }

    /// Largest observation, if any.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        self.max
    }

    /// A symmetric ~95% normal-approximation confidence half-width.
    #[must_use]
    pub fn ci95_half_width(&self) -> f64 {
        1.96 * self.std_error()
    }

    /// Merges another tally into this one (parallel reduction).
    pub fn merge(&mut self, other: &Tally) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moments_match_closed_form() {
        let mut t = Tally::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            t.record(x);
        }
        assert!((t.mean() - 5.0).abs() < 1e-12);
        assert!((t.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(t.min(), Some(2.0));
        assert_eq!(t.max(), Some(9.0));
    }

    #[test]
    fn empty_tally_is_safe() {
        let t = Tally::new();
        assert_eq!(t.mean(), 0.0);
        assert_eq!(t.variance(), 0.0);
        assert_eq!(t.std_error(), 0.0);
        assert_eq!(t.min(), None);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Tally::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut a = Tally::new();
        let mut b = Tally::new();
        for &x in &xs[..37] {
            a.record(x);
        }
        for &x in &xs[37..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-10);
        assert!((a.variance() - whole.variance()).abs() < 1e-10);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Tally::new();
        a.record(1.0);
        let before = a.clone();
        a.merge(&Tally::new());
        assert_eq!(a, before);
        let mut e = Tally::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        Tally::new().record(f64::NAN);
    }
}
