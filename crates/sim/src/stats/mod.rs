//! Output-analysis statistics for simulation runs.
//!
//! * [`Counter`] — monotone event counts and rates.
//! * [`Tally`] — streaming mean/variance/min/max of observations (Welford).
//! * [`TimeWeighted`] — time-averaged level of a piecewise-constant signal,
//!   the estimator behind steady-state probabilities such as the paper's
//!   P(k) (fraction of time an orbital plane holds `k` active satellites).
//! * [`Histogram`] — fixed-width binned distribution.
//! * [`BatchMeans`] — steady-state confidence intervals by the method of
//!   batch means.
//! * [`P2Quantile`] — streaming quantile estimation (P² algorithm), for
//!   latency percentiles.
//!
//! Every collector has an order-stable `merge`, so per-worker partial
//! statistics reduce deterministically under the parallel replication
//! engine ([`crate::par::Replicator`]); all of them also implement the
//! [`crate::par::Merge`] trait.

mod batch;
mod counter;
mod histogram;
mod quantile;
mod tally;
mod timeweighted;

pub use batch::BatchMeans;
pub use counter::Counter;
pub use histogram::Histogram;
pub use quantile::P2Quantile;
pub use tally::Tally;
pub use timeweighted::TimeWeighted;
