//! # oaq-orbit — constellation geometry for the OAQ reference system
//!
//! The paper evaluates OAQ on a JPL reference constellation: 7 orbital
//! planes, 14 active micro-satellites plus 2 in-orbit spares per plane,
//! orbit period θ = 90 min, single-satellite coverage time Tc = 9 min.
//! The authors probed its geometry with the proprietary Satellite Orbit
//! Analysis Program (SOAP); this crate implements the subset of that
//! functionality the evaluation actually uses, from scratch, on a
//! spherical-earth circular-orbit model:
//!
//! * [`orbit::CircularOrbit`] — sub-satellite ground tracks;
//! * [`footprint::Footprint`] — coverage cones, coverage time Tc;
//! * [`plane::OrbitalPlane`] — satellites in a plane, failures, in-orbit
//!   spares, and the paper's *phasing adjustment* (survivors redistribute
//!   evenly, so the revisit time is `Tr[k] ≈ θ/k`);
//! * [`constellation::Constellation`] — the full 7 × (14 + 2) system;
//! * [`coverage::CoverageAnalysis`] — grid sampling of single/overlapped
//!   coverage by latitude, reproducing the qualitative claims of the
//!   paper's Figure 1 discussion;
//! * [`revisit`] — the `Tr[k]/Tc` overlap–underlap classification driving
//!   the QoS spectrum (paper Figures 2 and 5).
//!
//! ## Example
//!
//! ```
//! use oaq_orbit::constellation::Constellation;
//! use oaq_orbit::revisit::{classify, Regime};
//!
//! let c = Constellation::reference();
//! assert_eq!(c.num_planes(), 7);
//! assert_eq!(c.total_active(), 98);
//! // With all 14 satellites active the plane footprints overlap...
//! assert_eq!(classify(c.plane(0).revisit_time(), c.coverage_time()), Regime::Overlapping);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod constellation;
pub mod coverage;
pub mod footprint;
pub mod geo;
pub mod isl;
pub mod orbit;
pub mod plane;
pub mod revisit;
pub mod units;
pub mod visibility;

pub use constellation::{Constellation, ConstellationError, Preset, WalkerConfig, WalkerPattern};
pub use footprint::Footprint;
pub use geo::GroundPoint;
pub use isl::{cross_plane_outages, high_latitude_windows, IslOutage, LatWindow};
pub use orbit::CircularOrbit;
pub use plane::OrbitalPlane;
pub use units::{Degrees, Km, Minutes, Radians};
