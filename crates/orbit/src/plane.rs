//! Orbital planes: active satellites, in-orbit spares, failures and the
//! paper's phasing adjustment.

use crate::geo::GroundPoint;
use crate::orbit::CircularOrbit;
use crate::units::{Minutes, Radians};

/// Identifier of a satellite slot within a plane (stable across rephasing;
/// replaced satellites get fresh ids via a generation counter).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SatelliteId {
    /// Plane index within the constellation.
    pub plane: usize,
    /// Unique (per-plane) satellite number, monotone over replacements.
    pub number: u32,
}

/// What happened when a satellite failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureOutcome {
    /// An in-orbit spare was deployed; active capacity is unchanged.
    SpareDeployed,
    /// Spares were exhausted; capacity dropped and survivors rephased.
    CapacityReduced {
        /// Active satellites remaining after the failure.
        remaining: usize,
    },
    /// The plane had no active satellites to fail.
    PlaneEmpty,
}

/// A ring of satellites sharing one orbit.
///
/// Models exactly the failure semantics of the paper's Section 2: each plane
/// starts with `design_capacity` active satellites and `spares` in-orbit
/// spares; a failure consumes a spare if one remains (capacity unchanged),
/// otherwise the plane undergoes a *phasing adjustment* — the `k` survivors
/// redistribute evenly, so the revisit time becomes `Tr[k] = θ / k`.
///
/// # Examples
///
/// ```
/// use oaq_orbit::plane::OrbitalPlane;
/// use oaq_orbit::orbit::CircularOrbit;
/// use oaq_orbit::units::{Degrees, Minutes, Radians};
///
/// let orbit = CircularOrbit::new(Degrees(85.0).to_radians(), Radians(0.0), Minutes(90.0));
/// let mut plane = OrbitalPlane::new(0, orbit, 14, 2);
/// assert!((plane.revisit_time().value() - 90.0 / 14.0).abs() < 1e-12);
/// for _ in 0..6 {
///     plane.fail_one();
/// }
/// // Two failures absorbed by spares, four reduce capacity: k = 10.
/// assert_eq!(plane.active_count(), 10);
/// assert!((plane.revisit_time().value() - 9.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct OrbitalPlane {
    index: usize,
    orbit: CircularOrbit,
    design_capacity: usize,
    design_spares: usize,
    satellites: Vec<SatelliteId>,
    spares_remaining: usize,
    next_number: u32,
    phase_reference: Radians,
}

impl OrbitalPlane {
    /// Creates a plane at full capacity.
    ///
    /// # Panics
    ///
    /// Panics if `design_capacity == 0`.
    #[must_use]
    pub fn new(index: usize, orbit: CircularOrbit, design_capacity: usize, spares: usize) -> Self {
        assert!(design_capacity > 0, "a plane needs at least one satellite");
        let satellites = (0..design_capacity as u32)
            .map(|number| SatelliteId {
                plane: index,
                number,
            })
            .collect();
        OrbitalPlane {
            index,
            orbit,
            design_capacity,
            design_spares: spares,
            satellites,
            spares_remaining: spares,
            next_number: design_capacity as u32,
            phase_reference: Radians(0.0),
        }
    }

    /// Offsets every satellite's phase (used to stagger planes).
    #[must_use]
    pub fn with_phase_reference(mut self, phase: Radians) -> Self {
        self.phase_reference = phase;
        self
    }

    /// Plane index within the constellation.
    #[must_use]
    pub fn index(&self) -> usize {
        self.index
    }

    /// The shared orbit.
    #[must_use]
    pub fn orbit(&self) -> &CircularOrbit {
        &self.orbit
    }

    /// Number of active satellites `k`.
    #[must_use]
    pub fn active_count(&self) -> usize {
        self.satellites.len()
    }

    /// In-orbit spares not yet consumed.
    #[must_use]
    pub fn spares_remaining(&self) -> usize {
        self.spares_remaining
    }

    /// Design (full) active capacity.
    #[must_use]
    pub fn design_capacity(&self) -> usize {
        self.design_capacity
    }

    /// Active satellite ids, in ring order.
    #[must_use]
    pub fn satellites(&self) -> &[SatelliteId] {
        &self.satellites
    }

    /// The revisit time `Tr[k] = θ / k` after phasing adjustment.
    ///
    /// # Panics
    ///
    /// Panics if the plane is empty.
    #[must_use]
    pub fn revisit_time(&self) -> Minutes {
        let k = self.active_count();
        assert!(k > 0, "revisit time undefined for an empty plane");
        Minutes(self.orbit.period().value() / k as f64)
    }

    /// Phase (argument of latitude at `t = 0`) of the satellite at ring
    /// position `pos`, after even redistribution.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is out of range.
    #[must_use]
    pub fn satellite_phase(&self, pos: usize) -> Radians {
        let k = self.active_count();
        assert!(pos < k, "satellite position out of range");
        Radians(self.phase_reference.value() + std::f64::consts::TAU * pos as f64 / k as f64)
            .wrap_two_pi()
    }

    /// Sub-satellite points of all active satellites at time `t`.
    #[must_use]
    pub fn subsatellite_points(&self, t: Minutes) -> Vec<(SatelliteId, GroundPoint)> {
        (0..self.active_count())
            .map(|pos| {
                (
                    self.satellites[pos],
                    self.orbit.subsatellite_point(self.satellite_phase(pos), t),
                )
            })
            .collect()
    }

    /// Fails one satellite: consumes a spare if available, otherwise removes
    /// a satellite (position `victim % k`) and rephases survivors.
    pub fn fail_one_at(&mut self, victim: usize) -> FailureOutcome {
        if self.satellites.is_empty() {
            return FailureOutcome::PlaneEmpty;
        }
        if self.spares_remaining > 0 {
            self.spares_remaining -= 1;
            // The failed unit is replaced in place by the spare; identity of
            // the slot changes but capacity does not.
            let pos = victim % self.satellites.len();
            self.satellites[pos] = SatelliteId {
                plane: self.index,
                number: self.next_number,
            };
            self.next_number += 1;
            return FailureOutcome::SpareDeployed;
        }
        let pos = victim % self.satellites.len();
        self.satellites.remove(pos);
        FailureOutcome::CapacityReduced {
            remaining: self.satellites.len(),
        }
    }

    /// Fails the satellite at ring position 0 (deterministic convenience).
    pub fn fail_one(&mut self) -> FailureOutcome {
        self.fail_one_at(0)
    }

    /// Restores the plane to design capacity and refills spares (the paper's
    /// scheduled or threshold-triggered ground-spare deployment).
    pub fn restore_full(&mut self) {
        while self.satellites.len() < self.design_capacity {
            self.satellites.push(SatelliteId {
                plane: self.index,
                number: self.next_number,
            });
            self.next_number += 1;
        }
        self.spares_remaining = self.design_spares;
    }

    /// Adds exactly one active satellite (one-for-one replenishment policy),
    /// capped at design capacity.
    pub fn replenish_one(&mut self) {
        if self.satellites.len() < self.design_capacity {
            self.satellites.push(SatelliteId {
                plane: self.index,
                number: self.next_number,
            });
            self.next_number += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::Degrees;

    fn plane() -> OrbitalPlane {
        let orbit = CircularOrbit::new(Degrees(85.0).to_radians(), Radians(0.0), Minutes(90.0))
            .with_earth_rotation(false);
        OrbitalPlane::new(3, orbit, 14, 2)
    }

    #[test]
    fn spares_absorb_first_failures() {
        let mut p = plane();
        assert_eq!(p.fail_one(), FailureOutcome::SpareDeployed);
        assert_eq!(p.fail_one(), FailureOutcome::SpareDeployed);
        assert_eq!(p.active_count(), 14);
        assert_eq!(p.spares_remaining(), 0);
        assert_eq!(
            p.fail_one(),
            FailureOutcome::CapacityReduced { remaining: 13 }
        );
    }

    #[test]
    fn revisit_time_grows_with_failures() {
        let mut p = plane();
        let t14 = p.revisit_time();
        for _ in 0..3 {
            p.fail_one();
        }
        let t13 = p.revisit_time();
        assert!(t13 > t14);
        assert!((t13.value() - 90.0 / 13.0).abs() < 1e-12);
    }

    #[test]
    fn phases_stay_even_after_failure() {
        let mut p = plane();
        for _ in 0..5 {
            p.fail_one();
        }
        let k = p.active_count();
        assert_eq!(k, 11);
        let gap = std::f64::consts::TAU / k as f64;
        for pos in 0..k - 1 {
            let d = p.satellite_phase(pos + 1).value() - p.satellite_phase(pos).value();
            assert!((d - gap).abs() < 1e-12);
        }
    }

    #[test]
    fn restore_full_resets_capacity_and_spares() {
        let mut p = plane();
        for _ in 0..6 {
            p.fail_one();
        }
        assert_eq!(p.active_count(), 10);
        p.restore_full();
        assert_eq!(p.active_count(), 14);
        assert_eq!(p.spares_remaining(), 2);
    }

    #[test]
    fn replenish_one_is_capped() {
        let mut p = plane();
        p.replenish_one();
        assert_eq!(p.active_count(), 14, "cannot exceed design capacity");
        for _ in 0..3 {
            p.fail_one();
        }
        p.replenish_one();
        assert_eq!(p.active_count(), 14);
    }

    #[test]
    fn replacement_ids_are_fresh() {
        let mut p = plane();
        let before: Vec<_> = p.satellites().to_vec();
        p.fail_one_at(5);
        let after = p.satellites();
        assert_ne!(before[5], after[5]);
        assert_eq!(after[5].number, 14);
        assert_eq!(after[5].plane, 3);
    }

    #[test]
    fn subsatellite_points_match_active_count() {
        let p = plane();
        let pts = p.subsatellite_points(Minutes(12.0));
        assert_eq!(pts.len(), 14);
    }

    #[test]
    fn empty_plane_failure_reports() {
        let orbit = CircularOrbit::new(Radians(1.0), Radians(0.0), Minutes(90.0));
        let mut p = OrbitalPlane::new(0, orbit, 1, 0);
        assert_eq!(
            p.fail_one(),
            FailureOutcome::CapacityReduced { remaining: 0 }
        );
        assert_eq!(p.fail_one(), FailureOutcome::PlaneEmpty);
    }
}
