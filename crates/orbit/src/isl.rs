//! High-latitude inter-satellite-link (ISL) outage windows.
//!
//! Cross-plane crosslinks in a Walker constellation are hardest to hold
//! at high latitudes: plane spacing collapses toward the seam, relative
//! slew rates peak, and real systems (Iridium among them) simply switch
//! the cross-plane links off above a latitude threshold. On the circular-
//! orbit model the satellite latitude is a pure sinusoid of the argument
//! of latitude `u`,
//!
//! ```text
//! sin(lat(t)) = sin(i) · sin(u(t)),    u(t) = φ0 + 2π t / θ,
//! ```
//!
//! so `|lat| > L` holds exactly while `|sin u| > sin L / sin i` — two
//! closed-form windows per orbit period, centered on the ascending and
//! descending latitude maxima. No sampling, no root finding.
//!
//! [`cross_plane_outages`] turns those per-satellite windows into the
//! up/down schedule of every cross-plane link of a [`WalkerConfig`]: a
//! link is down while *either* endpoint is above the threshold. The
//! output is plain data — `(plane, slot)` endpoints and `[start, end)`
//! minutes — so a network layer can bridge it to whatever event type it
//! uses (the bench campaigns feed it to `oaq-net`'s topology schedule).

use std::f64::consts::{PI, TAU};

use crate::constellation::WalkerConfig;
use crate::units::{Minutes, Radians};

/// One closed interval `[start, end)` (minutes) during which a satellite
/// sits above the latitude threshold, clipped to the requested horizon.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatWindow {
    /// Window start, minutes.
    pub start: Minutes,
    /// Window end, minutes (`start < end`).
    pub end: Minutes,
}

/// One cross-plane link outage: the link between satellite `slot_a` of
/// `plane_a` and `slot_b` of `plane_b` is down over `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IslOutage {
    /// First endpoint's plane index.
    pub plane_a: usize,
    /// First endpoint's in-plane slot.
    pub slot_a: usize,
    /// Second endpoint's plane index.
    pub plane_b: usize,
    /// Second endpoint's in-plane slot.
    pub slot_b: usize,
    /// Outage start, minutes.
    pub start: Minutes,
    /// Outage end, minutes.
    pub end: Minutes,
}

/// The windows within `[0, horizon)` during which a satellite with phase
/// reference `phase0` on an orbit of inclination `inclination` and period
/// `period` has `|latitude| > threshold`.
///
/// Closed form: per period the orbit spends `u ∈ (a, π−a)` over the
/// northern maximum and `u ∈ (π+a, 2π−a)` over the southern one, with
/// `a = asin(sin threshold / sin inclination)`. Returns an empty vector
/// when the orbit never reaches the threshold latitude, and one window
/// covering the whole horizon when the threshold is zero or negative
/// (the satellite is always strictly above the equator except at
/// isolated instants).
///
/// Windows are returned sorted, disjoint, and clipped to `[0, horizon)`.
///
/// # Panics
///
/// Panics if `period` or `horizon` is non-positive or any input is
/// non-finite.
#[must_use]
pub fn high_latitude_windows(
    inclination: Radians,
    phase0: Radians,
    period: Minutes,
    threshold: Radians,
    horizon: Minutes,
) -> Vec<LatWindow> {
    let theta = period.value();
    let h = horizon.value();
    assert!(
        theta.is_finite() && theta > 0.0,
        "period must be positive, got {period:?}"
    );
    assert!(
        h.is_finite() && h > 0.0,
        "horizon must be positive, got {horizon:?}"
    );
    assert!(
        inclination.is_finite() && phase0.is_finite() && threshold.is_finite(),
        "non-finite angle"
    );

    // sin(i) > 0 for every orbit that is not equatorial; an equatorial
    // orbit never leaves latitude zero.
    let sin_i = inclination.value().sin().abs();
    let ratio = threshold.value().sin() / sin_i.max(f64::EPSILON);
    if ratio >= 1.0 || sin_i <= f64::EPSILON {
        return Vec::new();
    }
    if ratio <= 0.0 {
        return vec![LatWindow {
            start: Minutes(0.0),
            end: horizon,
        }];
    }

    let a = ratio.asin();
    // The two |sin u| > ratio arcs of one cycle, in argument of latitude.
    let arcs = [(a, PI - a), (PI + a, TAU - a)];

    let mut windows = Vec::new();
    // Earliest cycle whose windows can still intersect [0, h): the cycle
    // containing u(0) = phase0 starts one period before t = 0 at worst.
    let cycles = (h / theta).ceil() as i64 + 1;
    for n in -1..=cycles {
        for &(u0, u1) in &arcs {
            // u(t) = phase0 + 2π t / θ  ⇒  t = (u − phase0) θ / 2π.
            let t0 = (u0 + TAU * n as f64 - phase0.value()) * theta / TAU;
            let t1 = (u1 + TAU * n as f64 - phase0.value()) * theta / TAU;
            let (s, e) = (t0.max(0.0), t1.min(h));
            if s < e {
                windows.push(LatWindow {
                    start: Minutes(s),
                    end: Minutes(e),
                });
            }
        }
    }
    windows.sort_by(|x, y| x.start.value().total_cmp(&y.start.value()));
    windows
}

/// Merges two sorted window lists into a minimal sorted disjoint union.
fn union_windows(mut all: Vec<LatWindow>) -> Vec<LatWindow> {
    all.sort_by(|x, y| x.start.value().total_cmp(&y.start.value()));
    let mut merged: Vec<LatWindow> = Vec::with_capacity(all.len());
    for w in all {
        match merged.last_mut() {
            Some(last) if w.start.value() <= last.end.value() => {
                if w.end.value() > last.end.value() {
                    last.end = w.end;
                }
            }
            _ => merged.push(w),
        }
    }
    merged
}

/// The full cross-plane outage schedule of a Walker constellation over
/// `[0, horizon)`.
///
/// Every satellite `(p, s)` holds one cross-plane link to the same slot
/// of the next plane, `(p+1 mod P, s)` — the standard Walker "right
/// neighbor" mesh (for a star pattern the seam pair `P−1 → 0` is a
/// counter-rotating link, exactly the one real systems drop first). The
/// link is down while either endpoint is above `threshold` latitude;
/// each link's windows are merged so the schedule is minimal.
///
/// Outages are sorted by `(plane_a, slot_a, start)`.
///
/// # Panics
///
/// Panics on an invalid config (`validate`), a non-positive horizon, or a
/// non-finite threshold.
#[must_use]
pub fn cross_plane_outages(
    cfg: &WalkerConfig,
    threshold: Radians,
    horizon: Minutes,
) -> Vec<IslOutage> {
    cfg.validate().expect("walker config must be valid");
    let planes = cfg.planes;
    let per_plane = cfg.satellites_per_plane;
    let total = cfg.total_satellites();
    let inc = cfg.inclination.to_radians();

    // Phase of satellite (p, s) under the builder's convention:
    // plane stagger 2π·F·p/T plus the in-plane spread 2π·s/S.
    let phase = |p: usize, s: usize| {
        Radians(
            TAU * (cfg.phasing_factor * p) as f64 / total as f64
                + TAU * s as f64 / per_plane as f64,
        )
        .wrap_two_pi()
    };

    // Per-satellite windows, computed once and reused by both links that
    // touch the satellite.
    let windows: Vec<Vec<LatWindow>> = (0..planes)
        .flat_map(|p| (0..per_plane).map(move |s| (p, s)))
        .map(|(p, s)| high_latitude_windows(inc, phase(p, s), cfg.period, threshold, horizon))
        .collect();

    let mut outages = Vec::new();
    for p in 0..planes {
        let q = (p + 1) % planes;
        if q == p {
            continue; // single-plane constellations have no cross-plane links
        }
        for s in 0..per_plane {
            let mut both = windows[p * per_plane + s].clone();
            both.extend_from_slice(&windows[q * per_plane + s]);
            for w in union_windows(both) {
                outages.push(IslOutage {
                    plane_a: p,
                    slot_a: s,
                    plane_b: q,
                    slot_b: s,
                    start: w.start,
                    end: w.end,
                });
            }
        }
    }
    outages
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constellation::Preset;
    use crate::orbit::CircularOrbit;
    use crate::units::Degrees;

    fn orbit(inc_deg: f64, period: f64) -> CircularOrbit {
        CircularOrbit::new(Degrees(inc_deg).to_radians(), Radians(0.0), Minutes(period))
    }

    #[test]
    fn windows_match_sampled_latitude() {
        let inc = Degrees(53.0).to_radians();
        let period = Minutes(95.6);
        let threshold = Degrees(45.0).to_radians();
        let horizon = Minutes(2.0 * 95.6);
        for phase0 in [0.0, 1.3, 4.0] {
            let windows = high_latitude_windows(inc, Radians(phase0), period, threshold, horizon);
            assert!(!windows.is_empty());
            let orb = orbit(53.0, 95.6);
            let above = |t: f64| {
                let lat = orb
                    .subsatellite_point(Radians(phase0), Minutes(t))
                    .lat()
                    .value()
                    .abs();
                lat > threshold.value()
            };
            // Sample well inside/outside each window (away from edges the
            // closed form and the sampled latitude must agree exactly).
            let eps = 0.25;
            for w in &windows {
                let mid = 0.5 * (w.start.value() + w.end.value());
                assert!(above(mid), "mid of {w:?} must be above threshold");
                if w.start.value() > eps {
                    assert!(!above(w.start.value() - eps), "before {w:?}");
                }
                if w.end.value() + eps < horizon.value() {
                    assert!(!above(w.end.value() + eps), "after {w:?}");
                }
            }
        }
    }

    #[test]
    fn unreachable_threshold_has_no_windows() {
        let w = high_latitude_windows(
            Degrees(53.0).to_radians(),
            Radians(0.0),
            Minutes(95.6),
            Degrees(60.0).to_radians(),
            Minutes(200.0),
        );
        assert!(w.is_empty());
    }

    #[test]
    fn zero_threshold_covers_the_horizon() {
        let w = high_latitude_windows(
            Degrees(53.0).to_radians(),
            Radians(0.0),
            Minutes(95.6),
            Radians(0.0),
            Minutes(200.0),
        );
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].start.value(), 0.0);
        assert_eq!(w[0].end.value(), 200.0);
    }

    #[test]
    fn windows_cover_about_the_analytic_fraction() {
        // Over a whole number of periods the above-threshold dwell is
        // exactly 2·(π − 2a)/2π of the time, independent of phase.
        let inc = Degrees(53.0).to_radians();
        let threshold = Degrees(40.0).to_radians();
        let period = Minutes(95.6);
        let horizon = Minutes(10.0 * 95.6);
        let a = (threshold.value().sin() / inc.value().sin()).asin();
        let expect = (PI - 2.0 * a) / PI;
        let w = high_latitude_windows(inc, Radians(2.1), period, threshold, horizon);
        let dwell: f64 = w.iter().map(|w| w.end.value() - w.start.value()).sum();
        let frac = dwell / horizon.value();
        assert!(
            (frac - expect).abs() < 1e-9,
            "dwell fraction {frac} vs analytic {expect}"
        );
    }

    #[test]
    fn cross_plane_outages_are_sane_for_starlink() {
        let cfg = Preset::Starlink.config();
        let horizon = Minutes(cfg.period.value());
        let outages = cross_plane_outages(&cfg, Degrees(48.0).to_radians(), horizon);
        assert!(!outages.is_empty());
        for o in &outages {
            assert!(o.start.value() < o.end.value());
            assert!(o.end.value() <= horizon.value());
            assert_eq!(o.plane_b, (o.plane_a + 1) % cfg.planes);
            assert_eq!(o.slot_a, o.slot_b);
            assert!(o.slot_a < cfg.satellites_per_plane);
        }
        // Every link must be down for part of the period (48° < 53° peak)
        // and up for part of it (the windows are strictly inside).
        let links: std::collections::HashSet<(usize, usize)> =
            outages.iter().map(|o| (o.plane_a, o.slot_a)).collect();
        assert_eq!(links.len(), cfg.planes * cfg.satellites_per_plane);
        for o in &outages {
            assert!(o.end.value() - o.start.value() < cfg.period.value());
        }
    }

    #[test]
    fn link_outage_is_the_union_of_endpoint_windows() {
        let cfg = Preset::IridiumNext.config();
        let threshold = Degrees(70.0).to_radians();
        let horizon = Minutes(cfg.period.value() * 1.5);
        let outages = cross_plane_outages(&cfg, threshold, horizon);
        // Pick one link and verify against independently recomputed
        // endpoint windows.
        let total = cfg.total_satellites();
        let phase = |p: usize, s: usize| {
            Radians(
                TAU * (cfg.phasing_factor * p) as f64 / total as f64
                    + TAU * s as f64 / cfg.satellites_per_plane as f64,
            )
            .wrap_two_pi()
        };
        let inc = cfg.inclination.to_radians();
        let mut both = high_latitude_windows(inc, phase(2, 3), cfg.period, threshold, horizon);
        both.extend(high_latitude_windows(
            inc,
            phase(3, 3),
            cfg.period,
            threshold,
            horizon,
        ));
        let expect = union_windows(both);
        let got: Vec<LatWindow> = outages
            .iter()
            .filter(|o| o.plane_a == 2 && o.slot_a == 3)
            .map(|o| LatWindow {
                start: o.start,
                end: o.end,
            })
            .collect();
        assert_eq!(got, expect);
    }
}
