//! Circular-orbit propagation and ground tracks.

use crate::geo::GroundPoint;
use crate::units::{Minutes, Radians};

/// Sidereal rotation rate of the earth in radians per minute.
pub const EARTH_ROTATION_RATE: f64 = std::f64::consts::TAU / (23.0 * 60.0 + 56.0 + 4.0 / 60.0);

/// A circular orbit described by inclination, RAAN and period, propagated by
/// a phase angle measured from the ascending node.
///
/// The OAQ evaluation needs only sub-satellite ground tracks (footprint
/// centers), so the propagator works directly on the unit sphere; no
/// perturbations are modeled. Earth rotation can be switched off to analyze
/// repeat tracks over a fixed ground location, which is the frame the paper's
/// timing diagrams (Figure 6) are drawn in.
///
/// # Examples
///
/// ```
/// use oaq_orbit::orbit::CircularOrbit;
/// use oaq_orbit::units::{Degrees, Minutes, Radians};
///
/// let orbit = CircularOrbit::new(Degrees(60.0).to_radians(), Radians(0.0), Minutes(90.0))
///     .with_earth_rotation(false);
/// let p = orbit.subsatellite_point(Radians(0.0), Minutes(22.5)); // quarter orbit
/// assert!((p.lat().to_degrees().value() - 60.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CircularOrbit {
    inclination: Radians,
    raan: Radians,
    period: Minutes,
    earth_rotation: bool,
}

impl CircularOrbit {
    /// Creates an orbit.
    ///
    /// # Panics
    ///
    /// Panics if the period is not strictly positive or the inclination is
    /// outside `[0, π]`.
    #[must_use]
    pub fn new(inclination: Radians, raan: Radians, period: Minutes) -> Self {
        assert!(
            period.value() > 0.0 && period.is_finite(),
            "period must be positive"
        );
        assert!(
            (0.0..=std::f64::consts::PI + 1e-12).contains(&inclination.value()),
            "inclination out of [0, π]"
        );
        CircularOrbit {
            inclination,
            raan,
            period,
            earth_rotation: true,
        }
    }

    /// Enables or disables earth rotation in the ground-track frame.
    #[must_use]
    pub fn with_earth_rotation(mut self, on: bool) -> Self {
        self.earth_rotation = on;
        self
    }

    /// Orbital period.
    #[must_use]
    pub fn period(&self) -> Minutes {
        self.period
    }

    /// Orbit inclination.
    #[must_use]
    pub fn inclination(&self) -> Radians {
        self.inclination
    }

    /// Right ascension of the ascending node.
    #[must_use]
    pub fn raan(&self) -> Radians {
        self.raan
    }

    /// Mean motion in radians per minute.
    #[must_use]
    pub fn mean_motion(&self) -> f64 {
        std::f64::consts::TAU / self.period.value()
    }

    /// Phase angle (argument of latitude) at time `t` for a satellite with
    /// initial phase `phase0` at `t = 0`.
    #[must_use]
    pub fn phase_at(&self, phase0: Radians, t: Minutes) -> Radians {
        Radians(phase0.value() + self.mean_motion() * t.value()).wrap_two_pi()
    }

    /// Sub-satellite ground point at time `t`.
    #[must_use]
    pub fn subsatellite_point(&self, phase0: Radians, t: Minutes) -> GroundPoint {
        let u = self.phase_at(phase0, t).value();
        let i = self.inclination.value();
        let lat = (i.sin() * u.sin()).clamp(-1.0, 1.0).asin();
        let mut lon = self.raan.value() + (i.cos() * u.sin()).atan2(u.cos());
        if self.earth_rotation {
            lon -= EARTH_ROTATION_RATE * t.value();
        }
        GroundPoint::new(Radians(lat), Radians(lon))
    }

    /// Samples the ground track over `[0, horizon]` at `steps` uniform
    /// points (including both endpoints).
    ///
    /// # Panics
    ///
    /// Panics if `steps < 2`.
    #[must_use]
    pub fn ground_track(
        &self,
        phase0: Radians,
        horizon: Minutes,
        steps: usize,
    ) -> Vec<GroundPoint> {
        assert!(steps >= 2, "need at least two samples");
        (0..steps)
            .map(|s| {
                let t = Minutes(horizon.value() * s as f64 / (steps - 1) as f64);
                self.subsatellite_point(phase0, t)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::Degrees;

    fn polar_orbit() -> CircularOrbit {
        CircularOrbit::new(Degrees(90.0).to_radians(), Radians(0.0), Minutes(90.0))
            .with_earth_rotation(false)
    }

    #[test]
    fn equatorial_crossing_at_ascending_node() {
        let p = polar_orbit().subsatellite_point(Radians(0.0), Minutes(0.0));
        assert!(p.lat().value().abs() < 1e-12);
        assert!(p.lon().value().abs() < 1e-12);
    }

    #[test]
    fn polar_orbit_reaches_pole() {
        let p = polar_orbit().subsatellite_point(Radians(0.0), Minutes(22.5));
        assert!((p.lat().to_degrees().value() - 90.0).abs() < 1e-9);
    }

    #[test]
    fn period_returns_to_start_without_rotation() {
        let orbit = CircularOrbit::new(Degrees(55.0).to_radians(), Radians(0.3), Minutes(90.0))
            .with_earth_rotation(false);
        let a = orbit.subsatellite_point(Radians(0.7), Minutes(0.0));
        let b = orbit.subsatellite_point(Radians(0.7), Minutes(90.0));
        assert!(a.central_angle(&b).value() < 1e-9);
    }

    #[test]
    fn earth_rotation_shifts_track_west() {
        let orbit = CircularOrbit::new(Degrees(90.0).to_radians(), Radians(0.0), Minutes(90.0));
        let b = orbit.subsatellite_point(Radians(0.0), Minutes(90.0));
        // After one orbit the earth has rotated ~22.56° east, so the track
        // appears shifted west by that amount.
        let expected = -EARTH_ROTATION_RATE * 90.0;
        assert!((b.lon().value() - expected).abs() < 1e-9);
    }

    #[test]
    fn max_latitude_equals_inclination() {
        let orbit = CircularOrbit::new(Degrees(63.4).to_radians(), Radians(0.0), Minutes(90.0))
            .with_earth_rotation(false);
        let max_lat = orbit
            .ground_track(Radians(0.0), Minutes(90.0), 721)
            .iter()
            .map(|p| p.lat().to_degrees().value())
            .fold(f64::MIN, f64::max);
        assert!((max_lat - 63.4).abs() < 0.01);
    }

    #[test]
    fn ground_track_length() {
        let pts = polar_orbit().ground_track(Radians(0.0), Minutes(90.0), 10);
        assert_eq!(pts.len(), 10);
    }

    #[test]
    fn phase_wraps() {
        let orbit = polar_orbit();
        let u = orbit.phase_at(Radians(0.0), Minutes(135.0)); // 1.5 orbits
        assert!((u.value() - std::f64::consts::PI).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_rejected() {
        let _ = CircularOrbit::new(Radians(0.0), Radians(0.0), Minutes(0.0));
    }
}
