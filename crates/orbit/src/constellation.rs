//! The full constellation: a set of orbital planes sharing a footprint model.
//!
//! Designs are described by a parameterized Walker pattern
//! ([`WalkerConfig`]): `planes` evenly-RAAN-spaced orbital planes of
//! `satellites_per_plane` satellites each, with the inter-plane phasing set
//! by the Walker phasing factor `f` — adjacent planes' satellites are
//! offset by `2π·f/T` (T total satellites). A **star** pattern spreads the
//! ascending nodes over half the equator (near-polar seams touching, the
//! paper's reference design and Iridium); a **delta** pattern spreads them
//! over the full equator (inclined shells such as Starlink). Named
//! real-design presets live in [`Preset`].

use std::f64::consts::{PI, TAU};

use crate::footprint::Footprint;
use crate::geo::GroundPoint;
use crate::orbit::CircularOrbit;
use crate::plane::{OrbitalPlane, SatelliteId};
use crate::units::{Degrees, Minutes, Radians};

/// A rejected constellation parameter (mirrors the typed `ParamError`
/// pattern of `oaq-analytic`).
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum ConstellationError {
    /// An integer parameter lies outside its inclusive range.
    IntOutOfRange {
        /// Parameter name (e.g. `"planes"`).
        name: &'static str,
        /// The offending value.
        value: usize,
        /// Inclusive lower bound.
        min: usize,
        /// Inclusive upper bound.
        max: usize,
    },
    /// A duration is NaN, infinite or not strictly positive.
    NonPositive {
        /// Parameter name.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The value lies outside its **open** domain interval.
    OutOfOpenRange {
        /// Parameter name.
        name: &'static str,
        /// The offending value.
        value: f64,
        /// Exclusive lower bound.
        min: f64,
        /// Exclusive upper bound.
        max: f64,
    },
    /// The coverage time is incompatible with the orbit period (the
    /// footprint geometry needs `0 < Tc < θ/2`).
    CoverageIncompatible {
        /// Single-satellite coverage time, minutes.
        tc: f64,
        /// Orbit period, minutes.
        theta: f64,
    },
}

impl std::fmt::Display for ConstellationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            ConstellationError::IntOutOfRange {
                name,
                value,
                min,
                max,
            } => write!(f, "{name} must lie in {min}..={max}, got {value}"),
            ConstellationError::NonPositive { name, value } => {
                write!(f, "{name} must be positive and finite, got {value}")
            }
            ConstellationError::OutOfOpenRange {
                name,
                value,
                min,
                max,
            } => write!(
                f,
                "{name} must lie strictly inside ({min}, {max}), got {value}"
            ),
            ConstellationError::CoverageIncompatible { tc, theta } => {
                write!(f, "coverage time {tc} must lie in (0, {}/2)", theta)
            }
        }
    }
}

impl std::error::Error for ConstellationError {}

/// How the ascending nodes are spread around the equator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WalkerPattern {
    /// RAANs spread over π: near-polar "star" (Iridium, the paper's
    /// reference design). Adjacent planes counter-rotate across the seam.
    Star,
    /// RAANs spread over 2π: inclined "delta" / rosette (Starlink).
    Delta,
}

/// A parameterized Walker constellation `i: T/P/F`.
///
/// # Examples
///
/// ```
/// use oaq_orbit::constellation::{WalkerConfig, WalkerPattern};
/// use oaq_orbit::units::{Degrees, Minutes};
///
/// let c = WalkerConfig {
///     pattern: WalkerPattern::Delta,
///     planes: 6,
///     satellites_per_plane: 11,
///     spares_per_plane: 1,
///     phasing_factor: 2,
///     inclination: Degrees(86.4),
///     period: Minutes(100.4),
///     coverage_time: Minutes(10.0),
///     earth_rotation: false,
/// }
/// .try_build()
/// .unwrap();
/// assert_eq!(c.total_active(), 66);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WalkerConfig {
    /// Star (RAANs over π) or delta (RAANs over 2π).
    pub pattern: WalkerPattern,
    /// Number of orbital planes `P ≥ 1`.
    pub planes: usize,
    /// Active satellites per plane `S ≥ 1`.
    pub satellites_per_plane: usize,
    /// In-orbit spares per plane.
    pub spares_per_plane: usize,
    /// Walker phasing factor `F ∈ 0..P`: satellites in adjacent planes are
    /// phase-offset by `2π·F/T` with `T = P·S`.
    pub phasing_factor: usize,
    /// Orbit inclination, strictly inside (0°, 180°).
    pub inclination: Degrees,
    /// Orbit period θ.
    pub period: Minutes,
    /// Single-satellite coverage time Tc (sets the footprint size); the
    /// footprint geometry needs `0 < Tc < θ/2`.
    pub coverage_time: Minutes,
    /// Whether ground tracks drift with earth rotation.
    pub earth_rotation: bool,
}

impl WalkerConfig {
    /// Total satellites `T = P·S` (active complement, spares excluded).
    #[must_use]
    pub fn total_satellites(&self) -> usize {
        self.planes * self.satellites_per_plane
    }

    /// Validates every parameter, returning the first violation.
    ///
    /// # Errors
    ///
    /// A typed [`ConstellationError`] naming the offending parameter:
    /// `planes ≥ 1`, `satellites_per_plane ≥ 1`, `phasing_factor < planes`,
    /// inclination strictly inside (0°, 180°), positive finite period, and
    /// a coverage time compatible with the period.
    pub fn validate(&self) -> Result<(), ConstellationError> {
        const MAX_DIMENSION: usize = 10_000;
        let int_in = |name, value, min, max| {
            if (min..=max).contains(&value) {
                Ok(())
            } else {
                Err(ConstellationError::IntOutOfRange {
                    name,
                    value,
                    min,
                    max,
                })
            }
        };
        int_in("planes", self.planes, 1, MAX_DIMENSION)?;
        int_in(
            "satellites_per_plane",
            self.satellites_per_plane,
            1,
            MAX_DIMENSION,
        )?;
        int_in("spares_per_plane", self.spares_per_plane, 0, MAX_DIMENSION)?;
        int_in("phasing_factor", self.phasing_factor, 0, self.planes - 1)?;
        let inc = self.inclination.value();
        if !(inc.is_finite() && inc > 0.0 && inc < 180.0) {
            return Err(ConstellationError::OutOfOpenRange {
                name: "inclination",
                value: inc,
                min: 0.0,
                max: 180.0,
            });
        }
        let theta = self.period.value();
        if !(theta.is_finite() && theta > 0.0) {
            return Err(ConstellationError::NonPositive {
                name: "period",
                value: theta,
            });
        }
        let tc = self.coverage_time.value();
        if !(tc.is_finite() && tc > 0.0 && tc < theta / 2.0) {
            return Err(ConstellationError::CoverageIncompatible { tc, theta });
        }
        Ok(())
    }

    /// Builds the constellation: plane `p` gets RAAN `span·p/P` (span π for
    /// star, 2π for delta) and phase reference `2π·F·p/T`.
    ///
    /// # Errors
    ///
    /// As [`Self::validate`].
    pub fn try_build(&self) -> Result<Constellation, ConstellationError> {
        self.validate()?;
        let footprint = Footprint::from_coverage_time(self.coverage_time, self.period);
        let raan_span = match self.pattern {
            WalkerPattern::Star => PI,
            WalkerPattern::Delta => TAU,
        };
        let total = self.total_satellites();
        let planes = (0..self.planes)
            .map(|p| {
                let raan = Radians(raan_span * p as f64 / self.planes as f64);
                let orbit = CircularOrbit::new(self.inclination.to_radians(), raan, self.period)
                    .with_earth_rotation(self.earth_rotation);
                let stagger = Radians(TAU * (self.phasing_factor * p) as f64 / total as f64);
                OrbitalPlane::new(p, orbit, self.satellites_per_plane, self.spares_per_plane)
                    .with_phase_reference(stagger)
            })
            .collect();
        Ok(Constellation {
            planes,
            footprint,
            period: self.period,
        })
    }
}

/// Named real-design Walker presets.
///
/// The figures are representative public values (plane/satellite counts,
/// inclination, orbit period for the shell altitude); the coverage times
/// are chosen so every reachable capacity stays inside the analytic
/// model's dual-coverage domain (`Tr[k] > Tc/2`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Preset {
    /// Starlink shell 1: delta, 72 × 22 at 53°, ~550 km (θ ≈ 95.6 min).
    Starlink,
    /// OneWeb: polar star, 18 × 36 at 87.9°, ~1200 km (θ ≈ 109 min).
    OneWeb,
    /// Iridium NEXT: polar star, 6 × 11 at 86.4°, ~780 km (θ ≈ 100.4 min).
    IridiumNext,
    /// Kepler: near-polar star, 7 × 20 at 97.7°, ~575 km (θ ≈ 96 min).
    Kepler,
}

impl Preset {
    /// All presets, in display order.
    #[must_use]
    pub fn all() -> [Preset; 4] {
        [
            Preset::Starlink,
            Preset::OneWeb,
            Preset::IridiumNext,
            Preset::Kepler,
        ]
    }

    /// A short stable identifier (used in reports and JSON).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Preset::Starlink => "starlink",
            Preset::OneWeb => "oneweb",
            Preset::IridiumNext => "iridium_next",
            Preset::Kepler => "kepler",
        }
    }

    /// The preset's Walker parameters.
    #[must_use]
    pub fn config(self) -> WalkerConfig {
        match self {
            Preset::Starlink => WalkerConfig {
                pattern: WalkerPattern::Delta,
                planes: 72,
                satellites_per_plane: 22,
                spares_per_plane: 2,
                phasing_factor: 17,
                inclination: Degrees(53.0),
                period: Minutes(95.6),
                coverage_time: Minutes(6.0),
                earth_rotation: false,
            },
            Preset::OneWeb => WalkerConfig {
                pattern: WalkerPattern::Star,
                planes: 18,
                satellites_per_plane: 36,
                spares_per_plane: 2,
                phasing_factor: 1,
                inclination: Degrees(87.9),
                period: Minutes(109.0),
                coverage_time: Minutes(4.5),
                earth_rotation: false,
            },
            Preset::IridiumNext => WalkerConfig {
                pattern: WalkerPattern::Star,
                planes: 6,
                satellites_per_plane: 11,
                spares_per_plane: 1,
                phasing_factor: 1,
                inclination: Degrees(86.4),
                period: Minutes(100.4),
                coverage_time: Minutes(10.0),
                earth_rotation: false,
            },
            Preset::Kepler => WalkerConfig {
                pattern: WalkerPattern::Star,
                planes: 7,
                satellites_per_plane: 20,
                spares_per_plane: 1,
                phasing_factor: 2,
                inclination: Degrees(97.7),
                period: Minutes(96.0),
                coverage_time: Minutes(6.0),
                earth_rotation: false,
            },
        }
    }

    /// Builds the preset constellation.
    ///
    /// # Panics
    ///
    /// Never in practice — every preset configuration validates.
    #[must_use]
    pub fn build(self) -> Constellation {
        self.config()
            .try_build()
            .expect("preset configurations are valid")
    }
}

/// A multi-plane LEO constellation.
///
/// [`Constellation::reference`] builds the paper's JPL RF-geolocation
/// design: 7 planes × (14 active + 2 in-orbit spares), θ = 90 min,
/// Tc = 9 min. Custom designs are built with [`ConstellationBuilder`].
///
/// # Examples
///
/// ```
/// use oaq_orbit::Constellation;
/// let c = Constellation::reference();
/// assert_eq!(c.total_active(), 98);
/// assert_eq!(c.total_with_spares(), 112);
/// ```
#[derive(Debug, Clone)]
pub struct Constellation {
    planes: Vec<OrbitalPlane>,
    footprint: Footprint,
    period: Minutes,
}

/// Builder for [`Constellation`] (C-BUILDER).
///
/// # Examples
///
/// ```
/// use oaq_orbit::constellation::ConstellationBuilder;
/// use oaq_orbit::units::{Degrees, Minutes};
///
/// let c = ConstellationBuilder::new()
///     .planes(4)
///     .satellites_per_plane(10)
///     .spares_per_plane(1)
///     .period(Minutes(100.0))
///     .coverage_time(Minutes(8.0))
///     .inclination(Degrees(70.0))
///     .build();
/// assert_eq!(c.total_active(), 40);
/// ```
#[derive(Debug, Clone)]
pub struct ConstellationBuilder {
    planes: usize,
    satellites_per_plane: usize,
    spares_per_plane: usize,
    period: Minutes,
    coverage_time: Minutes,
    inclination: crate::units::Degrees,
    earth_rotation: bool,
}

impl Default for ConstellationBuilder {
    fn default() -> Self {
        ConstellationBuilder {
            planes: 7,
            satellites_per_plane: 14,
            spares_per_plane: 2,
            period: Minutes(90.0),
            coverage_time: Minutes(9.0),
            inclination: crate::units::Degrees(85.0),
            earth_rotation: false,
        }
    }
}

impl ConstellationBuilder {
    /// Starts from the reference-design defaults.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of orbital planes.
    pub fn planes(&mut self, n: usize) -> &mut Self {
        self.planes = n;
        self
    }

    /// Active satellites per plane.
    pub fn satellites_per_plane(&mut self, n: usize) -> &mut Self {
        self.satellites_per_plane = n;
        self
    }

    /// In-orbit spares per plane.
    pub fn spares_per_plane(&mut self, n: usize) -> &mut Self {
        self.spares_per_plane = n;
        self
    }

    /// Orbit period θ.
    pub fn period(&mut self, theta: Minutes) -> &mut Self {
        self.period = theta;
        self
    }

    /// Single-satellite coverage time Tc (sets the footprint size).
    pub fn coverage_time(&mut self, tc: Minutes) -> &mut Self {
        self.coverage_time = tc;
        self
    }

    /// Orbit inclination.
    pub fn inclination(&mut self, inc: crate::units::Degrees) -> &mut Self {
        self.inclination = inc;
        self
    }

    /// Whether ground tracks drift with earth rotation.
    pub fn earth_rotation(&mut self, on: bool) -> &mut Self {
        self.earth_rotation = on;
        self
    }

    /// The equivalent Walker description: a star pattern with phasing
    /// factor 1 (one satellite-slot stagger between adjacent planes).
    #[must_use]
    pub fn walker_config(&self) -> WalkerConfig {
        WalkerConfig {
            pattern: WalkerPattern::Star,
            planes: self.planes,
            satellites_per_plane: self.satellites_per_plane,
            spares_per_plane: self.spares_per_plane,
            phasing_factor: usize::from(self.planes > 1),
            inclination: self.inclination,
            period: self.period,
            coverage_time: self.coverage_time,
            earth_rotation: self.earth_rotation,
        }
    }

    /// Builds the constellation: planes get evenly spaced RAANs over π
    /// (a polar-star pattern) and staggered phase references
    /// (delegates to [`WalkerConfig::try_build`]).
    ///
    /// # Panics
    ///
    /// Panics if the parameters are invalid — see [`WalkerConfig::validate`].
    #[must_use]
    pub fn build(&self) -> Constellation {
        self.walker_config()
            .try_build()
            .unwrap_or_else(|e| panic!("invalid constellation: {e}"))
    }
}

impl Constellation {
    /// The paper's reference RF-geolocation constellation:
    /// 7 × (14 + 2 spares), θ = 90 min, Tc = 9 min.
    #[must_use]
    pub fn reference() -> Self {
        ConstellationBuilder::new().build()
    }

    /// Number of planes.
    #[must_use]
    pub fn num_planes(&self) -> usize {
        self.planes.len()
    }

    /// Immutable access to plane `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn plane(&self, i: usize) -> &OrbitalPlane {
        &self.planes[i]
    }

    /// Mutable access to plane `i` (to inject failures / deployments).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn plane_mut(&mut self, i: usize) -> &mut OrbitalPlane {
        &mut self.planes[i]
    }

    /// Iterates over planes.
    pub fn planes(&self) -> impl Iterator<Item = &OrbitalPlane> {
        self.planes.iter()
    }

    /// Total active satellites across planes.
    #[must_use]
    pub fn total_active(&self) -> usize {
        self.planes.iter().map(OrbitalPlane::active_count).sum()
    }

    /// Total satellites including unconsumed in-orbit spares.
    #[must_use]
    pub fn total_with_spares(&self) -> usize {
        self.total_active()
            + self
                .planes
                .iter()
                .map(OrbitalPlane::spares_remaining)
                .sum::<usize>()
    }

    /// The common footprint model.
    #[must_use]
    pub fn footprint(&self) -> &Footprint {
        &self.footprint
    }

    /// The common orbit period θ.
    #[must_use]
    pub fn period(&self) -> Minutes {
        self.period
    }

    /// Single-satellite coverage time Tc.
    #[must_use]
    pub fn coverage_time(&self) -> Minutes {
        self.footprint.coverage_time(self.period)
    }

    /// All satellites whose footprints cover `target` at time `t`.
    #[must_use]
    pub fn covering_satellites(&self, target: &GroundPoint, t: Minutes) -> Vec<SatelliteId> {
        let mut out = Vec::new();
        for plane in &self.planes {
            for (id, center) in plane.subsatellite_points(t) {
                if self.footprint.covers(&center, target) {
                    out.push(id);
                }
            }
        }
        out
    }

    /// Number of distinct satellites covering `target` at `t`.
    #[must_use]
    pub fn coverage_multiplicity(&self, target: &GroundPoint, t: Minutes) -> usize {
        self.covering_satellites(target, t).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::Degrees;

    #[test]
    fn reference_matches_paper_parameters() {
        let c = Constellation::reference();
        assert_eq!(c.num_planes(), 7);
        assert_eq!(c.total_active(), 98);
        assert_eq!(c.total_with_spares(), 112);
        assert!((c.coverage_time().value() - 9.0).abs() < 1e-9);
        assert!((c.period().value() - 90.0).abs() < 1e-12);
    }

    #[test]
    fn full_reference_covers_equator_and_midlatitudes() {
        let c = Constellation::reference();
        // Sample points along 0° and 30°N; with 98 active satellites the
        // paper states full earth coverage.
        for lat in [0.0, 30.0, 60.0] {
            for lon_step in 0..24 {
                let p = GroundPoint::from_degrees(Degrees(lat), Degrees(lon_step as f64 * 15.0));
                let mut covered = false;
                // A point may be momentarily uncovered at one instant but the
                // paper's claim is about the constellation sweep; check a few
                // instants within one revisit period.
                for i in 0..8 {
                    let t = Minutes(90.0 / 14.0 * i as f64 / 8.0);
                    if c.coverage_multiplicity(&p, t) >= 1 {
                        covered = true;
                        break;
                    }
                }
                assert!(
                    covered,
                    "point at lat {lat} lon {} never covered",
                    lon_step * 15
                );
            }
        }
    }

    #[test]
    fn high_latitudes_see_more_overlap_than_equator() {
        let c = Constellation::reference();
        let count_at = |lat: f64| -> usize {
            let mut multi = 0;
            for lon_step in 0..36 {
                let p = GroundPoint::from_degrees(Degrees(lat), Degrees(lon_step as f64 * 10.0));
                for i in 0..6 {
                    let t = Minutes(90.0 / 14.0 * i as f64 / 6.0);
                    if c.coverage_multiplicity(&p, t) >= 2 {
                        multi += 1;
                    }
                }
            }
            multi
        };
        assert!(
            count_at(70.0) > count_at(0.0),
            "overlap should concentrate at high latitude"
        );
    }

    #[test]
    fn builder_customization() {
        let c = ConstellationBuilder::new()
            .planes(3)
            .satellites_per_plane(5)
            .spares_per_plane(0)
            .build();
        assert_eq!(c.total_active(), 15);
        assert_eq!(c.total_with_spares(), 15);
    }

    #[test]
    fn builder_matches_walker_star_bitwise() {
        let b = ConstellationBuilder::new();
        let legacy = b.build();
        let walker = b.walker_config().try_build().unwrap();
        assert_eq!(legacy.num_planes(), walker.num_planes());
        for p in 0..legacy.num_planes() {
            let (l, w) = (legacy.plane(p), walker.plane(p));
            assert_eq!(l.orbit().raan().value(), w.orbit().raan().value());
            assert_eq!(
                l.satellite_phase(0).value(),
                w.satellite_phase(0).value(),
                "phase reference differs on plane {p}"
            );
        }
    }

    #[test]
    fn presets_have_expected_totals() {
        let expect = [
            (Preset::Starlink, 72, 1584, 1584 + 144),
            (Preset::OneWeb, 18, 648, 648 + 36),
            (Preset::IridiumNext, 6, 66, 66 + 6),
            (Preset::Kepler, 7, 140, 140 + 7),
        ];
        for (preset, planes, active, with_spares) in expect {
            let c = preset.build();
            assert_eq!(c.num_planes(), planes, "{}", preset.name());
            assert_eq!(c.total_active(), active, "{}", preset.name());
            assert_eq!(c.total_with_spares(), with_spares, "{}", preset.name());
            assert_eq!(preset.config().total_satellites(), active);
        }
    }

    #[test]
    fn star_and_delta_raan_spans_differ() {
        let mut cfg = Preset::IridiumNext.config();
        let star = cfg.try_build().unwrap();
        cfg.pattern = WalkerPattern::Delta;
        let delta = cfg.try_build().unwrap();
        let last = cfg.planes - 1;
        let span = |c: &Constellation| c.plane(last).orbit().raan().value();
        assert!((span(&star) - PI * last as f64 / cfg.planes as f64).abs() < 1e-12);
        assert!((span(&delta) - TAU * last as f64 / cfg.planes as f64).abs() < 1e-12);
    }

    #[test]
    fn walker_validation_rejects_each_bad_parameter() {
        let good = Preset::Kepler.config();
        assert!(good.validate().is_ok());

        let mut c = good;
        c.planes = 0;
        assert!(matches!(
            c.validate(),
            Err(ConstellationError::IntOutOfRange { name: "planes", .. })
        ));

        c = good;
        c.satellites_per_plane = 0;
        assert!(matches!(
            c.validate(),
            Err(ConstellationError::IntOutOfRange {
                name: "satellites_per_plane",
                ..
            })
        ));

        c = good;
        c.phasing_factor = c.planes;
        assert!(matches!(
            c.validate(),
            Err(ConstellationError::IntOutOfRange {
                name: "phasing_factor",
                ..
            })
        ));

        for bad_inc in [0.0, 180.0, -10.0, f64::NAN] {
            c = good;
            c.inclination = Degrees(bad_inc);
            assert!(
                matches!(
                    c.validate(),
                    Err(ConstellationError::OutOfOpenRange {
                        name: "inclination",
                        ..
                    })
                ),
                "inclination {bad_inc} accepted"
            );
        }

        c = good;
        c.period = Minutes(0.0);
        assert!(matches!(
            c.validate(),
            Err(ConstellationError::NonPositive { name: "period", .. })
        ));

        c = good;
        c.coverage_time = Minutes(c.period.value());
        assert!(matches!(
            c.validate(),
            Err(ConstellationError::CoverageIncompatible { .. })
        ));
    }

    #[test]
    fn constellation_error_displays_parameter_name() {
        let err = ConstellationError::IntOutOfRange {
            name: "planes",
            value: 0,
            min: 1,
            max: 10_000,
        };
        assert!(err.to_string().contains("planes"));
        let err = ConstellationError::OutOfOpenRange {
            name: "inclination",
            value: 180.0,
            min: 0.0,
            max: 180.0,
        };
        assert!(err.to_string().contains("inclination"));
    }

    #[test]
    #[should_panic(expected = "invalid constellation")]
    fn builder_panics_on_zero_planes() {
        let _ = ConstellationBuilder::new().planes(0).build();
    }

    #[test]
    fn plane_mut_allows_degradation() {
        let mut c = Constellation::reference();
        for _ in 0..6 {
            c.plane_mut(2).fail_one();
        }
        assert_eq!(c.plane(2).active_count(), 10);
        assert_eq!(c.total_active(), 94);
    }
}
