//! The full constellation: a set of orbital planes sharing a footprint model.

use crate::footprint::Footprint;
use crate::geo::GroundPoint;
use crate::orbit::CircularOrbit;
use crate::plane::{OrbitalPlane, SatelliteId};
use crate::units::{Minutes, Radians};

/// A multi-plane LEO constellation.
///
/// [`Constellation::reference`] builds the paper's JPL RF-geolocation
/// design: 7 planes × (14 active + 2 in-orbit spares), θ = 90 min,
/// Tc = 9 min. Custom designs are built with [`ConstellationBuilder`].
///
/// # Examples
///
/// ```
/// use oaq_orbit::Constellation;
/// let c = Constellation::reference();
/// assert_eq!(c.total_active(), 98);
/// assert_eq!(c.total_with_spares(), 112);
/// ```
#[derive(Debug, Clone)]
pub struct Constellation {
    planes: Vec<OrbitalPlane>,
    footprint: Footprint,
    period: Minutes,
}

/// Builder for [`Constellation`] (C-BUILDER).
///
/// # Examples
///
/// ```
/// use oaq_orbit::constellation::ConstellationBuilder;
/// use oaq_orbit::units::{Degrees, Minutes};
///
/// let c = ConstellationBuilder::new()
///     .planes(4)
///     .satellites_per_plane(10)
///     .spares_per_plane(1)
///     .period(Minutes(100.0))
///     .coverage_time(Minutes(8.0))
///     .inclination(Degrees(70.0))
///     .build();
/// assert_eq!(c.total_active(), 40);
/// ```
#[derive(Debug, Clone)]
pub struct ConstellationBuilder {
    planes: usize,
    satellites_per_plane: usize,
    spares_per_plane: usize,
    period: Minutes,
    coverage_time: Minutes,
    inclination: crate::units::Degrees,
    earth_rotation: bool,
}

impl Default for ConstellationBuilder {
    fn default() -> Self {
        ConstellationBuilder {
            planes: 7,
            satellites_per_plane: 14,
            spares_per_plane: 2,
            period: Minutes(90.0),
            coverage_time: Minutes(9.0),
            inclination: crate::units::Degrees(85.0),
            earth_rotation: false,
        }
    }
}

impl ConstellationBuilder {
    /// Starts from the reference-design defaults.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of orbital planes.
    pub fn planes(&mut self, n: usize) -> &mut Self {
        self.planes = n;
        self
    }

    /// Active satellites per plane.
    pub fn satellites_per_plane(&mut self, n: usize) -> &mut Self {
        self.satellites_per_plane = n;
        self
    }

    /// In-orbit spares per plane.
    pub fn spares_per_plane(&mut self, n: usize) -> &mut Self {
        self.spares_per_plane = n;
        self
    }

    /// Orbit period θ.
    pub fn period(&mut self, theta: Minutes) -> &mut Self {
        self.period = theta;
        self
    }

    /// Single-satellite coverage time Tc (sets the footprint size).
    pub fn coverage_time(&mut self, tc: Minutes) -> &mut Self {
        self.coverage_time = tc;
        self
    }

    /// Orbit inclination.
    pub fn inclination(&mut self, inc: crate::units::Degrees) -> &mut Self {
        self.inclination = inc;
        self
    }

    /// Whether ground tracks drift with earth rotation.
    pub fn earth_rotation(&mut self, on: bool) -> &mut Self {
        self.earth_rotation = on;
        self
    }

    /// Builds the constellation: planes get evenly spaced RAANs over π
    /// (a polar-star pattern) and staggered phase references.
    ///
    /// # Panics
    ///
    /// Panics if the plane count or satellites-per-plane is zero, or if the
    /// coverage time is incompatible with the period (see
    /// [`Footprint::from_coverage_time`]).
    #[must_use]
    pub fn build(&self) -> Constellation {
        assert!(self.planes > 0, "need at least one plane");
        let footprint = Footprint::from_coverage_time(self.coverage_time, self.period);
        let planes = (0..self.planes)
            .map(|p| {
                let raan = Radians(std::f64::consts::PI * p as f64 / self.planes as f64);
                let orbit = CircularOrbit::new(self.inclination.to_radians(), raan, self.period)
                    .with_earth_rotation(self.earth_rotation);
                // Stagger phases between adjacent planes for more uniform
                // coverage (Walker-style inter-plane phasing).
                let stagger = Radians(
                    std::f64::consts::TAU * p as f64
                        / (self.planes * self.satellites_per_plane) as f64,
                );
                OrbitalPlane::new(p, orbit, self.satellites_per_plane, self.spares_per_plane)
                    .with_phase_reference(stagger)
            })
            .collect();
        Constellation {
            planes,
            footprint,
            period: self.period,
        }
    }
}

impl Constellation {
    /// The paper's reference RF-geolocation constellation:
    /// 7 × (14 + 2 spares), θ = 90 min, Tc = 9 min.
    #[must_use]
    pub fn reference() -> Self {
        ConstellationBuilder::new().build()
    }

    /// Number of planes.
    #[must_use]
    pub fn num_planes(&self) -> usize {
        self.planes.len()
    }

    /// Immutable access to plane `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn plane(&self, i: usize) -> &OrbitalPlane {
        &self.planes[i]
    }

    /// Mutable access to plane `i` (to inject failures / deployments).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn plane_mut(&mut self, i: usize) -> &mut OrbitalPlane {
        &mut self.planes[i]
    }

    /// Iterates over planes.
    pub fn planes(&self) -> impl Iterator<Item = &OrbitalPlane> {
        self.planes.iter()
    }

    /// Total active satellites across planes.
    #[must_use]
    pub fn total_active(&self) -> usize {
        self.planes.iter().map(OrbitalPlane::active_count).sum()
    }

    /// Total satellites including unconsumed in-orbit spares.
    #[must_use]
    pub fn total_with_spares(&self) -> usize {
        self.total_active()
            + self
                .planes
                .iter()
                .map(OrbitalPlane::spares_remaining)
                .sum::<usize>()
    }

    /// The common footprint model.
    #[must_use]
    pub fn footprint(&self) -> &Footprint {
        &self.footprint
    }

    /// The common orbit period θ.
    #[must_use]
    pub fn period(&self) -> Minutes {
        self.period
    }

    /// Single-satellite coverage time Tc.
    #[must_use]
    pub fn coverage_time(&self) -> Minutes {
        self.footprint.coverage_time(self.period)
    }

    /// All satellites whose footprints cover `target` at time `t`.
    #[must_use]
    pub fn covering_satellites(&self, target: &GroundPoint, t: Minutes) -> Vec<SatelliteId> {
        let mut out = Vec::new();
        for plane in &self.planes {
            for (id, center) in plane.subsatellite_points(t) {
                if self.footprint.covers(&center, target) {
                    out.push(id);
                }
            }
        }
        out
    }

    /// Number of distinct satellites covering `target` at `t`.
    #[must_use]
    pub fn coverage_multiplicity(&self, target: &GroundPoint, t: Minutes) -> usize {
        self.covering_satellites(target, t).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::Degrees;

    #[test]
    fn reference_matches_paper_parameters() {
        let c = Constellation::reference();
        assert_eq!(c.num_planes(), 7);
        assert_eq!(c.total_active(), 98);
        assert_eq!(c.total_with_spares(), 112);
        assert!((c.coverage_time().value() - 9.0).abs() < 1e-9);
        assert!((c.period().value() - 90.0).abs() < 1e-12);
    }

    #[test]
    fn full_reference_covers_equator_and_midlatitudes() {
        let c = Constellation::reference();
        // Sample points along 0° and 30°N; with 98 active satellites the
        // paper states full earth coverage.
        for lat in [0.0, 30.0, 60.0] {
            for lon_step in 0..24 {
                let p = GroundPoint::from_degrees(Degrees(lat), Degrees(lon_step as f64 * 15.0));
                let mut covered = false;
                // A point may be momentarily uncovered at one instant but the
                // paper's claim is about the constellation sweep; check a few
                // instants within one revisit period.
                for i in 0..8 {
                    let t = Minutes(90.0 / 14.0 * i as f64 / 8.0);
                    if c.coverage_multiplicity(&p, t) >= 1 {
                        covered = true;
                        break;
                    }
                }
                assert!(
                    covered,
                    "point at lat {lat} lon {} never covered",
                    lon_step * 15
                );
            }
        }
    }

    #[test]
    fn high_latitudes_see_more_overlap_than_equator() {
        let c = Constellation::reference();
        let count_at = |lat: f64| -> usize {
            let mut multi = 0;
            for lon_step in 0..36 {
                let p = GroundPoint::from_degrees(Degrees(lat), Degrees(lon_step as f64 * 10.0));
                for i in 0..6 {
                    let t = Minutes(90.0 / 14.0 * i as f64 / 6.0);
                    if c.coverage_multiplicity(&p, t) >= 2 {
                        multi += 1;
                    }
                }
            }
            multi
        };
        assert!(
            count_at(70.0) > count_at(0.0),
            "overlap should concentrate at high latitude"
        );
    }

    #[test]
    fn builder_customization() {
        let c = ConstellationBuilder::new()
            .planes(3)
            .satellites_per_plane(5)
            .spares_per_plane(0)
            .build();
        assert_eq!(c.total_active(), 15);
        assert_eq!(c.total_with_spares(), 15);
    }

    #[test]
    fn plane_mut_allows_degradation() {
        let mut c = Constellation::reference();
        for _ in 0..6 {
            c.plane_mut(2).fail_one();
        }
        assert_eq!(c.plane(2).active_count(), 10);
        assert_eq!(c.total_active(), 94);
    }
}
