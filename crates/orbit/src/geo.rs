//! Spherical-earth geodesy.

use crate::units::{Degrees, Km, Radians};

/// Mean earth radius in kilometers (spherical model).
pub const EARTH_RADIUS: Km = Km(6371.0);

/// A point on the earth's surface (geocentric latitude/longitude).
///
/// # Examples
///
/// ```
/// use oaq_orbit::geo::GroundPoint;
/// use oaq_orbit::units::Degrees;
///
/// let la = GroundPoint::from_degrees(Degrees(34.05), Degrees(-118.24));
/// let ny = GroundPoint::from_degrees(Degrees(40.71), Degrees(-74.01));
/// let d = la.great_circle_distance(&ny);
/// assert!((d.value() - 3940.0).abs() < 50.0); // ~3944 km on a sphere
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GroundPoint {
    lat: Radians,
    lon: Radians,
}

impl GroundPoint {
    /// Creates a point from latitude/longitude in radians.
    ///
    /// Longitude is wrapped into `(-π, π]`.
    ///
    /// # Panics
    ///
    /// Panics if latitude is outside `[-π/2, π/2]` or either value is
    /// non-finite.
    #[must_use]
    pub fn new(lat: Radians, lon: Radians) -> Self {
        assert!(lat.is_finite() && lon.is_finite(), "non-finite coordinate");
        assert!(
            lat.value().abs() <= std::f64::consts::FRAC_PI_2 + 1e-12,
            "latitude out of range: {}",
            lat
        );
        GroundPoint {
            lat,
            lon: lon.wrap_pi(),
        }
    }

    /// Creates a point from degrees.
    #[must_use]
    pub fn from_degrees(lat: Degrees, lon: Degrees) -> Self {
        GroundPoint::new(lat.to_radians(), lon.to_radians())
    }

    /// Latitude in radians.
    #[must_use]
    pub fn lat(&self) -> Radians {
        self.lat
    }

    /// Longitude in radians, in `(-π, π]`.
    #[must_use]
    pub fn lon(&self) -> Radians {
        self.lon
    }

    /// Central angle between two points (haversine, numerically stable for
    /// small separations).
    #[must_use]
    pub fn central_angle(&self, other: &GroundPoint) -> Radians {
        let dlat = (other.lat - self.lat).value();
        let dlon = (other.lon - self.lon).wrap_pi().value();
        let a = (dlat / 2.0).sin().powi(2)
            + self.lat.cos() * other.lat.cos() * (dlon / 2.0).sin().powi(2);
        Radians(2.0 * a.sqrt().min(1.0).asin())
    }

    /// Great-circle surface distance.
    #[must_use]
    pub fn great_circle_distance(&self, other: &GroundPoint) -> Km {
        EARTH_RADIUS * self.central_angle(other).value()
    }

    /// The unit position vector in earth-centered coordinates
    /// (x toward lon 0 on the equator, z toward the north pole).
    #[must_use]
    pub fn unit_vector(&self) -> [f64; 3] {
        [
            self.lat.cos() * self.lon.cos(),
            self.lat.cos() * self.lon.sin(),
            self.lat.sin(),
        ]
    }

    /// Reconstructs a point from a (not necessarily unit) direction vector.
    ///
    /// # Panics
    ///
    /// Panics on the zero vector.
    #[must_use]
    pub fn from_vector(v: [f64; 3]) -> Self {
        let n = (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt();
        assert!(n > 0.0, "zero direction vector");
        let lat = Radians((v[2] / n).clamp(-1.0, 1.0).asin());
        let lon = Radians(v[1].atan2(v[0]));
        GroundPoint::new(lat, lon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn distance_to_self_is_zero() {
        let p = GroundPoint::from_degrees(Degrees(30.0), Degrees(45.0));
        assert_eq!(p.great_circle_distance(&p), Km(0.0));
    }

    #[test]
    fn antipodal_is_half_circumference() {
        let a = GroundPoint::from_degrees(Degrees(0.0), Degrees(0.0));
        let b = GroundPoint::from_degrees(Degrees(0.0), Degrees(180.0));
        let d = a.great_circle_distance(&b);
        assert!((d.value() - PI * EARTH_RADIUS.value()).abs() < 1e-6);
    }

    #[test]
    fn pole_to_equator_is_quarter_circle() {
        let pole = GroundPoint::new(Radians(FRAC_PI_2), Radians(0.0));
        let eq = GroundPoint::new(Radians(0.0), Radians(2.0));
        assert!((pole.central_angle(&eq).value() - FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn unit_vector_roundtrip() {
        for (lat, lon) in [(10.0, 20.0), (-45.0, 170.0), (89.0, -1.0)] {
            let p = GroundPoint::from_degrees(Degrees(lat), Degrees(lon));
            let q = GroundPoint::from_vector(p.unit_vector());
            assert!(p.central_angle(&q).value() < 1e-10);
        }
    }

    #[test]
    fn longitude_wraps() {
        let p = GroundPoint::from_degrees(Degrees(0.0), Degrees(270.0));
        assert!((p.lon().to_degrees().value() + 90.0).abs() < 1e-9);
    }

    #[test]
    fn central_angle_symmetric() {
        let a = GroundPoint::from_degrees(Degrees(12.0), Degrees(34.0));
        let b = GroundPoint::from_degrees(Degrees(-5.0), Degrees(120.0));
        assert!((a.central_angle(&b).value() - b.central_angle(&a).value()).abs() < 1e-14);
    }

    #[test]
    #[should_panic(expected = "latitude out of range")]
    fn invalid_latitude_rejected() {
        let _ = GroundPoint::new(Radians(2.0), Radians(0.0));
    }
}
