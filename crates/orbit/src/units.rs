//! Dimensioned newtypes for orbital quantities.
//!
//! Mixing minutes with radians or kilometers with degrees is the classic
//! orbital-software bug; these zero-cost wrappers keep interpretations
//! statically distinct (C-NEWTYPE).

use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

macro_rules! scalar_newtype {
    ($(#[$doc:meta])* $name:ident, $unit:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        #[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
        pub struct $name(pub f64);

        impl $name {
            /// The zero value.
            pub const ZERO: $name = $name(0.0);

            /// Returns the raw scalar value.
            #[must_use]
            pub fn value(self) -> f64 {
                self.0
            }

            /// Absolute value.
            #[must_use]
            pub fn abs(self) -> $name {
                $name(self.0.abs())
            }

            /// `true` when the value is finite (not NaN/∞).
            #[must_use]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl Add for $name {
            type Output = $name;
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl Sub for $name {
            type Output = $name;
            fn sub(self, rhs: $name) -> $name {
                $name(self.0 - rhs.0)
            }
        }

        impl Neg for $name {
            type Output = $name;
            fn neg(self) -> $name {
                $name(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = $name;
            fn mul(self, rhs: f64) -> $name {
                $name(self.0 * rhs)
            }
        }

        impl Div<f64> for $name {
            type Output = $name;
            fn div(self, rhs: f64) -> $name {
                $name(self.0 / rhs)
            }
        }

        impl Div for $name {
            type Output = f64;
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!("{:.4}", $unit), self.0)
            }
        }
    };
}

scalar_newtype!(
    /// A duration or instant measured in minutes (the paper's time unit for
    /// τ, Tc, Tr, µ⁻¹ and ν⁻¹).
    Minutes,
    "min"
);

scalar_newtype!(
    /// A distance in kilometers.
    Km,
    "km"
);

scalar_newtype!(
    /// An angle in radians.
    Radians,
    "rad"
);

scalar_newtype!(
    /// An angle in degrees.
    Degrees,
    "deg"
);

impl Radians {
    /// Converts to degrees.
    #[must_use]
    pub fn to_degrees(self) -> Degrees {
        Degrees(self.0.to_degrees())
    }

    /// Wraps into `[0, 2π)`.
    #[must_use]
    pub fn wrap_two_pi(self) -> Radians {
        let two_pi = std::f64::consts::TAU;
        let mut x = self.0 % two_pi;
        if x < 0.0 {
            x += two_pi;
        }
        Radians(x)
    }

    /// Wraps into `(-π, π]`.
    #[must_use]
    pub fn wrap_pi(self) -> Radians {
        let w = self.wrap_two_pi().0;
        if w > std::f64::consts::PI {
            Radians(w - std::f64::consts::TAU)
        } else {
            Radians(w)
        }
    }

    /// Sine.
    #[must_use]
    pub fn sin(self) -> f64 {
        self.0.sin()
    }

    /// Cosine.
    #[must_use]
    pub fn cos(self) -> f64 {
        self.0.cos()
    }
}

impl Degrees {
    /// Converts to radians.
    #[must_use]
    pub fn to_radians(self) -> Radians {
        Radians(self.0.to_radians())
    }
}

impl From<Degrees> for Radians {
    fn from(d: Degrees) -> Radians {
        d.to_radians()
    }
}

impl From<Radians> for Degrees {
    fn from(r: Radians) -> Degrees {
        r.to_degrees()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn arithmetic_preserves_units() {
        let t = Minutes(3.0) + Minutes(4.5);
        assert_eq!(t, Minutes(7.5));
        assert_eq!(Minutes(9.0) / Minutes(3.0), 3.0);
        assert_eq!(Km(2.0) * 3.0, Km(6.0));
        assert_eq!(-Minutes(1.0), Minutes(-1.0));
    }

    #[test]
    fn degree_radian_roundtrip() {
        let d = Degrees(30.0);
        let back: Degrees = Radians::from(d).into();
        assert!((back.value() - 30.0).abs() < 1e-12);
    }

    #[test]
    fn wrap_two_pi_handles_negatives() {
        assert!((Radians(-PI / 2.0).wrap_two_pi().value() - 1.5 * PI).abs() < 1e-12);
        assert!((Radians(5.0 * PI).wrap_two_pi().value() - PI).abs() < 1e-12);
    }

    #[test]
    fn wrap_pi_is_symmetric() {
        assert!((Radians(1.5 * PI).wrap_pi().value() + 0.5 * PI).abs() < 1e-12);
        assert!((Radians(0.25 * PI).wrap_pi().value() - 0.25 * PI).abs() < 1e-12);
    }

    #[test]
    fn display_includes_unit() {
        assert_eq!(format!("{}", Minutes(9.0)), "9.0000min");
        assert_eq!(format!("{}", Km(1.5)), "1.5000km");
    }

    #[test]
    fn abs_and_finite() {
        assert_eq!(Minutes(-2.0).abs(), Minutes(2.0));
        assert!(Minutes(1.0).is_finite());
        assert!(!Minutes(f64::NAN).is_finite());
    }
}
