//! Overlap/underlap classification of footprint trajectories.
//!
//! The geometric regime of an orbital plane — whether adjacent footprints
//! overlap (`Tr[k] < Tc`) or underlap (`Tr[k] ≥ Tc`) — determines which QoS
//! levels are reachable (paper Table 1, Figures 2 and 5). This module is the
//! geometric side; the probabilistic side lives in `oaq-analytic`.

use crate::units::Minutes;

/// The geometric regime of a footprint trajectory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Regime {
    /// `Tr[k] < Tc`: adjacent footprints overlap; simultaneous dual coverage
    /// is possible on the center line.
    Overlapping,
    /// `Tr[k] ≥ Tc`: footprints are detached (or exactly tangent); at most
    /// one satellite covers a center-line point at a time.
    Underlapping,
}

/// Classifies a plane by revisit time vs coverage time.
///
/// # Examples
///
/// ```
/// use oaq_orbit::revisit::{classify, Regime};
/// use oaq_orbit::units::Minutes;
/// assert_eq!(classify(Minutes(90.0 / 14.0), Minutes(9.0)), Regime::Overlapping);
/// assert_eq!(classify(Minutes(9.0), Minutes(9.0)), Regime::Underlapping);
/// ```
#[must_use]
pub fn classify(revisit: Minutes, coverage: Minutes) -> Regime {
    if revisit.value() < coverage.value() {
        Regime::Overlapping
    } else {
        Regime::Underlapping
    }
}

/// Revisit time `Tr[k] = θ / k`.
///
/// # Panics
///
/// Panics if `k == 0`.
#[must_use]
pub fn revisit_time(theta: Minutes, k: usize) -> Minutes {
    assert!(k > 0, "revisit time undefined for k = 0");
    Minutes(theta.value() / k as f64)
}

/// The smallest plane capacity at which footprints still overlap, i.e. the
/// minimal `k` with `θ/k < Tc`.
///
/// For the reference constellation (θ = 90, Tc = 9) this is 11, matching the
/// paper's statement that underlapping begins below `k = 11`.
#[must_use]
pub fn min_overlapping_capacity(theta: Minutes, tc: Minutes) -> usize {
    let k = (theta.value() / tc.value()).floor() as usize;
    // θ/k < Tc  ⇔  k > θ/Tc; the floor needs adjusting when θ/Tc is integral.
    if (theta.value() / k as f64) < tc.value() {
        k
    } else {
        k + 1
    }
}

/// Length of the center-line coverage gap per revisit period: `Tr − Tc` when
/// underlapping, zero otherwise.
#[must_use]
pub fn coverage_gap(revisit: Minutes, coverage: Minutes) -> Minutes {
    Minutes((revisit.value() - coverage.value()).max(0.0))
}

/// Fraction of each revisit period during which the center line sees **two**
/// satellites simultaneously: `(Tc − Tr)/Tr` clamped to `[0, 1]` in the
/// overlapping regime, zero when underlapping.
///
/// This generalizes the paper's dual-coverage window to arbitrary plane
/// designs — it is the geometric ceiling on the time-fraction any single
/// plane can offer QoS level 2 on its center line.
///
/// # Examples
///
/// ```
/// use oaq_orbit::revisit::{overlap_fraction, revisit_time};
/// use oaq_orbit::units::Minutes;
/// // Reference plane at full strength: Tr = 90/14 ≈ 6.43, Tc = 9.
/// let f = overlap_fraction(revisit_time(Minutes(90.0), 14), Minutes(9.0));
/// assert!((f - 0.4).abs() < 1e-12);
/// ```
#[must_use]
pub fn overlap_fraction(revisit: Minutes, coverage: Minutes) -> f64 {
    let tr = revisit.value();
    let tc = coverage.value();
    if tr <= 0.0 {
        return 0.0;
    }
    ((tc - tr) / tr).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    const THETA: Minutes = Minutes(90.0);
    const TC: Minutes = Minutes(9.0);

    #[test]
    fn reference_underlap_threshold_is_11() {
        assert_eq!(min_overlapping_capacity(THETA, TC), 11);
        assert_eq!(classify(revisit_time(THETA, 11), TC), Regime::Overlapping);
        assert_eq!(classify(revisit_time(THETA, 10), TC), Regime::Underlapping);
    }

    #[test]
    fn tangent_case_counts_as_underlapping() {
        // k = 10: Tr = 9 = Tc exactly; the paper's definition uses Tr ≥ Tc.
        assert_eq!(classify(Minutes(9.0), Minutes(9.0)), Regime::Underlapping);
    }

    #[test]
    fn gap_grows_as_capacity_shrinks() {
        let g9 = coverage_gap(revisit_time(THETA, 9), TC);
        let g10 = coverage_gap(revisit_time(THETA, 10), TC);
        assert_eq!(g10.value(), 0.0);
        assert!((g9.value() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn overlap_case_has_zero_gap() {
        assert_eq!(coverage_gap(Minutes(5.0), TC).value(), 0.0);
    }

    #[test]
    fn threshold_with_non_integral_ratio() {
        // θ/Tc = 11.25 → k = 11 still underlaps (90/11 ≈ 8.18 < 8.0? no):
        // with Tc = 8, Tr[11] ≈ 8.18 ≥ 8 → underlapping; need k = 12.
        assert_eq!(min_overlapping_capacity(Minutes(90.0), Minutes(8.0)), 12);
    }

    #[test]
    #[should_panic(expected = "k = 0")]
    fn zero_capacity_panics() {
        let _ = revisit_time(THETA, 0);
    }

    #[test]
    fn overlap_fraction_tracks_regime() {
        // Full reference plane: Tr = 90/14, Tc = 9 → 40% dual-coverage time.
        let f = overlap_fraction(revisit_time(THETA, 14), TC);
        assert!((f - 0.4).abs() < 1e-12);
        // Underlapping (k = 9) and tangent (k = 10) designs get zero.
        assert_eq!(overlap_fraction(revisit_time(THETA, 9), TC), 0.0);
        assert_eq!(overlap_fraction(revisit_time(THETA, 10), TC), 0.0);
        // A footprint dwarfing the revisit period saturates at 1.
        assert_eq!(overlap_fraction(Minutes(1.0), Minutes(50.0)), 1.0);
        // Degenerate revisit time is handled, not NaN.
        assert_eq!(overlap_fraction(Minutes(0.0), TC), 0.0);
    }
}
