//! Earth-coverage analysis by grid sampling.
//!
//! Reproduces the qualitative geometry claims of the paper's Figure 1
//! discussion: the ratio of overlapped to single coverage is lowest at the
//! equator and rises toward the poles, and at ~30° latitude the track
//! center line is the least-overlapped location.

use crate::constellation::Constellation;
use crate::geo::GroundPoint;
use crate::revisit::{classify, coverage_gap, overlap_fraction, revisit_time, Regime};
use crate::units::{Degrees, Minutes};

/// Per-plane geometric summary of a constellation design: the quantities
/// the analytic QoS stack consumes (`Tr[k]`, `Tc`, regime, overlap
/// fraction), generalized from the paper's 7 × 14 constants to whatever the
/// builder produced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignGeometry {
    /// Plane index.
    pub plane: usize,
    /// Active satellites `k` in the plane.
    pub capacity: usize,
    /// Revisit time `Tr[k] = θ/k`.
    pub revisit: Minutes,
    /// Single-satellite coverage time `Tc`.
    pub coverage_time: Minutes,
    /// Overlapping vs underlapping.
    pub regime: Regime,
    /// Fraction of the revisit period with dual center-line coverage.
    pub overlap_fraction: f64,
    /// Center-line gap per revisit period (zero when overlapping).
    pub coverage_gap: Minutes,
}

/// Summarizes every plane of a constellation.
///
/// # Examples
///
/// ```
/// use oaq_orbit::coverage::design_geometry;
/// use oaq_orbit::revisit::Regime;
/// use oaq_orbit::Constellation;
/// let rows = design_geometry(&Constellation::reference());
/// assert_eq!(rows.len(), 7);
/// assert_eq!(rows[0].regime, Regime::Overlapping);
/// assert!((rows[0].overlap_fraction - 0.4).abs() < 1e-12);
/// ```
#[must_use]
pub fn design_geometry(c: &Constellation) -> Vec<DesignGeometry> {
    let tc = c.coverage_time();
    c.planes()
        .map(|plane| {
            let k = plane.active_count().max(1);
            let tr = revisit_time(c.period(), k);
            DesignGeometry {
                plane: plane.index(),
                capacity: plane.active_count(),
                revisit: tr,
                coverage_time: tc,
                regime: classify(tr, tc),
                overlap_fraction: overlap_fraction(tr, tc),
                coverage_gap: coverage_gap(tr, tc),
            }
        })
        .collect()
}

/// Summary of coverage over a latitude circle, averaged over sample times.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatitudeBandCoverage {
    /// The sampled latitude.
    pub latitude: Degrees,
    /// Fraction of (point, time) samples covered by at least one satellite.
    pub covered_fraction: f64,
    /// Fraction of (point, time) samples covered by two or more satellites.
    pub overlapped_fraction: f64,
    /// Mean number of covering satellites per sample.
    pub mean_multiplicity: f64,
}

/// Grid-sampling coverage analyzer.
///
/// # Examples
///
/// ```
/// use oaq_orbit::{Constellation, coverage::CoverageAnalysis};
/// let c = Constellation::reference();
/// let cov = CoverageAnalysis::new(36, 8).latitude_band(&c, oaq_orbit::Degrees(30.0));
/// assert!(cov.covered_fraction > 0.95);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct CoverageAnalysis {
    longitude_samples: usize,
    time_samples: usize,
}

impl CoverageAnalysis {
    /// Creates an analyzer sampling `longitude_samples` points per latitude
    /// circle at `time_samples` instants spread over one revisit period.
    ///
    /// # Panics
    ///
    /// Panics if either count is zero.
    #[must_use]
    pub fn new(longitude_samples: usize, time_samples: usize) -> Self {
        assert!(
            longitude_samples > 0 && time_samples > 0,
            "sample counts must be positive"
        );
        CoverageAnalysis {
            longitude_samples,
            time_samples,
        }
    }

    /// Analyzes coverage along one latitude circle.
    #[must_use]
    pub fn latitude_band(&self, c: &Constellation, latitude: Degrees) -> LatitudeBandCoverage {
        // Spread sample instants over the densest plane's revisit period so
        // the time average is over one full geometric cycle.
        let max_k = c
            .planes()
            .map(crate::plane::OrbitalPlane::active_count)
            .max()
            .unwrap_or(1)
            .max(1);
        let period = c.period().value() / max_k as f64;
        let mut covered = 0usize;
        let mut overlapped = 0usize;
        let mut multiplicity_sum = 0usize;
        let total = self.longitude_samples * self.time_samples;
        for li in 0..self.longitude_samples {
            let lon = Degrees(360.0 * li as f64 / self.longitude_samples as f64 - 180.0);
            let p = GroundPoint::from_degrees(latitude, lon);
            for ti in 0..self.time_samples {
                let t = Minutes(period * ti as f64 / self.time_samples as f64);
                let m = c.coverage_multiplicity(&p, t);
                multiplicity_sum += m;
                if m >= 1 {
                    covered += 1;
                }
                if m >= 2 {
                    overlapped += 1;
                }
            }
        }
        LatitudeBandCoverage {
            latitude,
            covered_fraction: covered as f64 / total as f64,
            overlapped_fraction: overlapped as f64 / total as f64,
            mean_multiplicity: multiplicity_sum as f64 / total as f64,
        }
    }

    /// Analyzes several latitude bands at once (equator to pole).
    #[must_use]
    pub fn latitude_profile(
        &self,
        c: &Constellation,
        latitudes: &[Degrees],
    ) -> Vec<LatitudeBandCoverage> {
        latitudes
            .iter()
            .map(|&lat| self.latitude_band(c, lat))
            .collect()
    }
}

impl Default for CoverageAnalysis {
    fn default() -> Self {
        CoverageAnalysis::new(72, 12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_rises_toward_poles() {
        let c = Constellation::reference();
        let an = CoverageAnalysis::new(24, 6);
        let eq = an.latitude_band(&c, Degrees(0.0));
        let hi = an.latitude_band(&c, Degrees(75.0));
        assert!(
            hi.overlapped_fraction > eq.overlapped_fraction,
            "poleward overlap {} should exceed equatorial {}",
            hi.overlapped_fraction,
            eq.overlapped_fraction
        );
        assert!(hi.mean_multiplicity > eq.mean_multiplicity);
    }

    #[test]
    fn full_constellation_covers_everything_it_samples() {
        let c = Constellation::reference();
        let an = CoverageAnalysis::new(24, 4);
        for lat in [0.0, 30.0, 55.0] {
            let band = an.latitude_band(&c, Degrees(lat));
            assert!(
                band.covered_fraction > 0.9,
                "lat {lat}: covered fraction {}",
                band.covered_fraction
            );
        }
    }

    #[test]
    fn degraded_plane_reduces_coverage() {
        let mut c = Constellation::reference();
        let an = CoverageAnalysis::new(24, 6);
        let before = an.latitude_band(&c, Degrees(30.0)).mean_multiplicity;
        for p in 0..7 {
            for _ in 0..6 {
                c.plane_mut(p).fail_one();
            }
        }
        let after = an.latitude_band(&c, Degrees(30.0)).mean_multiplicity;
        assert!(after < before, "degradation must reduce multiplicity");
    }

    #[test]
    fn profile_returns_one_entry_per_latitude() {
        let c = Constellation::reference();
        let an = CoverageAnalysis::new(8, 2);
        let prof = an.latitude_profile(&c, &[Degrees(0.0), Degrees(45.0)]);
        assert_eq!(prof.len(), 2);
        assert_eq!(prof[1].latitude, Degrees(45.0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_samples_rejected() {
        let _ = CoverageAnalysis::new(0, 4);
    }

    #[test]
    fn design_geometry_follows_degradation() {
        let mut c = Constellation::reference();
        // First two failures consume the in-orbit spares; six more drop the
        // active complement from 14 to 8.
        for _ in 0..8 {
            c.plane_mut(3).fail_one();
        }
        let rows = design_geometry(&c);
        assert_eq!(rows.len(), 7);
        // Untouched plane: k = 14, overlapping with 40% dual coverage.
        assert_eq!(rows[0].capacity, 14);
        assert_eq!(rows[0].regime, Regime::Overlapping);
        assert!((rows[0].overlap_fraction - 0.4).abs() < 1e-12);
        assert_eq!(rows[0].coverage_gap.value(), 0.0);
        // Degraded plane: k = 8 → Tr = 11.25 ≥ Tc = 9, underlapping.
        assert_eq!(rows[3].capacity, 8);
        assert_eq!(rows[3].regime, Regime::Underlapping);
        assert_eq!(rows[3].overlap_fraction, 0.0);
        assert!((rows[3].coverage_gap.value() - 2.25).abs() < 1e-12);
    }

    #[test]
    fn design_geometry_covers_walker_presets() {
        for preset in crate::constellation::Preset::all() {
            let c = preset.build();
            let rows = design_geometry(&c);
            assert_eq!(rows.len(), c.num_planes(), "{}", preset.name());
            for row in &rows {
                // Every preset is chosen to sit in the overlapping regime at
                // full strength (the analytic model's domain).
                assert_eq!(row.regime, Regime::Overlapping, "{}", preset.name());
                assert!(row.overlap_fraction > 0.0 && row.overlap_fraction <= 1.0);
            }
        }
    }
}
