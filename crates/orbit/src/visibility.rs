//! Ground-station visibility and contact-window prediction.
//!
//! The OAQ protocol ends with an alert sent "to the ground"; a real
//! deployment needs to know *when* a satellite can reach a ground station.
//! This module predicts contact windows: intervals during which a satellite
//! is above a site's minimum elevation angle.

use crate::geo::{GroundPoint, EARTH_RADIUS};
use crate::orbit::CircularOrbit;
use crate::units::{Km, Minutes, Radians};

/// Elevation angle of a satellite at altitude `altitude` whose sub-satellite
/// point is `central_angle` away from the observer (spherical earth):
///
/// `tan ε = (cos γ − R/(R+h)) / sin γ`.
///
/// Returns −π/2 at the antipode limit; π/2 directly overhead.
///
/// # Panics
///
/// Panics if the altitude is non-positive or the angle is outside `[0, π]`.
#[must_use]
pub fn elevation_angle(central_angle: Radians, altitude: Km) -> Radians {
    assert!(altitude.value() > 0.0, "altitude must be positive");
    let g = central_angle.value();
    assert!(
        (0.0..=std::f64::consts::PI).contains(&g),
        "central angle out of [0, π]"
    );
    if g == 0.0 {
        return Radians(std::f64::consts::FRAC_PI_2);
    }
    let rho = EARTH_RADIUS.value() / (EARTH_RADIUS.value() + altitude.value());
    Radians(((g.cos() - rho) / g.sin()).atan())
}

/// The maximum central angle at which a satellite at `altitude` is still at
/// or above `min_elevation` — the visibility cone's ground radius.
///
/// # Panics
///
/// Panics on non-positive altitude or elevation outside `[0, π/2)`.
#[must_use]
pub fn visibility_radius(altitude: Km, min_elevation: Radians) -> Radians {
    assert!(altitude.value() > 0.0, "altitude must be positive");
    let e = min_elevation.value();
    assert!(
        (0.0..std::f64::consts::FRAC_PI_2).contains(&e),
        "elevation out of [0, π/2)"
    );
    let rho = EARTH_RADIUS.value() / (EARTH_RADIUS.value() + altitude.value());
    Radians((rho * e.cos()).acos() - e)
}

/// One predicted contact between a satellite and a ground site.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContactWindow {
    /// Rise time (elevation crosses the mask upward).
    pub rise: Minutes,
    /// Set time.
    pub set: Minutes,
    /// Maximum elevation reached during the contact.
    pub max_elevation: Radians,
}

impl ContactWindow {
    /// Contact duration.
    #[must_use]
    pub fn duration(&self) -> Minutes {
        Minutes(self.set.value() - self.rise.value())
    }
}

/// Predicts the contact windows of one satellite over `site` within
/// `[0, horizon]`, for a satellite flying `altitude` above the (spherical)
/// earth with elevation mask `min_elevation`.
///
/// Scans at `step` resolution and refines each crossing by bisection to
/// ~1e-6 min. Windows clipped by the horizon are reported as seen.
///
/// # Panics
///
/// Panics on non-positive horizon/step or invalid altitude/elevation.
#[must_use]
pub fn predict_contacts(
    orbit: &CircularOrbit,
    phase0: Radians,
    site: &GroundPoint,
    altitude: Km,
    min_elevation: Radians,
    horizon: Minutes,
    step: Minutes,
) -> Vec<ContactWindow> {
    assert!(horizon.value() > 0.0, "horizon must be positive");
    assert!(step.value() > 0.0, "step must be positive");
    let max_angle = visibility_radius(altitude, min_elevation).value();
    let visible = |t: f64| -> bool {
        let sub = orbit.subsatellite_point(phase0, Minutes(t));
        sub.central_angle(site).value() <= max_angle
    };
    let elevation_at = |t: f64| -> f64 {
        let sub = orbit.subsatellite_point(phase0, Minutes(t));
        elevation_angle(sub.central_angle(site), altitude).value()
    };
    let refine = |mut lo: f64, mut hi: f64| -> f64 {
        // Invariant: visibility differs between lo and hi.
        let lo_vis = visible(lo);
        for _ in 0..40 {
            let mid = 0.5 * (lo + hi);
            if visible(mid) == lo_vis {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    };

    let mut windows = Vec::new();
    let mut t = 0.0;
    let mut was_visible = visible(0.0);
    let mut rise = if was_visible { Some(0.0) } else { None };
    while t < horizon.value() {
        let next = (t + step.value()).min(horizon.value());
        let now_visible = visible(next);
        if now_visible != was_visible {
            let crossing = refine(t, next);
            if now_visible {
                rise = Some(crossing);
            } else if let Some(r) = rise.take() {
                windows.push((r, crossing));
            }
            was_visible = now_visible;
        }
        t = next;
    }
    if let Some(r) = rise {
        windows.push((r, horizon.value()));
    }

    windows
        .into_iter()
        .map(|(r, s)| {
            // Peak elevation by coarse scan inside the window.
            let mut best = f64::MIN;
            let n = 32;
            for i in 0..=n {
                let tt = r + (s - r) * f64::from(i) / f64::from(n);
                best = best.max(elevation_at(tt));
            }
            ContactWindow {
                rise: Minutes(r),
                set: Minutes(s),
                max_elevation: Radians(best),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::Degrees;

    const ALT: Km = Km(780.0);

    #[test]
    fn overhead_is_ninety_degrees() {
        let e = elevation_angle(Radians(0.0), ALT);
        assert!((e.value() - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn elevation_decreases_with_distance() {
        let mut last = std::f64::consts::FRAC_PI_2;
        for deg in [1.0, 5.0, 10.0, 20.0, 40.0] {
            let e = elevation_angle(Degrees(deg).to_radians(), ALT).value();
            assert!(e < last);
            last = e;
        }
    }

    #[test]
    fn visibility_radius_roundtrips_elevation() {
        // The elevation exactly at the visibility-cone edge must equal the
        // mask angle that defined it.
        for mask_deg in [0.0, 5.0, 10.0, 30.0] {
            let mask = Degrees(mask_deg).to_radians();
            let radius = visibility_radius(ALT, mask);
            let e = elevation_angle(radius, ALT);
            assert!(
                (e.value() - mask.value()).abs() < 1e-9,
                "mask {mask_deg}: edge elevation {}",
                e.value()
            );
        }
    }

    #[test]
    fn polar_orbit_contacts_a_polar_site_every_revolution() {
        let orbit = CircularOrbit::new(Degrees(90.0).to_radians(), Radians(0.0), Minutes(100.0))
            .with_earth_rotation(false);
        let site = GroundPoint::from_degrees(Degrees(85.0), Degrees(0.0));
        let contacts = predict_contacts(
            &orbit,
            Radians(0.0),
            &site,
            ALT,
            Degrees(5.0).to_radians(),
            Minutes(500.0),
            Minutes(0.5),
        );
        assert_eq!(contacts.len(), 5, "one pass per 100-minute revolution");
        for c in &contacts {
            assert!(c.duration().value() > 1.0 && c.duration().value() < 20.0);
            assert!(c.max_elevation.value() > Degrees(5.0).to_radians().value());
        }
        // Passes are spaced by the orbit period.
        let spacing = contacts[1].rise.value() - contacts[0].rise.value();
        assert!((spacing - 100.0).abs() < 0.5, "spacing {spacing}");
    }

    #[test]
    fn equatorial_site_unseen_by_this_polar_pass_geometry() {
        // A site 90° of longitude away from a non-rotating polar track is
        // never within a LEO footprint.
        let orbit = CircularOrbit::new(Degrees(90.0).to_radians(), Radians(0.0), Minutes(100.0))
            .with_earth_rotation(false);
        let site = GroundPoint::from_degrees(Degrees(0.0), Degrees(90.0));
        let contacts = predict_contacts(
            &orbit,
            Radians(0.0),
            &site,
            ALT,
            Degrees(5.0).to_radians(),
            Minutes(300.0),
            Minutes(0.5),
        );
        assert!(contacts.is_empty());
    }

    #[test]
    fn higher_mask_shortens_contacts() {
        let orbit = CircularOrbit::new(Degrees(90.0).to_radians(), Radians(0.0), Minutes(100.0))
            .with_earth_rotation(false);
        let site = GroundPoint::from_degrees(Degrees(80.0), Degrees(0.0));
        let long = predict_contacts(
            &orbit,
            Radians(0.0),
            &site,
            ALT,
            Degrees(5.0).to_radians(),
            Minutes(100.0),
            Minutes(0.25),
        );
        let short = predict_contacts(
            &orbit,
            Radians(0.0),
            &site,
            ALT,
            Degrees(25.0).to_radians(),
            Minutes(100.0),
            Minutes(0.25),
        );
        assert!(!long.is_empty() && !short.is_empty());
        assert!(short[0].duration().value() < long[0].duration().value());
    }

    #[test]
    fn window_clipped_at_horizon_is_reported() {
        let orbit = CircularOrbit::new(Degrees(90.0).to_radians(), Radians(0.0), Minutes(100.0))
            .with_earth_rotation(false);
        // The satellite starts at the equator ascending node; a site right
        // there sees it immediately.
        let site = GroundPoint::from_degrees(Degrees(0.0), Degrees(0.0));
        let contacts = predict_contacts(
            &orbit,
            Radians(0.0),
            &site,
            ALT,
            Degrees(5.0).to_radians(),
            Minutes(2.0),
            Minutes(0.25),
        );
        assert_eq!(contacts.len(), 1);
        assert_eq!(contacts[0].rise.value(), 0.0);
        assert_eq!(contacts[0].set.value(), 2.0, "clipped at the horizon");
    }
}
