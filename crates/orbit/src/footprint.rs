//! Satellite footprints and coverage time.

use crate::geo::{GroundPoint, EARTH_RADIUS};
use crate::units::{Km, Minutes, Radians};

/// A satellite's coverage cone projected on the earth: every ground point
/// within `half_angle` (earth-central angle) of the sub-satellite point is
/// covered.
///
/// The paper's *coverage time* Tc — the longest time a ground point on the
/// track center line stays inside one footprint — relates the footprint size
/// to the orbit period θ by `Tc = θ · half_angle / π` (the center crosses a
/// diameter of `2·half_angle` at angular rate `2π/θ`). The reference
/// constellation's Tc = 9 min with θ = 90 min corresponds to an 18° central
/// half-angle.
///
/// # Examples
///
/// ```
/// use oaq_orbit::footprint::Footprint;
/// use oaq_orbit::units::Minutes;
///
/// let fp = Footprint::from_coverage_time(Minutes(9.0), Minutes(90.0));
/// assert!((fp.half_angle().to_degrees().value() - 18.0).abs() < 1e-9);
/// assert!((fp.coverage_time(Minutes(90.0)).value() - 9.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Footprint {
    half_angle: Radians,
}

impl Footprint {
    /// Creates a footprint from an earth-central half-angle.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < half_angle < π/2`.
    #[must_use]
    pub fn from_half_angle(half_angle: Radians) -> Self {
        assert!(
            half_angle.value() > 0.0 && half_angle.value() < std::f64::consts::FRAC_PI_2,
            "half angle must be in (0, π/2)"
        );
        Footprint { half_angle }
    }

    /// Creates the footprint whose center-line coverage time is `tc` for an
    /// orbit of period `theta`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < tc < theta/2`.
    #[must_use]
    pub fn from_coverage_time(tc: Minutes, theta: Minutes) -> Self {
        assert!(
            tc.value() > 0.0 && tc.value() < theta.value() / 2.0,
            "coverage time must be in (0, θ/2)"
        );
        Footprint::from_half_angle(Radians(std::f64::consts::PI * (tc / theta)))
    }

    /// Creates a footprint from orbit altitude and minimum elevation angle,
    /// using the standard visibility geometry
    /// `half_angle = acos(R·cos ε / (R + h)) − ε`.
    ///
    /// # Panics
    ///
    /// Panics if altitude is non-positive or elevation is outside
    /// `[0, π/2)`.
    #[must_use]
    pub fn from_altitude_elevation(altitude: Km, min_elevation: Radians) -> Self {
        assert!(altitude.value() > 0.0, "altitude must be positive");
        let e = min_elevation.value();
        assert!(
            (0.0..std::f64::consts::FRAC_PI_2).contains(&e),
            "elevation out of range"
        );
        let r = EARTH_RADIUS.value();
        let gamma = (r * e.cos() / (r + altitude.value())).acos() - e;
        Footprint::from_half_angle(Radians(gamma))
    }

    /// The earth-central half-angle.
    #[must_use]
    pub fn half_angle(&self) -> Radians {
        self.half_angle
    }

    /// Radius of the coverage circle measured on the ground.
    #[must_use]
    pub fn ground_radius(&self) -> Km {
        EARTH_RADIUS * self.half_angle.value()
    }

    /// Center-line coverage time for an orbit of period `theta`.
    #[must_use]
    pub fn coverage_time(&self, theta: Minutes) -> Minutes {
        Minutes(theta.value() * self.half_angle.value() / std::f64::consts::PI)
    }

    /// `true` when `target` is inside the footprint centered at `center`.
    #[must_use]
    pub fn covers(&self, center: &GroundPoint, target: &GroundPoint) -> bool {
        center.central_angle(target).value() <= self.half_angle.value() + 1e-12
    }

    /// Time a ground point at cross-track offset `offset` (central angle from
    /// the track center line) stays covered, for period `theta`; zero when the
    /// point lies outside the swath.
    ///
    /// Derived from the chord geometry of the coverage circle.
    #[must_use]
    pub fn coverage_time_at_offset(&self, offset: Radians, theta: Minutes) -> Minutes {
        let g = self.half_angle.value();
        let d = offset.value().abs();
        if d >= g {
            return Minutes(0.0);
        }
        // Half-chord in central-angle terms on the sphere:
        // cos(g) = cos(d)·cos(half_chord).
        let cos_ratio = (g.cos() / d.cos()).clamp(-1.0, 1.0);
        let half_chord = cos_ratio.acos();
        Minutes(theta.value() * half_chord / std::f64::consts::PI)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::Degrees;

    #[test]
    fn reference_footprint_is_18_degrees() {
        let fp = Footprint::from_coverage_time(Minutes(9.0), Minutes(90.0));
        assert!((fp.half_angle().to_degrees().value() - 18.0).abs() < 1e-9);
        assert!((fp.ground_radius().value() - 2001.5).abs() < 1.0);
    }

    #[test]
    fn covers_is_reflexive_and_bounded() {
        let fp = Footprint::from_half_angle(Degrees(10.0).to_radians());
        let c = GroundPoint::from_degrees(Degrees(30.0), Degrees(0.0));
        assert!(fp.covers(&c, &c));
        let inside = GroundPoint::from_degrees(Degrees(39.0), Degrees(0.0));
        let outside = GroundPoint::from_degrees(Degrees(41.0), Degrees(0.0));
        assert!(fp.covers(&c, &inside));
        assert!(!fp.covers(&c, &outside));
    }

    #[test]
    fn offset_coverage_time_shrinks_to_zero_at_edge() {
        let fp = Footprint::from_coverage_time(Minutes(9.0), Minutes(90.0));
        let theta = Minutes(90.0);
        let center = fp.coverage_time_at_offset(Radians(0.0), theta);
        assert!((center.value() - 9.0).abs() < 1e-9);
        let mid = fp.coverage_time_at_offset(Degrees(9.0).to_radians(), theta);
        assert!(mid.value() > 0.0 && mid.value() < 9.0);
        let edge = fp.coverage_time_at_offset(Degrees(18.0).to_radians(), theta);
        assert_eq!(edge.value(), 0.0);
        let beyond = fp.coverage_time_at_offset(Degrees(25.0).to_radians(), theta);
        assert_eq!(beyond.value(), 0.0);
    }

    #[test]
    fn altitude_elevation_footprint_is_smaller_with_higher_elevation() {
        let lo = Footprint::from_altitude_elevation(Km(800.0), Degrees(5.0).to_radians());
        let hi = Footprint::from_altitude_elevation(Km(800.0), Degrees(20.0).to_radians());
        assert!(lo.half_angle().value() > hi.half_angle().value());
    }

    #[test]
    fn coverage_time_scales_with_period() {
        let fp = Footprint::from_half_angle(Degrees(18.0).to_radians());
        assert!((fp.coverage_time(Minutes(180.0)).value() - 18.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "coverage time must be in")]
    fn absurd_coverage_time_rejected() {
        let _ = Footprint::from_coverage_time(Minutes(60.0), Minutes(90.0));
    }
}
