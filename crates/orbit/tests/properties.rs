//! Property-based tests of geodesy and constellation geometry invariants.

use std::f64::consts::TAU;

use oaq_orbit::constellation::{WalkerConfig, WalkerPattern};
use oaq_orbit::footprint::Footprint;
use oaq_orbit::geo::GroundPoint;
use oaq_orbit::orbit::CircularOrbit;
use oaq_orbit::revisit::{classify, min_overlapping_capacity, revisit_time, Regime};
use oaq_orbit::units::{Degrees, Minutes, Radians};
use proptest::prelude::*;

/// A random valid Walker configuration (small enough to build quickly).
fn walker_config() -> impl Strategy<Value = WalkerConfig> {
    (
        (any::<bool>(), 1usize..12, 1usize..24),
        (0usize..3, 0usize..12, 10.0f64..170.0, 85.0f64..150.0),
    )
        .prop_map(
            |((star, planes, sats), (spares, f_raw, inc, period))| WalkerConfig {
                pattern: if star {
                    WalkerPattern::Star
                } else {
                    WalkerPattern::Delta
                },
                planes,
                satellites_per_plane: sats,
                spares_per_plane: spares,
                phasing_factor: f_raw % planes,
                inclination: Degrees(inc),
                period: Minutes(period),
                coverage_time: Minutes(period / 25.0),
                earth_rotation: false,
            },
        )
}

fn ground_point() -> impl Strategy<Value = GroundPoint> {
    (-89.9f64..89.9, -180.0f64..180.0)
        .prop_map(|(lat, lon)| GroundPoint::from_degrees(Degrees(lat), Degrees(lon)))
}

proptest! {
    #[test]
    fn central_angle_triangle_inequality(a in ground_point(), b in ground_point(), c in ground_point()) {
        let ab = a.central_angle(&b).value();
        let bc = b.central_angle(&c).value();
        let ac = a.central_angle(&c).value();
        prop_assert!(ac <= ab + bc + 1e-9);
    }

    #[test]
    fn central_angle_symmetry_and_identity(a in ground_point(), b in ground_point()) {
        prop_assert!((a.central_angle(&b).value() - b.central_angle(&a).value()).abs() < 1e-12);
        prop_assert!(a.central_angle(&a).value() < 1e-12);
    }

    #[test]
    fn unit_vector_roundtrip(p in ground_point()) {
        let q = GroundPoint::from_vector(p.unit_vector());
        prop_assert!(p.central_angle(&q).value() < 1e-9);
    }

    #[test]
    fn ground_track_latitude_bounded_by_inclination(
        inc_deg in 10.0f64..90.0,
        phase in 0.0f64..std::f64::consts::TAU,
        t in 0.0f64..500.0,
    ) {
        let orbit = CircularOrbit::new(
            Degrees(inc_deg).to_radians(),
            Radians(0.0),
            Minutes(90.0),
        )
        .with_earth_rotation(false);
        let p = orbit.subsatellite_point(Radians(phase), Minutes(t));
        prop_assert!(p.lat().to_degrees().value().abs() <= inc_deg + 1e-6);
    }

    #[test]
    fn footprint_coverage_time_roundtrips(tc in 0.5f64..40.0, theta in 85.0f64..200.0) {
        prop_assume!(tc < theta / 2.0);
        let fp = Footprint::from_coverage_time(Minutes(tc), Minutes(theta));
        prop_assert!((fp.coverage_time(Minutes(theta)).value() - tc).abs() < 1e-9);
    }

    #[test]
    fn offset_coverage_never_exceeds_center_line(
        tc in 1.0f64..40.0,
        offset_frac in 0.0f64..2.0,
    ) {
        let theta = Minutes(90.0);
        prop_assume!(tc < 44.0);
        let fp = Footprint::from_coverage_time(Minutes(tc), theta);
        let offset = Radians(fp.half_angle().value() * offset_frac);
        let t = fp.coverage_time_at_offset(offset, theta);
        prop_assert!(t.value() <= tc + 1e-9);
        if offset_frac >= 1.0 {
            prop_assert_eq!(t.value(), 0.0);
        }
    }

    #[test]
    fn walker_total_satellite_count(cfg in walker_config()) {
        let c = cfg.try_build().unwrap();
        prop_assert_eq!(c.num_planes(), cfg.planes);
        prop_assert_eq!(c.total_active(), cfg.planes * cfg.satellites_per_plane);
        prop_assert_eq!(
            c.total_with_spares(),
            cfg.planes * (cfg.satellites_per_plane + cfg.spares_per_plane)
        );
    }

    #[test]
    fn walker_phasing_offsets_close_the_ring(cfg in walker_config()) {
        // Consecutive planes differ by the constant Walker stagger step
        // 2π·f/T, and the steps telescope to zero (mod 2π) around the
        // closed ring of planes.
        let c = cfg.try_build().unwrap();
        let step = (TAU * cfg.phasing_factor as f64 / cfg.total_satellites() as f64)
            .rem_euclid(TAU);
        let phase = |p: usize| c.plane(p).satellite_phase(0).value();
        let mut ring_sum = 0.0;
        for p in 0..cfg.planes {
            let next = (p + 1) % cfg.planes;
            let d = phase(next) - phase(p);
            ring_sum += d;
            if next != 0 {
                let dw = d.rem_euclid(TAU);
                let err = (dw - step).abs().min(TAU - (dw - step).abs());
                prop_assert!(err < 1e-9, "plane {p}: offset step {dw} vs {step}");
            }
        }
        let wrapped = ring_sum.rem_euclid(TAU);
        prop_assert!(
            !(1e-9..=TAU - 1e-9).contains(&wrapped),
            "ring sum {ring_sum} does not close mod 2π"
        );
    }

    #[test]
    fn walker_raan_spacing_and_inclination(cfg in walker_config()) {
        // Star patterns spread ascending nodes over π, delta over 2π, in
        // equal increments; every plane keeps the configured inclination.
        let c = cfg.try_build().unwrap();
        let span = match cfg.pattern {
            WalkerPattern::Star => TAU / 2.0,
            WalkerPattern::Delta => TAU,
        };
        for p in 0..cfg.planes {
            let orbit = c.plane(p).orbit();
            let expect = span * p as f64 / cfg.planes as f64;
            prop_assert!((orbit.raan().value() - expect).abs() < 1e-12);
            prop_assert!(
                (orbit.inclination().value() - cfg.inclination.to_radians().value()).abs()
                    < 1e-12
            );
        }
    }

    #[test]
    fn regime_threshold_is_consistent(theta_i in 60u32..200, tc_i in 2u32..30) {
        let theta = Minutes(f64::from(theta_i));
        let tc = Minutes(f64::from(tc_i));
        prop_assume!(tc.value() < theta.value() / 2.0);
        let kmin = min_overlapping_capacity(theta, tc);
        prop_assert_eq!(classify(revisit_time(theta, kmin), tc), Regime::Overlapping);
        if kmin > 1 {
            prop_assert_eq!(
                classify(revisit_time(theta, kmin - 1), tc),
                Regime::Underlapping
            );
        }
    }
}
