//! Property-based tests of topologies and the network facade.

use oaq_net::fault::FaultPlan;
use oaq_net::link::LinkSpec;
use oaq_net::message::WirePayload;
use oaq_net::topology::Topology;
use oaq_net::{Network, NodeId};
use oaq_sim::{SimRng, SimTime};
use proptest::prelude::*;

proptest! {
    #[test]
    fn ring_distance_is_min_of_two_ways(n in 3u32..40, a in 0u32..40, b in 0u32..40) {
        prop_assume!(a < n && b < n);
        let t = Topology::ring(n);
        let d = t.hop_distance(NodeId(a), NodeId(b)).unwrap();
        let fwd = (b + n - a) % n;
        let expected = fwd.min(n - fwd) as usize;
        prop_assert_eq!(d, expected);
    }

    #[test]
    fn grid_degree_is_bounded(planes in 2u32..6, per in 3u32..8) {
        let t = Topology::constellation_grid(planes, per);
        for node in t.nodes() {
            let deg = t.neighbors(node).len();
            // 2 in-plane + up to 2 cross-plane.
            prop_assert!((2..=4).contains(&deg), "degree {deg}");
        }
    }

    #[test]
    fn wire_payload_roundtrips(tag in any::<u8>(), body in prop::collection::vec(any::<u8>(), 0..256)) {
        let p = WirePayload::new(tag, body);
        let decoded = WirePayload::decode(&p.encode()).unwrap();
        prop_assert_eq!(decoded, p);
    }

    #[test]
    fn delivery_latency_respects_link_bounds(
        lo in 0.0f64..0.5,
        width in 0.001f64..0.5,
        seed in any::<u64>(),
    ) {
        let hi = lo + width;
        let spec = LinkSpec::new(lo, hi).unwrap();
        let mut net: Network<u8> = Network::new(Topology::ring(4), spec);
        let mut rng = SimRng::seed_from(seed);
        for _ in 0..100 {
            let out = net.send(NodeId(0), NodeId(1), 0, SimTime::new(1.0), &mut rng);
            let env = out.delivered().unwrap();
            let lat = env.latency().as_minutes();
            prop_assert!(lat >= lo - 1e-12 && lat <= hi + 1e-12);
        }
    }

    #[test]
    fn stats_partition_attempts(
        loss in 0.0f64..0.9,
        seed in any::<u64>(),
        sends in 1usize..300,
    ) {
        let spec = LinkSpec::fixed(0.1).with_loss(loss).unwrap();
        let mut net: Network<u8> = Network::new(Topology::ring(5), spec);
        net.faults_mut().fail_at(NodeId(2), SimTime::new(0.0));
        let mut rng = SimRng::seed_from(seed);
        for i in 0..sends {
            let (src, dst) = match i % 3 {
                0 => (NodeId(0), NodeId(1)), // linked
                1 => (NodeId(0), NodeId(3)), // not linked
                _ => (NodeId(1), NodeId(2)), // dead receiver
            };
            let _ = net.send(src, dst, 0, SimTime::new(1.0), &mut rng);
        }
        let s = net.stats();
        prop_assert_eq!(
            s.delivered + s.lost + s.endpoint_failures + s.unlinked,
            s.attempts
        );
        prop_assert_eq!(s.attempts, sends as u64);
    }

    #[test]
    fn earliest_failure_time_wins(times in prop::collection::vec(0.0f64..100.0, 1..20)) {
        let mut plan = FaultPlan::new();
        for &t in &times {
            plan.fail_at(NodeId(9), SimTime::new(t));
        }
        let min = times.iter().copied().fold(f64::MAX, f64::min);
        prop_assert_eq!(plan.failure_time(NodeId(9)), Some(SimTime::new(min)));
    }
}
