//! Property-based tests of topologies and the network facade.

use oaq_net::fault::FaultPlan;
use oaq_net::link::LinkSpec;
use oaq_net::message::WirePayload;
use oaq_net::topology::Topology;
use oaq_net::{Network, NodeId};
use oaq_sim::{SimRng, SimTime};
use proptest::prelude::*;

proptest! {
    #[test]
    fn ring_distance_is_min_of_two_ways(n in 3u32..40, a in 0u32..40, b in 0u32..40) {
        prop_assume!(a < n && b < n);
        let t = Topology::ring(n);
        let d = t.hop_distance(NodeId(a), NodeId(b)).unwrap();
        let fwd = (b + n - a) % n;
        let expected = fwd.min(n - fwd) as usize;
        prop_assert_eq!(d, expected);
    }

    #[test]
    fn grid_degree_is_bounded(planes in 2u32..6, per in 3u32..8) {
        let t = Topology::constellation_grid(planes, per);
        for &node in t.nodes() {
            let deg = t.neighbors(node).len();
            // 2 in-plane + up to 2 cross-plane.
            prop_assert!((2..=4).contains(&deg), "degree {deg}");
        }
    }

    #[test]
    fn wire_payload_roundtrips(tag in any::<u8>(), body in prop::collection::vec(any::<u8>(), 0..256)) {
        let p = WirePayload::new(tag, body);
        let decoded = WirePayload::decode(&p.encode()).unwrap();
        prop_assert_eq!(decoded, p);
    }

    #[test]
    fn delivery_latency_respects_link_bounds(
        lo in 0.0f64..0.5,
        width in 0.001f64..0.5,
        seed in any::<u64>(),
    ) {
        let hi = lo + width;
        let spec = LinkSpec::new(lo, hi).unwrap();
        let mut net: Network<u8> = Network::new(Topology::ring(4), spec);
        let mut rng = SimRng::seed_from(seed);
        for _ in 0..100 {
            let out = net.send(NodeId(0), NodeId(1), 0, SimTime::new(1.0), &mut rng);
            let env = out.delivered().unwrap();
            let lat = env.latency().as_minutes();
            prop_assert!(lat >= lo - 1e-12 && lat <= hi + 1e-12);
        }
    }

    #[test]
    fn stats_partition_attempts(
        loss in 0.0f64..0.9,
        seed in any::<u64>(),
        sends in 1usize..300,
    ) {
        let spec = LinkSpec::fixed(0.1).with_loss(loss).unwrap();
        let mut net: Network<u8> = Network::new(Topology::ring(5), spec);
        net.faults_mut().fail_at(NodeId(2), SimTime::new(0.0));
        let mut rng = SimRng::seed_from(seed);
        for i in 0..sends {
            let (src, dst) = match i % 3 {
                0 => (NodeId(0), NodeId(1)), // linked
                1 => (NodeId(0), NodeId(3)), // not linked
                _ => (NodeId(1), NodeId(2)), // dead receiver
            };
            let _ = net.send(src, dst, 0, SimTime::new(1.0), &mut rng);
        }
        let s = net.stats();
        prop_assert_eq!(
            s.delivered + s.lost + s.endpoint_failures + s.unlinked,
            s.attempts
        );
        prop_assert_eq!(s.attempts, sends as u64);
    }

    #[test]
    fn earliest_failure_time_wins(times in prop::collection::vec(0.0f64..100.0, 1..20)) {
        let mut plan = FaultPlan::new();
        for &t in &times {
            plan.fail_at(NodeId(9), SimTime::new(t));
        }
        let min = times.iter().copied().fold(f64::MAX, f64::min);
        prop_assert_eq!(plan.failure_time(NodeId(9)), Some(SimTime::new(min)));
    }

    // The CSR topology must be behavior-identical to the straightforward
    // HashMap-of-BTreeSets model it replaced, on arbitrary link/unlink
    // sequences over a bounded id space.
    #[test]
    fn csr_matches_hashmap_reference(
        ops in prop::collection::vec((any::<bool>(), 0u32..12, 0u32..12), 0..120),
    ) {
        use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};

        let mut t = Topology::new();
        let mut reference: HashMap<u32, BTreeSet<u32>> = HashMap::new();
        for &(is_link, a, b) in &ops {
            if is_link {
                t.link(NodeId(a), NodeId(b));
                if a != b {
                    reference.entry(a).or_default().insert(b);
                    reference.entry(b).or_default().insert(a);
                }
            } else {
                t.unlink(NodeId(a), NodeId(b));
                if let Some(s) = reference.get_mut(&a) {
                    s.remove(&b);
                }
                if let Some(s) = reference.get_mut(&b) {
                    s.remove(&a);
                }
            }
        }

        let mut want_nodes: Vec<u32> = reference.keys().copied().collect();
        want_nodes.sort_unstable();
        let got_nodes: Vec<u32> = t.nodes().iter().map(|n| n.0).collect();
        prop_assert_eq!(got_nodes, want_nodes);
        prop_assert_eq!(t.node_count(), reference.len());

        let ref_distance = |a: u32, b: u32| -> Option<usize> {
            if !reference.contains_key(&a) || !reference.contains_key(&b) {
                return None;
            }
            if a == b {
                return Some(0);
            }
            let mut seen = HashSet::from([a]);
            let mut frontier = VecDeque::from([(a, 0usize)]);
            while let Some((node, d)) = frontier.pop_front() {
                for &n in &reference[&node] {
                    if n == b {
                        return Some(d + 1);
                    }
                    if seen.insert(n) {
                        frontier.push_back((n, d + 1));
                    }
                }
            }
            None
        };

        for a in 0u32..13 {
            let want: Vec<u32> = reference
                .get(&a)
                .map(|s| s.iter().copied().collect())
                .unwrap_or_default();
            let got: Vec<u32> = t.neighbors(NodeId(a)).iter().map(|n| n.0).collect();
            prop_assert_eq!(got, want);
            for b in 0u32..13 {
                let linked = reference.get(&a).is_some_and(|s| s.contains(&b));
                prop_assert_eq!(t.are_linked(NodeId(a), NodeId(b)), linked);
                prop_assert_eq!(t.hop_distance(NodeId(a), NodeId(b)), ref_distance(a, b));
            }
        }
    }
}
