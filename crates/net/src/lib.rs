//! # oaq-net — simulated inter-satellite crosslink network
//!
//! OAQ coordination is pure peer-to-peer message passing over crosslinks
//! between neighboring satellites (coordination requests travel up the
//! chain, "coordination done" notifications travel back down). This crate
//! provides the network substrate the protocol simulator in `oaq-core` runs
//! on:
//!
//! * [`NodeId`] — network addresses;
//! * [`topology::Topology`] — who can talk to whom (ring planes,
//!   constellation grids, or arbitrary adjacency);
//! * [`link::LinkSpec`] — per-hop delay (bounded by the paper's δ, the
//!   maximum inter-satellite message-delivery delay) and loss, either
//!   i.i.d. or bursty ([`link::GilbertElliott`]);
//! * [`fault::FaultPlan`] — fail-silent nodes (the failure mode the
//!   backward-messaging variant of the protocol tolerates), crash-recovery
//!   failure windows, and transient per-edge link outages;
//! * [`network::Network`] — combines the above: attempts a send and
//!   reports the arrival time for the caller's event queue, or why the
//!   message will never arrive;
//! * [`reliable::ReliableLink`] — ACK/timeout/retransmit on top of
//!   `Network::send`, with a bounded budget and an effective worst-case
//!   delay δ_eff the protocol layer substitutes into the paper's
//!   termination-condition arithmetic.
//!
//! The crate deliberately does not own an event loop: the protocol model in
//! `oaq-core` owns its `oaq-sim` simulation and schedules deliveries from
//! [`network::SendOutcome`]s, which keeps all state in one place.
//!
//! ## Example
//!
//! ```
//! use oaq_net::{Network, NodeId};
//! use oaq_net::topology::Topology;
//! use oaq_net::link::LinkSpec;
//! use oaq_sim::{SimRng, SimTime};
//!
//! let mut net: Network<&str> = Network::new(
//!     Topology::ring(4),
//!     LinkSpec::new(0.05, 0.10).expect("valid spec"),
//! );
//! let mut rng = SimRng::seed_from(1);
//! let outcome = net.send(NodeId(0), NodeId(1), "coordination-request",
//!                        SimTime::ZERO, &mut rng);
//! let envelope = outcome.delivered().expect("adjacent nodes, no faults");
//! assert!(envelope.arrival.as_minutes() <= 0.10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod link;
pub mod message;
pub mod network;
pub mod reliable;
pub mod schedule;
pub mod topology;

pub use link::{validate_loss_probability, GilbertElliott, InvalidLossProbability, LossModel};
pub use message::{Envelope, NodeId};
pub use network::{Network, NetworkStats, SendOutcome};
pub use reliable::{ReliableLink, ReliableOutcome, ReliableStats, RetryPolicy};
pub use schedule::{LinkEvent, TopologySchedule};
pub use topology::{BfsScratch, Topology};
