//! Crosslink topologies.

use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};

use crate::message::NodeId;

/// An undirected adjacency structure over [`NodeId`]s.
///
/// # Examples
///
/// ```
/// use oaq_net::topology::Topology;
/// use oaq_net::NodeId;
/// let t = Topology::ring(5);
/// assert!(t.are_linked(NodeId(0), NodeId(4))); // wraps around
/// assert_eq!(t.neighbors(NodeId(2)), vec![NodeId(1), NodeId(3)]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Topology {
    adjacency: HashMap<NodeId, BTreeSet<NodeId>>,
}

impl Topology {
    /// An empty topology.
    #[must_use]
    pub fn new() -> Self {
        Topology::default()
    }

    /// A ring of `n` nodes `0..n` — one orbital plane's in-plane crosslinks.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    #[must_use]
    pub fn ring(n: u32) -> Self {
        assert!(n >= 2, "a ring needs at least two nodes");
        let mut t = Topology::new();
        for i in 0..n {
            t.link(NodeId(i), NodeId((i + 1) % n));
        }
        t
    }

    /// A ring of `n` nodes where each node also links to peers up to
    /// `max_skip` positions away (chords). Crosslink ranges usually span
    /// more than the adjacent satellite; chords let coordination skip over
    /// a fail-silent peer.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `max_skip == 0`.
    #[must_use]
    pub fn ring_with_chords(n: u32, max_skip: u32) -> Self {
        assert!(n >= 2, "a ring needs at least two nodes");
        assert!(max_skip >= 1, "need at least adjacent links");
        let mut t = Topology::new();
        for i in 0..n {
            for skip in 1..=max_skip.min(n - 1) {
                t.link(NodeId(i), NodeId((i + skip) % n));
            }
        }
        t
    }

    /// A constellation grid: `planes` rings of `per_plane` nodes each, with
    /// each node additionally linked to the same-slot node in the adjacent
    /// planes (left and right). Node numbering: `plane * per_plane + slot`.
    ///
    /// # Panics
    ///
    /// Panics if `planes == 0` or `per_plane < 2`.
    #[must_use]
    pub fn constellation_grid(planes: u32, per_plane: u32) -> Self {
        assert!(planes > 0, "need at least one plane");
        assert!(per_plane >= 2, "need at least two satellites per plane");
        let mut t = Topology::new();
        let id = |p: u32, s: u32| NodeId(p * per_plane + s);
        for p in 0..planes {
            for s in 0..per_plane {
                t.link(id(p, s), id(p, (s + 1) % per_plane));
                if planes > 1 {
                    t.link(id(p, s), id((p + 1) % planes, s));
                }
            }
        }
        t
    }

    /// Adds an undirected link (idempotent; self-links are ignored).
    pub fn link(&mut self, a: NodeId, b: NodeId) {
        if a == b {
            return;
        }
        self.adjacency.entry(a).or_default().insert(b);
        self.adjacency.entry(b).or_default().insert(a);
    }

    /// Removes a link if present.
    pub fn unlink(&mut self, a: NodeId, b: NodeId) {
        if let Some(s) = self.adjacency.get_mut(&a) {
            s.remove(&b);
        }
        if let Some(s) = self.adjacency.get_mut(&b) {
            s.remove(&a);
        }
    }

    /// `true` when `a` and `b` share a link.
    #[must_use]
    pub fn are_linked(&self, a: NodeId, b: NodeId) -> bool {
        self.adjacency.get(&a).is_some_and(|s| s.contains(&b))
    }

    /// Neighbors of `a` in ascending id order.
    #[must_use]
    pub fn neighbors(&self, a: NodeId) -> Vec<NodeId> {
        self.adjacency
            .get(&a)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// All nodes that appear in any link.
    #[must_use]
    pub fn nodes(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.adjacency.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Hop count of the shortest path from `a` to `b` (BFS), or `None` when
    /// disconnected or either node is unknown.
    #[must_use]
    pub fn hop_distance(&self, a: NodeId, b: NodeId) -> Option<usize> {
        if !self.adjacency.contains_key(&a) || !self.adjacency.contains_key(&b) {
            return None;
        }
        if a == b {
            return Some(0);
        }
        let mut seen: HashSet<NodeId> = HashSet::from([a]);
        let mut frontier = VecDeque::from([(a, 0usize)]);
        while let Some((node, d)) = frontier.pop_front() {
            for &n in &self.adjacency[&node] {
                if n == b {
                    return Some(d + 1);
                }
                if seen.insert(n) {
                    frontier.push_back((n, d + 1));
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_wraps() {
        let t = Topology::ring(6);
        assert!(t.are_linked(NodeId(5), NodeId(0)));
        assert!(!t.are_linked(NodeId(0), NodeId(3)));
        assert_eq!(t.node_count(), 6);
    }

    #[test]
    fn grid_links_in_and_across_planes() {
        let t = Topology::constellation_grid(3, 4);
        assert_eq!(t.node_count(), 12);
        // In-plane ring: node 0 and 3 are adjacent (wrap).
        assert!(t.are_linked(NodeId(0), NodeId(3)));
        // Cross-plane: node 0 (plane 0, slot 0) and node 4 (plane 1, slot 0).
        assert!(t.are_linked(NodeId(0), NodeId(4)));
        // Plane wrap: plane 2 links back to plane 0.
        assert!(t.are_linked(NodeId(8), NodeId(0)));
    }

    #[test]
    fn single_plane_grid_has_no_cross_links() {
        let t = Topology::constellation_grid(1, 4);
        assert_eq!(t.neighbors(NodeId(0)), vec![NodeId(1), NodeId(3)]);
    }

    #[test]
    fn self_links_ignored() {
        let mut t = Topology::new();
        t.link(NodeId(1), NodeId(1));
        assert_eq!(t.node_count(), 0);
    }

    #[test]
    fn unlink_removes_both_directions() {
        let mut t = Topology::ring(3);
        t.unlink(NodeId(0), NodeId(1));
        assert!(!t.are_linked(NodeId(0), NodeId(1)));
        assert!(!t.are_linked(NodeId(1), NodeId(0)));
        assert!(t.are_linked(NodeId(1), NodeId(2)));
    }

    #[test]
    fn hop_distance_on_ring() {
        let t = Topology::ring(8);
        assert_eq!(t.hop_distance(NodeId(0), NodeId(0)), Some(0));
        assert_eq!(t.hop_distance(NodeId(0), NodeId(1)), Some(1));
        assert_eq!(t.hop_distance(NodeId(0), NodeId(4)), Some(4));
        assert_eq!(t.hop_distance(NodeId(0), NodeId(6)), Some(2));
    }

    #[test]
    fn hop_distance_disconnected() {
        let mut t = Topology::new();
        t.link(NodeId(0), NodeId(1));
        t.link(NodeId(2), NodeId(3));
        assert_eq!(t.hop_distance(NodeId(0), NodeId(3)), None);
        assert_eq!(t.hop_distance(NodeId(0), NodeId(9)), None);
    }

    #[test]
    fn chords_extend_reach() {
        let t = Topology::ring_with_chords(8, 3);
        assert!(t.are_linked(NodeId(0), NodeId(3)));
        assert!(!t.are_linked(NodeId(0), NodeId(4)));
        assert_eq!(t.hop_distance(NodeId(0), NodeId(4)), Some(2));
    }

    #[test]
    fn chords_saturate_to_clique() {
        let t = Topology::ring_with_chords(4, 9);
        for a in 0..4u32 {
            for b in 0..4u32 {
                if a != b {
                    assert!(t.are_linked(NodeId(a), NodeId(b)));
                }
            }
        }
    }

    #[test]
    fn nodes_sorted() {
        let t = Topology::ring(4);
        assert_eq!(t.nodes(), vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
    }
}
