//! Crosslink topologies.
//!
//! [`Topology`] stores the undirected adjacency structure in CSR style:
//! a sorted id table plus one sorted neighbor row per node. Lookups are
//! binary searches and the hot accessors ([`Topology::neighbors`],
//! [`Topology::nodes`]) return borrowed slices, so BFS and protocol loops
//! run without per-call allocation. The historical `Vec`-returning API
//! survives as `*_vec` compatibility wrappers.

use std::collections::VecDeque;

use crate::message::NodeId;

/// An undirected adjacency structure over [`NodeId`]s.
///
/// # Examples
///
/// ```
/// use oaq_net::topology::Topology;
/// use oaq_net::NodeId;
/// let t = Topology::ring(5);
/// assert!(t.are_linked(NodeId(0), NodeId(4))); // wraps around
/// assert_eq!(t.neighbors(NodeId(2)), vec![NodeId(1), NodeId(3)]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Topology {
    /// Known node ids, ascending. Slot `s` owns `adj[s]`.
    ids: Vec<NodeId>,
    /// Neighbor rows, each ascending. Indexed by slot, not by id.
    adj: Vec<Vec<NodeId>>,
}

impl Topology {
    /// An empty topology.
    #[must_use]
    pub fn new() -> Self {
        Topology::default()
    }

    /// A ring of `n` nodes `0..n` — one orbital plane's in-plane crosslinks.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    #[must_use]
    pub fn ring(n: u32) -> Self {
        assert!(n >= 2, "a ring needs at least two nodes");
        let mut t = Topology::new();
        for i in 0..n {
            t.link(NodeId(i), NodeId((i + 1) % n));
        }
        t
    }

    /// A ring of `n` nodes where each node also links to peers up to
    /// `max_skip` positions away (chords). Crosslink ranges usually span
    /// more than the adjacent satellite; chords let coordination skip over
    /// a fail-silent peer.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `max_skip == 0`.
    #[must_use]
    pub fn ring_with_chords(n: u32, max_skip: u32) -> Self {
        assert!(n >= 2, "a ring needs at least two nodes");
        assert!(max_skip >= 1, "need at least adjacent links");
        let mut t = Topology::new();
        for i in 0..n {
            for skip in 1..=max_skip.min(n - 1) {
                t.link(NodeId(i), NodeId((i + skip) % n));
            }
        }
        t
    }

    /// A constellation grid: `planes` rings of `per_plane` nodes each, with
    /// each node additionally linked to the same-slot node in the adjacent
    /// planes (left and right). Node numbering: `plane * per_plane + slot`.
    ///
    /// # Panics
    ///
    /// Panics if `planes == 0` or `per_plane < 2`.
    #[must_use]
    pub fn constellation_grid(planes: u32, per_plane: u32) -> Self {
        assert!(planes > 0, "need at least one plane");
        assert!(per_plane >= 2, "need at least two satellites per plane");
        let mut t = Topology::new();
        let id = |p: u32, s: u32| NodeId(p * per_plane + s);
        for p in 0..planes {
            for s in 0..per_plane {
                t.link(id(p, s), id(p, (s + 1) % per_plane));
                if planes > 1 {
                    t.link(id(p, s), id((p + 1) % planes, s));
                }
            }
        }
        t
    }

    /// Slot of `id` in the CSR tables, if known.
    fn slot(&self, id: NodeId) -> Option<usize> {
        self.ids.binary_search(&id).ok()
    }

    /// Slot of `id`, inserting an empty row at the sorted position if new.
    fn slot_or_insert(&mut self, id: NodeId) -> usize {
        match self.ids.binary_search(&id) {
            Ok(s) => s,
            Err(s) => {
                self.ids.insert(s, id);
                self.adj.insert(s, Vec::new());
                s
            }
        }
    }

    /// Adds an undirected link (idempotent; self-links are ignored).
    pub fn link(&mut self, a: NodeId, b: NodeId) {
        if a == b {
            return;
        }
        self.slot_or_insert(a);
        self.slot_or_insert(b);
        // Re-resolve both slots: inserting `b`'s id may have shifted `a`'s.
        let sa = self.slot(a).expect("just inserted");
        let sb = self.slot(b).expect("just inserted");
        if let Err(pos) = self.adj[sa].binary_search(&b) {
            self.adj[sa].insert(pos, b);
        }
        if let Err(pos) = self.adj[sb].binary_search(&a) {
            self.adj[sb].insert(pos, a);
        }
    }

    /// Removes a link if present. Nodes stay known even with no links left.
    pub fn unlink(&mut self, a: NodeId, b: NodeId) {
        if let Some(sa) = self.slot(a) {
            if let Ok(pos) = self.adj[sa].binary_search(&b) {
                self.adj[sa].remove(pos);
            }
        }
        if let Some(sb) = self.slot(b) {
            if let Ok(pos) = self.adj[sb].binary_search(&a) {
                self.adj[sb].remove(pos);
            }
        }
    }

    /// `true` when `a` and `b` share a link.
    #[must_use]
    pub fn are_linked(&self, a: NodeId, b: NodeId) -> bool {
        self.slot(a)
            .is_some_and(|s| self.adj[s].binary_search(&b).is_ok())
    }

    /// Neighbors of `a` in ascending id order, as a borrowed slice.
    /// Unknown nodes have no neighbors.
    #[must_use]
    pub fn neighbors(&self, a: NodeId) -> &[NodeId] {
        self.slot(a).map_or(&[], |s| &self.adj[s])
    }

    /// Neighbors of `a` as an owned `Vec` (compatibility wrapper around
    /// [`Topology::neighbors`]).
    #[must_use]
    pub fn neighbors_vec(&self, a: NodeId) -> Vec<NodeId> {
        self.neighbors(a).to_vec()
    }

    /// All nodes that appear in any link, ascending, as a borrowed slice.
    #[must_use]
    pub fn nodes(&self) -> &[NodeId] {
        &self.ids
    }

    /// All nodes as an owned `Vec` (compatibility wrapper around
    /// [`Topology::nodes`]).
    #[must_use]
    pub fn nodes_vec(&self) -> Vec<NodeId> {
        self.ids.clone()
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.ids.len()
    }

    /// Hop count of the shortest path from `a` to `b` (BFS), or `None` when
    /// disconnected or either node is unknown.
    #[must_use]
    pub fn hop_distance(&self, a: NodeId, b: NodeId) -> Option<usize> {
        self.hop_distance_with(a, b, &mut BfsScratch::new())
    }

    /// [`Topology::hop_distance`] with a caller-provided workspace, so
    /// repeated queries reuse the visit marks and frontier queue.
    #[must_use]
    pub fn hop_distance_with(
        &self,
        a: NodeId,
        b: NodeId,
        scratch: &mut BfsScratch,
    ) -> Option<usize> {
        let sa = self.slot(a)?;
        self.slot(b)?;
        if a == b {
            return Some(0);
        }
        scratch.begin(self.ids.len());
        scratch.visit(sa);
        scratch.frontier.push_back((sa, 0));
        while let Some((slot, d)) = scratch.frontier.pop_front() {
            for &n in &self.adj[slot] {
                if n == b {
                    return Some(d + 1);
                }
                // Neighbor rows only hold known ids, so the slot exists.
                let ns = self.slot(n).expect("neighbor id is a known node");
                if !scratch.visited(ns) {
                    scratch.visit(ns);
                    scratch.frontier.push_back((ns, d + 1));
                }
            }
        }
        None
    }

    /// Number of nodes reachable from `from` over links whose endpoints all
    /// satisfy `alive`, counting `from` itself. Returns 0 when `from` is
    /// unknown or not alive.
    #[must_use]
    pub fn reachable_with<F: Fn(NodeId) -> bool>(
        &self,
        from: NodeId,
        alive: F,
        scratch: &mut BfsScratch,
    ) -> usize {
        let Some(start) = self.slot(from) else {
            return 0;
        };
        if !alive(from) {
            return 0;
        }
        scratch.begin(self.ids.len());
        scratch.visit(start);
        scratch.frontier.push_back((start, 0));
        let mut count = 1;
        while let Some((slot, _)) = scratch.frontier.pop_front() {
            for &n in &self.adj[slot] {
                let ns = self.slot(n).expect("neighbor id is a known node");
                if !scratch.visited(ns) && alive(n) {
                    scratch.visit(ns);
                    scratch.frontier.push_back((ns, 0));
                    count += 1;
                }
            }
        }
        count
    }
}

/// Reusable BFS workspace for [`Topology::hop_distance_with`] and
/// [`Topology::reachable_with`]: epoch-stamped visit marks (cleared in O(1)
/// per query) plus the frontier queue.
#[derive(Debug, Clone, Default)]
pub struct BfsScratch {
    stamp: Vec<u32>,
    epoch: u32,
    frontier: VecDeque<(usize, usize)>,
}

impl BfsScratch {
    /// A fresh workspace; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        BfsScratch::default()
    }

    /// Prepares the workspace for a traversal over `slots` nodes.
    fn begin(&mut self, slots: usize) {
        self.frontier.clear();
        if self.stamp.len() < slots {
            self.stamp.resize(slots, 0);
        }
        if self.epoch == u32::MAX {
            self.stamp.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
    }

    fn visit(&mut self, slot: usize) {
        self.stamp[slot] = self.epoch;
    }

    fn visited(&self, slot: usize) -> bool {
        self.stamp[slot] == self.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_wraps() {
        let t = Topology::ring(6);
        assert!(t.are_linked(NodeId(5), NodeId(0)));
        assert!(!t.are_linked(NodeId(0), NodeId(3)));
        assert_eq!(t.node_count(), 6);
    }

    #[test]
    fn grid_links_in_and_across_planes() {
        let t = Topology::constellation_grid(3, 4);
        assert_eq!(t.node_count(), 12);
        // In-plane ring: node 0 and 3 are adjacent (wrap).
        assert!(t.are_linked(NodeId(0), NodeId(3)));
        // Cross-plane: node 0 (plane 0, slot 0) and node 4 (plane 1, slot 0).
        assert!(t.are_linked(NodeId(0), NodeId(4)));
        // Plane wrap: plane 2 links back to plane 0.
        assert!(t.are_linked(NodeId(8), NodeId(0)));
    }

    #[test]
    fn single_plane_grid_has_no_cross_links() {
        let t = Topology::constellation_grid(1, 4);
        assert_eq!(t.neighbors(NodeId(0)), vec![NodeId(1), NodeId(3)]);
    }

    #[test]
    fn self_links_ignored() {
        let mut t = Topology::new();
        t.link(NodeId(1), NodeId(1));
        assert_eq!(t.node_count(), 0);
    }

    #[test]
    fn unlink_removes_both_directions() {
        let mut t = Topology::ring(3);
        t.unlink(NodeId(0), NodeId(1));
        assert!(!t.are_linked(NodeId(0), NodeId(1)));
        assert!(!t.are_linked(NodeId(1), NodeId(0)));
        assert!(t.are_linked(NodeId(1), NodeId(2)));
    }

    #[test]
    fn unlink_keeps_nodes_known() {
        let mut t = Topology::new();
        t.link(NodeId(0), NodeId(1));
        t.unlink(NodeId(0), NodeId(1));
        assert_eq!(t.node_count(), 2);
        assert_eq!(t.nodes(), vec![NodeId(0), NodeId(1)]);
        assert!(t.neighbors(NodeId(0)).is_empty());
        // Known but disconnected: hop distance is None, not a panic.
        assert_eq!(t.hop_distance(NodeId(0), NodeId(1)), None);
    }

    #[test]
    fn hop_distance_on_ring() {
        let t = Topology::ring(8);
        assert_eq!(t.hop_distance(NodeId(0), NodeId(0)), Some(0));
        assert_eq!(t.hop_distance(NodeId(0), NodeId(1)), Some(1));
        assert_eq!(t.hop_distance(NodeId(0), NodeId(4)), Some(4));
        assert_eq!(t.hop_distance(NodeId(0), NodeId(6)), Some(2));
    }

    #[test]
    fn hop_distance_disconnected() {
        let mut t = Topology::new();
        t.link(NodeId(0), NodeId(1));
        t.link(NodeId(2), NodeId(3));
        assert_eq!(t.hop_distance(NodeId(0), NodeId(3)), None);
        assert_eq!(t.hop_distance(NodeId(0), NodeId(9)), None);
    }

    #[test]
    fn hop_distance_with_reuses_scratch() {
        let t = Topology::ring(16);
        let mut scratch = BfsScratch::new();
        for i in 0..16u32 {
            let want = t.hop_distance(NodeId(0), NodeId(i));
            assert_eq!(
                t.hop_distance_with(NodeId(0), NodeId(i), &mut scratch),
                want
            );
        }
    }

    #[test]
    fn reachable_counts_alive_component() {
        let t = Topology::ring(8);
        let mut scratch = BfsScratch::new();
        assert_eq!(t.reachable_with(NodeId(0), |_| true, &mut scratch), 8);
        // Knock out nodes 2 and 6: 0 sits in the arc {7, 0, 1} plus the
        // far side is cut off, so the alive component of 0 is {7, 0, 1}.
        let alive = |n: NodeId| n != NodeId(2) && n != NodeId(6);
        assert_eq!(t.reachable_with(NodeId(0), alive, &mut scratch), 3);
        // A dead start point reaches nothing.
        assert_eq!(t.reachable_with(NodeId(2), alive, &mut scratch), 0);
        // Unknown start point reaches nothing.
        assert_eq!(t.reachable_with(NodeId(99), alive, &mut scratch), 0);
    }

    #[test]
    fn chords_extend_reach() {
        let t = Topology::ring_with_chords(8, 3);
        assert!(t.are_linked(NodeId(0), NodeId(3)));
        assert!(!t.are_linked(NodeId(0), NodeId(4)));
        assert_eq!(t.hop_distance(NodeId(0), NodeId(4)), Some(2));
    }

    #[test]
    fn chords_saturate_to_clique() {
        let t = Topology::ring_with_chords(4, 9);
        for a in 0..4u32 {
            for b in 0..4u32 {
                if a != b {
                    assert!(t.are_linked(NodeId(a), NodeId(b)));
                }
            }
        }
    }

    #[test]
    fn nodes_sorted() {
        let t = Topology::ring(4);
        assert_eq!(t.nodes(), vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn vec_wrappers_match_slices() {
        let t = Topology::constellation_grid(2, 3);
        assert_eq!(t.neighbors_vec(NodeId(0)), t.neighbors(NodeId(0)).to_vec());
        assert_eq!(t.nodes_vec(), t.nodes().to_vec());
    }
}
