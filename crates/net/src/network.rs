//! The network facade: topology + links + faults + delivery accounting.

use std::collections::HashMap;

use oaq_sim::{SimRng, SimTime};

use crate::fault::FaultPlan;
use crate::link::{LinkSpec, LossModel, LossState};
use crate::message::{Envelope, NodeId};
use crate::topology::Topology;

/// What happened to one send attempt.
#[derive(Debug, Clone, PartialEq)]
pub enum SendOutcome<P> {
    /// The message will arrive; schedule `envelope.arrival` in your event
    /// queue.
    Delivered(Envelope<P>),
    /// The sender had already gone fail-silent.
    SenderFailed,
    /// The receiver is fail-silent: the message vanishes (fail-silent nodes
    /// cannot NACK — this is what the protocol's wait-timeout covers).
    ReceiverFailed,
    /// No crosslink exists between the two nodes.
    NotLinked,
    /// The edge is in a scheduled transient outage: the message is dropped
    /// deterministically, as opposed to the random [`SendOutcome::Lost`].
    Outage,
    /// The link's loss process dropped the message.
    Lost,
}

impl<P> SendOutcome<P> {
    /// The envelope, if the message will be delivered.
    #[must_use]
    pub fn delivered(self) -> Option<Envelope<P>> {
        match self {
            SendOutcome::Delivered(e) => Some(e),
            _ => None,
        }
    }

    /// `true` when the message will arrive.
    #[must_use]
    pub fn is_delivered(&self) -> bool {
        matches!(self, SendOutcome::Delivered(_))
    }
}

/// Cumulative network counters.
///
/// Every attempt lands in exactly one bucket, so
/// `attempts == delivered + lost + outage_drops + endpoint_failures +
/// unlinked` holds at all times.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetworkStats {
    /// Send attempts.
    pub attempts: u64,
    /// Messages that will be (or were) delivered.
    pub delivered: u64,
    /// Messages lost randomly by the link's loss process.
    pub lost: u64,
    /// Messages dropped by a scheduled edge outage.
    pub outage_drops: u64,
    /// Sends blocked by a failed endpoint.
    pub endpoint_failures: u64,
    /// Sends between unlinked nodes.
    pub unlinked: u64,
}

impl NetworkStats {
    /// Sum of all terminal buckets; equals [`NetworkStats::attempts`] by
    /// construction.
    #[must_use]
    pub fn accounted(&self) -> u64 {
        self.delivered + self.lost + self.outage_drops + self.endpoint_failures + self.unlinked
    }
}

/// A simulated crosslink network.
///
/// See the [crate-level example](crate) for usage. The type parameter `P` is
/// the application payload carried by [`Envelope`]s.
#[derive(Debug, Clone)]
pub struct Network<P> {
    topology: Topology,
    link: LinkSpec,
    faults: FaultPlan,
    stats: NetworkStats,
    /// Per-edge loss-channel state (burst chains), keyed by the normalized
    /// undirected edge. Empty until an edge first carries traffic.
    loss_states: HashMap<(NodeId, NodeId), LossState>,
    _marker: std::marker::PhantomData<fn() -> P>,
}

impl<P> Network<P> {
    /// Creates a fault-free network.
    #[must_use]
    pub fn new(topology: Topology, link: LinkSpec) -> Self {
        Network {
            topology,
            link,
            faults: FaultPlan::new(),
            stats: NetworkStats::default(),
            loss_states: HashMap::new(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Installs a fault plan.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// The topology.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Mutable topology access (e.g. to unlink a deorbited satellite).
    pub fn topology_mut(&mut self) -> &mut Topology {
        &mut self.topology
    }

    /// Consumes the network, returning its topology so callers can recycle
    /// the adjacency buffers across episodes.
    #[must_use]
    pub fn into_topology(self) -> Topology {
        self.topology
    }

    /// Consumes the network, returning the topology *and* the fault plan so
    /// callers can recycle both sets of buffers across episodes.
    #[must_use]
    pub fn into_parts(self) -> (Topology, FaultPlan) {
        (self.topology, self.faults)
    }

    /// The link model shared by all links.
    #[must_use]
    pub fn link(&self) -> &LinkSpec {
        &self.link
    }

    /// The fault plan.
    #[must_use]
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// Mutable fault-plan access (to inject failures mid-run).
    pub fn faults_mut(&mut self) -> &mut FaultPlan {
        &mut self.faults
    }

    /// Cumulative counters.
    #[must_use]
    pub fn stats(&self) -> NetworkStats {
        self.stats
    }

    /// Samples the loss process of the undirected edge `{a, b}`, advancing
    /// that edge's burst chain when the link model is bursty. Also used by
    /// the reliable layer to model ACK loss on the reverse path.
    pub(crate) fn sample_edge_loss(&mut self, a: NodeId, b: NodeId, rng: &mut SimRng) -> bool {
        // I.i.d. loss carries no per-edge state, so the hot path skips the
        // map probe; the RNG draw discipline is identical to
        // `LossState::sample` in i.i.d. mode (at most one draw, none when
        // `p == 0`).
        if let LossModel::Iid { p } = *self.link.loss_model() {
            return p > 0.0 && rng.chance(p);
        }
        let key = if a.0 <= b.0 { (a, b) } else { (b, a) };
        let state = self.loss_states.entry(key).or_default();
        state.sample(self.link.loss_model(), rng)
    }

    /// Attempts to send `payload` from `src` to `dst` at time `now`.
    ///
    /// On success the returned envelope carries the arrival time; the caller
    /// schedules the delivery in its own event queue. Failure outcomes are
    /// silent at the protocol level (no NACKs), mirroring real crosslinks.
    pub fn send(
        &mut self,
        src: NodeId,
        dst: NodeId,
        payload: P,
        now: SimTime,
        rng: &mut SimRng,
    ) -> SendOutcome<P> {
        self.stats.attempts += 1;
        if self.faults.is_failed(src, now) {
            self.stats.endpoint_failures += 1;
            return SendOutcome::SenderFailed;
        }
        if !self.topology.are_linked(src, dst) {
            self.stats.unlinked += 1;
            return SendOutcome::NotLinked;
        }
        if self.faults.is_outaged(src, dst, now) {
            self.stats.outage_drops += 1;
            return SendOutcome::Outage;
        }
        if self.sample_edge_loss(src, dst, rng) {
            self.stats.lost += 1;
            return SendOutcome::Lost;
        }
        let arrival = now + self.link.sample_delay(rng);
        // Fail-silence is evaluated at arrival: a receiver that dies while
        // the message is in flight never processes it.
        if self.faults.is_failed(dst, arrival) {
            self.stats.endpoint_failures += 1;
            return SendOutcome::ReceiverFailed;
        }
        self.stats.delivered += 1;
        SendOutcome::Delivered(Envelope {
            src,
            dst,
            sent_at: now,
            arrival,
            payload,
        })
    }
}

impl<P> Network<P> {
    /// Attempts a multi-hop send: finds the shortest path from `src` to
    /// `dst` through nodes that are alive *now*, samples an independent
    /// delay (and loss) per hop, and returns the end-to-end envelope.
    ///
    /// Intermediate relays that die while the message is in transit are
    /// checked at their per-hop arrival instants, so a relay failing
    /// mid-route loses the message — store-and-forward semantics.
    pub fn send_routed(
        &mut self,
        src: NodeId,
        dst: NodeId,
        payload: P,
        now: SimTime,
        rng: &mut SimRng,
    ) -> SendOutcome<P> {
        self.stats.attempts += 1;
        if self.faults.is_failed(src, now) {
            self.stats.endpoint_failures += 1;
            return SendOutcome::SenderFailed;
        }
        let Some(path) = self.alive_path(src, dst, now) else {
            self.stats.unlinked += 1;
            return SendOutcome::NotLinked;
        };
        let mut t = now;
        for window in path.windows(2) {
            let (hop_src, hop_dst) = (window[0], window[1]);
            if self.faults.is_failed(hop_src, t) {
                // The relay died before forwarding.
                self.stats.endpoint_failures += 1;
                return SendOutcome::ReceiverFailed;
            }
            if self.faults.is_outaged(hop_src, hop_dst, t) {
                self.stats.outage_drops += 1;
                return SendOutcome::Outage;
            }
            if self.sample_edge_loss(hop_src, hop_dst, rng) {
                self.stats.lost += 1;
                return SendOutcome::Lost;
            }
            t += self.link.sample_delay(rng);
            if self.faults.is_failed(hop_dst, t) {
                self.stats.endpoint_failures += 1;
                return SendOutcome::ReceiverFailed;
            }
        }
        self.stats.delivered += 1;
        SendOutcome::Delivered(Envelope {
            src,
            dst,
            sent_at: now,
            arrival: t,
            payload,
        })
    }

    /// Shortest path from `src` to `dst` over nodes alive at `now` (BFS);
    /// `None` when the live subgraph is disconnected.
    fn alive_path(&self, src: NodeId, dst: NodeId, now: SimTime) -> Option<Vec<NodeId>> {
        use std::collections::{HashMap, VecDeque};
        if src == dst {
            return Some(vec![src]);
        }
        let mut parent: HashMap<NodeId, NodeId> = HashMap::new();
        let mut frontier = VecDeque::from([src]);
        while let Some(node) = frontier.pop_front() {
            for &nb in self.topology.neighbors(node) {
                if nb == src || parent.contains_key(&nb) || self.faults.is_failed(nb, now) {
                    continue;
                }
                parent.insert(nb, node);
                if nb == dst {
                    let mut path = vec![dst];
                    let mut cur = dst;
                    while cur != src {
                        cur = parent[&cur];
                        path.push(cur);
                    }
                    path.reverse();
                    return Some(path);
                }
                frontier.push_back(nb);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(loss: f64) -> Network<u32> {
        let link = LinkSpec::new(0.02, 0.1).unwrap().with_loss(loss).unwrap();
        Network::new(Topology::ring(6), link)
    }

    #[test]
    fn adjacent_send_is_delivered_within_delta() {
        let mut n = net(0.0);
        let mut rng = SimRng::seed_from(1);
        let out = n.send(NodeId(0), NodeId(1), 7, SimTime::new(5.0), &mut rng);
        let e = out.delivered().expect("delivered");
        assert_eq!(e.payload, 7);
        assert!(e.latency().as_minutes() <= 0.1);
        assert!(e.arrival >= SimTime::new(5.02));
        assert_eq!(n.stats().delivered, 1);
    }

    #[test]
    fn non_adjacent_send_fails() {
        let mut n = net(0.0);
        let mut rng = SimRng::seed_from(2);
        let out = n.send(NodeId(0), NodeId(3), 0, SimTime::ZERO, &mut rng);
        assert_eq!(out, SendOutcome::NotLinked);
        assert_eq!(n.stats().unlinked, 1);
    }

    #[test]
    fn failed_sender_cannot_send() {
        let mut n = net(0.0);
        n.faults_mut().fail_at(NodeId(0), SimTime::new(1.0));
        let mut rng = SimRng::seed_from(3);
        let before = n.send(NodeId(0), NodeId(1), 0, SimTime::new(0.5), &mut rng);
        assert!(before.is_delivered());
        let after = n.send(NodeId(0), NodeId(1), 0, SimTime::new(1.5), &mut rng);
        assert_eq!(after, SendOutcome::SenderFailed);
    }

    #[test]
    fn receiver_failing_in_flight_loses_message() {
        let mut n = net(0.0);
        // Receiver dies 0.01 min after the send: every delay >= 0.02 min, so
        // the message is always in flight when the failure hits.
        n.faults_mut().fail_at(NodeId(1), SimTime::new(1.01));
        let mut rng = SimRng::seed_from(4);
        let out = n.send(NodeId(0), NodeId(1), 0, SimTime::new(1.0), &mut rng);
        assert_eq!(out, SendOutcome::ReceiverFailed);
    }

    #[test]
    fn loss_statistics_accumulate() {
        let mut n = net(0.5);
        let mut rng = SimRng::seed_from(5);
        for _ in 0..1000 {
            let _ = n.send(NodeId(2), NodeId(3), 0, SimTime::ZERO, &mut rng);
        }
        let s = n.stats();
        assert_eq!(s.attempts, 1000);
        assert_eq!(s.delivered + s.lost, 1000);
        assert!((s.lost as f64 - 500.0).abs() < 60.0, "lost {}", s.lost);
    }

    #[test]
    fn routed_send_crosses_the_ring() {
        let mut n = net(0.0);
        let mut rng = SimRng::seed_from(10);
        let out = n.send_routed(NodeId(0), NodeId(3), 9, SimTime::new(1.0), &mut rng);
        let e = out.delivered().expect("3 hops exist");
        // 3 hops, each within [0.02, 0.1].
        let lat = e.latency().as_minutes();
        assert!((0.06..=0.3).contains(&lat), "latency {lat}");
        assert_eq!(e.payload, 9);
    }

    #[test]
    fn routed_send_avoids_dead_relays() {
        let mut n = net(0.0);
        // Kill node 1: the 0→2 route must go the long way (0-5-4-3-2).
        n.faults_mut().fail_at(NodeId(1), SimTime::ZERO);
        let mut rng = SimRng::seed_from(11);
        let out = n.send_routed(NodeId(0), NodeId(2), 0, SimTime::new(1.0), &mut rng);
        let e = out.delivered().expect("long-way route exists");
        assert!(e.latency().as_minutes() >= 4.0 * 0.02, "four hops minimum");
    }

    #[test]
    fn routed_send_fails_when_partitioned() {
        let mut n = net(0.0);
        n.faults_mut().fail_at(NodeId(1), SimTime::ZERO);
        n.faults_mut().fail_at(NodeId(5), SimTime::ZERO);
        let mut rng = SimRng::seed_from(12);
        let out = n.send_routed(NodeId(0), NodeId(3), 0, SimTime::new(1.0), &mut rng);
        assert_eq!(out, SendOutcome::NotLinked);
    }

    #[test]
    fn routed_send_to_self_is_instant() {
        let mut n = net(0.0);
        let mut rng = SimRng::seed_from(13);
        let e = n
            .send_routed(NodeId(2), NodeId(2), 7, SimTime::new(3.0), &mut rng)
            .delivered()
            .unwrap();
        assert_eq!(e.arrival, SimTime::new(3.0));
    }

    #[test]
    fn routed_loss_applies_per_hop() {
        let mut n = net(0.3);
        let mut rng = SimRng::seed_from(14);
        let mut delivered = 0;
        let trials = 2000;
        for _ in 0..trials {
            if n.send_routed(NodeId(0), NodeId(3), 0, SimTime::new(1.0), &mut rng)
                .is_delivered()
            {
                delivered += 1;
            }
        }
        // Three hops at 70% each ≈ 34%.
        let rate = f64::from(delivered) / f64::from(trials);
        assert!((rate - 0.343).abs() < 0.04, "rate {rate}");
    }

    #[test]
    fn unlinking_partitions() {
        let mut n = net(0.0);
        n.topology_mut().unlink(NodeId(0), NodeId(1));
        let mut rng = SimRng::seed_from(6);
        assert_eq!(
            n.send(NodeId(0), NodeId(1), 0, SimTime::ZERO, &mut rng),
            SendOutcome::NotLinked
        );
    }

    #[test]
    fn outaged_edge_drops_deterministically_then_recovers() {
        let mut n = net(0.0);
        n.faults_mut()
            .outage_between(NodeId(0), NodeId(1), SimTime::new(2.0), SimTime::new(4.0));
        let mut rng = SimRng::seed_from(20);
        assert!(n
            .send(NodeId(0), NodeId(1), 0, SimTime::new(1.0), &mut rng)
            .is_delivered());
        assert_eq!(
            n.send(NodeId(0), NodeId(1), 0, SimTime::new(2.5), &mut rng),
            SendOutcome::Outage
        );
        // The outage is symmetric.
        assert_eq!(
            n.send(NodeId(1), NodeId(0), 0, SimTime::new(3.9), &mut rng),
            SendOutcome::Outage
        );
        assert!(n
            .send(NodeId(0), NodeId(1), 0, SimTime::new(4.0), &mut rng)
            .is_delivered());
        assert_eq!(n.stats().outage_drops, 2);
    }

    #[test]
    fn bursty_network_loss_is_correlated_per_edge() {
        let ge = crate::link::GilbertElliott::bursts(0.05, 10.0, 1.0).unwrap();
        let link = LinkSpec::new(0.02, 0.1)
            .unwrap()
            .with_bursty_loss(ge)
            .unwrap();
        let mut n: Network<u32> = Network::new(Topology::ring(6), link);
        let mut rng = SimRng::seed_from(21);
        let outcomes: Vec<bool> = (0..5000)
            .map(|_| {
                n.send(NodeId(0), NodeId(1), 0, SimTime::ZERO, &mut rng)
                    .is_delivered()
            })
            .collect();
        let s = n.stats();
        assert_eq!(s.attempts, 5000);
        assert_eq!(s.accounted(), s.attempts);
        assert!(s.lost > 0, "bursts must lose something");
        // Conditional loss after a loss beats the marginal rate — the
        // defining signature of burstiness.
        let marginal = s.lost as f64 / s.attempts as f64;
        let (mut after, mut after_lost) = (0u32, 0u32);
        for w in outcomes.windows(2) {
            if !w[0] {
                after += 1;
                if !w[1] {
                    after_lost += 1;
                }
            }
        }
        let cond = f64::from(after_lost) / f64::from(after);
        assert!(cond > 1.5 * marginal, "cond {cond} vs marginal {marginal}");
    }

    #[test]
    fn stats_buckets_sum_to_attempts_across_all_variants() {
        // Exercise every SendOutcome variant, then check the invariant.
        let ge = crate::link::GilbertElliott::bursts(0.3, 5.0, 1.0).unwrap();
        let link = LinkSpec::new(0.02, 0.1)
            .unwrap()
            .with_bursty_loss(ge)
            .unwrap();
        let mut n: Network<u32> = Network::new(Topology::ring(6), link);
        n.faults_mut().fail_at(NodeId(4), SimTime::ZERO);
        n.faults_mut()
            .fail_between(NodeId(3), SimTime::new(0.0), SimTime::new(50.0));
        n.faults_mut()
            .outage_between(NodeId(1), NodeId(2), SimTime::new(0.0), SimTime::new(25.0));
        let mut rng = SimRng::seed_from(22);
        let mut seen_outage = false;
        let mut seen_lost = false;
        for i in 0..2000u32 {
            let t = SimTime::new(f64::from(i) * 0.05);
            let _ = n.send(NodeId(4), NodeId(5), 0, t, &mut rng); // SenderFailed
            let _ = n.send(NodeId(0), NodeId(3), 0, t, &mut rng); // NotLinked
            let _ = n.send(NodeId(2), NodeId(3), 0, t, &mut rng); // ReceiverFailed then alive
            match n.send(NodeId(1), NodeId(2), 0, t, &mut rng) {
                SendOutcome::Outage => seen_outage = true,
                SendOutcome::Lost => seen_lost = true,
                _ => {}
            }
            let _ = n.send(NodeId(0), NodeId(1), 0, t, &mut rng); // mostly Delivered
        }
        let s = n.stats();
        assert!(
            seen_outage && seen_lost,
            "outage {seen_outage} lost {seen_lost}"
        );
        assert_eq!(s.attempts, 10_000);
        assert!(s.delivered > 0);
        assert!(s.endpoint_failures > 0);
        assert!(s.unlinked > 0);
        assert!(s.outage_drops > 0);
        assert!(s.lost > 0);
        assert_eq!(s.accounted(), s.attempts);
    }
}
