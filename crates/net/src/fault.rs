//! Fault injection: fail-silent nodes, crash-recovery windows, and
//! transient per-edge link outages.

use oaq_sim::SimTime;

use crate::message::NodeId;

/// One failure interval of a node.
///
/// The interval is half-open `[from, until)`; `until = None` means the node
/// never recovers (the classic fail-silent mode).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailureWindow {
    /// When the node stops sending and receiving.
    pub from: SimTime,
    /// When the node comes back, if ever.
    pub until: Option<SimTime>,
}

impl FailureWindow {
    /// `true` while the window covers `now`.
    #[must_use]
    pub fn covers(&self, now: SimTime) -> bool {
        self.from <= now && self.until.is_none_or(|u| now < u)
    }
}

/// A transient outage of one undirected crosslink edge, half-open
/// `[from, until)`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Outage {
    from: SimTime,
    until: SimTime,
}

/// A schedule of injected faults.
///
/// Three fault classes are supported, matching the robustness campaign's
/// sweep axes:
///
/// * **fail-silent** nodes ([`FaultPlan::fail_at`]): stop sending and
///   receiving at an instant and never recover — the paper's assumed
///   satellite failure mode;
/// * **crash-recovery** nodes ([`FaultPlan::fail_between`]): silent during a
///   window `[from, until)`, then live again — a reboot or a transient
///   payload fault;
/// * **link outages** ([`FaultPlan::outage_between`]): one undirected edge
///   drops every message during a window, while both endpoints stay alive —
///   antenna occlusion, pointing loss, interference.
///
/// All queries are pure functions of the plan and `now`, so a plan is
/// deterministic by construction and can be replayed.
///
/// # Examples
///
/// ```
/// use oaq_net::fault::FaultPlan;
/// use oaq_net::NodeId;
/// use oaq_sim::SimTime;
///
/// let mut plan = FaultPlan::new();
/// plan.fail_at(NodeId(3), SimTime::new(10.0));
/// plan.fail_between(NodeId(4), SimTime::new(2.0), SimTime::new(5.0));
/// assert!(!plan.is_failed(NodeId(3), SimTime::new(9.9)));
/// assert!(plan.is_failed(NodeId(3), SimTime::new(10.0)));
/// assert!(plan.is_failed(NodeId(4), SimTime::new(3.0)));
/// assert!(!plan.is_failed(NodeId(4), SimTime::new(5.0))); // recovered
/// ```
/// Fault queries sit on the protocol's per-event hot path (`alive()` asks
/// `is_failed` for every satellite a coverage scan touches), so the plan
/// stores flat vectors sorted by node (edge) and answers with a binary
/// search instead of hashing — campaign plans hold a handful of entries and
/// the lookup is a couple of comparisons, with no per-query hashing cost.
/// Flat storage also lets [`FaultPlan::clear`] keep every buffer's capacity,
/// so a recycled plan schedules a fresh episode's faults without touching
/// the allocator.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    windows: Vec<(NodeId, FailureWindow)>,
    outages: Vec<((NodeId, NodeId), Outage)>,
}

/// Normalizes an undirected edge key.
fn edge(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a.0 <= b.0 {
        (a, b)
    } else {
        (b, a)
    }
}

impl FaultPlan {
    /// An empty (fault-free) plan.
    #[must_use]
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Forgets every scheduled fault while keeping the buffers' capacity,
    /// so a recycled plan is allocation-free to repopulate.
    pub fn clear(&mut self) {
        self.windows.clear();
        self.outages.clear();
    }

    /// The index range of `node`'s windows in the sorted flat vector.
    fn node_range(&self, node: NodeId) -> std::ops::Range<usize> {
        let lo = self.windows.partition_point(|e| e.0 .0 < node.0);
        let hi = lo + self.windows[lo..].partition_point(|e| e.0 .0 == node.0);
        lo..hi
    }

    /// Schedules `node` to go fail-silent at `at`, permanently. If the node
    /// already has a permanent failure the earlier one wins.
    pub fn fail_at(&mut self, node: NodeId, at: SimTime) {
        let range = self.node_range(node);
        let end = range.end;
        if let Some(e) = self.windows[range].iter_mut().find(|e| e.1.until.is_none()) {
            e.1.from = e.1.from.min(at);
        } else {
            self.windows.insert(
                end,
                (
                    node,
                    FailureWindow {
                        from: at,
                        until: None,
                    },
                ),
            );
        }
    }

    /// Schedules a crash-recovery window: `node` is silent during
    /// `[from, until)` and alive again afterwards.
    ///
    /// # Panics
    ///
    /// Panics unless `from < until`.
    pub fn fail_between(&mut self, node: NodeId, from: SimTime, until: SimTime) {
        assert!(from < until, "failure window must have from < until");
        let at = self.node_range(node).end;
        self.windows.insert(
            at,
            (
                node,
                FailureWindow {
                    from,
                    until: Some(until),
                },
            ),
        );
    }

    /// Schedules a transient outage of the undirected edge `{a, b}` during
    /// `[from, until)`. Messages attempted across the edge in that window
    /// are dropped deterministically.
    ///
    /// # Panics
    ///
    /// Panics unless `from < until`.
    pub fn outage_between(&mut self, a: NodeId, b: NodeId, from: SimTime, until: SimTime) {
        assert!(from < until, "outage window must have from < until");
        let key = edge(a, b);
        let at = self
            .outages
            .partition_point(|e| (e.0 .0 .0, e.0 .1 .0) <= (key.0 .0, key.1 .0));
        self.outages.insert(at, (key, Outage { from, until }));
    }

    /// `true` if any of `node`'s failure windows covers `now`.
    #[must_use]
    pub fn is_failed(&self, node: NodeId, now: SimTime) -> bool {
        let range = self.node_range(node);
        self.windows[range].iter().any(|e| e.1.covers(now))
    }

    /// `true` if the undirected edge `{a, b}` is in an outage at `now`.
    #[must_use]
    pub fn is_outaged(&self, a: NodeId, b: NodeId, now: SimTime) -> bool {
        let key = (edge(a, b).0 .0, edge(a, b).1 .0);
        let lo = self
            .outages
            .partition_point(|e| (e.0 .0 .0, e.0 .1 .0) < key);
        self.outages[lo..]
            .iter()
            .take_while(|e| (e.0 .0 .0, e.0 .1 .0) == key)
            .any(|e| e.1.from <= now && now < e.1.until)
    }

    /// `true` if a failure-detection service with detection latency
    /// `latency_minutes` would report `node` as failed at `now` — i.e. the
    /// node was failed `latency_minutes` ago. A node that recovered less
    /// than one latency ago is still (staly) reported failed, matching how
    /// real hint services lag reality in both directions.
    #[must_use]
    pub fn detected_failed(&self, node: NodeId, now: SimTime, latency_minutes: f64) -> bool {
        // The detector reports the world as it was one latency ago; before
        // one latency has elapsed it has nothing to report. A failure that
        // began after the observation instant is unknown to the detector
        // even if the node is failed right now.
        let observed = now.as_minutes() - latency_minutes;
        observed >= 0.0 && self.is_failed(node, SimTime::new(observed))
    }

    /// The earliest failure onset of `node`, if any window is scheduled.
    #[must_use]
    pub fn failure_time(&self, node: NodeId) -> Option<SimTime> {
        let range = self.node_range(node);
        self.windows[range].iter().map(|e| e.1.from).min()
    }

    /// The failure windows of `node` (empty iterator when none scheduled).
    pub fn failure_windows(&self, node: NodeId) -> impl Iterator<Item = &FailureWindow> {
        let range = self.node_range(node);
        self.windows[range].iter().map(|e| &e.1)
    }

    /// Number of nodes with at least one scheduled failure window.
    #[must_use]
    pub fn len(&self) -> usize {
        let mut n = 0;
        let mut prev = None;
        for e in &self.windows {
            if prev != Some(e.0 .0) {
                n += 1;
                prev = Some(e.0 .0);
            }
        }
        n
    }

    /// Number of scheduled edge outages.
    #[must_use]
    pub fn outage_count(&self) -> usize {
        self.outages.len()
    }

    /// `true` when neither node failures nor edge outages are scheduled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty() && self.outages.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unscheduled_nodes_never_fail() {
        let plan = FaultPlan::new();
        assert!(!plan.is_failed(NodeId(0), SimTime::new(1e9)));
        assert!(plan.is_empty());
    }

    #[test]
    fn earlier_failure_wins() {
        let mut plan = FaultPlan::new();
        plan.fail_at(NodeId(1), SimTime::new(5.0));
        plan.fail_at(NodeId(1), SimTime::new(3.0));
        plan.fail_at(NodeId(1), SimTime::new(9.0));
        assert_eq!(plan.failure_time(NodeId(1)), Some(SimTime::new(3.0)));
        assert_eq!(plan.len(), 1);
    }

    #[test]
    fn boundary_is_inclusive() {
        let mut plan = FaultPlan::new();
        plan.fail_at(NodeId(2), SimTime::new(4.0));
        assert!(plan.is_failed(NodeId(2), SimTime::new(4.0)));
        assert!(!plan.is_failed(NodeId(2), SimTime::new(3.999_999)));
    }

    #[test]
    fn crash_recovery_window_is_half_open() {
        let mut plan = FaultPlan::new();
        plan.fail_between(NodeId(7), SimTime::new(2.0), SimTime::new(5.0));
        assert!(!plan.is_failed(NodeId(7), SimTime::new(1.999)));
        assert!(plan.is_failed(NodeId(7), SimTime::new(2.0)));
        assert!(plan.is_failed(NodeId(7), SimTime::new(4.999)));
        assert!(!plan.is_failed(NodeId(7), SimTime::new(5.0)));
        assert_eq!(plan.failure_time(NodeId(7)), Some(SimTime::new(2.0)));
    }

    #[test]
    fn repeated_crash_recovery_windows_stack() {
        let mut plan = FaultPlan::new();
        plan.fail_between(NodeId(1), SimTime::new(1.0), SimTime::new(2.0));
        plan.fail_between(NodeId(1), SimTime::new(3.0), SimTime::new(4.0));
        assert!(plan.is_failed(NodeId(1), SimTime::new(1.5)));
        assert!(!plan.is_failed(NodeId(1), SimTime::new(2.5)));
        assert!(plan.is_failed(NodeId(1), SimTime::new(3.5)));
        assert_eq!(plan.failure_windows(NodeId(1)).count(), 2);
        assert_eq!(plan.len(), 1);
    }

    #[test]
    fn windowed_failure_then_permanent() {
        let mut plan = FaultPlan::new();
        plan.fail_between(NodeId(2), SimTime::new(1.0), SimTime::new(2.0));
        plan.fail_at(NodeId(2), SimTime::new(10.0));
        assert!(!plan.is_failed(NodeId(2), SimTime::new(5.0)));
        assert!(plan.is_failed(NodeId(2), SimTime::new(11.0)));
        assert_eq!(plan.failure_time(NodeId(2)), Some(SimTime::new(1.0)));
    }

    #[test]
    fn outages_are_undirected_and_half_open() {
        let mut plan = FaultPlan::new();
        plan.outage_between(NodeId(5), NodeId(2), SimTime::new(1.0), SimTime::new(3.0));
        assert!(plan.is_outaged(NodeId(2), NodeId(5), SimTime::new(1.0)));
        assert!(plan.is_outaged(NodeId(5), NodeId(2), SimTime::new(2.999)));
        assert!(!plan.is_outaged(NodeId(2), NodeId(5), SimTime::new(3.0)));
        assert!(!plan.is_outaged(NodeId(2), NodeId(4), SimTime::new(2.0)));
        assert_eq!(plan.outage_count(), 1);
        assert!(!plan.is_empty());
    }

    #[test]
    fn detection_lags_failure_and_recovery() {
        let mut plan = FaultPlan::new();
        plan.fail_between(NodeId(3), SimTime::new(10.0), SimTime::new(20.0));
        // Not yet detected right after failing...
        assert!(!plan.detected_failed(NodeId(3), SimTime::new(11.0), 2.0));
        // ...detected once the latency has elapsed...
        assert!(plan.detected_failed(NodeId(3), SimTime::new(12.0), 2.0));
        // ...stale "failed" report just after recovery...
        assert!(plan.detected_failed(NodeId(3), SimTime::new(21.0), 2.0));
        // ...cleared after another latency.
        assert!(!plan.detected_failed(NodeId(3), SimTime::new(22.0), 2.0));
    }

    #[test]
    fn nothing_is_detected_before_one_latency() {
        let mut plan = FaultPlan::new();
        plan.fail_at(NodeId(0), SimTime::ZERO);
        assert!(!plan.detected_failed(NodeId(0), SimTime::new(1.0), 60.0));
        assert!(plan.detected_failed(NodeId(0), SimTime::new(60.0), 60.0));
    }
}
