//! Fail-silent fault injection.

use std::collections::HashMap;

use oaq_sim::SimTime;

use crate::message::NodeId;

/// A schedule of fail-silent node failures.
///
/// A fail-silent node stops sending and receiving at its failure instant and
/// never recovers (the paper's assumed satellite failure mode; its
/// backward-messaging option exists precisely to tolerate a peer going
/// fail-silent mid-computation).
///
/// # Examples
///
/// ```
/// use oaq_net::fault::FaultPlan;
/// use oaq_net::NodeId;
/// use oaq_sim::SimTime;
///
/// let mut plan = FaultPlan::new();
/// plan.fail_at(NodeId(3), SimTime::new(10.0));
/// assert!(!plan.is_failed(NodeId(3), SimTime::new(9.9)));
/// assert!(plan.is_failed(NodeId(3), SimTime::new(10.0)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    failures: HashMap<NodeId, SimTime>,
}

impl FaultPlan {
    /// An empty (fault-free) plan.
    #[must_use]
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Schedules `node` to go fail-silent at `at`. If the node already has a
    /// failure time the earlier one wins.
    pub fn fail_at(&mut self, node: NodeId, at: SimTime) {
        self.failures
            .entry(node)
            .and_modify(|t| *t = (*t).min(at))
            .or_insert(at);
    }

    /// `true` if `node` has failed at or before `now`.
    #[must_use]
    pub fn is_failed(&self, node: NodeId, now: SimTime) -> bool {
        self.failures.get(&node).is_some_and(|&t| t <= now)
    }

    /// The failure time of `node`, if scheduled.
    #[must_use]
    pub fn failure_time(&self, node: NodeId) -> Option<SimTime> {
        self.failures.get(&node).copied()
    }

    /// Number of scheduled failures.
    #[must_use]
    pub fn len(&self) -> usize {
        self.failures.len()
    }

    /// `true` when no failures are scheduled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.failures.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unscheduled_nodes_never_fail() {
        let plan = FaultPlan::new();
        assert!(!plan.is_failed(NodeId(0), SimTime::new(1e9)));
        assert!(plan.is_empty());
    }

    #[test]
    fn earlier_failure_wins() {
        let mut plan = FaultPlan::new();
        plan.fail_at(NodeId(1), SimTime::new(5.0));
        plan.fail_at(NodeId(1), SimTime::new(3.0));
        plan.fail_at(NodeId(1), SimTime::new(9.0));
        assert_eq!(plan.failure_time(NodeId(1)), Some(SimTime::new(3.0)));
        assert_eq!(plan.len(), 1);
    }

    #[test]
    fn boundary_is_inclusive() {
        let mut plan = FaultPlan::new();
        plan.fail_at(NodeId(2), SimTime::new(4.0));
        assert!(plan.is_failed(NodeId(2), SimTime::new(4.0)));
        assert!(!plan.is_failed(NodeId(2), SimTime::new(3.999_999)));
    }
}
