//! Link delay and loss models.

use oaq_sim::{SimDuration, SimRng};

/// Per-hop link behavior: a uniformly distributed delay in
/// `[min_delay, max_delay]` and an independent loss probability.
///
/// The paper's protocol analysis depends only on δ, the *maximum*
/// inter-satellite message-delivery delay (it appears in TC-2's local
/// threshold `τ − (nδ + Tg)`), so the delay distribution is bounded by
/// construction and [`LinkSpec::max_delay`] is exactly that δ.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    min_delay: f64,
    max_delay: f64,
    loss_probability: f64,
}

/// Error constructing a [`LinkSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidLinkSpec(String);

impl std::fmt::Display for InvalidLinkSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid link spec: {}", self.0)
    }
}

impl std::error::Error for InvalidLinkSpec {}

impl LinkSpec {
    /// Creates a lossless link with delay in `[min_delay, max_delay]`
    /// minutes.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidLinkSpec`] when `0 ≤ min ≤ max` is violated or the
    /// bounds are non-finite.
    pub fn new(min_delay: f64, max_delay: f64) -> Result<Self, InvalidLinkSpec> {
        if !(min_delay.is_finite() && max_delay.is_finite()) {
            return Err(InvalidLinkSpec("delays must be finite".to_string()));
        }
        if min_delay < 0.0 || min_delay > max_delay {
            return Err(InvalidLinkSpec(format!(
                "need 0 <= min <= max, got [{min_delay}, {max_delay}]"
            )));
        }
        Ok(LinkSpec {
            min_delay,
            max_delay,
            loss_probability: 0.0,
        })
    }

    /// A fixed-delay lossless link.
    ///
    /// # Panics
    ///
    /// Panics if `delay` is negative or non-finite.
    #[must_use]
    pub fn fixed(delay: f64) -> Self {
        LinkSpec::new(delay, delay).expect("fixed delay must be non-negative and finite")
    }

    /// Sets the per-message loss probability.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidLinkSpec`] if `p` is outside `[0, 1)`. (Probability
    /// 1 would make every send a silent no-op, which is never what a model
    /// wants; use a [`crate::fault::FaultPlan`] to kill a node instead.)
    pub fn with_loss(mut self, p: f64) -> Result<Self, InvalidLinkSpec> {
        if !(0.0..1.0).contains(&p) {
            return Err(InvalidLinkSpec(format!("loss probability {p} not in [0,1)")));
        }
        self.loss_probability = p;
        Ok(self)
    }

    /// The maximum delay δ this link can impose.
    #[must_use]
    pub fn max_delay(&self) -> SimDuration {
        SimDuration::new(self.max_delay)
    }

    /// The minimum delay.
    #[must_use]
    pub fn min_delay(&self) -> SimDuration {
        SimDuration::new(self.min_delay)
    }

    /// The per-message loss probability.
    #[must_use]
    pub fn loss_probability(&self) -> f64 {
        self.loss_probability
    }

    /// Samples one message delay.
    pub fn sample_delay(&self, rng: &mut SimRng) -> SimDuration {
        if self.min_delay == self.max_delay {
            return SimDuration::new(self.min_delay);
        }
        SimDuration::new(rng.uniform(self.min_delay, self.max_delay))
    }

    /// Samples whether one message is lost.
    pub fn sample_loss(&self, rng: &mut SimRng) -> bool {
        self.loss_probability > 0.0 && rng.chance(self.loss_probability)
    }
}

impl Default for LinkSpec {
    /// A lossless link with delay uniform in `[0.02, 0.10]` minutes
    /// (1.2–6 s), a plausible crosslink store-and-forward budget; its
    /// `max_delay` is the δ = 0.1 min used throughout the workspace's
    /// default protocol configuration.
    fn default() -> Self {
        LinkSpec::new(0.02, 0.10).expect("default bounds are valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_respect_bounds() {
        let spec = LinkSpec::new(0.05, 0.2).unwrap();
        let mut rng = SimRng::seed_from(1);
        for _ in 0..1000 {
            let d = spec.sample_delay(&mut rng).as_minutes();
            assert!((0.05..=0.2).contains(&d));
        }
    }

    #[test]
    fn fixed_delay_is_deterministic() {
        let spec = LinkSpec::fixed(0.1);
        let mut rng = SimRng::seed_from(2);
        assert_eq!(spec.sample_delay(&mut rng).as_minutes(), 0.1);
        assert_eq!(spec.max_delay().as_minutes(), 0.1);
    }

    #[test]
    fn loss_rate_is_respected() {
        let spec = LinkSpec::fixed(0.1).with_loss(0.3).unwrap();
        let mut rng = SimRng::seed_from(3);
        let lost = (0..10_000).filter(|_| spec.sample_loss(&mut rng)).count();
        let rate = lost as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.02, "observed loss rate {rate}");
    }

    #[test]
    fn lossless_never_drops() {
        let spec = LinkSpec::fixed(0.1);
        let mut rng = SimRng::seed_from(4);
        assert!((0..100).all(|_| !spec.sample_loss(&mut rng)));
    }

    #[test]
    fn invalid_specs_rejected() {
        assert!(LinkSpec::new(-0.1, 0.2).is_err());
        assert!(LinkSpec::new(0.3, 0.2).is_err());
        assert!(LinkSpec::new(0.0, f64::NAN).is_err());
        assert!(LinkSpec::fixed(0.1).with_loss(1.0).is_err());
        assert!(LinkSpec::fixed(0.1).with_loss(-0.1).is_err());
    }

    #[test]
    fn error_display() {
        let e = LinkSpec::new(2.0, 1.0).unwrap_err();
        assert!(e.to_string().contains("invalid link spec"));
    }
}
