//! Link delay and loss models.

use oaq_sim::{SimDuration, SimRng};

/// Validates a per-message loss probability, the single source of truth for
/// every config in the workspace that carries one (`LinkSpec`,
/// `oaq_core::ProtocolConfig`, `oaq_membership::MembershipConfig`).
///
/// Probability 1 is rejected: it would make every send a silent no-op,
/// which is never what a model wants — use a [`crate::fault::FaultPlan`] to
/// kill a node or outage an edge instead.
///
/// # Errors
///
/// Returns [`InvalidLossProbability`] if `p` is not in `[0, 1)` (NaN
/// included).
pub fn validate_loss_probability(p: f64) -> Result<f64, InvalidLossProbability> {
    if (0.0..1.0).contains(&p) {
        Ok(p)
    } else {
        Err(InvalidLossProbability(p))
    }
}

/// A loss probability outside `[0, 1)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InvalidLossProbability(pub f64);

impl std::fmt::Display for InvalidLossProbability {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "loss probability {} not in [0,1)", self.0)
    }
}

impl std::error::Error for InvalidLossProbability {}

/// Parameters of a two-state Gilbert–Elliott bursty-loss channel.
///
/// The channel alternates between a *good* and a *bad* (burst) state, with
/// per-message transition probabilities; each message is then lost with the
/// current state's loss probability. Burst lengths are geometric with mean
/// `1 / exit_burst` messages.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GilbertElliott {
    /// P(good → bad) evaluated per message.
    pub enter_burst: f64,
    /// P(bad → good) evaluated per message.
    pub exit_burst: f64,
    /// Loss probability while in the good state.
    pub loss_good: f64,
    /// Loss probability while in the bad state.
    pub loss_bad: f64,
}

impl GilbertElliott {
    /// A convenient burst channel: lossless good state, `loss_bad` in
    /// bursts, with the given per-message entry probability and mean burst
    /// length (messages).
    ///
    /// # Errors
    ///
    /// Returns [`InvalidLinkSpec`] when any derived probability is invalid
    /// (see [`GilbertElliott::validate`]).
    pub fn bursts(
        enter_burst: f64,
        mean_burst_len: f64,
        loss_bad: f64,
    ) -> Result<Self, InvalidLinkSpec> {
        if !(mean_burst_len.is_finite() && mean_burst_len >= 1.0) {
            return Err(InvalidLinkSpec(format!(
                "mean burst length must be >= 1, got {mean_burst_len}"
            )));
        }
        let ge = GilbertElliott {
            enter_burst,
            exit_burst: 1.0 / mean_burst_len,
            loss_good: 0.0,
            loss_bad,
        };
        ge.validate()?;
        Ok(ge)
    }

    /// Checks all four probabilities.
    ///
    /// `enter_burst`/`exit_burst`/`loss_bad` live in `[0, 1]`; `loss_good`
    /// in `[0, 1)` (a good state losing everything is a misconfiguration).
    ///
    /// # Errors
    ///
    /// Returns [`InvalidLinkSpec`] naming the offending field.
    pub fn validate(&self) -> Result<(), InvalidLinkSpec> {
        let unit = |name: &str, v: f64| {
            if (0.0..=1.0).contains(&v) {
                Ok(())
            } else {
                Err(InvalidLinkSpec(format!("{name} {v} not in [0,1]")))
            }
        };
        unit("enter_burst", self.enter_burst)?;
        unit("exit_burst", self.exit_burst)?;
        unit("loss_bad", self.loss_bad)?;
        validate_loss_probability(self.loss_good)
            .map_err(|e| InvalidLinkSpec(format!("loss_good: {e}")))?;
        Ok(())
    }

    /// The stationary (long-run) fraction of messages lost.
    #[must_use]
    pub fn stationary_loss(&self) -> f64 {
        let denom = self.enter_burst + self.exit_burst;
        if denom == 0.0 {
            // The chain never leaves its initial good state.
            return self.loss_good;
        }
        let pi_bad = self.enter_burst / denom;
        pi_bad * self.loss_bad + (1.0 - pi_bad) * self.loss_good
    }
}

/// How a link loses messages.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LossModel {
    /// Each message is lost independently with probability `p`.
    Iid {
        /// Per-message loss probability.
        p: f64,
    },
    /// Bursty loss from a two-state Markov channel; the chain state lives
    /// per edge in [`LossState`] (a [`LinkSpec`] stays a stateless spec).
    GilbertElliott(GilbertElliott),
}

/// Per-edge channel state for sampling a [`LossModel`].
///
/// For i.i.d. loss this is stateless; for Gilbert–Elliott it carries the
/// current Markov state. One `LossState` per (undirected) edge gives each
/// crosslink its own independent burst process.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LossState {
    in_burst: bool,
}

impl LossState {
    /// A channel starting in the good state.
    #[must_use]
    pub fn new() -> Self {
        LossState::default()
    }

    /// `true` while the channel is in its burst state.
    #[must_use]
    pub fn in_burst(&self) -> bool {
        self.in_burst
    }

    /// Samples whether one message is lost, advancing the chain first.
    ///
    /// RNG discipline: i.i.d. mode draws at most once (and not at all when
    /// `p == 0`), identical to the historical `LinkSpec::sample_loss`;
    /// Gilbert–Elliott mode always draws exactly twice (transition, then
    /// loss), so the consumed stream depends only on the number of calls.
    pub fn sample(&mut self, model: &LossModel, rng: &mut SimRng) -> bool {
        match *model {
            LossModel::Iid { p } => p > 0.0 && rng.chance(p),
            LossModel::GilbertElliott(ge) => {
                let flip = if self.in_burst {
                    ge.exit_burst
                } else {
                    ge.enter_burst
                };
                if rng.chance(flip) {
                    self.in_burst = !self.in_burst;
                }
                let p = if self.in_burst {
                    ge.loss_bad
                } else {
                    ge.loss_good
                };
                rng.chance(p)
            }
        }
    }
}

/// Per-hop link behavior: a uniformly distributed delay in
/// `[min_delay, max_delay]` and a loss model (i.i.d. or bursty).
///
/// The paper's protocol analysis depends only on δ, the *maximum*
/// inter-satellite message-delivery delay (it appears in TC-2's local
/// threshold `τ − (nδ + Tg)`), so the delay distribution is bounded by
/// construction and [`LinkSpec::max_delay`] is exactly that δ.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    min_delay: f64,
    max_delay: f64,
    loss: LossModel,
}

/// Error constructing a [`LinkSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidLinkSpec(String);

impl std::fmt::Display for InvalidLinkSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid link spec: {}", self.0)
    }
}

impl std::error::Error for InvalidLinkSpec {}

impl LinkSpec {
    /// Creates a lossless link with delay in `[min_delay, max_delay]`
    /// minutes.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidLinkSpec`] when `0 ≤ min ≤ max` is violated or the
    /// bounds are non-finite.
    pub fn new(min_delay: f64, max_delay: f64) -> Result<Self, InvalidLinkSpec> {
        if !(min_delay.is_finite() && max_delay.is_finite()) {
            return Err(InvalidLinkSpec("delays must be finite".to_string()));
        }
        if min_delay < 0.0 || min_delay > max_delay {
            return Err(InvalidLinkSpec(format!(
                "need 0 <= min <= max, got [{min_delay}, {max_delay}]"
            )));
        }
        Ok(LinkSpec {
            min_delay,
            max_delay,
            loss: LossModel::Iid { p: 0.0 },
        })
    }

    /// A fixed-delay lossless link.
    ///
    /// # Panics
    ///
    /// Panics if `delay` is negative or non-finite.
    #[must_use]
    pub fn fixed(delay: f64) -> Self {
        LinkSpec::new(delay, delay).expect("fixed delay must be non-negative and finite")
    }

    /// Sets i.i.d. per-message loss with probability `p`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidLinkSpec`] if `p` is outside `[0, 1)` (see
    /// [`validate_loss_probability`]).
    pub fn with_loss(mut self, p: f64) -> Result<Self, InvalidLinkSpec> {
        let p = validate_loss_probability(p).map_err(|e| InvalidLinkSpec(e.to_string()))?;
        self.loss = LossModel::Iid { p };
        Ok(self)
    }

    /// Sets Gilbert–Elliott bursty loss.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidLinkSpec`] when `ge` fails
    /// [`GilbertElliott::validate`].
    pub fn with_bursty_loss(mut self, ge: GilbertElliott) -> Result<Self, InvalidLinkSpec> {
        ge.validate()?;
        self.loss = LossModel::GilbertElliott(ge);
        Ok(self)
    }

    /// The maximum delay δ this link can impose.
    #[must_use]
    pub fn max_delay(&self) -> SimDuration {
        SimDuration::new(self.max_delay)
    }

    /// The minimum delay.
    #[must_use]
    pub fn min_delay(&self) -> SimDuration {
        SimDuration::new(self.min_delay)
    }

    /// The marginal per-message loss probability: the i.i.d. `p`, or the
    /// stationary loss fraction of the Gilbert–Elliott chain.
    #[must_use]
    pub fn loss_probability(&self) -> f64 {
        match self.loss {
            LossModel::Iid { p } => p,
            LossModel::GilbertElliott(ge) => ge.stationary_loss(),
        }
    }

    /// The loss model.
    #[must_use]
    pub fn loss_model(&self) -> &LossModel {
        &self.loss
    }

    /// Samples one message delay.
    pub fn sample_delay(&self, rng: &mut SimRng) -> SimDuration {
        if self.min_delay == self.max_delay {
            return SimDuration::new(self.min_delay);
        }
        SimDuration::new(rng.uniform(self.min_delay, self.max_delay))
    }

    /// Samples whether one message is lost on a *stateless* channel.
    ///
    /// Exact historical behavior for i.i.d. loss. For a bursty link this
    /// uses a throwaway good-state [`LossState`]; channels that must
    /// remember burst state across messages (i.e. every edge of a
    /// [`crate::Network`]) sample through a persistent `LossState` instead.
    pub fn sample_loss(&self, rng: &mut SimRng) -> bool {
        LossState::new().sample(&self.loss, rng)
    }
}

impl Default for LinkSpec {
    /// A lossless link with delay uniform in `[0.02, 0.10]` minutes
    /// (1.2–6 s), a plausible crosslink store-and-forward budget; its
    /// `max_delay` is the δ = 0.1 min used throughout the workspace's
    /// default protocol configuration.
    fn default() -> Self {
        LinkSpec::new(0.02, 0.10).expect("default bounds are valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_respect_bounds() {
        let spec = LinkSpec::new(0.05, 0.2).unwrap();
        let mut rng = SimRng::seed_from(1);
        for _ in 0..1000 {
            let d = spec.sample_delay(&mut rng).as_minutes();
            assert!((0.05..=0.2).contains(&d));
        }
    }

    #[test]
    fn fixed_delay_is_deterministic() {
        let spec = LinkSpec::fixed(0.1);
        let mut rng = SimRng::seed_from(2);
        assert_eq!(spec.sample_delay(&mut rng).as_minutes(), 0.1);
        assert_eq!(spec.max_delay().as_minutes(), 0.1);
    }

    #[test]
    fn loss_rate_is_respected() {
        let spec = LinkSpec::fixed(0.1).with_loss(0.3).unwrap();
        let mut rng = SimRng::seed_from(3);
        let lost = (0..10_000).filter(|_| spec.sample_loss(&mut rng)).count();
        let rate = lost as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.02, "observed loss rate {rate}");
    }

    #[test]
    fn lossless_never_drops() {
        let spec = LinkSpec::fixed(0.1);
        let mut rng = SimRng::seed_from(4);
        assert!((0..100).all(|_| !spec.sample_loss(&mut rng)));
    }

    #[test]
    fn invalid_specs_rejected() {
        assert!(LinkSpec::new(-0.1, 0.2).is_err());
        assert!(LinkSpec::new(0.3, 0.2).is_err());
        assert!(LinkSpec::new(0.0, f64::NAN).is_err());
        assert!(LinkSpec::fixed(0.1).with_loss(1.0).is_err());
        assert!(LinkSpec::fixed(0.1).with_loss(-0.1).is_err());
    }

    #[test]
    fn error_display() {
        let e = LinkSpec::new(2.0, 1.0).unwrap_err();
        assert!(e.to_string().contains("invalid link spec"));
    }

    #[test]
    fn loss_probability_validator_is_shared() {
        assert_eq!(validate_loss_probability(0.0), Ok(0.0));
        assert_eq!(validate_loss_probability(0.999), Ok(0.999));
        assert!(validate_loss_probability(1.0).is_err());
        assert!(validate_loss_probability(-0.01).is_err());
        assert!(validate_loss_probability(f64::NAN).is_err());
        let msg = validate_loss_probability(1.5).unwrap_err().to_string();
        assert!(msg.contains("not in [0,1)"), "{msg}");
    }

    #[test]
    fn gilbert_elliott_losses_cluster_in_bursts() {
        // Rare long bursts that drop everything: losses must be far more
        // correlated with the previous message's fate than i.i.d. loss at
        // the same marginal rate.
        let ge = GilbertElliott::bursts(0.02, 20.0, 1.0).unwrap();
        let spec = LinkSpec::fixed(0.1).with_bursty_loss(ge).unwrap();
        let mut state = LossState::new();
        let mut rng = SimRng::seed_from(5);
        let outcomes: Vec<bool> = (0..20_000)
            .map(|_| state.sample(spec.loss_model(), &mut rng))
            .collect();
        let rate = outcomes.iter().filter(|&&l| l).count() as f64 / outcomes.len() as f64;
        let expected = ge.stationary_loss();
        assert!((rate - expected).abs() < 0.05, "rate {rate} vs {expected}");
        // P(lost | previous lost) >> marginal rate.
        let mut after_loss = 0usize;
        let mut after_loss_lost = 0usize;
        for w in outcomes.windows(2) {
            if w[0] {
                after_loss += 1;
                if w[1] {
                    after_loss_lost += 1;
                }
            }
        }
        let cond = after_loss_lost as f64 / after_loss as f64;
        assert!(cond > 2.0 * rate, "cond {cond} vs marginal {rate}");
    }

    #[test]
    fn gilbert_elliott_stationary_loss() {
        let ge = GilbertElliott {
            enter_burst: 0.1,
            exit_burst: 0.3,
            loss_good: 0.0,
            loss_bad: 0.8,
        };
        // π_bad = 0.1 / 0.4 = 0.25 → marginal 0.2.
        assert!((ge.stationary_loss() - 0.2).abs() < 1e-12);
        let spec = LinkSpec::fixed(0.1).with_bursty_loss(ge).unwrap();
        assert!((spec.loss_probability() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn gilbert_elliott_validation() {
        assert!(GilbertElliott::bursts(-0.1, 5.0, 1.0).is_err());
        assert!(GilbertElliott::bursts(0.1, 0.5, 1.0).is_err());
        assert!(GilbertElliott::bursts(0.1, 5.0, 1.5).is_err());
        let bad_good = GilbertElliott {
            enter_burst: 0.1,
            exit_burst: 0.5,
            loss_good: 1.0,
            loss_bad: 1.0,
        };
        assert!(bad_good.validate().is_err());
        assert!(LinkSpec::fixed(0.1).with_bursty_loss(bad_good).is_err());
    }

    #[test]
    fn iid_sampling_draw_discipline_is_stable() {
        // p == 0 must not consume randomness (seed-sensitive callers rely
        // on it), p > 0 consumes exactly one draw per message.
        let lossless = LinkSpec::fixed(0.1);
        let mut a = SimRng::seed_from(9);
        let mut b = SimRng::seed_from(9);
        for _ in 0..10 {
            let _ = lossless.sample_loss(&mut a);
        }
        assert_eq!(a.unit(), b.unit());
    }
}
