//! Addresses and message envelopes.

use bytes::Bytes;
use oaq_sim::SimTime;

/// A network address (one satellite's crosslink endpoint).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// A message in flight (or delivered): source, destination, payload and the
/// timestamps a protocol needs for deadline bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope<P> {
    /// Sender.
    pub src: NodeId,
    /// Receiver.
    pub dst: NodeId,
    /// When the message was handed to the network.
    pub sent_at: SimTime,
    /// When the message arrives at `dst`.
    pub arrival: SimTime,
    /// Application payload.
    pub payload: P,
}

impl<P> Envelope<P> {
    /// One-way latency experienced by this message.
    #[must_use]
    pub fn latency(&self) -> oaq_sim::SimDuration {
        self.arrival.duration_since(self.sent_at)
    }

    /// Maps the payload, keeping the routing metadata.
    #[must_use]
    pub fn map<Q>(self, f: impl FnOnce(P) -> Q) -> Envelope<Q> {
        Envelope {
            src: self.src,
            dst: self.dst,
            sent_at: self.sent_at,
            arrival: self.arrival,
            payload: f(self.payload),
        }
    }
}

/// A compact wire encoding for payloads that cross a byte-oriented link
/// (length-prefixed tag + body). Real crosslinks move frames, not Rust
/// enums; this helper keeps a simulated payload honest about its size,
/// which the bench harness uses to account link occupancy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WirePayload {
    tag: u8,
    body: Bytes,
}

impl WirePayload {
    /// Creates a payload with a protocol `tag` and opaque `body`.
    #[must_use]
    pub fn new(tag: u8, body: impl Into<Bytes>) -> Self {
        WirePayload {
            tag,
            body: body.into(),
        }
    }

    /// The protocol tag.
    #[must_use]
    pub fn tag(&self) -> u8 {
        self.tag
    }

    /// The opaque body.
    #[must_use]
    pub fn body(&self) -> &Bytes {
        &self.body
    }

    /// Serialized size in bytes (1 tag byte + 4 length bytes + body).
    #[must_use]
    pub fn wire_size(&self) -> usize {
        1 + 4 + self.body.len()
    }

    /// Encodes to bytes.
    #[must_use]
    pub fn encode(&self) -> Bytes {
        let mut buf = Vec::with_capacity(self.wire_size());
        buf.push(self.tag);
        buf.extend_from_slice(&(self.body.len() as u32).to_be_bytes());
        buf.extend_from_slice(&self.body);
        Bytes::from(buf)
    }

    /// Decodes from bytes.
    ///
    /// Returns `None` on truncated or inconsistent input.
    #[must_use]
    pub fn decode(bytes: &Bytes) -> Option<Self> {
        if bytes.len() < 5 {
            return None;
        }
        let tag = bytes[0];
        let len = u32::from_be_bytes([bytes[1], bytes[2], bytes[3], bytes[4]]) as usize;
        if bytes.len() != 5 + len {
            return None;
        }
        Some(WirePayload {
            tag,
            body: bytes.slice(5..),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_latency() {
        let e = Envelope {
            src: NodeId(1),
            dst: NodeId(2),
            sent_at: SimTime::new(1.0),
            arrival: SimTime::new(1.25),
            payload: (),
        };
        assert_eq!(e.latency().as_minutes(), 0.25);
    }

    #[test]
    fn envelope_map_preserves_routing() {
        let e = Envelope {
            src: NodeId(1),
            dst: NodeId(2),
            sent_at: SimTime::ZERO,
            arrival: SimTime::new(0.1),
            payload: 5u32,
        };
        let f = e.map(|p| p * 2);
        assert_eq!(f.payload, 10);
        assert_eq!(f.src, NodeId(1));
    }

    #[test]
    fn wire_roundtrip() {
        let p = WirePayload::new(7, vec![1, 2, 3, 4]);
        let decoded = WirePayload::decode(&p.encode()).unwrap();
        assert_eq!(decoded, p);
        assert_eq!(p.wire_size(), 9);
    }

    #[test]
    fn wire_decode_rejects_garbage() {
        assert!(WirePayload::decode(&Bytes::from_static(&[1, 2])).is_none());
        let mut bad = WirePayload::new(1, vec![9; 3]).encode().to_vec();
        bad.pop();
        assert!(WirePayload::decode(&Bytes::from(bad)).is_none());
    }

    #[test]
    fn empty_body_roundtrips() {
        let p = WirePayload::new(0, Vec::new());
        assert_eq!(WirePayload::decode(&p.encode()).unwrap(), p);
    }

    #[test]
    fn node_display() {
        assert_eq!(NodeId(3).to_string(), "node3");
    }
}
