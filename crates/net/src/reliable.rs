//! Reliable delivery: ACK/timeout/retransmit over [`Network::send`].
//!
//! The paper's protocol analysis assumes every crosslink message arrives
//! within δ. Under loss, outages, and crash-recovery faults that assumption
//! breaks; this layer restores a *bounded* delivery guarantee by
//! retransmitting up to a retry budget, and exposes the resulting
//! worst-case delay [`RetryPolicy::effective_delay`] (δ_eff) so the
//! protocol can substitute it into the paper's TC formulas. When the budget
//! is exhausted the sender learns it definitively ([`ReliableOutcome::GaveUp`]
//! at a known instant), which is what lets the protocol degrade gracefully
//! instead of silently waiting out τ.

use oaq_sim::{SimDuration, SimRng, SimTime};

use crate::message::{Envelope, NodeId};
use crate::network::{Network, SendOutcome};

/// Retransmission budget and pacing for one logical send.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    retries: u32,
    ack_timeout: SimDuration,
}

impl RetryPolicy {
    /// No retransmissions: a single try, semantically identical to a plain
    /// [`Network::send`], with δ_eff = δ.
    #[must_use]
    pub fn none() -> Self {
        RetryPolicy {
            retries: 0,
            ack_timeout: SimDuration::ZERO,
        }
    }

    /// Up to `retries` retransmissions, each after waiting `ack_timeout`
    /// for an acknowledgement of the previous try.
    ///
    /// # Panics
    ///
    /// Panics if `retries > 0` and `ack_timeout` is zero (the retry
    /// timeline would not advance). The timeout should exceed one
    /// round trip (2δ) to avoid spurious retransmissions.
    #[must_use]
    pub fn new(retries: u32, ack_timeout: SimDuration) -> Self {
        assert!(
            retries == 0 || !ack_timeout.is_zero(),
            "retrying with a zero ack timeout would retransmit instantly"
        );
        RetryPolicy {
            retries,
            ack_timeout,
        }
    }

    /// Retransmissions beyond the first try.
    #[must_use]
    pub fn retries(&self) -> u32 {
        self.retries
    }

    /// Total tries (first attempt + retries).
    #[must_use]
    pub fn max_tries(&self) -> u32 {
        self.retries + 1
    }

    /// Per-try acknowledgement wait.
    #[must_use]
    pub fn ack_timeout(&self) -> SimDuration {
        self.ack_timeout
    }

    /// δ_eff: the worst-case delay of a *successful* reliable send, given
    /// the link's one-way bound δ.
    ///
    /// With no retries this is δ itself; with `r` retries it is the
    /// conservative `r × (ack_timeout + δ)` from the issue model, which
    /// dominates the tight bound `r × ack_timeout + δ` (the last try starts
    /// at `r × ack_timeout` and lands within δ). The protocol substitutes
    /// this value for δ in TC-2's `τ − (nδ + T_g)` and in the wait-timeout
    /// `τ − (n−1)δ`.
    #[must_use]
    pub fn effective_delay(&self, delta: SimDuration) -> SimDuration {
        if self.retries == 0 {
            delta
        } else {
            SimDuration::new(
                f64::from(self.retries) * (self.ack_timeout.as_minutes() + delta.as_minutes()),
            )
        }
    }

    /// When a sender that started at `sent_at` and exhausted the budget
    /// concludes the send failed: after the last try's timeout expires.
    #[must_use]
    pub fn give_up_time(&self, sent_at: SimTime) -> SimTime {
        sent_at + SimDuration::new(f64::from(self.max_tries()) * self.ack_timeout.as_minutes())
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::none()
    }
}

/// What a reliable send concluded.
#[derive(Debug, Clone, PartialEq)]
pub enum ReliableOutcome<P> {
    /// At least one try got through; `envelope` is the earliest-arriving
    /// copy (the receiver deduplicates the rest).
    Delivered {
        /// The delivered copy the receiver processes first.
        envelope: Envelope<P>,
        /// Tries actually transmitted (≥ 1).
        tries: u32,
        /// Extra copies the receiver must deduplicate.
        duplicates: u32,
    },
    /// Every try was dropped; the sender knows it at `gave_up_at`.
    GaveUp {
        /// Tries transmitted before exhausting the budget.
        tries: u32,
        /// When the sender concludes failure (last timeout expiry).
        gave_up_at: SimTime,
    },
    /// The sender was fail-silent before or during the retry sequence.
    SenderFailed,
    /// No crosslink exists; retrying cannot help.
    NotLinked,
}

impl<P> ReliableOutcome<P> {
    /// The delivered envelope, if any try got through.
    #[must_use]
    pub fn delivered(self) -> Option<Envelope<P>> {
        match self {
            ReliableOutcome::Delivered { envelope, .. } => Some(envelope),
            _ => None,
        }
    }

    /// `true` when the message arrived.
    #[must_use]
    pub fn is_delivered(&self) -> bool {
        matches!(self, ReliableOutcome::Delivered { .. })
    }
}

/// Cumulative reliable-layer counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReliableStats {
    /// Logical sends requested.
    pub sends: u64,
    /// Logical sends that delivered.
    pub delivered: u64,
    /// Logical sends that exhausted the retry budget.
    pub gave_up: u64,
    /// Retransmissions beyond first tries.
    pub retransmissions: u64,
    /// Duplicate copies delivered (receiver-side dedup work).
    pub duplicates: u64,
    /// Acknowledgements lost or outaged on the reverse path.
    pub acks_lost: u64,
}

/// The ACK/timeout/retransmit wrapper.
///
/// Owns a [`RetryPolicy`] and counters; borrows the [`Network`] per send so
/// one network can serve many reliable endpoints.
///
/// The whole retry timeline of a logical send is simulated eagerly at call
/// time (try `i` transmits at `sent_at + i × ack_timeout`), which keeps the
/// caller's event loop simple: schedule the returned envelope's arrival,
/// and on [`ReliableOutcome::GaveUp`] schedule the fallback at
/// `gave_up_at`. Determinism is preserved because the consumed RNG stream
/// depends only on the (deterministic) sequence of reliable sends.
#[derive(Debug, Clone, Default)]
pub struct ReliableLink {
    policy: RetryPolicy,
    stats: ReliableStats,
}

impl ReliableLink {
    /// A reliable link with the given policy.
    #[must_use]
    pub fn new(policy: RetryPolicy) -> Self {
        ReliableLink {
            policy,
            stats: ReliableStats::default(),
        }
    }

    /// The policy.
    #[must_use]
    pub fn policy(&self) -> RetryPolicy {
        self.policy
    }

    /// Cumulative counters.
    #[must_use]
    pub fn stats(&self) -> ReliableStats {
        self.stats
    }

    /// Sends `payload` from `src` to `dst` with retransmissions.
    ///
    /// Per try: transmit through the network; on delivery the receiver
    /// acks, and the ACK itself rides the same lossy/outage-prone edge
    /// back. The sender stops retransmitting at the first ACK arrival (or
    /// on its own failure); tries whose transmit instant precedes that
    /// arrival still go out, producing duplicates the receiver must
    /// deduplicate. Dropped tries (random loss, outage, dead receiver) are
    /// simply retried after `ack_timeout`.
    pub fn send<P: Clone>(
        &mut self,
        net: &mut Network<P>,
        src: NodeId,
        dst: NodeId,
        payload: P,
        now: SimTime,
        rng: &mut SimRng,
    ) -> ReliableOutcome<P> {
        self.stats.sends += 1;
        let timeout = self.policy.ack_timeout;
        let mut best: Option<Envelope<P>> = None;
        let mut duplicates: u32 = 0;
        let mut ack_at: Option<SimTime> = None;
        let mut tries: u32 = 0;
        for i in 0..self.policy.max_tries() {
            let t = now + SimDuration::new(f64::from(i) * timeout.as_minutes());
            if ack_at.is_some_and(|a| a <= t) {
                // The sender already holds an acknowledgement.
                break;
            }
            tries += 1;
            if i > 0 {
                self.stats.retransmissions += 1;
            }
            match net.send(src, dst, payload.clone(), t, rng) {
                SendOutcome::Delivered(env) => {
                    if best.is_some() {
                        duplicates += 1;
                        self.stats.duplicates += 1;
                    }
                    let arrival = env.arrival;
                    match &best {
                        Some(b) if b.arrival <= arrival => {}
                        _ => best = Some(env),
                    }
                    // ACK on the reverse path: subject to the same outage
                    // window and loss process, then a one-way delay; the
                    // sender must be alive to process it.
                    if net.faults().is_outaged(dst, src, arrival)
                        || net.sample_edge_loss(dst, src, rng)
                    {
                        self.stats.acks_lost += 1;
                    } else {
                        let ack_arrival = arrival + net.link().sample_delay(rng);
                        if net.faults().is_failed(src, ack_arrival) {
                            // Nobody is left to retransmit either.
                            break;
                        }
                        ack_at = Some(ack_at.map_or(ack_arrival, |a| a.min(ack_arrival)));
                    }
                }
                SendOutcome::SenderFailed => {
                    return ReliableOutcome::SenderFailed;
                }
                SendOutcome::NotLinked => {
                    return ReliableOutcome::NotLinked;
                }
                SendOutcome::ReceiverFailed | SendOutcome::Outage | SendOutcome::Lost => {
                    // Silent drop: wait out the ack timeout and retry.
                }
            }
        }
        match best {
            Some(envelope) => {
                self.stats.delivered += 1;
                ReliableOutcome::Delivered {
                    envelope,
                    tries,
                    duplicates,
                }
            }
            None => {
                self.stats.gave_up += 1;
                ReliableOutcome::GaveUp {
                    tries,
                    gave_up_at: self.policy.give_up_time(now),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::{GilbertElliott, LinkSpec};
    use crate::topology::Topology;

    fn net(loss: f64) -> Network<u32> {
        let link = LinkSpec::new(0.02, 0.1).unwrap().with_loss(loss).unwrap();
        Network::new(Topology::ring(6), link)
    }

    #[test]
    fn lossless_send_is_one_try() {
        let mut n = net(0.0);
        let mut rl = ReliableLink::new(RetryPolicy::new(3, SimDuration::new(0.3)));
        let mut rng = SimRng::seed_from(1);
        let out = rl.send(&mut n, NodeId(0), NodeId(1), 7, SimTime::new(1.0), &mut rng);
        match out {
            ReliableOutcome::Delivered {
                envelope,
                tries,
                duplicates,
            } => {
                assert_eq!(envelope.payload, 7);
                assert_eq!(tries, 1);
                assert_eq!(duplicates, 0);
            }
            other => panic!("expected delivery, got {other:?}"),
        }
        assert_eq!(rl.stats().retransmissions, 0);
    }

    #[test]
    fn retries_recover_from_loss() {
        // Heavy i.i.d. loss: with 5 retries nearly every logical send gets
        // through, without them nearly half are lost.
        let mut with_retries = net(0.4);
        let mut without = net(0.4);
        let mut rl = ReliableLink::new(RetryPolicy::new(5, SimDuration::new(0.3)));
        let mut plain = ReliableLink::new(RetryPolicy::none());
        let mut rng_a = SimRng::seed_from(2);
        let mut rng_b = SimRng::seed_from(2);
        let trials = 500;
        let mut ok_retry = 0;
        let mut ok_plain = 0;
        for i in 0..trials {
            let t = SimTime::new(f64::from(i) * 10.0);
            if rl
                .send(&mut with_retries, NodeId(0), NodeId(1), 0u32, t, &mut rng_a)
                .is_delivered()
            {
                ok_retry += 1;
            }
            if plain
                .send(&mut without, NodeId(0), NodeId(1), 0u32, t, &mut rng_b)
                .is_delivered()
            {
                ok_plain += 1;
            }
        }
        assert!(ok_retry > 490, "retry delivery {ok_retry}/{trials}");
        assert!(ok_plain < 400, "plain delivery {ok_plain}/{trials}");
        assert!(rl.stats().retransmissions > 0);
    }

    #[test]
    fn delta_eff_bounds_every_successful_delivery() {
        // Acceptance: arrival − send-time ≤ δ_eff for every delivered send,
        // across i.i.d. and bursty loss and several budgets.
        let delta = SimDuration::new(0.1);
        let ge = GilbertElliott::bursts(0.1, 8.0, 1.0).unwrap();
        for retries in [0u32, 1, 3, 5] {
            let policy = RetryPolicy::new(retries, SimDuration::new(0.25));
            let d_eff = policy.effective_delay(delta).as_minutes();
            for bursty in [false, true] {
                let link = if bursty {
                    LinkSpec::new(0.02, 0.1)
                        .unwrap()
                        .with_bursty_loss(ge)
                        .unwrap()
                } else {
                    LinkSpec::new(0.02, 0.1).unwrap().with_loss(0.3).unwrap()
                };
                let mut n: Network<u32> = Network::new(Topology::ring(6), link);
                let mut rl = ReliableLink::new(policy);
                let mut rng = SimRng::seed_from(42 + u64::from(retries));
                for i in 0..400u32 {
                    let t = SimTime::new(f64::from(i) * 5.0);
                    if let ReliableOutcome::Delivered { envelope, .. } =
                        rl.send(&mut n, NodeId(2), NodeId(3), 0u32, t, &mut rng)
                    {
                        let took = envelope.arrival.duration_since(t).as_minutes();
                        assert!(
                            took <= d_eff + 1e-12,
                            "retries={retries} bursty={bursty}: {took} > δ_eff={d_eff}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn delta_eff_reduces_to_delta_without_retries() {
        let delta = SimDuration::new(0.1);
        assert_eq!(RetryPolicy::none().effective_delay(delta), delta);
        let p = RetryPolicy::new(3, SimDuration::new(0.25));
        assert!((p.effective_delay(delta).as_minutes() - 3.0 * 0.35).abs() < 1e-12);
    }

    #[test]
    fn exhausted_budget_reports_give_up_time() {
        // Permanent outage on the edge: every try drops, sender gives up at
        // a known instant = sent_at + max_tries × timeout.
        let mut n = net(0.0);
        n.faults_mut()
            .outage_between(NodeId(0), NodeId(1), SimTime::ZERO, SimTime::new(1e6));
        let mut rl = ReliableLink::new(RetryPolicy::new(2, SimDuration::new(0.3)));
        let mut rng = SimRng::seed_from(4);
        let out = rl.send(
            &mut n,
            NodeId(0),
            NodeId(1),
            0u32,
            SimTime::new(5.0),
            &mut rng,
        );
        match out {
            ReliableOutcome::GaveUp { tries, gave_up_at } => {
                assert_eq!(tries, 3);
                assert!((gave_up_at.as_minutes() - 5.9).abs() < 1e-12);
            }
            other => panic!("expected give-up, got {other:?}"),
        }
        assert_eq!(rl.stats().gave_up, 1);
    }

    #[test]
    fn transient_outage_is_ridden_out_by_retries() {
        // Outage shorter than the retry window: the budgeted sender gets
        // through after the outage lifts.
        let mut n = net(0.0);
        n.faults_mut()
            .outage_between(NodeId(0), NodeId(1), SimTime::ZERO, SimTime::new(0.5));
        let mut rl = ReliableLink::new(RetryPolicy::new(3, SimDuration::new(0.3)));
        let mut rng = SimRng::seed_from(5);
        let out = rl.send(&mut n, NodeId(0), NodeId(1), 0u32, SimTime::ZERO, &mut rng);
        match out {
            ReliableOutcome::Delivered {
                envelope, tries, ..
            } => {
                assert!(tries >= 2, "first try must hit the outage");
                assert!(envelope.arrival >= SimTime::new(0.5));
            }
            other => panic!("expected recovery, got {other:?}"),
        }
    }

    #[test]
    fn receiver_crash_recovery_window_is_survivable() {
        let mut n = net(0.0);
        n.faults_mut()
            .fail_between(NodeId(1), SimTime::ZERO, SimTime::new(0.5));
        let mut rl = ReliableLink::new(RetryPolicy::new(3, SimDuration::new(0.3)));
        let mut rng = SimRng::seed_from(6);
        let out = rl.send(&mut n, NodeId(0), NodeId(1), 0u32, SimTime::ZERO, &mut rng);
        assert!(out.is_delivered(), "got {out:?}");
    }

    #[test]
    fn dead_sender_and_unlinked_are_not_retried() {
        let mut n = net(0.0);
        n.faults_mut().fail_at(NodeId(0), SimTime::ZERO);
        let mut rl = ReliableLink::new(RetryPolicy::new(5, SimDuration::new(0.3)));
        let mut rng = SimRng::seed_from(7);
        assert_eq!(
            rl.send(
                &mut n,
                NodeId(0),
                NodeId(1),
                0u32,
                SimTime::new(1.0),
                &mut rng
            ),
            ReliableOutcome::SenderFailed
        );
        assert_eq!(
            rl.send(
                &mut n,
                NodeId(2),
                NodeId(5),
                0u32,
                SimTime::new(1.0),
                &mut rng
            ),
            ReliableOutcome::NotLinked
        );
        assert_eq!(n.stats().attempts, 2, "no retry burned on hopeless sends");
    }

    #[test]
    fn lost_acks_cause_duplicates_not_failures() {
        // Lossy enough that acks vanish regularly: the receiver sees
        // duplicates, but the logical send still succeeds exactly once.
        let mut n = net(0.45);
        let mut rl = ReliableLink::new(RetryPolicy::new(4, SimDuration::new(0.3)));
        let mut rng = SimRng::seed_from(8);
        let mut delivered = 0u32;
        for i in 0..300u32 {
            let t = SimTime::new(f64::from(i) * 10.0);
            if rl
                .send(&mut n, NodeId(0), NodeId(1), 0u32, t, &mut rng)
                .is_delivered()
            {
                delivered += 1;
            }
        }
        let s = rl.stats();
        assert!(s.acks_lost > 0, "ack loss must occur at 45% loss");
        assert!(s.duplicates > 0, "lost acks must cause duplicates");
        assert_eq!(s.delivered, u64::from(delivered));
        assert_eq!(s.sends, 300);
        assert_eq!(s.delivered + s.gave_up, s.sends);
    }

    #[test]
    fn zero_timeout_with_retries_is_rejected() {
        let r = std::panic::catch_unwind(|| RetryPolicy::new(2, SimDuration::ZERO));
        assert!(r.is_err());
    }
}
