//! Sparse time-varying topology: a precomputed schedule of link up/down
//! events applied lazily to a [`Topology`].
//!
//! Mega-constellation inter-satellite links are not static — cross-plane
//! ISLs shut down while either endpoint crosses the high-latitude seam
//! where relative geometry changes too fast to track. Those windows are
//! computable in closed form from the orbital elements (`oaq-orbit`), so
//! instead of rebuilding adjacency per timestep the simulation carries a
//! [`TopologySchedule`]: a time-sorted event list with a cursor, advanced
//! to the query time with amortized O(1) `link`/`unlink` edits.
//!
//! Determinism: the event list is sorted by `(t, a, b, up)` with a total
//! order on the timestamps, so the applied edit sequence — and therefore
//! the topology at every query time — is a pure function of the schedule,
//! independent of how the advance calls are batched.

use crate::message::NodeId;
use crate::topology::Topology;

/// One link state change: at time `t`, the undirected edge `{a, b}` comes
/// up (`up == true`) or goes down.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkEvent {
    /// Event time, in simulation minutes.
    pub t: f64,
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// `true` to link, `false` to unlink.
    pub up: bool,
}

/// A time-sorted list of [`LinkEvent`]s with an advance cursor.
///
/// # Examples
///
/// ```
/// use oaq_net::{LinkEvent, NodeId, Topology, TopologySchedule};
/// let mut topo = Topology::ring(4);
/// topo.link(NodeId(0), NodeId(2));
/// let mut sched = TopologySchedule::new(vec![
///     LinkEvent { t: 1.0, a: NodeId(0), b: NodeId(2), up: false },
///     LinkEvent { t: 3.0, a: NodeId(0), b: NodeId(2), up: true },
/// ]);
/// sched.advance(&mut topo, 2.0);
/// assert!(!topo.are_linked(NodeId(0), NodeId(2)));
/// sched.advance(&mut topo, 5.0);
/// assert!(topo.are_linked(NodeId(0), NodeId(2)));
/// // Rewind the cursor to replay the same schedule on the restored topology.
/// sched.reset();
/// ```
#[derive(Debug, Clone, Default)]
pub struct TopologySchedule {
    events: Vec<LinkEvent>,
    cursor: usize,
}

impl TopologySchedule {
    /// Builds a schedule, sorting events by `(t, a, b, up)`.
    ///
    /// # Panics
    ///
    /// Panics if any event time is NaN.
    #[must_use]
    pub fn new(mut events: Vec<LinkEvent>) -> Self {
        assert!(
            events.iter().all(|e| !e.t.is_nan()),
            "event times must not be NaN"
        );
        events.sort_by(|x, y| {
            x.t.total_cmp(&y.t)
                .then(x.a.cmp(&y.a))
                .then(x.b.cmp(&y.b))
                .then(x.up.cmp(&y.up))
        });
        TopologySchedule { events, cursor: 0 }
    }

    /// Applies every not-yet-applied event with `event.t <= t` to `topo`,
    /// in schedule order, and advances the cursor past them.
    pub fn advance(&mut self, topo: &mut Topology, t: f64) {
        while let Some(e) = self.events.get(self.cursor) {
            if e.t > t {
                break;
            }
            if e.up {
                topo.link(e.a, e.b);
            } else {
                topo.unlink(e.a, e.b);
            }
            self.cursor += 1;
        }
    }

    /// Rewinds the cursor so the schedule can replay. The caller is
    /// responsible for restoring the topology's base state first — a
    /// schedule whose every down window closes (an `up` event follows
    /// every `down` for the same edge) restores it by construction once
    /// fully advanced.
    pub fn reset(&mut self) {
        self.cursor = 0;
    }

    /// Time of the next unapplied event, if any.
    #[must_use]
    pub fn next_event_time(&self) -> Option<f64> {
        self.events.get(self.cursor).map(|e| e.t)
    }

    /// Number of events not yet applied.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.events.len() - self.cursor
    }

    /// Total number of events in the schedule.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when the schedule holds no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The full sorted event list.
    #[must_use]
    pub fn events(&self) -> &[LinkEvent] {
        &self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: f64, a: u32, b: u32, up: bool) -> LinkEvent {
        LinkEvent {
            t,
            a: NodeId(a),
            b: NodeId(b),
            up,
        }
    }

    #[test]
    fn events_sort_and_apply_in_order() {
        let mut topo = Topology::ring(4);
        // Down at 2.0, up at 5.0 — supplied out of order.
        let mut s = TopologySchedule::new(vec![ev(5.0, 0, 1, true), ev(2.0, 0, 1, false)]);
        assert_eq!(s.len(), 2);
        s.advance(&mut topo, 1.0);
        assert!(topo.are_linked(NodeId(0), NodeId(1)));
        s.advance(&mut topo, 2.0); // inclusive boundary
        assert!(!topo.are_linked(NodeId(0), NodeId(1)));
        assert_eq!(s.remaining(), 1);
        assert_eq!(s.next_event_time(), Some(5.0));
        s.advance(&mut topo, 10.0);
        assert!(topo.are_linked(NodeId(0), NodeId(1)));
        assert_eq!(s.remaining(), 0);
        assert_eq!(s.next_event_time(), None);
    }

    #[test]
    fn closed_windows_restore_base_topology() {
        let base = Topology::constellation_grid(3, 4);
        let mut topo = base.clone();
        let mut s = TopologySchedule::new(vec![
            ev(1.0, 0, 4, false),
            ev(2.0, 0, 4, true),
            ev(1.5, 4, 8, false),
            ev(3.0, 4, 8, true),
        ]);
        s.advance(&mut topo, 1.6);
        assert!(!topo.are_linked(NodeId(0), NodeId(4)));
        assert!(!topo.are_linked(NodeId(4), NodeId(8)));
        s.advance(&mut topo, 100.0);
        // Every window closed, so adjacency matches the base grid again.
        for &n in base.nodes() {
            assert_eq!(topo.neighbors(n), base.neighbors(n));
        }
        // Replay is a cursor rewind.
        s.reset();
        s.advance(&mut topo, 1.6);
        assert!(!topo.are_linked(NodeId(0), NodeId(4)));
        s.advance(&mut topo, 100.0);
        assert!(topo.are_linked(NodeId(0), NodeId(4)));
    }

    #[test]
    fn batching_does_not_change_outcome() {
        let events = vec![
            ev(1.0, 0, 1, false),
            ev(2.0, 1, 2, false),
            ev(2.5, 0, 1, true),
            ev(4.0, 1, 2, true),
        ];
        let mut one = Topology::ring(4);
        let mut s1 = TopologySchedule::new(events.clone());
        s1.advance(&mut one, 3.0);

        let mut two = Topology::ring(4);
        let mut s2 = TopologySchedule::new(events);
        for t in [0.5, 1.0, 1.7, 2.0, 2.2, 3.0] {
            s2.advance(&mut two, t);
        }
        for &n in one.nodes() {
            assert_eq!(one.neighbors(n), two.neighbors(n));
        }
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_times_rejected() {
        let _ = TopologySchedule::new(vec![ev(f64::NAN, 0, 1, false)]);
    }
}
