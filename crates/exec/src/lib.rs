//! # oaq-exec — the one deterministic executor
//!
//! Every parallel substrate in this workspace (the analytic sweep fan-out,
//! the Monte-Carlo [`Replicator`](../oaq_sim/par) and the engine worker
//! pool) runs on the primitives in this crate. The contract, everywhere:
//!
//! 1. **Indexed slots.** Each task writes its result into a slot addressed
//!    by its task index, never into a shared accumulator.
//! 2. **Ordered merge.** Callers consume results in ascending task index;
//!    the executor returns them already in that order.
//! 3. **Worker-count invariance.** The worker count decides only *who*
//!    runs a task, never *what* a task computes or the order results are
//!    consumed in — so any worker count (including one) produces
//!    bit-identical output.
//!
//! Scheduling is work-stealing over packed atomic range cursors: each
//! worker owns one `AtomicU64` holding `(cursor, end)` — a contiguous
//! range of unclaimed task indices. The owner claims the front with a
//! CAS bumping `cursor`; an idle worker steals the back half of the
//! fullest victim's range with a CAS lowering `end`, and installs the
//! stolen window as its own. Tasks are *claimed before they run*, no task
//! enqueues new tasks, and the ranges partition the unclaimed indices at
//! all times, so "every range empty" is a safe exit condition and no
//! locks are taken anywhere on the claim path. Because each worker
//! returns its `(index, result)` pairs and the caller reassembles them in
//! ascending index order, the steal schedule — inherently racy — is
//! invisible in the output; [`Executor::with_forced_steals`] deliberately
//! maximizes stealing to let tests assert exactly that.
//!
//! ## Chunk granularity
//!
//! Two adaptive policies coexist, chosen by what the caller merges:
//!
//! * [`adaptive_chunk`] is a pure function of the **total item count**
//!   (never the worker count) — for callers like the Monte-Carlo
//!   replicator whose floating-point sinks make the chunk grouping part of
//!   the result's identity. Targeting [`TARGET_CHUNKS`] chunks keeps
//!   ≈ 4 chunks per worker up to 16 workers; the [`MIN_CHUNK`] floor
//!   amortizes scheduling overhead for small runs.
//! * [`Executor::map_indexed`] defaults to ≈ 4 chunks *per worker*, which
//!   is legal there because indexed slots are consumed element-wise — no
//!   merge regrouping exists for the chunk size to leak into.
//!
//! An explicit [`Executor::with_chunk`] (or the benches' `--chunk` flag)
//! overrides either policy for reproducibility experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Adaptive chunking targets this many chunks regardless of worker count —
/// ≈ 4 chunks per worker at up to 16 workers.
pub const TARGET_CHUNKS: u64 = 64;

/// Floor on the adaptive chunk size: below this, per-chunk scheduling
/// overhead dominates the work.
pub const MIN_CHUNK: u64 = 16;

/// Resolves a worker-count request: `0` means one worker per available
/// core, anything else is taken literally.
#[must_use]
pub fn effective_workers(workers: usize) -> usize {
    if workers == 0 {
        std::thread::available_parallelism().map_or(1, usize::from)
    } else {
        workers
    }
}

/// The adaptive items-per-chunk granularity for a run of `total` items.
///
/// A pure function of `total` **only** — never the worker count — so
/// callers whose merge regroups floating-point sums (chunk size is part of
/// their result's identity) stay bit-identical across worker counts.
/// Yields `ceil(total / TARGET_CHUNKS)` floored at [`MIN_CHUNK`]; for
/// `total ≤ 1024` this equals the historical fixed chunk of 16.
#[must_use]
pub fn adaptive_chunk(total: u64) -> u64 {
    total.div_ceil(TARGET_CHUNKS).max(MIN_CHUNK)
}

/// A worker/chunk fan-out request, convertible from a bare worker count.
///
/// Public sweep and replication entry points accept `impl Into<Fanout>`,
/// so existing `workers: usize` call sites keep compiling while the bench
/// binaries' `--chunk` override threads through as `Fanout { chunk, .. }`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Fanout {
    /// Worker threads (`0` = one per core).
    pub workers: usize,
    /// Explicit items-per-chunk override (`None` = adaptive).
    pub chunk: Option<u64>,
}

impl From<usize> for Fanout {
    fn from(workers: usize) -> Self {
        Fanout {
            workers,
            chunk: None,
        }
    }
}

impl Fanout {
    /// Builds the executor this fan-out describes.
    ///
    /// # Panics
    ///
    /// Panics if the chunk override is zero.
    #[must_use]
    pub fn executor(self) -> Executor {
        let exec = Executor::new(self.workers);
        match self.chunk {
            Some(c) => exec.with_chunk(c),
            None => exec,
        }
    }
}

/// The deterministic work-stealing executor.
///
/// See the [module docs](self) for the three-point contract. Construction
/// is free — an `Executor` is a worker-count plus an optional chunk
/// override; threads are scoped to each call.
#[derive(Debug, Clone)]
pub struct Executor {
    workers: usize,
    chunk: Option<u64>,
    forced_steals: bool,
}

impl Executor {
    /// An executor with `workers` worker threads (`0` = one per core) and
    /// adaptive chunking.
    #[must_use]
    pub fn new(workers: usize) -> Self {
        Executor {
            workers,
            chunk: None,
            forced_steals: false,
        }
    }

    /// Seeds *all* tasks to worker 0's range so every other worker must
    /// steal its entire workload — a scheduling stressor for invariance
    /// tests. By the executor contract the steal schedule cannot affect
    /// results, so this knob changes timing only, never output.
    #[must_use]
    pub fn with_forced_steals(mut self, forced: bool) -> Self {
        self.forced_steals = forced;
        self
    }

    /// `true` when this executor maximizes stealing (see
    /// [`Executor::with_forced_steals`]).
    #[must_use]
    pub fn forced_steals(&self) -> bool {
        self.forced_steals
    }

    /// Pins the items-per-chunk granularity used by [`map_indexed`].
    ///
    /// [`map_indexed`]: Executor::map_indexed
    ///
    /// # Panics
    ///
    /// Panics if `chunk == 0`.
    #[must_use]
    pub fn with_chunk(mut self, chunk: u64) -> Self {
        assert!(chunk > 0, "chunk size must be positive");
        self.chunk = Some(chunk);
        self
    }

    /// The resolved worker count.
    #[must_use]
    pub fn effective_workers(&self) -> usize {
        effective_workers(self.workers)
    }

    /// The explicit chunk override, if any.
    #[must_use]
    pub fn chunk_override(&self) -> Option<u64> {
        self.chunk
    }

    /// The items-per-chunk [`map_indexed`](Executor::map_indexed) will use
    /// for `total` items: the explicit override if pinned, else ≈ 4 chunks
    /// per worker.
    #[must_use]
    pub fn resolve_chunk(&self, total: u64) -> u64 {
        self.chunk.unwrap_or_else(|| {
            let target = 4 * self.effective_workers() as u64;
            total.div_ceil(target.max(1)).max(1)
        })
    }

    /// Runs tasks `0..tasks` and returns their results in ascending task
    /// order. `run(i)` must be a pure function of `i` (and captured
    /// immutable state); under that contract the output is bit-identical
    /// for any worker count.
    ///
    /// With one worker (or one task) this is a plain serial loop — the
    /// bit-exact reference the parallel path is tested against.
    ///
    /// # Panics
    ///
    /// Propagates panics from `run` (the pool observes the first one).
    pub fn run_indexed<S, F>(&self, tasks: u64, run: F) -> Vec<S>
    where
        S: Send,
        F: Fn(u64) -> S + Sync,
    {
        self.run_indexed_scratch(tasks, || (), |i, ()| run(i))
    }

    /// [`run_indexed`](Executor::run_indexed) with a per-worker scratch
    /// value built once per worker thread and lent to every task that
    /// worker claims — reusable buffers without per-task allocation.
    ///
    /// Determinism contract: `run(i, scratch)`'s *result* must not depend
    /// on what earlier tasks left in the scratch (treat it as
    /// uninitialized capacity, not state).
    ///
    /// # Panics
    ///
    /// Propagates panics from `run` (the pool observes the first one).
    pub fn run_indexed_scratch<S, C, I, F>(&self, tasks: u64, make_scratch: I, run: F) -> Vec<S>
    where
        S: Send,
        I: Fn() -> C + Sync,
        F: Fn(u64, &mut C) -> S + Sync,
    {
        let workers = self
            .effective_workers()
            .min(usize::try_from(tasks).unwrap_or(usize::MAX))
            .max(1);
        if workers <= 1 {
            let mut scratch = make_scratch();
            return (0..tasks).map(|i| run(i, &mut scratch)).collect();
        }

        // Packed (cursor, end) range per worker; ranges partition the
        // unclaimed indices at all times, so claims are single CASes and
        // the steal schedule never shows in the output.
        let tasks32 = u32::try_from(tasks).expect("parallel runs are bounded by u32 task indices");
        let per_worker = tasks32.div_ceil(workers as u32);
        let ranges: Vec<AtomicU64> = (0..workers as u32)
            .map(|w| {
                if self.forced_steals {
                    // Everything starts on worker 0: all other workers
                    // must steal their entire workload.
                    if w == 0 {
                        AtomicU64::new(pack_range(0, tasks32))
                    } else {
                        AtomicU64::new(pack_range(0, 0))
                    }
                } else {
                    let lo = w * per_worker;
                    let hi = ((w + 1) * per_worker).min(tasks32);
                    AtomicU64::new(pack_range(lo, hi.max(lo)))
                }
            })
            .collect();

        let worker_outputs = {
            let ranges = &ranges;
            let make_scratch = &make_scratch;
            let run = &run;
            crossbeam::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|w| {
                        scope.spawn(move |_| {
                            let mut scratch = make_scratch();
                            let mut out: Vec<(u64, S)> = Vec::new();
                            while let Some(i) = claim_task(ranges, w) {
                                out.push((u64::from(i), run(u64::from(i), &mut scratch)));
                            }
                            out
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join()).collect::<Vec<_>>()
            })
            .expect("executor scope failed")
        };

        let mut pairs: Vec<(u64, S)> = Vec::with_capacity(usize::try_from(tasks).expect("fits"));
        for joined in worker_outputs {
            match joined {
                Ok(out) => pairs.extend(out),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        debug_assert_eq!(pairs.len() as u64, tasks, "every task claimed exactly once");
        pairs.sort_unstable_by_key(|&(i, _)| i);
        pairs.into_iter().map(|(_, s)| s).collect()
    }

    /// Maps `f` over `items`, slicing them into chunks of
    /// [`resolve_chunk`](Executor::resolve_chunk) granularity, and returns
    /// the outputs in item order — bit-identical to
    /// `items.iter().map(f).collect()` for any worker count, since each
    /// chunk is an independent serial sub-loop and chunks flatten in
    /// ascending index.
    ///
    /// # Panics
    ///
    /// Propagates panics from `f`.
    pub fn map_indexed<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        let total = items.len() as u64;
        if total == 0 {
            return Vec::new();
        }
        let chunk = self.resolve_chunk(total);
        let tasks = total.div_ceil(chunk);
        let nested = self.run_indexed(tasks, |t| {
            let lo = usize::try_from(t * chunk).expect("chunk offset fits usize");
            let hi = usize::try_from(((t + 1) * chunk).min(total)).expect("offset fits usize");
            items[lo..hi].iter().map(&f).collect::<Vec<U>>()
        });
        nested.into_iter().flatten().collect()
    }
}

/// Packs a `[cursor, end)` task-index range into one atomic word.
#[inline]
fn pack_range(cursor: u32, end: u32) -> u64 {
    (u64::from(cursor) << 32) | u64::from(end)
}

/// Unpacks a range word into `(cursor, end)`.
#[inline]
fn unpack_range(word: u64) -> (u32, u32) {
    ((word >> 32) as u32, word as u32)
}

/// Claims the next task for worker `w`: the front of its own range via a
/// cursor-bump CAS, else the back half of the fullest victim's range via
/// an end-lowering CAS (the stolen window becomes `w`'s new range).
/// Returns `None` only when every visible range is empty — safe because
/// tasks are claimed before they run and nothing enqueues new tasks.
///
/// ABA is harmless here: a successful CAS means the victim's range held
/// exactly the snapshotted `(cursor, end)` window at that instant, and
/// ranges only ever contain unclaimed indices, so the stolen window is
/// valid regardless of interleaving history.
fn claim_task(ranges: &[AtomicU64], w: usize) -> Option<u32> {
    // Fast path: pop the front of our own range.
    let own = &ranges[w];
    let mut word = own.load(Ordering::SeqCst);
    loop {
        let (cursor, end) = unpack_range(word);
        if cursor >= end {
            break;
        }
        match own.compare_exchange(
            word,
            pack_range(cursor + 1, end),
            Ordering::SeqCst,
            Ordering::SeqCst,
        ) {
            Ok(_) => return Some(cursor),
            Err(actual) => word = actual,
        }
    }

    // Own range drained: steal half of the fullest victim.
    loop {
        let mut best: Option<(usize, u64)> = None;
        let mut fullest = 0u32;
        for (v, r) in ranges.iter().enumerate() {
            if v == w {
                continue;
            }
            let snap = r.load(Ordering::SeqCst);
            let (cursor, end) = unpack_range(snap);
            let remaining = end.saturating_sub(cursor);
            if remaining > fullest {
                fullest = remaining;
                best = Some((v, snap));
            }
        }
        let (victim, snap) = best?;
        let (cursor, end) = unpack_range(snap);
        // Leave the victim the front half, take `[split, end)`.
        let split = cursor + (end - cursor) / 2;
        if ranges[victim]
            .compare_exchange(
                snap,
                pack_range(cursor, split),
                Ordering::SeqCst,
                Ordering::SeqCst,
            )
            .is_ok()
        {
            // Our own range is empty and thieves only target non-empty
            // ranges, so nobody else writes our slot: a plain store
            // installs the stolen window, minus the task we run now.
            own.store(pack_range(split + 1, end), Ordering::SeqCst);
            return Some(split);
        }
        // Lost the race to the victim's own claims (or another thief);
        // rescan.
    }
}

/// How a supervised worker's work function ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExitKind {
    /// The work function returned a normal wind-down; the slot retires.
    Clean,
    /// The work function either *reported* a fault (it observed and
    /// contained one itself) or unwound (the payload is swallowed); the
    /// supervisor's respawn predicate decides what happens next.
    Panicked,
}

/// A supervised long-running worker pool: `workers` threads each run
/// `work()` to completion; a supervisor thread watches exits and respawns
/// faulted workers (a returned [`ExitKind::Panicked`] or an un-caught
/// unwind) while `respawn_if()` holds, calling `on_respawn` for each
/// heal. Join with [`SupervisedPool::join`] (idempotent; also run on
/// drop).
///
/// This is the engine worker pool's substrate: the engine keeps its
/// drain/respawn *semantics* (the predicate and the metric hook), the
/// executor owns the threads.
pub struct SupervisedPool {
    supervisor: Mutex<Option<JoinHandle<()>>>,
}

impl std::fmt::Debug for SupervisedPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SupervisedPool").finish_non_exhaustive()
    }
}

impl SupervisedPool {
    /// Starts `workers` threads running `work` under a supervisor thread.
    ///
    /// A worker that faults (returns [`ExitKind::Panicked`] or unwinds)
    /// is respawned iff `respawn_if()` is true at the moment the
    /// supervisor observes the exit (`on_respawn` fires first); a
    /// [`ExitKind::Clean`] exit retires the slot. The supervisor returns
    /// once every slot has retired.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    #[must_use]
    pub fn start<W, R, H>(workers: usize, work: W, respawn_if: R, on_respawn: H) -> Self
    where
        W: Fn() -> ExitKind + Send + Sync + 'static,
        R: Fn() -> bool + Send + 'static,
        H: Fn() + Send + 'static,
    {
        assert!(workers > 0, "supervised pool needs at least one worker");
        let work = Arc::new(work);
        let (exit_tx, exit_rx) = mpsc::channel::<ExitKind>();
        let spawn_one = move |work: &Arc<W>, exit_tx: &mpsc::Sender<ExitKind>| {
            let work = Arc::clone(work);
            let exit_tx = exit_tx.clone();
            std::thread::spawn(move || {
                let kind = catch_unwind(AssertUnwindSafe(|| work())).unwrap_or(ExitKind::Panicked);
                // The supervisor may already be gone during teardown.
                let _ = exit_tx.send(kind);
            })
        };

        let supervisor = std::thread::spawn(move || {
            let mut handles: Vec<JoinHandle<()>> =
                (0..workers).map(|_| spawn_one(&work, &exit_tx)).collect();
            let mut alive = workers;
            while alive > 0 {
                match exit_rx.recv() {
                    Ok(ExitKind::Panicked) if respawn_if() => {
                        on_respawn();
                        handles.push(spawn_one(&work, &exit_tx));
                    }
                    Ok(_) => alive -= 1,
                    Err(_) => break,
                }
            }
            drop(exit_tx);
            for h in handles {
                let _ = h.join();
            }
        });

        SupervisedPool {
            supervisor: Mutex::new(Some(supervisor)),
        }
    }

    /// Waits for every worker slot to retire. Idempotent; the caller is
    /// responsible for first signalling its workers to exit (e.g. closing
    /// the queue they drain), or this blocks forever.
    pub fn join(&self) {
        let handle = self
            .supervisor
            .lock()
            .expect("supervisor handle poisoned")
            .take();
        if let Some(h) = handle {
            let _ = h.join();
        }
    }
}

impl Drop for SupervisedPool {
    fn drop(&mut self) {
        self.join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn adaptive_chunk_is_worker_independent_and_floored() {
        assert_eq!(adaptive_chunk(0), MIN_CHUNK);
        assert_eq!(adaptive_chunk(500), MIN_CHUNK);
        assert_eq!(adaptive_chunk(1024), MIN_CHUNK);
        assert_eq!(adaptive_chunk(6400), 100);
        assert_eq!(adaptive_chunk(6401), 101);
    }

    #[test]
    fn fanout_converts_from_worker_count() {
        let f: Fanout = 3usize.into();
        assert_eq!(
            f,
            Fanout {
                workers: 3,
                chunk: None
            }
        );
        let exec = Fanout {
            workers: 2,
            chunk: Some(5),
        }
        .executor();
        assert_eq!(exec.chunk_override(), Some(5));
        assert_eq!(exec.resolve_chunk(100), 5);
    }

    #[test]
    fn resolve_chunk_targets_four_chunks_per_worker() {
        let exec = Executor::new(4);
        assert_eq!(exec.resolve_chunk(160), 10);
        assert_eq!(exec.resolve_chunk(3), 1);
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn zero_chunk_rejected() {
        let _ = Executor::new(1).with_chunk(0);
    }

    #[test]
    fn run_indexed_returns_ascending_results_for_any_worker_count() {
        let reference: Vec<u64> = (0..97).map(|i| i * i).collect();
        for workers in [1, 2, 4, 8] {
            let got = Executor::new(workers).run_indexed(97, |i| i * i);
            assert_eq!(got, reference, "{workers} workers");
        }
    }

    #[test]
    fn run_indexed_handles_empty_and_single() {
        assert_eq!(Executor::new(4).run_indexed(0, |i| i), Vec::<u64>::new());
        assert_eq!(Executor::new(4).run_indexed(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn scratch_is_reused_not_observed() {
        // Results are a pure function of the index even though the scratch
        // buffer carries garbage between tasks.
        let sums = Executor::new(3).run_indexed_scratch(50, Vec::<u64>::new, |i, buf| {
            buf.clear();
            buf.extend(0..=i);
            buf.iter().sum::<u64>()
        });
        let expected: Vec<u64> = (0..50).map(|i| i * (i + 1) / 2).collect();
        assert_eq!(sums, expected);
    }

    #[test]
    fn map_indexed_matches_serial_map() {
        let items: Vec<f64> = (0..333).map(|i| f64::from(i) * 0.1).collect();
        let reference: Vec<f64> = items.iter().map(|x| x.sin()).collect();
        for workers in [1, 2, 4, 8] {
            let got = Executor::new(workers).map_indexed(&items, |x| x.sin());
            let same = got
                .iter()
                .zip(&reference)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same && got.len() == reference.len(), "{workers} workers");
        }
        assert_eq!(
            Executor::new(4).map_indexed(&Vec::<u8>::new(), |&x| x),
            Vec::<u8>::new()
        );
    }

    #[test]
    fn worker_panic_propagates() {
        let caught = std::panic::catch_unwind(|| {
            Executor::new(4).run_indexed(32, |i| {
                assert!(i != 17, "poisoned task");
                i
            })
        });
        assert!(caught.is_err());
    }

    #[test]
    fn forced_steals_cannot_change_results() {
        let reference: Vec<u64> = (0u64..137).map(|i| i.wrapping_mul(i) ^ 0xABCD).collect();
        for workers in [2, 4, 8] {
            let got = Executor::new(workers)
                .with_forced_steals(true)
                .run_indexed(137, |i| i.wrapping_mul(i) ^ 0xABCD);
            assert_eq!(got, reference, "{workers} workers, forced steals");
        }
    }

    #[test]
    fn forced_steals_with_scratch_matches_serial() {
        let serial = Executor::new(1).run_indexed_scratch(73, Vec::<u64>::new, |i, buf| {
            buf.clear();
            buf.extend(0..=i);
            buf.iter().sum::<u64>()
        });
        let stolen = Executor::new(6)
            .with_forced_steals(true)
            .run_indexed_scratch(73, Vec::<u64>::new, |i, buf| {
                buf.clear();
                buf.extend(0..=i);
                buf.iter().sum::<u64>()
            });
        assert_eq!(stolen, serial);
    }

    #[test]
    fn supervised_pool_respawns_while_predicate_holds() {
        let budget = Arc::new(AtomicUsize::new(3));
        let respawns = Arc::new(AtomicUsize::new(0));
        let runs = Arc::new(AtomicUsize::new(0));
        let pool = {
            let budget_w = Arc::clone(&budget);
            let budget_p = Arc::clone(&budget);
            let respawns = Arc::clone(&respawns);
            let runs = Arc::clone(&runs);
            SupervisedPool::start(
                2,
                move || {
                    runs.fetch_add(1, Ordering::SeqCst);
                    // Burn one unit of "pending work" per run; report a
                    // fault while any remains, exit cleanly once drained.
                    if budget_w
                        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |b| b.checked_sub(1))
                        .is_ok()
                    {
                        ExitKind::Panicked
                    } else {
                        ExitKind::Clean
                    }
                },
                move || budget_p.load(Ordering::SeqCst) > 0,
                move || {
                    respawns.fetch_add(1, Ordering::SeqCst);
                },
            )
        };
        pool.join();
        pool.join(); // idempotent
        assert_eq!(budget.load(Ordering::SeqCst), 0, "work drained");
        // Two initial workers can burn at most 2 of the 3 units, so at
        // least one respawned worker must have run to drain the rest.
        assert!(runs.load(Ordering::SeqCst) >= 3);
        assert!(respawns.load(Ordering::SeqCst) >= 1);
    }

    #[test]
    fn supervised_pool_maps_unwind_to_panicked() {
        // One worker: first run unwinds with work still pending (respawn),
        // the replacement drains the work and retires cleanly.
        let first_run = Arc::new(AtomicUsize::new(1));
        let pending = Arc::new(AtomicUsize::new(1));
        let respawns = Arc::new(AtomicUsize::new(0));
        let pool = {
            let first_run = Arc::clone(&first_run);
            let pending_w = Arc::clone(&pending);
            let pending_p = Arc::clone(&pending);
            let respawns = Arc::clone(&respawns);
            SupervisedPool::start(
                1,
                move || {
                    if first_run.swap(0, Ordering::SeqCst) == 1 {
                        panic!("unwound worker fault");
                    }
                    pending_w.store(0, Ordering::SeqCst);
                    ExitKind::Clean
                },
                move || pending_p.load(Ordering::SeqCst) == 1,
                move || {
                    respawns.fetch_add(1, Ordering::SeqCst);
                },
            )
        };
        pool.join();
        assert_eq!(pending.load(Ordering::SeqCst), 0, "replacement drained");
        assert_eq!(respawns.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn supervised_pool_clean_exit_retires_slots() {
        let runs = Arc::new(AtomicUsize::new(0));
        let pool = {
            let runs = Arc::clone(&runs);
            SupervisedPool::start(
                4,
                move || {
                    runs.fetch_add(1, Ordering::SeqCst);
                    ExitKind::Clean
                },
                || true,
                || panic!("clean exits must not respawn"),
            )
        };
        pool.join();
        assert_eq!(runs.load(Ordering::SeqCst), 4);
    }

    proptest! {
        #[test]
        fn executor_is_worker_count_invariant(
            tasks in 0u64..400,
            seed in any::<u64>(),
        ) {
            // A float-producing task: catches both ordering and identity
            // bugs, since f64 bit patterns are compared exactly.
            let work = |i: u64| {
                let x = ((i ^ seed) as f64).sqrt().sin();
                (i, x.to_bits())
            };
            let serial = Executor::new(1).run_indexed(tasks, work);
            for workers in [2usize, 4, 8] {
                for forced in [false, true] {
                    let par = Executor::new(workers)
                        .with_forced_steals(forced)
                        .run_indexed(tasks, work);
                    prop_assert_eq!(&par, &serial, "workers {} forced {}", workers, forced);
                }
            }
        }
    }
}
