//! Bench: closed-form vs quadrature G-functions, and one full Figure 9 row.

use criterion::{criterion_group, criterion_main, Criterion};
use oaq_analytic::compose::{EvaluationConfig, Scheme};
use oaq_analytic::geometry::PlaneGeometry;
use oaq_analytic::qos::{g3_oaq, g3_oaq_with, QosParams};

fn bench_analytic(c: &mut Criterion) {
    let mut g = c.benchmark_group("analytic_model");
    let geom = PlaneGeometry::reference(12);
    let q = QosParams::paper_defaults(0.2);
    g.bench_function("g3_closed_form", |b| b.iter(|| g3_oaq(&geom, &q)));
    g.bench_function("g3_quadrature", |b| {
        let surv = |t: f64| (-0.2 * t.max(0.0)).exp();
        let cdf = |t: f64| {
            if t <= 0.0 {
                0.0
            } else {
                1.0 - (-30.0 * t).exp()
            }
        };
        b.iter(|| g3_oaq_with(&geom, 5.0, &surv, &cdf));
    });
    g.bench_function("figure9_single_lambda", |b| {
        b.iter(|| {
            EvaluationConfig::paper_defaults(5e-5)
                .qos_ccdf(Scheme::Oaq)
                .unwrap()
        });
    });
    g.finish();
}

criterion_group!(benches, bench_analytic);
criterion_main!(benches);
