//! Bench: the zero-allocation episode hot path — one protocol episode end
//! to end, comparing the naive rebuild-everything loop against the
//! recycled `reset` + `run_scratch` path the campaign engine uses, at
//! paper scale (k = 9) and Starlink scale (k = 1584).

use criterion::{criterion_group, criterion_main, Criterion};
use oaq_core::config::{ProtocolConfig, Scheme};
use oaq_core::protocol::{Episode, EpisodeScratch};

fn bench_episode(c: &mut Criterion) {
    let mut g = c.benchmark_group("episode");
    let cfg = ProtocolConfig::reference(9, Scheme::Oaq);

    // Fresh Episode + fresh scratch each iteration: the pre-optimization
    // shape, every run pays network/protocol construction and drops every
    // buffer on the floor.
    g.bench_function("rebuild_k9", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed = seed.wrapping_add(1);
            let mut scratch = EpisodeScratch::new();
            let mut ep = Episode::new(&cfg, seed);
            ep.add_failure(1, 2.0);
            ep.run_scratch(95.0, 10.0, &mut scratch)
        });
    });

    // The campaign fast path: one Episode and one scratch for the whole
    // loop, re-armed in place — what a per-worker replication slot does.
    g.bench_function("recycled_k9", |b| {
        let mut scratch = EpisodeScratch::new();
        let mut ep = Episode::new(&cfg, 0);
        let mut seed = 0u64;
        b.iter(|| {
            seed = seed.wrapping_add(1);
            ep.reset(&cfg, seed);
            ep.add_failure(1, 2.0);
            ep.run_scratch(95.0, 10.0, &mut scratch)
        });
    });

    let big = ProtocolConfig::reference(1584, Scheme::Oaq);
    g.bench_function("recycled_k1584", |b| {
        let mut scratch = EpisodeScratch::new();
        let mut ep = Episode::new(&big, 0);
        let mut seed = 0u64;
        b.iter(|| {
            seed = seed.wrapping_add(1);
            ep.reset(&big, seed);
            ep.add_failure(1, 2.0);
            ep.run_scratch(95.0, 10.0, &mut scratch)
        });
    });
    g.finish();
}

criterion_group!(benches, bench_episode);
criterion_main!(benches);
