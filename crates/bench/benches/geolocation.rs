//! Substrate bench: iterative weighted least squares and sequential
//! localization.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use oaq_geoloc::emitter::Emitter;
use oaq_geoloc::scenario::PassScenario;
use oaq_geoloc::sequential::SequentialLocalizer;
use oaq_orbit::units::Degrees;
use oaq_orbit::GroundPoint;
use oaq_sim::SimRng;

fn bench_geoloc(c: &mut Criterion) {
    let emitter = Emitter::new(
        GroundPoint::from_degrees(Degrees(30.0), Degrees(10.0)),
        400.0e6,
    );
    let scenario = PassScenario::reference(&emitter);
    let mut g = c.benchmark_group("geolocation");
    g.bench_function("wls_two_passes", |b| {
        b.iter_batched(
            || {
                let mut rng = SimRng::seed_from(5);
                let mut loc = SequentialLocalizer::new(emitter.initial_guess_nearby(1.0));
                loc.add_pass(scenario.synthesize_pass(0, &mut rng));
                loc.add_pass(scenario.synthesize_pass(1, &mut rng));
                loc
            },
            |mut loc| loc.estimate().unwrap(),
            BatchSize::SmallInput,
        );
    });
    g.bench_function("synthesize_pass", |b| {
        let mut rng = SimRng::seed_from(6);
        b.iter(|| scenario.synthesize_pass(0, &mut rng));
    });
    g.finish();
}

criterion_group!(benches, bench_geoloc);
criterion_main!(benches);
