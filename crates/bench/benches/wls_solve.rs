//! Kernel bench: one WLS solve through each estimator configuration —
//! the heap/dyn/finite-difference baseline, the heap path with analytic
//! Jacobians, and the monomorphized stack-kernel fast path — plus the
//! incremental chain-extension solve.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use oaq_geoloc::doppler::DopplerMeasurement;
use oaq_geoloc::emitter::Emitter;
use oaq_geoloc::scenario::PassScenario;
use oaq_geoloc::sequential::SequentialLocalizer;
use oaq_geoloc::wls::{FdJacobian, Observation, WlsSolver};
use oaq_orbit::units::Degrees;
use oaq_orbit::GroundPoint;
use oaq_sim::SimRng;

fn bench_wls_solve(c: &mut Criterion) {
    let emitter = Emitter::new(
        GroundPoint::from_degrees(Degrees(30.0), Degrees(10.0)),
        400.0e6,
    );
    let scenario = PassScenario::reference(&emitter);
    let mut rng = SimRng::seed_from(19);
    let mut obs: Vec<DopplerMeasurement> = scenario.synthesize_pass(0, &mut rng);
    obs.extend(scenario.synthesize_pass(1, &mut rng));
    let fd_obs: Vec<FdJacobian<DopplerMeasurement>> = obs.iter().map(|m| FdJacobian(*m)).collect();
    let solver = WlsSolver::new();
    let x0 = emitter.initial_guess_nearby(1.0);

    let mut g = c.benchmark_group("wls_solve");
    g.bench_function("heap_dyn_fd_baseline", |b| {
        let refs: Vec<&dyn Observation> = fd_obs.iter().map(|o| o as &dyn Observation).collect();
        b.iter(|| solver.solve_heap(&refs, x0).unwrap());
    });
    g.bench_function("heap_dyn_analytic", |b| {
        let refs: Vec<&dyn Observation> = obs.iter().map(|o| o as &dyn Observation).collect();
        b.iter(|| solver.solve_heap(&refs, x0).unwrap());
    });
    g.bench_function("stack_generic", |b| {
        b.iter(|| solver.solve_obs(&obs, x0).unwrap());
    });
    g.bench_function("incremental_extension", |b| {
        // One chain-extension solve: prior from three folded passes, one
        // new pass entering through the information filter.
        let mut rng = SimRng::seed_from(7);
        let warm: Vec<Vec<DopplerMeasurement>> = (0..3)
            .map(|pos| scenario.synthesize_pass(pos, &mut rng))
            .collect();
        let extension = scenario.synthesize_pass(0, &mut rng);
        b.iter_batched(
            || {
                let mut loc = SequentialLocalizer::new(emitter.initial_guess_nearby(1.0));
                for p in &warm {
                    loc.add_pass(p.clone());
                    loc.estimate_incremental().unwrap();
                }
                loc.add_pass(extension.clone());
                loc
            },
            |mut loc| loc.estimate_incremental().unwrap(),
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

criterion_group!(benches, bench_wls_solve);
criterion_main!(benches);
