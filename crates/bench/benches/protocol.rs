//! Bench: OAQ episode simulation rate (the Monte-Carlo workhorse).

use criterion::{criterion_group, criterion_main, Criterion};
use oaq_core::config::{ProtocolConfig, Scheme};
use oaq_core::experiment::{estimate_conditional_qos, MonteCarloOptions};
use oaq_core::protocol::Episode;

fn bench_protocol(c: &mut Criterion) {
    let mut g = c.benchmark_group("protocol");
    let oaq = ProtocolConfig::reference(10, Scheme::Oaq);
    g.bench_function("single_episode_underlap", |b| {
        b.iter(|| Episode::new(&oaq, 3).run(6.0, 12.0));
    });
    let overlap = ProtocolConfig::reference(12, Scheme::Oaq);
    g.bench_function("single_episode_overlap", |b| {
        b.iter(|| Episode::new(&overlap, 3).run(4.0, 12.0));
    });
    g.bench_function("monte_carlo_500_episodes", |b| {
        b.iter(|| {
            estimate_conditional_qos(
                &oaq,
                &MonteCarloOptions {
                    episodes: 500,
                    mu: 0.2,
                    seed: 9,
                },
            )
        });
    });
    g.finish();
}

criterion_group!(benches, bench_protocol);
criterion_main!(benches);
