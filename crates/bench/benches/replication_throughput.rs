//! Bench: the deterministic parallel replication engine (E18's inner
//! loops) — traced vs untraced campaign cells, and worker fan-out.

use criterion::{criterion_group, criterion_main, Criterion};
use oaq_bench::campaign::{
    run_cell_traced_baseline, run_cell_workers, run_grid_workers, CellSpec, LossAxis,
};
use oaq_core::config::{ProtocolConfig, Scheme};
use oaq_core::experiment::{estimate_conditional_qos_par, MonteCarloOptions};

const EPISODES: u64 = 200;

fn reference_spec() -> CellSpec {
    CellSpec {
        loss: LossAxis::Iid { p: 0.2 },
        node_failure_rate: 0.25,
        retry_budget: 1,
    }
}

fn bench_replication(c: &mut Criterion) {
    let mut g = c.benchmark_group("replication");
    let spec = reference_spec();
    g.bench_function("cell_traced_baseline", |b| {
        b.iter(|| run_cell_traced_baseline(&spec, EPISODES, 7));
    });
    g.bench_function("cell_fastpath_serial", |b| {
        b.iter(|| run_cell_workers(&spec, EPISODES, 7, 1));
    });
    g.bench_function("cell_fastpath_2_workers", |b| {
        b.iter(|| run_cell_workers(&spec, EPISODES, 7, 2));
    });
    g.bench_function("cell_fastpath_4_workers", |b| {
        b.iter(|| run_cell_workers(&spec, EPISODES, 7, 4));
    });
    let grid = [
        CellSpec {
            loss: LossAxis::Iid { p: 0.0 },
            node_failure_rate: 0.0,
            retry_budget: 0,
        },
        spec,
    ];
    g.bench_function("grid_2_cells_2_workers", |b| {
        b.iter(|| run_grid_workers(&grid, EPISODES / 2, 7, 2));
    });
    let cfg = ProtocolConfig::reference(9, Scheme::Oaq);
    let opts = MonteCarloOptions {
        episodes: EPISODES as usize,
        mu: 0.5,
        seed: 7,
    };
    g.bench_function("qos_estimate_serial", |b| {
        b.iter(|| estimate_conditional_qos_par(&cfg, &opts, 1));
    });
    g.bench_function("qos_estimate_2_workers", |b| {
        b.iter(|| estimate_conditional_qos_par(&cfg, &opts, 2));
    });
    g.finish();
}

criterion_group!(benches, bench_replication);
criterion_main!(benches);
