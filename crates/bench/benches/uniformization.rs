//! Kernel bench: the uniformization hot loop — dense per-panel baseline
//! vs the sparse shared-iterate `TransientKernel`, single points and
//! Simpson-panel batches.

use criterion::{criterion_group, criterion_main, Criterion};
use oaq_san::plane::PlaneModelConfig;
use oaq_san::solver::{time_average_distribution_dense, TransientKernel};

const LAMBDA: f64 = 5e-5;
const PHI: f64 = 30_000.0;

fn bench_uniformization(c: &mut Criterion) {
    let solve = PlaneModelConfig::reference(LAMBDA, PHI, 10)
        .capacity_solve(10_000)
        .expect("reference plane explores");
    let ctmc = solve.ctmc();
    let q = ctmc.generator().clone();
    let p0 = ctmc.initial_distribution();
    let kernel = TransientKernel::new(&q).expect("kernel builds");
    let times: Vec<f64> = (0..=256).map(|s| PHI * s as f64 / 256.0).collect();

    let mut g = c.benchmark_group("uniformization");
    g.bench_function("kernel_build", |b| {
        b.iter(|| TransientKernel::new(&q).unwrap());
    });
    g.bench_function("transient_single_point", |b| {
        b.iter(|| kernel.transient(&p0, PHI, 1e-12).unwrap());
    });
    g.bench_function("transient_batch_257_nodes", |b| {
        b.iter(|| kernel.transient_batch(&p0, &times, 1e-12).unwrap());
    });
    g.bench_function("time_average_sparse_256_panels", |b| {
        b.iter(|| kernel.time_average(&p0, PHI, 256).unwrap());
    });
    g.bench_function("time_average_dense_256_panels", |b| {
        b.iter(|| time_average_distribution_dense(&q, &p0, PHI, 256).unwrap());
    });
    g.finish();
}

criterion_group!(benches, bench_uniformization);
criterion_main!(benches);
