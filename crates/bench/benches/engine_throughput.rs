//! Bench: the serving engine against the naive recompute loop on a small
//! Zipf workload, plus the isolated cost of its hot submission path.

use criterion::{criterion_group, criterion_main, Criterion};
use oaq_engine::{direct_eval, zipf_workload, Engine, EngineConfig, WorkloadConfig};

fn bench_engine(c: &mut Criterion) {
    let workload = zipf_workload(
        &WorkloadConfig {
            scenarios: 20,
            skew: 1.0,
            queries: 200,
        },
        2003,
    );
    let mut g = c.benchmark_group("engine_throughput");

    g.bench_function("naive_sequential_200q", |b| {
        b.iter(|| {
            workload
                .iter()
                .map(|q| direct_eval(q).unwrap())
                .collect::<Vec<_>>()
        });
    });

    g.bench_function("engine_cold_200q", |b| {
        b.iter(|| {
            let engine = Engine::new(EngineConfig::default());
            engine.run_all(&workload)
        });
    });

    let warm = Engine::new(EngineConfig::default());
    let _ = warm.run_all(&workload);
    g.bench_function("engine_warm_200q", |b| {
        b.iter(|| warm.run_all(&workload));
    });

    let hot = workload[0];
    g.bench_function("warm_single_submit", |b| {
        b.iter(|| warm.evaluate(hot).unwrap());
    });

    g.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
