//! Substrate bench: SAN simulation vs CTMC solution of the plane model.

use criterion::{criterion_group, criterion_main, Criterion};
use oaq_analytic::capacity::CapacityParams;
use oaq_san::plane::PlaneModelConfig;
use oaq_san::sim::SteadyStateOptions;

fn bench_san(c: &mut Criterion) {
    let mut g = c.benchmark_group("san_solvers");
    g.bench_function("plane_sim_50_cycles", |b| {
        let model = PlaneModelConfig::reference(5e-5, 30_000.0, 10).build_sim();
        b.iter(|| {
            model.capacity_distribution_sim(&SteadyStateOptions {
                warmup: 30_000.0,
                horizon: 1_500_000.0,
                seed: 3,
            })
        });
    });
    g.bench_function("plane_ctmc_erlang25", |b| {
        let model = PlaneModelConfig::reference(5e-5, 30_000.0, 10).build_markov(25);
        b.iter(|| model.capacity_distribution_markov(100_000).unwrap());
    });
    g.bench_function("capacity_closed_form", |b| {
        b.iter(|| {
            CapacityParams::reference(5e-5, 30_000.0, 10)
                .distribution()
                .unwrap()
        });
    });
    g.finish();
}

criterion_group!(benches, bench_san);
criterion_main!(benches);
