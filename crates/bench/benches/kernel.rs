//! Substrate bench: discrete-event kernel throughput.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use oaq_sim::{Context, Model, SimDuration, SimTime, Simulation};

struct Churn {
    remaining: u64,
}

enum Ev {
    Tick,
}

impl Model for Churn {
    type Event = Ev;
    fn handle(&mut self, _ev: Ev, ctx: &mut Context<Ev>) {
        if self.remaining > 0 {
            self.remaining -= 1;
            let d = ctx.rng().exp(1.0);
            ctx.schedule_in(SimDuration::new(d), Ev::Tick);
        }
    }
}

fn bench_kernel(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel");
    g.bench_function("dispatch_100k_events", |b| {
        b.iter_batched(
            || {
                let mut sim = Simulation::new(Churn { remaining: 100_000 }, 1);
                sim.schedule_at(SimTime::ZERO, Ev::Tick);
                sim
            },
            |mut sim| sim.run_to_completion(),
            BatchSize::SmallInput,
        );
    });
    g.bench_function("queue_push_pop_10k", |b| {
        b.iter(|| {
            let mut q = oaq_sim::EventQueue::new();
            for i in 0..10_000u32 {
                q.push(SimTime::new(f64::from((i * 7919) % 10_000)), i);
            }
            let mut count = 0;
            while q.pop().is_some() {
                count += 1;
            }
            count
        });
    });
    g.finish();
}

criterion_group!(benches, bench_kernel);
criterion_main!(benches);
