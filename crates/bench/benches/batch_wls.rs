//! Kernel bench: the structure-of-arrays batched WLS path against one
//! `solve_obs` call per track, at small and large batch sizes — the
//! Criterion companion to the `geoloc_batch` experiment binary.

use criterion::{criterion_group, criterion_main, Criterion};
use oaq_core::fullstack::{solve_tracks_batched, solve_tracks_looped, synthesize_emitter_tracks};
use oaq_geoloc::doppler::DopplerMeasurement;
use oaq_geoloc::BatchSolver;

fn bench_batch_wls(c: &mut Criterion) {
    let mut g = c.benchmark_group("batch_wls");
    for &n in &[16u32, 256] {
        let tracks = synthesize_emitter_tracks(90.0, 9.0, 9.0, n, 2, 22);
        let looped_name = format!("looped/{n}");
        g.bench_function(&looped_name, |b| {
            b.iter(|| solve_tracks_looped(&tracks));
        });
        let batched_name = format!("batched/{n}");
        g.bench_function(&batched_name, |b| {
            let mut batch = BatchSolver::<DopplerMeasurement>::default();
            b.iter(|| solve_tracks_batched(&tracks, &mut batch));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_batch_wls);
criterion_main!(benches);
