//! Steal-schedule invariance: the deterministic work-stealing scheduler
//! must be invisible in every aggregate the bench layer publishes.
//!
//! The campaign cell, the conditional-QoS estimator and the
//! membership-assisted recruitment tally are each run serially and then
//! re-run under every worker count × chunk override × forced-steal
//! combination; all answers must be bitwise identical to the serial one.
//! Chunk size and steal interleaving change *which worker* computes each
//! replication — never the substream it draws from or the order results
//! merge in — so any drift here is a scheduler bug, not noise.

use oaq_bench::campaign::{
    replay_episode_scenario, run_cell_scenario, CellOutcome, CellSpec, LossAxis, Scenario,
};
use oaq_core::config::{MembershipHints, ProtocolConfig, Scheme};
use oaq_core::experiment::{estimate_conditional_qos_stressed, MonteCarloOptions};
use oaq_core::protocol::{Episode, EpisodeScratch};
use oaq_core::qos_level::QosLevel;
use oaq_sim::par::{Merge, Replicator};
use oaq_sim::rng::substream_seed;

const WORKERS: [usize; 3] = [2, 4, 8];
const CHUNKS: [Option<u64>; 3] = [None, Some(16), Some(7)];
const SEED: u64 = 20030622;

fn assert_cells_identical(a: &CellOutcome, b: &CellOutcome, what: &str) {
    assert_eq!(a.episodes, b.episodes, "{what}: episodes");
    assert_eq!(a.detected, b.detected, "{what}: detected");
    assert_eq!(a.timely, b.timely, "{what}: timely");
    assert_eq!(a.quality, b.quality, "{what}: quality");
    assert_eq!(a.live_detector, b.live_detector, "{what}: live_detector");
    assert_eq!(
        a.live_detector_timely, b.live_detector_timely,
        "{what}: live_detector_timely"
    );
    assert_eq!(a.violations.len(), b.violations.len(), "{what}: violations");
    for (x, y) in a.violations.iter().zip(&b.violations) {
        assert_eq!(x.episode, y.episode, "{what}: violation episode");
        assert_eq!(x.seed, y.seed, "{what}: violation seed");
        assert_eq!(x.detector, y.detector, "{what}: violation detector");
        assert_eq!(x.outcome, y.outcome, "{what}: violation outcome");
        assert_eq!(x.trace, y.trace, "{what}: violation trace");
    }
}

#[test]
fn campaign_cell_is_steal_schedule_invariant() {
    let cfg = ProtocolConfig::reference(9, Scheme::Oaq);
    let spec = CellSpec {
        loss: LossAxis::Iid { p: 0.2 },
        node_failure_rate: 0.25,
        retry_budget: 1,
    };
    let serial = run_cell_scenario(&Scenario::new(&cfg, 1), &spec, 160, SEED);
    for workers in WORKERS {
        for chunk in CHUNKS {
            for forced in [false, true] {
                let scen = Scenario::new(&cfg, workers)
                    .with_chunk(chunk)
                    .with_forced_steals(forced);
                let par = run_cell_scenario(&scen, &spec, 160, SEED);
                assert_cells_identical(
                    &par,
                    &serial,
                    &format!("workers={workers} chunk={chunk:?} forced={forced}"),
                );
            }
        }
    }
}

#[test]
fn qos_estimate_is_steal_schedule_invariant() {
    let cfg = ProtocolConfig::reference(9, Scheme::Oaq);
    let opts = MonteCarloOptions {
        episodes: 128,
        mu: 0.5,
        seed: SEED,
    };
    let serial = estimate_conditional_qos_stressed(&cfg, &opts, 1, None, false);
    for workers in WORKERS {
        for chunk in CHUNKS {
            for forced in [false, true] {
                let par = estimate_conditional_qos_stressed(&cfg, &opts, workers, chunk, forced);
                assert_eq!(
                    par, serial,
                    "QoS drifted at workers={workers} chunk={chunk:?} forced={forced}"
                );
            }
        }
    }
}

/// Membership-assisted recruitment tallies (integer-exact merge).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct RecruitSink {
    seq: u64,
    missed: u64,
    msgs: u64,
}

impl Merge for RecruitSink {
    fn merge(&mut self, other: &Self) {
        self.seq.merge(&other.seq);
        self.missed.merge(&other.missed);
        self.msgs.merge(&other.msgs);
    }
}

fn run_membership(
    cfg: &ProtocolConfig,
    workers: usize,
    chunk: Option<u64>,
    forced: bool,
) -> RecruitSink {
    Replicator::new(workers)
        .with_chunk_override(chunk)
        .with_forced_steals(forced)
        .run_scratch(
            96,
            SEED,
            RecruitSink::default,
            EpisodeScratch::new,
            |i, rng, scratch, sink| {
                let birth = 90.0 + rng.uniform(0.0, 10.0);
                let seed = substream_seed(SEED, i).wrapping_add(1);
                let mut ep = Episode::new(cfg, seed);
                ep.add_failure(1, 0.0);
                let out = ep.run_scratch(birth, 15.0, scratch);
                if out.level >= QosLevel::SequentialDual {
                    sink.seq += 1;
                }
                if out.level == QosLevel::Missed {
                    sink.missed += 1;
                }
                sink.msgs += out.messages_sent;
            },
        )
}

#[test]
fn membership_aggregate_is_steal_schedule_invariant() {
    let mut cfg = ProtocolConfig::reference(9, Scheme::Oaq);
    cfg.tau = 25.0;
    cfg.membership = Some(MembershipHints::default());
    let serial = run_membership(&cfg, 1, None, false);
    for workers in WORKERS {
        for chunk in CHUNKS {
            for forced in [false, true] {
                let par = run_membership(&cfg, workers, chunk, forced);
                assert_eq!(
                    par, serial,
                    "membership drifted at workers={workers} chunk={chunk:?} forced={forced}"
                );
            }
        }
    }
}

#[test]
fn forced_steals_never_change_a_replay() {
    // The replay path runs single-episode and must be untouched by the
    // scenario's scheduling knobs: the same (spec, seed, index) replays to
    // the identical outcome and trace no matter how the campaign that
    // surfaced it was scheduled.
    let cfg = ProtocolConfig::reference(9, Scheme::Oaq);
    let spec = CellSpec {
        loss: LossAxis::Bursty {
            marginal: 0.3,
            burst_len: 4.0,
        },
        node_failure_rate: 0.3,
        retry_budget: 1,
    };
    let plain = Scenario::new(&cfg, 1);
    let stolen = Scenario::new(&cfg, 8)
        .with_chunk(Some(3))
        .with_forced_steals(true);
    for i in [0u64, 5, 42] {
        let (out_a, trace_a) = replay_episode_scenario(&plain, &spec, SEED, i);
        let (out_b, trace_b) = replay_episode_scenario(&stolen, &spec, SEED, i);
        assert_eq!(out_a, out_b, "replay outcome drifted at episode {i}");
        assert_eq!(trace_a, trace_b, "replay trace drifted at episode {i}");
    }
}
