//! Shared command-line flag handling for the experiment binaries.
//!
//! Every binary used to hand-roll its own `std::env::args` loop (or worse,
//! silently ignore unknown flags). This module centralises the contract
//! `robustness` established: declare the flags up front, reject anything
//! unknown with a usage line and exit code 2, and support `--help`.
//!
//! The parsing core ([`CliSpec::parse_from`]) is pure and fully testable;
//! [`CliSpec::parse`] adds the process-exit behaviour for `main`.

use std::collections::{HashMap, HashSet};
use std::fmt;

/// A declared flag set for one binary.
#[derive(Debug, Clone)]
pub struct CliSpec {
    program: &'static str,
    switches: Vec<(&'static str, &'static str)>,
    options: Vec<(&'static str, &'static str, &'static str)>,
}

/// A parse failure, reported with the offending token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// An argument that matches no declared flag.
    Unknown(String),
    /// A value-taking flag appeared last, with nothing after it.
    MissingValue(&'static str),
    /// A value that failed to parse as the expected type.
    BadValue {
        /// The flag whose value was rejected.
        flag: String,
        /// The raw offending token.
        value: String,
    },
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::Unknown(a) => write!(f, "unknown argument `{a}`"),
            ArgError::MissingValue(flag) => write!(f, "flag {flag} expects a value"),
            ArgError::BadValue { flag, value } => {
                write!(f, "bad value for {flag}: `{value}`")
            }
        }
    }
}

impl std::error::Error for ArgError {}

/// The parsed result: which switches were set and which options got values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliArgs {
    switches: HashSet<&'static str>,
    values: HashMap<&'static str, String>,
}

impl CliSpec {
    /// A spec for `program` with no flags declared yet (even an empty spec
    /// is useful: it rejects every argument).
    #[must_use]
    pub fn new(program: &'static str) -> Self {
        CliSpec {
            program,
            switches: Vec::new(),
            options: Vec::new(),
        }
    }

    /// Declares a boolean switch (present/absent), e.g. `--quick`.
    #[must_use]
    pub fn switch(mut self, name: &'static str, help: &'static str) -> Self {
        self.switches.push((name, help));
        self
    }

    /// Declares a value-taking option, e.g. `--seed N`.
    #[must_use]
    pub fn option(mut self, name: &'static str, meta: &'static str, help: &'static str) -> Self {
        self.options.push((name, meta, help));
        self
    }

    /// The one-line usage string.
    #[must_use]
    pub fn usage(&self) -> String {
        let mut u = format!("usage: {}", self.program);
        for (name, _) in &self.switches {
            u.push_str(&format!(" [{name}]"));
        }
        for (name, meta, _) in &self.options {
            u.push_str(&format!(" [{name} {meta}]"));
        }
        u
    }

    /// The multi-line help text (usage plus one line per flag).
    #[must_use]
    pub fn help(&self) -> String {
        let mut h = self.usage();
        for (name, help) in &self.switches {
            h.push_str(&format!("\n  {name:<18} {help}"));
        }
        for (name, meta, help) in &self.options {
            let head = format!("{name} {meta}");
            h.push_str(&format!("\n  {head:<18} {help}"));
        }
        h
    }

    /// Parses a raw argument list (without the program name).
    ///
    /// # Errors
    ///
    /// [`ArgError::Unknown`] on an undeclared argument (including bare
    /// positionals — the experiment binaries take none), or
    /// [`ArgError::MissingValue`] when a value-taking flag ends the list.
    /// `--help` is always accepted and reported as [`Parsed::Help`]; see
    /// [`CliSpec::parse`] for the exiting wrapper.
    pub fn parse_from(&self, args: &[String]) -> Result<Parsed, ArgError> {
        let mut switches = HashSet::new();
        let mut values = HashMap::new();
        let mut i = 0;
        while i < args.len() {
            let a = args[i].as_str();
            if a == "--help" || a == "-h" {
                return Ok(Parsed::Help);
            }
            if let Some(&(name, _)) = self.switches.iter().find(|(n, _)| *n == a) {
                switches.insert(name);
                i += 1;
                continue;
            }
            if let Some(&(name, _, _)) = self.options.iter().find(|(n, _, _)| *n == a) {
                let Some(v) = args.get(i + 1) else {
                    return Err(ArgError::MissingValue(name));
                };
                values.insert(name, v.clone());
                i += 2;
                continue;
            }
            return Err(ArgError::Unknown(a.to_string()));
        }
        Ok(Parsed::Args(CliArgs { switches, values }))
    }

    /// Parses `std::env::args`, printing help (exit 0) or a rejection plus
    /// usage (exit 2) as needed. This is the `main`-facing entry point.
    #[must_use]
    pub fn parse(&self) -> CliArgs {
        let raw: Vec<String> = std::env::args().skip(1).collect();
        match self.parse_from(&raw) {
            Ok(Parsed::Args(args)) => args,
            Ok(Parsed::Help) => {
                println!("{}", self.help());
                std::process::exit(0);
            }
            Err(e) => {
                eprintln!("error: {e}");
                eprintln!("{}", self.usage());
                std::process::exit(2);
            }
        }
    }
}

/// Outcome of a pure parse: real arguments, or an explicit help request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Parsed {
    /// Flags parsed successfully.
    Args(CliArgs),
    /// `--help`/`-h` was present; callers should print [`CliSpec::help`].
    Help,
}

impl Parsed {
    /// Unwraps the parsed arguments.
    ///
    /// # Panics
    ///
    /// Panics on [`Parsed::Help`].
    #[must_use]
    pub fn args(self) -> CliArgs {
        match self {
            Parsed::Args(a) => a,
            Parsed::Help => panic!("parse produced a help request, not arguments"),
        }
    }
}

impl CliArgs {
    /// Whether a declared switch was present.
    #[must_use]
    pub fn has(&self, name: &str) -> bool {
        self.switches.contains(name)
    }

    /// The raw value of an option, if given.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// An option parsed as `u64`, with a default.
    ///
    /// # Panics
    ///
    /// Panics (with the flag name) when the value does not parse — the
    /// binaries treat this as a usage error surfaced at startup.
    #[must_use]
    pub fn get_u64(&self, name: &str, default: u64) -> u64 {
        self.get(name).map_or(default, |v| {
            v.parse()
                .unwrap_or_else(|_| panic!("bad value for {name}: {v}"))
        })
    }

    /// An option parsed as `usize`, with a default.
    ///
    /// # Panics
    ///
    /// Panics (with the flag name) when the value does not parse.
    #[must_use]
    pub fn get_usize(&self, name: &str, default: usize) -> usize {
        self.get(name).map_or(default, |v| {
            v.parse()
                .unwrap_or_else(|_| panic!("bad value for {name}: {v}"))
        })
    }

    /// An option parsed as a finite, non-negative `f64`, with a default.
    /// Serving knobs like `--fault-rate`, `--deadline-ms` and `--slo-ms`
    /// have no meaningful negative, NaN or infinite setting, and Rust's
    /// `f64::from_str` happily accepts `NaN` — so the validation lives
    /// here, at the boundary.
    ///
    /// # Panics
    ///
    /// Panics (with the flag name) when the value does not parse, is
    /// non-finite, or is negative.
    #[must_use]
    pub fn get_f64_nonneg(&self, name: &str, default: f64) -> f64 {
        self.get(name).map_or(default, |v| {
            let x: f64 = v
                .parse()
                .unwrap_or_else(|_| panic!("bad value for {name}: {v}"));
            assert!(
                x.is_finite() && x >= 0.0,
                "bad value for {name}: {v} (must be finite and non-negative)"
            );
            x
        })
    }

    /// The `--chunk` override: a positive episode-per-chunk count, or
    /// `None` (adaptive chunking) when the flag is absent. Zero would make
    /// the fan-out spin forever and `u64` parsing already rejects
    /// negatives, `NaN` and `inf`, so the only extra check lives here.
    ///
    /// # Panics
    ///
    /// Panics (with the flag name) when the value does not parse as a
    /// positive integer.
    #[must_use]
    pub fn get_chunk(&self, name: &str) -> Option<u64> {
        self.get(name).map(|v| {
            let chunk: u64 = v
                .parse()
                .unwrap_or_else(|_| panic!("bad value for {name}: {v}"));
            assert!(chunk > 0, "bad value for {name}: {v} (must be positive)");
            chunk
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(raw: &[&str]) -> Vec<String> {
        raw.iter().map(ToString::to_string).collect()
    }

    fn spec() -> CliSpec {
        CliSpec::new("demo")
            .switch("--quick", "shrink grids for CI")
            .option("--seed", "N", "base RNG seed")
            .option("--episodes", "N", "episodes per cell")
    }

    #[test]
    fn accepts_declared_flags_in_any_order() {
        let p = spec()
            .parse_from(&strings(&["--seed", "7", "--quick", "--episodes", "50"]))
            .unwrap()
            .args();
        assert!(p.has("--quick"));
        assert_eq!(p.get_u64("--seed", 1), 7);
        assert_eq!(p.get_usize("--episodes", 10), 50);
        assert_eq!(p.get_u64("--missing", 123), 123);
    }

    #[test]
    fn rejects_unknown_arguments() {
        assert_eq!(
            spec().parse_from(&strings(&["--quick", "--bogus"])),
            Err(ArgError::Unknown("--bogus".into()))
        );
        // Bare positionals are unknown too.
        assert_eq!(
            spec().parse_from(&strings(&["17"])),
            Err(ArgError::Unknown("17".into()))
        );
        // An empty spec rejects everything but --help.
        assert!(matches!(
            CliSpec::new("fig9").parse_from(&strings(&["--quick"])),
            Err(ArgError::Unknown(_))
        ));
    }

    #[test]
    fn option_at_end_of_line_is_missing_value() {
        assert_eq!(
            spec().parse_from(&strings(&["--seed"])),
            Err(ArgError::MissingValue("--seed"))
        );
    }

    #[test]
    fn help_short_circuits() {
        assert!(matches!(
            spec().parse_from(&strings(&["--bogus-before-help", "--help"])),
            Err(ArgError::Unknown(_)),
        ));
        assert!(matches!(
            spec().parse_from(&strings(&["--help"])),
            Ok(Parsed::Help)
        ));
        assert!(matches!(
            spec().parse_from(&strings(&["-h"])),
            Ok(Parsed::Help)
        ));
    }

    #[test]
    fn usage_and_help_render_every_flag() {
        let u = spec().usage();
        assert_eq!(u, "usage: demo [--quick] [--seed N] [--episodes N]");
        let h = spec().help();
        assert!(h.contains("shrink grids for CI"));
        assert!(h.contains("--episodes N"));
    }

    #[test]
    #[should_panic(expected = "bad value for --seed")]
    fn bad_numeric_value_panics_with_flag_name() {
        let p = spec()
            .parse_from(&strings(&["--seed", "not-a-number"]))
            .unwrap()
            .args();
        let _ = p.get_u64("--seed", 0);
    }

    fn chunk_spec() -> CliSpec {
        CliSpec::new("demo").option("--chunk", "N", "episodes per work chunk")
    }

    fn parse_chunk(raw: &str) -> Option<u64> {
        chunk_spec()
            .parse_from(&strings(&["--chunk", raw]))
            .unwrap()
            .args()
            .get_chunk("--chunk")
    }

    #[test]
    fn chunk_defaults_to_adaptive_and_accepts_positives() {
        let absent = chunk_spec().parse_from(&strings(&[])).unwrap().args();
        assert_eq!(absent.get_chunk("--chunk"), None);
        assert_eq!(parse_chunk("1"), Some(1));
        assert_eq!(parse_chunk("512"), Some(512));
    }

    #[test]
    #[should_panic(expected = "bad value for --chunk")]
    fn chunk_rejects_zero() {
        let _ = parse_chunk("0");
    }

    #[test]
    #[should_panic(expected = "bad value for --chunk")]
    fn chunk_rejects_non_integers() {
        let _ = parse_chunk("16.5");
    }

    #[test]
    #[should_panic(expected = "bad value for --chunk")]
    fn chunk_rejects_non_finite() {
        let _ = parse_chunk("inf");
    }

    fn rate_spec() -> CliSpec {
        CliSpec::new("demo").option("--fault-rate", "X", "injected fault probability")
    }

    fn parse_rate(raw: &str) -> f64 {
        rate_spec()
            .parse_from(&strings(&["--fault-rate", raw]))
            .unwrap()
            .args()
            .get_f64_nonneg("--fault-rate", 0.0)
    }

    #[test]
    fn f64_options_accept_the_sane_range() {
        assert_eq!(parse_rate("0"), 0.0);
        assert_eq!(parse_rate("0.25"), 0.25);
        assert_eq!(parse_rate("1e-3"), 1e-3);
        let defaulted = rate_spec()
            .parse_from(&strings(&[]))
            .unwrap()
            .args()
            .get_f64_nonneg("--fault-rate", 0.1);
        assert_eq!(defaulted, 0.1);
    }

    #[test]
    #[should_panic(expected = "bad value for --fault-rate")]
    fn f64_options_reject_nan() {
        // f64::from_str parses "NaN" successfully — the getter must not.
        let _ = parse_rate("NaN");
    }

    #[test]
    #[should_panic(expected = "bad value for --fault-rate")]
    fn f64_options_reject_negative() {
        let _ = parse_rate("-0.5");
    }

    #[test]
    #[should_panic(expected = "bad value for --fault-rate")]
    fn f64_options_reject_infinite() {
        let _ = parse_rate("inf");
    }
}
