//! JSON document assembly for `BENCH_serve.json` (experiment E21).
//!
//! The `serve_bench` binary fills a [`ServeReport`] from its measurements
//! and prints [`ServeReport::render`]. Keeping the assembly here (rather
//! than inline in the binary) lets the round-trip test feed a synthetic
//! report through [`oaq_serve::report::parse`] and assert the document is
//! strict JSON without running the full benchmark.

use oaq_engine::report::fmt_f64;
use oaq_engine::CacheStatsSnapshot;
use oaq_serve::report::{cache_stats_json, quantiles_json, rate_json};

/// A (queries, seconds) pair rendered as `{"secs":…,"qps":…}`.
#[derive(Debug, Clone, Copy)]
pub struct Rate {
    /// How many queries the phase answered.
    pub queries: usize,
    /// Wall-clock seconds the phase took.
    pub secs: f64,
}

impl Rate {
    fn json(&self) -> String {
        rate_json(self.queries, self.secs)
    }
}

/// One worker×shard cell of the scaling matrix.
#[derive(Debug, Clone)]
pub struct MatrixCell {
    /// Engine worker threads.
    pub workers: usize,
    /// Cache shard count.
    pub shards: usize,
    /// Closed-loop cold replay (one connection).
    pub cold: Rate,
    /// Concurrent connections in the warm phase.
    pub warm_clients: usize,
    /// Closed-loop warm replay across all warm connections.
    pub warm: Rate,
    /// Result-cache `try_lock` failures during the cell.
    pub result_contended: u64,
    /// `P(k)`-cache `try_lock` failures during the cell.
    pub pk_contended: u64,
    /// Every wire answer matched `direct_eval` bit-for-bit.
    pub bit_identical: bool,
}

impl MatrixCell {
    fn json(&self) -> String {
        format!(
            "{{\"workers\":{},\"shards\":{},\"cold\":{},\"warm_clients\":{},\"warm\":{},\
             \"result_contended\":{},\"pk_contended\":{},\"bit_identical\":{}}}",
            self.workers,
            self.shards,
            self.cold.json(),
            self.warm_clients,
            self.warm.json(),
            self.result_contended,
            self.pk_contended,
            self.bit_identical,
        )
    }
}

/// One cell of the in-process lock-contention probe: several threads
/// hammer warm cache hits in a tight loop, so the per-shard `try_lock`
/// failure counters expose how far a single lock (1 shard) versus a
/// split lock (N shards) serializes the hot path — measurable even on a
/// one-core box, where wire-path timings cannot show warm scaling.
#[derive(Debug, Clone)]
pub struct ProbeCell {
    /// Cache shard count under test.
    pub shards: usize,
    /// Hammering threads.
    pub threads: usize,
    /// Total warm lookups issued.
    pub ops: u64,
    /// Result-cache `try_lock` failures observed.
    pub result_contended: u64,
    /// Wall-clock seconds the hammer took.
    pub secs: f64,
}

impl ProbeCell {
    fn json(&self) -> String {
        format!(
            "{{\"shards\":{},\"threads\":{},\"ops\":{},\"result_contended\":{},\"secs\":{}}}",
            self.shards,
            self.threads,
            self.ops,
            self.result_contended,
            fmt_f64(self.secs),
        )
    }
}

/// The open-loop (coordinated-omission-free) latency phase.
#[derive(Debug, Clone)]
pub struct OpenLoopReport {
    /// The paced send rate.
    pub target_qps: f64,
    /// What actually went over the wire.
    pub achieved: Rate,
    /// Latency quantiles in seconds, measured from each request's
    /// *scheduled* send instant.
    pub p50_s: f64,
    /// 95th percentile.
    pub p95_s: f64,
    /// 99th percentile.
    pub p99_s: f64,
    /// 99.9th percentile.
    pub p999_s: f64,
    /// Worst observed.
    pub max_s: f64,
}

impl OpenLoopReport {
    fn json(&self) -> String {
        format!(
            "{{\"target_qps\":{},\"achieved\":{},\"latency\":{}}}",
            fmt_f64(self.target_qps),
            self.achieved.json(),
            quantiles_json(
                self.achieved.queries,
                &[
                    ("p50_s", self.p50_s),
                    ("p95_s", self.p95_s),
                    ("p99_s", self.p99_s),
                    ("p999_s", self.p999_s),
                    ("max_s", self.max_s),
                ],
            ),
        )
    }
}

/// The snapshot warm-start phase: one server life that solves, one that
/// reloads and must not.
#[derive(Debug, Clone)]
pub struct WarmStartReport {
    /// Cold replay on the first server life.
    pub cold: Rate,
    /// `P(k)` solves the cold life ran.
    pub cold_pk_solves: u64,
    /// Replay on the snapshot-warmed second life.
    pub warm: Rate,
    /// `P(k)` solves after reload (the acceptance bar is `0`).
    pub warm_pk_solves: u64,
    /// Snapshot size on disk.
    pub snapshot_bytes: u64,
    /// Capacity-cache entries persisted.
    pub pk_entries: usize,
    /// Result-cache entries persisted.
    pub result_entries: usize,
    /// A deliberately corrupted snapshot was rejected (typed) and the
    /// third life booted cold.
    pub corrupt_rejected: bool,
}

impl WarmStartReport {
    fn json(&self) -> String {
        format!(
            "{{\"cold\":{},\"cold_pk_solves\":{},\"warm\":{},\"warm_pk_solves\":{},\
             \"snapshot_bytes\":{},\"pk_entries\":{},\"result_entries\":{},\
             \"corrupt_rejected\":{}}}",
            self.cold.json(),
            self.cold_pk_solves,
            self.warm.json(),
            self.warm_pk_solves,
            self.snapshot_bytes,
            self.pk_entries,
            self.result_entries,
            self.corrupt_rejected,
        )
    }
}

/// The whole `BENCH_serve.json` document.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Workload seed.
    pub seed: u64,
    /// Queries per replay.
    pub queries: usize,
    /// Distinct workload scenarios.
    pub scenarios: usize,
    /// CI-sized run.
    pub quick: bool,
    /// Every phase's every answer matched `direct_eval` bit-for-bit.
    pub bit_identical: bool,
    /// Sequential `direct_eval` baseline.
    pub naive: Rate,
    /// The worker×shard scaling matrix.
    pub matrix: Vec<MatrixCell>,
    /// The in-process lock-contention probe, one cell per shard count.
    pub contention: Vec<ProbeCell>,
    /// The open-loop latency phase.
    pub open_loop: OpenLoopReport,
    /// The snapshot warm-start phase.
    pub warm_start: WarmStartReport,
    /// Per-shard cache counters from the open-loop server.
    pub cache: CacheStatsSnapshot,
}

impl ServeReport {
    /// The document, pretty enough for a human and strict enough for
    /// [`oaq_serve::report::parse`].
    #[must_use]
    pub fn render(&self) -> String {
        let rows: Vec<String> = self.matrix.iter().map(MatrixCell::json).collect();
        let probes: Vec<String> = self.contention.iter().map(ProbeCell::json).collect();
        format!(
            "{{\n  \"experiment\": \"serve_bench\",\n  \"seed\": {},\n  \"queries\": {},\n  \
             \"scenarios\": {},\n  \"quick\": {},\n  \"bit_identical\": {},\n  \
             \"naive\": {},\n  \"matrix\": [{}],\n  \"contention_probe\": [{}],\n  \
             \"open_loop\": {},\n  \
             \"warm_start\": {},\n  \"cache\": {}\n}}",
            self.seed,
            self.queries,
            self.scenarios,
            self.quick,
            self.bit_identical,
            self.naive.json(),
            rows.join(", "),
            probes.join(", "),
            self.open_loop.json(),
            self.warm_start.json(),
            cache_stats_json(&self.cache),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oaq_engine::CacheShardStats;
    use oaq_serve::report::{parse, JsonValue};

    fn synthetic() -> ServeReport {
        let shard = CacheShardStats {
            hits: 7,
            misses: 3,
            inserts: 3,
            contended: 2,
            entries: 3,
        };
        ServeReport {
            seed: 2003,
            queries: 1000,
            scenarios: 40,
            quick: true,
            bit_identical: true,
            naive: Rate {
                queries: 1000,
                secs: 2.5,
            },
            matrix: vec![MatrixCell {
                workers: 4,
                shards: 8,
                cold: Rate {
                    queries: 1000,
                    secs: 1.0,
                },
                warm_clients: 4,
                warm: Rate {
                    queries: 4000,
                    secs: 0.5,
                },
                result_contended: 11,
                pk_contended: 0,
                bit_identical: true,
            }],
            contention: vec![
                ProbeCell {
                    shards: 1,
                    threads: 4,
                    ops: 200_000,
                    result_contended: 531,
                    secs: 0.8,
                },
                ProbeCell {
                    shards: 8,
                    threads: 4,
                    ops: 200_000,
                    result_contended: 42,
                    secs: 0.7,
                },
            ],
            open_loop: OpenLoopReport {
                target_qps: 500.0,
                achieved: Rate {
                    queries: 2000,
                    secs: 4.0,
                },
                p50_s: 1e-4,
                p95_s: 2e-4,
                p99_s: 3e-4,
                // An empty tail quantile must render as null, not NaN.
                p999_s: f64::NAN,
                max_s: 5e-4,
            },
            warm_start: WarmStartReport {
                cold: Rate {
                    queries: 1000,
                    secs: 1.2,
                },
                cold_pk_solves: 40,
                warm: Rate {
                    queries: 1000,
                    secs: 0.1,
                },
                warm_pk_solves: 0,
                snapshot_bytes: 65536,
                pk_entries: 40,
                result_entries: 120,
                corrupt_rejected: true,
            },
            cache: CacheStatsSnapshot {
                result: vec![shard; 8],
                pk: vec![shard; 8],
            },
        }
    }

    /// The emitted document is strict JSON end to end — the round-trip
    /// bar for `BENCH_serve.json`.
    #[test]
    fn rendered_report_parses_as_strict_json() {
        let doc = synthetic().render();
        let v = parse(&doc).unwrap();
        assert_eq!(
            v.get("experiment"),
            Some(&JsonValue::String("serve_bench".to_string()))
        );
        assert_eq!(
            v.get("matrix")
                .and_then(JsonValue::as_array)
                .map(<[JsonValue]>::len),
            Some(1)
        );
        assert_eq!(
            v.get("contention_probe")
                .and_then(JsonValue::as_array)
                .and_then(|a| a.first())
                .and_then(|c| c.get("result_contended"))
                .and_then(JsonValue::as_f64),
            Some(531.0)
        );
        assert_eq!(
            v.get("open_loop")
                .and_then(|o| o.get("latency"))
                .and_then(|l| l.get("p999_s")),
            Some(&JsonValue::Null),
            "NaN quantiles must emit as null"
        );
        assert_eq!(
            v.get("warm_start")
                .and_then(|w| w.get("warm_pk_solves"))
                .and_then(JsonValue::as_f64),
            Some(0.0)
        );
        assert_eq!(
            v.get("cache")
                .and_then(|c| c.get("result_shards"))
                .and_then(JsonValue::as_array)
                .map(<[JsonValue]>::len),
            Some(8)
        );
    }
}
