//! # oaq-bench — experiment harness for the OAQ reproduction
//!
//! One binary per table/figure of the paper (see `DESIGN.md`'s experiment
//! index and `EXPERIMENTS.md` for recorded results):
//!
//! | binary | artifact |
//! |---|---|
//! | `table1` | Table 1 — QoS levels vs geometric properties |
//! | `fig7` | Figure 7 — P(K = k) vs λ |
//! | `fig8` | Figure 8 — P(Y = 3) vs λ, OAQ vs BAQ, µ ∈ {0.2, 0.5} |
//! | `fig9` | Figure 9 — P(Y ≥ y) vs λ |
//! | `text_numbers` | §4.3 in-text values |
//! | `tau_sweep` | §4.3 QoS vs deadline τ |
//! | `mu_sweep` | §4.3 QoS vs mean signal duration |
//! | `geometry_report` | Figures 2/5/6 — geometric regimes |
//! | `validate_protocol` | E9 — protocol simulation vs analytic model |
//! | `geoloc_accuracy` | E10 — sequential-localization accuracy |
//! | `ablation` | E11 — spare policies, Erlang order, messaging variants |
//! | `membership` | E12 (extension) — membership service + assisted recruitment |
//! | `latency` | E13 (analysis) — alert latency vs quality trade-off |
//! | `chain_depth` | E14 (analysis) — coordination-chain-length distribution |
//! | `robustness` | E15 (analysis) — fault-injection campaign: bursty/transient faults × retry budgets, JSON degradation curves |
//! | `qos_server` | E16 (engine) — serving-engine replay of a seeded Zipf query workload: throughput vs naive recompute, latency percentiles, cache/admission counters, JSON |
//! | `pk_kernel` | E17 (perf) — sparse shared-iterate P(k) kernel vs dense per-panel baseline, JSON |
//! | `mc_replication` | E18 (perf) — deterministic parallel replication engine: traced vs fast-path campaign cells, worker fan-out with in-bench bit-identity assertion, JSON |
//! | `serve_bench` | E21 (serving) — networked frontend over the wire: worker×shard scaling matrix with per-shard contention counters, open-loop (coordinated-omission-free) latency quantiles, snapshot warm-start, JSON |
//!
//! The Criterion benches (`benches/`) measure the computational substrates
//! themselves (kernel, SAN solvers, WLS, analytic evaluation, protocol
//! episodes).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod campaign;
pub mod serve_report;

/// Prints a TSV header row.
pub fn tsv_header(cols: &[&str]) {
    println!("{}", cols.join("\t"));
}

/// Prints one TSV data row of floats with 6 significant digits.
pub fn tsv_row(x: f64, values: &[f64]) {
    let mut s = format!("{x:.6e}");
    for v in values {
        s.push('\t');
        s.push_str(&format!("{v:.6}"));
    }
    println!("{s}");
}

/// A section banner for experiment output.
pub fn banner(title: &str) {
    println!("\n# {title}");
}

#[cfg(test)]
mod tests {
    #[test]
    fn helpers_do_not_panic() {
        super::tsv_header(&["a", "b"]);
        super::tsv_row(1e-5, &[0.5, 0.25]);
        super::banner("smoke");
    }
}
