//! Experiment E5 — every number quoted in the paper's running text,
//! recomputed (and, for the conditional ones, re-simulated).

use oaq_analytic::compose::{EvaluationConfig, Scheme};
use oaq_analytic::geometry::PlaneGeometry;
use oaq_analytic::qos::{g3_baq, g3_oaq, QosParams};
use oaq_bench::banner;
use oaq_core::config::{ProtocolConfig, Scheme as PScheme};
use oaq_core::experiment::{estimate_conditional_qos, MonteCarloOptions};

fn main() {
    banner("Section 4.3 in-text values");

    let g12 = PlaneGeometry::reference(12);
    let q05 = QosParams::paper_defaults(0.5);
    println!("P(Y=3 | k=12), tau=5, mu=0.5, nu=30:");
    println!("  paper OAQ = 0.44   computed = {:.4}", g3_oaq(&g12, &q05));
    println!("  paper BAQ = 0.20   computed = {:.4}", g3_baq(&g12, &q05));

    let opts = MonteCarloOptions {
        episodes: 20_000,
        mu: 0.5,
        seed: 11,
    };
    let sim_oaq = estimate_conditional_qos(&ProtocolConfig::reference(12, PScheme::Oaq), &opts);
    let sim_baq = estimate_conditional_qos(&ProtocolConfig::reference(12, PScheme::Baq), &opts);
    println!(
        "  protocol simulation: OAQ = {:.4} +/- {:.4}, BAQ = {:.4} +/- {:.4}",
        sim_oaq.p[3],
        sim_oaq.ci95(sim_oaq.p[3]),
        sim_baq.p[3],
        sim_baq.ci95(sim_baq.p[3]),
    );

    println!();
    println!("P(Y>=2) anchors (tau=5, mu=0.2, eta=10, phi=30000h):");
    for (lambda, p_oaq, p_baq) in [(1e-5, 0.75, 0.33), (1e-4, 0.41, 0.04)] {
        let cfg = EvaluationConfig::paper_defaults(lambda);
        let oaq = cfg.qos_ccdf(Scheme::Oaq).expect("solves").p_at_least(2);
        let baq = cfg.qos_ccdf(Scheme::Baq).expect("solves").p_at_least(2);
        println!(
            "  lambda={lambda:.0e}: paper OAQ {p_oaq:.2} / computed {oaq:.4}; paper BAQ {p_baq:.2} / computed {baq:.4}"
        );
    }

    println!();
    println!("Underlap threshold: Tr[k] >= Tc first at k = 10 (paper: k < 11).");
    println!(
        "  Tr[11] = {:.3} < 9;  Tr[10] = {:.3} >= 9",
        PlaneGeometry::reference(11).tr(),
        PlaneGeometry::reference(10).tr()
    );
    println!(
        "Chain bound with tau < 9: M[10] = {:?}, M[9] = {:?} (paper: 2)",
        PlaneGeometry::reference(10).sequential_chain_bound(5.0),
        PlaneGeometry::reference(9).sequential_chain_bound(5.0)
    );
}
