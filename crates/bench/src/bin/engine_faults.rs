//! Experiment E20 — the serving engine under injected faults and a
//! tenant flood.
//!
//! Wraps the engine's evaluator in a fault injector that, at seeded
//! per-call rates, panics mid-solve or stalls (a latency spike), then
//! drives two campaigns and reports JSON on stdout (progress on stderr):
//!
//! 1. **Fault sweep** — fault rate × worker count grid over a
//!    multi-tenant Zipf workload with per-query deadlines and the SLO
//!    shedder armed. Every cell checks the two serving invariants
//!    in-process:
//!    * every submission reaches **exactly one** terminal outcome — an
//!      answer, a typed per-query error (`EvalPanicked`,
//!      `DeadlineExceeded`, `WorkerLost`) or a typed rejection — never a
//!      hang, never a double delivery;
//!    * every `Ok` answer is **bit-identical** to the naive
//!      `direct_eval` of the same query — supervision and shedding must
//!      never perturb a value.
//! 2. **Tenant flood** — one tenant submits a 10× cache-busting burst
//!    while two polite closed-loop tenants keep working. The per-tenant
//!    quotas must absorb the overload (the flooder collects
//!    `QuotaExceeded`), and the polite tenants' observed p99 must stay
//!    within the SLO.
//!
//! Any violated invariant prints a diagnostic and exits non-zero, so CI
//! fails loudly. The workload and the per-call-index fault draws are a
//! pure function of the seed, but the campaign runs real threads against
//! wall-clock deadlines, so the outcome *mix* (expired vs panicked vs
//! completed) varies with scheduling — the invariants are what is exact.
//!
//! Usage: `engine_faults [--quick] [--seed N] [--queries N] [--workers N]
//! [--fault-rate X] [--deadline-ms X] [--slo-ms X]`

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use oaq_bench::args::CliSpec;
use oaq_engine::report::{fmt_f64, fmt_f64_or_null};
use oaq_engine::{
    direct_eval, eval_cheap, eval_with_pk, multi_tenant_workload, silence_injected_panics,
    zipf_workload, Engine, EngineConfig, EngineError, Evaluator, QosQuery, QosValue, QueryError,
    QuotaPolicy, RejectReason, RobustQuantile, ShedPolicy, TenantId, WorkloadConfig,
    INJECTED_FAULT,
};
use oaq_sim::SimRng;

/// Wraps the real analytic stack with seeded faults: each `P(k)` solve
/// draws its own substream (indexed by a call counter, so concurrency
/// does not change which *draws* panic) and either panics, stalls, or
/// computes the true answer. Returned values are never perturbed — the
/// bit-identity invariant is checked against this evaluator's output.
struct FaultyEvaluator {
    seed: u64,
    fault_rate: f64,
    spike_rate: f64,
    spike: Duration,
    calls: AtomicU64,
}

impl FaultyEvaluator {
    fn new(seed: u64, fault_rate: f64, spike_rate: f64, spike: Duration) -> Self {
        FaultyEvaluator {
            seed,
            fault_rate,
            spike_rate,
            spike,
            calls: AtomicU64::new(0),
        }
    }
}

impl FaultyEvaluator {
    /// One fault draw per evaluator call, indexed by a global call
    /// counter so a given seed yields a fixed set of faulting draws.
    fn roll(&self) -> FaultDraw {
        let n = self.calls.fetch_add(1, Ordering::Relaxed);
        let mut coin = SimRng::substream(self.seed, n);
        if coin.chance(self.fault_rate) {
            FaultDraw::Panic
        } else if coin.chance(self.spike_rate) {
            FaultDraw::Spike
        } else {
            FaultDraw::Clean
        }
    }

    /// How many panics the seeded draws imply for the calls actually
    /// made. A panicking draw aborts exactly one supervised evaluation,
    /// so the engine's `eval_panics` counter must equal this — an exact,
    /// deterministic cross-check of the supervision accounting.
    fn expected_panics(&self) -> u64 {
        let calls = self.calls.load(Ordering::Relaxed);
        (0..calls)
            .filter(|&n| SimRng::substream(self.seed, n).chance(self.fault_rate))
            .count() as u64
    }
}

enum FaultDraw {
    Panic,
    Spike,
    Clean,
}

impl Evaluator for FaultyEvaluator {
    fn solve_pk(&self, query: &QosQuery) -> Result<Vec<f64>, EngineError> {
        match self.roll() {
            FaultDraw::Panic => std::panic::panic_any(INJECTED_FAULT),
            FaultDraw::Spike => std::thread::sleep(self.spike),
            FaultDraw::Clean => {}
        }
        query
            .capacity_params()
            .distribution()
            .map_err(EngineError::from)
    }

    // Faults can strike the G-function layer too (panic or stall, never a
    // perturbed value) — this also keeps the injector busy on cache-warm
    // workloads where `P(k)` solves are rare.
    fn eval_with_pk(&self, query: &QosQuery, pk: &[f64]) -> QosValue {
        match self.roll() {
            FaultDraw::Panic => std::panic::panic_any(INJECTED_FAULT),
            FaultDraw::Spike => std::thread::sleep(self.spike),
            FaultDraw::Clean => {}
        }
        eval_with_pk(query, pk)
    }

    fn eval_cheap(&self, query: &QosQuery) -> QosValue {
        match self.roll() {
            FaultDraw::Panic => std::panic::panic_any(INJECTED_FAULT),
            FaultDraw::Spike => std::thread::sleep(self.spike),
            FaultDraw::Clean => {}
        }
        eval_cheap(query)
    }
}

/// Terminal-outcome tally for one campaign. Exactly one field increments
/// per submission.
#[derive(Debug, Default, Clone, Copy)]
struct Outcomes {
    ok: u64,
    eval_panicked: u64,
    worker_lost: u64,
    deadline_exceeded: u64,
    backpressure: u64,
    quota: u64,
    shed: u64,
}

impl Outcomes {
    fn total(&self) -> u64 {
        self.ok
            + self.eval_panicked
            + self.worker_lost
            + self.deadline_exceeded
            + self.backpressure
            + self.quota
            + self.shed
    }

    fn json(&self) -> String {
        format!(
            "{{\"ok\": {}, \"eval_panicked\": {}, \"worker_lost\": {}, \
             \"deadline_exceeded\": {}, \"backpressure_rejected\": {}, \
             \"quota_rejected\": {}, \"shed\": {}}}",
            self.ok,
            self.eval_panicked,
            self.worker_lost,
            self.deadline_exceeded,
            self.backpressure,
            self.quota,
            self.shed,
        )
    }
}

/// One fault-sweep cell: fresh engine, open-loop replay, invariant checks.
/// Returns the JSON row; pushes violations into `violations`.
#[allow(clippy::too_many_lines)]
fn run_cell(
    workload: &[QosQuery],
    workers: usize,
    batch_size: usize,
    fault_rate: f64,
    slo_s: f64,
    seed: u64,
    violations: &mut Vec<String>,
) -> String {
    let label = format!("fault_rate={fault_rate}, workers={workers}");
    let evaluator = Arc::new(FaultyEvaluator::new(
        seed ^ 0xFA_u64,
        fault_rate,
        fault_rate / 2.0,
        Duration::from_millis(50),
    ));
    let engine = Engine::with_evaluator(
        EngineConfig {
            workers,
            queue_capacity: 64,
            batch_size,
            result_cache: 1024,
            pk_cache: 64,
            shed: ShedPolicy::with_slo(slo_s),
            shed_seed: seed,
            ..EngineConfig::default()
        },
        evaluator.clone(),
    );

    let t0 = Instant::now();
    let mut outcomes = Outcomes::default();
    let mut tickets = Vec::new();
    for (i, q) in workload.iter().enumerate() {
        match engine.submit(*q) {
            Ok(t) => tickets.push((i, t)),
            Err(EngineError::Rejected(RejectReason::QueueFull { .. })) => {
                outcomes.backpressure += 1;
            }
            Err(EngineError::Rejected(RejectReason::QuotaExceeded { .. })) => outcomes.quota += 1,
            Err(EngineError::Rejected(RejectReason::Overloaded)) => outcomes.shed += 1,
            Err(e) => violations.push(format!("{label}: unexpected submit error: {e}")),
        }
    }
    for (i, t) in tickets {
        match t.wait() {
            Ok(v) => {
                outcomes.ok += 1;
                // Bit-identity: supervision must never perturb a value.
                if v != direct_eval(&workload[i]).expect("in-domain workload") {
                    violations.push(format!("{label}: query {i} diverged from direct_eval"));
                }
            }
            Err(EngineError::Query(QueryError::EvalPanicked)) => outcomes.eval_panicked += 1,
            Err(EngineError::Query(QueryError::DeadlineExceeded { .. })) => {
                outcomes.deadline_exceeded += 1;
            }
            Err(EngineError::WorkerLost) => outcomes.worker_lost += 1,
            Err(e) => violations.push(format!("{label}: unexpected terminal error: {e}")),
        }
    }
    let wall_s = t0.elapsed().as_secs_f64();
    engine.shutdown();
    let m = engine.metrics();

    // Invariant: exactly one terminal outcome per submission.
    if outcomes.total() != workload.len() as u64 {
        violations.push(format!(
            "{label}: {} outcomes for {} submissions",
            outcomes.total(),
            workload.len()
        ));
    }
    // Drained-engine accounting: nothing lost inside the engine either.
    if m.submitted != m.served + m.coalesced {
        violations.push(format!(
            "{label}: submitted {} != served {} + coalesced {}",
            m.submitted, m.served, m.coalesced
        ));
    }
    // The injected draws are a pure function of the call index, so the
    // engine's panic counter must match them exactly.
    let expected_panics = evaluator.expected_panics();
    if m.eval_panics != expected_panics {
        violations.push(format!(
            "{label}: engine counted {} eval panics, seeded draws injected {expected_panics}",
            m.eval_panics
        ));
    }

    #[allow(clippy::cast_precision_loss)]
    let goodput = outcomes.ok as f64 / wall_s;
    eprintln!(
        "#   {label}: ok {} / {} in {wall_s:.3}s ({goodput:.0} good q/s), \
         panics {}, respawns {}, deadline {}, shed {}",
        outcomes.ok,
        workload.len(),
        m.eval_panics,
        m.worker_respawns,
        m.deadline_expired,
        m.shed,
    );
    format!(
        "{{\"fault_rate\": {}, \"workers\": {workers}, \"queries\": {}, \
         \"outcomes\": {}, \"wall_s\": {}, \"goodput_qps\": {}, \
         \"eval_panics\": {}, \"worker_respawns\": {}, \"deadline_expired\": {}, \
         \"shed\": {}, \"shed_probability\": {}, \"pk_solves\": {}, \"e2e_p99_s\": {}}}",
        fmt_f64(fault_rate),
        workload.len(),
        outcomes.json(),
        fmt_f64(wall_s),
        fmt_f64(goodput),
        m.eval_panics,
        m.worker_respawns,
        m.deadline_expired,
        m.shed,
        fmt_f64(m.shed_probability),
        m.pk_solves,
        fmt_f64_or_null(m.end_to_end.p99),
    )
}

/// The tenant-flood campaign: one 10× cache-busting flooder vs two
/// polite closed-loop tenants, quotas armed, faults off.
fn run_flood(
    base_queries: usize,
    workers: usize,
    batch_size: usize,
    slo_s: f64,
    seed: u64,
    violations: &mut Vec<String>,
) -> String {
    const FLOODER: TenantId = TenantId(1);
    let flood_n = base_queries * 10;
    // Cache-busting flood: a near-distinct scenario pool, so almost every
    // flood submission misses the result cache and is charged quota.
    let flood: Vec<QosQuery> = zipf_workload(
        &WorkloadConfig {
            scenarios: flood_n,
            skew: 0.0,
            queries: flood_n,
        },
        seed ^ 0xF_100D,
    )
    .into_iter()
    .map(|q| q.for_tenant(FLOODER))
    .collect();
    let polite_streams: Vec<Vec<QosQuery>> = [2u32, 3]
        .iter()
        .map(|&t| {
            zipf_workload(
                &WorkloadConfig {
                    scenarios: 20,
                    skew: 1.0,
                    queries: base_queries,
                },
                seed + u64::from(t),
            )
            .into_iter()
            .map(|q| q.for_tenant(TenantId(t)))
            .collect()
        })
        .collect();

    let engine = Engine::new(EngineConfig {
        workers,
        queue_capacity: 64,
        batch_size,
        result_cache: 1024,
        pk_cache: 128,
        quota: QuotaPolicy {
            rate_per_sec: 200.0,
            burst: 40.0,
            queue_share: 0.25,
        },
        ..EngineConfig::default()
    });

    let t0 = Instant::now();
    let engine_ref = &engine;
    let (flood_outcomes, polite) = std::thread::scope(|s| {
        let flooder = s.spawn(|| {
            // Open-loop: fire the whole burst, collect tickets, wait after.
            let mut out = Outcomes::default();
            let mut tickets = Vec::new();
            for (i, q) in flood.iter().enumerate() {
                match engine_ref.submit(*q) {
                    Ok(t) => tickets.push((i, t)),
                    Err(EngineError::Rejected(RejectReason::QuotaExceeded { tenant })) => {
                        assert_eq!(tenant, FLOODER);
                        out.quota += 1;
                    }
                    Err(EngineError::Rejected(RejectReason::QueueFull { .. })) => {
                        out.backpressure += 1;
                    }
                    Err(e) => panic!("unexpected flood submit error: {e}"),
                }
            }
            for (i, t) in tickets {
                match t.wait() {
                    Ok(v) => {
                        out.ok += 1;
                        assert_eq!(
                            v,
                            direct_eval(&flood[i]).expect("in-domain flood"),
                            "flood answers stay bit-identical"
                        );
                    }
                    Err(EngineError::WorkerLost) => out.worker_lost += 1,
                    Err(e) => panic!("unexpected flood outcome: {e}"),
                }
            }
            out
        });
        let polite_handles: Vec<_> = polite_streams
            .iter()
            .map(|stream| {
                s.spawn(move || {
                    // Closed-loop: one query in flight, true per-query
                    // latency observed at the client.
                    let mut p99 = RobustQuantile::new(0.99);
                    let mut out = Outcomes::default();
                    for q in stream {
                        let t0 = Instant::now();
                        loop {
                            match engine_ref.submit(*q) {
                                Ok(t) => {
                                    match t.wait() {
                                        Ok(v) => {
                                            out.ok += 1;
                                            assert_eq!(
                                                v,
                                                direct_eval(q).expect("in-domain"),
                                                "polite answers stay bit-identical"
                                            );
                                        }
                                        Err(EngineError::WorkerLost) => out.worker_lost += 1,
                                        Err(e) => panic!("unexpected polite outcome: {e}"),
                                    }
                                    p99.record(t0.elapsed().as_secs_f64());
                                    break;
                                }
                                Err(EngineError::Rejected(RejectReason::QueueFull { .. })) => {
                                    std::thread::yield_now();
                                }
                                Err(EngineError::Rejected(RejectReason::QuotaExceeded {
                                    ..
                                })) => {
                                    out.quota += 1;
                                    break;
                                }
                                Err(e) => panic!("unexpected polite submit error: {e}"),
                            }
                        }
                    }
                    (out, p99)
                })
            })
            .collect();
        (
            flooder.join().expect("flooder thread"),
            polite_handles
                .into_iter()
                .map(|h| h.join().expect("polite thread"))
                .collect::<Vec<_>>(),
        )
    });
    let wall_s = t0.elapsed().as_secs_f64();
    engine.shutdown();

    // Invariants: the quota absorbed the flood; polite tenants were
    // never quota-rejected and their observed p99 stayed within the SLO.
    if flood_outcomes.quota * 2 < flood_n as u64 {
        violations.push(format!(
            "flood: only {} of {flood_n} flood submissions were quota-rejected",
            flood_outcomes.quota
        ));
    }
    let mut polite_p99 = 0.0f64;
    for (i, (out, p99)) in polite.iter().enumerate() {
        if out.quota > 0 {
            violations.push(format!(
                "flood: polite tenant {} hit the quota {} times",
                i + 2,
                out.quota
            ));
        }
        if out.total() != base_queries as u64 {
            violations.push(format!(
                "flood: polite tenant {} saw {} outcomes for {base_queries} queries",
                i + 2,
                out.total()
            ));
        }
        let est = p99.estimate().unwrap_or(0.0);
        polite_p99 = polite_p99.max(est);
        if est > slo_s {
            violations.push(format!(
                "flood: polite tenant {} p99 {est:.4}s breaches the {slo_s:.4}s SLO",
                i + 2
            ));
        }
    }
    if flood_outcomes.total() != flood_n as u64 {
        violations.push(format!(
            "flood: {} outcomes for {flood_n} flood submissions",
            flood_outcomes.total()
        ));
    }

    let tenant_rows: Vec<String> = engine
        .tenant_metrics()
        .iter()
        .map(|s| {
            format!(
                "{{\"tenant\": {}, \"submitted\": {}, \"cache_hits\": {}, \"coalesced\": {}, \
                 \"completed\": {}, \"quota_rejected\": {}}}",
                s.tenant, s.submitted, s.cache_hits, s.coalesced, s.completed, s.quota_rejected,
            )
        })
        .collect();
    eprintln!(
        "#   flood: {}/{flood_n} flooder submissions quota-rejected, {} served; \
         polite p99 {polite_p99:.4}s vs SLO {slo_s:.4}s ({wall_s:.3}s wall)",
        flood_outcomes.quota, flood_outcomes.ok,
    );
    format!(
        "{{\"flood_queries\": {flood_n}, \"polite_queries_each\": {base_queries}, \
         \"workers\": {workers}, \"slo_s\": {}, \"wall_s\": {}, \
         \"flooder_outcomes\": {}, \"polite_p99_s\": {}, \"tenants\": [{}]}}",
        fmt_f64(slo_s),
        fmt_f64(wall_s),
        flood_outcomes.json(),
        fmt_f64_or_null(polite_p99),
        tenant_rows.join(", "),
    )
}

fn main() {
    let cli = CliSpec::new("engine_faults")
        .switch("--quick", "smaller grid and workloads (CI size)")
        .option("--seed", "N", "base seed (default 2003)")
        .option("--queries", "N", "base workload length (default 400)")
        .option("--workers", "N", "pin the sweep to one worker count")
        .option(
            "--chunk",
            "N",
            "queries drained per worker batch (default 8)",
        )
        .option("--fault-rate", "X", "pin the sweep to one fault rate")
        .option(
            "--deadline-ms",
            "X",
            "per-query deadline (0 disables; default 25)",
        )
        .option(
            "--slo-ms",
            "X",
            "p99 SLO for shedding and the flood bar (default 50)",
        )
        .parse();
    let quick = cli.has("--quick");
    let seed = cli.get_u64("--seed", 2003);
    let queries = cli.get_usize("--queries", if quick { 120 } else { 400 });
    let batch_size = cli
        .get_chunk("--chunk")
        .map_or(8, |c| usize::try_from(c).expect("chunk fits usize"));
    let deadline_ms = cli.get_f64_nonneg("--deadline-ms", 25.0);
    let slo_ms = cli.get_f64_nonneg("--slo-ms", 50.0);
    let slo_s = slo_ms / 1e3;

    let fault_rates: Vec<f64> = if cli.get("--fault-rate").is_some() {
        vec![cli.get_f64_nonneg("--fault-rate", 0.1)]
    } else if quick {
        vec![0.0, 0.10]
    } else {
        vec![0.0, 0.02, 0.10]
    };
    let worker_counts: Vec<usize> = if cli.get("--workers").is_some() {
        vec![cli.get_usize("--workers", 2)]
    } else if quick {
        vec![2]
    } else {
        vec![1, 2, 4]
    };

    // The injected panics are expected by the thousands; mute their
    // reports (real panics still print through the default hook).
    silence_injected_panics();

    // Multi-tenant sweep workload: three equal-weight tenants, per-query
    // deadlines attached when enabled.
    let workload: Vec<QosQuery> = multi_tenant_workload(
        &WorkloadConfig {
            scenarios: if quick { 60 } else { 80 },
            skew: 0.8,
            queries,
        },
        &[(TenantId(1), 1.0), (TenantId(2), 1.0), (TenantId(3), 1.0)],
        seed,
    )
    .into_iter()
    .map(|q| {
        if deadline_ms > 0.0 {
            q.with_deadline_ms(deadline_ms).expect("validated flag")
        } else {
            q
        }
    })
    .collect();
    eprintln!(
        "# engine_faults: {} queries, fault rates {fault_rates:?} x workers {worker_counts:?}, \
         deadline {deadline_ms} ms, SLO {slo_ms} ms (seed {seed})",
        workload.len(),
    );

    let mut violations = Vec::new();
    let mut cells = Vec::new();
    for &rate in &fault_rates {
        for &w in &worker_counts {
            cells.push(run_cell(
                &workload,
                w,
                batch_size,
                rate,
                slo_s,
                seed,
                &mut violations,
            ));
        }
    }

    eprintln!("# flood campaign: 10x cache-busting burst vs 2 polite tenants");
    let flood_json = run_flood(
        queries,
        if quick { 2 } else { 4 },
        batch_size,
        slo_s,
        seed,
        &mut violations,
    );

    println!(
        "{{\n  \"experiment\": \"engine_faults\",\n  \"seed\": {seed},\n  \"quick\": {quick},\n  \
         \"deadline_ms\": {},\n  \"slo_ms\": {},\n  \"invariants_ok\": {},\n  \
         \"fault_sweep\": [{}],\n  \"flood\": {}\n}}",
        fmt_f64(deadline_ms),
        fmt_f64(slo_ms),
        violations.is_empty(),
        cells.join(", "),
        flood_json,
    );

    if !violations.is_empty() {
        for v in &violations {
            eprintln!("# INVARIANT VIOLATED: {v}");
        }
        std::process::exit(1);
    }
}
