//! Experiment E16 — the serving engine under a Zipf-skewed query workload.
//!
//! Replays a seeded workload three ways and reports JSON on stdout
//! (progress on stderr):
//!
//! 1. **naive** — a sequential loop calling `direct_eval` per query, the
//!    recompute-everything baseline;
//! 2. **engine_cold** — a fresh engine (empty caches), worker pool on;
//! 3. **engine_warm** — the same engine replaying the same workload with
//!    hot caches.
//!
//! Alongside throughput and the engine's per-stage latency percentiles,
//! the report records `bit_identical`: every engine answer (cold and
//! warm) compared bit-for-bit against the naive baseline. The acceptance
//! bar for this experiment is `speedup_warm_vs_naive >= 5`.
//!
//! A `worker_matrix` section additionally replays the workload on fresh
//! engines pinned to 1, 2, and 4 workers (cold and warm each), with every
//! answer re-checked against the naive baseline — worker count must never
//! change an answer, only its latency.
//!
//! Usage: `qos_server [--quick] [--seed N] [--queries N] [--workers N]`

use std::time::Instant;

use oaq_bench::args::CliSpec;
use oaq_engine::report::{fmt_f64, fmt_f64_or_null, json_escape, results_json};
use oaq_engine::{
    direct_eval, zipf_workload, Engine, EngineConfig, EngineResult, LatencySnapshot,
    MetricsSnapshot, QosQuery, WorkloadConfig,
};
use oaq_serve::report::cache_stats_json;

/// FNV-1a over the deterministic result digest, so two runs (or two
/// machines) can compare answers without shipping the full array.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// Sub-five-sample quantiles (and empty-stage min/max) are `None`/NaN —
// serialize those as JSON null, never a bare NaN token.
fn latency_json(l: &LatencySnapshot) -> String {
    format!(
        "{{\"count\":{},\"mean_s\":{},\"p50_s\":{},\"p95_s\":{},\"p99_s\":{},\"max_s\":{}}}",
        l.count,
        fmt_f64_or_null(l.mean),
        fmt_f64_or_null(l.p50),
        fmt_f64_or_null(l.p95),
        fmt_f64_or_null(l.p99),
        fmt_f64_or_null(l.max),
    )
}

fn metrics_json(m: &MetricsSnapshot) -> String {
    format!(
        "{{\"submitted\":{},\"served\":{},\"rejected\":{},\"result_cache_hits\":{},\
         \"coalesced\":{},\"pk_solves\":{},\"pk_cache_hits\":{},\"eval_panics\":{},\
         \"worker_respawns\":{},\"deadline_expired\":{},\"quota_rejected\":{},\"shed\":{},\
         \"shed_probability\":{},\"batch_count\":{},\
         \"mean_batch_size\":{},\"queue_wait\":{},\"solve\":{},\"end_to_end\":{}}}",
        m.submitted,
        m.served,
        m.rejected,
        m.result_cache_hits,
        m.coalesced,
        m.pk_solves,
        m.pk_cache_hits,
        m.eval_panics,
        m.worker_respawns,
        m.deadline_expired,
        m.quota_rejected,
        m.shed,
        fmt_f64(m.shed_probability),
        m.batch_count,
        fmt_f64_or_null(m.mean_batch_size),
        latency_json(&m.queue_wait),
        latency_json(&m.solve),
        latency_json(&m.end_to_end),
    )
}

fn bit_identical(a: &[EngineResult], b: &[EngineResult]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x == y)
}

#[allow(clippy::cast_precision_loss)]
fn throughput(queries: usize, secs: f64) -> f64 {
    queries as f64 / secs
}

fn main() {
    let cli = CliSpec::new("qos_server")
        .switch("--quick", "1k queries over 40 scenarios (CI size)")
        .option("--seed", "N", "workload seed (default 2003)")
        .option("--queries", "N", "workload length (default 10000)")
        .option("--workers", "N", "engine workers (default: all cores)")
        .option(
            "--chunk",
            "N",
            "queries drained per worker batch (default 32)",
        )
        .parse();
    let quick = cli.has("--quick");
    let seed = cli.get_u64("--seed", 2003);
    let queries = cli.get_usize("--queries", if quick { 1000 } else { 10_000 });
    let workers = cli.get_usize("--workers", 0);
    let batch_size = cli
        .get_chunk("--chunk")
        .map_or(32, |c| usize::try_from(c).expect("chunk fits usize"));

    let workload_cfg = WorkloadConfig {
        scenarios: if quick { 40 } else { 200 },
        skew: 1.0,
        queries,
    };
    let workload: Vec<QosQuery> = zipf_workload(&workload_cfg, seed);
    let engine_cfg = EngineConfig {
        workers,
        batch_size,
        ..EngineConfig::default()
    };
    eprintln!(
        "# qos_server: {} queries over {} scenarios (seed {seed}), {} workers",
        workload.len(),
        workload_cfg.scenarios,
        engine_cfg.effective_workers()
    );

    // 1. Naive sequential recompute: the baseline the engine must beat.
    let t0 = Instant::now();
    let naive: Vec<EngineResult> = workload.iter().map(direct_eval).collect();
    let naive_secs = t0.elapsed().as_secs_f64();
    eprintln!(
        "#   naive sequential: {naive_secs:.3}s ({:.0} q/s)",
        throughput(queries, naive_secs)
    );

    // 2. Cold engine: caches empty, coalescing and the P(k) layer do the
    // lifting.
    let engine = Engine::new(engine_cfg);
    let t0 = Instant::now();
    let cold = engine.run_all(&workload);
    let cold_secs = t0.elapsed().as_secs_f64();
    eprintln!(
        "#   engine cold:      {cold_secs:.3}s ({:.0} q/s)",
        throughput(queries, cold_secs)
    );

    // 3. Warm engine: the steady serving state.
    let t0 = Instant::now();
    let warm = engine.run_all(&workload);
    let warm_secs = t0.elapsed().as_secs_f64();
    eprintln!(
        "#   engine warm:      {warm_secs:.3}s ({:.0} q/s)",
        throughput(queries, warm_secs)
    );

    // 4. Worker-count matrix: the same workload on fresh engines pinned to
    // 1/2/4 workers, cold and warm, every answer still checked against the
    // naive baseline.
    let matrix: Vec<(bool, String)> = [1usize, 2, 4]
        .iter()
        .map(|&w| {
            let eng = Engine::new(EngineConfig {
                workers: w,
                ..EngineConfig::default()
            });
            let t0 = Instant::now();
            let mat_cold = eng.run_all(&workload);
            let mat_cold_secs = t0.elapsed().as_secs_f64();
            let t0 = Instant::now();
            let mat_warm = eng.run_all(&workload);
            let mat_warm_secs = t0.elapsed().as_secs_f64();
            let ok = bit_identical(&naive, &mat_cold) && bit_identical(&naive, &mat_warm);
            eprintln!(
                "#   workers={w}: cold {mat_cold_secs:.3}s, warm {mat_warm_secs:.3}s, \
                 bit_identical={ok}"
            );
            let row = format!(
                "{{\"workers\": {w}, \"cold_secs\": {}, \"cold_qps\": {}, \"warm_secs\": {}, \
                 \"warm_qps\": {}, \"bit_identical\": {ok}}}",
                fmt_f64(mat_cold_secs),
                fmt_f64(throughput(queries, mat_cold_secs)),
                fmt_f64(mat_warm_secs),
                fmt_f64(throughput(queries, mat_warm_secs)),
            );
            (ok, row)
        })
        .collect();
    let matrix_identical = matrix.iter().all(|(ok, _)| *ok);

    let identical =
        bit_identical(&naive, &cold) && bit_identical(&naive, &warm) && matrix_identical;
    let digest = fnv1a(&results_json(&naive));
    let metrics = engine.metrics();
    let speedup_cold = naive_secs / cold_secs;
    let speedup_warm = naive_secs / warm_secs;
    eprintln!(
        "#   bit_identical={identical}, speedup cold {speedup_cold:.1}x, warm {speedup_warm:.1}x"
    );

    println!(
        "{{\n  \"experiment\": \"qos_server\",\n  \"seed\": {seed},\n  \"queries\": {queries},\n  \
         \"scenarios\": {},\n  \"workers\": {},\n  \"quick\": {quick},\n  \
         \"bit_identical\": {identical},\n  \"results_digest_fnv1a\": \"{}\",\n  \
         \"naive\": {{\"secs\": {}, \"throughput_qps\": {}}},\n  \
         \"engine_cold\": {{\"secs\": {}, \"throughput_qps\": {}}},\n  \
         \"engine_warm\": {{\"secs\": {}, \"throughput_qps\": {}}},\n  \
         \"speedup_cold_vs_naive\": {},\n  \"speedup_warm_vs_naive\": {},\n  \
         \"worker_matrix\": [{}],\n  \
         \"engine_metrics\": {},\n  \
         \"cache_shards\": {}\n}}",
        workload_cfg.scenarios,
        engine.config().effective_workers(),
        json_escape(&format!("{digest:016x}")),
        fmt_f64(naive_secs),
        fmt_f64(throughput(queries, naive_secs)),
        fmt_f64(cold_secs),
        fmt_f64(throughput(queries, cold_secs)),
        fmt_f64(warm_secs),
        fmt_f64(throughput(queries, warm_secs)),
        fmt_f64(speedup_cold),
        fmt_f64(speedup_warm),
        matrix
            .iter()
            .map(|(_, row)| row.as_str())
            .collect::<Vec<_>>()
            .join(", "),
        metrics_json(&metrics),
        cache_stats_json(&engine.cache_stats()),
    );

    if !identical {
        eprintln!("# BIT-IDENTITY VIOLATED: engine answers diverged from direct evaluation");
        std::process::exit(1);
    }
}
