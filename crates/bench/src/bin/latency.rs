//! Experiment E13 (analysis) — the alert-latency side of the
//! imprecise-computation trade-off (paper Section 3.3): OAQ buys quality
//! with waiting time inside the window of opportunity; BAQ ships the first
//! result it has. Latency measured from signal birth to alert delivery.

use oaq_bench::args::CliSpec;
use oaq_bench::{banner, tsv_header};
use oaq_core::config::{ProtocolConfig, Scheme};
use oaq_core::protocol::Episode;
use oaq_core::qos_level::QosLevel;
use oaq_sim::stats::{P2Quantile, Tally};
use oaq_sim::SimRng;

fn latency_profile(
    cfg: &ProtocolConfig,
    mu: f64,
    episodes: u64,
    seed: u64,
) -> (Tally, f64, f64, f64) {
    let mut rng = SimRng::seed_from(seed);
    let mut tally = Tally::new();
    let mut median = P2Quantile::new(0.5);
    let mut p95 = P2Quantile::new(0.95);
    let mut quality = 0u64;
    let mut detected = 0u64;
    for seed in 0..episodes {
        let birth = cfg.theta + rng.uniform(0.0, cfg.tr());
        let duration = rng.exp(mu);
        let out = Episode::new(cfg, seed).run(birth, duration);
        if out.level > QosLevel::Missed {
            detected += 1;
            if out.level >= QosLevel::SequentialDual {
                quality += 1;
            }
            if let Some(at) = out.delivered_at {
                let latency = at - birth;
                tally.record(latency);
                median.record(latency);
                p95.record(latency);
            }
        }
    }
    (
        tally,
        median.estimate().unwrap_or(0.0),
        p95.estimate().unwrap_or(0.0),
        if detected == 0 {
            0.0
        } else {
            quality as f64 / detected as f64
        },
    )
}

fn main() {
    let cli = CliSpec::new("latency")
        .option(
            "--episodes",
            "N",
            "episodes per (k, scheme) cell (default 20000)",
        )
        .option("--seed", "N", "RNG seed (default 9090)")
        .parse();
    let episodes = cli.get_u64("--episodes", 20_000);
    let seed = cli.get_u64("--seed", 9090);
    let mu = 0.2;
    banner(&format!(
        "Alert latency (birth -> delivery, minutes) vs quality, {episodes} episodes"
    ));
    tsv_header(&[
        "k",
        "scheme",
        "mean",
        "median",
        "p95",
        "max",
        "P(Y>=2|detected)",
    ]);
    for k in [9usize, 10, 12, 14] {
        for (label, scheme) in [("OAQ", Scheme::Oaq), ("BAQ", Scheme::Baq)] {
            let cfg = ProtocolConfig::reference(k, scheme);
            let (t, med, p95, q) = latency_profile(&cfg, mu, episodes, seed);
            println!(
                "{k}\t{label}\t{:.3}\t{:.3}\t{:.3}\t{:.3}\t{:.3}",
                t.mean(),
                med,
                p95,
                t.max().unwrap_or(0.0),
                q
            );
        }
    }
    println!("\nOAQ's latency is bounded by the deadline discipline (max <= tau");
    println!("plus the detection wait) and is spent buying the quality column;");
    println!("BAQ delivers almost immediately and leaves the budget unused —");
    println!("the imprecise-computation trade-off the paper's Section 3.3 draws.");
}
