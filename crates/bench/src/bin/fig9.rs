//! Experiment E4 — paper Figure 9: the QoS measure P(Y ≥ y), y ∈ {1,2,3},
//! as a function of λ (τ = 5, µ = 0.2, η = 10, φ = 30000 h).

use oaq_analytic::compose::Scheme;
use oaq_analytic::sweep::{figure9_par, paper_lambda_grid, Fanout};
use oaq_bench::args::CliSpec;
use oaq_bench::{banner, tsv_header, tsv_row};

fn main() {
    let cli = CliSpec::new("fig9")
        .option("--workers", "N", "sweep threads (default: all cores)")
        .option(
            "--chunk",
            "N",
            "grid points per work chunk (default: adaptive)",
        )
        .parse();
    let fanout = Fanout {
        workers: cli.get_usize("--workers", 0),
        chunk: cli.get_chunk("--chunk"),
    };
    let grid = paper_lambda_grid();
    banner("Figure 9: P(Y>=y) vs lambda (tau=5, mu=0.2, eta=10, phi=30000h)");
    tsv_header(&[
        "lambda", "OAQ:y=1", "OAQ:y=2", "OAQ:y=3", "BAQ:y=1", "BAQ:y=2", "BAQ:y=3",
    ]);
    let oaq = figure9_par(Scheme::Oaq, &grid, fanout).expect("solves");
    let baq = figure9_par(Scheme::Baq, &grid, fanout).expect("solves");
    for i in 0..grid.len() {
        tsv_row(
            grid[i],
            &[
                oaq[i].p_ge_1,
                oaq[i].p_ge_2,
                oaq[i].p_ge_3,
                baq[i].p_ge_1,
                baq[i].p_ge_2,
                baq[i].p_ge_3,
            ],
        );
    }
    println!("\nPaper anchors: OAQ P(Y>=2) = 0.75 at 1e-5 and 0.41 at 1e-4;");
    println!("BAQ P(Y>=2) = 0.33 and 0.04; P(Y>=1) = 1 for both throughout.");
    println!("(eta is unstated for Figure 9; eta = 10 is the only value");
    println!("consistent with those anchors -- see EXPERIMENTS.md.)");
}
