//! Experiment E1 — paper Table 1: QoS levels vs geometric properties.
//!
//! Recomputes, from the implemented model rather than by transcription,
//! which QoS levels are reachable in each geometric regime, and checks the
//! per-capacity regime classification.

use oaq_analytic::geometry::PlaneGeometry;
use oaq_analytic::qos::{conditional_qos, QosParams, Scheme};
use oaq_bench::banner;

fn main() {
    banner("Table 1: QoS levels vs geometric properties (computed)");
    let q = QosParams::paper_defaults(0.2);
    println!("I[k]\tY=3 (simultaneous)\tY=2 (sequential)\tY=1 (single)\tY=0 (missing)");
    for (i_k, k) in [(1u8, 12u32), (0u8, 9u32)] {
        let c = conditional_qos(Scheme::Oaq, &PlaneGeometry::reference(k), &q);
        let mark = |p: f64| if p > 0.0 { "yes" } else { "-" };
        println!(
            "{}\t{}\t\t\t{}\t\t\t{}\t\t{}",
            i_k,
            mark(c.p(3)),
            mark(c.p(2)),
            mark(c.p(1)),
            mark(c.p(0)),
        );
    }

    banner("Per-capacity geometry (theta = 90, Tc = 9)");
    println!("k\tTr[k]\tL1[k]\tL2[k]\tI[k]\tM[k] (tau=5)");
    for k in (9..=14).rev() {
        let g = PlaneGeometry::reference(k);
        println!(
            "{}\t{:.3}\t{:.3}\t{:.3}\t{}\t{}",
            k,
            g.tr(),
            g.l1(),
            g.l2(),
            u8::from(g.is_overlapping()),
            g.sequential_chain_bound(5.0)
                .map_or("-".to_string(), |m| m.to_string()),
        );
    }
    println!("\nPaper: underlapping begins below k = 11; with tau < 9 the");
    println!("sequential chain bound M[k] is 2 (sequential dual coverage).");
}
