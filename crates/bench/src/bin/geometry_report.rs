//! Experiment E8 — the geometric story of Figures 1, 2 and 5: coverage and
//! overlap by latitude from the actual constellation geometry, and the
//! overlap/underlap regime per plane capacity.

use oaq_bench::{banner, tsv_header, tsv_row};
use oaq_orbit::coverage::CoverageAnalysis;
use oaq_orbit::revisit::{classify, coverage_gap, revisit_time, Regime};
use oaq_orbit::units::{Degrees, Minutes};
use oaq_orbit::Constellation;

fn main() {
    banner("Figure 1 geometry: coverage by latitude (98 active satellites)");
    let c = Constellation::reference();
    let an = CoverageAnalysis::new(72, 10);
    tsv_header(&[
        "lat_deg",
        "covered_frac",
        "overlap_frac",
        "mean_multiplicity",
    ]);
    for lat in [0.0, 15.0, 30.0, 45.0, 60.0, 75.0] {
        let band = an.latitude_band(&c, Degrees(lat));
        tsv_row(
            lat,
            &[
                band.covered_fraction,
                band.overlapped_fraction,
                band.mean_multiplicity,
            ],
        );
    }
    println!("\nPaper claim: the overlapped/single ratio is lowest at the");
    println!("equator and rises toward the poles; ~30 deg is moderately high.");

    banner("Figure 1 geometry: degraded constellation (plane 0 at k = 10)");
    let mut d = Constellation::reference();
    for _ in 0..6 {
        d.plane_mut(0).fail_one();
    }
    tsv_header(&[
        "lat_deg",
        "covered_frac",
        "overlap_frac",
        "mean_multiplicity",
    ]);
    for lat in [0.0, 30.0, 60.0] {
        let band = an.latitude_band(&d, Degrees(lat));
        tsv_row(
            lat,
            &[
                band.covered_fraction,
                band.overlapped_fraction,
                band.mean_multiplicity,
            ],
        );
    }

    banner("Figures 2/5: regime per plane capacity (theta=90, Tc=9)");
    println!("k\tTr[k]\tregime\t\tcenter-line gap per period");
    for k in (8..=14).rev() {
        let tr = revisit_time(Minutes(90.0), k);
        let regime = classify(tr, Minutes(9.0));
        println!(
            "{}\t{:.3}\t{}\t{:.3} min",
            k,
            tr.value(),
            match regime {
                Regime::Overlapping => "overlapping",
                Regime::Underlapping => "underlapping",
            },
            coverage_gap(tr, Minutes(9.0)).value(),
        );
    }
}
