//! Experiment E7 — the in-text signal-duration sweep: "the OAQ scheme is
//! able to responsively treat a longer signal duration as the extended
//! opportunity to achieve better geolocation quality".

use oaq_analytic::compose::Scheme;
use oaq_analytic::sweep::{duration_sweep_par, Fanout};
use oaq_bench::args::CliSpec;
use oaq_bench::{banner, tsv_header, tsv_row};

fn main() {
    let cli = CliSpec::new("mu_sweep")
        .option("--workers", "N", "sweep threads (default: all cores)")
        .option(
            "--chunk",
            "N",
            "grid points per work chunk (default: adaptive)",
        )
        .parse();
    let fanout = Fanout {
        workers: cli.get_usize("--workers", 0),
        chunk: cli.get_chunk("--chunk"),
    };
    let durations = [0.5, 1.0, 2.0, 3.0, 5.0, 8.0, 12.0, 20.0];
    let lambda = 5e-5;
    banner("QoS vs mean signal duration 1/mu (lambda=5e-5, tau=5, eta=10)");
    tsv_header(&["mean_dur", "OAQ:y>=2", "OAQ:y=3", "BAQ:y>=2", "BAQ:y=3"]);
    let oaq = duration_sweep_par(Scheme::Oaq, lambda, &durations, fanout).expect("solves");
    let baq = duration_sweep_par(Scheme::Baq, lambda, &durations, fanout).expect("solves");
    for i in 0..durations.len() {
        tsv_row(
            durations[i],
            &[oaq[i].p_ge_2, oaq[i].p_ge_3, baq[i].p_ge_2, baq[i].p_ge_3],
        );
    }
    println!("\nLonger signals widen OAQ's advantage; BAQ's Y=3 is flat (it");
    println!("only exploits simultaneous coverage present at detection).");
}
