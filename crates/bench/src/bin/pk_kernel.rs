//! Experiment E17 — the sparse shared-iterate P(k) kernel vs the dense
//! per-panel baseline, plus the parallel sweep fan-out.
//!
//! Reports JSON on stdout (progress on stderr), written to
//! `BENCH_analytic.json` at the repo root / uploaded by CI:
//!
//! 1. **reference** — the paper's 256-panel `distribution_over` on the
//!    14+2 reference plane: dense per-panel uniformization (one
//!    independent O(n²)-matvec sweep per Simpson node) vs the sparse
//!    kernel (one shared CSR iterate sequence for all 257 nodes). The
//!    bench asserts sparse/dense agreement ≤ 1e-12 and exits non-zero on
//!    violation; the acceptance bar is speedup ≥ 10×.
//! 2. **phi_batch** — a φ-sweep served by `distributions_over` (every
//!    horizon riding one iterate sequence) vs one `distribution_over`
//!    call per φ.
//! 3. **parallel_sweep** — `figure7` over the paper's λ grid, serial vs
//!    the scoped-pool fan-out, with bit-identity of the rows re-checked.
//! 4. **scaling** — a state-count axis: planes scaled up to 10× the
//!    reference (capacity 140 + 20 spares), where the dense path's
//!    O(panels · K · n²) cost grows quadratically while the kernel stays
//!    O(K · nnz) with tridiagonal nnz ≈ 3n.
//!
//! Usage: `pk_kernel [--quick] [--panels N] [--workers N]`

use std::time::Instant;

use oaq_analytic::capacity::CapacityParams;
use oaq_analytic::sweep::{
    effective_sweep_workers, figure7, figure7_par, paper_lambda_grid, Fanout,
};
use oaq_bench::args::CliSpec;
use oaq_engine::report::fmt_f64;
use oaq_san::plane::{CapacitySolve, PlaneModelConfig, SparePolicy};

const LAMBDA: f64 = 5e-5;
const PHI: f64 = 30_000.0;
const ETA: u32 = 10;

/// Wall-clock seconds per call of `f`, averaged over `reps` calls.
fn time_per_call<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(f());
    }
    t0.elapsed().as_secs_f64() / reps as f64
}

fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// A plane scaled to `scale`× the reference complement (η fixed, so the
/// within-cycle death chain grows with the scale).
fn scaled_solve(scale: u32) -> CapacitySolve {
    PlaneModelConfig {
        capacity: 14 * scale,
        spares: 2 * scale,
        lambda: LAMBDA,
        phi: PHI,
        eta: ETA,
        policy: SparePolicy::PinAtThreshold,
    }
    .capacity_solve(10_000)
    .expect("scaled plane explores")
}

struct KernelRow {
    states: usize,
    dense_secs: f64,
    sparse_secs: f64,
    diff: f64,
}

/// Times dense-per-panel vs sparse-shared-iterate `distribution_over` on
/// one solve, asserting agreement.
fn bench_solve(solve: &CapacitySolve, panels: usize, reps: usize) -> KernelRow {
    // Warm both paths once (the sparse side builds its CSR kernel here).
    let sparse = solve.distribution_over(PHI, panels).expect("sparse solves");
    let dense = solve
        .distribution_over_dense(PHI, panels)
        .expect("dense solves");
    let diff = max_abs_diff(&sparse, &dense);
    let dense_secs = time_per_call(reps, || solve.distribution_over_dense(PHI, panels).unwrap());
    let sparse_secs = time_per_call(reps, || solve.distribution_over(PHI, panels).unwrap());
    KernelRow {
        states: solve.num_states(),
        dense_secs,
        sparse_secs,
        diff,
    }
}

fn main() {
    let cli = CliSpec::new("pk_kernel")
        .switch("--quick", "fewer reps and a shorter scaling axis (CI size)")
        .option("--panels", "N", "Simpson panels (default 256)")
        .option("--workers", "N", "sweep threads (default: all cores)")
        .option(
            "--chunk",
            "N",
            "grid points per work chunk (default: adaptive)",
        )
        .parse();
    let quick = cli.has("--quick");
    let panels = cli.get_usize("--panels", 256);
    let workers = cli.get_usize("--workers", 0);
    let fanout = Fanout {
        workers,
        chunk: cli.get_chunk("--chunk"),
    };
    let reps = if quick { 3 } else { 10 };

    // 1. Reference plane: the exact solve `engine::eval` serves.
    let solve = CapacityParams::reference(LAMBDA, PHI, ETA)
        .solve()
        .expect("reference plane solves");
    let reference = bench_solve(&solve, panels, reps);
    eprintln!(
        "# reference ({} states, {panels} panels): dense {:.1} us, sparse {:.1} us, {:.1}x, \
         max|diff| {:.2e}",
        reference.states,
        reference.dense_secs * 1e6,
        reference.sparse_secs * 1e6,
        reference.dense_secs / reference.sparse_secs,
        reference.diff,
    );

    // 2. A φ-sweep batched over one iterate sequence vs per-φ calls.
    let phis: Vec<f64> = (1..=16).map(|i| PHI / 16.0 * f64::from(i)).collect();
    let batched = solve
        .distributions_over(&phis, panels)
        .expect("batch solves");
    let single: Vec<Vec<f64>> = phis
        .iter()
        .map(|&phi| solve.distribution_over(phi, panels).unwrap())
        .collect();
    let batch_identical = batched == single;
    let batch_secs = time_per_call(reps, || solve.distributions_over(&phis, panels).unwrap());
    let per_phi_secs = time_per_call(reps, || {
        phis.iter()
            .map(|&phi| solve.distribution_over(phi, panels).unwrap())
            .collect::<Vec<_>>()
    });
    eprintln!(
        "# phi_batch ({} horizons): per-phi {:.1} us, batched {:.1} us, {:.1}x, identical={}",
        phis.len(),
        per_phi_secs * 1e6,
        batch_secs * 1e6,
        per_phi_secs / batch_secs,
        batch_identical,
    );

    // 3. The sweep layer fan-out on the paper's Figure 7 grid.
    let grid = paper_lambda_grid();
    let serial_rows = figure7(&grid, PHI, ETA).expect("serial sweep");
    let parallel_rows = figure7_par(&grid, PHI, ETA, fanout).expect("parallel sweep");
    let sweep_identical = serial_rows == parallel_rows;
    let sweep_reps = if quick { 1 } else { 3 };
    let serial_secs = time_per_call(sweep_reps, || figure7(&grid, PHI, ETA).unwrap());
    let parallel_secs = time_per_call(sweep_reps, || figure7_par(&grid, PHI, ETA, fanout).unwrap());
    eprintln!(
        "# parallel_sweep ({} rows, {} workers): serial {:.1} ms, parallel {:.1} ms, {:.1}x, \
         identical={}",
        grid.len(),
        effective_sweep_workers(workers),
        serial_secs * 1e3,
        parallel_secs * 1e3,
        serial_secs / parallel_secs,
        sweep_identical,
    );

    // 4. State-count scaling: how far past the paper's plane the dense
    // path stays affordable.
    let scales: &[u32] = if quick { &[1, 2, 4] } else { &[1, 2, 4, 10] };
    let scaling: Vec<(u32, KernelRow)> = scales
        .iter()
        .map(|&scale| {
            let s = scaled_solve(scale);
            let row = bench_solve(&s, panels, if quick { 1 } else { 3 });
            eprintln!(
                "# scaling x{scale} ({} states): dense {:.1} us, sparse {:.1} us, {:.1}x",
                row.states,
                row.dense_secs * 1e6,
                row.sparse_secs * 1e6,
                row.dense_secs / row.sparse_secs,
            );
            (scale, row)
        })
        .collect();

    let scaling_json: Vec<String> = scaling
        .iter()
        .map(|(scale, r)| {
            format!(
                "{{\"scale\": {scale}, \"states\": {}, \"dense_secs\": {}, \"sparse_secs\": {}, \
                 \"speedup\": {}, \"max_abs_diff\": {}}}",
                r.states,
                fmt_f64(r.dense_secs),
                fmt_f64(r.sparse_secs),
                fmt_f64(r.dense_secs / r.sparse_secs),
                fmt_f64(r.diff),
            )
        })
        .collect();
    println!(
        "{{\n  \"experiment\": \"pk_kernel\",\n  \"quick\": {quick},\n  \"panels\": {panels},\n  \
         \"reference\": {{\"states\": {}, \"dense_per_panel_secs\": {}, \
         \"sparse_shared_secs\": {}, \"speedup\": {}, \"max_abs_diff\": {}}},\n  \
         \"phi_batch\": {{\"horizons\": {}, \"per_phi_secs\": {}, \"batched_secs\": {}, \
         \"speedup\": {}, \"bit_identical\": {batch_identical}}},\n  \
         \"parallel_sweep\": {{\"rows\": {}, \"workers\": {}, \"serial_secs\": {}, \
         \"parallel_secs\": {}, \"speedup\": {}, \"bit_identical\": {sweep_identical}}},\n  \
         \"scaling\": [{}]\n}}",
        reference.states,
        fmt_f64(reference.dense_secs),
        fmt_f64(reference.sparse_secs),
        fmt_f64(reference.dense_secs / reference.sparse_secs),
        fmt_f64(reference.diff),
        phis.len(),
        fmt_f64(per_phi_secs),
        fmt_f64(batch_secs),
        fmt_f64(per_phi_secs / batch_secs),
        grid.len(),
        effective_sweep_workers(workers),
        fmt_f64(serial_secs),
        fmt_f64(parallel_secs),
        fmt_f64(serial_secs / parallel_secs),
        scaling_json.join(", "),
    );

    let agreement_violated = reference.diff > 1e-12 || scaling.iter().any(|(_, r)| r.diff > 1e-12);
    if agreement_violated || !batch_identical || !sweep_identical {
        eprintln!("# KERNEL AGREEMENT VIOLATED: sparse/dense or batch/serial answers diverged");
        std::process::exit(1);
    }
}
