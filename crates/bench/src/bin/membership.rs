//! Experiment E12 (extension) — the group-membership service and its
//! payoff for OAQ coordination: detection latency of the real
//! heartbeat/gossip service, and the QoS recovered by membership-assisted
//! recruitment when satellites are fail-silent.

use oaq_bench::{banner, tsv_header, tsv_row};
use oaq_core::config::{MembershipHints, ProtocolConfig, Scheme};
use oaq_core::protocol::Episode;
use oaq_core::qos_level::QosLevel;
use oaq_membership::{MembershipConfig, MembershipSim};

fn main() {
    banner("Membership service: group-wide detection latency (ring planes)");
    tsv_header(&["n", "analytic_bound_min", "measured_min", "messages"]);
    for n in [8usize, 10, 14] {
        let cfg = MembershipConfig::plane(n);
        // Measure: fail a node, step the simulation until all survivors
        // suspect it.
        let mut sim = MembershipSim::new(&cfg, 42);
        sim.fail_node(n / 2, 30.0);
        let mut t = 30.0;
        while !sim.all_alive_suspect(n / 2) && t < 30.0 + 2.0 * cfg.detection_bound() {
            t += 0.25;
            sim.run_until(t);
        }
        tsv_row(
            n as f64,
            &[cfg.detection_bound(), t - 30.0, sim.messages_sent() as f64],
        );
    }

    banner("Membership-assisted recruitment: P(Y>=2 | k=9, sat1 dead), tau=25");
    let mut plain = ProtocolConfig::reference(9, Scheme::Oaq);
    plain.tau = 25.0;
    let mut assisted = plain;
    assisted.membership = Some(MembershipHints::default());
    let episodes = 20_000u64;
    tsv_header(&["variant", "P(Y>=2)", "P(missed)", "mean_msgs"]);
    for (label, cfg) in [("plain", &plain), ("assisted", &assisted)] {
        let mut seq = 0u64;
        let mut missed = 0u64;
        let mut msgs = 0u64;
        for seed in 0..episodes {
            let birth = 90.0 + (seed as f64 * 0.618_033_9) % 10.0;
            let out = Episode::new(cfg, seed)
                .with_failure(1, 0.0)
                .run(birth, 15.0);
            if out.level >= QosLevel::SequentialDual {
                seq += 1;
            }
            if out.level == QosLevel::Missed {
                missed += 1;
            }
            msgs += out.messages_sent;
        }
        println!(
            "{label}\t{:.4}\t{:.4}\t{:.2}",
            seq as f64 / episodes as f64,
            missed as f64 / episodes as f64,
            msgs as f64 / episodes as f64
        );
    }
    println!("\nThe assisted protocol recruits the nearest *live* peer over a");
    println!("crosslink chord instead of burning its deadline budget on the");
    println!("fail-silent one — QoS recovered without any ground intervention,");
    println!("the paper's concluding-remarks direction made concrete.");
}
