//! Experiment E12 (extension) — the group-membership service and its
//! payoff for OAQ coordination: detection latency of the real
//! heartbeat/gossip service, and the QoS recovered by membership-assisted
//! recruitment when satellites are fail-silent.

use oaq_bench::args::CliSpec;
use oaq_bench::{banner, tsv_header, tsv_row};
use oaq_core::config::{MembershipHints, ProtocolConfig, Scheme};
use oaq_core::protocol::Episode;
use oaq_core::qos_level::QosLevel;
use oaq_membership::{MembershipConfig, MembershipSim};
use oaq_sim::par::{Merge, Replicator};
use oaq_sim::rng::substream_seed;

/// Per-chunk recruitment tallies (all-integer, so the reduction is exact).
#[derive(Debug, Clone, Copy, Default)]
struct RecruitSink {
    seq: u64,
    missed: u64,
    msgs: u64,
}

impl Merge for RecruitSink {
    fn merge(&mut self, other: &Self) {
        self.seq.merge(&other.seq);
        self.missed.merge(&other.missed);
        self.msgs.merge(&other.msgs);
    }
}

fn main() {
    let cli = CliSpec::new("membership")
        .option(
            "--episodes",
            "N",
            "recruitment episodes per variant (default 20000)",
        )
        .option(
            "--workers",
            "N",
            "worker threads, 0 = all cores (default 0)",
        )
        .option(
            "--chunk",
            "N",
            "episodes per work chunk (default: adaptive)",
        )
        .parse();
    let episodes = cli.get_u64("--episodes", 20_000);
    let workers = cli.get_usize("--workers", 0);
    let chunk = cli.get_chunk("--chunk");

    banner("Membership service: group-wide detection latency (ring planes)");
    tsv_header(&["n", "analytic_bound_min", "measured_min", "messages"]);
    for n in [8usize, 10, 14] {
        let cfg = MembershipConfig::plane(n);
        // Measure: fail a node, step the simulation until all survivors
        // suspect it.
        let mut sim = MembershipSim::new(&cfg, 42);
        sim.fail_node(n / 2, 30.0);
        let mut t = 30.0;
        while !sim.all_alive_suspect(n / 2) && t < 30.0 + 2.0 * cfg.detection_bound() {
            t += 0.25;
            sim.run_until(t);
        }
        tsv_row(
            n as f64,
            &[cfg.detection_bound(), t - 30.0, sim.messages_sent() as f64],
        );
    }

    banner("Membership-assisted recruitment: P(Y>=2 | k=9, sat1 dead), tau=25");
    let mut plain = ProtocolConfig::reference(9, Scheme::Oaq);
    plain.tau = 25.0;
    let mut assisted = plain;
    assisted.membership = Some(MembershipHints::default());
    let base_seed = 42u64;
    tsv_header(&["variant", "P(Y>=2)", "P(missed)", "mean_msgs"]);
    for (label, cfg) in [("plain", &plain), ("assisted", &assisted)] {
        // Episode i draws its birth from substream (base_seed, i) and seeds
        // its protocol run from the same substream value (offset by one),
        // so every worker count tallies the identical counts.
        let sink = Replicator::new(workers).with_chunk_override(chunk).run(
            episodes,
            base_seed,
            RecruitSink::default,
            |i, rng, sink| {
                let birth = 90.0 + rng.uniform(0.0, 10.0);
                let seed = substream_seed(base_seed, i).wrapping_add(1);
                let out = Episode::new(cfg, seed)
                    .with_failure(1, 0.0)
                    .run(birth, 15.0);
                if out.level >= QosLevel::SequentialDual {
                    sink.seq += 1;
                }
                if out.level == QosLevel::Missed {
                    sink.missed += 1;
                }
                sink.msgs += out.messages_sent;
            },
        );
        println!(
            "{label}\t{:.4}\t{:.4}\t{:.2}",
            sink.seq as f64 / episodes as f64,
            sink.missed as f64 / episodes as f64,
            sink.msgs as f64 / episodes as f64
        );
    }
    println!("\nThe assisted protocol recruits the nearest *live* peer over a");
    println!("crosslink chord instead of burning its deadline budget on the");
    println!("fail-silent one — QoS recovered without any ground intervention,");
    println!("the paper's concluding-remarks direction made concrete.");
}
