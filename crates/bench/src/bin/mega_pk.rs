//! Experiment E23 — mega-constellation `P(k)` at scale: the
//! steady-state-detecting uniformization kernel, the per-plane
//! product-form decomposition, and QoS-vs-design curves over the Walker
//! presets.
//!
//! Reports JSON on stdout (progress on stderr), written to
//! `BENCH_mega.json` at the repo root / uploaded by CI:
//!
//! 1. **scaling** — per-solve `distribution_over` time on planes scaled
//!    up to 64× the reference complement (≥ 1000 within-cycle states),
//!    showing the sparse kernel stays affordable where the paper's
//!    16-state chain was.
//! 2. **steady_state** — `time_average_many` (adaptive steady-state
//!    detection) vs `time_average_many_full` (the PR 3 full-iteration
//!    kernel) on the 1015-state plane across a φ axis. The bench asserts
//!    agreement ≤ 1e-12 at the paper's φ = 30000 (≤ 5e-12 on longer
//!    horizons, where the *reference* path's own summation rounding grows
//!    like Λ·φ·ε past 1e-12) and speedup ≥ 2× at the longest φ, exiting
//!    non-zero on violation.
//! 3. **product_vs_joint** — the per-plane product-form assembly of the
//!    constellation capacity distribution vs the exact joint chain (2 and
//!    3 planes, 49 / 343 states) under the same quadrature, asserted to
//!    ≤ 1e-12.
//! 4. **qos_designs** — `P(Y ≥ 2)` under OAQ / BAQ over the λ grid for
//!    all four Walker presets (each preset's θ, Tc, plane capacity and
//!    spares routed through the typed `CapacityParams::new` /
//!    `EvaluationConfig::for_design` constructors), plus each preset's
//!    constellation-level capacity distribution by product form.
//!
//! Usage: `mega_pk [--quick] [--panels N]`

use std::time::Instant;

use oaq_analytic::capacity::CapacityParams;
use oaq_analytic::compose::{EvaluationConfig, Scheme};
use oaq_analytic::qos::QosParams;
use oaq_analytic::sweep::paper_lambda_grid;
use oaq_bench::args::CliSpec;
use oaq_engine::report::fmt_f64;
use oaq_orbit::constellation::Preset;
use oaq_orbit::coverage::design_geometry;
use oaq_san::plane::{product_form_pk, CapacitySolve, PlaneModelConfig, SparePolicy};

const LAMBDA: f64 = 5e-5;
const PHI: f64 = 30_000.0;
const ETA: u32 = 10;

/// Agreement bar for steady-state detection at the paper's φ.
const DETECT_TOL_PAPER: f64 = 1e-12;
/// Relaxed bar on long horizons: past Λ·φ ≈ 1e4 the full-iteration
/// reference accumulates ~Λ·φ·ε of its own summation rounding, so the
/// diff there measures reference noise, not detection error.
const DETECT_TOL_LONG: f64 = 5e-12;
/// Required detection speedup on the longest horizon.
const DETECT_SPEEDUP_BAR: f64 = 2.0;
/// Product-form vs joint-chain agreement bar.
const PRODUCT_TOL: f64 = 1e-12;

/// Wall-clock seconds per call of `f`, averaged over `reps` calls.
fn time_per_call<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(f());
    }
    t0.elapsed().as_secs_f64() / reps as f64
}

fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// A plane scaled to `scale`× the reference complement (η fixed, so the
/// within-cycle death chain grows with the scale).
fn scaled_solve(scale: u32) -> CapacitySolve {
    PlaneModelConfig {
        capacity: 14 * scale,
        spares: 2 * scale,
        lambda: LAMBDA,
        phi: PHI,
        eta: ETA,
        policy: SparePolicy::PinAtThreshold,
    }
    .capacity_solve(100_000)
    .expect("scaled plane explores")
}

/// The paper's capacity model transplanted onto a preset plane: the
/// threshold sits the reference's `capacity − η = 4` below the complement.
fn preset_eta(capacity: u32) -> u32 {
    capacity - 4
}

fn main() {
    let cli = CliSpec::new("mega_pk")
        .switch("--quick", "fewer reps and a shorter lambda grid (CI size)")
        .option("--panels", "N", "Simpson panels (default 64)")
        .parse();
    let quick = cli.has("--quick");
    let panels = cli.get_usize("--panels", 64);
    let reps = if quick { 1 } else { 3 };
    let mut violations: Vec<String> = Vec::new();

    // 1. Scaling: per-solve P(k) cost up to a ≥ 1000-state plane.
    let scales: &[u32] = if quick {
        &[8, 32, 64]
    } else {
        &[8, 16, 32, 64, 96]
    };
    let scaling_json: Vec<String> = scales
        .iter()
        .map(|&scale| {
            let solve = scaled_solve(scale);
            solve
                .distribution_over(PHI, panels)
                .expect("scaled plane solves"); // warm the CSR kernel
            let secs = time_per_call(reps, || solve.distribution_over(PHI, panels).unwrap());
            eprintln!(
                "# scaling x{scale} ({} states): {:.2} ms per solve",
                solve.num_states(),
                secs * 1e3,
            );
            format!(
                "{{\"scale\": {scale}, \"states\": {}, \"solve_secs\": {}}}",
                solve.num_states(),
                fmt_f64(secs),
            )
        })
        .collect();

    // 2. Steady-state detection vs the full-iteration kernel on the
    // 1015-state plane over a φ axis reaching 10× the paper's horizon.
    let big = scaled_solve(64);
    let kernel = big.ctmc().kernel().expect("kernel builds");
    let p0 = big.ctmc().initial_distribution();
    let phis = [PHI, 100_000.0, 300_000.0];
    let longest = phis[phis.len() - 1];
    let steady_json: Vec<String> = phis
        .iter()
        .map(|&phi| {
            let detected = kernel.time_average_many(&p0, &[phi], panels).unwrap();
            let full = kernel.time_average_many_full(&p0, &[phi], panels).unwrap();
            let diff = max_abs_diff(&detected[0], &full[0]);
            let detect_secs = time_per_call(reps, || {
                kernel.time_average_many(&p0, &[phi], panels).unwrap()
            });
            let full_secs = time_per_call(reps, || {
                kernel.time_average_many_full(&p0, &[phi], panels).unwrap()
            });
            let speedup = full_secs / detect_secs;
            eprintln!(
                "# steady_state phi={phi}: full {:.2} ms, detected {:.2} ms, {:.2}x, \
                 max|diff| {:.2e}",
                full_secs * 1e3,
                detect_secs * 1e3,
                speedup,
                diff,
            );
            let tol = if phi <= PHI {
                DETECT_TOL_PAPER
            } else {
                DETECT_TOL_LONG
            };
            if diff > tol {
                violations.push(format!(
                    "steady-state detection diverged at phi={phi}: {diff:e} > {tol:e}"
                ));
            }
            if phi == longest && speedup < DETECT_SPEEDUP_BAR {
                violations.push(format!(
                    "steady-state speedup {speedup:.2}x below {DETECT_SPEEDUP_BAR}x at phi={phi}"
                ));
            }
            format!(
                "{{\"phi\": {}, \"full_secs\": {}, \"detected_secs\": {}, \"speedup\": {}, \
                 \"max_abs_diff\": {}, \"tolerance\": {}}}",
                fmt_f64(phi),
                fmt_f64(full_secs),
                fmt_f64(detect_secs),
                fmt_f64(speedup),
                fmt_f64(diff),
                fmt_f64(tol),
            )
        })
        .collect();

    // 3. Product form vs the exact joint chain at paper scale.
    let cfg = PlaneModelConfig {
        capacity: 14,
        spares: 2,
        lambda: LAMBDA,
        phi: PHI,
        eta: ETA,
        policy: SparePolicy::PinAtThreshold,
    };
    let plane = cfg.capacity_solve(10_000).expect("reference plane solves");
    let product_json: Vec<String> = [2usize, 3]
        .iter()
        .map(|&q| {
            let joint = cfg
                .joint_capacity_solve(q, 100_000)
                .expect("joint chain explores");
            let refs: Vec<&CapacitySolve> = vec![&plane; q];
            let product = product_form_pk(&refs, PHI, panels).unwrap();
            let exact = product_form_pk(&[&joint], PHI, panels).unwrap();
            let diff = max_abs_diff(&product, &exact);
            let product_secs = time_per_call(reps, || product_form_pk(&refs, PHI, panels).unwrap());
            let joint_secs =
                time_per_call(reps, || product_form_pk(&[&joint], PHI, panels).unwrap());
            eprintln!(
                "# product_vs_joint q={q} ({} joint states): joint {:.2} ms, product {:.2} ms, \
                 max|diff| {:.2e}",
                joint.num_states(),
                joint_secs * 1e3,
                product_secs * 1e3,
                diff,
            );
            if diff > PRODUCT_TOL {
                violations.push(format!(
                    "product form diverged from joint chain at q={q}: {diff:e} > {PRODUCT_TOL:e}"
                ));
            }
            format!(
                "{{\"planes\": {q}, \"joint_states\": {}, \"joint_secs\": {}, \
                 \"product_secs\": {}, \"max_abs_diff\": {}}}",
                joint.num_states(),
                fmt_f64(joint_secs),
                fmt_f64(product_secs),
                fmt_f64(diff),
            )
        })
        .collect();

    // 4. QoS-vs-design curves over the Walker presets (E23).
    let grid: Vec<f64> = if quick {
        vec![1e-5, 5e-5, 1e-4]
    } else {
        paper_lambda_grid()
    };
    let design_json: Vec<String> = Preset::all()
        .iter()
        .map(|&preset| {
            let wc = preset.config();
            let c = preset.build();
            let geom = &design_geometry(&c)[0];
            let capacity = wc.satellites_per_plane as u32;
            let eta = preset_eta(capacity);
            let curve: Vec<String> = grid
                .iter()
                .map(|&lambda| {
                    let params =
                        CapacityParams::new(capacity, wc.spares_per_plane as u32, lambda, PHI, eta)
                            .expect("preset capacity params validate");
                    let eval = EvaluationConfig::for_design(
                        wc.period.value(),
                        wc.coverage_time.value(),
                        QosParams::paper_defaults(0.2),
                        params,
                    )
                    .expect("preset design is inside the geometric domain");
                    let oaq = eval.qos_ccdf(Scheme::Oaq).unwrap().p_at_least(2);
                    let baq = eval.qos_ccdf(Scheme::Baq).unwrap().p_at_least(2);
                    format!(
                        "{{\"lambda\": {}, \"oaq_p_ge_2\": {}, \"baq_p_ge_2\": {}}}",
                        fmt_f64(lambda),
                        fmt_f64(oaq),
                        fmt_f64(baq),
                    )
                })
                .collect();
            // Constellation-level capacity distribution by product form
            // over all homogeneous planes of the preset.
            let plane_solve = PlaneModelConfig {
                capacity,
                spares: wc.spares_per_plane as u32,
                lambda: LAMBDA,
                phi: PHI,
                eta,
                policy: SparePolicy::PinAtThreshold,
            }
            .capacity_solve(10_000)
            .expect("preset plane solves");
            let refs: Vec<&CapacitySolve> = vec![&plane_solve; wc.planes];
            let t0 = Instant::now();
            let pk = product_form_pk(&refs, PHI, panels).expect("product form assembles");
            let pk_secs = t0.elapsed().as_secs_f64();
            let mean: f64 = pk.iter().enumerate().map(|(k, &p)| k as f64 * p).sum();
            eprintln!(
                "# qos_designs {} ({} planes x {}): mean capacity {:.2}/{}, product form {:.2} ms",
                preset.name(),
                wc.planes,
                capacity,
                mean,
                wc.planes * wc.satellites_per_plane,
                pk_secs * 1e3,
            );
            format!(
                "{{\"preset\": \"{}\", \"planes\": {}, \"satellites_per_plane\": {capacity}, \
                 \"theta\": {}, \"tc\": {}, \"eta\": {eta}, \"overlap_fraction\": {}, \
                 \"mean_total_capacity\": {}, \"design_total\": {}, \
                 \"product_form_secs\": {}, \"curve\": [{}]}}",
                preset.name(),
                wc.planes,
                fmt_f64(wc.period.value()),
                fmt_f64(wc.coverage_time.value()),
                fmt_f64(geom.overlap_fraction),
                fmt_f64(mean),
                wc.planes * wc.satellites_per_plane,
                fmt_f64(pk_secs),
                curve.join(", "),
            )
        })
        .collect();

    println!(
        "{{\n  \"experiment\": \"mega_pk\",\n  \"quick\": {quick},\n  \"panels\": {panels},\n  \
         \"scaling\": [{}],\n  \
         \"steady_state\": {{\"states\": {}, \"rows\": [{}]}},\n  \
         \"product_vs_joint\": [{}],\n  \
         \"qos_designs\": [{}]\n}}",
        scaling_json.join(", "),
        big.num_states(),
        steady_json.join(", "),
        product_json.join(", "),
        design_json.join(", "),
    );

    if !violations.is_empty() {
        for v in &violations {
            eprintln!("# ACCEPTANCE VIOLATED: {v}");
        }
        std::process::exit(1);
    }
}
