//! Experiment E3 — paper Figure 8: P(Y = 3) as a function of λ for OAQ vs
//! BAQ at µ ∈ {0.2, 0.5} (τ = 5, ν = 30, η = 12, φ = 30000 h).

use oaq_analytic::compose::Scheme;
use oaq_analytic::sweep::{figure8_par, paper_lambda_grid, Fanout};
use oaq_bench::args::CliSpec;
use oaq_bench::{banner, tsv_header, tsv_row};

fn main() {
    let cli = CliSpec::new("fig8")
        .option("--workers", "N", "sweep threads (default: all cores)")
        .option(
            "--chunk",
            "N",
            "grid points per work chunk (default: adaptive)",
        )
        .parse();
    let fanout = Fanout {
        workers: cli.get_usize("--workers", 0),
        chunk: cli.get_chunk("--chunk"),
    };
    let grid = paper_lambda_grid();
    banner("Figure 8: P(Y=3) vs lambda (tau=5, eta=12, phi=30000h)");
    tsv_header(&[
        "lambda",
        "OAQ(mu=0.2)",
        "OAQ(mu=0.5)",
        "BAQ(mu=0.2)",
        "BAQ(mu=0.5)",
    ]);
    let oaq02 = figure8_par(Scheme::Oaq, 0.2, &grid, fanout).expect("solves");
    let oaq05 = figure8_par(Scheme::Oaq, 0.5, &grid, fanout).expect("solves");
    let baq02 = figure8_par(Scheme::Baq, 0.2, &grid, fanout).expect("solves");
    let baq05 = figure8_par(Scheme::Baq, 0.5, &grid, fanout).expect("solves");
    let mut max_gain: f64 = 0.0;
    for i in 0..grid.len() {
        tsv_row(
            grid[i],
            &[
                oaq02[i].p_ge_3,
                oaq05[i].p_ge_3,
                baq02[i].p_ge_3,
                baq05[i].p_ge_3,
            ],
        );
        max_gain = max_gain.max(oaq02[i].p_ge_3 / oaq05[i].p_ge_3 - 1.0);
    }
    println!(
        "\nOAQ gain from mu 0.5 -> 0.2: up to {:.0}% (paper reports up to 38%).",
        max_gain * 100.0
    );
    println!("BAQ columns are identical across mu: the baseline cannot exploit");
    println!("longer signals (paper's Figure 8 discussion).");
}
