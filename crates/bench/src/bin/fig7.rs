//! Experiment E2 — paper Figure 7: steady-state plane-capacity
//! distribution P(K = k) as a function of the node-failure rate λ
//! (η = 10, φ = 30000 h).
//!
//! Both solution paths are printed: the exact regeneration-cycle integral
//! and the SAN long-run simulation with the true deterministic clock.

use oaq_analytic::sweep::{figure7_par, paper_lambda_grid, Fanout};
use oaq_bench::args::CliSpec;
use oaq_bench::{banner, tsv_header, tsv_row};
use oaq_san::plane::PlaneModelConfig;
use oaq_san::sim::SteadyStateOptions;

fn main() {
    let cli = CliSpec::new("fig7")
        .switch("--quick", "shorten the SAN simulation horizon for CI")
        .option("--seed", "N", "simulation RNG seed (default 7)")
        .option("--workers", "N", "sweep threads (default: all cores)")
        .option(
            "--chunk",
            "N",
            "grid points per work chunk (default: adaptive)",
        )
        .parse();
    let quick = cli.has("--quick");
    let seed = cli.get_u64("--seed", 7);
    let fanout = Fanout {
        workers: cli.get_usize("--workers", 0),
        chunk: cli.get_chunk("--chunk"),
    };
    let (warmup, horizon) = if quick {
        (30_000.0, 900_000.0)
    } else {
        (150_000.0, 9_000_000.0)
    };
    let grid = paper_lambda_grid();

    banner("Figure 7 (exact): P(K=k) vs lambda, eta=10, phi=30000h");
    tsv_header(&[
        "lambda", "P(9)", "P(10)", "P(11)", "P(12)", "P(13)", "P(14)",
    ]);
    for row in figure7_par(&grid, 30_000.0, 10, fanout).expect("capacity model solves") {
        tsv_row(row.lambda, &row.p_k[9..=14]);
    }

    banner("Figure 7 (SAN simulation, deterministic clock): same rows");
    tsv_header(&[
        "lambda", "P(9)", "P(10)", "P(11)", "P(12)", "P(13)", "P(14)",
    ]);
    for &lambda in &grid {
        let dist = PlaneModelConfig::reference(lambda, 30_000.0, 10)
            .build_sim()
            .capacity_distribution_sim(&SteadyStateOptions {
                warmup,
                horizon,
                seed,
            });
        tsv_row(lambda, &dist[9..=14]);
    }

    println!("\nShape check (paper): P(14) dominates at lambda = 1e-5; P(10)");
    println!("rapidly increases and dominates as lambda approaches 1e-4.");
}
