//! Experiment E18 — the deterministic parallel Monte Carlo replication
//! engine: serial vs multi-worker fan-out, with bit-identity asserted.
//!
//! Reports JSON on stdout (progress on stderr), written to
//! `BENCH_sim.json` at the repo root / uploaded by CI:
//!
//! 1. **campaign_cell** — one fault-injection cell (E15's reference mix).
//!    The legacy always-traced serial loop vs the untraced fast path
//!    (tracing only replayed for violations), then the fast path fanned
//!    across 1/2/4/8 workers. Every worker count must reproduce the
//!    serial cell bit-for-bit — counts, violation list, trace strings —
//!    and the bench exits non-zero if any diverges.
//! 2. **qos_estimate** — E9's conditional-QoS estimator through the same
//!    engine; the `QosEstimate` must be exactly equal (`==` on every
//!    float) across worker counts.
//! 3. **grid** — the two-level cells × episodes fan-out vs per-cell runs.
//!
//! Parallel *speedup* here is honest wall-clock on whatever hardware runs
//! the bench (the `cores` field says how many cores that was); on a
//! single-core container the curve is flat and only the determinism
//! contract is asserted. The fast-path speedup is algorithmic and shows
//! up on any hardware.
//!
//! Usage: `mc_replication [--quick] [--seed N] [--episodes N] [--chunk N]`

use std::time::Instant;

use oaq_bench::args::CliSpec;
use oaq_bench::campaign::{
    run_cell_fanout, run_cell_traced_baseline, run_grid_fanout, CellOutcome, CellSpec, LossAxis,
};
use oaq_core::config::{ProtocolConfig, Scheme};
use oaq_core::experiment::{estimate_conditional_qos_fanout, MonteCarloOptions};
use oaq_engine::report::fmt_f64;
use oaq_sim::par::Replicator;

/// Wall-clock seconds per call of `f`, averaged over `reps` calls.
fn time_per_call<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(f());
    }
    t0.elapsed().as_secs_f64() / reps as f64
}

/// Full bit-identity of two cell outcomes: every tally, every violation
/// record, every trace line.
fn cells_identical(a: &CellOutcome, b: &CellOutcome) -> bool {
    a.episodes == b.episodes
        && a.detected == b.detected
        && a.timely == b.timely
        && a.quality == b.quality
        && a.live_detector == b.live_detector
        && a.live_detector_timely == b.live_detector_timely
        && a.violations.len() == b.violations.len()
        && a.violations.iter().zip(&b.violations).all(|(x, y)| {
            x.episode == y.episode
                && x.seed == y.seed
                && x.detector == y.detector
                && x.outcome == y.outcome
                && x.trace == y.trace
        })
}

fn main() {
    let cli = CliSpec::new("mc_replication")
        .switch("--quick", "fewer episodes and reps (CI size)")
        .option("--seed", "N", "base RNG seed (default 1515)")
        .option("--episodes", "N", "episodes in the campaign cell")
        .option(
            "--chunk",
            "N",
            "episodes per work chunk (default: adaptive)",
        )
        .parse();
    let quick = cli.has("--quick");
    let seed = cli.get_u64("--seed", 1515);
    let episodes = cli.get_u64("--episodes", if quick { 300 } else { 2000 });
    let chunk = cli.get_chunk("--chunk");
    let resolved_chunk = Replicator::new(1)
        .with_chunk_override(chunk)
        .resolved_chunk(episodes);
    let reps = if quick { 1 } else { 3 };
    let cores = std::thread::available_parallelism().map_or(1, usize::from);

    let mut divergence = false;

    // 1. Campaign cell: traced baseline vs untraced fast path vs workers.
    let spec = CellSpec {
        loss: LossAxis::Iid { p: 0.2 },
        node_failure_rate: 0.25,
        retry_budget: 1,
    };
    let reference = run_cell_fanout(&spec, episodes, seed, 1, chunk);
    let baseline = run_cell_traced_baseline(&spec, episodes, seed);
    if !cells_identical(&reference, &baseline) {
        eprintln!("# DIVERGENCE: fast path disagrees with the traced baseline");
        divergence = true;
    }
    let traced_secs = time_per_call(reps, || run_cell_traced_baseline(&spec, episodes, seed));
    let fastpath_secs = time_per_call(reps, || run_cell_fanout(&spec, episodes, seed, 1, chunk));
    eprintln!(
        "# campaign_cell ({episodes} episodes): traced {:.1} ms, fastpath {:.1} ms, {:.2}x",
        traced_secs * 1e3,
        fastpath_secs * 1e3,
        traced_secs / fastpath_secs,
    );

    let worker_counts: &[usize] = &[1, 2, 4, 8];
    let curve: Vec<(usize, f64, bool)> = worker_counts
        .iter()
        .map(|&w| {
            let out = run_cell_fanout(&spec, episodes, seed, w, chunk);
            let identical = cells_identical(&out, &reference);
            if !identical {
                eprintln!("# DIVERGENCE: {w} workers disagree with the serial cell");
            }
            let secs = time_per_call(reps, || run_cell_fanout(&spec, episodes, seed, w, chunk));
            eprintln!(
                "#   {w} workers: {:.1} ms, {:.2}x vs serial, identical={identical}",
                secs * 1e3,
                fastpath_secs / secs,
            );
            (w, secs, identical)
        })
        .collect();
    divergence |= curve.iter().any(|&(_, _, ok)| !ok);

    // 2. The conditional-QoS estimator across worker counts.
    let cfg = ProtocolConfig::reference(9, Scheme::Oaq);
    let opts = MonteCarloOptions {
        episodes: usize::try_from(episodes).expect("episode count fits usize"),
        mu: 0.5,
        seed,
    };
    let qos_serial = estimate_conditional_qos_fanout(&cfg, &opts, 1, chunk);
    let qos_serial_secs = time_per_call(reps, || {
        estimate_conditional_qos_fanout(&cfg, &opts, 1, chunk)
    });
    let qos_curve: Vec<(usize, f64, bool)> = [2usize, 4]
        .iter()
        .map(|&w| {
            let est = estimate_conditional_qos_fanout(&cfg, &opts, w, chunk);
            let identical = est == qos_serial;
            if !identical {
                eprintln!("# DIVERGENCE: QoS estimate with {w} workers differs from serial");
            }
            let secs = time_per_call(reps, || {
                estimate_conditional_qos_fanout(&cfg, &opts, w, chunk)
            });
            (w, secs, identical)
        })
        .collect();
    divergence |= qos_curve.iter().any(|&(_, _, ok)| !ok);
    eprintln!(
        "# qos_estimate ({episodes} episodes): serial {:.1} ms, identical across workers={}",
        qos_serial_secs * 1e3,
        qos_curve.iter().all(|&(_, _, ok)| ok),
    );

    // 3. The two-level grid fan-out vs per-cell runs.
    let grid_specs = [
        CellSpec {
            loss: LossAxis::Iid { p: 0.0 },
            node_failure_rate: 0.0,
            retry_budget: 0,
        },
        spec,
        CellSpec {
            loss: LossAxis::Bursty {
                marginal: 0.2,
                burst_len: 5.0,
            },
            node_failure_rate: 0.1,
            retry_budget: 3,
        },
    ];
    let grid_episodes = episodes / 2;
    let grid = run_grid_fanout(&grid_specs, grid_episodes, seed, 2, chunk);
    let grid_identical = grid
        .iter()
        .zip(&grid_specs)
        .all(|(cell, s)| cells_identical(cell, &run_cell_fanout(s, grid_episodes, seed, 1, chunk)));
    if !grid_identical {
        eprintln!("# DIVERGENCE: grid fan-out disagrees with per-cell runs");
        divergence = true;
    }
    let grid_secs = time_per_call(reps, || {
        run_grid_fanout(&grid_specs, grid_episodes, seed, 2, chunk)
    });
    eprintln!(
        "# grid ({} cells x {grid_episodes} episodes, 2 workers): {:.1} ms, identical={grid_identical}",
        grid_specs.len(),
        grid_secs * 1e3,
    );

    let curve_json: Vec<String> = curve
        .iter()
        .map(|&(w, secs, ok)| {
            format!(
                "{{\"workers\": {w}, \"secs\": {}, \"speedup\": {}, \"bit_identical\": {ok}}}",
                fmt_f64(secs),
                fmt_f64(fastpath_secs / secs),
            )
        })
        .collect();
    let qos_json: Vec<String> = qos_curve
        .iter()
        .map(|&(w, secs, ok)| {
            format!(
                "{{\"workers\": {w}, \"secs\": {}, \"speedup\": {}, \"bit_identical\": {ok}}}",
                fmt_f64(secs),
                fmt_f64(qos_serial_secs / secs),
            )
        })
        .collect();
    println!(
        "{{\n  \"experiment\": \"mc_replication\",\n  \"quick\": {quick},\n  \
         \"cores\": {cores},\n  \"chunk\": {resolved_chunk},\n  \"seed\": {seed},\n  \
         \"campaign_cell\": {{\"episodes\": {episodes}, \"traced_baseline_secs\": {}, \
         \"fastpath_secs\": {}, \"fastpath_speedup\": {}, \"workers\": [{}]}},\n  \
         \"qos_estimate\": {{\"episodes\": {episodes}, \"serial_secs\": {}, \
         \"workers\": [{}]}},\n  \
         \"grid\": {{\"cells\": {}, \"episodes_per_cell\": {grid_episodes}, \
         \"secs\": {}, \"bit_identical\": {grid_identical}}}\n}}",
        fmt_f64(traced_secs),
        fmt_f64(fastpath_secs),
        fmt_f64(traced_secs / fastpath_secs),
        curve_json.join(", "),
        fmt_f64(qos_serial_secs),
        qos_json.join(", "),
        grid_specs.len(),
        fmt_f64(grid_secs),
    );

    if divergence {
        eprintln!("# REPLICATION DETERMINISM VIOLATED: parallel answers diverged from serial");
        std::process::exit(1);
    }
}
