//! Experiment E21 — the networked serving frontend under load.
//!
//! Everything here goes over the wire: a real `oaq-serve` TCP server, a
//! real protocol client, answers compared bit-for-bit against a
//! sequential `direct_eval` baseline. Three phases, JSON on stdout
//! (progress on stderr):
//!
//! 1. **worker×shard matrix** — fresh servers pinned to each (workers,
//!    cache shards) cell replay the seeded Zipf workload cold (one
//!    connection) and warm (several concurrent connections), recording
//!    throughput and the per-shard `try_lock`-failure counters that
//!    demonstrate the lock split even on a single-core box;
//! 2. **open loop** — a paced, coordinated-omission-free load phase:
//!    requests are sent on a fixed schedule and each latency is measured
//!    from the request's *scheduled* send instant, so server stalls
//!    surface as tail latency instead of silently slowing the generator;
//! 3. **snapshot warm-start** — one server life solves the working set
//!    and persists its caches on graceful shutdown; the next life reloads
//!    the snapshot and must replay the same workload with *zero* `P(k)`
//!    solves; a deliberately corrupted snapshot must be rejected typed.
//!
//! Any answer diverging from `direct_eval` exits non-zero.
//!
//! Usage: `serve_bench [--quick] [--seed N] [--queries N] [--rate QPS]`

use std::io::BufReader;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use oaq_bench::args::CliSpec;
use oaq_bench::serve_report::{
    MatrixCell, OpenLoopReport, ProbeCell, Rate, ServeReport, WarmStartReport,
};
use oaq_engine::{
    direct_eval, shard_of, zipf_workload, Engine, EngineConfig, QosQuery, QosValue, WorkloadConfig,
};
use oaq_serve::client::{Client, Reply};
use oaq_serve::proto::{decode_frame, encode_request, read_frame, write_frame, Frame, Request};
use oaq_serve::report::parse;
use oaq_serve::server::{serve, ServerConfig, ServerHandle, WarmStart};

/// How many requests a closed-loop replay keeps on the wire at once —
/// deep enough to keep the server busy, shallow enough that neither
/// side's socket buffer fills with unread replies.
const WINDOW: usize = 64;

/// Replays `queries` over one connection, `WINDOW`-deep pipelined,
/// checking every reply bit-for-bit. Returns (seconds, all-identical).
fn replay(addr: SocketAddr, queries: &[QosQuery], expected: &[QosValue]) -> (f64, bool) {
    let mut client = Client::connect(addr).expect("connect");
    let mut identical = true;
    let t0 = Instant::now();
    let mut sent = 0usize;
    let mut received = 0usize;
    while received < queries.len() {
        while sent < queries.len() && sent - received < WINDOW {
            client
                .send_buffered(&Request::from_query(sent as u64, &queries[sent]))
                .expect("send");
            sent += 1;
        }
        client.flush().expect("flush");
        match client.recv().expect("recv") {
            Reply::Value { req_id, value } => {
                if req_id != received as u64 || value != expected[received] {
                    identical = false;
                }
            }
            Reply::Error { .. } => identical = false,
        }
        received += 1;
    }
    (t0.elapsed().as_secs_f64(), identical)
}

/// One (workers, shards) cell: cold replay on one connection, then a
/// concurrent warm phase, with the cell's cache counters read off the
/// engine afterwards.
fn matrix_cell(
    workers: usize,
    shards: usize,
    queries: &Arc<Vec<QosQuery>>,
    expected: &Arc<Vec<QosValue>>,
    warm_clients: usize,
) -> MatrixCell {
    let handle = serve(&ServerConfig {
        engine: EngineConfig {
            workers,
            cache_shards: shards,
            ..EngineConfig::default()
        },
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = handle.local_addr();

    let (cold_secs, cold_ok) = replay(addr, queries, expected);

    let t0 = Instant::now();
    let threads: Vec<_> = (0..warm_clients)
        .map(|_| {
            let queries = Arc::clone(queries);
            let expected = Arc::clone(expected);
            std::thread::spawn(move || replay(addr, &queries, &expected).1)
        })
        .collect();
    let warm_ok = threads
        .into_iter()
        .all(|t| t.join().expect("warm client panicked"));
    let warm_secs = t0.elapsed().as_secs_f64();

    let stats = handle.engine().cache_stats();
    let cell = MatrixCell {
        workers,
        shards,
        cold: Rate {
            queries: queries.len(),
            secs: cold_secs,
        },
        warm_clients,
        warm: Rate {
            queries: queries.len() * warm_clients,
            secs: warm_secs,
        },
        result_contended: stats.result.iter().map(|s| s.contended).sum(),
        pk_contended: stats.pk.iter().map(|s| s.contended).sum(),
        bit_identical: cold_ok && warm_ok,
    };
    drop(handle);
    eprintln!(
        "#   workers={workers} shards={shards}: cold {:.3}s, warm {:.3}s x{warm_clients}, \
         contended {}+{}, bit_identical={}",
        cell.cold.secs,
        cell.warm.secs,
        cell.result_contended,
        cell.pk_contended,
        cell.bit_identical
    );
    cell
}

/// The in-process lock-contention probe: each thread hammers its own hot
/// key in a tight loop of warm cache hits. The keys are chosen (via the
/// engine's public shard routing) to land on *distinct* shards of an
/// 8-shard cache — so with 1 shard every thread serializes on one mutex
/// and the `try_lock`-failure counter climbs, while with 8 shards the
/// same four threads touch four different locks and contention collapses.
/// This is the sharding claim made observable on a one-core box, where
/// wall-clock scaling cannot show it: the wire path is syscall-dominated,
/// so only a loop whose body *is* the cache hit exposes the lock.
fn probe_keys(queries: &[QosQuery], threads: usize, shards: usize) -> Vec<QosQuery> {
    let mut picked: Vec<QosQuery> = Vec::new();
    let mut taken = vec![false; shards];
    for q in queries {
        let s = shard_of(&q.key(), shards);
        if !taken[s] {
            taken[s] = true;
            picked.push(*q);
            if picked.len() == threads {
                break;
            }
        }
    }
    assert_eq!(
        picked.len(),
        threads,
        "workload too narrow to find {threads} keys on distinct shards"
    );
    picked
}

fn contention_probe(
    shards: usize,
    queries: &[QosQuery],
    threads: usize,
    probe_secs: f64,
) -> ProbeCell {
    let engine = Arc::new(Engine::new(EngineConfig {
        workers: 2,
        cache_shards: shards,
        ..EngineConfig::default()
    }));
    let results = engine.run_all(queries); // prewarm every key
    assert!(results.iter().all(Result::is_ok), "prewarm must succeed");
    // Prewarm itself contends (workers + coalescing); measure the delta.
    let base: u64 = engine
        .cache_stats()
        .result
        .iter()
        .map(|s| s.contended)
        .sum();
    // One hot key per thread, each on its own shard of an 8-shard cache.
    let keys = probe_keys(queries, threads, 8);
    let stop = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(std::sync::Barrier::new(threads + 1));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let engine = Arc::clone(&engine);
            let key = keys[t];
            let stop = Arc::clone(&stop);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                let mut ops = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let _ = engine.evaluate(key);
                    ops += 1;
                }
                ops
            })
        })
        .collect();
    barrier.wait();
    let t0 = Instant::now();
    std::thread::sleep(Duration::from_secs_f64(probe_secs));
    stop.store(true, Ordering::Relaxed);
    let ops: u64 = handles
        .into_iter()
        .map(|h| h.join().expect("probe thread panicked"))
        .sum();
    let secs = t0.elapsed().as_secs_f64();
    let stats = engine.cache_stats();
    engine.shutdown();
    let cell = ProbeCell {
        shards,
        threads,
        ops,
        result_contended: stats
            .result
            .iter()
            .map(|s| s.contended)
            .sum::<u64>()
            .saturating_sub(base),
        secs,
    };
    eprintln!(
        "#   probe shards={shards}: {} ops in {:.3}s, result_contended={}",
        cell.ops, cell.secs, cell.result_contended
    );
    cell
}

/// The `p`-quantile of an ascending-sorted sample (nearest rank).
fn quantile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    #[allow(
        clippy::cast_precision_loss,
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss
    )]
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// The open-loop phase: `count` requests on a fixed `rate` schedule over
/// a pre-warmed server; latency from scheduled send time.
#[allow(clippy::cast_precision_loss)]
fn open_loop(
    handle: &ServerHandle,
    queries: &[QosQuery],
    expected: &[QosValue],
    count: usize,
    rate: f64,
) -> (OpenLoopReport, bool) {
    let interval = Duration::from_secs_f64(1.0 / rate);
    let stream = TcpStream::connect(handle.local_addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);

    let m = queries.len();
    let start = Instant::now();
    let receiver = {
        let expected: Vec<QosValue> = expected.to_vec();
        std::thread::spawn(move || {
            let mut instants = Vec::with_capacity(count);
            let mut identical = true;
            for i in 0..count {
                let payload = read_frame(&mut reader)
                    .expect("read")
                    .expect("server closed mid-phase");
                instants.push(Instant::now());
                match decode_frame(&payload) {
                    Ok(Frame::Response(r)) => {
                        if r.req_id != i as u64 || r.value != expected[i % expected.len()] {
                            identical = false;
                        }
                    }
                    _ => identical = false,
                }
            }
            (instants, identical)
        })
    };
    for i in 0..count {
        let target = start + interval.mul_f64(i as f64);
        if let Some(wait) = target.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        write_frame(
            &mut writer,
            &encode_request(&Request::from_query(i as u64, &queries[i % m])),
        )
        .expect("send");
    }
    let (instants, identical) = receiver.join().expect("receiver panicked");
    let total_secs = start.elapsed().as_secs_f64();

    let mut latencies: Vec<f64> = instants
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let scheduled = start + interval.mul_f64(i as f64);
            t.saturating_duration_since(scheduled).as_secs_f64()
        })
        .collect();
    latencies.sort_by(f64::total_cmp);
    let report = OpenLoopReport {
        target_qps: rate,
        achieved: Rate {
            queries: count,
            secs: total_secs,
        },
        p50_s: quantile(&latencies, 0.50),
        p95_s: quantile(&latencies, 0.95),
        p99_s: quantile(&latencies, 0.99),
        p999_s: quantile(&latencies, 0.999),
        max_s: latencies.last().copied().unwrap_or(f64::NAN),
    };
    eprintln!(
        "#   open loop: {count} @ {rate:.0}/s, p50 {:.2e}s p99 {:.2e}s p999 {:.2e}s, \
         bit_identical={identical}",
        report.p50_s, report.p99_s, report.p999_s
    );
    (report, identical)
}

/// The snapshot warm-start phase: three server lives against one path.
fn warm_start_phase(queries: &[QosQuery], expected: &[QosValue]) -> (WarmStartReport, bool) {
    let path = std::env::temp_dir().join(format!("oaq_serve_bench_{}.snap", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let config = ServerConfig {
        engine: EngineConfig::default(),
        snapshot_path: Some(path.clone()),
        ..ServerConfig::default()
    };

    // Life 1: cold — solve everything, persist on graceful shutdown.
    let first = serve(&config).expect("bind");
    let (cold_secs, cold_ok) = replay(first.local_addr(), queries, expected);
    let cold_pk_solves = first.engine().metrics().pk_solves;
    let saved = first
        .shutdown()
        .expect("snapshot save")
        .expect("snapshot configured");

    // Life 2: warm — reload, replay, and re-solve nothing.
    let second = serve(&config).expect("bind");
    let loaded = matches!(second.warm_start(), WarmStart::Loaded(_));
    let (warm_secs, warm_ok) = replay(second.local_addr(), queries, expected);
    let warm_pk_solves = second.engine().metrics().pk_solves;
    second.shutdown().expect("snapshot re-save");

    // Life 3: corrupt the file; the server must boot cold, not die.
    let mut bytes = std::fs::read(&path).expect("snapshot readable");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&path, &bytes).expect("snapshot writable");
    let third = serve(&config).expect("bind");
    let corrupt_rejected = matches!(third.warm_start(), WarmStart::Rejected(_))
        && third.engine().export_pk_cache().is_empty();
    drop(third);
    let _ = std::fs::remove_file(&path);

    let ok = cold_ok && warm_ok && loaded && warm_pk_solves == 0 && corrupt_rejected;
    eprintln!(
        "#   warm start: cold {cold_secs:.3}s ({cold_pk_solves} solves) -> warm {warm_secs:.3}s \
         ({warm_pk_solves} solves), corrupt_rejected={corrupt_rejected}"
    );
    (
        WarmStartReport {
            cold: Rate {
                queries: queries.len(),
                secs: cold_secs,
            },
            cold_pk_solves,
            warm: Rate {
                queries: queries.len(),
                secs: warm_secs,
            },
            warm_pk_solves,
            snapshot_bytes: saved.bytes,
            pk_entries: saved.pk_entries,
            result_entries: saved.result_entries,
            corrupt_rejected,
        },
        ok,
    )
}

#[allow(clippy::too_many_lines, clippy::cast_precision_loss)]
fn main() {
    let cli = CliSpec::new("serve_bench")
        .switch("--quick", "1k queries over 40 scenarios (CI size)")
        .option("--seed", "N", "workload seed (default 2003)")
        .option("--queries", "N", "workload length (default 6000)")
        .option(
            "--rate",
            "QPS",
            "open-loop send rate (default: half of warm qps)",
        )
        .parse();
    let quick = cli.has("--quick");
    let seed = cli.get_u64("--seed", 2003);
    let n_queries = cli.get_usize("--queries", if quick { 1000 } else { 6000 });
    let rate_override = cli.get_f64_nonneg("--rate", 0.0);

    let workload_cfg = WorkloadConfig {
        scenarios: if quick { 40 } else { 120 },
        skew: 1.0,
        queries: n_queries,
    };
    let queries: Arc<Vec<QosQuery>> = Arc::new(zipf_workload(&workload_cfg, seed));
    eprintln!(
        "# serve_bench: {} queries over {} scenarios (seed {seed})",
        queries.len(),
        workload_cfg.scenarios
    );

    // The ground truth every wire answer is held to.
    let t0 = Instant::now();
    let expected: Arc<Vec<QosValue>> = Arc::new(
        queries
            .iter()
            .map(|q| direct_eval(q).expect("workload queries are valid"))
            .collect(),
    );
    let naive_secs = t0.elapsed().as_secs_f64();
    eprintln!("#   naive baseline: {naive_secs:.3}s");

    // Phase 1: the worker×shard matrix.
    let warm_clients = 4;
    let cells: Vec<(usize, usize)> = if quick {
        vec![(1, 1), (1, 8), (4, 1), (4, 8)]
    } else {
        vec![(1, 1), (1, 8), (2, 1), (2, 8), (4, 1), (4, 8)]
    };
    let matrix: Vec<MatrixCell> = cells
        .into_iter()
        .map(|(w, s)| matrix_cell(w, s, &queries, &expected, warm_clients))
        .collect();
    let matrix_identical = matrix.iter().all(|c| c.bit_identical);

    // Phase 1b: the in-process contention probe, 1 shard vs 8 shards.
    let probe_secs = if quick { 0.75 } else { 2.0 };
    let contention: Vec<ProbeCell> = [1usize, 8]
        .into_iter()
        .map(|s| contention_probe(s, &queries, warm_clients, probe_secs))
        .collect();

    // Phase 2: open loop on a default-shaped, pre-warmed server.
    let handle = serve(&ServerConfig::default()).expect("bind");
    let (warm_secs, prewarm_ok) = {
        let (_, _) = replay(handle.local_addr(), &queries, &expected); // cold fill
        replay(handle.local_addr(), &queries, &expected)
    };
    let warm_qps = queries.len() as f64 / warm_secs;
    let rate = if rate_override > 0.0 {
        rate_override
    } else {
        (warm_qps * 0.5).clamp(200.0, 50_000.0)
    };
    let open_count = if quick { 2000 } else { 8000 };
    let (open_report, open_identical) = open_loop(&handle, &queries, &expected, open_count, rate);
    let cache = handle.engine().cache_stats();
    drop(handle);

    // Phase 3: snapshot warm-start.
    let (warm_report, warm_identical) = warm_start_phase(&queries, &expected);

    let bit_identical = matrix_identical && prewarm_ok && open_identical && warm_identical;
    let report = ServeReport {
        seed,
        queries: n_queries,
        scenarios: workload_cfg.scenarios,
        quick,
        bit_identical,
        naive: Rate {
            queries: n_queries,
            secs: naive_secs,
        },
        matrix,
        contention,
        open_loop: open_report,
        warm_start: warm_report,
        cache,
    };
    let doc = report.render();
    // The document must be strict JSON before it is the artifact.
    if let Err(e) = parse(&doc) {
        eprintln!("# INTERNAL: emitted document is not strict JSON: {e}");
        std::process::exit(1);
    }
    println!("{doc}");

    if !bit_identical {
        eprintln!("# BIT-IDENTITY VIOLATED: a wire answer diverged from direct evaluation");
        std::process::exit(1);
    }
}
