//! Experiment E6 — the in-text τ sweep: "how the OAQ scheme achieves
//! better QoS by taking full advantage of the time allowance".

use oaq_analytic::compose::Scheme;
use oaq_analytic::sweep::{tau_sweep_par, Fanout};
use oaq_bench::args::CliSpec;
use oaq_bench::{banner, tsv_header, tsv_row};

fn main() {
    let cli = CliSpec::new("tau_sweep")
        .option("--workers", "N", "sweep threads (default: all cores)")
        .option(
            "--chunk",
            "N",
            "grid points per work chunk (default: adaptive)",
        )
        .parse();
    let fanout = Fanout {
        workers: cli.get_usize("--workers", 0),
        chunk: cli.get_chunk("--chunk"),
    };
    let taus: Vec<f64> = (1..=16).map(|i| 0.5 * f64::from(i)).collect();
    let lambda = 5e-5;
    banner("QoS vs deadline tau (lambda=5e-5, mu=0.2, eta=10)");
    tsv_header(&["tau", "OAQ:y>=2", "OAQ:y=3", "BAQ:y>=2", "BAQ:y=3"]);
    let oaq = tau_sweep_par(Scheme::Oaq, lambda, &taus, fanout).expect("solves");
    let baq = tau_sweep_par(Scheme::Baq, lambda, &taus, fanout).expect("solves");
    for i in 0..taus.len() {
        tsv_row(
            taus[i],
            &[oaq[i].p_ge_2, oaq[i].p_ge_3, baq[i].p_ge_2, baq[i].p_ge_3],
        );
    }
    println!("\nOAQ's curves rise steadily with tau (more allowance = wider");
    println!("window of opportunity); BAQ saturates almost immediately.");
}
