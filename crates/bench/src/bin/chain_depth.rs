//! Experiment E14 (analysis) — the coordination-chain-length distribution:
//! closed form (`oaq_analytic::chain`, derived beyond the paper's `M[k]`
//! bound) vs the protocol simulation in the idealized regime.

use oaq_analytic::chain::{chain_ccdf, expected_chain_length};
use oaq_analytic::geometry::PlaneGeometry;
use oaq_bench::{banner, tsv_header};
use oaq_core::config::{ProtocolConfig, Scheme};
use oaq_core::protocol::Episode;
use oaq_sim::SimRng;

fn empirical(cfg: &ProtocolConfig, mu: f64, episodes: u64, max_n: usize) -> Vec<f64> {
    let mut rng = SimRng::seed_from(777);
    let mut at_least = vec![0u64; max_n + 1]; // index 0 unused
    for seed in 0..episodes {
        let birth = cfg.theta + rng.uniform(0.0, cfg.tr());
        let duration = rng.exp(mu);
        let out = Episode::new(cfg, seed).run(birth, duration);
        for (n, slot) in at_least.iter_mut().enumerate().skip(1) {
            if out.chain_length >= n {
                *slot += 1;
            }
        }
    }
    at_least
        .iter()
        .map(|&c| c as f64 / episodes as f64)
        .collect()
}

fn main() {
    let mu = 0.15;
    banner("Chain-length CCDF P(N >= n): closed form vs protocol (20k episodes)");
    tsv_header(&["k", "tau", "n", "analytic", "simulated", "M[k]"]);
    for (k, tau) in [
        (9usize, 5.0),
        (9, 15.0),
        (9, 25.0),
        (9, 35.0),
        (10, 5.0),
        (10, 25.0),
    ] {
        let geom = PlaneGeometry::reference(k as u32);
        let m = geom.sequential_chain_bound(tau).unwrap();
        let mut cfg = ProtocolConfig::reference(k, Scheme::Oaq);
        cfg.tau = tau;
        cfg.nu = 3000.0;
        cfg.delta = 0.001;
        cfg.tg = 0.01;
        let max_n = (m as usize + 1).min(6);
        let emp = empirical(&cfg, mu, 20_000, max_n);
        for (n, &e) in emp.iter().enumerate().skip(1) {
            let exact = chain_ccdf(&geom, tau, mu, n).unwrap();
            println!("{k}\t{tau}\t{n}\t{exact:.4}\t{e:.4}\t{m}");
        }
    }

    banner("Expected chain length E[N] vs tau (k = 9, mu = 0.15)");
    tsv_header(&["tau", "E[N]"]);
    for tau in [2.0, 5.0, 10.0, 15.0, 25.0, 35.0, 45.0] {
        let g = PlaneGeometry::reference(9);
        println!("{tau}\t{:.4}", expected_chain_length(&g, tau, mu).unwrap());
    }
    println!("\nThe distribution's support ends exactly at the paper's M[k]");
    println!("(Eq. 2); the mass at each depth quantifies how much of the bound");
    println!("the opportunity actually delivers.");
}
