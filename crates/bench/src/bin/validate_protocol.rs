//! Experiment E9 — model validation: the distributed protocol simulation
//! vs the closed-form analytic model, for every capacity and both schemes.
//! (The integration test suite runs a smaller version of this; the binary
//! prints the full comparison table.)
//!
//! Parallelism comes from the deterministic replication engine inside
//! [`estimate_conditional_qos_fanout`]: episodes fan out on counter-based
//! substreams, so every worker count prints the identical table.
//!
//! Usage: `validate_protocol [--episodes N] [--workers N]`

use oaq_analytic::geometry::PlaneGeometry;
use oaq_analytic::qos::{conditional_qos, QosParams, Scheme as AScheme};
use oaq_bench::args::CliSpec;
use oaq_bench::banner;
use oaq_core::config::{ProtocolConfig, Scheme};
use oaq_core::experiment::{estimate_conditional_qos_fanout, MonteCarloOptions, QosEstimate};

fn main() {
    let cli = CliSpec::new("validate_protocol")
        .option("--episodes", "N", "episodes per cell (default 40000)")
        .option(
            "--workers",
            "N",
            "worker threads, 0 = all cores (default 0)",
        )
        .option(
            "--chunk",
            "N",
            "episodes per work chunk (default: adaptive)",
        )
        .parse();
    let episodes = cli.get_usize("--episodes", 40_000);
    let workers = cli.get_usize("--workers", 0);
    let chunk = cli.get_chunk("--chunk");

    let mut collected: Vec<QosEstimate> = Vec::new();
    for scheme in [Scheme::Oaq, Scheme::Baq] {
        for mu in [0.2, 0.5] {
            for k in 9..=14u32 {
                collected.push(estimate_conditional_qos_fanout(
                    &ProtocolConfig::reference(k as usize, scheme),
                    &MonteCarloOptions {
                        episodes,
                        mu,
                        seed: 31 + u64::from(k),
                    },
                    workers,
                    chunk,
                ));
            }
        }
    }

    let mut idx = 0;
    for (ascheme, label) in [(AScheme::Oaq, "OAQ"), (AScheme::Baq, "BAQ")] {
        for mu in [0.2, 0.5] {
            banner(&format!(
                "{label}, mu = {mu}: P(Y=y|k) — analytic vs protocol ({episodes} episodes/row)"
            ));
            println!("k\ty\tanalytic\tsimulated\t|diff|");
            for k in 9..=14u32 {
                let exact = conditional_qos(
                    ascheme,
                    &PlaneGeometry::reference(k),
                    &QosParams::paper_defaults(mu),
                );
                let est = &collected[idx];
                idx += 1;
                for y in 0..=3 {
                    if exact.p(y) == 0.0 && est.p[y] == 0.0 {
                        continue;
                    }
                    println!(
                        "{}\t{}\t{:.4}\t\t{:.4}\t\t{:.4}",
                        k,
                        y,
                        exact.p(y),
                        est.p[y],
                        (exact.p(y) - est.p[y]).abs()
                    );
                }
            }
        }
    }
    println!("\nAgreement within Monte-Carlo noise + the protocol's real");
    println!("messaging overheads (delta, Tg) that the formula idealizes away.");
}
