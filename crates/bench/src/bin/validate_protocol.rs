//! Experiment E9 — model validation: the distributed protocol simulation
//! vs the closed-form analytic model, for every capacity and both schemes.
//! (The integration test suite runs a smaller version of this; the binary
//! prints the full comparison table.)
//!
//! The 24 Monte-Carlo cells (k × scheme × µ) are independent, so they run
//! on a crossbeam scoped-thread pool; results are collected under a
//! parking_lot mutex and printed in deterministic order.

use oaq_analytic::geometry::PlaneGeometry;
use oaq_analytic::qos::{conditional_qos, QosParams, Scheme as AScheme};
use oaq_bench::banner;
use oaq_core::config::{ProtocolConfig, Scheme};
use oaq_core::experiment::{estimate_conditional_qos, MonteCarloOptions, QosEstimate};
use parking_lot::Mutex;

#[derive(Clone, Copy)]
struct Cell {
    scheme: Scheme,
    mu: f64,
    k: u32,
}

fn main() {
    let episodes = 40_000;
    let mut cells = Vec::new();
    for scheme in [Scheme::Oaq, Scheme::Baq] {
        for mu in [0.2, 0.5] {
            for k in 9..=14u32 {
                cells.push(Cell { scheme, mu, k });
            }
        }
    }

    let results: Mutex<Vec<(usize, QosEstimate)>> = Mutex::new(Vec::new());
    let workers = std::thread::available_parallelism().map_or(4, std::num::NonZero::get);
    let chunk = cells.len().div_ceil(workers);
    crossbeam::scope(|scope| {
        for (w, batch) in cells.chunks(chunk).enumerate() {
            let results = &results;
            let base = w * chunk;
            scope.spawn(move |_| {
                for (i, cell) in batch.iter().enumerate() {
                    let est = estimate_conditional_qos(
                        &ProtocolConfig::reference(cell.k as usize, cell.scheme),
                        &MonteCarloOptions {
                            episodes,
                            mu: cell.mu,
                            seed: 31 + u64::from(cell.k),
                        },
                    );
                    results.lock().push((base + i, est));
                }
            });
        }
    })
    .expect("worker panicked");

    let mut collected = results.into_inner();
    collected.sort_by_key(|(i, _)| *i);

    let mut idx = 0;
    for (ascheme, label) in [(AScheme::Oaq, "OAQ"), (AScheme::Baq, "BAQ")] {
        for mu in [0.2, 0.5] {
            banner(&format!(
                "{label}, mu = {mu}: P(Y=y|k) — analytic vs protocol ({episodes} episodes/row)"
            ));
            println!("k\ty\tanalytic\tsimulated\t|diff|");
            for k in 9..=14u32 {
                let exact = conditional_qos(
                    ascheme,
                    &PlaneGeometry::reference(k),
                    &QosParams::paper_defaults(mu),
                );
                let est = &collected[idx].1;
                idx += 1;
                for y in 0..=3 {
                    if exact.p(y) == 0.0 && est.p[y] == 0.0 {
                        continue;
                    }
                    println!(
                        "{}\t{}\t{:.4}\t\t{:.4}\t\t{:.4}",
                        k,
                        y,
                        exact.p(y),
                        est.p[y],
                        (exact.p(y) - est.p[y]).abs()
                    );
                }
            }
        }
    }
    println!("\nAgreement within Monte-Carlo noise + the protocol's real");
    println!("messaging overheads (delta, Tg) that the formula idealizes away.");
}
