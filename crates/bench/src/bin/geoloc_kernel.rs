//! Experiment E19 — the zero-allocation geolocation kernel vs the
//! heap/dynamic-dispatch baseline, plus the incremental sequential mode.
//!
//! Reports JSON on stdout (progress on stderr), written to
//! `BENCH_geoloc.json` at the repo root / uploaded by CI:
//!
//! 1. **per_solve** — one two-pass (18-observation) WLS solve through
//!    three estimator configurations: the pre-stack-kernel baseline
//!    (heap `Matrix` normal equations, `&dyn` dispatch, finite-difference
//!    Jacobians), the same heap path with the analytic Jacobians, and the
//!    monomorphized stack-kernel fast path. The stack path must agree with
//!    the heap path *bit for bit* for the same Jacobians — the bench exits
//!    non-zero on divergence. The acceptance bar is ≥ 3× over the FD
//!    baseline.
//! 2. **jacobian** — analytic-vs-finite-difference gradient agreement for
//!    the Doppler and TOA models (max abs/rel difference over a grid of
//!    linearization points).
//! 3. **chain_growth** — sequential localization over growing chains:
//!    batch re-solves (`estimate`, O(total observations) per extension)
//!    vs the incremental information-filter mode
//!    (`estimate_incremental`, O(new observations) per extension). The
//!    incremental win must grow with the chain length.
//!
//! Usage: `geoloc_kernel [--quick] [--reps N]`

use std::time::Instant;

use oaq_bench::args::CliSpec;
use oaq_engine::report::fmt_f64;
use oaq_geoloc::doppler::DopplerMeasurement;
use oaq_geoloc::emitter::Emitter;
use oaq_geoloc::scenario::PassScenario;
use oaq_geoloc::sequential::SequentialLocalizer;
use oaq_geoloc::wls::{Estimate, FdJacobian, Observation, WlsSolver, FD_STEPS, STATE_DIM};
use oaq_orbit::units::Degrees;
use oaq_orbit::GroundPoint;
use oaq_sim::SimRng;

/// Wall-clock seconds per call of `f`, averaged over `reps` calls.
fn time_per_call<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(f());
    }
    t0.elapsed().as_secs_f64() / reps as f64
}

/// Full bitwise agreement of two estimates (state, cost, iterations,
/// covariance).
fn bits_equal(a: &Estimate, b: &Estimate) -> bool {
    a.iterations == b.iterations
        && a.cost.to_bits() == b.cost.to_bits()
        && a.state
            .iter()
            .zip(&b.state)
            .all(|(x, y)| x.to_bits() == y.to_bits())
        && (0..STATE_DIM).all(|i| {
            (0..STATE_DIM).all(|j| a.covariance[(i, j)].to_bits() == b.covariance[(i, j)].to_bits())
        })
}

/// Max absolute and relative analytic-vs-FD Jacobian differences of `obs`
/// over a set of linearization points.
fn jacobian_diff<O: Observation>(obs: &[O], points: &[[f64; STATE_DIM]]) -> (f64, f64) {
    let mut max_abs = 0.0f64;
    let mut max_rel = 0.0f64;
    for o in obs {
        for x in points {
            let a = o.jacobian_row(x);
            let fd = o.jacobian_row_fd(x);
            for j in 0..STATE_DIM {
                let d = (a[j] - fd[j]).abs();
                max_abs = max_abs.max(d);
                max_rel = max_rel.max(d / a[j].abs().max(fd[j].abs()).max(1e-30));
            }
        }
    }
    (max_abs, max_rel)
}

fn main() {
    let cli = CliSpec::new("geoloc_kernel")
        .switch("--quick", "fewer reps and a shorter chain axis (CI size)")
        .option("--reps", "N", "per-solve timing repetitions (default 2000)")
        .parse();
    let quick = cli.has("--quick");
    let reps = cli.get_usize("--reps", if quick { 300 } else { 2000 });

    let emitter = Emitter::new(
        GroundPoint::from_degrees(Degrees(30.0), Degrees(10.0)),
        400.0e6,
    );
    let scenario = PassScenario::reference(&emitter);
    let solver = WlsSolver::new();
    let x0 = emitter.initial_guess_nearby(1.0);

    // 1. Per-solve: a fixed two-pass problem at realistic track density
    // (33 samples per pass), solved by every configuration.
    let dense = scenario.clone().with_samples_per_pass(33);
    let mut rng = SimRng::seed_from(19);
    let mut obs: Vec<DopplerMeasurement> = dense.synthesize_pass(0, &mut rng);
    obs.extend(dense.synthesize_pass(1, &mut rng));
    let fd_obs: Vec<FdJacobian<DopplerMeasurement>> = obs.iter().map(|m| FdJacobian(*m)).collect();
    let fd_refs: Vec<&dyn Observation> = fd_obs.iter().map(|o| o as &dyn Observation).collect();
    let an_refs: Vec<&dyn Observation> = obs.iter().map(|o| o as &dyn Observation).collect();

    let heap_fd = solver.solve_heap(&fd_refs, x0).expect("baseline solves");
    let heap_an = solver
        .solve_heap(&an_refs, x0)
        .expect("heap analytic solves");
    let stack = solver.solve_obs(&obs, x0).expect("stack fast path solves");
    let bit_identical = bits_equal(&stack, &heap_an);
    // The FD baseline converges to the same emitter (not bit-identical —
    // different Jacobians — but the answers must coincide physically).
    let baseline_agreement_km = stack
        .position()
        .great_circle_distance(&heap_fd.position())
        .value();

    let heap_fd_secs = time_per_call(reps, || solver.solve_heap(&fd_refs, x0).unwrap());
    let heap_an_secs = time_per_call(reps, || solver.solve_heap(&an_refs, x0).unwrap());
    let stack_secs = time_per_call(reps, || solver.solve_obs(&obs, x0).unwrap());
    let speedup_fd = heap_fd_secs / stack_secs;
    let speedup_an = heap_an_secs / stack_secs;
    let baseline_agreement_json = fmt_f64(baseline_agreement_km);
    eprintln!(
        "# per_solve ({} obs): heap-dyn-FD {:.1} us, heap-dyn-analytic {:.1} us, \
         stack-generic {:.1} us, {:.2}x vs baseline, bit_identical={}",
        obs.len(),
        heap_fd_secs * 1e6,
        heap_an_secs * 1e6,
        stack_secs * 1e6,
        speedup_fd,
        bit_identical,
    );

    // 2. Analytic-vs-FD Jacobian agreement for both measurement models.
    let points: Vec<[f64; STATE_DIM]> = [0.1, 0.4, 0.8, 1.2]
        .iter()
        .map(|&off| emitter.initial_guess_nearby(off))
        .collect();
    let toa_obs = scenario.synthesize_toa_pass(1, 0.5, &mut rng);
    let (dop_abs, dop_rel) = jacobian_diff(&obs, &points);
    let (toa_abs, toa_rel) = jacobian_diff(&toa_obs, &points);
    eprintln!(
        "# jacobian: doppler max|diff| {dop_abs:.2e} (rel {dop_rel:.2e}), \
         toa max|diff| {toa_abs:.2e} (rel {toa_rel:.2e})"
    );

    // 3. Chain growth: batch re-solve vs incremental information filter.
    // Pass indices cycle so every pass keeps workable geometry.
    let lengths: &[usize] = if quick { &[2, 4, 8] } else { &[2, 4, 8, 16] };
    let chain_reps = if quick { 20 } else { 100 };
    let mut chain_rows = Vec::new();
    for &n in lengths {
        let mut rng = SimRng::seed_from(7);
        let passes: Vec<Vec<DopplerMeasurement>> = (0..n)
            .map(|pos| scenario.synthesize_pass(pos % 3, &mut rng))
            .collect();
        let run_batch = || {
            let mut loc = SequentialLocalizer::new(emitter.initial_guess_nearby(1.0));
            let mut last = None;
            for p in &passes {
                loc.add_pass(p.clone());
                last = Some(loc.estimate().expect("batch solves"));
            }
            last.expect("chain is non-empty")
        };
        let run_incremental = || {
            let mut loc = SequentialLocalizer::new(emitter.initial_guess_nearby(1.0));
            let mut last = None;
            for p in &passes {
                loc.add_pass(p.clone());
                last = Some(loc.estimate_incremental().expect("incremental solves"));
            }
            last.expect("chain is non-empty")
        };
        let batch_final = run_batch();
        let inc_final = run_incremental();
        let agreement_km = batch_final
            .position()
            .great_circle_distance(&inc_final.position())
            .value();
        let batch_secs = time_per_call(chain_reps, run_batch);
        let inc_secs = time_per_call(chain_reps, run_incremental);
        eprintln!(
            "# chain_growth n={n} ({} obs): batch {:.1} us, incremental {:.1} us, {:.2}x, \
             agreement {agreement_km:.2e} km",
            n * passes[0].len(),
            batch_secs * 1e6,
            inc_secs * 1e6,
            batch_secs / inc_secs,
        );
        chain_rows.push(format!(
            "{{\"passes\": {n}, \"observations\": {}, \"batch_secs\": {}, \
             \"incremental_secs\": {}, \"speedup\": {}, \"final_agreement_km\": {}}}",
            n * passes[0].len(),
            fmt_f64(batch_secs),
            fmt_f64(inc_secs),
            fmt_f64(batch_secs / inc_secs),
            fmt_f64(agreement_km),
        ));
    }

    println!(
        "{{\n  \"experiment\": \"geoloc_kernel\",\n  \"quick\": {quick},\n  \
         \"per_solve\": {{\"observations\": {}, \"heap_dyn_fd_secs\": {}, \
         \"heap_dyn_analytic_secs\": {}, \"stack_generic_secs\": {}, \
         \"speedup_vs_fd_baseline\": {}, \"speedup_vs_heap_analytic\": {}, \
         \"baseline_agreement_km\": {baseline_agreement_json}, \
         \"bit_identical\": {bit_identical}}},\n  \
         \"jacobian\": {{\"fd_steps\": [{}, {}, {}], \
         \"doppler_max_abs_diff\": {}, \"doppler_max_rel_diff\": {}, \
         \"toa_max_abs_diff\": {}, \"toa_max_rel_diff\": {}}},\n  \
         \"chain_growth\": [{}]\n}}",
        obs.len(),
        fmt_f64(heap_fd_secs),
        fmt_f64(heap_an_secs),
        fmt_f64(stack_secs),
        fmt_f64(speedup_fd),
        fmt_f64(speedup_an),
        fmt_f64(FD_STEPS[0]),
        fmt_f64(FD_STEPS[1]),
        fmt_f64(FD_STEPS[2]),
        fmt_f64(dop_abs),
        fmt_f64(dop_rel),
        fmt_f64(toa_abs),
        fmt_f64(toa_rel),
        chain_rows.join(", "),
    );

    if !bit_identical {
        eprintln!("# KERNEL AGREEMENT VIOLATED: stack fast path diverged from the heap reference");
        std::process::exit(1);
    }
}
