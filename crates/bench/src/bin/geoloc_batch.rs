//! Experiment E22 — structure-of-arrays batched geolocation vs the looped
//! per-track WLS solver, plus the deterministic executor's scheduling
//! overhead on the same workload.
//!
//! Reports JSON on stdout (progress on stderr), written to
//! `BENCH_geoloc_batch.json` at the repo root / uploaded by CI:
//!
//! 1. **batch_curve** — per-solve throughput of the SoA
//!    [`oaq_geoloc::BatchSolver`] against one `WlsSolver::solve_obs` call
//!    per track, over batch sizes {16, 64, 256, 1024}. Every per-emitter
//!    estimate must be bit-identical between the two paths, and the
//!    batched path must be ≥ 3× faster per solve at batch ≥ 256 — the
//!    bench exits non-zero when either contract misses.
//! 2. **executor_overhead** — the same track set fanned over
//!    [`oaq_exec::Executor::map_indexed`] at 1/2/4/8 workers. Results
//!    must be bit-identical to the serial loop at every worker count;
//!    the per-worker wall-clock curve is the scheduling-overhead record
//!    (the `cores` field says how many cores produced it — on a
//!    single-core box the curve measures pure overhead and should stay
//!    within a few percent of serial).
//!
//! Usage: `geoloc_batch [--quick] [--seed N] [--passes N] [--chunk N]`

use std::time::Instant;

use oaq_bench::args::CliSpec;
use oaq_core::fullstack::{solve_tracks_batched, solve_tracks_looped, synthesize_emitter_tracks};
use oaq_engine::report::fmt_f64;
use oaq_exec::Executor;
use oaq_geoloc::doppler::DopplerMeasurement;
use oaq_geoloc::wls::{Estimate, SolveError};
use oaq_geoloc::{BatchSolver, WlsSolver};

/// The tracking scenario every section shares: the paper's reference plane
/// (θ = 90 min, Tc = 9 min) pinned at the replenishment threshold, so the
/// revisit interval is Tr\[η\] = θ/η = 9 min.
const THETA: f64 = 90.0;
const TC: f64 = 9.0;
const REVISIT: f64 = 9.0;

/// Wall-clock seconds per call of `f`: the minimum over five timing
/// rounds of `reps` calls each, after one untimed warmup call. The warmup
/// keeps first-touch page faults and lazy init out of whichever path is
/// timed first; the min-over-rounds is the robust throughput estimator on
/// a shared box, where scheduler preemption only ever *adds* time — a
/// round must stay long enough (reps high enough) that a millisecond-scale
/// preemption burst cannot straddle every round.
fn time_per_call<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    std::hint::black_box(f());
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let t0 = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(f());
        }
        best = best.min(t0.elapsed().as_secs_f64() / reps as f64);
    }
    best
}

/// Bitwise identity of two per-track solve results. `Ok` estimates compare
/// state, cost, iteration count and the reported error radius down to the
/// bit; errors compare by their rendered message (`SolveError` carries
/// NaN-capable payloads that defeat `PartialEq`).
fn results_identical(
    a: &[Result<Estimate, SolveError>],
    b: &[Result<Estimate, SolveError>],
) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| match (x, y) {
            (Ok(p), Ok(q)) => {
                p.iterations == q.iterations
                    && p.cost.to_bits() == q.cost.to_bits()
                    && p.state
                        .iter()
                        .zip(&q.state)
                        .all(|(s, t)| s.to_bits() == t.to_bits())
                    && p.error_radius_km().to_bits() == q.error_radius_km().to_bits()
            }
            (Err(p), Err(q)) => p.to_string() == q.to_string(),
            _ => false,
        })
}

fn main() {
    let cli = CliSpec::new("geoloc_batch")
        .switch("--quick", "shorter batch axis (CI size)")
        .option("--seed", "N", "track synthesis seed (default 22)")
        .option("--passes", "N", "passes per emitter track (default 2)")
        .option(
            "--chunk",
            "N",
            "tracks per executor chunk (default: adaptive)",
        )
        .parse();
    let quick = cli.has("--quick");
    let seed = cli.get_u64("--seed", 22);
    let passes = u32::try_from(cli.get_u64("--passes", 2)).expect("passes fits u32");
    let chunk = cli.get_chunk("--chunk");
    // Same reps in both modes: the gate needs each timing round long
    // enough to amortize scheduler noise; `--quick` shortens the batch
    // axis (drops 1024), not the measurement quality.
    let reps = 10;
    let cores = std::thread::available_parallelism().map_or(1, usize::from);

    let mut failure = false;

    // 1. Batched vs looped per-solve throughput over the batch-size axis.
    let batch_sizes: &[u32] = if quick {
        &[16, 64, 256]
    } else {
        &[16, 64, 256, 1024]
    };
    let mut batch = BatchSolver::<DopplerMeasurement>::default();
    let mut batch_rows = Vec::new();
    for &n in batch_sizes {
        let tracks = synthesize_emitter_tracks(THETA, TC, REVISIT, n, passes, seed);
        let looped = solve_tracks_looped(&tracks);
        let batched = solve_tracks_batched(&tracks, &mut batch);
        let identical = results_identical(&batched, &looped);
        if !identical {
            eprintln!("# DIVERGENCE: batched solve disagrees with the looped solver at n={n}");
            failure = true;
        }
        let looped_secs = time_per_call(reps, || solve_tracks_looped(&tracks)) / f64::from(n);
        let batched_secs =
            time_per_call(reps, || solve_tracks_batched(&tracks, &mut batch)) / f64::from(n);
        let speedup = looped_secs / batched_secs;
        eprintln!(
            "# batch n={n}: looped {:.1} us/solve, batched {:.1} us/solve, {speedup:.2}x, \
             identical={identical}",
            looped_secs * 1e6,
            batched_secs * 1e6,
        );
        if n >= 256 && speedup < 3.0 {
            eprintln!("# THROUGHPUT MISS: batched speedup {speedup:.2}x < 3x at batch size {n}");
            failure = true;
        }
        batch_rows.push(format!(
            "{{\"batch\": {n}, \"looped_per_solve_secs\": {}, \
             \"batched_per_solve_secs\": {}, \"speedup\": {}, \"bit_identical\": {identical}}}",
            fmt_f64(looped_secs),
            fmt_f64(batched_secs),
            fmt_f64(speedup),
        ));
    }

    // 2. Executor scheduling overhead: the largest track set mapped over
    // the deterministic executor at 1/2/4/8 workers, against the plain
    // serial loop. Indexed slots make the merge order-independent, so any
    // worker count must reproduce the serial results bit-for-bit.
    let n = *batch_sizes.last().expect("batch axis non-empty");
    let tracks = synthesize_emitter_tracks(THETA, TC, REVISIT, n, passes, seed);
    let serial = solve_tracks_looped(&tracks);
    let serial_secs = time_per_call(reps, || solve_tracks_looped(&tracks));
    let solver = WlsSolver::new();
    let mut exec_rows = Vec::new();
    for &w in &[1usize, 2, 4, 8] {
        let mut exec = Executor::new(w);
        if let Some(c) = chunk {
            exec = exec.with_chunk(c);
        }
        let run = || exec.map_indexed(&tracks, |t| solver.solve_obs(&t.observations, t.x0));
        let fanned = run();
        let identical = results_identical(&fanned, &serial);
        if !identical {
            eprintln!("# DIVERGENCE: {w} executor workers disagree with the serial loop");
            failure = true;
        }
        let secs = time_per_call(reps, run);
        let speedup = serial_secs / secs;
        eprintln!(
            "# executor {w} workers ({n} tracks): {:.1} ms, {speedup:.2}x vs serial, \
             identical={identical}",
            secs * 1e3,
        );
        exec_rows.push(format!(
            "{{\"workers\": {w}, \"secs\": {}, \"speedup\": {}, \"bit_identical\": {identical}}}",
            fmt_f64(secs),
            fmt_f64(speedup),
        ));
    }

    println!(
        "{{\n  \"experiment\": \"geoloc_batch\",\n  \"quick\": {quick},\n  \
         \"cores\": {cores},\n  \"seed\": {seed},\n  \"passes\": {passes},\n  \
         \"scenario\": {{\"theta_min\": {THETA}, \"tc_min\": {TC}, \"revisit_min\": {REVISIT}}},\n  \
         \"batch_curve\": [{}],\n  \
         \"executor_overhead\": {{\"tracks\": {n}, \"serial_secs\": {}, \"workers\": [{}]}}\n}}",
        batch_rows.join(", "),
        fmt_f64(serial_secs),
        exec_rows.join(", "),
    );

    if failure {
        eprintln!("# BATCH SOLVER CONTRACT VIOLATED: divergence or throughput miss (see above)");
        std::process::exit(1);
    }
}
