//! Experiment E11 — ablations of the modeling and design choices DESIGN.md
//! calls out:
//!   1. spare-policy reading (pin-at-threshold vs full-restore-after-delay);
//!   2. Erlang order approximating the deterministic scheduled restore;
//!   3. done-chain vs backward messaging under fail-silent recruits.

use oaq_analytic::capacity::CapacityParams;
use oaq_bench::{banner, tsv_header, tsv_row};
use oaq_core::config::{ProtocolConfig, Scheme};
use oaq_core::protocol::Episode;
use oaq_core::qos_level::QosLevel;
use oaq_san::plane::{PlaneModelConfig, SparePolicy};
use oaq_san::sim::SteadyStateOptions;

const PHI: f64 = 30_000.0;

fn main() {
    banner("Ablation 1: spare-policy reading (lambda = 1e-4, eta = 10)");
    let opts = SteadyStateOptions {
        warmup: 5.0 * PHI,
        horizon: 400.0 * PHI,
        seed: 13,
    };
    let pin = PlaneModelConfig::reference(1e-4, PHI, 10)
        .build_sim()
        .capacity_distribution_sim(&opts);
    let launch = PlaneModelConfig {
        policy: SparePolicy::FullRestoreAfterDelay {
            mean_delay_hours: 5_000.0,
            erlang_shape: 2,
        },
        ..PlaneModelConfig::reference(1e-4, PHI, 10)
    }
    .build_sim()
    .capacity_distribution_sim(&opts);
    tsv_header(&["k", "pin_at_threshold", "full_restore_5000h"]);
    for k in (8..=14).rev() {
        tsv_row(k as f64, &[pin[k], launch[k]]);
    }
    println!("Only pin-at-threshold reproduces Figure 7's shape (no mass");
    println!("below eta, threshold mass dominant at high lambda).");

    banner("Ablation 2: Erlang order vs exact deterministic clock (lambda = 5e-5)");
    let exact = CapacityParams::reference(5e-5, PHI, 10)
        .distribution()
        .expect("solves");
    tsv_header(&["erlang_shape", "max_abs_err_P(k)"]);
    for shape in [1u32, 2, 4, 8, 16, 32, 64] {
        let d = PlaneModelConfig::reference(5e-5, PHI, 10)
            .build_markov(shape)
            .capacity_distribution_markov(200_000)
            .expect("solves");
        let err = (10..=14)
            .map(|k| (d[k] - exact[k]).abs())
            .fold(0.0_f64, f64::max);
        tsv_row(f64::from(shape), &[err]);
    }
    println!("Error falls roughly as 1/shape: the CV of Erlang(m) is 1/sqrt(m).");

    banner("Ablation 3: done-chain vs backward messaging, fail-silent recruit");
    let fwd = ProtocolConfig::reference(10, Scheme::Oaq);
    let mut bwd = fwd;
    bwd.backward_messaging = true;
    fwd.validate();
    let trials: u64 = 2000;
    for (label, cfg) in [("done-chain", fwd), ("backward", bwd)] {
        let mut lost = 0;
        let mut msgs = 0u64;
        for seed in 0..trials {
            let out = Episode::new(&cfg, seed).with_failure(1, 8.0).run(6.0, 20.0);
            msgs += out.messages_sent;
            if out.level == QosLevel::Missed {
                lost += 1;
            }
        }
        println!(
            "{label:>11}: lost alerts {}/{trials}, mean messages {:.2}",
            lost,
            msgs as f64 / trials as f64
        );
    }
    println!("The done-chain never loses an alert; backward messaging trades");
    println!("that guarantee for fewer messages (the paper's stated trade-off).");

    banner("Ablation 4: messaging-overhead gap vs the analytic idealization");
    // The analytic model sets δ = Tg = 0; the protocol pays them. Sweep δ
    // and watch the P(Y>=2 | k=10) gap grow.
    use oaq_analytic::geometry::PlaneGeometry;
    use oaq_analytic::qos::{conditional_qos, QosParams, Scheme as AScheme};
    use oaq_core::experiment::{estimate_conditional_qos, MonteCarloOptions};
    let exact = conditional_qos(
        AScheme::Oaq,
        &PlaneGeometry::reference(10),
        &QosParams::paper_defaults(0.2),
    )
    .p_at_least(2);
    tsv_header(&["delta_min", "protocol_P(Y>=2)", "analytic", "gap"]);
    for delta in [0.01, 0.1, 0.5, 1.0, 2.0] {
        let mut cfg = ProtocolConfig::reference(10, Scheme::Oaq);
        cfg.delta = delta;
        let est = estimate_conditional_qos(
            &cfg,
            &MonteCarloOptions {
                episodes: 20_000,
                mu: 0.2,
                seed: 4004,
            },
        );
        println!(
            "{delta}\t{:.4}\t{:.4}\t{:.4}",
            est.p_at_least(2),
            exact,
            (est.p_at_least(2) - exact).abs()
        );
    }
    println!("The idealization costs little at realistic crosslink delays");
    println!("(delta ~ 0.1 min) and visibly more as delta eats the deadline");
    println!("budget tau - (n*delta + Tg).");
}
