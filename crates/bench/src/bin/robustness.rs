//! Experiment E15 (analysis) — dependability of the OAQ protocol itself:
//! quality and timeliness under crosslink message loss and fail-silent
//! satellites. The paper argues the done-chain guarantees timely delivery
//! "with high probability"; this experiment quantifies that claim.

use oaq_bench::{banner, tsv_header};
use oaq_core::config::{ProtocolConfig, Scheme};
use oaq_core::protocol::Episode;
use oaq_core::qos_level::QosLevel;
use oaq_sim::SimRng;

struct Row {
    detected: u64,
    timely: u64,
    quality: u64,
    missed: u64,
}

fn run_grid(cfg: &ProtocolConfig, failed: &[usize], episodes: u64) -> Row {
    let mut rng = SimRng::seed_from(1515);
    let mut row = Row {
        detected: 0,
        timely: 0,
        quality: 0,
        missed: 0,
    };
    for seed in 0..episodes {
        // Failures break the pattern's symmetry, so births must sample the
        // FULL period θ (not one revisit slice as in the fault-free
        // experiments) to weight every satellite's window fairly.
        let birth = cfg.theta + rng.uniform(0.0, cfg.theta);
        let duration = rng.exp(0.2);
        let mut ep = Episode::new(cfg, seed);
        for &f in failed {
            ep = ep.with_failure(f, 0.0);
        }
        let out = ep.run(birth, duration);
        if out.level == QosLevel::Missed {
            row.missed += 1;
        } else {
            row.detected += 1;
            if out.deadline_met {
                row.timely += 1;
            }
            if out.level >= QosLevel::SequentialDual {
                row.quality += 1;
            }
        }
    }
    row
}

fn main() {
    let episodes = 10_000;
    banner("OAQ dependability: k = 10, tau = 5, mu = 0.2, 10k episodes/cell");
    tsv_header(&[
        "loss",
        "failed_sats",
        "P(detected)",
        "timeliness",
        "P(Y>=2|detected)",
    ]);
    for loss in [0.0, 0.1, 0.3, 0.5] {
        for failed in [vec![], vec![1], vec![1, 2], vec![1, 3, 5]] {
            let mut cfg = ProtocolConfig::reference(10, Scheme::Oaq);
            cfg.message_loss = loss;
            let r = run_grid(&cfg, &failed, episodes);
            let total = r.detected + r.missed;
            println!(
                "{loss}\t{}\t{:.4}\t{:.4}\t{:.4}",
                failed.len(),
                r.detected as f64 / total as f64,
                if r.detected == 0 {
                    1.0
                } else {
                    r.timely as f64 / r.detected as f64
                },
                if r.detected == 0 {
                    0.0
                } else {
                    r.quality as f64 / r.detected as f64
                },
            );
        }
    }
    println!("\nTimeliness holds at 1.0 whenever the *detecting* satellite");
    println!("survives: message loss and dead recruits only strip quality,");
    println!("never the alert. Dead satellites also open coverage holes,");
    println!("which shows up as P(detected) < 1 — a constellation-level");
    println!("effect the spare-deployment policies (Figure 7) exist to bound.");
}
