//! Experiment E15 — the fault-injection campaign: dependability of the OAQ
//! protocol under bursty/transient crosslink faults, node failures, and
//! reliable-delivery retry budgets.
//!
//! Sweeps loss probability × burst length × node-failure rate × retry
//! budget and emits one JSON document on stdout: per-cell tallies,
//! degradation curves ordered by fault intensity, and a seed-reproducible
//! trace dump for every violation of the by-τ minimal-QoS guarantee
//! (expected: none). Progress goes to stderr so stdout stays
//! machine-readable.
//!
//! Usage: `robustness [--quick] [--seed N] [--episodes N] [--workers N]`
//! `--quick` shrinks the grid and the per-cell episode count for CI.
//! `--workers` fans the whole grid across a deterministic replication
//! pool (0 = one per core); the output is bit-identical for any count.

use oaq_bench::args::CliSpec;
use oaq_bench::campaign::{campaign_json, run_grid_fanout, CellSpec, LossAxis};

fn main() {
    let cli = CliSpec::new("robustness")
        .switch("--quick", "shrink the grid and episode count for CI")
        .option("--seed", "N", "base RNG seed (default 1515)")
        .option("--episodes", "N", "episodes per cell")
        .option(
            "--workers",
            "N",
            "worker threads, 0 = all cores (default 1)",
        )
        .option(
            "--chunk",
            "N",
            "episodes per work chunk (default: adaptive)",
        )
        .parse();
    let quick = cli.has("--quick");
    let base_seed = cli.get_u64("--seed", 1515);
    let episodes = cli.get_u64("--episodes", if quick { 100 } else { 1500 });
    let workers = cli.get_usize("--workers", 1);
    let chunk = cli.get_chunk("--chunk");

    let losses: Vec<LossAxis> = if quick {
        vec![
            LossAxis::Iid { p: 0.0 },
            LossAxis::Iid { p: 0.2 },
            LossAxis::Bursty {
                marginal: 0.2,
                burst_len: 5.0,
            },
        ]
    } else {
        vec![
            LossAxis::Iid { p: 0.0 },
            LossAxis::Iid { p: 0.05 },
            LossAxis::Iid { p: 0.2 },
            LossAxis::Iid { p: 0.4 },
            LossAxis::Bursty {
                marginal: 0.2,
                burst_len: 3.0,
            },
            LossAxis::Bursty {
                marginal: 0.2,
                burst_len: 8.0,
            },
            LossAxis::Bursty {
                marginal: 0.4,
                burst_len: 5.0,
            },
        ]
    };
    let failure_rates: &[f64] = if quick { &[0.0, 0.2] } else { &[0.0, 0.1, 0.3] };
    let budgets: &[u32] = &[0, 1, 3];

    let total = losses.len() * failure_rates.len() * budgets.len();
    eprintln!(
        "# robustness campaign: {total} cells x {episodes} episodes (seed {base_seed}{})",
        if quick { ", quick" } else { "" }
    );

    let mut specs = Vec::with_capacity(total);
    for loss in &losses {
        for &rate in failure_rates {
            for &budget in budgets {
                specs.push(CellSpec {
                    loss: *loss,
                    node_failure_rate: rate,
                    retry_budget: budget,
                });
            }
        }
    }
    let cells = run_grid_fanout(&specs, episodes, base_seed, workers, chunk);
    for (done, out) in cells.iter().enumerate() {
        eprintln!(
            "#   [{}/{total}] {} fail={} budget={}: \
             quality {:.3}, timely {:.3}, guarantee {:.3} ({} violations)",
            done + 1,
            out.spec.loss.label(),
            out.spec.node_failure_rate,
            out.spec.retry_budget,
            out.quality_frac(),
            out.timely_frac(),
            out.guarantee_frac(),
            out.violations.len()
        );
    }

    let violations: usize = cells.iter().map(|c| c.violations.len()).sum();
    println!("{}", campaign_json(&cells, base_seed, episodes));
    if violations > 0 {
        eprintln!("# GUARANTEE VIOLATED in {violations} episode(s) — see the JSON trace dump");
        std::process::exit(1);
    }
    eprintln!("# guarantee held in every live-detector episode");
}
