//! Experiment E10 — sequential-localization accuracy: error vs number of
//! coordinating satellites and vs measurement noise. This is the physical
//! basis for the QoS spectrum (the paper's refs [4, 5]).

use oaq_bench::{banner, tsv_header, tsv_row};
use oaq_geoloc::emitter::Emitter;
use oaq_geoloc::scenario::PassScenario;
use oaq_geoloc::sequential::SequentialLocalizer;
use oaq_orbit::units::Degrees;
use oaq_orbit::GroundPoint;
use oaq_sim::stats::Tally;
use oaq_sim::SimRng;

fn run_trials(sigma_hz: f64, passes: usize, trials: u64) -> (f64, f64) {
    let emitter = Emitter::new(
        GroundPoint::from_degrees(Degrees(30.0), Degrees(25.0)),
        400.0e6,
    );
    let scenario = PassScenario::reference(&emitter).with_sigma_hz(sigma_hz);
    let mut actual = Tally::new();
    let mut reported = Tally::new();
    for seed in 0..trials {
        let mut rng = SimRng::seed_from(1000 + seed);
        let mut loc = SequentialLocalizer::new(emitter.initial_guess_nearby(1.0));
        for p in 0..passes {
            loc.add_pass(scenario.synthesize_pass(p, &mut rng));
        }
        if let Ok(est) = loc.estimate() {
            actual.record(est.position_error_km(&emitter.position()));
            reported.record(est.error_radius_km());
        }
    }
    (actual.mean(), reported.mean())
}

fn main() {
    banner("Sequential localization: error vs passes (sigma = 1 Hz, 30 trials)");
    tsv_header(&["passes", "mean_actual_km", "mean_reported_km"]);
    for passes in 1..=4 {
        let (actual, reported) = run_trials(1.0, passes, 30);
        tsv_row(passes as f64, &[actual, reported]);
    }

    banner("Error vs Doppler noise (2 passes, 30 trials)");
    tsv_header(&["sigma_hz", "mean_actual_km", "mean_reported_km"]);
    for sigma in [0.1, 0.5, 1.0, 2.0, 5.0] {
        let (actual, reported) = run_trials(sigma, 2, 30);
        tsv_row(sigma, &[actual, reported]);
    }

    println!("\nThe single-pass row carries the classic cross-track ambiguity");
    println!("(reported error far above the multi-pass rows); the second pass");
    println!("collapses it — the accuracy jump OAQ converts into QoS level 2.");
}
