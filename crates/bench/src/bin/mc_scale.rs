//! Experiment E24 — the zero-allocation episode engine at
//! mega-constellation scale, with its performance contract enforced.
//!
//! Three gated sections, JSON on stdout (progress on stderr), non-zero
//! exit on any miss:
//!
//! 1. **throughput_gate** — the paper-scale campaign cell (E15's reference
//!    fault mix, k = 10) must run serially at ≥2× the per-episode
//!    throughput the pre-optimization engine recorded in BENCH_sim.json
//!    (3.375 µs/episode, i.e. at most 1.6875 µs/episode now). The gate
//!    takes the *minimum* over several timed repetitions: wall-clock noise
//!    on a shared box only ever slows a run down, so the minimum is the
//!    honest estimate of what the engine does.
//! 2. **bit_identity** — the campaign cell, the conditional-QoS estimator,
//!    and a membership-assisted recruitment aggregate are each replayed
//!    across every worker count × chunk size × forced-steal combination
//!    and must reproduce the serial answer bit-for-bit.
//! 3. **starlink** — a 1584-node Starlink-preset (72 × 22 delta) fault
//!    campaign: the Walker phases define the coverage geometry, violations
//!    stay seed-replayable (the scenario replay is run twice and compared),
//!    the whole campaign must finish under the bench budget, and the
//!    closed-form high-latitude ISL outage schedule is swept over one
//!    orbit period to report cross-plane connectivity.
//!
//! Usage: `mc_scale [--quick] [--seed N] [--episodes N] [--chunk N]`

use std::f64::consts::TAU;
use std::time::Instant;

use oaq_bench::args::CliSpec;
use oaq_bench::campaign::{
    replay_episode_scenario, run_cell_scenario, CellOutcome, CellSpec, LossAxis, Scenario,
};
use oaq_core::config::{MembershipHints, ProtocolConfig, Scheme};
use oaq_core::experiment::{estimate_conditional_qos_stressed, MonteCarloOptions};
use oaq_core::protocol::{Episode, EpisodeScratch};
use oaq_core::qos_level::QosLevel;
use oaq_core::signal::CoverageGeometry;
use oaq_engine::report::fmt_f64;
use oaq_net::topology::BfsScratch;
use oaq_net::{LinkEvent, NodeId, Topology, TopologySchedule};
use oaq_orbit::{cross_plane_outages, Degrees, Preset};
use oaq_sim::par::{Merge, Replicator};
use oaq_sim::rng::substream_seed;

/// Per-episode fastpath cost recorded by `mc_replication` in the
/// checked-in BENCH_sim.json before the zero-allocation engine pass
/// (6.74975 ms / 2000 episodes). The gate requires beating half of it.
const BASELINE_US_PER_EPISODE: f64 = 3.375;

/// Wall-clock budget for the full Starlink campaign section.
const STARLINK_BUDGET_SECS: f64 = 120.0;

/// Minimum observed seconds per call of `f` over `reps` repetitions — the
/// noise-robust point estimate for a deterministic workload.
fn min_time_per_call<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        std::hint::black_box(f());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// Full bit-identity of two cell outcomes: every tally, every violation
/// record, every trace line.
fn cells_identical(a: &CellOutcome, b: &CellOutcome) -> bool {
    a.episodes == b.episodes
        && a.detected == b.detected
        && a.timely == b.timely
        && a.quality == b.quality
        && a.live_detector == b.live_detector
        && a.live_detector_timely == b.live_detector_timely
        && a.violations.len() == b.violations.len()
        && a.violations.iter().zip(&b.violations).all(|(x, y)| {
            x.episode == y.episode
                && x.seed == y.seed
                && x.detector == y.detector
                && x.outcome == y.outcome
                && x.trace == y.trace
        })
}

/// Membership-assisted recruitment tallies (all-integer → exact merge).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct RecruitSink {
    seq: u64,
    missed: u64,
    msgs: u64,
}

impl Merge for RecruitSink {
    fn merge(&mut self, other: &Self) {
        self.seq.merge(&other.seq);
        self.missed.merge(&other.missed);
        self.msgs.merge(&other.msgs);
    }
}

/// The membership-assisted recruitment aggregate (E12's assisted variant)
/// under an arbitrary scheduling configuration.
fn run_membership(
    cfg: &ProtocolConfig,
    episodes: u64,
    base_seed: u64,
    workers: usize,
    chunk: Option<u64>,
    forced: bool,
) -> RecruitSink {
    Replicator::new(workers)
        .with_chunk_override(chunk)
        .with_forced_steals(forced)
        .run_scratch(
            episodes,
            base_seed,
            RecruitSink::default,
            EpisodeScratch::new,
            |i, rng, scratch, sink| {
                let birth = 90.0 + rng.uniform(0.0, 10.0);
                let seed = substream_seed(base_seed, i).wrapping_add(1);
                let mut ep = Episode::new(cfg, seed);
                ep.add_failure(1, 0.0);
                let out = ep.run_scratch(birth, 15.0, scratch);
                if out.level >= QosLevel::SequentialDual {
                    sink.seq += 1;
                }
                if out.level == QosLevel::Missed {
                    sink.missed += 1;
                }
                sink.msgs += out.messages_sent;
            },
        )
}

/// The Starlink shell-1 coverage geometry: satellite `(p, s)` (node
/// `p·S + s`) reaches the target `θ·phase/2π` minutes into the period,
/// where `phase` is the Walker builder's phase convention
/// (`2π·F·p/T + 2π·s/S`).
fn starlink_geometry() -> CoverageGeometry {
    let w = Preset::Starlink.config();
    let total = w.total_satellites();
    let theta = w.period.value();
    let offsets: Vec<f64> = (0..w.planes)
        .flat_map(|p| (0..w.satellites_per_plane).map(move |s| (p, s)))
        .map(|(p, s)| {
            let phase = (TAU * (w.phasing_factor * p) as f64 / total as f64
                + TAU * s as f64 / w.satellites_per_plane as f64)
                % TAU;
            theta * phase / TAU
        })
        .collect();
    CoverageGeometry::with_offsets(offsets, theta, w.coverage_time.value())
}

fn main() {
    let cli = CliSpec::new("mc_scale")
        .switch("--quick", "fewer episodes and reps (CI size)")
        .option("--seed", "N", "base RNG seed (default 1515)")
        .option("--episodes", "N", "episodes in the gated campaign cell")
        .option(
            "--chunk",
            "N",
            "episodes per work chunk (default: adaptive)",
        )
        .parse();
    let quick = cli.has("--quick");
    let seed = cli.get_u64("--seed", 1515);
    let episodes = cli.get_u64("--episodes", if quick { 1000 } else { 2000 });
    let chunk = cli.get_chunk("--chunk");
    let reps = if quick { 3 } else { 5 };
    let cores = std::thread::available_parallelism().map_or(1, usize::from);

    let mut miss = false;

    // ── 1. Serial per-episode throughput gate ────────────────────────────
    let base = ProtocolConfig::reference(10, Scheme::Oaq);
    let spec = CellSpec {
        loss: LossAxis::Iid { p: 0.2 },
        node_failure_rate: 0.25,
        retry_budget: 1,
    };
    let serial = Scenario::new(&base, 1);
    // Warm the per-worker scratch (geometry, topology, buffers) once so the
    // timed repetitions measure the steady state the campaign runs in.
    let reference = run_cell_scenario(&serial, &spec, episodes, seed);
    let gate_secs = min_time_per_call(reps, || run_cell_scenario(&serial, &spec, episodes, seed));
    let gate_us = gate_secs * 1e6 / episodes as f64;
    let required_us = BASELINE_US_PER_EPISODE / 2.0;
    let gate_pass = gate_us <= required_us;
    eprintln!(
        "# throughput_gate: {gate_us:.3} us/episode (min of {reps} x {episodes} episodes), \
         required <= {required_us:.4} ({:.2}x vs baseline {BASELINE_US_PER_EPISODE}) -> {}",
        BASELINE_US_PER_EPISODE / gate_us,
        if gate_pass { "PASS" } else { "MISS" },
    );
    if !gate_pass {
        eprintln!("# GATE MISS: serial throughput below 2x the recorded baseline");
        miss = true;
    }

    // ── 2. Bit-identity across every scheduling configuration ────────────
    let qos_cfg = ProtocolConfig::reference(9, Scheme::Oaq);
    let qos_opts = MonteCarloOptions {
        episodes: usize::try_from(episodes).expect("episode count fits usize"),
        mu: 0.5,
        seed,
    };
    let mut mem_cfg = ProtocolConfig::reference(9, Scheme::Oaq);
    mem_cfg.tau = 25.0;
    mem_cfg.membership = Some(MembershipHints::default());
    let mem_episodes = episodes / 2;

    let qos_ref = estimate_conditional_qos_stressed(&qos_cfg, &qos_opts, 1, None, false);
    let mem_ref = run_membership(&mem_cfg, mem_episodes, seed, 1, None, false);

    let mut configs = 0u32;
    let (mut campaign_ok, mut qos_ok, mut mem_ok) = (true, true, true);
    for &workers in &[1usize, 2, 4, 8] {
        for &chunk_cfg in &[None, Some(16u64), chunk.or(Some(7))] {
            for &forced in &[false, true] {
                configs += 1;
                let scen = Scenario::new(&base, workers)
                    .with_chunk(chunk_cfg)
                    .with_forced_steals(forced);
                if !cells_identical(&run_cell_scenario(&scen, &spec, episodes, seed), &reference) {
                    eprintln!(
                        "# DIVERGENCE campaign: workers={workers} chunk={chunk_cfg:?} forced={forced}"
                    );
                    campaign_ok = false;
                }
                if estimate_conditional_qos_stressed(
                    &qos_cfg, &qos_opts, workers, chunk_cfg, forced,
                ) != qos_ref
                {
                    eprintln!(
                        "# DIVERGENCE qos: workers={workers} chunk={chunk_cfg:?} forced={forced}"
                    );
                    qos_ok = false;
                }
                if run_membership(&mem_cfg, mem_episodes, seed, workers, chunk_cfg, forced)
                    != mem_ref
                {
                    eprintln!(
                        "# DIVERGENCE membership: workers={workers} chunk={chunk_cfg:?} forced={forced}"
                    );
                    mem_ok = false;
                }
            }
        }
    }
    let identity_pass = campaign_ok && qos_ok && mem_ok;
    eprintln!(
        "# bit_identity: {configs} scheduling configs, campaign={campaign_ok} qos={qos_ok} \
         membership={mem_ok}"
    );
    if !identity_pass {
        eprintln!("# GATE MISS: a scheduling configuration changed an answer");
        miss = true;
    }

    // ── 3. Starlink-preset 1584-node campaign + ISL outage sweep ─────────
    let walker = Preset::Starlink.config();
    let nodes = walker.total_satellites();
    let geometry = starlink_geometry();
    let mut starlink_cfg = ProtocolConfig::reference(nodes, Scheme::Oaq);
    starlink_cfg.theta = walker.period.value();
    starlink_cfg.tc = walker.coverage_time.value();
    let starlink_spec = CellSpec {
        loss: LossAxis::Iid { p: 0.2 },
        node_failure_rate: 0.02,
        retry_budget: 1,
    };
    let starlink_episodes = if quick { 200 } else { 1000 };
    let scen = Scenario::new(&starlink_cfg, 0).with_geometry(&geometry);
    let t0 = Instant::now();
    let starlink = run_cell_scenario(&scen, &starlink_spec, starlink_episodes, seed);
    let starlink_secs = t0.elapsed().as_secs_f64();
    let under_budget = starlink_secs <= STARLINK_BUDGET_SECS;
    // Seed-replayability: re-derive episodes purely from
    // (scenario, spec, seed, index) twice — trace and outcome must agree
    // with themselves and, for a recorded violation, with its record. The
    // guarantee holding (zero violations) is the campaign's acceptance
    // property, so the replay contract is exercised on fixed probe episodes
    // plus the first recorded violation when one exists.
    let mut probes = vec![0, starlink_episodes / 2, starlink_episodes - 1];
    if let Some(v) = starlink.violations.first() {
        probes.push(v.episode);
    }
    let mut replay_ok = true;
    for &probe in &probes {
        let (out_a, trace_a) = replay_episode_scenario(&scen, &starlink_spec, seed, probe);
        let (out_b, trace_b) = replay_episode_scenario(&scen, &starlink_spec, seed, probe);
        replay_ok &= out_a == out_b && trace_a == trace_b;
        if let Some(v) = starlink.violations.first() {
            if v.episode == probe {
                replay_ok &= v.outcome == format!("{out_a:?}") && v.trace == trace_a;
            }
        }
    }
    eprintln!(
        "# starlink: {nodes} nodes, {starlink_episodes} episodes in {starlink_secs:.1} s \
         ({:.1} us/episode), detected {}, violations {}, replay_identical={replay_ok}, \
         under_budget={under_budget}",
        starlink_secs * 1e6 / starlink_episodes as f64,
        starlink.detected,
        starlink.violations.len(),
    );
    if !(under_budget && replay_ok) {
        eprintln!("# GATE MISS: Starlink campaign over budget or replay diverged");
        miss = true;
    }

    // Cross-plane ISL outage schedule over one period: in-plane rings plus
    // same-slot cross-plane links, seam windows from the closed form.
    let horizon = walker.period;
    let outages = cross_plane_outages(&walker, Degrees(48.0).to_radians(), horizon);
    let node = |p: usize, s: usize| NodeId((p * walker.satellites_per_plane + s) as u32);
    let mut topo = Topology::new();
    for p in 0..walker.planes {
        for s in 0..walker.satellites_per_plane {
            topo.link(node(p, s), node(p, (s + 1) % walker.satellites_per_plane));
            topo.link(node(p, s), node((p + 1) % walker.planes, s));
        }
    }
    let links = walker.planes * walker.satellites_per_plane * 2;
    let mut events = Vec::with_capacity(outages.len() * 2);
    for o in &outages {
        let (a, b) = (node(o.plane_a, o.slot_a), node(o.plane_b, o.slot_b));
        events.push(LinkEvent {
            t: o.start.value(),
            a,
            b,
            up: false,
        });
        // Windows are clipped to the horizon, so every down edge comes back.
        events.push(LinkEvent {
            t: o.end.value(),
            a,
            b,
            up: true,
        });
    }
    let event_count = events.len();
    let mut schedule = TopologySchedule::new(events);
    let mut bfs = BfsScratch::new();
    let all_alive = |_: NodeId| true;
    let (mut min_reach, mut max_reach) = (usize::MAX, 0usize);
    let stride = if quick { 16 } else { 1 };
    let mut applied = 0usize;
    while let Some(t) = schedule.next_event_time() {
        schedule.advance(&mut topo, t);
        applied += 1;
        if !applied.is_multiple_of(stride) {
            continue;
        }
        let reach = topo.reachable_with(node(0, 0), all_alive, &mut bfs);
        min_reach = min_reach.min(reach);
        max_reach = max_reach.max(reach);
    }
    eprintln!(
        "# isl_schedule: {links} links, {event_count} events over one period, \
         reachable {min_reach}..{max_reach} of {nodes}"
    );

    println!(
        "{{\n  \"experiment\": \"mc_scale\",\n  \"quick\": {quick},\n  \"cores\": {cores},\n  \
         \"seed\": {seed},\n  \
         \"throughput_gate\": {{\"episodes\": {episodes}, \"reps\": {reps}, \
         \"baseline_us_per_episode\": {}, \"required_us_per_episode\": {}, \
         \"us_per_episode\": {}, \"speedup_vs_baseline\": {}, \"pass\": {gate_pass}, \
         \"cell\": {{\"detected\": {}, \"timely\": {}, \"quality\": {}, \
         \"live_detector\": {}}}}},\n  \
         \"bit_identity\": {{\"configs\": {configs}, \"campaign\": {campaign_ok}, \
         \"qos\": {qos_ok}, \"membership\": {mem_ok}, \"pass\": {identity_pass}, \
         \"membership_tallies\": {{\"seq\": {}, \"missed\": {}, \"msgs\": {}}}}},\n  \
         \"starlink\": {{\"nodes\": {nodes}, \"episodes\": {starlink_episodes}, \
         \"secs\": {}, \"us_per_episode\": {}, \"detected\": {}, \"violations\": {}, \
         \"replay_identical\": {replay_ok}, \"budget_secs\": {}, \
         \"under_budget\": {under_budget}, \
         \"isl_schedule\": {{\"links\": {links}, \"events\": {event_count}, \
         \"min_reachable\": {min_reach}, \"max_reachable\": {max_reach}}}}}\n}}",
        fmt_f64(BASELINE_US_PER_EPISODE),
        fmt_f64(required_us),
        fmt_f64(gate_us),
        fmt_f64(BASELINE_US_PER_EPISODE / gate_us),
        reference.detected,
        reference.timely,
        reference.quality,
        reference.live_detector,
        mem_ref.seq,
        mem_ref.missed,
        mem_ref.msgs,
        fmt_f64(starlink_secs),
        fmt_f64(starlink_secs * 1e6 / starlink_episodes as f64),
        starlink.detected,
        starlink.violations.len(),
        fmt_f64(STARLINK_BUDGET_SECS),
    );

    if miss {
        eprintln!("# MC_SCALE GATE FAILED");
        std::process::exit(1);
    }
}
