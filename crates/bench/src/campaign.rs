//! Fault-injection campaign engine (experiment E15).
//!
//! Sweeps the OAQ protocol across a grid of fault mixes — i.i.d. and
//! bursty crosslink loss, random node failures (permanent and
//! crash-recovery), and reliable-delivery retry budgets — and tallies the
//! resulting degradation curves. Every episode's fault plan is derived
//! deterministically from `(cell, episode index)`, so a reported guarantee
//! violation can be replayed bit-for-bit from its seed; the campaign dumps
//! the full protocol trace of each violation for exactly that purpose.
//!
//! The invariant under test: *an episode whose detector stays alive
//! through `[t0, t0 + τ]` delivers at least the minimal-QoS (single
//! coverage) alert by τ*, whatever the fault mix does to quality.

use oaq_core::config::{ProtocolConfig, Scheme};
use oaq_core::protocol::{Episode, EpisodeScratch};
use oaq_core::qos_level::{EpisodeOutcome, QosLevel};
use oaq_core::signal::CoverageGeometry;
use oaq_net::GilbertElliott;
use oaq_sim::par::{Merge, Replicator};
use oaq_sim::rng::substream_seed;
use oaq_sim::SimRng;

/// The loss process of one campaign cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LossAxis {
    /// Independent per-message loss with probability `p`.
    Iid {
        /// Loss probability, `[0, 1)`.
        p: f64,
    },
    /// Gilbert–Elliott bursty loss tuned to a marginal rate.
    Bursty {
        /// Long-run (stationary) loss probability.
        marginal: f64,
        /// Mean burst length, messages.
        burst_len: f64,
    },
}

impl LossAxis {
    /// The long-run fraction of messages lost — the cell's fault intensity
    /// along the loss axis.
    #[must_use]
    pub fn marginal(&self) -> f64 {
        match *self {
            LossAxis::Iid { p } => p,
            LossAxis::Bursty { marginal, .. } => marginal,
        }
    }

    /// Mean burst length (0 for i.i.d. loss).
    #[must_use]
    pub fn burst_len(&self) -> f64 {
        match *self {
            LossAxis::Iid { .. } => 0.0,
            LossAxis::Bursty { burst_len, .. } => burst_len,
        }
    }

    /// A short label for tables and JSON.
    #[must_use]
    pub fn label(&self) -> String {
        match *self {
            LossAxis::Iid { p } => format!("iid({p})"),
            LossAxis::Bursty {
                marginal,
                burst_len,
            } => {
                format!("bursty({marginal},len={burst_len})")
            }
        }
    }

    fn apply(&self, cfg: &mut ProtocolConfig) {
        match *self {
            LossAxis::Iid { p } => cfg.message_loss = p,
            LossAxis::Bursty {
                marginal,
                burst_len,
            } => {
                // With loss_bad = 1 and a lossless good state the marginal
                // rate is π_bad = enter/(enter + 1/len), so
                // enter = m / (len (1 − m)).
                let enter = marginal / (burst_len * (1.0 - marginal));
                cfg.bursty_loss = Some(
                    GilbertElliott::bursts(enter, burst_len, 1.0)
                        .expect("campaign burst parameters in range"),
                );
            }
        }
    }
}

/// One cell of the campaign grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellSpec {
    /// Crosslink loss process.
    pub loss: LossAxis,
    /// Probability each satellite independently receives a failure (half
    /// permanent fail-silent, half crash-recovery windows).
    pub node_failure_rate: f64,
    /// Reliable-delivery retry budget (0 = plain fire-and-forget).
    pub retry_budget: u32,
}

/// A replayable record of one guarantee violation.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Episode index within the cell.
    pub episode: u64,
    /// The exact simulator seed (fault plan = `seed + 1`'s stream).
    pub seed: u64,
    /// The detecting satellite that stayed alive yet missed τ.
    pub detector: usize,
    /// Debug rendering of the outcome.
    pub outcome: String,
    /// The full protocol trace, one rendered line per event.
    pub trace: Vec<String>,
}

/// Tallies of one campaign cell.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// The swept parameters.
    pub spec: CellSpec,
    /// Episodes simulated.
    pub episodes: u64,
    /// Episodes where the signal was detected at all.
    pub detected: u64,
    /// Detected episodes delivering by τ.
    pub timely: u64,
    /// Detected episodes reaching dual coverage or better.
    pub quality: u64,
    /// Detected episodes whose detector stayed alive through `[t0, t0+τ]`.
    pub live_detector: u64,
    /// Live-detector episodes delivering at least `Single` by τ.
    pub live_detector_timely: u64,
    /// Live-detector episodes that missed the guarantee (should be empty).
    pub violations: Vec<Violation>,
}

impl CellOutcome {
    /// Fraction of detected episodes reaching dual coverage or better.
    #[must_use]
    pub fn quality_frac(&self) -> f64 {
        if self.detected == 0 {
            0.0
        } else {
            self.quality as f64 / self.detected as f64
        }
    }

    /// Fraction of detected episodes delivering by τ.
    #[must_use]
    pub fn timely_frac(&self) -> f64 {
        if self.detected == 0 {
            1.0
        } else {
            self.timely as f64 / self.detected as f64
        }
    }

    /// Fraction of live-detector episodes meeting the by-τ guarantee.
    #[must_use]
    pub fn guarantee_frac(&self) -> f64 {
        if self.live_detector == 0 {
            1.0
        } else {
            self.live_detector_timely as f64 / self.live_detector as f64
        }
    }
}

/// Mixes an episode index into the campaign seed (splitmix-style).
///
/// Delegates to the simulator's counter-based substream derivation
/// ([`oaq_sim::rng::substream_seed`]), which uses the identical mixing
/// function this module originally shipped with — every seed recorded in a
/// published violation report stays replayable bit-for-bit.
#[must_use]
pub fn episode_seed(base: u64, episode: u64) -> u64 {
    substream_seed(base, episode)
}

/// The failure plan drawn for one episode: `(sat, from, until)`, with
/// `until = None` for permanent fail-silence.
type FailurePlan = Vec<(usize, f64, Option<f64>)>;

fn draw_plan(
    cfg: &ProtocolConfig,
    rate: f64,
    birth: f64,
    rng: &mut SimRng,
    plan: &mut FailurePlan,
) {
    plan.clear();
    for sat in 0..cfg.k {
        if !rng.chance(rate) {
            continue;
        }
        let from = rng.uniform(0.0, birth + cfg.tau);
        if rng.chance(0.5) {
            plan.push((sat, from, None));
        } else {
            // Crash-recovery: down for an Exp(0.2) window (mean 5 min).
            let len = rng.exp(0.2).max(1e-3);
            plan.push((sat, from, Some(from + len)));
        }
    }
}

fn apply_plan(mut ep: Episode, plan: &FailurePlan) -> Episode {
    for &(sat, from, until) in plan {
        ep = match until {
            None => ep.with_failure(sat, from),
            Some(u) => ep.with_failure_window(sat, from, u),
        };
    }
    ep
}

/// `true` when the plan leaves `sat` untouched over `[t0, t0 + tau]`.
fn stays_alive(plan: &FailurePlan, sat: usize, t0: f64, tau: f64) -> bool {
    plan.iter()
        .all(|&(s, from, until)| s != sat || from > t0 + tau || until.is_some_and(|u| u <= t0))
}

/// The protocol configuration of one campaign cell (reference k = 10
/// plane with the cell's fault mix applied).
fn cell_config(spec: &CellSpec) -> ProtocolConfig {
    cell_config_from(&ProtocolConfig::reference(10, Scheme::Oaq), spec)
}

/// Applies one cell's fault mix on top of an arbitrary base scenario —
/// the generalization behind [`cell_config`] that lets a campaign sweep a
/// Walker-preset mega-constellation instead of the reference plane.
fn cell_config_from(base: &ProtocolConfig, spec: &CellSpec) -> ProtocolConfig {
    let mut cfg = *base;
    spec.loss.apply(&mut cfg);
    cfg.retry_budget = spec.retry_budget;
    cfg.retry_timeout = 0.25;
    cfg.validate();
    cfg
}

/// The constellation a campaign runs against plus the scheduler knobs of
/// one run: a base protocol configuration (each cell's fault mix is
/// applied on top), an optional explicit coverage geometry for
/// non-reference constellations (e.g. a Walker/Starlink preset), and the
/// worker/chunk/steal configuration. [`run_cell_workers`] is the
/// reference-plane shorthand for `Scenario::reference(workers)`.
#[derive(Debug, Clone, Copy)]
pub struct Scenario<'a> {
    /// Base protocol configuration (fault-free; cells overlay their mix).
    pub base: &'a ProtocolConfig,
    /// Explicit coverage geometry, `None` = derive from `base` (reference
    /// evenly-spaced plane).
    pub geometry: Option<&'a CoverageGeometry>,
    /// Worker threads (`0` = one per core).
    pub workers: usize,
    /// Episodes per work chunk (`None` = adaptive).
    pub chunk: Option<u64>,
    /// Switch on the scheduler's forced-steal stressor (cannot change any
    /// outcome — that is the contract the invariance tests pin down).
    pub forced_steals: bool,
}

impl<'a> Scenario<'a> {
    /// A scenario over `base` with default scheduling (adaptive chunks, no
    /// forced steals).
    #[must_use]
    pub fn new(base: &'a ProtocolConfig, workers: usize) -> Self {
        Scenario {
            base,
            geometry: None,
            workers,
            chunk: None,
            forced_steals: false,
        }
    }

    /// Attaches an explicit coverage geometry (Walker presets etc.).
    #[must_use]
    pub fn with_geometry(mut self, geometry: &'a CoverageGeometry) -> Self {
        self.geometry = Some(geometry);
        self
    }

    /// Overrides the chunk size.
    #[must_use]
    pub fn with_chunk(mut self, chunk: Option<u64>) -> Self {
        self.chunk = chunk;
        self
    }

    /// Switches the forced-steal stressor on or off.
    #[must_use]
    pub fn with_forced_steals(mut self, forced: bool) -> Self {
        self.forced_steals = forced;
        self
    }
}

/// Derives episode `i`'s `(seed, birth, duration, fault plan)` from the
/// campaign seed alone — the single code path behind the serial loop, the
/// parallel fan-out, and violation replay.
fn episode_setup(
    cfg: &ProtocolConfig,
    spec: &CellSpec,
    base_seed: u64,
    i: u64,
) -> (u64, f64, f64, FailurePlan) {
    let mut plan = Vec::new();
    let (seed, birth, duration) = episode_setup_into(cfg, spec, base_seed, i, &mut plan);
    (seed, birth, duration, plan)
}

/// [`episode_setup`] writing the fault plan into a recycled buffer, so the
/// campaign hot loop draws each episode's plan without allocating.
fn episode_setup_into(
    cfg: &ProtocolConfig,
    spec: &CellSpec,
    base_seed: u64,
    i: u64,
    plan: &mut FailurePlan,
) -> (u64, f64, f64) {
    let seed = episode_seed(base_seed, i);
    // The fault plan draws from an offset stream so it stays
    // independent of (but reproducible with) the episode's own RNG.
    let mut plan_rng = SimRng::seed_from(seed.wrapping_add(1));
    let birth = cfg.theta + plan_rng.uniform(0.0, cfg.theta);
    let duration = plan_rng.exp(0.2);
    draw_plan(cfg, spec.node_failure_rate, birth, &mut plan_rng, plan);
    (seed, birth, duration)
}

/// Per-chunk campaign tallies; all-integer plus an order-preserving
/// violation list, so the parallel reduction is exact.
#[derive(Debug, Clone, Default)]
struct CellSink {
    detected: u64,
    timely: u64,
    quality: u64,
    live_detector: u64,
    live_detector_timely: u64,
    violations: Vec<Violation>,
}

impl Merge for CellSink {
    fn merge(&mut self, other: &Self) {
        self.detected.merge(&other.detected);
        self.timely.merge(&other.timely);
        self.quality.merge(&other.quality);
        self.live_detector.merge(&other.live_detector);
        self.live_detector_timely.merge(&other.live_detector_timely);
        self.violations.merge(&other.violations);
    }
}

impl CellSink {
    fn into_outcome(self, spec: &CellSpec, episodes: u64) -> CellOutcome {
        CellOutcome {
            spec: *spec,
            episodes,
            detected: self.detected,
            timely: self.timely,
            quality: self.quality,
            live_detector: self.live_detector,
            live_detector_timely: self.live_detector_timely,
            violations: self.violations,
        }
    }
}

/// Per-worker campaign scratch: the core episode buffers plus a recycled
/// [`Episode`] (keeping its geometry clone and fault-list capacity) and the
/// drawn fault plan — together they make the cell hot loop allocation-free.
#[derive(Default)]
struct CellScratch {
    scratch: EpisodeScratch,
    episode: Option<Episode>,
    plan: FailurePlan,
}

/// Runs episode `i` of a cell on the untraced fast path and tallies it.
///
/// Tracing is only needed for the (normally empty) violation set, so the
/// hot loop skips it entirely; a violating episode is re-run traced from
/// its recorded seed — bit-identical by construction — to capture the
/// replayable record.
fn run_episode(
    cfg: &ProtocolConfig,
    geometry: Option<&CoverageGeometry>,
    spec: &CellSpec,
    base_seed: u64,
    i: u64,
    cell: &mut CellScratch,
    sink: &mut CellSink,
) {
    let CellScratch {
        scratch,
        episode,
        plan,
    } = cell;
    let (seed, birth, duration) = episode_setup_into(cfg, spec, base_seed, i, plan);
    // One `Episode` per worker, re-armed in place each iteration: its
    // geometry clone and fault lists persist across episodes.
    let ep = episode.get_or_insert_with(|| build_episode(cfg, geometry, seed));
    ep.reset(cfg, seed);
    for &(sat, from, until) in plan.iter() {
        match until {
            None => ep.add_failure(sat, from),
            Some(u) => ep.add_failure_window(sat, from, u),
        }
    }
    let result = ep.run_scratch(birth, duration, scratch);
    let (Some(t0), Some(detector)) = (result.detected_at, result.detector) else {
        return;
    };
    sink.detected += 1;
    if result.deadline_met {
        sink.timely += 1;
    }
    if result.level >= QosLevel::SequentialDual {
        sink.quality += 1;
    }
    if stays_alive(plan, detector, t0, cfg.tau) {
        sink.live_detector += 1;
        let guaranteed = result.deadline_met && result.level >= QosLevel::Single;
        if guaranteed {
            sink.live_detector_timely += 1;
        } else {
            let (replayed, trace) = replay_with(cfg, geometry, spec, base_seed, i);
            debug_assert_eq!(
                replayed, result,
                "traced replay must agree with the fast path"
            );
            sink.violations.push(Violation {
                episode: i,
                seed,
                detector,
                outcome: format!("{result:?}"),
                trace,
            });
        }
    }
}

/// Builds the episode for one cell run, attaching the scenario's explicit
/// geometry when it has one.
fn build_episode(cfg: &ProtocolConfig, geometry: Option<&CoverageGeometry>, seed: u64) -> Episode {
    let ep = Episode::new(cfg, seed);
    match geometry {
        Some(g) => ep.with_geometry(g.clone()),
        None => ep,
    }
}

/// Re-runs one campaign episode with full tracing enabled.
///
/// This is the replay path behind every [`Violation`] record: the episode
/// is reconstructed purely from `(spec, base_seed, episode)`, so a
/// violation reported by any past campaign run — serial or parallel — can
/// be reproduced bit-for-bit, trace and all.
#[must_use]
pub fn replay_episode(
    spec: &CellSpec,
    base_seed: u64,
    episode: u64,
) -> (EpisodeOutcome, Vec<String>) {
    replay_with(&cell_config(spec), None, spec, base_seed, episode)
}

/// [`replay_episode`] against an arbitrary scenario: the cell config is
/// rebuilt from `scenario.base` and the scenario's geometry (if any) is
/// re-attached, so violations reported by a mega-constellation campaign
/// replay bit-for-bit too.
#[must_use]
pub fn replay_episode_scenario(
    scenario: &Scenario<'_>,
    spec: &CellSpec,
    base_seed: u64,
    episode: u64,
) -> (EpisodeOutcome, Vec<String>) {
    replay_with(
        &cell_config_from(scenario.base, spec),
        scenario.geometry,
        spec,
        base_seed,
        episode,
    )
}

fn replay_with(
    cfg: &ProtocolConfig,
    geometry: Option<&CoverageGeometry>,
    spec: &CellSpec,
    base_seed: u64,
    episode: u64,
) -> (EpisodeOutcome, Vec<String>) {
    let (seed, birth, duration, plan) = episode_setup(cfg, spec, base_seed, episode);
    let ep = apply_plan(build_episode(cfg, geometry, seed), &plan);
    let (result, trace) = ep.run_traced(birth, duration);
    (result, trace.iter().map(ToString::to_string).collect())
}

/// Runs one campaign cell: `episodes` episodes of the reference k = 10
/// plane under the cell's fault mix, signal births spread over a full
/// orbit period, durations Exp(0.2).
///
/// Equivalent to [`run_cell_workers`] with one worker.
#[must_use]
pub fn run_cell(spec: &CellSpec, episodes: u64, base_seed: u64) -> CellOutcome {
    run_cell_workers(spec, episodes, base_seed, 1)
}

/// Runs one campaign cell, fanning episodes across `workers` threads
/// (`0` = one per core).
///
/// Every tally is an integer and the violation list concatenates in
/// episode order, so the outcome is bit-identical for any worker count —
/// including the one-worker serial path.
#[must_use]
pub fn run_cell_workers(
    spec: &CellSpec,
    episodes: u64,
    base_seed: u64,
    workers: usize,
) -> CellOutcome {
    run_cell_fanout(spec, episodes, base_seed, workers, None)
}

/// [`run_cell_workers`] with an explicit chunk-size override (`None` =
/// adaptive chunking). The chunk only changes how episodes are batched
/// onto workers; the outcome is bit-identical for every chunk size.
///
/// # Panics
///
/// Panics when `chunk` is `Some(0)`.
#[must_use]
pub fn run_cell_fanout(
    spec: &CellSpec,
    episodes: u64,
    base_seed: u64,
    workers: usize,
    chunk: Option<u64>,
) -> CellOutcome {
    let base = ProtocolConfig::reference(10, Scheme::Oaq);
    run_cell_scenario(
        &Scenario::new(&base, workers).with_chunk(chunk),
        spec,
        episodes,
        base_seed,
    )
}

/// Runs one campaign cell against an arbitrary [`Scenario`] — any base
/// configuration and coverage geometry (Walker presets included), any
/// worker/chunk/forced-steal mix. Per-worker [`EpisodeScratch`] keeps the
/// episode hot loop allocation-free; the outcome is bit-identical across
/// every scheduling configuration.
///
/// # Panics
///
/// Panics when `scenario.chunk` is `Some(0)` or on an invalid base config.
#[must_use]
pub fn run_cell_scenario(
    scenario: &Scenario<'_>,
    spec: &CellSpec,
    episodes: u64,
    base_seed: u64,
) -> CellOutcome {
    let cfg = cell_config_from(scenario.base, spec);
    let geometry = scenario.geometry;
    // The engine's substream rng is deliberately unused: the campaign's
    // episode-seed scheme predates the replication engine and recorded
    // violation seeds must stay replayable, so episodes re-derive their
    // streams from `episode_seed` (the same mixing function) instead.
    let sink = Replicator::new(scenario.workers)
        .with_chunk_override(scenario.chunk)
        .with_forced_steals(scenario.forced_steals)
        .run_scratch(
            episodes,
            base_seed,
            CellSink::default,
            CellScratch::default,
            |i, _rng, scratch, sink| {
                run_episode(&cfg, geometry, spec, base_seed, i, scratch, sink);
            },
        );
    sink.into_outcome(spec, episodes)
}

/// Legacy always-traced serial cell runner, kept as the baseline the
/// `mc_replication` bench measures the untraced fast path against.
#[must_use]
pub fn run_cell_traced_baseline(spec: &CellSpec, episodes: u64, base_seed: u64) -> CellOutcome {
    let cfg = cell_config(spec);
    let mut sink = CellSink::default();
    for i in 0..episodes {
        let (seed, birth, duration, plan) = episode_setup(&cfg, spec, base_seed, i);
        let ep = apply_plan(Episode::new(&cfg, seed), &plan);
        let (result, trace) = ep.run_traced(birth, duration);
        let (Some(t0), Some(detector)) = (result.detected_at, result.detector) else {
            continue;
        };
        sink.detected += 1;
        if result.deadline_met {
            sink.timely += 1;
        }
        if result.level >= QosLevel::SequentialDual {
            sink.quality += 1;
        }
        if stays_alive(&plan, detector, t0, cfg.tau) {
            sink.live_detector += 1;
            if result.deadline_met && result.level >= QosLevel::Single {
                sink.live_detector_timely += 1;
            } else {
                sink.violations.push(Violation {
                    episode: i,
                    seed,
                    detector,
                    outcome: format!("{result:?}"),
                    trace: trace.iter().map(ToString::to_string).collect(),
                });
            }
        }
    }
    sink.into_outcome(spec, episodes)
}

/// A grid sink: one [`CellSink`] slot per cell, merged elementwise (the
/// blanket `Vec` impl concatenates, which is not what a fixed-size grid
/// wants).
struct GridSink(Vec<CellSink>);

impl Merge for GridSink {
    fn merge(&mut self, other: &Self) {
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            a.merge(b);
        }
    }
}

/// Runs a whole campaign grid through one two-level fan-out: the engine
/// partitions the flattened `cells × episodes` index space, so workers
/// stay busy even when cells outnumber episodes or vice versa.
///
/// Each cell's outcome is bit-identical to [`run_cell_workers`] on that
/// cell (same per-episode seeds, same episode-ordered violation list), and
/// the whole grid is bit-identical for any worker count.
#[must_use]
pub fn run_grid_workers(
    specs: &[CellSpec],
    episodes: u64,
    base_seed: u64,
    workers: usize,
) -> Vec<CellOutcome> {
    run_grid_fanout(specs, episodes, base_seed, workers, None)
}

/// [`run_grid_workers`] with an explicit chunk-size override (`None` =
/// adaptive chunking over the flattened `cells × episodes` index space).
///
/// # Panics
///
/// Panics when `chunk` is `Some(0)`.
#[must_use]
pub fn run_grid_fanout(
    specs: &[CellSpec],
    episodes: u64,
    base_seed: u64,
    workers: usize,
    chunk: Option<u64>,
) -> Vec<CellOutcome> {
    let base = ProtocolConfig::reference(10, Scheme::Oaq);
    run_grid_scenario(
        &Scenario::new(&base, workers).with_chunk(chunk),
        specs,
        episodes,
        base_seed,
    )
}

/// [`run_grid_fanout`] against an arbitrary [`Scenario`]. Each cell's
/// outcome is bit-identical to [`run_cell_scenario`] on that cell, for any
/// worker count, chunk size, or steal schedule.
///
/// # Panics
///
/// Panics when `scenario.chunk` is `Some(0)` or on an invalid base config.
#[must_use]
pub fn run_grid_scenario(
    scenario: &Scenario<'_>,
    specs: &[CellSpec],
    episodes: u64,
    base_seed: u64,
) -> Vec<CellOutcome> {
    if episodes == 0 {
        return specs
            .iter()
            .map(|spec| CellSink::default().into_outcome(spec, 0))
            .collect();
    }
    let cfgs: Vec<ProtocolConfig> = specs
        .iter()
        .map(|spec| cell_config_from(scenario.base, spec))
        .collect();
    let geometry = scenario.geometry;
    let total = specs.len() as u64 * episodes;
    let sink = Replicator::new(scenario.workers)
        .with_chunk_override(scenario.chunk)
        .with_forced_steals(scenario.forced_steals)
        .run_scratch(
            total,
            base_seed,
            || GridSink(vec![CellSink::default(); specs.len()]),
            CellScratch::default,
            |g, _rng, scratch, sink| {
                let c = (g / episodes) as usize;
                let i = g % episodes;
                run_episode(
                    &cfgs[c],
                    geometry,
                    &specs[c],
                    base_seed,
                    i,
                    scratch,
                    &mut sink.0[c],
                );
            },
        );
    sink.0
        .into_iter()
        .zip(specs)
        .map(|(s, spec)| s.into_outcome(spec, episodes))
        .collect()
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            '\t' => "\\t".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn cell_json(c: &CellOutcome) -> String {
    let violations: Vec<String> = c
        .violations
        .iter()
        .map(|v| {
            let trace: Vec<String> = v
                .trace
                .iter()
                .map(|l| format!("\"{}\"", json_escape(l)))
                .collect();
            format!(
                "{{\"episode\":{},\"seed\":{},\"detector\":{},\"outcome\":\"{}\",\"trace\":[{}]}}",
                v.episode,
                v.seed,
                v.detector,
                json_escape(&v.outcome),
                trace.join(",")
            )
        })
        .collect();
    format!(
        concat!(
            "{{\"loss\":\"{}\",\"marginal_loss\":{},\"burst_len\":{},",
            "\"node_failure_rate\":{},\"retry_budget\":{},\"episodes\":{},",
            "\"detected\":{},\"timely_frac\":{:.6},\"quality_frac\":{:.6},",
            "\"live_detector\":{},\"guarantee_frac\":{:.6},\"violations\":[{}]}}"
        ),
        c.spec.loss.label(),
        c.spec.loss.marginal(),
        c.spec.loss.burst_len(),
        c.spec.node_failure_rate,
        c.spec.retry_budget,
        c.episodes,
        c.detected,
        c.timely_frac(),
        c.quality_frac(),
        c.live_detector,
        c.guarantee_frac(),
        violations.join(",")
    )
}

/// Serializes a finished campaign as one JSON document: the raw cells plus
/// degradation curves (quality and timeliness vs marginal loss) grouped by
/// `(node_failure_rate, retry_budget)` and ordered by fault intensity.
#[must_use]
pub fn campaign_json(cells: &[CellOutcome], base_seed: u64, episodes: u64) -> String {
    let cell_docs: Vec<String> = cells.iter().map(cell_json).collect();

    let mut groups: Vec<(f64, u32)> = cells
        .iter()
        .map(|c| (c.spec.node_failure_rate, c.spec.retry_budget))
        .collect();
    groups.dedup();
    groups.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    groups.dedup();
    let curves: Vec<String> = groups
        .iter()
        .map(|&(rate, budget)| {
            let mut pts: Vec<&CellOutcome> = cells
                .iter()
                .filter(|c| {
                    c.spec.node_failure_rate == rate && c.spec.retry_budget == budget
                })
                .collect();
            pts.sort_by(|a, b| {
                (a.spec.loss.marginal(), a.spec.loss.burst_len())
                    .partial_cmp(&(b.spec.loss.marginal(), b.spec.loss.burst_len()))
                    .expect("finite")
            });
            let points: Vec<String> = pts
                .iter()
                .map(|c| {
                    format!(
                        "{{\"intensity\":{},\"burst_len\":{},\"quality\":{:.6},\"timely\":{:.6},\"guarantee\":{:.6}}}",
                        c.spec.loss.marginal(),
                        c.spec.loss.burst_len(),
                        c.quality_frac(),
                        c.timely_frac(),
                        c.guarantee_frac()
                    )
                })
                .collect();
            format!(
                "{{\"node_failure_rate\":{rate},\"retry_budget\":{budget},\"points\":[{}]}}",
                points.join(",")
            )
        })
        .collect();

    let total_violations: usize = cells.iter().map(|c| c.violations.len()).sum();
    format!(
        concat!(
            "{{\"experiment\":\"robustness-campaign\",\"base_seed\":{},",
            "\"episodes_per_cell\":{},\"total_violations\":{},",
            "\"cells\":[{}],\"degradation_curves\":[{}]}}"
        ),
        base_seed,
        episodes,
        total_violations,
        cell_docs.join(","),
        curves.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn episode_seeds_are_stable_and_spread() {
        let a = episode_seed(42, 0);
        let b = episode_seed(42, 1);
        assert_ne!(a, b);
        assert_eq!(a, episode_seed(42, 0), "must be a pure function");
    }

    #[test]
    fn bursty_axis_hits_its_marginal() {
        let axis = LossAxis::Bursty {
            marginal: 0.2,
            burst_len: 5.0,
        };
        let mut cfg = ProtocolConfig::reference(10, Scheme::Oaq);
        axis.apply(&mut cfg);
        let ge = cfg.bursty_loss.expect("bursty set");
        assert!((ge.stationary_loss() - 0.2).abs() < 1e-12);
    }

    fn assert_cells_identical(a: &CellOutcome, b: &CellOutcome) {
        assert_eq!(a.episodes, b.episodes);
        assert_eq!(a.detected, b.detected);
        assert_eq!(a.timely, b.timely);
        assert_eq!(a.quality, b.quality);
        assert_eq!(a.live_detector, b.live_detector);
        assert_eq!(a.live_detector_timely, b.live_detector_timely);
        assert_eq!(a.violations.len(), b.violations.len());
        for (x, y) in a.violations.iter().zip(&b.violations) {
            assert_eq!(x.episode, y.episode);
            assert_eq!(x.seed, y.seed);
            assert_eq!(x.detector, y.detector);
            assert_eq!(x.outcome, y.outcome);
            assert_eq!(x.trace, y.trace);
        }
    }

    #[test]
    fn cells_are_reproducible() {
        let spec = CellSpec {
            loss: LossAxis::Iid { p: 0.2 },
            node_failure_rate: 0.2,
            retry_budget: 1,
        };
        let a = run_cell(&spec, 60, 7);
        let b = run_cell(&spec, 60, 7);
        assert_cells_identical(&a, &b);
    }

    #[test]
    fn worker_count_never_changes_a_cell() {
        let spec = CellSpec {
            loss: LossAxis::Bursty {
                marginal: 0.3,
                burst_len: 4.0,
            },
            node_failure_rate: 0.3,
            retry_budget: 1,
        };
        let reference = run_cell(&spec, 120, 11);
        for workers in [2, 4] {
            let par = run_cell_workers(&spec, 120, 11, workers);
            assert_cells_identical(&par, &reference);
        }
    }

    #[test]
    fn chunk_override_never_changes_a_cell() {
        let spec = CellSpec {
            loss: LossAxis::Iid { p: 0.2 },
            node_failure_rate: 0.2,
            retry_budget: 1,
        };
        let reference = run_cell(&spec, 120, 11);
        for chunk in [1u64, 7, 64, 1000] {
            let out = run_cell_fanout(&spec, 120, 11, 2, Some(chunk));
            assert_cells_identical(&out, &reference);
        }
    }

    #[test]
    fn forced_steals_never_change_a_cell() {
        let spec = CellSpec {
            loss: LossAxis::Bursty {
                marginal: 0.3,
                burst_len: 4.0,
            },
            node_failure_rate: 0.3,
            retry_budget: 1,
        };
        let reference = run_cell(&spec, 120, 11);
        let base = ProtocolConfig::reference(10, Scheme::Oaq);
        for workers in [2, 4] {
            for chunk in [None, Some(16u64), Some(7)] {
                let stressed = run_cell_scenario(
                    &Scenario::new(&base, workers)
                        .with_chunk(chunk)
                        .with_forced_steals(true),
                    &spec,
                    120,
                    11,
                );
                assert_cells_identical(&stressed, &reference);
            }
        }
    }

    #[test]
    fn scenario_geometry_changes_outcomes_but_stays_deterministic() {
        // A staggered two-plane geometry is a different constellation, so
        // the tallies differ from the reference plane — but the scenario
        // path keeps its own bit-identity across scheduling configs and
        // its violations replay through `replay_episode_scenario`.
        let spec = CellSpec {
            loss: LossAxis::Iid { p: 0.2 },
            node_failure_rate: 0.2,
            retry_budget: 1,
        };
        let base = ProtocolConfig::reference(10, Scheme::Oaq);
        let geom = CoverageGeometry::with_offsets(
            vec![0.0, 9.0, 18.0, 27.0, 36.0, 45.0, 54.0, 63.0, 72.0, 81.0],
            base.theta,
            base.tc,
        );
        let scenario = Scenario::new(&base, 1).with_geometry(&geom);
        let a = run_cell_scenario(&scenario, &spec, 80, 7);
        let b = run_cell_scenario(
            &Scenario::new(&base, 4)
                .with_geometry(&geom)
                .with_chunk(Some(5))
                .with_forced_steals(true),
            &spec,
            80,
            7,
        );
        assert_cells_identical(&a, &b);
        let (out_a, trace_a) = replay_episode_scenario(&scenario, &spec, 7, 3);
        let (out_b, trace_b) = replay_episode_scenario(&scenario, &spec, 7, 3);
        assert_eq!(out_a, out_b);
        assert_eq!(trace_a, trace_b);
    }

    #[test]
    fn grid_matches_per_cell_runs() {
        let specs = [
            CellSpec {
                loss: LossAxis::Iid { p: 0.0 },
                node_failure_rate: 0.0,
                retry_budget: 0,
            },
            CellSpec {
                loss: LossAxis::Iid { p: 0.3 },
                node_failure_rate: 0.25,
                retry_budget: 2,
            },
            CellSpec {
                loss: LossAxis::Bursty {
                    marginal: 0.2,
                    burst_len: 5.0,
                },
                node_failure_rate: 0.1,
                retry_budget: 1,
            },
        ];
        let grid = run_grid_workers(&specs, 70, 42, 2);
        assert_eq!(grid.len(), specs.len());
        for (cell, spec) in grid.iter().zip(&specs) {
            let solo = run_cell(spec, 70, 42);
            assert_cells_identical(cell, &solo);
        }
    }

    #[test]
    fn fast_path_matches_traced_baseline() {
        let spec = CellSpec {
            loss: LossAxis::Iid { p: 0.35 },
            node_failure_rate: 0.4,
            retry_budget: 1,
        };
        let fast = run_cell(&spec, 150, 5);
        let traced = run_cell_traced_baseline(&spec, 150, 5);
        assert_cells_identical(&fast, &traced);
    }

    #[test]
    fn violation_replay_is_bit_identical() {
        // Real violations never occur (the guarantee holds — that is the
        // campaign's acceptance test), so the replay contract is exercised
        // directly: any (spec, base_seed, episode) triple replays to the
        // identical outcome and trace, and its outcomes agree with the
        // untraced fast path the campaign tallies from.
        let spec = CellSpec {
            loss: LossAxis::Bursty {
                marginal: 0.5,
                burst_len: 4.0,
            },
            node_failure_rate: 0.5,
            retry_budget: 1,
        };
        for i in [0u64, 3, 17] {
            let (out_a, trace_a) = replay_episode(&spec, 77, i);
            let (out_b, trace_b) = replay_episode(&spec, 77, i);
            assert_eq!(out_a, out_b);
            assert_eq!(trace_a, trace_b);
        }
        let cell = run_cell(&spec, 20, 77);
        let replayed_detected = (0..20)
            .filter(|&i| replay_episode(&spec, 77, i).0.detected_at.is_some())
            .count() as u64;
        assert_eq!(replayed_detected, cell.detected);
    }

    #[test]
    fn guarantee_holds_across_a_small_grid() {
        // Acceptance: live-detector episodes meet the by-τ minimal-QoS
        // guarantee in every cell of a loss × retry sweep.
        for loss in [
            LossAxis::Iid { p: 0.0 },
            LossAxis::Iid { p: 0.2 },
            LossAxis::Bursty {
                marginal: 0.2,
                burst_len: 5.0,
            },
        ] {
            for budget in [0u32, 3] {
                let spec = CellSpec {
                    loss,
                    node_failure_rate: 0.25,
                    retry_budget: budget,
                };
                let out = run_cell(&spec, 150, 99);
                assert!(
                    out.violations.is_empty(),
                    "{}/budget {budget}: {:#?}",
                    loss.label(),
                    out.violations
                );
                assert_eq!(out.guarantee_frac(), 1.0);
            }
        }
    }

    #[test]
    fn degradation_curve_is_monotone_in_loss_intensity() {
        // Quality (not timeliness) pays for fault intensity: the dual-
        // coverage fraction must not increase as the marginal loss grows.
        let losses = [0.0, 0.15, 0.4];
        let mut cells = Vec::new();
        for p in losses {
            let spec = CellSpec {
                loss: LossAxis::Iid { p },
                node_failure_rate: 0.0,
                retry_budget: 0,
            };
            cells.push(run_cell(&spec, 400, 1234));
        }
        for w in cells.windows(2) {
            assert!(
                w[1].quality_frac() <= w[0].quality_frac() + 0.02,
                "quality must degrade with loss: {} -> {}",
                w[0].quality_frac(),
                w[1].quality_frac()
            );
        }
        assert!(
            cells[2].quality_frac() < cells[0].quality_frac(),
            "heavy loss must visibly cost quality"
        );
        let json = campaign_json(&cells, 1234, 400);
        assert!(json.contains("\"degradation_curves\""));
        assert!(json.contains("\"total_violations\":0"));
    }

    #[test]
    fn retries_buy_back_quality_under_loss() {
        let cell = |budget: u32| {
            run_cell(
                &CellSpec {
                    loss: LossAxis::Iid { p: 0.3 },
                    node_failure_rate: 0.0,
                    retry_budget: budget,
                },
                400,
                55,
            )
        };
        let plain = cell(0);
        let budgeted = cell(3);
        assert!(
            budgeted.quality_frac() > plain.quality_frac() + 0.05,
            "retries must recover coordinations: {} vs {}",
            budgeted.quality_frac(),
            plain.quality_frac()
        );
    }

    #[test]
    fn violations_render_replayable_json() {
        // Synthesize a violation record and check the JSON stays parseable
        // in shape (quotes escaped, seed present).
        let mut out = run_cell(
            &CellSpec {
                loss: LossAxis::Iid { p: 0.0 },
                node_failure_rate: 0.0,
                retry_budget: 0,
            },
            5,
            3,
        );
        out.violations.push(Violation {
            episode: 2,
            seed: episode_seed(3, 2),
            detector: 0,
            outcome: "level \"X\"".to_string(),
            trace: vec!["t= 1.0 S0 \"detects\"".to_string()],
        });
        let json = cell_json(&out);
        assert!(json.contains("\\\"detects\\\""));
        assert!(json.contains(&format!("\"seed\":{}", episode_seed(3, 2))));
    }
}
