//! A small bounded LRU map for completed solves.
//!
//! Backed by a `HashMap` plus a monotone access stamp; eviction scans for
//! the minimum stamp. O(capacity) eviction is deliberate: engine caches
//! hold at most a few thousand entries and the cached values cost
//! milliseconds to recompute, so a linked-list LRU would be complexity
//! without measurable payoff. Not internally synchronised — the engine
//! wraps it in a [`parking_lot::Mutex`].

use std::collections::HashMap;
use std::hash::Hash;

/// A bounded map evicting the least-recently-used entry when full.
#[derive(Debug)]
pub struct LruCache<K, V> {
    map: HashMap<K, Entry<V>>,
    capacity: usize,
    clock: u64,
}

#[derive(Debug)]
struct Entry<V> {
    value: V,
    stamp: u64,
}

impl<K: Eq + Hash + Copy, V> LruCache<K, V> {
    /// An empty cache holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LRU capacity must be positive");
        LruCache {
            map: HashMap::with_capacity(capacity),
            capacity,
            clock: 0,
        }
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.clock += 1;
        let clock = self.clock;
        self.map.get_mut(key).map(|e| {
            e.stamp = clock;
            &e.value
        })
    }

    /// Inserts (or refreshes) `key`, evicting the least-recently-used
    /// entry if the cache is full.
    pub fn insert(&mut self, key: K, value: V) {
        self.clock += 1;
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            if let Some((&victim, _)) = self.map.iter().min_by_key(|(_, e)| e.stamp) {
                self.map.remove(&victim);
            }
        }
        self.map.insert(
            key,
            Entry {
                value,
                stamp: self.clock,
            },
        );
    }

    /// Number of cached entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Visits every entry without perturbing recency (iteration order is
    /// unspecified). Used by the snapshot export path.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.map.iter().map(|(k, e)| (k, &e.value))
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_and_misses() {
        let mut c = LruCache::new(4);
        assert!(c.is_empty());
        c.insert(1u32, "one");
        c.insert(2, "two");
        assert_eq!(c.get(&1), Some(&"one"));
        assert_eq!(c.get(&3), None);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(3);
        c.insert(1u32, 1);
        c.insert(2, 2);
        c.insert(3, 3);
        // Touch 1 so 2 becomes the LRU victim.
        assert!(c.get(&1).is_some());
        c.insert(4, 4);
        assert_eq!(c.len(), 3);
        assert!(c.get(&2).is_none(), "2 was least recently used");
        assert!(c.get(&1).is_some());
        assert!(c.get(&3).is_some());
        assert!(c.get(&4).is_some());
    }

    #[test]
    fn reinserting_existing_key_does_not_evict() {
        let mut c = LruCache::new(2);
        c.insert(1u32, 1);
        c.insert(2, 2);
        c.insert(2, 20);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&1), Some(&1));
        assert_eq!(c.get(&2), Some(&20));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = LruCache::<u32, u32>::new(0);
    }
}
