//! Multi-tenant admission control: tenant identity, per-tenant
//! token-bucket quotas and weighted fair shares of the submission queue.
//!
//! Every [`crate::QosQuery`] carries a [`TenantId`]. Admission charges two
//! independent budgets:
//!
//! * **Rate** — a per-tenant token bucket ([`TokenBucket`]) refilled at
//!   `rate_per_sec`, depth `burst`. A submission that misses the result
//!   cache costs one token; an empty bucket is a retryable
//!   [`crate::RejectReason::QuotaExceeded`].
//! * **Queue share** — a tenant may occupy at most
//!   `ceil(queue_capacity · queue_share · weight)` slots of the bounded
//!   submission queue, so a flooding tenant exhausts *its* share and hits
//!   `QuotaExceeded` while well-behaved tenants still reach the default
//!   `QueueFull` backpressure only under genuine global overload.
//!
//! Both clocks are injected (`now_s`, seconds since the engine epoch), so
//! the bucket arithmetic is deterministic and unit-testable.

use std::collections::HashMap;
use std::fmt;

use parking_lot::Mutex;

/// A tenant identity carried on every query. Tenant `0` is the default
/// for embedders that do not care about multi-tenancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(pub u32);

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Engine-wide per-tenant quota policy. `Default` disables every limit,
/// so single-tenant embedders pay nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuotaPolicy {
    /// Token-bucket refill rate per tenant, tokens (admitted non-cached
    /// submissions) per second. `f64::INFINITY` disables rate limiting.
    pub rate_per_sec: f64,
    /// Token-bucket depth — the largest admissible burst.
    pub burst: f64,
    /// Base fraction of the submission queue one weight-1.0 tenant may
    /// occupy, in `(0, 1]`. `1.0` disables the share limit.
    pub queue_share: f64,
}

impl Default for QuotaPolicy {
    fn default() -> Self {
        QuotaPolicy {
            rate_per_sec: f64::INFINITY,
            burst: f64::INFINITY,
            queue_share: 1.0,
        }
    }
}

impl QuotaPolicy {
    /// Whether any limit is active at all.
    #[must_use]
    pub fn is_unlimited(&self) -> bool {
        self.rate_per_sec.is_infinite() && self.queue_share >= 1.0
    }
}

/// A deterministic token bucket: refill is computed from an injected
/// clock, never from wall time read internally.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TokenBucket {
    tokens: f64,
    last_refill_s: f64,
}

impl TokenBucket {
    /// A bucket born full (`burst` tokens) at time `now_s`.
    #[must_use]
    pub fn full(burst: f64, now_s: f64) -> Self {
        TokenBucket {
            tokens: burst,
            last_refill_s: now_s,
        }
    }

    /// Refills for the elapsed time, then takes one token if available.
    /// Infinite rates always admit.
    pub fn try_take(&mut self, rate_per_sec: f64, burst: f64, now_s: f64) -> bool {
        if rate_per_sec.is_infinite() {
            return true;
        }
        let elapsed = (now_s - self.last_refill_s).max(0.0);
        self.tokens = (self.tokens + elapsed * rate_per_sec).min(burst);
        self.last_refill_s = now_s;
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Tokens currently available.
    #[must_use]
    pub fn tokens(&self) -> f64 {
        self.tokens
    }
}

/// Per-tenant admission counters, exposed via [`TenantSnapshot`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct TenantCounters {
    submitted: u64,
    cache_hits: u64,
    coalesced: u64,
    completed: u64,
    quota_rejected: u64,
}

#[derive(Debug)]
struct TenantState {
    bucket: TokenBucket,
    weight: f64,
    in_queue: usize,
    counters: TenantCounters,
}

/// A point-in-time copy of one tenant's admission state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantSnapshot {
    /// The tenant.
    pub tenant: TenantId,
    /// Submissions seen (admitted or not), including cache hits.
    pub submitted: u64,
    /// Submissions answered straight from the result cache (not charged
    /// against the quota).
    pub cache_hits: u64,
    /// Submissions coalesced onto an in-flight identical computation.
    pub coalesced: u64,
    /// Queries computed by a worker on this tenant's behalf (leader jobs
    /// dequeued and answered, successfully or not).
    pub completed: u64,
    /// Submissions rejected by the rate or queue-share quota.
    pub quota_rejected: u64,
    /// Queue slots currently held.
    pub in_queue: usize,
    /// The tenant's fair-share weight.
    pub weight: f64,
}

/// The engine-side tenant table: lazily materialises a [`TenantState`]
/// per tenant on first contact.
#[derive(Debug)]
pub(crate) struct TenantTable {
    policy: QuotaPolicy,
    queue_capacity: usize,
    tenants: Mutex<HashMap<TenantId, TenantState>>,
}

impl TenantTable {
    pub(crate) fn new(policy: QuotaPolicy, queue_capacity: usize) -> Self {
        TenantTable {
            policy,
            queue_capacity,
            tenants: Mutex::new(HashMap::new()),
        }
    }

    fn with_state<R>(
        &self,
        tenant: TenantId,
        now_s: f64,
        f: impl FnOnce(&mut TenantState) -> R,
    ) -> R {
        let mut map = self.tenants.lock();
        let state = map.entry(tenant).or_insert_with(|| TenantState {
            bucket: TokenBucket::full(self.policy.burst, now_s),
            weight: 1.0,
            in_queue: 0,
            counters: TenantCounters::default(),
        });
        f(state)
    }

    /// Notes a submission and, unless `cached`, charges the rate bucket.
    /// Returns `false` when the tenant is out of tokens (the caller
    /// rejects with `QuotaExceeded`).
    pub(crate) fn admit(&self, tenant: TenantId, now_s: f64, cached: bool) -> bool {
        let policy = self.policy;
        self.with_state(tenant, now_s, |s| {
            s.counters.submitted += 1;
            if cached {
                s.counters.cache_hits += 1;
                return true;
            }
            if s.bucket.try_take(policy.rate_per_sec, policy.burst, now_s) {
                true
            } else {
                s.counters.quota_rejected += 1;
                false
            }
        })
    }

    /// The tenant's queue-slot cap under the weighted fair-share policy.
    /// A share of `1.0` disables the cap entirely — saturation then
    /// surfaces as the global `QueueFull` backpressure, never as a
    /// per-tenant quota rejection.
    fn queue_cap(&self, weight: f64) -> usize {
        if self.policy.queue_share >= 1.0 {
            return usize::MAX;
        }
        #[allow(
            clippy::cast_precision_loss,
            clippy::cast_possible_truncation,
            clippy::cast_sign_loss
        )]
        let cap = (self.queue_capacity as f64 * self.policy.queue_share * weight).ceil() as usize;
        cap.clamp(1, self.queue_capacity)
    }

    /// Reserves one queue slot for `tenant`; `false` when the tenant is
    /// already at its fair share (the caller rejects with
    /// `QuotaExceeded`). Paired with [`Self::release_queue_slot`].
    pub(crate) fn try_reserve_queue_slot(&self, tenant: TenantId, now_s: f64) -> bool {
        self.with_state(tenant, now_s, |s| {
            if s.in_queue < self.queue_cap(s.weight) {
                s.in_queue += 1;
                true
            } else {
                s.counters.quota_rejected += 1;
                false
            }
        })
    }

    /// Releases a slot reserved by [`Self::try_reserve_queue_slot`] — on
    /// worker dequeue, or on the submit path when the global queue push
    /// fails after the reservation.
    pub(crate) fn release_queue_slot(&self, tenant: TenantId) {
        let mut map = self.tenants.lock();
        if let Some(s) = map.get_mut(&tenant) {
            s.in_queue = s.in_queue.saturating_sub(1);
        }
    }

    /// Notes a coalesced (follower) submission.
    pub(crate) fn on_coalesced(&self, tenant: TenantId, now_s: f64) {
        self.with_state(tenant, now_s, |s| s.counters.coalesced += 1);
    }

    /// Notes a worker-completed job for `tenant`.
    pub(crate) fn on_completed(&self, tenant: TenantId) {
        let mut map = self.tenants.lock();
        if let Some(s) = map.get_mut(&tenant) {
            s.counters.completed += 1;
        }
    }

    /// Sets the fair-share weight used by the queue-share policy.
    pub(crate) fn set_weight(&self, tenant: TenantId, weight: f64, now_s: f64) {
        let w = if weight.is_finite() && weight > 0.0 {
            weight
        } else {
            1.0
        };
        self.with_state(tenant, now_s, |s| s.weight = w);
    }

    /// A consistent snapshot of every tenant seen so far, ordered by id.
    pub(crate) fn snapshot(&self) -> Vec<TenantSnapshot> {
        let map = self.tenants.lock();
        let mut rows: Vec<TenantSnapshot> = map
            .iter()
            .map(|(&tenant, s)| TenantSnapshot {
                tenant,
                submitted: s.counters.submitted,
                cache_hits: s.counters.cache_hits,
                coalesced: s.counters.coalesced,
                completed: s.counters.completed,
                quota_rejected: s.counters.quota_rejected,
                in_queue: s.in_queue,
                weight: s.weight,
            })
            .collect();
        rows.sort_by_key(|r| r.tenant);
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_refills_at_rate_and_caps_at_burst() {
        let mut b = TokenBucket::full(2.0, 0.0);
        assert!(b.try_take(1.0, 2.0, 0.0));
        assert!(b.try_take(1.0, 2.0, 0.0));
        assert!(!b.try_take(1.0, 2.0, 0.0), "burst of 2 exhausted");
        // Half a second refills half a token — still short.
        assert!(!b.try_take(1.0, 2.0, 0.5));
        // By t = 1.6 the bucket holds ≥ 1 token again.
        assert!(b.try_take(1.0, 2.0, 1.6));
        // A long idle period caps at burst, not unbounded credit.
        assert!(b.try_take(1.0, 2.0, 100.0));
        assert!(b.try_take(1.0, 2.0, 100.0));
        assert!(!b.try_take(1.0, 2.0, 100.0), "credit is capped at burst");
    }

    #[test]
    fn infinite_rate_always_admits() {
        let mut b = TokenBucket::full(0.0, 0.0);
        for _ in 0..1000 {
            assert!(b.try_take(f64::INFINITY, 0.0, 0.0));
        }
    }

    #[test]
    fn clock_going_backwards_is_harmless() {
        let mut b = TokenBucket::full(1.0, 10.0);
        assert!(b.try_take(1.0, 1.0, 5.0), "initial token spends");
        assert!(
            !b.try_take(1.0, 1.0, 4.0),
            "no refill from a reversed clock"
        );
        assert!(b.tokens() >= 0.0);
    }

    #[test]
    fn table_charges_only_uncached_submissions() {
        let table = TenantTable::new(
            QuotaPolicy {
                rate_per_sec: 1.0,
                burst: 2.0,
                queue_share: 1.0,
            },
            16,
        );
        let t = TenantId(7);
        assert!(table.admit(t, 0.0, false));
        assert!(table.admit(t, 0.0, false));
        assert!(!table.admit(t, 0.0, false), "bucket empty");
        for _ in 0..50 {
            assert!(table.admit(t, 0.0, true), "cache hits are free");
        }
        let snap = &table.snapshot()[0];
        assert_eq!(snap.submitted, 53);
        assert_eq!(snap.cache_hits, 50);
        assert_eq!(snap.quota_rejected, 1);
    }

    #[test]
    fn queue_share_isolates_a_flooder() {
        let table = TenantTable::new(
            QuotaPolicy {
                rate_per_sec: f64::INFINITY,
                burst: f64::INFINITY,
                queue_share: 0.25,
            },
            16,
        );
        let flooder = TenantId(0);
        let polite = TenantId(1);
        // ceil(16 * 0.25 * 1.0) = 4 slots for a weight-1 tenant.
        for _ in 0..4 {
            assert!(table.try_reserve_queue_slot(flooder, 0.0));
        }
        assert!(
            !table.try_reserve_queue_slot(flooder, 0.0),
            "the flooder is capped at its share"
        );
        assert!(
            table.try_reserve_queue_slot(polite, 0.0),
            "other tenants keep their share"
        );
        table.release_queue_slot(flooder);
        assert!(table.try_reserve_queue_slot(flooder, 0.0));
    }

    #[test]
    fn weights_scale_the_share() {
        let table = TenantTable::new(
            QuotaPolicy {
                rate_per_sec: f64::INFINITY,
                burst: f64::INFINITY,
                queue_share: 0.25,
            },
            16,
        );
        let heavy = TenantId(2);
        table.set_weight(heavy, 2.0, 0.0);
        // ceil(16 * 0.25 * 2.0) = 8 slots.
        for _ in 0..8 {
            assert!(table.try_reserve_queue_slot(heavy, 0.0));
        }
        assert!(!table.try_reserve_queue_slot(heavy, 0.0));
        // Degenerate weights are coerced back to 1.0.
        table.set_weight(heavy, f64::NAN, 0.0);
        assert!((table.snapshot()[0].weight - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unlimited_policy_never_rejects() {
        let table = TenantTable::new(QuotaPolicy::default(), 4);
        assert!(QuotaPolicy::default().is_unlimited());
        let t = TenantId(9);
        for _ in 0..100 {
            assert!(table.admit(t, 0.0, false));
            assert!(table.try_reserve_queue_slot(t, 0.0));
        }
    }
}
