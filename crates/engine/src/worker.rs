//! The worker side of the engine: shared state, the batch-draining
//! compute loop, and per-query panic supervision.
//!
//! ## Fault model
//!
//! Every query evaluation runs under `catch_unwind`: an evaluator panic
//! is converted into a typed [`QueryError::EvalPanicked`] delivered to
//! the leader *and* every coalesced follower — no waiter ever hangs on a
//! dead computation. A worker that caught a panic finishes delivering
//! its whole batch (so no dequeued job is dropped), then exits with
//! [`WorkerExit::Panicked`]; the supervisor in [`crate::Engine`]
//! replaces it so the pool heals back to its configured size. As a last
//! backstop, [`Job`] abandons its slot on drop — a job discarded without
//! delivery (teardown, an unwinding worker) still wakes its followers.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::error::{EngineError, QueryError};
use crate::eval::{Evaluator, QosValue};
use crate::metrics::Metrics;
use crate::query::{CapacityKey, QosQuery, QueryKey};
use crate::queue::SubmitQueue;
use crate::shard::{ShardedCache, ShardedFlight};
use crate::shed::Shedder;
use crate::singleflight::{Flight, Slot};
use crate::tenant::TenantTable;

/// The outcome delivered for a query.
pub type EngineResult = Result<QosValue, EngineError>;

type PkResult = Result<Arc<Vec<f64>>, EngineError>;

/// Why a worker thread returned, reported to the supervisor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WorkerExit {
    /// The queue shut down and drained — normal wind-down.
    Drained,
    /// The worker caught at least one evaluation panic this run. Its
    /// batch was fully delivered, but the thread retires and the
    /// supervisor respawns a replacement.
    Panicked,
}

/// One enqueued unit of work: a query that became the leader of its
/// single-flight and must be computed.
#[derive(Debug)]
pub(crate) struct Job {
    pub(crate) query: QosQuery,
    pub(crate) key: QueryKey,
    pub(crate) slot: Arc<Slot<EngineResult>>,
    pub(crate) submitted: Instant,
}

impl Job {
    /// The serving deadline as a duration, if the query set one.
    fn deadline(&self) -> Option<Duration> {
        self.query
            .deadline_ms()
            .map(|ms| Duration::from_secs_f64(ms / 1e3))
    }
}

impl Drop for Job {
    fn drop(&mut self) {
        // Backstop: a job discarded without delivery (queue teardown, a
        // worker unwinding between dequeue and completion) must not leave
        // followers blocked. `abandon` is a no-op once the slot resolved,
        // and the stale flight-table entry self-heals on the next join.
        self.slot.abandon();
    }
}

/// State shared between the submission side and every worker. Both cache
/// layers and both in-flight tables are key-hash sharded so the warm path
/// (a result-cache hit per submission) stops serializing on one mutex —
/// see [`crate::shard`].
#[derive(Debug)]
pub(crate) struct Shared {
    pub(crate) queue: SubmitQueue<Job>,
    pub(crate) results: ShardedCache<QueryKey, EngineResult>,
    pub(crate) flight: ShardedFlight<QueryKey, EngineResult>,
    pub(crate) pk_cache: ShardedCache<CapacityKey, Arc<Vec<f64>>>,
    pub(crate) pk_flight: ShardedFlight<CapacityKey, PkResult>,
    pub(crate) metrics: Metrics,
    pub(crate) tenants: TenantTable,
    pub(crate) shedder: Shedder,
    pub(crate) evaluator: Arc<dyn Evaluator>,
    pub(crate) epoch: Instant,
    pub(crate) batch_size: usize,
}

impl Shared {
    /// Seconds since the engine started — the injected clock the tenant
    /// token buckets refill against.
    pub(crate) fn now_s(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }
}

/// Abandons a flight when dropped without [`complete`](Self::complete) —
/// the worker-panic safety net that keeps followers from blocking forever.
struct AbandonGuard<'a, K: Eq + std::hash::Hash + Copy, V: Clone> {
    flight: &'a ShardedFlight<K, V>,
    key: K,
    slot: Arc<Slot<V>>,
    armed: bool,
}

impl<'a, K: Eq + std::hash::Hash + Copy, V: Clone> AbandonGuard<'a, K, V> {
    fn new(flight: &'a ShardedFlight<K, V>, key: K, slot: Arc<Slot<V>>) -> Self {
        AbandonGuard {
            flight,
            key,
            slot,
            armed: true,
        }
    }

    /// Publishes `value` and retires the flight normally.
    fn complete(mut self, value: V) {
        self.flight.complete(&self.key, &self.slot, value);
        self.armed = false;
    }
}

impl<K: Eq + std::hash::Hash + Copy, V: Clone> Drop for AbandonGuard<'_, K, V> {
    fn drop(&mut self) {
        if self.armed {
            self.flight.abandon(&self.key, &self.slot);
        }
    }
}

/// The capacity distribution for `query`'s (λ, φ, η) scenario: LRU cache
/// first, then single-flight so concurrent misses of the same scenario run
/// one CTMC solve.
///
/// A panic inside the evaluator's solve unwinds through the leader arm;
/// the guard abandons the pk flight so followers (other workers) observe
/// [`EngineError::WorkerLost`] instead of blocking — a terminal, typed
/// outcome for their queries too.
fn capacity_pk(shared: &Shared, query: &QosQuery) -> PkResult {
    let key = query.capacity_key();
    if let Some(pk) = shared.pk_cache.get(&key) {
        shared.metrics.on_pk_cache_hit();
        return Ok(pk);
    }
    match shared.pk_flight.join(key) {
        Flight::Follower(slot) => {
            shared.metrics.on_pk_cache_hit();
            slot.wait().unwrap_or(Err(EngineError::WorkerLost))
        }
        Flight::Leader(slot) => {
            let guard = AbandonGuard::new(&shared.pk_flight, key, slot);
            shared.metrics.on_pk_solve();
            let result: PkResult = shared.evaluator.solve_pk(query).map(Arc::new);
            if let Ok(pk) = &result {
                shared.pk_cache.insert(key, Arc::clone(pk));
            }
            guard.complete(result.clone());
            result
        }
    }
}

/// Computes one query through the engine's evaluator, reusing the cached
/// `P(k)` layer when the measure needs it.
fn compute(shared: &Shared, query: &QosQuery) -> EngineResult {
    if query.measure().needs_capacity_solve() {
        let pk = capacity_pk(shared, query)?;
        Ok(shared.evaluator.eval_with_pk(query, &pk))
    } else {
        Ok(shared.evaluator.eval_cheap(query))
    }
}

/// Delivers one dequeued job: deadline gates, supervised compute, caching
/// and metrics. Returns `true` if the evaluator panicked underneath.
fn serve_job(shared: &Shared, job: &Job) -> bool {
    shared.tenants.release_queue_slot(job.query.tenant());
    let waited = job.submitted.elapsed();
    shared.metrics.record_queue_wait(waited.as_secs_f64());
    let guard = AbandonGuard::new(&shared.flight, job.key, Arc::clone(&job.slot));

    // Deadline gate 1: shed already-late work before paying for a solve.
    let deadline = job.deadline();
    if let Some(d) = deadline {
        if waited > d {
            shared.metrics.on_deadline_expired();
            shared.metrics.on_served();
            shared.tenants.on_completed(job.query.tenant());
            guard.complete(Err(EngineError::Query(QueryError::DeadlineExceeded {
                deadline_ms: d.as_secs_f64() * 1e3,
                waited_ms: waited.as_secs_f64() * 1e3,
            })));
            return false;
        }
    }

    let t0 = Instant::now();
    let outcome = catch_unwind(AssertUnwindSafe(|| compute(shared, &job.query)));
    shared.metrics.record_solve(t0.elapsed().as_secs_f64());
    let panicked = outcome.is_err();
    let result = match outcome {
        Ok(r) => r,
        Err(_) => {
            shared.metrics.on_eval_panic();
            Err(EngineError::Query(QueryError::EvalPanicked))
        }
    };
    if result.is_ok() {
        // Cache even when the deadline lapsed mid-solve: the work is done
        // and the next identical query should not pay for it again.
        shared.results.insert(job.key, result.clone());
    }
    let elapsed = job.submitted.elapsed();
    let result = match deadline {
        Some(d) if elapsed > d => {
            // Deadline gate 2: the solve finished too late to honour.
            shared.metrics.on_deadline_expired();
            Err(EngineError::Query(QueryError::DeadlineExceeded {
                deadline_ms: d.as_secs_f64() * 1e3,
                waited_ms: elapsed.as_secs_f64() * 1e3,
            }))
        }
        _ => result,
    };
    // Count before publishing: a waiter that wakes on the publish must
    // already observe this query in the served counters.
    shared.metrics.on_served();
    shared.tenants.on_completed(job.query.tenant());
    shared.metrics.record_end_to_end(elapsed.as_secs_f64());
    guard.complete(result);
    panicked
}

/// The worker loop: drain batches until shutdown fully empties the queue,
/// or until a supervised evaluation panic retires this worker (its batch
/// is still fully delivered first).
pub(crate) fn worker_loop(shared: &Shared) -> WorkerExit {
    loop {
        let batch = shared.queue.pop_batch(shared.batch_size);
        if batch.is_empty() {
            return WorkerExit::Drained;
        }
        shared.metrics.on_batch(batch.len());
        let mut panicked = false;
        for job in batch {
            panicked |= serve_job(shared, &job);
        }
        if panicked {
            return WorkerExit::Panicked;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::DefaultEvaluator;
    use crate::query::{Measure, QuerySpec, Scheme};
    use crate::shed::ShedPolicy;
    use crate::tenant::QuotaPolicy;

    fn shared() -> Shared {
        Shared {
            queue: SubmitQueue::new(16),
            results: ShardedCache::new(64, 4),
            flight: ShardedFlight::new(4),
            pk_cache: ShardedCache::new(8, 4),
            pk_flight: ShardedFlight::new(4),
            metrics: Metrics::new(),
            tenants: TenantTable::new(QuotaPolicy::default(), 16),
            shedder: Shedder::new(ShedPolicy::default(), 0),
            evaluator: Arc::new(DefaultEvaluator),
            epoch: Instant::now(),
            batch_size: 4,
        }
    }

    fn y2(lambda: f64) -> QosQuery {
        QuerySpec::paper_defaults(
            lambda,
            Measure::QosAtLeast {
                scheme: Scheme::Oaq,
                y: 2,
            },
        )
        .build()
        .unwrap()
    }

    #[test]
    fn pk_layer_solves_once_per_scenario() {
        let sh = shared();
        let mut spec = QuerySpec::paper_defaults(
            5e-5,
            Measure::QosAtLeast {
                scheme: Scheme::Oaq,
                y: 2,
            },
        );
        let a = compute(&sh, &spec.build().unwrap()).unwrap();
        spec.tau = 7.0; // same (λ, φ, η): the capacity solve must be reused
        let b = compute(&sh, &spec.build().unwrap()).unwrap();
        assert_ne!(a, b);
        let m = sh.metrics.snapshot();
        assert_eq!(m.pk_solves, 1, "one scenario, one CTMC solve");
        assert_eq!(m.pk_cache_hits, 1);
    }

    #[test]
    fn abandon_guard_wakes_followers_on_panic() {
        let sh = shared();
        let q = y2(5e-5);
        let key = q.key();
        let Flight::Leader(slot) = sh.flight.join(key) else {
            panic!("leader expected")
        };
        let Flight::Follower(follower) = sh.flight.join(key) else {
            panic!("follower expected")
        };
        // std's scope propagates the child panic at scope exit; contain it
        // so the test observes only the guard's effect.
        let _ = catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| {
                s.spawn(|| {
                    let _guard = AbandonGuard::new(&sh.flight, key, slot);
                    panic!("worker dies mid-compute");
                });
            });
        }));
        assert_eq!(follower.wait(), None, "follower must not block forever");
        assert!(sh.flight.is_empty());
    }

    /// A panicking evaluator is converted into `EvalPanicked` for the
    /// leader and its followers, and the worker reports `Panicked` so the
    /// supervisor can replace it.
    #[test]
    fn supervised_panic_becomes_a_typed_answer() {
        struct Bomb;
        impl Evaluator for Bomb {
            fn solve_pk(&self, _query: &QosQuery) -> Result<Vec<f64>, EngineError> {
                std::panic::panic_any(crate::INJECTED_FAULT);
            }
        }

        let mut sh = shared();
        sh.evaluator = Arc::new(Bomb);
        let q = y2(5e-5);
        let key = q.key();
        let Flight::Leader(slot) = sh.flight.join(key) else {
            panic!("leader expected")
        };
        let Flight::Follower(follower) = sh.flight.join(key) else {
            panic!("follower expected")
        };
        sh.queue
            .try_push(Job {
                query: q,
                key,
                slot: Arc::clone(&slot),
                submitted: Instant::now(),
            })
            .unwrap();
        sh.queue.shutdown();
        crate::silence_injected_panics();
        let exit = worker_loop(&sh);
        assert_eq!(exit, WorkerExit::Panicked);
        assert!(matches!(
            follower.wait(),
            Some(Err(EngineError::Query(QueryError::EvalPanicked)))
        ));
        let m = sh.metrics.snapshot();
        assert_eq!(m.eval_panics, 1);
        assert_eq!(m.served, 1, "a panicked query still counts as answered");
        assert!(sh.flight.is_empty(), "the flight was retired");
    }

    /// A job whose deadline lapsed in the queue is shed at dequeue: its
    /// waiters get `DeadlineExceeded` and no solve runs.
    #[test]
    fn expired_deadline_is_shed_before_solving() {
        let sh = shared();
        let q = y2(5e-5).with_deadline_ms(0.01).unwrap();
        let key = q.key();
        let Flight::Leader(slot) = sh.flight.join(key) else {
            panic!("leader expected")
        };
        sh.queue
            .try_push(Job {
                query: q,
                key,
                slot: Arc::clone(&slot),
                submitted: Instant::now() - Duration::from_millis(50),
            })
            .unwrap();
        sh.queue.shutdown();
        assert_eq!(worker_loop(&sh), WorkerExit::Drained);
        match slot.wait() {
            Some(Err(EngineError::Query(QueryError::DeadlineExceeded {
                deadline_ms,
                waited_ms,
            }))) => {
                assert!((deadline_ms - 0.01).abs() < 1e-9);
                assert!(waited_ms >= 50.0);
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        let m = sh.metrics.snapshot();
        assert_eq!(m.deadline_expired, 1);
        assert_eq!(m.pk_solves, 0, "late work must not pay for a solve");
        assert_eq!(m.served, 1);
    }

    /// A dropped job (teardown path) abandons its slot so followers wake.
    #[test]
    fn dropped_job_wakes_its_waiters() {
        let sh = shared();
        let q = y2(5e-5);
        let key = q.key();
        let Flight::Leader(slot) = sh.flight.join(key) else {
            panic!("leader expected")
        };
        let job = Job {
            query: q,
            key,
            slot: Arc::clone(&slot),
            submitted: Instant::now(),
        };
        drop(job);
        assert_eq!(slot.wait(), None, "drop abandons the pending slot");
    }
}
