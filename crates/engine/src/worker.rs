//! The worker side of the engine: shared state and the batch-draining
//! compute loop.

use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use crate::cache::LruCache;
use crate::error::EngineError;
use crate::eval::{eval_cheap, eval_with_pk, QosValue};
use crate::metrics::Metrics;
use crate::query::{CapacityKey, QosQuery, QueryKey};
use crate::queue::SubmitQueue;
use crate::singleflight::{Flight, SingleFlight, Slot};

/// The outcome delivered for a query.
pub type EngineResult = Result<QosValue, EngineError>;

type PkResult = Result<Arc<Vec<f64>>, EngineError>;

/// One enqueued unit of work: a query that became the leader of its
/// single-flight and must be computed.
#[derive(Debug)]
pub(crate) struct Job {
    pub(crate) query: QosQuery,
    pub(crate) key: QueryKey,
    pub(crate) slot: Arc<Slot<EngineResult>>,
    pub(crate) submitted: Instant,
}

/// State shared between the submission side and every worker.
#[derive(Debug)]
pub(crate) struct Shared {
    pub(crate) queue: SubmitQueue<Job>,
    pub(crate) results: Mutex<LruCache<QueryKey, EngineResult>>,
    pub(crate) flight: SingleFlight<QueryKey, EngineResult>,
    pub(crate) pk_cache: Mutex<LruCache<CapacityKey, Arc<Vec<f64>>>>,
    pub(crate) pk_flight: SingleFlight<CapacityKey, PkResult>,
    pub(crate) metrics: Metrics,
    pub(crate) batch_size: usize,
}

/// Abandons a flight when dropped without [`defuse`](Self::defuse) — the
/// worker-panic safety net that keeps followers from blocking forever.
struct AbandonGuard<'a, K: Eq + std::hash::Hash + Copy, V: Clone> {
    flight: &'a SingleFlight<K, V>,
    key: K,
    slot: Arc<Slot<V>>,
    armed: bool,
}

impl<'a, K: Eq + std::hash::Hash + Copy, V: Clone> AbandonGuard<'a, K, V> {
    fn new(flight: &'a SingleFlight<K, V>, key: K, slot: Arc<Slot<V>>) -> Self {
        AbandonGuard {
            flight,
            key,
            slot,
            armed: true,
        }
    }

    /// Publishes `value` and retires the flight normally.
    fn complete(mut self, value: V) {
        self.flight.complete(&self.key, &self.slot, value);
        self.armed = false;
    }
}

impl<K: Eq + std::hash::Hash + Copy, V: Clone> Drop for AbandonGuard<'_, K, V> {
    fn drop(&mut self) {
        if self.armed {
            self.flight.abandon(&self.key, &self.slot);
        }
    }
}

/// The capacity distribution for `query`'s (λ, φ, η) scenario: LRU cache
/// first, then single-flight so concurrent misses of the same scenario run
/// one CTMC solve.
fn capacity_pk(shared: &Shared, query: &QosQuery) -> PkResult {
    let key = query.capacity_key();
    if let Some(pk) = shared.pk_cache.lock().get(&key) {
        shared.metrics.on_pk_cache_hit();
        return Ok(Arc::clone(pk));
    }
    match shared.pk_flight.join(key) {
        Flight::Follower(slot) => {
            shared.metrics.on_pk_cache_hit();
            slot.wait().unwrap_or(Err(EngineError::WorkerLost))
        }
        Flight::Leader(slot) => {
            let guard = AbandonGuard::new(&shared.pk_flight, key, slot);
            shared.metrics.on_pk_solve();
            let result: PkResult = query
                .capacity_params()
                .distribution()
                .map(Arc::new)
                .map_err(EngineError::from);
            if let Ok(pk) = &result {
                shared.pk_cache.lock().insert(key, Arc::clone(pk));
            }
            guard.complete(result.clone());
            result
        }
    }
}

/// Computes one query, reusing the cached `P(k)` layer when the measure
/// needs it.
fn compute(shared: &Shared, query: &QosQuery) -> EngineResult {
    if query.measure().needs_capacity_solve() {
        let pk = capacity_pk(shared, query)?;
        Ok(eval_with_pk(query, &pk))
    } else {
        Ok(eval_cheap(query))
    }
}

/// The worker loop: drain batches until shutdown fully empties the queue.
pub(crate) fn worker_loop(shared: &Shared) {
    loop {
        let batch = shared.queue.pop_batch(shared.batch_size);
        if batch.is_empty() {
            return;
        }
        shared.metrics.on_batch(batch.len());
        for job in batch {
            shared
                .metrics
                .record_queue_wait(job.submitted.elapsed().as_secs_f64());
            let guard = AbandonGuard::new(&shared.flight, job.key, Arc::clone(&job.slot));
            let t0 = Instant::now();
            let result = compute(shared, &job.query);
            shared.metrics.record_solve(t0.elapsed().as_secs_f64());
            if result.is_ok() {
                shared.results.lock().insert(job.key, result.clone());
            }
            // Count before publishing: a waiter that wakes on the publish
            // must already observe this query in the served counters.
            shared.metrics.on_served();
            shared
                .metrics
                .record_end_to_end(job.submitted.elapsed().as_secs_f64());
            guard.complete(result);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{Measure, QuerySpec, Scheme};

    fn shared() -> Shared {
        Shared {
            queue: SubmitQueue::new(16),
            results: Mutex::new(LruCache::new(64)),
            flight: SingleFlight::new(),
            pk_cache: Mutex::new(LruCache::new(8)),
            pk_flight: SingleFlight::new(),
            metrics: Metrics::new(),
            batch_size: 4,
        }
    }

    #[test]
    fn pk_layer_solves_once_per_scenario() {
        let sh = shared();
        let mut spec = QuerySpec::paper_defaults(
            5e-5,
            Measure::QosAtLeast {
                scheme: Scheme::Oaq,
                y: 2,
            },
        );
        let a = compute(&sh, &spec.build().unwrap()).unwrap();
        spec.tau = 7.0; // same (λ, φ, η): the capacity solve must be reused
        let b = compute(&sh, &spec.build().unwrap()).unwrap();
        assert_ne!(a, b);
        let m = sh.metrics.snapshot();
        assert_eq!(m.pk_solves, 1, "one scenario, one CTMC solve");
        assert_eq!(m.pk_cache_hits, 1);
    }

    #[test]
    fn abandon_guard_wakes_followers_on_panic() {
        let sh = shared();
        let q = QuerySpec::paper_defaults(
            5e-5,
            Measure::QosAtLeast {
                scheme: Scheme::Baq,
                y: 2,
            },
        )
        .build()
        .unwrap();
        let key = q.key();
        let Flight::Leader(slot) = sh.flight.join(key) else {
            panic!("leader expected")
        };
        let Flight::Follower(follower) = sh.flight.join(key) else {
            panic!("follower expected")
        };
        let _ = crossbeam::scope(|s| {
            s.spawn(|_| {
                let _guard = AbandonGuard::new(&sh.flight, key, slot);
                panic!("worker dies mid-compute");
            });
        });
        assert_eq!(follower.wait(), None, "follower must not block forever");
        assert!(sh.flight.is_empty());
    }
}
