//! Single-flight coalescing of identical in-flight computations.
//!
//! When several submitted queries share a bit-exact key, exactly one
//! worker computes the answer ("the leader") and every other submission
//! blocks on a shared [`Slot`] until the leader publishes. Uses
//! `std::sync::{Mutex, Condvar}` — the vendored `parking_lot` stand-in has
//! no condition variable.
//!
//! ## Fault tolerance
//!
//! A leader can die mid-computation (a panicking worker). Three layers
//! keep followers from blocking forever on its corpse:
//!
//! 1. every lock here recovers from poisoning (a panic while holding a
//!    slot or table mutex must not cascade `Err` panics into waiters);
//! 2. [`Slot::abandon`] wakes every waiter empty-handed and is idempotent,
//!    so unwind guards can call it unconditionally;
//! 3. [`SingleFlight::join`] self-heals: a table entry whose slot is no
//!    longer pending (a leader that died without retiring its key) is
//!    replaced by a fresh flight instead of recruiting followers to a
//!    dead computation.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Locks, recovering the guard from a poisoned mutex — a panicking leader
/// must not propagate panics into innocent followers.
fn lock_ignore_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The shared cell a coalesced computation publishes into.
#[derive(Debug)]
pub struct Slot<V> {
    state: Mutex<SlotState<V>>,
    ready: Condvar,
}

#[derive(Debug)]
enum SlotState<V> {
    Pending,
    Done(V),
    /// The leader dropped without publishing (worker panic).
    Abandoned,
}

impl<V: Clone> Slot<V> {
    fn new() -> Self {
        Slot {
            state: Mutex::new(SlotState::Pending),
            ready: Condvar::new(),
        }
    }

    /// Publishes the result and wakes every waiter.
    pub fn publish(&self, value: V) {
        let mut s = lock_ignore_poison(&self.state);
        *s = SlotState::Done(value);
        self.ready.notify_all();
    }

    /// Marks the computation as abandoned (leader lost) and wakes every
    /// waiter; they observe `None`.
    pub fn abandon(&self) {
        let mut s = lock_ignore_poison(&self.state);
        if matches!(*s, SlotState::Pending) {
            *s = SlotState::Abandoned;
            self.ready.notify_all();
        }
    }

    /// Blocks until the leader publishes; `None` if it was abandoned.
    pub fn wait(&self) -> Option<V> {
        let mut s = lock_ignore_poison(&self.state);
        loop {
            match &*s {
                SlotState::Pending => {
                    s = self
                        .ready
                        .wait(s)
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                }
                SlotState::Done(v) => return Some(v.clone()),
                SlotState::Abandoned => return None,
            }
        }
    }

    /// Non-blocking peek; `None` while still pending or abandoned.
    pub fn try_get(&self) -> Option<V> {
        match &*lock_ignore_poison(&self.state) {
            SlotState::Done(v) => Some(v.clone()),
            _ => None,
        }
    }

    /// Whether the computation is still in flight (neither published nor
    /// abandoned).
    pub fn is_pending(&self) -> bool {
        matches!(*lock_ignore_poison(&self.state), SlotState::Pending)
    }
}

/// The outcome of [`SingleFlight::join`].
pub enum Flight<V> {
    /// This caller is the leader: compute, then [`SingleFlight::complete`].
    Leader(Arc<Slot<V>>),
    /// Another computation of the same key is in flight: wait on the slot.
    Follower(Arc<Slot<V>>),
}

/// The in-flight table: at most one live computation per key.
#[derive(Debug)]
pub struct SingleFlight<K, V> {
    inflight: Mutex<HashMap<K, Arc<Slot<V>>>>,
}

impl<K: Eq + Hash + Copy, V: Clone> SingleFlight<K, V> {
    /// An empty in-flight table.
    #[must_use]
    pub fn new() -> Self {
        SingleFlight {
            inflight: Mutex::new(HashMap::new()),
        }
    }

    /// Joins the flight for `key`: the first caller becomes the leader,
    /// later callers become followers of the same slot.
    ///
    /// Self-healing: a table entry whose slot already resolved (a leader
    /// that died — or completed — without retiring its key) is *stale*;
    /// instead of following a dead computation, the joiner replaces it
    /// and leads a fresh flight.
    pub fn join(&self, key: K) -> Flight<V> {
        let mut map = lock_ignore_poison(&self.inflight);
        if let Some(slot) = map.get(&key) {
            if slot.is_pending() {
                return Flight::Follower(Arc::clone(slot));
            }
        }
        let slot = Arc::new(Slot::new());
        map.insert(key, Arc::clone(&slot));
        Flight::Leader(slot)
    }

    /// Leader-side completion: publishes `value` into `slot` and retires
    /// the key so the next identical query starts a fresh flight (it will
    /// normally hit the result cache instead).
    pub fn complete(&self, key: &K, slot: &Arc<Slot<V>>, value: V) {
        slot.publish(value);
        self.retire(key, slot);
    }

    /// Leader-side failure path: retires the key and wakes followers with
    /// an abandonment signal.
    pub fn abandon(&self, key: &K, slot: &Arc<Slot<V>>) {
        slot.abandon();
        self.retire(key, slot);
    }

    /// Removes the table entry for `key` only if it still refers to this
    /// very slot — after [`Self::join`] self-healed a stale entry, a late
    /// old leader must not retire the replacement flight.
    fn retire(&self, key: &K, slot: &Arc<Slot<V>>) {
        let mut map = lock_ignore_poison(&self.inflight);
        if map.get(key).is_some_and(|live| Arc::ptr_eq(live, slot)) {
            map.remove(key);
        }
    }

    /// Number of keys currently in flight.
    #[must_use]
    pub fn len(&self) -> usize {
        lock_ignore_poison(&self.inflight).len()
    }

    /// Whether no computation is in flight.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<K: Eq + Hash + Copy, V: Clone> Default for SingleFlight<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_joiner_leads_rest_follow() {
        let sf = SingleFlight::<u32, u64>::new();
        let Flight::Leader(slot) = sf.join(7) else {
            panic!("first join must lead")
        };
        assert!(matches!(sf.join(7), Flight::Follower(_)));
        assert!(matches!(sf.join(8), Flight::Leader(_)));
        sf.complete(&7, &slot, 42);
        assert_eq!(slot.try_get(), Some(42));
        // Key retired: a new join leads again.
        assert!(matches!(sf.join(7), Flight::Leader(_)));
    }

    #[test]
    fn followers_observe_published_value_across_threads() {
        use std::sync::atomic::{AtomicU32, Ordering};

        let sf = Arc::new(SingleFlight::<u32, u64>::new());
        let joined = AtomicU32::new(0);
        let Flight::Leader(slot) = sf.join(1) else {
            panic!("leader expected")
        };
        std::thread::scope(|s| {
            let mut joins = Vec::new();
            for _ in 0..4 {
                let sf = Arc::clone(&sf);
                let joined = &joined;
                joins.push(s.spawn(move || {
                    let flight = sf.join(1);
                    joined.fetch_add(1, Ordering::SeqCst);
                    match flight {
                        Flight::Follower(slot) => slot.wait(),
                        Flight::Leader(_) => panic!("flight already led"),
                    }
                }));
            }
            // Publish only once every thread has joined the flight, so
            // none can race past the completion and become a new leader.
            while joined.load(Ordering::SeqCst) < 4 {
                std::thread::yield_now();
            }
            sf.complete(&1, &slot, 99);
            for j in joins {
                assert_eq!(j.join().unwrap(), Some(99));
            }
        });
        assert!(sf.is_empty());
    }

    #[test]
    fn abandoned_flight_wakes_followers_empty_handed() {
        let sf = SingleFlight::<u32, u64>::new();
        let Flight::Leader(slot) = sf.join(3) else {
            panic!("leader expected")
        };
        let Flight::Follower(follower) = sf.join(3) else {
            panic!("follower expected")
        };
        sf.abandon(&3, &slot);
        assert_eq!(follower.wait(), None);
        assert!(sf.is_empty());
    }

    /// Regression (the single-flight hang hazard): a leader whose
    /// evaluator deliberately panics — poisoning the slot mutex on the
    /// way down — must error out its followers, not block them forever or
    /// cascade its panic into them.
    #[test]
    fn panicking_leader_errors_followers_instead_of_hanging() {
        use std::panic::{catch_unwind, AssertUnwindSafe};

        let sf = Arc::new(SingleFlight::<u32, u64>::new());
        let Flight::Leader(slot) = sf.join(11) else {
            panic!("leader expected")
        };
        let Flight::Follower(follower) = sf.join(11) else {
            panic!("follower expected")
        };
        std::thread::scope(|s| {
            let waiter = s.spawn(|| follower.wait());
            // The "evaluator" panics while holding the slot's own state
            // mutex — the worst case: the mutex is poisoned mid-update.
            let sf_leader = Arc::clone(&sf);
            let leader = s.spawn(move || {
                let result = catch_unwind(AssertUnwindSafe(|| {
                    let _guard = lock_ignore_poison(&slot.state);
                    panic!("deliberately panicking evaluator");
                }));
                assert!(result.is_err());
                // The unwind guard in the worker runs abandon(); it must
                // tolerate the poisoned mutex and wake the follower.
                sf_leader.abandon(&11, &slot);
            });
            leader.join().unwrap();
            assert_eq!(
                waiter.join().expect("follower must not panic"),
                None,
                "follower observes abandonment, not a hang"
            );
        });
        assert!(sf.is_empty());
    }

    /// Self-healing: a leader that died without retiring its key leaves a
    /// stale (abandoned) table entry. The next joiner must lead a fresh
    /// flight rather than follow the corpse.
    #[test]
    fn stale_table_entries_self_heal_on_join() {
        let sf = SingleFlight::<u32, u64>::new();
        let Flight::Leader(slot) = sf.join(5) else {
            panic!("leader expected")
        };
        // Simulate a leader dropped on the floor: the slot is abandoned
        // but the key was never removed from the table.
        slot.abandon();
        assert_eq!(sf.len(), 1, "the stale entry is still in the table");
        let Flight::Leader(fresh) = sf.join(5) else {
            panic!("a stale entry must be replaced, not followed")
        };
        let Flight::Follower(follower) = sf.join(5) else {
            panic!("the fresh flight accepts followers")
        };
        sf.complete(&5, &fresh, 77);
        assert_eq!(follower.wait(), Some(77));
        // A late retire by the dead leader must not touch the live table.
        let Flight::Leader(live) = sf.join(5) else {
            panic!("fresh lead after completion")
        };
        sf.abandon(&5, &slot); // the corpse retires its old slot: no-op
        assert_eq!(sf.len(), 1, "the live flight survives the stale retire");
        sf.complete(&5, &live, 78);
        assert!(sf.is_empty());
    }
}
