//! Single-flight coalescing of identical in-flight computations.
//!
//! When several submitted queries share a bit-exact key, exactly one
//! worker computes the answer ("the leader") and every other submission
//! blocks on a shared [`Slot`] until the leader publishes. Uses
//! `std::sync::{Mutex, Condvar}` — the vendored `parking_lot` stand-in has
//! no condition variable.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Arc, Condvar, Mutex};

/// The shared cell a coalesced computation publishes into.
#[derive(Debug)]
pub struct Slot<V> {
    state: Mutex<SlotState<V>>,
    ready: Condvar,
}

#[derive(Debug)]
enum SlotState<V> {
    Pending,
    Done(V),
    /// The leader dropped without publishing (worker panic).
    Abandoned,
}

impl<V: Clone> Slot<V> {
    fn new() -> Self {
        Slot {
            state: Mutex::new(SlotState::Pending),
            ready: Condvar::new(),
        }
    }

    /// Publishes the result and wakes every waiter.
    pub fn publish(&self, value: V) {
        let mut s = self.state.lock().expect("slot mutex poisoned");
        *s = SlotState::Done(value);
        self.ready.notify_all();
    }

    /// Marks the computation as abandoned (leader lost) and wakes every
    /// waiter; they observe `None`.
    pub fn abandon(&self) {
        let mut s = self.state.lock().expect("slot mutex poisoned");
        if matches!(*s, SlotState::Pending) {
            *s = SlotState::Abandoned;
            self.ready.notify_all();
        }
    }

    /// Blocks until the leader publishes; `None` if it was abandoned.
    pub fn wait(&self) -> Option<V> {
        let mut s = self.state.lock().expect("slot mutex poisoned");
        loop {
            match &*s {
                SlotState::Pending => s = self.ready.wait(s).expect("slot mutex poisoned"),
                SlotState::Done(v) => return Some(v.clone()),
                SlotState::Abandoned => return None,
            }
        }
    }

    /// Non-blocking peek; `None` while still pending or abandoned.
    pub fn try_get(&self) -> Option<V> {
        match &*self.state.lock().expect("slot mutex poisoned") {
            SlotState::Done(v) => Some(v.clone()),
            _ => None,
        }
    }
}

/// The outcome of [`SingleFlight::join`].
pub enum Flight<V> {
    /// This caller is the leader: compute, then [`SingleFlight::complete`].
    Leader(Arc<Slot<V>>),
    /// Another computation of the same key is in flight: wait on the slot.
    Follower(Arc<Slot<V>>),
}

/// The in-flight table: at most one live computation per key.
#[derive(Debug)]
pub struct SingleFlight<K, V> {
    inflight: Mutex<HashMap<K, Arc<Slot<V>>>>,
}

impl<K: Eq + Hash + Copy, V: Clone> SingleFlight<K, V> {
    /// An empty in-flight table.
    #[must_use]
    pub fn new() -> Self {
        SingleFlight {
            inflight: Mutex::new(HashMap::new()),
        }
    }

    /// Joins the flight for `key`: the first caller becomes the leader,
    /// later callers become followers of the same slot.
    pub fn join(&self, key: K) -> Flight<V> {
        let mut map = self.inflight.lock().expect("inflight mutex poisoned");
        if let Some(slot) = map.get(&key) {
            Flight::Follower(Arc::clone(slot))
        } else {
            let slot = Arc::new(Slot::new());
            map.insert(key, Arc::clone(&slot));
            Flight::Leader(slot)
        }
    }

    /// Leader-side completion: publishes `value` into `slot` and retires
    /// the key so the next identical query starts a fresh flight (it will
    /// normally hit the result cache instead).
    pub fn complete(&self, key: &K, slot: &Slot<V>, value: V) {
        slot.publish(value);
        self.inflight
            .lock()
            .expect("inflight mutex poisoned")
            .remove(key);
    }

    /// Leader-side failure path: retires the key and wakes followers with
    /// an abandonment signal.
    pub fn abandon(&self, key: &K, slot: &Slot<V>) {
        slot.abandon();
        self.inflight
            .lock()
            .expect("inflight mutex poisoned")
            .remove(key);
    }

    /// Number of keys currently in flight.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inflight.lock().expect("inflight mutex poisoned").len()
    }

    /// Whether no computation is in flight.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<K: Eq + Hash + Copy, V: Clone> Default for SingleFlight<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_joiner_leads_rest_follow() {
        let sf = SingleFlight::<u32, u64>::new();
        let Flight::Leader(slot) = sf.join(7) else {
            panic!("first join must lead")
        };
        assert!(matches!(sf.join(7), Flight::Follower(_)));
        assert!(matches!(sf.join(8), Flight::Leader(_)));
        sf.complete(&7, &slot, 42);
        assert_eq!(slot.try_get(), Some(42));
        // Key retired: a new join leads again.
        assert!(matches!(sf.join(7), Flight::Leader(_)));
    }

    #[test]
    fn followers_observe_published_value_across_threads() {
        use std::sync::atomic::{AtomicU32, Ordering};

        let sf = Arc::new(SingleFlight::<u32, u64>::new());
        let joined = AtomicU32::new(0);
        let Flight::Leader(slot) = sf.join(1) else {
            panic!("leader expected")
        };
        std::thread::scope(|s| {
            let mut joins = Vec::new();
            for _ in 0..4 {
                let sf = Arc::clone(&sf);
                let joined = &joined;
                joins.push(s.spawn(move || {
                    let flight = sf.join(1);
                    joined.fetch_add(1, Ordering::SeqCst);
                    match flight {
                        Flight::Follower(slot) => slot.wait(),
                        Flight::Leader(_) => panic!("flight already led"),
                    }
                }));
            }
            // Publish only once every thread has joined the flight, so
            // none can race past the completion and become a new leader.
            while joined.load(Ordering::SeqCst) < 4 {
                std::thread::yield_now();
            }
            sf.complete(&1, &slot, 99);
            for j in joins {
                assert_eq!(j.join().unwrap(), Some(99));
            }
        });
        assert!(sf.is_empty());
    }

    #[test]
    fn abandoned_flight_wakes_followers_empty_handed() {
        let sf = SingleFlight::<u32, u64>::new();
        let Flight::Leader(slot) = sf.join(3) else {
            panic!("leader expected")
        };
        let Flight::Follower(follower) = sf.join(3) else {
            panic!("follower expected")
        };
        sf.abandon(&3, &slot);
        assert_eq!(follower.wait(), None);
        assert!(sf.is_empty());
    }
}
