//! Typed errors of the serving engine.

use std::fmt;

use oaq_analytic::params::ParamError;
use oaq_san::ctmc::CtmcError;

use crate::tenant::TenantId;

/// A per-query failure: either the [`crate::QuerySpec`] failed validation
/// (the query never entered the engine), or the engine accepted the query
/// but could not produce its answer (the evaluation panicked, or the
/// serving deadline expired before an answer was ready).
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum QueryError {
    /// A scalar or integer parameter is non-finite or out of domain.
    Param(ParamError),
    /// The delivery overhead consumes the whole deadline: the effective
    /// deadline `τ − δ_eff` must stay strictly positive.
    DeadlineConsumed {
        /// The requested deadline τ.
        tau: f64,
        /// The effective delivery overhead δ_eff.
        delta_eff: f64,
    },
    /// The worker evaluating this query panicked. Every coalesced waiter
    /// of the query receives this error; the panicking worker is respawned
    /// and the query may simply be resubmitted.
    EvalPanicked,
    /// The per-query serving deadline expired before the answer was ready
    /// — either shed at dequeue (the solve never ran) or detected right
    /// after the solve (the stale answer is cached but not served).
    DeadlineExceeded {
        /// The configured serving deadline, milliseconds.
        deadline_ms: f64,
        /// Submission-to-detection wall-clock time, milliseconds.
        waited_ms: f64,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            QueryError::Param(e) => write!(f, "invalid query: {e}"),
            QueryError::DeadlineConsumed { tau, delta_eff } => write!(
                f,
                "delivery overhead delta_eff = {delta_eff} consumes the deadline tau = {tau}"
            ),
            QueryError::EvalPanicked => {
                write!(f, "evaluation panicked; the worker was respawned")
            }
            QueryError::DeadlineExceeded {
                deadline_ms,
                waited_ms,
            } => write!(
                f,
                "serving deadline of {deadline_ms} ms exceeded after {waited_ms:.3} ms"
            ),
        }
    }
}

impl std::error::Error for QueryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QueryError::Param(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParamError> for QueryError {
    fn from(e: ParamError) -> Self {
        QueryError::Param(e)
    }
}

/// Why an accepted-shape query was turned away at submission. Every
/// variant except [`RejectReason::ShuttingDown`] is retryable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum RejectReason {
    /// The bounded submission queue is at capacity — backpressure; retry
    /// later or shed load upstream.
    QueueFull {
        /// The configured queue capacity.
        capacity: usize,
    },
    /// The engine is shutting down and no longer accepts work.
    ShuttingDown,
    /// The submitting tenant is over its admission quota — its token
    /// bucket is empty or it already holds its full fair share of the
    /// queue. Other tenants are unaffected; retry after a back-off.
    QuotaExceeded {
        /// The over-quota tenant.
        tenant: TenantId,
    },
    /// The SLO-aware shedder is rejecting a fraction of new non-cached
    /// work because the end-to-end p99 latency breached the configured
    /// SLO. Retry after a back-off; cached answers still flow.
    Overloaded,
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            RejectReason::QueueFull { capacity } => {
                write!(f, "submission queue full ({capacity} queries)")
            }
            RejectReason::ShuttingDown => write!(f, "engine is shutting down"),
            RejectReason::QuotaExceeded { tenant } => {
                write!(f, "tenant {tenant} is over its admission quota")
            }
            RejectReason::Overloaded => {
                write!(f, "shed: end-to-end p99 latency breached the SLO")
            }
        }
    }
}

/// An error answering a query that the engine did accept (or explicitly
/// refused at admission).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EngineError {
    /// Admission control turned the query away; it was never enqueued.
    Rejected(RejectReason),
    /// The capacity CTMC solve failed.
    Solver(CtmcError),
    /// The computing worker disappeared without an answer (a worker
    /// panic); the query should be resubmitted.
    WorkerLost,
    /// A per-query failure after admission: the evaluation panicked or
    /// the serving deadline expired.
    Query(QueryError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Rejected(r) => write!(f, "rejected: {r}"),
            EngineError::Solver(e) => write!(f, "solver failure: {e}"),
            EngineError::WorkerLost => write!(f, "worker lost before completing the query"),
            EngineError::Query(e) => write!(f, "query failed: {e}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Solver(e) => Some(e),
            EngineError::Query(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CtmcError> for EngineError {
    fn from(e: CtmcError) -> Self {
        EngineError::Solver(e)
    }
}

impl From<QueryError> for EngineError {
    fn from(e: QueryError) -> Self {
        EngineError::Query(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render() {
        let e = EngineError::Rejected(RejectReason::QueueFull { capacity: 8 });
        assert!(e.to_string().contains("full (8"));
        assert!(EngineError::WorkerLost.to_string().contains("worker"));
        let q = QueryError::DeadlineConsumed {
            tau: 5.0,
            delta_eff: 5.0,
        };
        assert!(q.to_string().contains("consumes"));
    }

    #[test]
    fn fault_errors_render_and_convert() {
        let p = EngineError::from(QueryError::EvalPanicked);
        assert!(p.to_string().contains("panicked"));
        let d = EngineError::Query(QueryError::DeadlineExceeded {
            deadline_ms: 10.0,
            waited_ms: 12.5,
        });
        assert!(d.to_string().contains("10 ms"));
        let quota = RejectReason::QuotaExceeded {
            tenant: TenantId(3),
        };
        assert!(quota.to_string().contains("tenant 3"));
        assert!(RejectReason::Overloaded.to_string().contains("SLO"));
    }

    #[test]
    fn param_errors_convert() {
        let p = ParamError::NonPositive {
            name: "tau",
            value: 0.0,
        };
        assert!(matches!(QueryError::from(p), QueryError::Param(_)));
    }
}
