//! Typed errors of the serving engine.

use std::fmt;

use oaq_analytic::params::ParamError;
use oaq_san::ctmc::CtmcError;

/// A [`crate::QuerySpec`] that failed validation — the query never entered
/// the engine.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum QueryError {
    /// A scalar or integer parameter is non-finite or out of domain.
    Param(ParamError),
    /// The delivery overhead consumes the whole deadline: the effective
    /// deadline `τ − δ_eff` must stay strictly positive.
    DeadlineConsumed {
        /// The requested deadline τ.
        tau: f64,
        /// The effective delivery overhead δ_eff.
        delta_eff: f64,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            QueryError::Param(e) => write!(f, "invalid query: {e}"),
            QueryError::DeadlineConsumed { tau, delta_eff } => write!(
                f,
                "delivery overhead delta_eff = {delta_eff} consumes the deadline tau = {tau}"
            ),
        }
    }
}

impl std::error::Error for QueryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QueryError::Param(e) => Some(e),
            QueryError::DeadlineConsumed { .. } => None,
        }
    }
}

impl From<ParamError> for QueryError {
    fn from(e: ParamError) -> Self {
        QueryError::Param(e)
    }
}

/// Why an accepted-shape query was turned away at submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum RejectReason {
    /// The bounded submission queue is at capacity — backpressure; retry
    /// later or shed load upstream.
    QueueFull {
        /// The configured queue capacity.
        capacity: usize,
    },
    /// The engine is shutting down and no longer accepts work.
    ShuttingDown,
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            RejectReason::QueueFull { capacity } => {
                write!(f, "submission queue full ({capacity} queries)")
            }
            RejectReason::ShuttingDown => write!(f, "engine is shutting down"),
        }
    }
}

/// An error answering a query that the engine did accept (or explicitly
/// refused at admission).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EngineError {
    /// Admission control turned the query away; it was never enqueued.
    Rejected(RejectReason),
    /// The capacity CTMC solve failed.
    Solver(CtmcError),
    /// The computing worker disappeared without an answer (a worker
    /// panic); the query should be resubmitted.
    WorkerLost,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Rejected(r) => write!(f, "rejected: {r}"),
            EngineError::Solver(e) => write!(f, "solver failure: {e}"),
            EngineError::WorkerLost => write!(f, "worker lost before completing the query"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Solver(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CtmcError> for EngineError {
    fn from(e: CtmcError) -> Self {
        EngineError::Solver(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render() {
        let e = EngineError::Rejected(RejectReason::QueueFull { capacity: 8 });
        assert!(e.to_string().contains("full (8"));
        assert!(EngineError::WorkerLost.to_string().contains("worker"));
        let q = QueryError::DeadlineConsumed {
            tau: 5.0,
            delta_eff: 5.0,
        };
        assert!(q.to_string().contains("consumes"));
    }

    #[test]
    fn param_errors_convert() {
        let p = ParamError::NonPositive {
            name: "tau",
            value: 0.0,
        };
        assert!(matches!(QueryError::from(p), QueryError::Param(_)));
    }
}
