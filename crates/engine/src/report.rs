//! Deterministic serialization of workload results.
//!
//! Hand-rolled JSON in the workspace's usual style (no external
//! serializer). Floats print with 17 significant digits — enough to
//! round-trip every f64 exactly — so two runs that produced bit-identical
//! answers produce byte-identical JSON, and the determinism test can
//! compare strings. Timing never appears here; it goes in the benchmark
//! report, not the result digest.

use crate::eval::QosValue;
use crate::worker::EngineResult;

/// One f64, round-trip exact.
#[must_use]
pub fn fmt_f64(x: f64) -> String {
    format!("{x:.17e}")
}

/// One f64 as a JSON *value*: round-trip exact when finite, the literal
/// `null` otherwise. Bare `NaN`/`inf` are not JSON; empty latency stages
/// (e.g. a p99 with fewer than five observations) must serialize as an
/// absent measurement, not a parse error downstream.
#[must_use]
pub fn fmt_f64_or_null(x: f64) -> String {
    if x.is_finite() {
        fmt_f64(x)
    } else {
        "null".to_string()
    }
}

fn value_json(v: &QosValue) -> String {
    match v {
        QosValue::Scalar(x) => format!("{{\"scalar\":{}}}", fmt_f64(*x)),
        QosValue::Distribution(d) => {
            let items: Vec<String> = d.iter().map(|&x| fmt_f64(x)).collect();
            format!("{{\"distribution\":[{}]}}", items.join(","))
        }
    }
}

/// The results of a replayed workload as a deterministic JSON array, in
/// submission order. Errors serialize as their display string.
#[must_use]
pub fn results_json(results: &[EngineResult]) -> String {
    let items: Vec<String> = results
        .iter()
        .map(|r| match r {
            Ok(v) => value_json(v),
            Err(e) => format!("{{\"error\":\"{}\"}}", json_escape(&e.to_string())),
        })
        .collect();
    format!("[{}]", items.join(","))
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::EngineError;

    #[test]
    fn floats_round_trip_exactly() {
        for x in [0.753_119_028_462_187_3, 1e-300, -0.0, 2.0 / 3.0] {
            let printed = fmt_f64(x);
            let back: f64 = printed.parse().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{printed}");
        }
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(fmt_f64_or_null(f64::NAN), "null");
        assert_eq!(fmt_f64_or_null(f64::INFINITY), "null");
        assert_eq!(fmt_f64_or_null(f64::NEG_INFINITY), "null");
        assert_eq!(fmt_f64_or_null(0.5), fmt_f64(0.5));
    }

    #[test]
    fn results_serialize_deterministically() {
        let results: Vec<EngineResult> = vec![
            Ok(QosValue::Scalar(0.75)),
            Ok(QosValue::Distribution(vec![0.25, 0.75])),
            Err(EngineError::WorkerLost),
        ];
        let a = results_json(&results);
        let b = results_json(&results);
        assert_eq!(a, b);
        assert!(a.starts_with("[{\"scalar\":"));
        assert!(a.contains("\"distribution\":["));
        assert!(a.contains("\"error\":\"worker lost"));
    }

    #[test]
    fn escaping_handles_quotes_and_controls() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
