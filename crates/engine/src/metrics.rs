//! Per-engine observability: admission, cache and latency counters.
//!
//! Counters live behind one [`parking_lot::Mutex`] and are mutated on the
//! hot paths (submission, worker batch, completion); [`Metrics::snapshot`]
//! clones a consistent view out. Aggregates reuse `oaq-sim`'s statistics
//! accumulators ([`Tally`], [`P2Quantile`]) rather than reinventing
//! streaming moments and percentiles.

use oaq_sim::stats::{Counter, P2Quantile, Tally};
use parking_lot::Mutex;

/// A P² quantile estimator hardened against pathological inputs.
///
/// The raw [`P2Quantile`] panics on NaN and lets ±∞ corrupt its marker
/// heights, and its sub-five-sample "exact" estimate is noise for tail
/// quantiles (the p99 of three observations is just the maximum). This
/// wrapper ignores non-finite samples (counting them separately) and
/// withholds the estimate (`None`) until five finite observations have
/// arrived — callers like the SLO shedder must see *no* estimate rather
/// than a garbage one.
#[derive(Debug)]
pub struct RobustQuantile {
    inner: P2Quantile,
    ignored: u64,
}

impl RobustQuantile {
    /// An estimator for the `p`-quantile.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < p < 1`.
    #[must_use]
    pub fn new(p: f64) -> Self {
        RobustQuantile {
            inner: P2Quantile::new(p),
            ignored: 0,
        }
    }

    /// Records one observation; non-finite samples are ignored (and
    /// counted in [`Self::ignored`]) instead of poisoning the markers.
    pub fn record(&mut self, x: f64) {
        if x.is_finite() {
            self.inner.record(x);
        } else {
            self.ignored += 1;
        }
    }

    /// The current estimate; `None` until five finite observations.
    #[must_use]
    pub fn estimate(&self) -> Option<f64> {
        if self.inner.count() < 5 {
            None
        } else {
            self.inner.estimate()
        }
    }

    /// Finite observations recorded so far.
    #[must_use]
    pub fn count(&self) -> usize {
        self.inner.count()
    }

    /// Non-finite samples dropped so far.
    #[must_use]
    pub fn ignored(&self) -> u64 {
        self.ignored
    }
}

/// The mutable counter state, guarded by [`Metrics`].
#[derive(Debug)]
struct MetricsInner {
    submitted: Counter,
    served: Counter,
    rejected: Counter,
    result_cache_hits: Counter,
    coalesced: Counter,
    pk_solves: Counter,
    pk_cache_hits: Counter,
    eval_panics: Counter,
    worker_respawns: Counter,
    deadline_expired: Counter,
    quota_rejected: Counter,
    shed: Counter,
    batch_sizes: Tally,
    queue_wait: StageLatency,
    solve: StageLatency,
    end_to_end: StageLatency,
}

/// Streaming latency statistics for one pipeline stage (seconds).
#[derive(Debug)]
struct StageLatency {
    tally: Tally,
    p50: RobustQuantile,
    p95: RobustQuantile,
    p99: RobustQuantile,
}

impl StageLatency {
    fn new() -> Self {
        StageLatency {
            tally: Tally::new(),
            p50: RobustQuantile::new(0.50),
            p95: RobustQuantile::new(0.95),
            p99: RobustQuantile::new(0.99),
        }
    }

    fn record(&mut self, seconds: f64) {
        if !seconds.is_finite() {
            // Keep every aggregate consistent: drop the sample entirely
            // (the quantile wrappers would drop it anyway; a non-finite
            // value must not reach the Tally min/max/mean either).
            return;
        }
        self.tally.record(seconds);
        self.p50.record(seconds);
        self.p95.record(seconds);
        self.p99.record(seconds);
    }

    fn snapshot(&self) -> LatencySnapshot {
        LatencySnapshot {
            count: self.tally.count(),
            mean: self.tally.mean(),
            min: self.tally.min().unwrap_or(f64::NAN),
            max: self.tally.max().unwrap_or(f64::NAN),
            p50: self.p50.estimate().unwrap_or(f64::NAN),
            p95: self.p95.estimate().unwrap_or(f64::NAN),
            p99: self.p99.estimate().unwrap_or(f64::NAN),
        }
    }
}

/// Thread-safe engine metrics.
#[derive(Debug)]
pub struct Metrics {
    inner: Mutex<MetricsInner>,
}

impl Metrics {
    /// Fresh, all-zero metrics.
    #[must_use]
    pub fn new() -> Self {
        Metrics {
            inner: Mutex::new(MetricsInner {
                submitted: Counter::new(),
                served: Counter::new(),
                rejected: Counter::new(),
                result_cache_hits: Counter::new(),
                coalesced: Counter::new(),
                pk_solves: Counter::new(),
                pk_cache_hits: Counter::new(),
                eval_panics: Counter::new(),
                worker_respawns: Counter::new(),
                deadline_expired: Counter::new(),
                quota_rejected: Counter::new(),
                shed: Counter::new(),
                batch_sizes: Tally::new(),
                queue_wait: StageLatency::new(),
                solve: StageLatency::new(),
                end_to_end: StageLatency::new(),
            }),
        }
    }

    /// A query was admitted into the queue.
    pub fn on_submitted(&self) {
        self.inner.lock().submitted.increment();
    }

    /// A query was turned away at admission.
    pub fn on_rejected(&self) {
        self.inner.lock().rejected.increment();
    }

    /// A query was answered directly — computed by a worker or served from
    /// the result cache. Coalesced followers count under
    /// [`Self::on_coalesced`] instead, so once the queue drains,
    /// `submitted == served + coalesced`.
    pub fn on_served(&self) {
        self.inner.lock().served.increment();
    }

    /// A query was answered straight from the completed-result cache.
    pub fn on_result_cache_hit(&self) {
        self.inner.lock().result_cache_hits.increment();
    }

    /// A query joined an identical in-flight computation instead of
    /// starting its own.
    pub fn on_coalesced(&self) {
        self.inner.lock().coalesced.increment();
    }

    /// A capacity CTMC solve actually ran.
    pub fn on_pk_solve(&self) {
        self.inner.lock().pk_solves.increment();
    }

    /// A capacity distribution was reused from the `P(k)` cache.
    pub fn on_pk_cache_hit(&self) {
        self.inner.lock().pk_cache_hits.increment();
    }

    /// A worker caught a panic while evaluating a query; the query's
    /// waiters received [`crate::QueryError::EvalPanicked`].
    pub fn on_eval_panic(&self) {
        self.inner.lock().eval_panics.increment();
    }

    /// The supervisor replaced a dead worker, healing the pool back to
    /// its configured size.
    pub fn on_worker_respawn(&self) {
        self.inner.lock().worker_respawns.increment();
    }

    /// A query's serving deadline expired (shed at dequeue or detected
    /// after the solve); its waiters received
    /// [`crate::QueryError::DeadlineExceeded`].
    pub fn on_deadline_expired(&self) {
        self.inner.lock().deadline_expired.increment();
    }

    /// A submission was rejected by a per-tenant quota (rate or queue
    /// share). Also counted under [`Self::on_rejected`].
    pub fn on_quota_rejected(&self) {
        self.inner.lock().quota_rejected.increment();
    }

    /// A submission was shed by the SLO breach controller. Also counted
    /// under [`Self::on_rejected`].
    pub fn on_shed(&self) {
        self.inner.lock().shed.increment();
    }

    /// The current end-to-end p99 latency estimate, seconds — the SLO
    /// shedder's input. `None` until five finite observations.
    #[must_use]
    pub fn e2e_p99(&self) -> Option<f64> {
        self.inner.lock().end_to_end.p99.estimate()
    }

    /// A worker drained a batch of `n` queries.
    pub fn on_batch(&self, n: usize) {
        #[allow(clippy::cast_precision_loss)]
        self.inner.lock().batch_sizes.record(n as f64);
    }

    /// Records the time a query spent queued before a worker picked it up.
    pub fn record_queue_wait(&self, seconds: f64) {
        self.inner.lock().queue_wait.record(seconds);
    }

    /// Records the pure compute time of one query.
    pub fn record_solve(&self, seconds: f64) {
        self.inner.lock().solve.record(seconds);
    }

    /// Records submission-to-answer latency of one query.
    pub fn record_end_to_end(&self, seconds: f64) {
        self.inner.lock().end_to_end.record(seconds);
    }

    /// A consistent copy of every counter and latency aggregate.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock();
        MetricsSnapshot {
            submitted: inner.submitted.count(),
            served: inner.served.count(),
            rejected: inner.rejected.count(),
            result_cache_hits: inner.result_cache_hits.count(),
            coalesced: inner.coalesced.count(),
            pk_solves: inner.pk_solves.count(),
            pk_cache_hits: inner.pk_cache_hits.count(),
            eval_panics: inner.eval_panics.count(),
            worker_respawns: inner.worker_respawns.count(),
            deadline_expired: inner.deadline_expired.count(),
            quota_rejected: inner.quota_rejected.count(),
            shed: inner.shed.count(),
            shed_probability: 0.0,
            batch_count: inner.batch_sizes.count(),
            mean_batch_size: inner.batch_sizes.mean(),
            max_batch_size: inner.batch_sizes.max().unwrap_or(0.0),
            queue_wait: inner.queue_wait.snapshot(),
            solve: inner.solve.snapshot(),
            end_to_end: inner.end_to_end.snapshot(),
        }
    }
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

/// A point-in-time copy of the engine's counters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricsSnapshot {
    /// Queries admitted into the queue.
    pub submitted: u64,
    /// Queries answered directly (worker-computed or result-cache hit);
    /// excludes coalesced followers, so a drained engine satisfies
    /// `submitted == served + coalesced`.
    pub served: u64,
    /// Queries refused at admission (queue full / shutting down).
    pub rejected: u64,
    /// Queries answered from the completed-result cache.
    pub result_cache_hits: u64,
    /// Queries coalesced onto an identical in-flight computation.
    pub coalesced: u64,
    /// Capacity CTMC solves actually performed.
    pub pk_solves: u64,
    /// Capacity distributions reused from the `P(k)` cache.
    pub pk_cache_hits: u64,
    /// Worker panics caught during evaluation (each answered its waiters
    /// with [`crate::QueryError::EvalPanicked`]).
    pub eval_panics: u64,
    /// Workers respawned by the supervisor after a panic.
    pub worker_respawns: u64,
    /// Queries whose serving deadline expired before an answer was
    /// delivered.
    pub deadline_expired: u64,
    /// Submissions rejected by per-tenant quotas (subset of `rejected`).
    pub quota_rejected: u64,
    /// Submissions shed under SLO breach (subset of `rejected`).
    pub shed: u64,
    /// The SLO shedder's current rejection probability (a gauge, filled
    /// in by [`crate::Engine::metrics`]; `0.0` straight from
    /// [`Metrics::snapshot`]).
    pub shed_probability: f64,
    /// Number of worker batches drained.
    pub batch_count: u64,
    /// Mean batch size.
    pub mean_batch_size: f64,
    /// Largest batch drained.
    pub max_batch_size: f64,
    /// Time spent queued before pickup.
    pub queue_wait: LatencySnapshot,
    /// Pure compute time per query.
    pub solve: LatencySnapshot,
    /// Submission-to-answer latency.
    pub end_to_end: LatencySnapshot,
}

/// Summary statistics of one latency stage (seconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySnapshot {
    /// Number of recorded observations.
    pub count: u64,
    /// Mean.
    pub mean: f64,
    /// Minimum (NaN when empty).
    pub min: f64,
    /// Maximum (NaN when empty).
    pub max: f64,
    /// Streaming median estimate.
    pub p50: f64,
    /// Streaming 95th-percentile estimate.
    pub p95: f64,
    /// Streaming 99th-percentile estimate.
    pub p99: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = Metrics::new();
        m.on_submitted();
        m.on_submitted();
        m.on_rejected();
        m.on_served();
        m.on_result_cache_hit();
        m.on_coalesced();
        m.on_pk_solve();
        m.on_pk_cache_hit();
        m.on_batch(4);
        m.on_batch(2);
        let s = m.snapshot();
        assert_eq!(s.submitted, 2);
        assert_eq!(s.rejected, 1);
        assert_eq!(s.served, 1);
        assert_eq!(s.result_cache_hits, 1);
        assert_eq!(s.coalesced, 1);
        assert_eq!(s.pk_solves, 1);
        assert_eq!(s.pk_cache_hits, 1);
        assert_eq!(s.batch_count, 2);
        assert!((s.mean_batch_size - 3.0).abs() < 1e-12);
        assert!((s.max_batch_size - 4.0).abs() < 1e-12);
    }

    #[test]
    fn latency_stages_track_percentiles() {
        let m = Metrics::new();
        // Scrambled order: P² marker adjustment assumes non-sorted input.
        for i in 0..100u32 {
            let v = f64::from(i * 37 % 100 + 1);
            m.record_solve(v / 1000.0);
            m.record_end_to_end(v / 500.0);
        }
        let s = m.snapshot();
        assert_eq!(s.solve.count, 100);
        assert!((s.solve.mean - 0.0505).abs() < 1e-9);
        assert!(s.solve.p50 > 0.03 && s.solve.p50 < 0.07);
        assert!(s.solve.p95 >= s.solve.p50);
        assert!(s.solve.p99 >= s.solve.p95);
        assert!(s.end_to_end.max >= s.end_to_end.min);
        assert_eq!(s.queue_wait.count, 0);
    }

    #[test]
    fn robust_quantile_withholds_small_sample_estimates() {
        let mut q = RobustQuantile::new(0.99);
        assert_eq!(q.estimate(), None, "empty estimator has no estimate");
        for x in [1.0, 2.0, 3.0, 4.0] {
            q.record(x);
            assert_eq!(q.estimate(), None, "below five observations: None");
        }
        q.record(5.0);
        let p99 = q.estimate().expect("five observations unlock the estimate");
        assert!((1.0..=5.0).contains(&p99));
    }

    #[test]
    fn robust_quantile_ignores_non_finite_samples() {
        let mut q = RobustQuantile::new(0.5);
        for x in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            q.record(x); // the raw P² estimator would panic or corrupt
        }
        assert_eq!(q.count(), 0);
        assert_eq!(q.ignored(), 3);
        assert_eq!(q.estimate(), None);
        for x in [10.0, 20.0, 30.0, 40.0, 50.0] {
            q.record(x);
            q.record(f64::NAN);
        }
        assert_eq!(q.count(), 5);
        assert_eq!(q.ignored(), 8);
        let est = q.estimate().unwrap();
        assert!(est.is_finite() && (10.0..=50.0).contains(&est), "{est}");
    }

    #[test]
    fn stage_latency_survives_hostile_samples() {
        let m = Metrics::new();
        m.record_end_to_end(f64::NAN);
        m.record_end_to_end(f64::INFINITY);
        let s = m.snapshot();
        assert_eq!(s.end_to_end.count, 0, "non-finite samples never land");
        assert_eq!(m.e2e_p99(), None);
        for i in 0..10 {
            m.record_end_to_end(f64::from(i) / 100.0);
        }
        let p99 = m.e2e_p99().expect("enough finite samples now");
        assert!(p99.is_finite());
        assert!(m.snapshot().end_to_end.max <= 0.09 + 1e-12);
    }

    #[test]
    fn fault_counters_accumulate() {
        let m = Metrics::new();
        m.on_eval_panic();
        m.on_worker_respawn();
        m.on_deadline_expired();
        m.on_deadline_expired();
        m.on_quota_rejected();
        m.on_shed();
        let s = m.snapshot();
        assert_eq!(s.eval_panics, 1);
        assert_eq!(s.worker_respawns, 1);
        assert_eq!(s.deadline_expired, 2);
        assert_eq!(s.quota_rejected, 1);
        assert_eq!(s.shed, 1);
        assert_eq!(s.shed_probability, 0.0, "gauge is engine-filled");
    }
}
