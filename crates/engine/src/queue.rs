//! The bounded submission queue with backpressure.
//!
//! Admission control is a hard bound: [`SubmitQueue::try_push`] never
//! blocks and returns a typed rejection when the queue is at capacity —
//! the caller decides whether to retry, shed, or block on its own terms.
//! Workers drain in batches to amortise lock traffic. Built on
//! `std::sync::{Mutex, Condvar}` (the vendored `parking_lot` has no
//! condition variable).

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};

use crate::error::RejectReason;

/// Locks, recovering from poisoning: a worker that panicked while
/// touching the queue must not wedge every other submitter and worker.
fn lock_ignore_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A bounded MPMC queue: non-blocking bounded push, blocking batched pop.
#[derive(Debug)]
pub struct SubmitQueue<T> {
    inner: Mutex<Inner<T>>,
    nonempty: Condvar,
    capacity: usize,
}

#[derive(Debug)]
struct Inner<T> {
    items: VecDeque<T>,
    shutdown: bool,
}

impl<T> SubmitQueue<T> {
    /// An empty queue admitting at most `capacity` pending items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        SubmitQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity),
                shutdown: false,
            }),
            nonempty: Condvar::new(),
            capacity,
        }
    }

    /// Attempts to enqueue `item` without blocking.
    ///
    /// # Errors
    ///
    /// [`RejectReason::QueueFull`] when the queue is at capacity (the item
    /// is handed back inside the tuple), [`RejectReason::ShuttingDown`]
    /// after [`Self::shutdown`].
    pub fn try_push(&self, item: T) -> Result<(), (T, RejectReason)> {
        let mut inner = lock_ignore_poison(&self.inner);
        if inner.shutdown {
            return Err((item, RejectReason::ShuttingDown));
        }
        if inner.items.len() >= self.capacity {
            return Err((
                item,
                RejectReason::QueueFull {
                    capacity: self.capacity,
                },
            ));
        }
        inner.items.push_back(item);
        drop(inner);
        self.nonempty.notify_one();
        Ok(())
    }

    /// Blocks until work is available, then drains up to `max` items.
    /// Returns an empty vector only after [`Self::shutdown`] once the
    /// queue has fully drained — the worker's signal to exit.
    pub fn pop_batch(&self, max: usize) -> Vec<T> {
        let mut inner = lock_ignore_poison(&self.inner);
        loop {
            if !inner.items.is_empty() {
                let n = inner.items.len().min(max.max(1));
                let batch: Vec<T> = inner.items.drain(..n).collect();
                if !inner.items.is_empty() {
                    // Leftovers: wake a sibling worker.
                    self.nonempty.notify_one();
                }
                return batch;
            }
            if inner.shutdown {
                return Vec::new();
            }
            inner = self
                .nonempty
                .wait(inner)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Stops admitting new work and wakes every blocked worker. Items
    /// already queued are still drained.
    pub fn shutdown(&self) {
        let mut inner = lock_ignore_poison(&self.inner);
        inner.shutdown = true;
        drop(inner);
        self.nonempty.notify_all();
    }

    /// Whether [`Self::shutdown`] has been called. Used by the worker
    /// supervisor to decide between respawning a panicked worker and
    /// letting the pool wind down.
    #[must_use]
    pub fn is_shut_down(&self) -> bool {
        lock_ignore_poison(&self.inner).shutdown
    }

    /// Whether the queue is shut down *and* fully drained — nothing left
    /// for a respawned worker to do.
    #[must_use]
    pub fn is_drained(&self) -> bool {
        let inner = lock_ignore_poison(&self.inner);
        inner.shutdown && inner.items.is_empty()
    }

    /// Number of items currently queued.
    #[must_use]
    pub fn len(&self) -> usize {
        lock_ignore_poison(&self.inner).items.len()
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured capacity bound.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_until_full_then_typed_rejection() {
        let q = SubmitQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        let (item, reason) = q.try_push(3).unwrap_err();
        assert_eq!(item, 3);
        assert_eq!(reason, RejectReason::QueueFull { capacity: 2 });
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn batch_pop_drains_in_order() {
        let q = SubmitQueue::new(8);
        for i in 0..5 {
            q.try_push(i).unwrap();
        }
        assert_eq!(q.pop_batch(3), vec![0, 1, 2]);
        assert_eq!(q.pop_batch(3), vec![3, 4]);
        assert!(q.is_empty());
    }

    #[test]
    fn shutdown_rejects_new_work_but_drains_old() {
        let q = SubmitQueue::new(4);
        q.try_push(10).unwrap();
        q.shutdown();
        let (_, reason) = q.try_push(11).unwrap_err();
        assert_eq!(reason, RejectReason::ShuttingDown);
        assert_eq!(q.pop_batch(8), vec![10]);
        assert_eq!(q.pop_batch(8), Vec::<i32>::new());
    }

    /// Shutdown/drain semantics under concurrent submitters: across the
    /// close, every item is either (a) rejected at push with a typed
    /// reason, or (b) delivered to exactly one consumer — never lost,
    /// never double-delivered.
    #[test]
    fn concurrent_shutdown_neither_loses_nor_duplicates() {
        use std::sync::atomic::{AtomicBool, Ordering};

        for round in 0..8u64 {
            let q = Arc::new(SubmitQueue::new(32));
            let stop = AtomicBool::new(false);
            let (accepted, delivered) = std::thread::scope(|s| {
                let mut producers = Vec::new();
                for p in 0..4u64 {
                    let q = Arc::clone(&q);
                    let stop = &stop;
                    producers.push(s.spawn(move || {
                        let mut accepted = Vec::new();
                        for i in 0..500u64 {
                            let item = p * 10_000 + i;
                            if stop.load(Ordering::Relaxed) {
                                break;
                            }
                            match q.try_push(item) {
                                Ok(()) => accepted.push(item),
                                Err((_, RejectReason::ShuttingDown)) => break,
                                Err((_, RejectReason::QueueFull { .. })) => {
                                    std::thread::yield_now();
                                }
                                Err((_, r)) => panic!("unexpected rejection {r}"),
                            }
                        }
                        accepted
                    }));
                }
                let mut consumers = Vec::new();
                for _ in 0..2 {
                    let q = Arc::clone(&q);
                    consumers.push(s.spawn(move || {
                        let mut seen = Vec::new();
                        loop {
                            let batch = q.pop_batch(5);
                            if batch.is_empty() {
                                return seen;
                            }
                            seen.extend(batch);
                        }
                    }));
                }
                // Shut down mid-stream at a per-round staggered point.
                for _ in 0..(round * 97) {
                    std::hint::spin_loop();
                }
                q.shutdown();
                stop.store(true, Ordering::Relaxed);
                let mut accepted: Vec<u64> = producers
                    .into_iter()
                    .flat_map(|h| h.join().unwrap())
                    .collect();
                let mut delivered: Vec<u64> = consumers
                    .into_iter()
                    .flat_map(|h| h.join().unwrap())
                    .collect();
                accepted.sort_unstable();
                delivered.sort_unstable();
                (accepted, delivered)
            });
            assert_eq!(
                accepted, delivered,
                "round {round}: accepted items must be delivered exactly once"
            );
            assert!(q.is_drained());
        }
    }

    #[test]
    fn shutdown_state_is_observable() {
        let q = SubmitQueue::new(4);
        assert!(!q.is_shut_down());
        assert!(!q.is_drained());
        q.try_push(1).unwrap();
        q.shutdown();
        assert!(q.is_shut_down());
        assert!(!q.is_drained(), "an item is still queued");
        assert_eq!(q.pop_batch(4), vec![1]);
        assert!(q.is_drained());
    }

    #[test]
    fn blocked_worker_wakes_on_push_and_on_shutdown() {
        let q = Arc::new(SubmitQueue::new(4));
        std::thread::scope(|s| {
            let qa = Arc::clone(&q);
            let consumer = s.spawn(move || {
                let mut seen = Vec::new();
                loop {
                    let batch = qa.pop_batch(2);
                    if batch.is_empty() {
                        return seen;
                    }
                    seen.extend(batch);
                }
            });
            for i in 0..6 {
                while q.try_push(i).is_err() {
                    std::thread::yield_now();
                }
            }
            q.shutdown();
            let mut seen = consumer.join().unwrap();
            seen.sort_unstable();
            assert_eq!(seen, vec![0, 1, 2, 3, 4, 5]);
        });
    }
}
