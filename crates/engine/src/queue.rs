//! The bounded submission queue with backpressure.
//!
//! Admission control is a hard bound: [`SubmitQueue::try_push`] never
//! blocks and returns a typed rejection when the queue is at capacity —
//! the caller decides whether to retry, shed, or block on its own terms.
//! Workers drain in batches to amortise lock traffic. Built on
//! `std::sync::{Mutex, Condvar}` (the vendored `parking_lot` has no
//! condition variable).

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

use crate::error::RejectReason;

/// A bounded MPMC queue: non-blocking bounded push, blocking batched pop.
#[derive(Debug)]
pub struct SubmitQueue<T> {
    inner: Mutex<Inner<T>>,
    nonempty: Condvar,
    capacity: usize,
}

#[derive(Debug)]
struct Inner<T> {
    items: VecDeque<T>,
    shutdown: bool,
}

impl<T> SubmitQueue<T> {
    /// An empty queue admitting at most `capacity` pending items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        SubmitQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity),
                shutdown: false,
            }),
            nonempty: Condvar::new(),
            capacity,
        }
    }

    /// Attempts to enqueue `item` without blocking.
    ///
    /// # Errors
    ///
    /// [`RejectReason::QueueFull`] when the queue is at capacity (the item
    /// is handed back inside the tuple), [`RejectReason::ShuttingDown`]
    /// after [`Self::shutdown`].
    pub fn try_push(&self, item: T) -> Result<(), (T, RejectReason)> {
        let mut inner = self.inner.lock().expect("queue mutex poisoned");
        if inner.shutdown {
            return Err((item, RejectReason::ShuttingDown));
        }
        if inner.items.len() >= self.capacity {
            return Err((
                item,
                RejectReason::QueueFull {
                    capacity: self.capacity,
                },
            ));
        }
        inner.items.push_back(item);
        drop(inner);
        self.nonempty.notify_one();
        Ok(())
    }

    /// Blocks until work is available, then drains up to `max` items.
    /// Returns an empty vector only after [`Self::shutdown`] once the
    /// queue has fully drained — the worker's signal to exit.
    pub fn pop_batch(&self, max: usize) -> Vec<T> {
        let mut inner = self.inner.lock().expect("queue mutex poisoned");
        loop {
            if !inner.items.is_empty() {
                let n = inner.items.len().min(max.max(1));
                let batch: Vec<T> = inner.items.drain(..n).collect();
                if !inner.items.is_empty() {
                    // Leftovers: wake a sibling worker.
                    self.nonempty.notify_one();
                }
                return batch;
            }
            if inner.shutdown {
                return Vec::new();
            }
            inner = self.nonempty.wait(inner).expect("queue mutex poisoned");
        }
    }

    /// Stops admitting new work and wakes every blocked worker. Items
    /// already queued are still drained.
    pub fn shutdown(&self) {
        let mut inner = self.inner.lock().expect("queue mutex poisoned");
        inner.shutdown = true;
        drop(inner);
        self.nonempty.notify_all();
    }

    /// Number of items currently queued.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue mutex poisoned").items.len()
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured capacity bound.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_until_full_then_typed_rejection() {
        let q = SubmitQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        let (item, reason) = q.try_push(3).unwrap_err();
        assert_eq!(item, 3);
        assert_eq!(reason, RejectReason::QueueFull { capacity: 2 });
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn batch_pop_drains_in_order() {
        let q = SubmitQueue::new(8);
        for i in 0..5 {
            q.try_push(i).unwrap();
        }
        assert_eq!(q.pop_batch(3), vec![0, 1, 2]);
        assert_eq!(q.pop_batch(3), vec![3, 4]);
        assert!(q.is_empty());
    }

    #[test]
    fn shutdown_rejects_new_work_but_drains_old() {
        let q = SubmitQueue::new(4);
        q.try_push(10).unwrap();
        q.shutdown();
        let (_, reason) = q.try_push(11).unwrap_err();
        assert_eq!(reason, RejectReason::ShuttingDown);
        assert_eq!(q.pop_batch(8), vec![10]);
        assert_eq!(q.pop_batch(8), Vec::<i32>::new());
    }

    #[test]
    fn blocked_worker_wakes_on_push_and_on_shutdown() {
        let q = Arc::new(SubmitQueue::new(4));
        std::thread::scope(|s| {
            let qa = Arc::clone(&q);
            let consumer = s.spawn(move || {
                let mut seen = Vec::new();
                loop {
                    let batch = qa.pop_batch(2);
                    if batch.is_empty() {
                        return seen;
                    }
                    seen.extend(batch);
                }
            });
            for i in 0..6 {
                while q.try_push(i).is_err() {
                    std::thread::yield_now();
                }
            }
            q.shutdown();
            let mut seen = consumer.join().unwrap();
            seen.sort_unstable();
            assert_eq!(seen, vec![0, 1, 2, 3, 4, 5]);
        });
    }
}
